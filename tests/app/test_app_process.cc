/**
 * @file
 * Tests for AppProcess pause semantics and the Device harness.
 */

#include <gtest/gtest.h>

#include "apps/synthetic/synthetic_apps.h"
#include "harness/device.h"

namespace leaseos::app {
namespace {

using sim::operator""_s;
using sim::operator""_ms;

struct AppProcessTest : ::testing::Test {
    harness::Device device;
    AppProcess proc{device.simulator(), device.cpu(), kFirstAppUid,
                    "test"};
};

TEST_F(AppProcessTest, PostRunsWhenCpuAwake)
{
    device.server().displayManager().userSetScreen(true);
    bool ran = false;
    proc.post(1_s, [&] { ran = true; });
    device.runFor(2_s);
    EXPECT_TRUE(ran);
}

TEST_F(AppProcessTest, PostFreezesWhileCpuSleeps)
{
    bool ran = false;
    proc.post(1_s, [&] { ran = true; });
    device.runFor(10_s);
    EXPECT_FALSE(ran); // CPU asleep: work frozen
    device.server().displayManager().userSetScreen(true);
    device.runFor(100_ms);
    EXPECT_TRUE(ran); // flushed on wake ("resumed seamlessly", §4.6)
}

TEST_F(AppProcessTest, KilledProcessDropsWork)
{
    device.server().displayManager().userSetScreen(true);
    bool ran = false;
    proc.post(1_s, [&] { ran = true; });
    proc.kill();
    device.runFor(2_s);
    EXPECT_FALSE(ran);
    EXPECT_FALSE(proc.alive());
}

TEST_F(AppProcessTest, ComputeScaledHonoursPerfFactor)
{
    // Pixel XL perfFactor is 1.0; Moto G 0.45: the same unit of work
    // takes ~2.2x longer on the slow phone.
    harness::DeviceConfig slow_cfg;
    slow_cfg.profile = power::profiles::motoG();
    harness::Device slow(slow_cfg);
    AppProcess slow_proc(slow.simulator(), slow.cpu(), kFirstAppUid, "p");

    device.server().displayManager().userSetScreen(true);
    slow.server().displayManager().userSetScreen(true);
    proc.computeScaled(1.0, 1_s);
    slow_proc.computeScaled(1.0, 1_s);
    device.runFor(10_s);
    slow.runFor(10_s);
    double fast_cpu = device.cpu().cpuSeconds(kFirstAppUid);
    double slow_cpu = slow.cpu().cpuSeconds(kFirstAppUid);
    EXPECT_NEAR(fast_cpu, 1.0, 1e-6);
    EXPECT_NEAR(slow_cpu, 1.0 / 0.45, 1e-3);
}

struct DeviceTest : ::testing::Test {
};

TEST_F(DeviceTest, ModesConstructCorrectControllers)
{
    for (auto mode :
         {harness::MitigationMode::None, harness::MitigationMode::LeaseOS,
          harness::MitigationMode::Doze,
          harness::MitigationMode::DozeAggressive,
          harness::MitigationMode::DefDroid,
          harness::MitigationMode::OneShotThrottle}) {
        harness::DeviceConfig cfg;
        cfg.mode = mode;
        harness::Device device(cfg);
        EXPECT_EQ(device.leaseos() != nullptr,
                  mode == harness::MitigationMode::LeaseOS);
        EXPECT_EQ(device.doze() != nullptr,
                  mode == harness::MitigationMode::Doze ||
                      mode == harness::MitigationMode::DozeAggressive);
        EXPECT_EQ(device.defdroid() != nullptr,
                  mode == harness::MitigationMode::DefDroid);
        EXPECT_EQ(device.throttler() != nullptr,
                  mode == harness::MitigationMode::OneShotThrottle);
        EXPECT_EQ(device.context().leaseManager != nullptr,
                  mode == harness::MitigationMode::LeaseOS);
    }
}

TEST_F(DeviceTest, InstallAssignsUidsAndWatchesPower)
{
    harness::Device device;
    auto &a = device.install<apps::LongHoldingTestApp>();
    auto &b = device.install<apps::LongHoldingTestApp>();
    EXPECT_EQ(a.uid(), kFirstAppUid);
    EXPECT_EQ(b.uid(), kFirstAppUid + 1);
    device.start();
    device.runFor(1_s);
    EXPECT_NO_THROW(device.appPowerMw(a.uid()));
}

TEST_F(DeviceTest, StartIsIdempotent)
{
    harness::Device device;
    device.install<apps::LongHoldingTestApp>();
    device.start();
    device.start();
    device.runFor(1_s);
    EXPECT_EQ(device.apps().size(), 1u);
}

TEST_F(DeviceTest, BatteryDrainsOverTime)
{
    harness::Device device;
    auto &app = device.install<apps::LongHoldingTestApp>();
    (void)app;
    device.start();
    device.runFor(sim::Time::fromMinutes(10));
    EXPECT_GT(device.battery().drainedMj(), 0.0);
    EXPECT_LT(device.battery().remainingFraction(), 1.0);
}

} // namespace
} // namespace leaseos::app
