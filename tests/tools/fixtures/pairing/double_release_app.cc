// Fixture: releases with no acquire anywhere in the unit's reach — a
// double release (or releasing a resource owned elsewhere). Nothing
// calls these functions from other units, so the shared-helper
// exemption must NOT apply. Display path
// src/apps/fix/double_release_app.cc.

namespace fix {

void
DoubleReleaseApp::stop()
{
    lock_.release();
    lock_.release(); // second release of the same lock
}

} // namespace fix
