#include "power/energy_accountant.h"

#include <cassert>

namespace leaseos::power {

ChannelId
EnergyAccountant::makeChannel(std::string name)
{
    // Creating a channel does not change power, but sync first so channel
    // indices never see time before their creation.
    sync();
    channels_.push_back(Channel{std::move(name), {}, 0.0, {}});
    return static_cast<ChannelId>(channels_.size() - 1);
}

void
EnergyAccountant::setPowerShares(ChannelId ch,
                                 std::vector<std::pair<Uid, double>> sharesMw)
{
    assert(ch < channels_.size());
    sync();
    channels_[ch].sharesMw = std::move(sharesMw);
}

void
EnergyAccountant::setPower(ChannelId ch, double totalMw,
                           const std::vector<Uid> &owners)
{
    std::vector<std::pair<Uid, double>> shares;
    if (totalMw > 0.0) {
        if (owners.empty()) {
            shares.emplace_back(kSystemUid, totalMw);
        } else {
            double each = totalMw / static_cast<double>(owners.size());
            for (Uid u : owners) shares.emplace_back(u, each);
        }
    }
    setPowerShares(ch, std::move(shares));
}

void
EnergyAccountant::integrate(Channel &ch, double dtSeconds)
{
    for (const auto &[uid, mw] : ch.sharesMw) {
        double mj = mw * dtSeconds;
        ch.energyMj += mj;
        ch.uidEnergyMj[uid] += mj;
        totalMj_ += mj;
        uidMj_[uid] += mj;
    }
}

void
EnergyAccountant::sync()
{
    sim::Time now = sim_.now();
    if (now <= lastSync_) {
        lastSync_ = now;
        return;
    }
    double dt = (now - lastSync_).seconds();
    for (auto &ch : channels_) integrate(ch, dt);
    lastSync_ = now;
}

double
EnergyAccountant::totalEnergyMj()
{
    sync();
    return totalMj_;
}

double
EnergyAccountant::uidEnergyMj(Uid uid)
{
    sync();
    auto it = uidMj_.find(uid);
    return it == uidMj_.end() ? 0.0 : it->second;
}

double
EnergyAccountant::channelEnergyMj(ChannelId ch)
{
    assert(ch < channels_.size());
    sync();
    return channels_[ch].energyMj;
}

double
EnergyAccountant::uidChannelEnergyMj(Uid uid, ChannelId ch)
{
    assert(ch < channels_.size());
    sync();
    auto it = channels_[ch].uidEnergyMj.find(uid);
    return it == channels_[ch].uidEnergyMj.end() ? 0.0 : it->second;
}

double
EnergyAccountant::totalPowerMw() const
{
    double mw = 0.0;
    for (const auto &ch : channels_)
        for (const auto &[uid, w] : ch.sharesMw) mw += w;
    return mw;
}

double
EnergyAccountant::uidPowerMw(Uid uid) const
{
    double mw = 0.0;
    for (const auto &ch : channels_)
        for (const auto &[u, w] : ch.sharesMw)
            if (u == uid) mw += w;
    return mw;
}

const std::string &
EnergyAccountant::channelName(ChannelId ch) const
{
    assert(ch < channels_.size());
    return channels_[ch].name;
}

ChannelId
EnergyAccountant::channelByName(const std::string &name) const
{
    for (ChannelId ch = 0; ch < channels_.size(); ++ch)
        if (channels_[ch].name == name) return ch;
    return static_cast<ChannelId>(channels_.size());
}

std::vector<Uid>
EnergyAccountant::knownUids() const
{
    std::vector<Uid> uids;
    for (const auto &[uid, mj] : uidMj_) uids.push_back(uid);
    return uids;
}

} // namespace leaseos::power
