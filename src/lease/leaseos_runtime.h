#ifndef LEASEOS_LEASE_LEASEOS_RUNTIME_H
#define LEASEOS_LEASE_LEASEOS_RUNTIME_H

/**
 * @file
 * The LeaseOS runtime: manager + all proxies, wired over a SystemServer.
 *
 * This is the top-level public API for enabling lease-based resource
 * management on a simulated device:
 *
 *   lease::LeaseOsRuntime leaseos(sim, cpu, radio, server, policy);
 *
 * Constructing it transparently interposes on all resource services — no
 * app changes required (§4.2). Destroying it (or building the device
 * without it) is the paper's "flag to completely turn off the lease
 * service" used to get a vanilla-Android baseline.
 */

#include <memory>

#include "lease/lease_manager.h"
#include "lease/lease_policy.h"
#include "lease/proxies/audio_proxy.h"
#include "lease/proxies/bluetooth_proxy.h"
#include "lease/proxies/gps_proxy.h"
#include "lease/proxies/screen_proxy.h"
#include "lease/proxies/sensor_proxy.h"
#include "lease/proxies/wakelock_proxy.h"
#include "lease/proxies/wifi_proxy.h"
#include "os/system_server.h"

namespace leaseos::lease {

/**
 * Assembles and owns the full LeaseOS stack for one device.
 */
class LeaseOsRuntime
{
  public:
    LeaseOsRuntime(sim::Simulator &sim, power::CpuModel &cpu,
                   power::RadioModel &radio, os::SystemServer &server,
                   LeasePolicy policy = {});

    LeaseManagerService &manager() { return *manager_; }
    const LeaseManagerService &manager() const { return *manager_; }

    WakelockLeaseProxy &wakelockProxy() { return *wakelockProxy_; }
    ScreenLeaseProxy &screenProxy() { return *screenProxy_; }
    GpsLeaseProxy &gpsProxy() { return *gpsProxy_; }
    SensorLeaseProxy &sensorProxy() { return *sensorProxy_; }
    WifiLeaseProxy &wifiProxy() { return *wifiProxy_; }
    AudioLeaseProxy &audioProxy() { return *audioProxy_; }
    BluetoothLeaseProxy &bluetoothProxy() { return *bluetoothProxy_; }

  private:
    std::unique_ptr<LeaseManagerService> manager_;
    std::unique_ptr<WakelockLeaseProxy> wakelockProxy_;
    std::unique_ptr<ScreenLeaseProxy> screenProxy_;
    std::unique_ptr<GpsLeaseProxy> gpsProxy_;
    std::unique_ptr<SensorLeaseProxy> sensorProxy_;
    std::unique_ptr<WifiLeaseProxy> wifiProxy_;
    std::unique_ptr<AudioLeaseProxy> audioProxy_;
    std::unique_ptr<BluetoothLeaseProxy> bluetoothProxy_;
};

} // namespace leaseos::lease

#endif // LEASEOS_LEASE_LEASEOS_RUNTIME_H
