#include "harness/result_sink.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "harness/figure.h"
#include "harness/table.h"

namespace leaseos::harness {

std::string
ResultSink::Value::toText() const
{
    switch (kind) {
      case Kind::Text: return text;
      case Kind::Number: return TextTable::fmt(number, precision);
      case Kind::Integer: return std::to_string(integer);
    }
    return {};
}

std::string
ResultSink::Value::toJson() const
{
    switch (kind) {
      case Kind::Text: return "\"" + jsonEscape(text) + "\"";
      case Kind::Number:
        if (!std::isfinite(number)) return "null";
        return TextTable::fmt(number, precision);
      case Kind::Integer: return std::to_string(integer);
    }
    return "null";
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (char c : s) {
        if (c == '"') out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
csvOutputDir()
{
    const char *dir = std::getenv("LEASEOS_OUT");
    return dir ? std::string(dir) : std::string();
}

std::string
benchArtifactPath(const std::string &benchName)
{
    std::string file = "BENCH_" + benchName + ".json";
    std::string dir = csvOutputDir();
    return dir.empty() ? file : dir + "/" + file;
}

bool
maybeExportSeriesCsv(const std::string &name,
                     const std::vector<const sim::TimeSeries *> &series)
{
    std::string dir = csvOutputDir();
    if (dir.empty()) return false;
    std::ofstream out(dir + "/" + name + ".csv");
    if (!out) return false;

    out << "time_s";
    for (const auto *s : series)
        out << "," << csvEscape(s->name().empty() ? "value" : s->name());
    out << "\n";

    // Union of timestamps; blank cells where a series has no sample.
    std::map<std::int64_t, std::vector<std::string>> rows;
    for (std::size_t i = 0; i < series.size(); ++i) {
        for (const auto &p : series[i]->points()) {
            auto &row = rows[p.t.nanos()];
            row.resize(series.size());
            row[i] = std::to_string(p.value);
        }
    }
    for (auto &[ns, row] : rows) {
        row.resize(series.size());
        out << static_cast<double>(ns) / 1e9;
        for (const auto &cell : row) out << "," << cell;
        out << "\n";
    }
    return true;
}

bool
maybeExportSeriesCsv(const std::string &name, const sim::TimeSeries &series)
{
    return maybeExportSeriesCsv(
        name, std::vector<const sim::TimeSeries *>{&series});
}

// ---- TextTableSink ------------------------------------------------------

TextTableSink::TextTableSink(std::ostream &out) : out_(out) {}

TextTableSink::TextTableSink() : out_(std::cout) {}

void
TextTableSink::begin(const std::string &benchId, const std::string &caption)
{
    header_ = figureHeader(benchId, caption);
}

void
TextTableSink::addRow(const Row &row)
{
    if (headers_.empty())
        for (const auto &[key, value] : row) headers_.push_back(key);
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const auto &[key, value] : row) cells.push_back(value.toText());
    rows_.emplace_back(false, std::move(cells));
}

void
TextTableSink::addSeparator()
{
    rows_.emplace_back(true, std::vector<std::string>{});
}

void
TextTableSink::finish()
{
    TextTable table(headers_);
    for (auto &[separator, cells] : rows_) {
        if (separator)
            table.addSeparator();
        else
            table.addRow(cells);
    }
    out_ << header_ << table.toString();
}

// ---- JsonSink -----------------------------------------------------------

JsonSink::JsonSink(std::string path) : path_(std::move(path)) {}

void
JsonSink::begin(const std::string &benchId, const std::string &caption)
{
    benchId_ = benchId;
    caption_ = caption;
}

void
JsonSink::addRow(const Row &row)
{
    rows_.push_back(row);
}

std::string
JsonSink::document() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"bench\": \"" << jsonEscape(benchId_) << "\",\n";
    os << "  \"caption\": \"" << jsonEscape(caption_) << "\",\n";
    os << "  \"rows\": [\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        os << "    {";
        const Row &row = rows_[r];
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i) os << ", ";
            os << "\"" << jsonEscape(row[i].first)
               << "\": " << row[i].second.toJson();
        }
        os << "}" << (r + 1 < rows_.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

void
JsonSink::finish()
{
    if (path_.empty()) return;
    std::ofstream out(path_);
    if (!out) {
        std::cerr << "[result_sink] cannot write " << path_ << "\n";
        return;
    }
    out << document();
    std::cerr << "[result_sink] wrote " << path_ << "\n";
}

// ---- CsvSink ------------------------------------------------------------

CsvSink::CsvSink(std::string path) : path_(std::move(path)) {}

void
CsvSink::begin(const std::string &, const std::string &)
{
    // CSV carries no caption; the artefact is named by its path.
}

void
CsvSink::addRow(const Row &row)
{
    rows_.push_back(row);
}

std::string
CsvSink::document() const
{
    std::ostringstream os;
    if (rows_.empty()) return {};
    const Row &first = rows_.front();
    for (std::size_t i = 0; i < first.size(); ++i) {
        if (i) os << ",";
        os << csvEscape(first[i].first);
    }
    os << "\n";
    for (const Row &row : rows_) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i) os << ",";
            os << csvEscape(row[i].second.toText());
        }
        os << "\n";
    }
    return os.str();
}

void
CsvSink::finish()
{
    if (path_.empty()) return;
    std::ofstream out(path_);
    if (!out) {
        std::cerr << "[result_sink] cannot write " << path_ << "\n";
        return;
    }
    out << document();
    std::cerr << "[result_sink] wrote " << path_ << "\n";
}

} // namespace leaseos::harness
