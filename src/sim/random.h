#ifndef LEASEOS_SIM_RANDOM_H
#define LEASEOS_SIM_RANDOM_H

/**
 * @file
 * Deterministic random source for simulations.
 *
 * All stochastic behaviour (user interaction jitter, network latency,
 * environment flaps, the Fig. 12 random misbehaviour slices) draws from a
 * seeded RandomSource so that every experiment is exactly reproducible.
 *
 * Thread-safety: a RandomSource owns its engine outright (no global or
 * thread-local state anywhere in this module), so each Device's stream is
 * fully isolated. Never share one instance across concurrently running
 * Devices — the engine mutates on every draw; give each run its own seed
 * instead (see harness::deriveSeed).
 */

#include <cstdint>
#include <random>

#include "sim/time.h"

namespace leaseos::sim {

class CheckpointWriter;
class CheckpointReader;

/**
 * Seeded pseudo-random generator with simulation-friendly helpers.
 */
class RandomSource
{
  public:
    explicit RandomSource(std::uint64_t seed = 0x1ea5e05) : rng_(seed) {}

    /** Re-seed, restarting the stream. */
    void reseed(std::uint64_t seed) { rng_.seed(seed); }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(rng_);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(rng_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(rng_);
    }

    /** Bernoulli trial with probability @p p of true. */
    bool chance(double p) { return uniform() < p; }

    /** Normal variate; @p sd must be >= 0. */
    double
    gaussian(double mean, double sd)
    {
        return std::normal_distribution<double>(mean, sd)(rng_);
    }

    /** Exponential variate with the given mean (for arrival processes). */
    double
    exponential(double mean)
    {
        return std::exponential_distribution<double>(1.0 / mean)(rng_);
    }

    /** Uniform duration in [lo, hi). */
    Time
    uniformTime(Time lo, Time hi)
    {
        return Time::fromNanos(uniformInt(lo.nanos(), hi.nanos() - 1));
    }

    /** Underlying engine, for use with std distributions/algorithms. */
    std::mt19937_64 &engine() { return rng_; }

    /**
     * Serialize the engine's exact position in its stream as an "rng"
     * section (DESIGN.md §11), via the standard mt19937_64 stream
     * representation under the classic locale.
     */
    void saveState(CheckpointWriter &w) const;

    /** Restore a stream position saved by saveState(). */
    void restoreState(CheckpointReader &r);

  private:
    std::mt19937_64 rng_;
};

} // namespace leaseos::sim

#endif // LEASEOS_SIM_RANDOM_H
