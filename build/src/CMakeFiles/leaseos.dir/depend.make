# Empty dependencies file for leaseos.
# This may be replaced when dependencies are built.
