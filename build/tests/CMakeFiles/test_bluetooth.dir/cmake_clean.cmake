file(REMOVE_RECURSE
  "CMakeFiles/test_bluetooth.dir/os/test_bluetooth.cc.o"
  "CMakeFiles/test_bluetooth.dir/os/test_bluetooth.cc.o.d"
  "test_bluetooth"
  "test_bluetooth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bluetooth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
