file(REMOVE_RECURSE
  "CMakeFiles/test_environments.dir/env/test_environments.cc.o"
  "CMakeFiles/test_environments.dir/env/test_environments.cc.o.d"
  "test_environments"
  "test_environments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_environments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
