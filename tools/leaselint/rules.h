#ifndef LEASELINT_RULES_H
#define LEASELINT_RULES_H

/**
 * @file
 * Factories for the individual built-in rules (unit tests build them one
 * at a time; the driver uses makeAllRules() from rule.h).
 *
 * Rule inventory:
 *  - determinism:       wall-clock / rand() / unordered containers in
 *                       simulation code (results must be bit-reproducible);
 *  - pairing:           acquire-without-release in the app corpus
 *                       (DroidLeaks-style resource-leak shape);
 *  - proxy-bypass:      service interposition mutators (suspend/restore/
 *                       filters) used outside proxies/mitigation/OS code;
 *  - switch-exhaustive: switches over the core lease enums that do not
 *                       enumerate every value (a default: hides new ones);
 *  - flat-map-hotpath:  node-based std::map / std::unordered_map in the
 *                       hot path (src/sim, src/power) — informational,
 *                       points at dense arrays / InlineVec (DESIGN.md §8).
 */

#include <memory>

#include "leaselint/rule.h"

namespace leaselint {

std::unique_ptr<Rule> makeDeterminismRule();
std::unique_ptr<Rule> makePairingRule();
std::unique_ptr<Rule> makeProxyBypassRule();
std::unique_ptr<Rule> makeSwitchExhaustiveRule();
std::unique_ptr<Rule> makeFlatMapHotpathRule();

} // namespace leaselint

#endif // LEASELINT_RULES_H
