file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_lambda.dir/bench/bench_fig12_lambda.cc.o"
  "CMakeFiles/bench_fig12_lambda.dir/bench/bench_fig12_lambda.cc.o.d"
  "bench/bench_fig12_lambda"
  "bench/bench_fig12_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
