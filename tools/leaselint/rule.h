#ifndef LEASELINT_RULE_H
#define LEASELINT_RULE_H

/**
 * @file
 * The leaselint rule interface.
 *
 * Linting is two-pass: every rule sees every file in scan() first (for
 * cross-file facts such as enum definitions or per-app acquire/release
 * tallies), then check() runs per file and finalize() once at the end.
 * Rules emit findings unconditionally; the driver filters suppressed ones
 * against the `// leaselint: allow(<rule>)` map afterwards.
 */

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "leaselint/source.h"

namespace leaselint {

struct Finding {
    std::string rule;
    std::string path;
    std::size_t line = 0;
    std::string message;
};

class Rule
{
  public:
    virtual ~Rule() = default;

    virtual const char *name() const = 0;
    virtual const char *description() const = 0;

    /** Pass 1: observe every file (cross-file state). Default: nothing. */
    virtual void scan(const SourceFile &file) { (void)file; }

    /** Pass 2: emit findings for one file. */
    virtual void check(const SourceFile &file,
                       std::vector<Finding> &out) = 0;

    /** After pass 2: emit findings that needed cross-file state. */
    virtual void finalize(std::vector<Finding> &out) { (void)out; }
};

/** Construct every built-in rule. */
std::vector<std::unique_ptr<Rule>> makeAllRules();

} // namespace leaselint

#endif // LEASELINT_RULE_H
