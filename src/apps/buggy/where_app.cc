#include "apps/buggy/where_app.h"

// WhereApp is header-only; this TU anchors the module.
namespace leaseos::apps {
} // namespace leaseos::apps
