#include "leaselint/callgraph.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

namespace leaselint {

std::string
unitStem(const std::string &path)
{
    std::size_t slash = path.rfind('/');
    std::size_t dot = path.rfind('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return path;
    return path.substr(0, dot);
}

std::string
CallGraph::unqualified(const std::string &name)
{
    std::size_t at = name.rfind("::");
    return at == std::string::npos ? name : name.substr(at + 2);
}

bool
CallGraph::isStructorName(const std::string &qualifiedName)
{
    std::size_t at = qualifiedName.rfind("::");
    if (at == std::string::npos) return false;
    std::string last = qualifiedName.substr(at + 2);
    std::string prevScope = qualifiedName.substr(0, at);
    std::size_t prevAt = prevScope.rfind("::");
    std::string prev = prevAt == std::string::npos
                           ? prevScope
                           : prevScope.substr(prevAt + 2);
    return last == prev || last == "~" + prev;
}

CallGraph::CallGraph(const RepoIndex &repo) : repo_(&repo)
{
    // Flatten every FuncDef into the global id space.
    fileBase_.reserve(repo.files.size());
    units_.reserve(repo.files.size());
    for (std::uint32_t fi = 0; fi < repo.files.size(); ++fi) {
        const FileIndex &file = repo.files[fi];
        fileBase_.push_back(static_cast<std::uint32_t>(defs_.size()));
        units_.push_back(unitStem(file.path));
        for (const FuncDef &def : file.funcs) {
            defs_.push_back(&def);
            fileOf_.push_back(fi);
        }
    }
    callees_.assign(defs_.size(), {});
    callers_.assign(defs_.size(), {});

    // Definitions by unqualified name, for resolution.
    std::unordered_map<std::string, std::vector<FuncId>> byName;
    for (FuncId id = 0; id < defs_.size(); ++id)
        byName[unqualified(defs_[id]->name)].push_back(id);

    auto resolve = [&](std::uint32_t callerFile,
                       const std::string &callee) -> FuncId {
        auto it = byName.find(callee);
        if (it == byName.end()) return kInvalidFunc;
        const std::vector<FuncId> &cands = it->second;

        // 1. Same file wins.
        FuncId hit = kInvalidFunc;
        for (FuncId id : cands) {
            if (fileOf_[id] != callerFile) continue;
            if (hit != kInvalidFunc) return kInvalidFunc; // ambiguous
            hit = id;
        }
        if (hit != kInvalidFunc) return hit;

        // 2. Same unit (.h/.cc pair) wins.
        const std::string &unit = units_[callerFile];
        for (FuncId id : cands) {
            if (units_[fileOf_[id]] != unit) continue;
            if (hit != kInvalidFunc) return kInvalidFunc;
            hit = id;
        }
        if (hit != kInvalidFunc) return hit;

        // 3. Repo-wide only when unique.
        return cands.size() == 1 ? cands[0] : kInvalidFunc;
    };

    for (std::uint32_t fi = 0; fi < repo.files.size(); ++fi) {
        const FileIndex &file = repo.files[fi];
        for (const CallSite &call : file.calls) {
            if (call.func == kNoFunc) continue;
            FuncId from = funcId(fi, call.func);
            FuncId to = resolve(fi, call.callee);
            if (to == kInvalidFunc || to == from) continue;
            auto &outEdges = callees_[from];
            if (std::find(outEdges.begin(), outEdges.end(), to) !=
                outEdges.end())
                continue;
            outEdges.push_back(to);
            callers_[to].push_back(from);
        }
    }
}

const FuncDef &
CallGraph::def(FuncId id) const
{
    return *defs_[id];
}

const std::string &
CallGraph::unitOf(FuncId id) const
{
    return units_[fileOf_[id]];
}

FuncId
CallGraph::funcId(std::uint32_t fileIdx, std::uint32_t funcIdx) const
{
    return fileBase_[fileIdx] + funcIdx;
}

const std::vector<FuncId> &
CallGraph::callees(FuncId id) const
{
    return callees_[id];
}

const std::vector<FuncId> &
CallGraph::callers(FuncId id) const
{
    return callers_[id];
}

std::vector<FuncId>
CallGraph::reachableFrom(const std::vector<FuncId> &roots,
                         std::size_t maxDepth) const
{
    std::vector<FuncId> out;
    std::vector<char> seen(defs_.size(), 0);
    std::deque<std::pair<FuncId, std::size_t>> queue;
    for (FuncId root : roots) {
        if (root >= defs_.size() || seen[root]) continue;
        seen[root] = 1;
        queue.emplace_back(root, 0);
        out.push_back(root);
    }
    while (!queue.empty()) {
        auto [id, depth] = queue.front();
        queue.pop_front();
        if (depth >= maxDepth) continue;
        for (FuncId next : callees_[id]) {
            if (seen[next]) continue;
            seen[next] = 1;
            queue.emplace_back(next, depth + 1);
            out.push_back(next);
        }
    }
    return out;
}

} // namespace leaselint
