/**
 * @file
 * Integration tests over the Table 5 corpus: every buggy app must trigger
 * its documented misbehaviour class under LeaseOS and lose substantially
 * less power than on vanilla Android; normal apps must run undisturbed.
 */

#include <gtest/gtest.h>

#include <map>

#include "apps/normal/haven.h"
#include "apps/normal/runkeeper.h"
#include "apps/normal/spotify.h"
#include "apps/normal/trepn_profiler.h"
#include "apps/registry.h"

namespace leaseos::apps {
namespace {

using sim::operator""_s;
using sim::operator""_min;

/** Run one Table 5 app for @p minutes under the given mode. */
struct RunResult {
    double appPowerMw = 0.0;
    std::map<lease::BehaviorType, std::uint64_t> behaviors;
};

RunResult
runSpec(const BuggyAppSpec &spec, harness::MitigationMode mode,
        double minutes = 10.0)
{
    harness::DeviceConfig cfg;
    cfg.mode = mode;
    harness::Device device(cfg);
    spec.trigger(device);
    app::App &app = spec.install(device);
    RunResult result;
    if (device.leaseos()) {
        device.leaseos()->manager().setTermObserver(
            [&](const lease::Lease &, const lease::TermRecord &rec) {
                ++result.behaviors[rec.behavior];
            });
    }
    device.start();
    device.runFor(sim::Time::fromMinutes(minutes));
    result.appPowerMw = device.appPowerMw(app.uid());
    return result;
}

lease::BehaviorType
expectedBehavior(const std::string &name)
{
    if (name == "FAB") return lease::BehaviorType::FrequentAsk;
    if (name == "LHB") return lease::BehaviorType::LongHolding;
    return lease::BehaviorType::LowUtility;
}

/** Parameterised over all 20 Table 5 rows. */
class BuggyAppSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(BuggyAppSweep, TriggersExpectedClassAndIsMitigated)
{
    const BuggyAppSpec &spec = buggySpec(GetParam());

    RunResult vanilla = runSpec(spec, harness::MitigationMode::None);
    RunResult leased = runSpec(spec, harness::MitigationMode::LeaseOS);

    // The defect draws real power on vanilla Android.
    EXPECT_GT(vanilla.appPowerMw, 5.0) << spec.display;

    // LeaseOS observes the documented misbehaviour class...
    lease::BehaviorType expected = expectedBehavior(spec.behavior);
    EXPECT_GT(leased.behaviors[expected], 0u)
        << spec.display << " never classified as " << spec.behavior;

    // ...and recovers most of the wasted power.
    double reduction = 1.0 - leased.appPowerMw / vanilla.appPowerMw;
    EXPECT_GT(reduction, 0.30)
        << spec.display << ": vanilla=" << vanilla.appPowerMw
        << " leased=" << leased.appPowerMw;
}

INSTANTIATE_TEST_SUITE_P(
    Table5, BuggyAppSweep,
    ::testing::Values("facebook", "torch", "kontalk", "k9", "servalmesh",
                      "textsecure", "connectbot-screen", "standup-timer",
                      "connectbot-wifi", "betterweather", "where",
                      "mozstumbler", "osmtracker", "gpslogger",
                      "bostonbusmap", "aimsicd", "opensciencemap",
                      "opengpstracker", "tapandturn", "riot"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (auto &c : name)
            if (c == '-') c = '_';
        return name;
    });

// ---- Normal apps under LeaseOS (usability §7.4) -----------------------------

struct NormalAppsTest : ::testing::Test {
};

TEST_F(NormalAppsTest, RunKeeperUndisturbedUnderLeaseOS)
{
    harness::DeviceConfig cfg;
    cfg.mode = harness::MitigationMode::LeaseOS;
    harness::Device device(cfg);
    device.gpsEnv().setVelocity(2.5, 0.5); // out for a run
    device.motion().setStationary(false);
    auto &app = device.install<RunKeeper>();
    device.start();
    device.runFor(20_min);
    // Tracking must not stall: nearly all expected samples written.
    EXPECT_GT(app.samplesWritten(), app.expectedSamples() * 9 / 10);
    EXPECT_EQ(device.leaseos()->manager().totalDeferrals(), 0u);
}

TEST_F(NormalAppsTest, SpotifyStreamsUninterruptedUnderLeaseOS)
{
    harness::DeviceConfig cfg;
    cfg.mode = harness::MitigationMode::LeaseOS;
    harness::Device device(cfg);
    auto &app = device.install<Spotify>();
    device.start();
    device.runFor(20_min);
    EXPECT_FALSE(app.stalled());
    EXPECT_GT(app.playedSeconds(), 0.9 * 20.0 * 60.0);
    EXPECT_EQ(device.leaseos()->manager().totalDeferrals(), 0u);
}

TEST_F(NormalAppsTest, HavenMonitorsUninterruptedUnderLeaseOS)
{
    harness::DeviceConfig cfg;
    cfg.mode = harness::MitigationMode::LeaseOS;
    harness::Device device(cfg);
    auto &app = device.install<Haven>();
    device.start();
    device.runFor(20_min);
    EXPECT_FALSE(app.stalled());
    EXPECT_EQ(device.leaseos()->manager().totalDeferrals(), 0u);
}

TEST_F(NormalAppsTest, TrepnKeepsSamplingUnderLeaseOS)
{
    harness::DeviceConfig cfg;
    cfg.mode = harness::MitigationMode::LeaseOS;
    harness::Device device(cfg);
    auto &app = device.install<TrepnProfiler>();
    device.start();
    device.runFor(20_min);
    EXPECT_FALSE(app.stalled());
    EXPECT_EQ(device.leaseos()->manager().totalDeferrals(), 0u);
}

TEST_F(NormalAppsTest, ThrottlingDisruptsSpotify)
{
    harness::DeviceConfig cfg;
    cfg.mode = harness::MitigationMode::OneShotThrottle;
    cfg.throttleHoldLimit = 5_min;
    harness::Device device(cfg);
    auto &app = device.install<Spotify>();
    device.start();
    device.runFor(20_min);
    EXPECT_TRUE(app.stalled()); // §7.4: music streaming stopped
    EXPECT_LT(app.playedSeconds(), 0.6 * 20.0 * 60.0);
}

TEST_F(NormalAppsTest, ThrottlingDisruptsHaven)
{
    harness::DeviceConfig cfg;
    cfg.mode = harness::MitigationMode::OneShotThrottle;
    cfg.throttleHoldLimit = 5_min;
    harness::Device device(cfg);
    auto &app = device.install<Haven>();
    device.start();
    device.runFor(20_min);
    EXPECT_TRUE(app.stalled()); // monitoring stopped
}

// ---- Registry sanity ---------------------------------------------------------

TEST(RegistryTest, TwentySpecsWithUniqueKeys)
{
    const auto &specs = table5Specs();
    EXPECT_EQ(specs.size(), 20u);
    std::set<std::string> keys;
    for (const auto &spec : specs) keys.insert(spec.key);
    EXPECT_EQ(keys.size(), 20u);
    EXPECT_THROW(buggySpec("nope"), std::out_of_range);
}

TEST(RegistryTest, GenericFleetInstallsVariedApps)
{
    harness::Device device;
    auto fleet = installGenericFleet(device, 10);
    EXPECT_EQ(fleet.size(), 10u);
    EXPECT_EQ(device.apps().size(), 10u);
    device.start();
    device.runFor(1_min);
}

} // namespace
} // namespace leaseos::apps
