/**
 * @file
 * pairing: DroidLeaks-style acquire-without-release detection over the app
 * corpus (src/apps/).
 *
 * For each app unit (the .h/.cc pair sharing a path stem) the rule tallies
 * acquire-side and release-side calls per resource-API pair. A unit that
 * acquires a resource kind but never contains the matching release call
 * models a leak; deliberate leaks (the whole point of src/apps/buggy/)
 * carry a `// leaselint: allow(pairing)` annotation at the acquire site so
 * every intentional leak is documented in place.
 */

#include "leaselint/rules.h"

#include <map>

namespace leaselint {

namespace {

struct ApiPair {
    const char *acquire;
    const char *release;
};

/** Acquire/release vocabularies of the OS services (src/os headers). */
constexpr ApiPair kPairs[] = {
    {"acquire", "release"},                          // wakelock + wifi lock
    {"requestLocationUpdates", "removeUpdates"},     // GPS subscription
    {"registerListener", "unregisterListener"},      // sensor subscription
    {"startScan", "stopScan"},                       // bluetooth discovery
    {"startPlayback", "stopPlayback"},               // audio session
    {"openSession", "closeSession"},                 // audio session object
};

class PairingRule : public Rule
{
  public:
    const char *name() const override { return "pairing"; }
    const char *
    description() const override
    {
        return "app acquires a resource but has no matching release call";
    }

    void
    scan(const SourceFile &file) override
    {
        if (!underDir(file.path(), "src/apps")) return;
        std::string unit = stem(file.path());
        for (std::size_t pi = 0; pi < std::size(kPairs); ++pi) {
            PairState &state = units_[unit].pairs[pi];
            for (std::size_t line = 1; line <= file.lineCount(); ++line) {
                const std::string &code = file.codeLine(line);
                std::size_t at = 0;
                while ((at = findToken(code, kPairs[pi].acquire, at)) !=
                       std::string::npos) {
                    ++state.acquires;
                    if (state.firstAcquirePath.empty()) {
                        state.firstAcquirePath = file.path();
                        state.firstAcquireLine = line;
                    }
                    // Prefer an annotated acquire site so a suppression on
                    // any acquire in the unit silences the finding.
                    if (file.allowed(name(), line) &&
                        state.allowedPath.empty()) {
                        state.allowedPath = file.path();
                        state.allowedLine = line;
                    }
                    at += 1;
                }
                if (findToken(code, kPairs[pi].release) !=
                    std::string::npos)
                    ++state.releases;
            }
        }
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out) override
    {
        (void)file;
        (void)out; // all findings need cross-file tallies; see finalize()
    }

    void
    finalize(std::vector<Finding> &out) override
    {
        for (const auto &[unit, state] : units_) {
            for (std::size_t pi = 0; pi < std::size(kPairs); ++pi) {
                const PairState &pair = state.pairs.at(pi);
                if (pair.acquires == 0 || pair.releases > 0) continue;
                const std::string &path = pair.allowedPath.empty()
                                              ? pair.firstAcquirePath
                                              : pair.allowedPath;
                std::size_t line = pair.allowedPath.empty()
                                       ? pair.firstAcquireLine
                                       : pair.allowedLine;
                out.push_back(
                    {name(), path, line,
                     unit + " calls " + kPairs[pi].acquire + "() " +
                         std::to_string(pair.acquires) +
                         " time(s) but never " + kPairs[pi].release +
                         "() — resource leak unless the hold is "
                         "intentional (annotate the leak if it models a "
                         "documented bug)"});
            }
        }
    }

  private:
    struct PairState {
        std::size_t acquires = 0;
        std::size_t releases = 0;
        std::string firstAcquirePath;
        std::size_t firstAcquireLine = 0;
        std::string allowedPath;
        std::size_t allowedLine = 0;
    };
    struct UnitState {
        std::map<std::size_t, PairState> pairs;
    };

    /** "src/apps/buggy/torch.h" -> "src/apps/buggy/torch". */
    static std::string
    stem(const std::string &path)
    {
        std::size_t dot = path.rfind('.');
        std::size_t slash = path.rfind('/');
        if (dot == std::string::npos ||
            (slash != std::string::npos && dot < slash))
            return path;
        return path.substr(0, dot);
    }

    std::map<std::string, UnitState> units_;
};

} // namespace

std::unique_ptr<Rule>
makePairingRule()
{
    return std::make_unique<PairingRule>();
}

} // namespace leaselint
