/**
 * @file
 * bad-suppression: suppression comments that silently do nothing.
 *
 * Two failure modes, both of which previously escaped review because a
 * broken suppression looks exactly like a working one:
 *
 *  - `// leaselint: allow(determinsm)` — a typo'd or renamed rule name;
 *    the suppression map stores the unknown name, no rule ever matches
 *    it, and the finding the author meant to silence keeps firing (or
 *    worse: it silences nothing AND documents an intent the tool does
 *    not enforce);
 *  - `// leaselint: allow(determinism` — marker present but unparseable
 *    (missing paren, empty allow()), so nothing is stored at all.
 *
 * Scope: src/, bench/, examples/ — the directories the whole-repo gate
 * keeps clean. Docs and tests may mention the syntax in prose.
 */

#include "leaselint/rules.h"

namespace leaselint {

void
checkBadSuppression(const SourceFile &file, std::vector<Finding> &out)
{
    if (!underDir(file.path(), "src") && !underDir(file.path(), "bench") &&
        !underDir(file.path(), "examples"))
        return;
    for (std::size_t line : file.malformedAllowLines()) {
        out.push_back(
            {"bad-suppression", file.path(), line,
             "leaselint suppression marker present but no parseable "
             "allow(<rule>) — this comment suppresses nothing (check the "
             "parentheses)"});
    }
    const auto &own = file.ownAllows();
    for (std::size_t li = 0; li < own.size(); ++li) {
        for (const std::string &rule : own[li]) {
            if (isKnownRule(rule)) continue;
            out.push_back(
                {"bad-suppression", file.path(), li + 1,
                 "allow(" + rule + ") names an unknown rule — the "
                 "suppression silently matches nothing (see --list-rules "
                 "for the rule inventory)"});
        }
    }
}

} // namespace leaselint
