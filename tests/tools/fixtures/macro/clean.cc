// Fixture: macro arguments that must NOT trip macro-side-effect:
// pure reads, comparisons (==, <=, !=), member access through ->, and
// [=] lambda captures.

namespace fix {

void
Emitter::record()
{
    count_++; // mutation OUTSIDE the macro: fine
    LEASEOS_TRACE(emit(now(), count_));
    LEASEOS_ORACLE(checkInvariant(ptr->value == expected));
    LEASEOS_ORACLE(checkInvariant(low <= x && x != high));
    LEASEOS_TRACE(emitWith([=] { return count_; }));
}

} // namespace fix
