/**
 * @file
 * Tests for the DVFS extension (§8): governor behaviour, superlinear
 * power savings, per-level accounting, and the frequency-normalised
 * utilisation metric.
 */

#include <gtest/gtest.h>

#include "power/cpu_model.h"
#include "power/device_profile.h"

namespace leaseos::power {
namespace {

using sim::operator""_s;

constexpr Uid kApp = kFirstAppUid;

struct DvfsFixture : ::testing::Test {
    sim::Simulator sim;
    EnergyAccountant acc{sim};
    DeviceProfile profile = profiles::pixelXl();
    CpuModel cpu{sim, acc, profile};

    void
    SetUp() override
    {
        cpu.setScreenOn(true); // keep awake; screen is a separate model
        cpu.setDvfsEnabled(true);
    }
};

TEST_F(DvfsFixture, IdleSitsAtLowestOperatingPoint)
{
    EXPECT_EQ(cpu.dvfsLevel(), 0u);
    EXPECT_TRUE(cpu.dvfsEnabled());
}

TEST_F(DvfsFixture, GovernorFollowsLoad)
{
    auto heavy = cpu.beginWork(kApp, 3.5); // ~88 % of 4 cores
    EXPECT_EQ(cpu.dvfsLevel(), profile.dvfsLevels.size() - 1);
    cpu.endWork(heavy);
    EXPECT_EQ(cpu.dvfsLevel(), 0u);

    auto light = cpu.beginWork(kApp, 0.8); // needs ~0.26 of top freq
    EXPECT_EQ(cpu.dvfsLevel(), 0u);
    cpu.endWork(light);

    auto medium = cpu.beginWork(kApp, 2.0); // needs ~0.65
    EXPECT_EQ(cpu.dvfsLevel(), 1u);
    cpu.endWork(medium);
}

TEST_F(DvfsFixture, LightLoadDrawsSuperlinearlyLess)
{
    // Same load with and without DVFS: the low operating point's power
    // factor (0.28) cuts the busy draw.
    acc.sync();
    double idle0 = acc.totalEnergyMj();
    cpu.runWorkFor(kApp, 0.5, 10_s);
    sim.runFor(10_s);
    acc.sync();
    double with_dvfs = acc.totalEnergyMj() - idle0;

    cpu.setDvfsEnabled(false);
    double idle1 = acc.totalEnergyMj();
    cpu.runWorkFor(kApp, 0.5, 10_s);
    sim.runFor(10_s);
    acc.sync();
    double without = acc.totalEnergyMj() - idle1;

    EXPECT_LT(with_dvfs, 0.5 * without);
}

TEST_F(DvfsFixture, LevelSecondsAccrue)
{
    cpu.runWorkFor(kApp, 3.5, 5_s); // top level for 5 s
    sim.runFor(10_s);
    EXPECT_NEAR(cpu.levelSeconds(profile.dvfsLevels.size() - 1), 5.0,
                0.1);
    EXPECT_NEAR(cpu.levelSeconds(0), 5.0, 0.1);
}

TEST_F(DvfsFixture, NormalizedSecondsWeightByFrequency)
{
    // 10 s of 0.5-core work at the lowest point (freq 0.45).
    cpu.runWorkFor(kApp, 0.5, 10_s);
    sim.runFor(10_s);
    EXPECT_NEAR(cpu.cpuSeconds(kApp), 5.0, 0.01);
    EXPECT_NEAR(cpu.normalizedCpuSeconds(kApp),
                5.0 * profile.dvfsLevels[0].freq, 0.05);
}

TEST_F(DvfsFixture, DisabledModelUnchanged)
{
    cpu.setDvfsEnabled(false);
    cpu.runWorkFor(kApp, 0.5, 10_s);
    sim.runFor(10_s);
    EXPECT_DOUBLE_EQ(cpu.cpuSeconds(kApp),
                     cpu.normalizedCpuSeconds(kApp));
}

TEST_F(DvfsFixture, EmptyLevelTableDisablesGracefully)
{
    DeviceProfile bare = profile;
    bare.dvfsLevels.clear();
    CpuModel cpu2(sim, acc, bare);
    cpu2.setDvfsEnabled(true);
    EXPECT_FALSE(cpu2.dvfsEnabled());
}

} // namespace
} // namespace leaseos::power
