file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_kontalk.dir/bench/bench_fig3_kontalk.cc.o"
  "CMakeFiles/bench_fig3_kontalk.dir/bench/bench_fig3_kontalk.cc.o.d"
  "bench/bench_fig3_kontalk"
  "bench/bench_fig3_kontalk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_kontalk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
