#include "apps/buggy/gpslogger.h"

// GpsLogger is header-only; this TU anchors the module.
namespace leaseos::apps {
} // namespace leaseos::apps
