# Empty compiler generated dependencies file for test_csv_export.
# This may be replaced when dependencies are built.
