#include "apps/buggy/better_weather.h"

namespace leaseos::apps {

using sim::operator""_s;
using sim::operator""_min;

BetterWeather::BetterWeather(app::AppContext &ctx, Uid uid)
    : App(ctx, uid, "BetterWeather")
{
}

void
BetterWeather::start()
{
    requestLocation();
}

void
BetterWeather::stop()
{
    stopped_ = true;
    if (request_ != os::kInvalidToken)
        ctx_.locationManager().removeUpdates(request_);
    App::stop();
}

void
BetterWeather::requestLocation()
{
    if (stopped_) return;
    ++attempt_;
    request_ =
        ctx_.locationManager().requestLocationUpdates(uid(), 5_s, this);
    std::uint64_t this_attempt = attempt_;
    // Widgets schedule their timeouts through wakeup alarms — the retry
    // cycle must run even with the screen off and the CPU asleep.
    ctx_.alarmManager().setAlarm(
        uid(), kAttemptTimeout, true,
        [this, this_attempt] { onRequestTimeout(this_attempt); });
}

void
BetterWeather::onRequestTimeout(std::uint64_t attempt)
{
    if (stopped_ || attempt != attempt_) return;
    // No fix within the timeout: tear down and immediately search again —
    // the defect (no give-up, no back-off tied to signal conditions).
    ctx_.locationManager().removeUpdates(request_);
    request_ = os::kInvalidToken;
    sim::Time gap =
        kRetryGap + ctx_.rng.uniformTime(sim::Time::zero(), 10_s);
    ctx_.alarmManager().setAlarm(uid(), gap, true,
                                 [this] { requestLocation(); });
}

void
BetterWeather::onLocation(const GeoPoint &)
{
    if (stopped_) return;
    // Got a fix: fetch weather, update the widget, and back off properly.
    ++attempt_; // invalidate the pending timeout
    ++updates_;
    uiUpdate();
    if (request_ != os::kInvalidToken) {
        ctx_.locationManager().removeUpdates(request_);
        request_ = os::kInvalidToken;
    }
    ctx_.alarmManager().setAlarm(uid(), 30_min, true,
                                 [this] { requestLocation(); });
}

} // namespace leaseos::apps
