/**
 * @file
 * Reproduces Figure 12: reduction ratio of power waste versus λ for
 * *intermittent* misbehaviour. Each test case is a sequence of random
 * misbehaving/normal slices (uniform 0-10 min); the reduction ratio is
 * computed over the wasted power (the idle wakelock draw), aggregated
 * across cases per λ.
 *
 * Paper shape: 0.49 / 0.66 / 0.74 / 0.78 / 0.82 for λ = 1..5 — larger λ
 * means a larger reduction, approaching λ/(1+λ).
 *
 * Scale note: the paper generates 1000 cases x 2000 slices; that is ~2
 * simulated weeks per case. We default to 60 cases x 24 slices, which
 * converges to the same means (seeded, deterministic), and the constants
 * below can be raised for a full-scale run.
 */

#include <iostream>

#include "apps/synthetic/synthetic_apps.h"
#include "harness/device.h"
#include "harness/figure.h"
#include "harness/table.h"

using namespace leaseos;
using sim::operator""_s;

namespace {

constexpr int kCases = 60;
constexpr int kSlicesPerCase = 24;

/**
 * Waste = app-attributed idle-channel energy beyond what its *normal*
 * (busy) slices legitimately cost. The idle draw during well-utilised
 * holds is the price of real work; only the idle draw of misbehaving
 * slices counts as waste — which is what the lease can reclaim.
 */
double
wastedEnergyMj(harness::Device &device, Uid uid, double normalSeconds)
{
    auto &acc = device.accountant();
    acc.sync();
    power::ChannelId idle = acc.channelByName("cpu_idle");
    double idle_mj = acc.uidChannelEnergyMj(uid, idle);
    double legitimate =
        device.profile().cpuIdleAwakeMw * normalSeconds;
    return idle_mj > legitimate ? idle_mj - legitimate : 0.0;
}

double
runCase(const std::vector<sim::Time> &slices, int lambda, bool leased,
        sim::Time total)
{
    harness::DeviceConfig cfg;
    cfg.mode = leased ? harness::MitigationMode::LeaseOS
                      : harness::MitigationMode::None;
    cfg.leasePolicy.initialTerm = 5_s;
    cfg.leasePolicy.deferralInterval =
        sim::Time::fromSeconds(5.0 * lambda);
    cfg.leasePolicy.escalateDeferral = false; // λ is the variable here
    cfg.leasePolicy.adaptiveTerm = false;
    harness::Device device(cfg);
    auto &app = device.install<apps::IntermittentMisbehaviorApp>(slices);
    device.start();
    device.runFor(total);
    double normal_seconds = total.seconds() - app.misbehaveSeconds();
    return wastedEnergyMj(device, app.uid(), normal_seconds);
}

} // namespace

int
main()
{
    std::cout << harness::figureHeader(
        "Figure 12",
        "Reduction ratio of power waste under different lambda "
        "(intermittent misbehaviour; random 0-10 min slices). Paper: "
        "0.49, 0.66, 0.74, 0.78, 0.82 for lambda = 1..5.");

    // Pre-generate the per-case slice schedules (deterministic).
    sim::RandomSource rng(0xf16);
    std::vector<std::vector<sim::Time>> cases;
    std::vector<sim::Time> totals;
    for (int c = 0; c < kCases; ++c) {
        std::vector<sim::Time> slices;
        sim::Time total;
        for (int s = 0; s < kSlicesPerCase; ++s) {
            sim::Time len =
                rng.uniformTime(10_s, sim::Time::fromMinutes(10.0));
            slices.push_back(len);
            total += len;
        }
        cases.push_back(std::move(slices));
        totals.push_back(total);
    }

    harness::TextTable table(
        {"lambda", "mean reduction ratio", "model lambda/(1+lambda)"});
    std::vector<std::pair<std::string, double>> bars;
    for (int lambda = 1; lambda <= 5; ++lambda) {
        double sum = 0.0;
        for (int c = 0; c < kCases; ++c) {
            double base = runCase(cases[c], lambda, false, totals[c]);
            double leased = runCase(cases[c], lambda, true, totals[c]);
            if (base > 0.0) sum += 1.0 - leased / base;
        }
        double mean = sum / kCases;
        bars.emplace_back("lambda=" + std::to_string(lambda), mean);
        table.addRow({std::to_string(lambda),
                      harness::TextTable::fmt(mean, 2),
                      harness::TextTable::fmt(
                          static_cast<double>(lambda) / (1.0 + lambda),
                          2)});
        std::cerr << "[fig12] lambda=" << lambda << " done\n";
    }
    std::cout << harness::barChart(bars, "reduction ratio", 1.0) << "\n";
    std::cout << table.toString();
    std::cout << "\nLarger lambda -> higher reduction, but also a higher "
                 "misjudgment penalty for legitimate work (§7.5).\n";
    return 0;
}
