#include "apps/normal/trepn_profiler.h"

// TrepnProfiler is header-only; this TU anchors the module.
namespace leaseos::apps {
} // namespace leaseos::apps
