#include "os/binder.h"

// Binder types are header-only; this TU anchors the module in the build.
namespace leaseos::os {
} // namespace leaseos::os
