#include "apps/buggy/kontalk.h"

namespace leaseos::apps {

using sim::operator""_ms;
using sim::operator""_s;

Kontalk::Kontalk(app::AppContext &ctx, Uid uid) : App(ctx, uid, "Kontalk")
{
}

void
Kontalk::start()
{
    // The bug: acquire in onCreate...
    wakeLock_ = ctx_.powerManager().newWakeLock(
        uid(), os::WakeLockType::Partial, "Kontalk:MessageCenter");
    ctx_.powerManager().acquire(wakeLock_);

    // ...authenticate with the server (quick), then never release.
    ctx_.network.httpRequest(uid(), kServer, 8000,
                             [this](env::NetResult) {
                                 process_.postNow([this] {
                                     authenticated_ = true;
                                     keepalive();
                                 });
                             });
}

void
Kontalk::keepalive()
{
    if (stopped_) return;
    // Tiny periodic ping: well under 1 % CPU utilisation of the forced
    // awake time — the Fig. 3 signature.
    process_.computeScaled(0.5, 25_ms);
    process_.post(60_s, [this] { keepalive(); });
}

void
Kontalk::stop()
{
    stopped_ = true;
    // onDestroy is the only release path.
    ctx_.powerManager().release(wakeLock_);
    ctx_.powerManager().destroy(wakeLock_);
    App::stop();
}

} // namespace leaseos::apps
