/**
 * @file
 * Policy explorer: sweep the lease term and deferral interval over a
 * Long-Holding app and print the resulting effectiveness — a hands-on
 * version of the §5.1 trade-off (short terms detect faster but account
 * more; the ratio λ = τ/t decides the reduction).
 *
 * Doubles as the tour of the sweep API: each (term, τ) cell is one
 * declarative RunSpec, and the 9-cell grid runs concurrently on a
 * ParallelRunner (pass --jobs N to pick the pool size).
 */

#include <iostream>

#include "apps/synthetic/synthetic_apps.h"
#include "harness/runner.h"
#include "harness/table.h"

using namespace leaseos;
using sim::operator""_s;
using sim::operator""_min;

namespace {

harness::RunSpec
sweepCell(sim::Time term, sim::Time tau)
{
    return harness::RunSpec{}
        .withName("term=" + term.toString() + " tau=" + tau.toString())
        .withConfig(harness::DeviceConfig{}
                        .withMode(harness::MitigationMode::LeaseOS)
                        .tunePolicy([&](lease::LeasePolicy &p) {
                            p.initialTerm = term;
                            p.deferralInterval = tau;
                            p.adaptiveTerm = false;
                            p.escalateDeferral = false;
                        }))
        .withDuration(30_min)
        .withApp<apps::LongHoldingTestApp>()
        .withProbe("held_s", [](harness::Device &d) {
            return d.server().powerManager().enabledSeconds(
                d.apps().front()->uid());
        });
}

} // namespace

int
main(int argc, char **argv)
{
    std::cout << "Lease policy explorer: Long-Holding app, 30-minute "
                 "runs\n\n";

    const sim::Time terms[] = {5_s, 30_s, 60_s};
    const sim::Time taus[] = {25_s, 60_s, 180_s};
    std::vector<harness::RunSpec> specs;
    for (sim::Time term : terms)
        for (sim::Time tau : taus) specs.push_back(sweepCell(term, tau));

    harness::ParallelRunner runner(harness::ParallelRunner::parseArgs(
        argc, argv));
    auto results = runner.run(specs);

    harness::TextTable table({"term", "tau", "lambda", "held (s)",
                              "app power (mW)", "term checks"});
    std::size_t i = 0;
    for (sim::Time term : terms) {
        for (sim::Time tau : taus) {
            const auto &r = results[i++];
            table.addRow({term.toString(), tau.toString(),
                          harness::TextTable::fmt(tau / term, 2),
                          harness::TextTable::fmt(r.probe("held_s"), 0),
                          harness::TextTable::fmt(r.appPowerMw),
                          std::to_string(r.termChecks)});
        }
    }
    std::cout << table.toString();
    std::cout << "\nReading: holding ~ 1800/(1+lambda); short terms cost "
                 "more term checks (accounting) for the same lambda.\n";
    return 0;
}
