# Empty dependencies file for test_location_manager.
# This may be replaced when dependencies are built.
