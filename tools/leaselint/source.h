#ifndef LEASELINT_SOURCE_H
#define LEASELINT_SOURCE_H

/**
 * @file
 * Source-file model for leaselint: raw lines, a "code view" with comments
 * and string/char literals blanked out (so token matches never fire inside
 * prose or log strings), and the per-line suppression map parsed from
 * `// leaselint: allow(rule-a, rule-b)` comments.
 *
 * A suppression applies to the line carrying the comment and to the line
 * immediately below it, so both styles work:
 *
 *     foo();  // leaselint: allow(determinism) -- justification
 *
 *     // leaselint: allow(determinism) -- justification
 *     foo();
 *
 * Line endings are normalized at parse time: a trailing '\r' (CRLF
 * files) is stripped from every line before the code view and the
 * suppression map are built, so a Windows checkout lints identically to
 * a Unix one.
 */

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace leaselint {

class SourceFile
{
  public:
    /** Parse @p text as the contents of @p path (no filesystem access). */
    static SourceFile fromString(std::string path, const std::string &text);

    /** Load from disk; nullopt if the file cannot be read. */
    static std::optional<SourceFile> load(const std::string &fsPath,
                                          std::string displayPath);

    const std::string &path() const { return path_; }
    std::size_t lineCount() const { return lines_.size(); }

    /** Raw text of 1-based line @p line (no trailing newline). */
    const std::string &rawLine(std::size_t line) const
    {
        return lines_[line - 1];
    }

    /** Code view of 1-based line @p line: comments/literals blanked. */
    const std::string &codeLine(std::size_t line) const
    {
        return code_[line - 1];
    }

    /** Whole code view joined with '\n' (for multi-line scanning). */
    const std::string &codeText() const { return codeText_; }

    /** 1-based line number containing code-view offset @p offset. */
    std::size_t lineOfOffset(std::size_t offset) const;

    /** True if @p rule is suppressed on 1-based @p line. */
    bool allowed(const std::string &rule, std::size_t line) const;

    /** allows()[i] = rules suppressed on line i+1 (comment + next line). */
    const std::vector<std::vector<std::string>> &allows() const
    {
        return allows_;
    }

    /**
     * ownAllows()[i] = rules named by an allow() comment ON line i+1
     * itself (no next-line propagation) — one entry per written
     * suppression, for auditing them.
     */
    const std::vector<std::vector<std::string>> &ownAllows() const
    {
        return ownAllows_;
    }

    /**
     * 1-based lines whose comment contains the "leaselint:" marker but
     * parses to no rule names (missing paren, empty allow()): the
     * author wrote a suppression that silently suppresses nothing.
     */
    const std::vector<std::size_t> &malformedAllowLines() const
    {
        return malformedAllows_;
    }

    /** FNV-1a 64-bit hash of the raw bytes this file was parsed from. */
    std::uint64_t contentHash() const { return contentHash_; }

  private:
    std::string path_;
    std::vector<std::string> lines_;
    std::vector<std::string> code_;
    std::string codeText_;
    /** lineStart_[i] = offset of line i+1 in codeText_. */
    std::vector<std::size_t> lineStart_;
    /** allows_[i] = rules suppressed on line i+1. */
    std::vector<std::vector<std::string>> allows_;
    std::vector<std::vector<std::string>> ownAllows_;
    std::vector<std::size_t> malformedAllows_;
    std::uint64_t contentHash_ = 0;
};

/**
 * Find @p token in @p text at identifier boundaries (neither neighbour is
 * [A-Za-z0-9_]), starting at @p from.
 * @return offset of the match or std::string::npos.
 */
std::size_t findToken(const std::string &text, const std::string &token,
                      std::size_t from = 0);

/** True if @p path (with '/' separators) starts with directory @p prefix. */
bool underDir(const std::string &path, const std::string &prefix);

} // namespace leaselint

#endif // LEASELINT_SOURCE_H
