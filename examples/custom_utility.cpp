/**
 * @file
 * Custom utility example — the paper's Fig. 6 scenario, end to end.
 *
 * TapAndTurn shows a rotation icon whenever the orientation sensor
 * reports a change; its IUtilityCounter reports 100 * clicks / rotations.
 * Scenario A: the phone shuffles in a pocket all night, icons appear,
 * nobody clicks → utility collapses → the sensor lease is deferred.
 * Scenario B: an attentive user clicks the icon → utility stays high →
 * the lease keeps renewing and the app works normally.
 */

#include <iostream>

#include "apps/buggy/tapandturn.h"
#include "harness/device.h"

using namespace leaseos;
using sim::operator""_s;
using sim::operator""_min;

namespace {

void
runScenario(bool user_clicks)
{
    harness::DeviceConfig config;
    config.mode = harness::MitigationMode::LeaseOS;
    harness::Device device(config);

    auto &app = device.install<apps::TapAndTurn>();
    device.start();

    if (user_clicks) {
        // The user clicks the rotation icon shortly after each rotation.
        device.simulator().schedulePeriodic(125_s, [&app] {
            app.clickIcon();
            return true;
        });
    }

    device.runFor(30_min);

    auto &mgr = device.leaseos()->manager();
    std::cout << "  rotations shown: " << app.rotations()
              << ", clicks: " << app.clicks() << "\n"
              << "  sensor app power: " << device.appPowerMw(app.uid())
              << " mW\n"
              << "  lease deferrals: " << mgr.totalDeferrals() << " ("
              << (mgr.totalDeferrals() > 0 ? "Low-Utility caught"
                                           : "kept renewing")
              << ")\n\n";
}

} // namespace

int
main()
{
    std::cout << "Fig. 6: TapAndTurn with an IUtilityCounter "
                 "(score = 100 * clicks / rotations)\n\n";

    std::cout << "Scenario A: phone in pocket, icons ignored\n";
    runScenario(false);

    std::cout << "Scenario B: attentive user clicking the icon\n";
    runScenario(true);

    std::cout << "The custom score is only a hint: if the generic utility "
                 "is already very low the app cannot talk its way out "
                 "(abuse guard, §3.3).\n";
    return 0;
}
