file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_k9_lub.dir/bench/bench_fig4_k9_lub.cc.o"
  "CMakeFiles/bench_fig4_k9_lub.dir/bench/bench_fig4_k9_lub.cc.o.d"
  "bench/bench_fig4_k9_lub"
  "bench/bench_fig4_k9_lub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_k9_lub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
