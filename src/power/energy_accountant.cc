#include "power/energy_accountant.h"

#include <algorithm>
#include <cassert>

#include "obs/trace.h"
#include "sim/checkpoint.h"

namespace leaseos::power {

ChannelId
EnergyAccountant::makeChannel(std::string name)
{
    // Creating a channel does not change power, but sync first so channel
    // indices never see time before their creation.
    sync();
    channels_.emplace_back();
    channels_.back().name = std::move(name);
    if (metrics_)
        channels_.back().metric =
            metrics_->gauge("power." + channels_.back().name + ".mj");
    return static_cast<ChannelId>(channels_.size() - 1);
}

std::uint32_t
EnergyAccountant::uidSlot(Uid uid)
{
    // Linear scan: a device hosts a handful of uids, and this only runs
    // when power settings change, never in integrate().
    for (std::uint32_t i = 0; i < uids_.size(); ++i)
        if (uids_[i] == uid) return i;
    uids_.push_back(uid);
    uidMj_.push_back(0.0);
    return static_cast<std::uint32_t>(uids_.size() - 1);
}

void
EnergyAccountant::setPowerShares(ChannelId ch,
                                 std::span<const std::pair<Uid, double>>
                                     sharesMw)
{
    assert(ch < channels_.size());
    sync();
    Channel &c = channels_[ch];
    c.shares.clear();
    for (const auto &[uid, mw] : sharesMw)
        c.shares.push_back(Share{uid, uidSlot(uid), mw});
    if (c.uidMj.size() < uids_.size()) c.uidMj.resize(uids_.size(), 0.0);
}

void
EnergyAccountant::setPower(ChannelId ch, double totalMw,
                           std::span<const Uid> owners)
{
    assert(ch < channels_.size());
    sync();
    Channel &c = channels_[ch];
    c.shares.clear();
    if (totalMw > 0.0) {
        if (owners.empty()) {
            c.shares.push_back(
                Share{kSystemUid, uidSlot(kSystemUid), totalMw});
        } else {
            double each = totalMw / static_cast<double>(owners.size());
            for (Uid u : owners)
                c.shares.push_back(Share{u, uidSlot(u), each});
        }
    }
    if (c.uidMj.size() < uids_.size()) c.uidMj.resize(uids_.size(), 0.0);
}

void
EnergyAccountant::integrate(Channel &ch, double dtSeconds)
{
    // Share order (and therefore floating-point accumulation order) is
    // exactly the order the caller supplied — part of the determinism
    // contract, so results stay byte-identical across refactors.
    for (const Share &s : ch.shares) {
        double mj = s.mw * dtSeconds;
        ch.energyMj += mj;
        ch.uidMj[s.slot] += mj;
        totalMj_ += mj;
        uidMj_[s.slot] += mj;
    }
}

void
EnergyAccountant::sync()
{
    sim::Time now = sim_.now();
    if (now <= lastSync_) {
        lastSync_ = now;
        return;
    }
    double dt = (now - lastSync_).seconds();
    for (auto &ch : channels_) integrate(ch, dt);
    if (metrics_)
        for (const auto &ch : channels_)
            metrics_->set(ch.metric, ch.energyMj);
#if defined(LEASEOS_TRACING)
    // Channel id rides in the lease-id field; energy (mJ) in the payload.
    // Syncs happen per power event, so decimate 1-in-16 per category.
    if (obs::TraceBuffer *trace = obs::TraceBuffer::current())
        for (ChannelId ch = 0; ch < channels_.size(); ++ch)
            trace->emitSampled(15, now, obs::TraceCategory::Power,
                               obs::TraceCode::PowerSync, kSystemUid, ch,
                               obs::payloadFromDouble(
                                   channels_[ch].energyMj));
#endif
    lastSync_ = now;
}

double
EnergyAccountant::uidEnergyMj(Uid uid) const
{
    for (std::size_t i = 0; i < uids_.size(); ++i)
        if (uids_[i] == uid) return uidMj_[i];
    return 0.0;
}

double
EnergyAccountant::channelEnergyMj(ChannelId ch) const
{
    assert(ch < channels_.size());
    return channels_[ch].energyMj;
}

double
EnergyAccountant::uidChannelEnergyMj(Uid uid, ChannelId ch) const
{
    assert(ch < channels_.size());
    const Channel &c = channels_[ch];
    for (std::size_t i = 0; i < uids_.size(); ++i)
        if (uids_[i] == uid)
            // The channel's table may lag the global uid table if this
            // uid never drew power here.
            return i < c.uidMj.size() ? c.uidMj[i] : 0.0;
    return 0.0;
}

double
EnergyAccountant::totalPowerMw() const
{
    double mw = 0.0;
    for (const auto &ch : channels_)
        for (const Share &s : ch.shares) mw += s.mw;
    return mw;
}

double
EnergyAccountant::uidPowerMw(Uid uid) const
{
    double mw = 0.0;
    for (const auto &ch : channels_)
        for (const Share &s : ch.shares)
            if (s.uid == uid) mw += s.mw;
    return mw;
}

const std::string &
EnergyAccountant::channelName(ChannelId ch) const
{
    assert(ch < channels_.size());
    return channels_[ch].name;
}

ChannelId
EnergyAccountant::channelByName(const std::string &name) const
{
    for (ChannelId ch = 0; ch < channels_.size(); ++ch)
        if (channels_[ch].name == name) return ch;
    return static_cast<ChannelId>(channels_.size());
}

std::vector<Uid>
EnergyAccountant::knownUids() const
{
    std::vector<Uid> uids(uids_);
    std::sort(uids.begin(), uids.end());
    return uids;
}

void
EnergyAccountant::saveState(sim::CheckpointWriter &w) const
{
    w.beginSection("energy", 1);
    w.time(lastSync_);
    w.f64(totalMj_);
    w.u64(uids_.size());
    for (std::size_t i = 0; i < uids_.size(); ++i) {
        w.u32(static_cast<std::uint32_t>(uids_[i]));
        w.f64(uidMj_[i]);
    }
    w.u64(channels_.size());
    for (const Channel &c : channels_) {
        w.str(c.name);
        w.f64(c.energyMj);
        w.u64(c.uidMj.size());
        for (double mj : c.uidMj) w.f64(mj);
        w.u64(c.shares.size());
        for (std::size_t i = 0; i < c.shares.size(); ++i) {
            w.u32(static_cast<std::uint32_t>(c.shares[i].uid));
            w.u32(c.shares[i].slot);
            w.f64(c.shares[i].mw);
        }
    }
    w.endSection();
}

void
EnergyAccountant::restoreState(sim::CheckpointReader &r)
{
    sim::requireSectionVersion("energy", r.beginSection("energy"), 1);
    lastSync_ = r.time();
    totalMj_ = r.f64();
    std::uint64_t uidCount = r.u64();
    uids_.clear();
    uidMj_.clear();
    uids_.reserve(uidCount);
    uidMj_.reserve(uidCount);
    for (std::uint64_t i = 0; i < uidCount; ++i) {
        uids_.push_back(static_cast<Uid>(r.u32()));
        uidMj_.push_back(r.f64());
    }
    std::uint64_t channelCount = r.u64();
    if (channelCount != channels_.size())
        throw sim::CheckpointError(
            "energy section has " + std::to_string(channelCount) +
            " channels; this device has " +
            std::to_string(channels_.size()));
    for (Channel &c : channels_) {
        std::string name = r.str();
        if (name != c.name)
            throw sim::CheckpointError("energy channel mismatch: blob '" +
                                       name + "' vs device '" + c.name +
                                       "'");
        c.energyMj = r.f64();
        std::uint64_t slots = r.u64();
        c.uidMj.assign(slots, 0.0);
        for (std::uint64_t i = 0; i < slots; ++i) c.uidMj[i] = r.f64();
        c.shares.clear();
        std::uint64_t shareCount = r.u64();
        for (std::uint64_t i = 0; i < shareCount; ++i) {
            Share s;
            s.uid = static_cast<Uid>(r.u32());
            s.slot = r.u32();
            s.mw = r.f64();
            c.shares.push_back(s);
        }
    }
    r.endSection();
}

} // namespace leaseos::power
