/**
 * @file
 * Unit tests for sim::EventQueue ordering, cancellation, and determinism.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace leaseos::sim {
namespace {

TEST(EventQueueTest, EmptyInitially)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(3_s, [&] { fired.push_back(3); });
    q.schedule(1_s, [&] { fired.push_back(1); });
    q.schedule(2_s, [&] { fired.push_back(2); });
    while (!q.empty()) q.pop().second();
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoTieBreakAtSameTime)
{
    EventQueue q;
    std::vector<int> fired;
    for (int i = 0; i < 10; ++i)
        q.schedule(5_s, [&fired, i] { fired.push_back(i); });
    while (!q.empty()) q.pop().second();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueueTest, NextTimeReportsEarliestLive)
{
    EventQueue q;
    EventId early = q.schedule(1_s, [] {});
    q.schedule(2_s, [] {});
    EXPECT_EQ(q.nextTime(), 1_s);
    q.cancel(early);
    EXPECT_EQ(q.nextTime(), 2_s);
}

TEST(EventQueueTest, CancelPendingReturnsTrue)
{
    EventQueue q;
    EventId id = q.schedule(1_s, [] {});
    EXPECT_TRUE(q.pending(id));
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.pending(id));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelTwiceReturnsFalse)
{
    EventQueue q;
    EventId id = q.schedule(1_s, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelFiredEventReturnsFalse)
{
    EventQueue q;
    EventId id = q.schedule(1_s, [] {});
    q.schedule(2_s, [] {});
    q.pop().second();
    EXPECT_FALSE(q.cancel(id));
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, CancelInvalidIdReturnsFalse)
{
    EventQueue q;
    EXPECT_FALSE(q.cancel(kInvalidEventId));
    EXPECT_FALSE(q.cancel(9999));
}

TEST(EventQueueTest, CancelledEventNeverFires)
{
    EventQueue q;
    bool fired = false;
    EventId id = q.schedule(1_s, [&] { fired = true; });
    q.schedule(2_s, [] {});
    q.cancel(id);
    while (!q.empty()) q.pop().second();
    EXPECT_FALSE(fired);
}

TEST(EventQueueTest, SizeCountsOnlyLiveEvents)
{
    EventQueue q;
    EventId a = q.schedule(1_s, [] {});
    q.schedule(2_s, [] {});
    q.schedule(3_s, [] {});
    EXPECT_EQ(q.size(), 3u);
    q.cancel(a);
    EXPECT_EQ(q.size(), 2u);
}

TEST(EventQueueTest, ManyEventsStressOrdering)
{
    EventQueue q;
    // Interleave schedule and cancel; verify monotone pop order.
    std::vector<EventId> ids;
    for (int i = 0; i < 1000; ++i)
        ids.push_back(
            q.schedule(Time::fromMillis(997 * i % 1000), [] {}));
    for (int i = 0; i < 1000; i += 3) q.cancel(ids[i]);
    Time last = Time::zero();
    while (!q.empty()) {
        Time t = q.nextTime();
        EXPECT_GE(t, last);
        last = t;
        q.pop();
    }
}

} // namespace
} // namespace leaseos::sim
