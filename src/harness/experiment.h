#ifndef LEASEOS_HARNESS_EXPERIMENT_H
#define LEASEOS_HARNESS_EXPERIMENT_H

/**
 * @file
 * Table-5 cell spec builder over the generic scenario-run API in
 * harness/runner.h.
 *
 * mitigationCellSpec() describes the paper's standard cell: run one buggy
 * app for 30 minutes under a mitigation mode on a Pixel XL, with a
 * background "lightly attended device" script (occasional glances /
 * pocket movement) that gives Doze its realistic interruptions. Callers
 * execute the spec with runScenario() or sweep lists of them with
 * ParallelRunner.
 */

#include "harness/runner.h"
#include "sim/time.h"

namespace leaseos::apps {
struct BuggyAppSpec;
} // namespace leaseos::apps

namespace leaseos::harness {

/** Options for a Table 5 cell run. */
struct MitigationRunOptions {
    sim::Time duration = sim::Time::fromMinutes(30.0);
    power::DeviceProfile profile = power::profiles::pixelXl();
    /**
     * Periodic user glances (screen + motion blips). On = the realistic
     * "phone on the desk but alive" condition that interrupts Doze.
     */
    bool userGlances = true;
    sim::Time glanceInterval = sim::Time::fromMinutes(10.0);
    sim::Time glanceLength = sim::Time::fromSeconds(20.0);
    std::uint64_t seed = 0x1ea5e05;
};

/**
 * Install the glance script on a device (screen on briefly + motion blip
 * every glanceInterval). Inert handle when opt.userGlances is off; the
 * script stops when the returned handle is cancelled or destroyed.
 */
[[nodiscard]] sim::PeriodicHandle
installGlanceScript(Device &device, const MitigationRunOptions &opt);

/**
 * Build the RunSpec for one buggy-app × mitigation-mode Table 5 cell;
 * execute with runScenario() or feed lists of them to a ParallelRunner.
 */
RunSpec mitigationCellSpec(const apps::BuggyAppSpec &spec,
                           MitigationMode mode,
                           const MitigationRunOptions &opt = {});

/** Reduction percentage of @p mitigated relative to @p baseline. */
double reductionPercent(double baselineMw, double mitigatedMw);

} // namespace leaseos::harness

#endif // LEASEOS_HARNESS_EXPERIMENT_H
