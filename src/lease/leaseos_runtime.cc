#include "lease/leaseos_runtime.h"

namespace leaseos::lease {

LeaseOsRuntime::LeaseOsRuntime(sim::Simulator &sim, power::CpuModel &cpu,
                               power::RadioModel &radio,
                               os::SystemServer &server, LeasePolicy policy)
{
    manager_ = std::make_unique<LeaseManagerService>(sim, cpu, policy);

    wakelockProxy_ = std::make_unique<WakelockLeaseProxy>(
        server.powerManager(), cpu, server.exceptionHandler(),
        server.activityManager());
    screenProxy_ = std::make_unique<ScreenLeaseProxy>(
        server.powerManager(), server.activityManager());
    gpsProxy_ = std::make_unique<GpsLeaseProxy>(server.locationManager(),
                                                server.activityManager());
    sensorProxy_ = std::make_unique<SensorLeaseProxy>(
        server.sensorManager(), server.activityManager());
    wifiProxy_ = std::make_unique<WifiLeaseProxy>(
        server.wifiManager(), radio, server.activityManager());
    audioProxy_ = std::make_unique<AudioLeaseProxy>(
        server.audioSessions(), server.activityManager());
    bluetoothProxy_ = std::make_unique<BluetoothLeaseProxy>(
        server.bluetoothService(), server.activityManager());

    manager_->registerProxy(wakelockProxy_.get());
    manager_->registerProxy(screenProxy_.get());
    manager_->registerProxy(gpsProxy_.get());
    manager_->registerProxy(sensorProxy_.get());
    manager_->registerProxy(wifiProxy_.get());
    manager_->registerProxy(audioProxy_.get());
    manager_->registerProxy(bluetoothProxy_.get());
}

} // namespace leaseos::lease
