file(REMOVE_RECURSE
  "CMakeFiles/custom_utility.dir/examples/custom_utility.cpp.o"
  "CMakeFiles/custom_utility.dir/examples/custom_utility.cpp.o.d"
  "examples/custom_utility"
  "examples/custom_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
