#ifndef LEASEOS_HARNESS_SHARDED_RUNNER_H
#define LEASEOS_HARNESS_SHARDED_RUNNER_H

/**
 * @file
 * Time-sliced sharded execution of long scenarios (DESIGN.md §11).
 *
 * ParallelRunner's unit of scheduling is a whole run; one week-long
 * device therefore occupies a worker for the whole wall-clock while
 * shorter runs drain. ShardedRunner's unit is a *time slice*: each
 * spec's timeline is cut at RunSpec::shards boundaries, a live
 * ScenarioSession carries the device across slices, and a ready-queue
 * scheduler interleaves slices of different devices — slice i of device
 * A runs in parallel with slice j of device B, and consecutive slices
 * of the same device may run on different workers (live handoff via
 * ScenarioSession::bind()/unbind(); pending event closures make
 * restore-from-blob a non-starter for migration).
 *
 * Because a discrete-event simulator satisfies run(T1); run(T2) ≡
 * run(T2) exactly, the stitched execution is bit-identical to the
 * single shot — including the checkpoint digests emitted at
 * RunSpec::checkpointEvery boundaries, which is how CI proves it stays
 * that way.
 */

#include <functional>
#include <vector>

#include "harness/runner.h"

namespace leaseos::harness {

/**
 * Fixed worker-pool executor scheduling individual time slices.
 */
class ShardedRunner
{
  public:
    explicit ShardedRunner(RunnerOptions options = {});

    /** Resolved worker count (>= 1). */
    int jobs() const { return jobs_; }

    /**
     * Run every spec, slicing each into its RunSpec::shards time slices;
     * returns results in spec order, equal to what ParallelRunner
     * produces for the same specs. @p onResult fires once per *completed
     * spec* (serialised, completion order). Seeding matches
     * ParallelRunner: RunnerOptions::baseSeed reseeds per spec index.
     *
     * New sessions are only opened when no started session has a slice
     * ready, so live devices stay bounded near the worker count instead
     * of the spec count.
     */
    std::vector<RunResult>
    run(const std::vector<RunSpec> &specs,
        const std::function<void(const RunResult &)> &onResult = {}) const;

  private:
    int jobs_ = 1;
    RunnerOptions options_;
};

/**
 * Slice-boundary instants for @p duration cut into @p shards slices:
 * bounds[i] = (i+1)·duration/shards, monotone, last == duration. A
 * shard count < 1 is treated as 1.
 */
std::vector<sim::Time> shardBounds(sim::Time duration, int shards);

} // namespace leaseos::harness

#endif // LEASEOS_HARNESS_SHARDED_RUNNER_H
