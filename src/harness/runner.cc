#include "harness/runner.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "harness/scenario_session.h"

namespace leaseos::harness {

double
RunResult::probe(const std::string &probeName) const
{
    for (const auto &[name_, value] : probes)
        if (name_ == probeName) return value;
    throw std::out_of_range("no probe named '" + probeName + "'");
}

double
RunResult::metric(const std::string &metricName) const
{
    for (const auto &[name_, value] : metrics)
        if (name_ == metricName) return value;
    throw std::out_of_range("no metric named '" + metricName + "'");
}

sim::PeriodicHandle
installGlanceScript(Device &device, sim::Time interval, sim::Time length)
{
    auto &sim = device.simulator();
    auto &dms = device.server().displayManager();
    auto &motion = device.motion();
    // Generation guard: with length >= interval, glance N's screen-off
    // event fires after glance N+1 has begun and would blank the screen
    // (and park the user) mid-glance. Only the latest glance's off-event
    // may take effect.
    auto generation = std::make_shared<std::uint64_t>(0);
    return sim.schedulePeriodicScoped(
        interval, [&sim, &dms, &motion, length, generation] {
            // Pick up the phone: motion, then screen for a moment.
            std::uint64_t glance = ++*generation;
            motion.setStationary(false);
            dms.userSetScreen(true);
            sim.schedule(length, [&dms, &motion, generation, glance] {
                if (*generation != glance) return; // superseded
                dms.userSetScreen(false);
                motion.setStationary(true);
            });
        });
}

RunResult
runScenario(const RunSpec &spec)
{
    return runScenario(spec, spec.config);
}

RunResult
runScenario(const RunSpec &spec, const DeviceConfig &config)
{
    // Single-shot execution is just a one-slice session. ShardedRunner
    // drives the same class slice by slice, which is why the two agree
    // bit-for-bit (see tests/test_sharded_runner.cc).
    ScenarioSession session(spec, config);
    session.advanceTo(spec.duration);
    return session.finish();
}

std::uint64_t
deriveSeed(std::uint64_t baseSeed, std::uint64_t specIndex)
{
    // splitmix64: the recommended seeding mixer for mt19937-family
    // engines; consecutive indices land in statistically independent
    // streams.
    std::uint64_t z = baseSeed + 0x9e3779b97f4a7c15ULL * (specIndex + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

int
ParallelRunner::defaultJobs()
{
    if (const char *env = std::getenv("LEASEOS_JOBS")) {
        int n = std::atoi(env);
        if (n > 0) return n;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

std::optional<int>
ParallelRunner::parseJobs(const char *text)
{
    if (text == nullptr || *text == '\0') return std::nullopt;
    long value = 0;
    for (const char *p = text; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9') return std::nullopt;
        value = value * 10 + (*p - '0');
        if (value > 100000) return std::nullopt; // obviously bogus
    }
    return static_cast<int>(value);
}

namespace {

[[noreturn]] void
jobsUsageError(const char *prog, const std::string &offender)
{
    std::fprintf(stderr,
                 "%s: invalid jobs flag '%s'\n"
                 "usage: %s [--jobs N | --jobs=N | -j N | -jN]\n"
                 "  N is a non-negative integer; 0 (or $LEASEOS_JOBS "
                 "unset) means automatic\n",
                 prog, offender.c_str(), prog);
    std::exit(2);
}

} // namespace

RunnerOptions
ParallelRunner::parseArgs(int argc, char **argv)
{
    RunnerOptions options;
    const char *prog = argc > 0 ? argv[0] : "bench";
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *value = nullptr;
        std::string offender = arg;
        if (std::strcmp(arg, "--jobs") == 0 || std::strcmp(arg, "-j") == 0) {
            // Separated form: the value is the next argv entry.
            if (i + 1 >= argc) jobsUsageError(prog, offender);
            value = argv[++i];
            offender += std::string(" ") + value;
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            value = arg + 7;
        } else if (std::strncmp(arg, "-j", 2) == 0 && arg[2] != '\0') {
            value = arg + 2;
        } else {
            continue; // not a jobs flag; other flags belong to the bench
        }
        std::optional<int> jobs = parseJobs(value);
        if (!jobs) jobsUsageError(prog, offender);
        options.jobs = *jobs;
        break;
    }
    return options;
}

ParallelRunner::ParallelRunner(RunnerOptions options)
    : options_(options)
{
    jobs_ = options.jobs > 0 ? options.jobs : defaultJobs();
}

std::vector<RunResult>
ParallelRunner::run(const std::vector<RunSpec> &specs,
                    const std::function<void(const RunResult &)> &onResult)
    const
{
    std::vector<RunResult> results(specs.size());
    if (specs.empty()) return results;

    // Work queue: a shared atomic cursor over the spec list. Each worker
    // claims the next index, runs that spec on its own Device/Simulator,
    // and writes into its private results slot — collection is ordered by
    // construction, not by completion.
    std::atomic<std::size_t> next{0};
    std::mutex reportMutex;
    std::exception_ptr firstError;

    auto worker = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= specs.size()) return;
            try {
                // Specs are shared read-only across workers: reseeding
                // clones only the DeviceConfig, never the spec's app/
                // setup/probe closures.
                const RunSpec &spec = specs[i];
                RunResult r;
                if (options_.baseSeed) {
                    DeviceConfig config = spec.config;
                    config.seed = deriveSeed(*options_.baseSeed, i);
                    r = runScenario(spec, config);
                } else {
                    r = runScenario(spec);
                }
                r.specIndex = i;
                if (onResult) {
                    std::lock_guard<std::mutex> lock(reportMutex);
                    onResult(r);
                }
                results[i] = std::move(r);
            } catch (...) {
                std::lock_guard<std::mutex> lock(reportMutex);
                if (!firstError) firstError = std::current_exception();
            }
        }
    };

    int pool = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(jobs_),
                              specs.size()));
    if (pool <= 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(static_cast<std::size_t>(pool));
        for (int t = 0; t < pool; ++t) threads.emplace_back(worker);
        for (auto &th : threads) th.join();
    }
    if (firstError) std::rethrow_exception(firstError);
    return results;
}

} // namespace leaseos::harness
