#ifndef LEASEOS_SIM_SIMULATOR_H
#define LEASEOS_SIM_SIMULATOR_H

/**
 * @file
 * The discrete-event simulator driving a simulated device.
 *
 * Every simulated subsystem (power model, OS services, apps, environments,
 * the lease manager) schedules work through one Simulator instance. Virtual
 * time only advances when the event at the head of the queue fires, so a
 * 30-minute experiment completes in milliseconds of wall time while
 * preserving exact timing relationships.
 */

#include <cstdint>
#include <functional>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace leaseos::sim {

/**
 * Discrete-event simulation engine.
 */
class Simulator
{
  public:
    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current virtual time. */
    Time now() const { return now_; }

    /** Schedule @p cb to run @p delay after the current time. */
    EventId
    schedule(Time delay, EventQueue::Callback cb)
    {
        return queue_.schedule(now_ + delay, std::move(cb));
    }

    /** Schedule @p cb at an absolute virtual timestamp. */
    EventId
    scheduleAt(Time when, EventQueue::Callback cb)
    {
        return queue_.schedule(when < now_ ? now_ : when, std::move(cb));
    }

    /**
     * Schedule a repeating callback with fixed period. The callback may
     * return false to stop the repetition.
     *
     * The returned id cancels only the *currently pending* occurrence; use
     * the bool return from the callback for cooperative shutdown, or keep
     * a PeriodicHandle.
     */
    EventId schedulePeriodic(Time period, std::function<bool()> cb);

    /** Cancel a pending event. @retval true if it was still pending. */
    bool cancel(EventId id) { return queue_.cancel(id); }

    /** @return true if @p id has not yet fired or been cancelled. */
    bool pending(EventId id) const { return queue_.pending(id); }

    /**
     * Run until the event queue drains or virtual time reaches @p until.
     * Events at exactly @p until still fire.
     * @return the virtual time at which the run stopped.
     */
    Time run(Time until = Time::max());

    /** Run for a span of virtual time from now. */
    Time runFor(Time span) { return run(now_ + span); }

    /** Pending live events (diagnostics). */
    std::size_t pendingEvents() const { return queue_.size(); }

    /** Total events executed so far. */
    std::uint64_t executedEvents() const { return executed_; }

  private:
    EventQueue queue_;
    Time now_;
    std::uint64_t executed_ = 0;
};

} // namespace leaseos::sim

#endif // LEASEOS_SIM_SIMULATOR_H
