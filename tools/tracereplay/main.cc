/**
 * tracereplay CLI — offline trace triage (DESIGN.md §10).
 *
 *   tracereplay TRACE            validate one trace / flight record
 *   tracereplay --diff A B       report the first diverging event
 *
 * Exit status: 0 clean, 1 replay issues / divergence, 2 usage or load
 * error.
 */

#include <cstdio>
#include <cstring>

#include "tracereplay/replay.h"

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: tracereplay TRACE\n"
                 "       tracereplay --diff A B\n"
                 "TRACE is a .jsonl trace export or a flightrec-*.json\n");
    return 2;
}

int
runValidate(const char *path)
{
    using namespace leaseos::tracereplay;
    Trace trace = loadTrace(path);
    if (!trace.ok()) {
        std::fprintf(stderr, "tracereplay: %s\n", trace.error.c_str());
        return 2;
    }
    if (trace.flightRecord) {
        std::printf("flight record: check=%s\n  %s\n",
                    trace.check.empty() ? "?" : trace.check.c_str(),
                    trace.detail.c_str());
    }
    ReplayReport report = validate(trace);
    for (const ReplayIssue &issue : report.issues) {
        std::printf("%s\n", issue.toString().c_str());
        if (issue.eventIndex < trace.events.size())
            std::printf("  %s\n",
                        trace.events[issue.eventIndex].toString().c_str());
    }
    std::printf("%s: %zu events, %zu leases (%zu pre-ring), "
                "%zu transitions checked, %zu issues\n",
                report.clean() ? "replay OK" : "replay FAILED",
                report.eventCount, report.leaseCount,
                report.inferredLeases, report.transitionsChecked,
                report.issues.size());
    return report.clean() ? 0 : 1;
}

int
runDiff(const char *pathA, const char *pathB)
{
    using namespace leaseos::tracereplay;
    Trace a = loadTrace(pathA);
    Trace b = loadTrace(pathB);
    if (!a.ok() || !b.ok()) {
        std::fprintf(stderr, "tracereplay: %s\n",
                     (!a.ok() ? a.error : b.error).c_str());
        return 2;
    }
    DiffResult diff = diffTraces(a, b);
    if (!diff.diverged) {
        std::printf("identical: %zu events\n", a.events.size());
        return 0;
    }
    std::printf("diverged at event #%zu (field %s):\n  a: %s\n  b: %s\n",
                diff.index, diff.field.c_str(), diff.a.c_str(),
                diff.b.c_str());
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 2 && std::strcmp(argv[1], "--help") != 0)
        return runValidate(argv[1]);
    if (argc == 4 && std::strcmp(argv[1], "--diff") == 0)
        return runDiff(argv[2], argv[3]);
    return usage();
}
