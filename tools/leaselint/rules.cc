#include "leaselint/rules.h"

namespace leaselint {

const std::vector<RuleInfo> &
allRules()
{
    static const std::vector<RuleInfo> rules = {
        {"determinism",
         "wall-clock, ambient RNG, or unordered-container iteration in "
         "simulation code"},
        {"ptr-ordered-iteration",
         "ordered container keyed on a raw pointer in src/ (iteration "
         "order is address-dependent under ASLR)"},
        {"macro-side-effect",
         "mutating expression inside a LEASEOS_TRACE / LEASEOS_ORACLE "
         "argument (compiles out in default builds)"},
        {"proxy-bypass",
         "service interposition API used outside proxies/mitigation/OS "
         "code"},
        {"flat-map-hotpath",
         "node-based map in hot-path code (src/sim, src/power); prefer "
         "dense arrays or InlineVec"},
        {"bad-suppression",
         "allow() comment naming an unknown rule, or an unparseable "
         "suppression marker"},
        {"cross-unit-pairing",
         "app unit acquires a resource with no release reachable through "
         "the cross-translation-unit call graph (supersedes `pairing`)"},
        {"switch-exhaustive",
         "switch over a core lease enum does not name every enumerator"},
        {"registry-contract",
         "MetricRegistry registration reachable from post-construction / "
         "hot code"},
    };
    return rules;
}

bool
isKnownRule(const std::string &name)
{
    for (const RuleInfo &rule : allRules())
        if (name == rule.name) return true;
    return false;
}

} // namespace leaselint
