#include "power/sensor_model.h"

#include "power/checkpoint_io.h"

#include <algorithm>

namespace leaseos::power {

namespace {

double &
accum(common::InlineVec<std::pair<Uid, double>, 8> &table, Uid uid)
{
    for (auto &entry : table)
        if (entry.first == uid) return entry.second;
    return table.emplace_back(uid, 0.0).second;
}

} // namespace

const char *
sensorTypeName(SensorType t)
{
    switch (t) {
      case SensorType::Accelerometer: return "accelerometer";
      case SensorType::Orientation: return "orientation";
      case SensorType::Gyroscope: return "gyroscope";
      case SensorType::Light: return "light";
    }
    return "unknown";
}

SensorModel::SensorModel(sim::Simulator &sim, EnergyAccountant &accountant,
                         const DeviceProfile &profile)
    : PowerComponent(sim, accountant, profile, "sensors"),
      channel_(accountant.makeChannel("sensors"))
{
    updatePower();
}

double
SensorModel::sensorMw(SensorType type) const
{
    switch (type) {
      case SensorType::Accelerometer: return profile_.accelerometerMw;
      case SensorType::Orientation: return profile_.orientationMw;
      case SensorType::Gyroscope: return profile_.gyroscopeMw;
      case SensorType::Light: return profile_.lightMw;
    }
    return 0.0;
}

void
SensorModel::updatePower()
{
    // Visit types in enum order and uids in sorted order — the exact
    // sequence the old nested std::map produced, so per-uid sums
    // accumulate in the same floating-point order.
    common::InlineVec<std::pair<Uid, double>, 8> merged;
    for (std::size_t t = 0; t < uses_.size(); ++t) {
        const UserList &users = uses_[t];
        if (users.empty()) continue;
        double each = sensorMw(static_cast<SensorType>(t)) /
            static_cast<double>(users.size());
        for (const auto &[uid, count] : users) accum(merged, uid) += each;
    }
    std::sort(merged.begin(), merged.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    accountant_.setPowerShares(channel_, merged.span());
}

void
SensorModel::registerUse(SensorType type, Uid uid)
{
    UserList &users = usersFor(type);
    std::size_t i = 0;
    while (i < users.size() && users[i].first < uid) ++i;
    if (i < users.size() && users[i].first == uid) {
        ++users[i].second;
    } else {
        users.emplace_back(uid, 1);
        for (std::size_t j = users.size() - 1; j > i; --j)
            std::swap(users[j], users[j - 1]);
    }
    updatePower();
}

void
SensorModel::unregisterUse(SensorType type, Uid uid)
{
    UserList &users = usersFor(type);
    for (std::size_t i = 0; i < users.size(); ++i) {
        if (users[i].first != uid) continue;
        if (--users[i].second <= 0) users.erase(i);
        updatePower();
        return;
    }
}

bool
SensorModel::active(SensorType type) const
{
    return !usersFor(type).empty();
}

std::vector<Uid>
SensorModel::users(SensorType type) const
{
    std::vector<Uid> uids;
    for (const auto &[uid, count] : usersFor(type)) uids.push_back(uid);
    return uids;
}


void
SensorModel::saveState(sim::CheckpointWriter &w) const
{
    w.beginSection("sensors", 1);
    for (const UserList &users : uses_) {
        w.u64(users.size());
        for (std::size_t i = 0; i < users.size(); ++i) {
            w.u32(static_cast<std::uint32_t>(users[i].first));
            w.i64(users[i].second);
        }
    }
    w.endSection();
}

void
SensorModel::restoreState(sim::CheckpointReader &r)
{
    sim::requireSectionVersion("sensors", r.beginSection("sensors"), 1);
    for (UserList &users : uses_) {
        users.clear();
        std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i) {
            Uid uid = static_cast<Uid>(r.u32());
            users.push_back({uid, static_cast<int>(r.i64())});
        }
    }
    r.endSection();
}

} // namespace leaseos::power
