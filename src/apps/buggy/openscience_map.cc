#include "apps/buggy/openscience_map.h"

// OpenScienceMap is header-only; this TU anchors the module.
namespace leaseos::apps {
} // namespace leaseos::apps
