#include "app/app_context.h"

// AppContext is header-only; this TU anchors the module in the build.
namespace leaseos::app {
} // namespace leaseos::app
