#include "lease/proxies/wakelock_proxy.h"

#include "lease/utility/generic_utility.h"

namespace leaseos::lease {

WakelockLeaseProxy::WakelockLeaseProxy(os::PowerManagerService &pms,
                                       power::CpuModel &cpu,
                                       os::ExceptionNoteHandler &exceptions,
                                       os::ActivityManagerService &am)
    : LeaseProxy(ResourceType::Wakelock), pms_(pms), cpu_(cpu),
      exceptions_(exceptions), am_(am)
{
    pms_.addListener(this);
}

bool
WakelockLeaseProxy::mine(os::TokenId token) const
{
    return pms_.typeOf(token) == os::WakeLockType::Partial;
}

void
WakelockLeaseProxy::onCreated(os::TokenId token, Uid uid)
{
    if (mine(token)) LeaseProxy::onCreated(token, uid);
}

void
WakelockLeaseProxy::onAcquired(os::TokenId token, Uid uid)
{
    if (mine(token)) LeaseProxy::onAcquired(token, uid);
}

void
WakelockLeaseProxy::onReleased(os::TokenId token, Uid uid)
{
    if (mine(token)) LeaseProxy::onReleased(token, uid);
}

void
WakelockLeaseProxy::onDestroyed(os::TokenId token, Uid uid)
{
    // Destruction erases the lock record, so typeOf() no longer answers;
    // forward unconditionally — unknown tokens are ignored by the map.
    LeaseProxy::onDestroyed(token, uid);
}

void
WakelockLeaseProxy::onExpire(const Lease &lease)
{
    pms_.suspend(lease.token);
}

void
WakelockLeaseProxy::onRenew(const Lease &lease)
{
    pms_.restore(lease.token);
}

bool
WakelockLeaseProxy::resourceHeld(const Lease &lease)
{
    return pms_.isHeld(lease.token);
}

WakelockLeaseProxy::Snapshot
WakelockLeaseProxy::snapshot(const Lease &lease)
{
    Snapshot s;
    s.enabledSeconds = pms_.enabledSecondsForToken(lease.token);
    // §8: under DVFS the utilisation metric must be adjusted by device
    // state — frequency-normalised busy time measures work done, not
    // occupancy at a crawling clock.
    s.cpuSeconds = cpu_.dvfsEnabled()
        ? cpu_.normalizedCpuSeconds(lease.uid)
        : cpu_.cpuSeconds(lease.uid);
    s.exceptions = exceptions_.severeCount(lease.uid);
    s.uiUpdates = am_.uiUpdateCount(lease.uid);
    s.interactions = am_.userInteractionCount(lease.uid);
    s.acquires = pms_.acquireCount(lease.uid);
    return s;
}

void
WakelockLeaseProxy::beginTerm(const Lease &lease)
{
    snapshots_[lease.id] = snapshot(lease);
}

LeaseStat
WakelockLeaseProxy::collectStat(const Lease &lease)
{
    Snapshot start = snapshots_[lease.id];
    Snapshot now = snapshot(lease);

    LeaseStat stat;
    stat.termStart = lease.termStart;
    stat.termEnd = lease.termStart + lease.termLength;
    stat.holdingSeconds = now.enabledSeconds - start.enabledSeconds;
    stat.usageSeconds = now.cpuSeconds - start.cpuSeconds;
    stat.exceptions = now.exceptions - start.exceptions;
    stat.uiUpdates = now.uiUpdates - start.uiUpdates;
    stat.interactions = now.interactions - start.interactions;
    stat.acquires = now.acquires - start.acquires;
    stat.heldAtTermEnd = pms_.isHeld(lease.token);

    utility::Signals signals;
    signals.termSeconds = stat.termSeconds();
    signals.usageSeconds = stat.usageSeconds;
    signals.exceptions = stat.exceptions;
    signals.uiUpdates = stat.uiUpdates;
    signals.interactions = stat.interactions;
    stat.utilityScore =
        utility::genericScore(ResourceType::Wakelock, signals);
    return stat;
}

} // namespace leaseos::lease
