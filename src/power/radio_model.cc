#include "power/radio_model.h"

#include "power/checkpoint_io.h"

#include <algorithm>
#include <utility>

namespace leaseos::power {

RadioModel::RadioModel(sim::Simulator &sim, EnergyAccountant &accountant,
                       const DeviceProfile &profile)
    : PowerComponent(sim, accountant, profile, "radio"),
      wifiChannel_(accountant.makeChannel("wifi")),
      cellChannel_(accountant.makeChannel("cell")),
      lastAdvance_(sim.now())
{
    updateWifiPower();
    accountant_.setPower(cellChannel_, profile_.cellIdleMw, {kSystemUid});
}

void
RadioModel::advance()
{
    sim::Time now = sim_.now();
    if (now <= lastAdvance_) {
        lastAdvance_ = now;
        return;
    }
    double dt = (now - lastAdvance_).seconds();
    if (!wifiLockOwners_.empty()) {
        double each = dt / static_cast<double>(wifiLockOwners_.size());
        for (Uid u : wifiLockOwners_) wifiLockSeconds_[u] += each;
    }
    for (const auto &[uid, count] : wifiActiveCount_)
        if (count > 0) wifiActiveSeconds_[uid] += dt;
    lastAdvance_ = now;
}

void
RadioModel::updateWifiPower()
{
    if (wifiActive_ > 0) {
        accountant_.setPower(wifiChannel_, profile_.wifiActiveMw,
                             wifiActiveUids_);
    } else if (!wifiLockOwners_.empty()) {
        accountant_.setPower(wifiChannel_, profile_.wifiLockMw,
                             wifiLockOwners_);
    } else {
        accountant_.setPower(wifiChannel_, profile_.wifiIdleMw,
                             {kSystemUid});
    }
}

void
RadioModel::setWifiLockOwners(std::vector<Uid> owners)
{
    advance();
    wifiLockOwners_ = std::move(owners);
    updateWifiPower();
}

sim::Time
RadioModel::transferWifi(Uid uid, std::uint64_t bytes)
{
    advance();
    double seconds =
        static_cast<double>(bytes) / profile_.wifiThroughputBps;
    // Clamp tiny transfers to a minimal tail time: radios stay in the
    // high-power state briefly after any packet.
    seconds = std::max(seconds, 0.05);
    ++wifiActive_;
    wifiActiveUids_.push_back(uid);
    ++wifiActiveCount_[uid];
    updateWifiPower();
    sim::Time dur = sim::Time::fromSeconds(seconds);
    sim_.schedule(dur, [this, uid] {
        advance();
        --wifiActive_;
        --wifiActiveCount_[uid];
        auto it = std::find(wifiActiveUids_.begin(), wifiActiveUids_.end(),
                            uid);
        if (it != wifiActiveUids_.end()) wifiActiveUids_.erase(it);
        updateWifiPower();
    });
    return dur;
}

sim::Time
RadioModel::transferCell(Uid uid, std::uint64_t bytes)
{
    advance();
    // Cellular throughput modelled at 1/4 of Wi-Fi.
    double seconds = static_cast<double>(bytes) /
        (profile_.wifiThroughputBps / 4.0);
    seconds = std::max(seconds, 0.1);
    ++cellActive_;
    cellActiveUids_.push_back(uid);
    accountant_.setPower(cellChannel_, profile_.cellActiveMw,
                         cellActiveUids_);
    sim::Time dur = sim::Time::fromSeconds(seconds);
    sim_.schedule(dur, [this, uid] {
        advance();
        --cellActive_;
        auto it = std::find(cellActiveUids_.begin(), cellActiveUids_.end(),
                            uid);
        if (it != cellActiveUids_.end()) cellActiveUids_.erase(it);
        if (cellActive_ > 0) {
            accountant_.setPower(cellChannel_, profile_.cellActiveMw,
                                 cellActiveUids_);
        } else {
            accountant_.setPower(cellChannel_, profile_.cellIdleMw,
                                 {kSystemUid});
        }
    });
    return dur;
}

double
RadioModel::wifiLockSeconds(Uid uid)
{
    advance();
    auto it = wifiLockSeconds_.find(uid);
    return it == wifiLockSeconds_.end() ? 0.0 : it->second;
}

double
RadioModel::wifiActiveSeconds(Uid uid)
{
    advance();
    auto it = wifiActiveSeconds_.find(uid);
    return it == wifiActiveSeconds_.end() ? 0.0 : it->second;
}


void
RadioModel::saveState(sim::CheckpointWriter &w) const
{
    w.beginSection("radio", 1);
    ckpt::writeUids(w, wifiLockOwners_);
    w.i64(wifiActive_);
    ckpt::writeUids(w, wifiActiveUids_);
    w.i64(cellActive_);
    ckpt::writeUids(w, cellActiveUids_);
    w.time(lastAdvance_);
    ckpt::writeUidDoubleMap(w, wifiLockSeconds_);
    ckpt::writeUidIntMap(w, wifiActiveCount_);
    ckpt::writeUidDoubleMap(w, wifiActiveSeconds_);
    w.endSection();
}

void
RadioModel::restoreState(sim::CheckpointReader &r)
{
    sim::requireSectionVersion("radio", r.beginSection("radio"), 1);
    wifiLockOwners_ = ckpt::readUids(r);
    wifiActive_ = static_cast<int>(r.i64());
    wifiActiveUids_ = ckpt::readUids(r);
    cellActive_ = static_cast<int>(r.i64());
    cellActiveUids_ = ckpt::readUids(r);
    lastAdvance_ = r.time();
    wifiLockSeconds_ = ckpt::readUidDoubleMap(r);
    wifiActiveCount_ = ckpt::readUidIntMap(r);
    wifiActiveSeconds_ = ckpt::readUidDoubleMap(r);
    r.endSection();
}

} // namespace leaseos::power
