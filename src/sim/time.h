#ifndef LEASEOS_SIM_TIME_H
#define LEASEOS_SIM_TIME_H

/**
 * @file
 * Strongly-typed simulated time.
 *
 * All of LeaseOS's simulated substrate works in virtual time measured in
 * signed 64-bit nanoseconds. Wrapping the tick count in a value type keeps
 * second/millisecond conversions explicit and prevents unit mix-ups between
 * e.g. lease terms (seconds) and IPC latencies (microseconds).
 */

#include <cstdint>
#include <limits>
#include <string>

namespace leaseos::sim {

/**
 * A point in (or span of) simulated time, in nanoseconds.
 *
 * Time is used both as an absolute timestamp (ns since simulation start)
 * and as a duration; the arithmetic operators support both uses the same
 * way std::chrono durations do.
 */
class Time
{
  public:
    constexpr Time() : ns_(0) {}

    /** Construct from a raw nanosecond tick count. */
    static constexpr Time fromNanos(std::int64_t ns) { return Time(ns); }
    static constexpr Time fromMicros(std::int64_t us)
    {
        return Time(us * 1000);
    }
    static constexpr Time fromMillis(std::int64_t ms)
    {
        return Time(ms * 1000000);
    }
    static constexpr Time fromSeconds(double s)
    {
        return Time(static_cast<std::int64_t>(s * 1e9));
    }
    static constexpr Time fromMinutes(double m)
    {
        return fromSeconds(m * 60.0);
    }
    static constexpr Time fromHours(double h) { return fromSeconds(h * 3600.0); }

    /** Largest representable time; used as "never". */
    static constexpr Time
    max()
    {
        return Time(std::numeric_limits<std::int64_t>::max());
    }
    static constexpr Time zero() { return Time(0); }

    constexpr std::int64_t nanos() const { return ns_; }
    constexpr std::int64_t micros() const { return ns_ / 1000; }
    constexpr std::int64_t millis() const { return ns_ / 1000000; }
    constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }
    constexpr double minutes() const { return seconds() / 60.0; }
    constexpr double hours() const { return seconds() / 3600.0; }

    constexpr bool isZero() const { return ns_ == 0; }
    constexpr bool isNegative() const { return ns_ < 0; }

    constexpr Time operator+(Time o) const { return Time(ns_ + o.ns_); }
    constexpr Time operator-(Time o) const { return Time(ns_ - o.ns_); }
    constexpr Time operator*(double k) const
    {
        return Time(static_cast<std::int64_t>(static_cast<double>(ns_) * k));
    }
    constexpr Time operator/(double k) const
    {
        return Time(static_cast<std::int64_t>(static_cast<double>(ns_) / k));
    }
    /** Ratio of two durations; the natural way to express utilisation. */
    constexpr double
    operator/(Time o) const
    {
        return static_cast<double>(ns_) / static_cast<double>(o.ns_);
    }

    Time &operator+=(Time o) { ns_ += o.ns_; return *this; }
    Time &operator-=(Time o) { ns_ -= o.ns_; return *this; }

    constexpr auto operator<=>(const Time &) const = default;

    /** Render as a short human-readable string, e.g. "5s" or "2.5min". */
    std::string
    toString() const
    {
        auto trim = [](double v) {
            std::string s = std::to_string(v);
            while (!s.empty() && s.back() == '0') s.pop_back();
            if (!s.empty() && s.back() == '.') s.pop_back();
            return s;
        };
        double s = seconds();
        if (s >= 3600.0) return trim(s / 3600.0) + "h";
        if (s >= 60.0) return trim(s / 60.0) + "min";
        if (s >= 1.0) return trim(s) + "s";
        return trim(static_cast<double>(ns_) / 1e6) + "ms";
    }

  private:
    explicit constexpr Time(std::int64_t ns) : ns_(ns) {}

    std::int64_t ns_;
};

/// Convenience duration literals used throughout the codebase.
constexpr Time operator""_ns(unsigned long long v)
{
    return Time::fromNanos(static_cast<std::int64_t>(v));
}
constexpr Time operator""_us(unsigned long long v)
{
    return Time::fromMicros(static_cast<std::int64_t>(v));
}
constexpr Time operator""_ms(unsigned long long v)
{
    return Time::fromMillis(static_cast<std::int64_t>(v));
}
constexpr Time operator""_s(unsigned long long v)
{
    return Time::fromSeconds(static_cast<double>(v));
}
constexpr Time operator""_min(unsigned long long v)
{
    return Time::fromMinutes(static_cast<double>(v));
}

} // namespace leaseos::sim

#endif // LEASEOS_SIM_TIME_H
