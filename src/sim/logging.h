#ifndef LEASEOS_SIM_LOGGING_H
#define LEASEOS_SIM_LOGGING_H

/**
 * @file
 * Minimal levelled logging for the simulator.
 *
 * Logging is off by default (benches and tests should be quiet); tests and
 * debugging sessions can raise the level. The logger is process-global and
 * intentionally tiny — it exists so subsystem code can leave a trace of
 * lease decisions and service state changes without printf scatter.
 */

#include <atomic>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

#include "sim/time.h"

namespace leaseos::sim {

enum class LogLevel { Off = 0, Error, Warn, Info, Debug, Trace };

/**
 * Process-global logging configuration and sink.
 *
 * The logger is the one process-wide singleton the simulation touches, so
 * it must stay safe when independent Devices run on worker threads
 * (harness::ParallelRunner): the level is atomic and emission is
 * serialised under a mutex so concurrent lines never interleave.
 */
class Logger
{
  public:
    static Logger &instance();

    void setLevel(LogLevel level) { level_.store(level); }
    LogLevel level() const { return level_.load(); }
    bool enabled(LogLevel level) const { return level <= level_.load(); }

    /** Emit one line. @p tag is the subsystem name. */
    void log(LogLevel level, Time now, const std::string &tag,
             const std::string &message);

  private:
    Logger() = default;

    std::atomic<LogLevel> level_ = LogLevel::Off;
    std::mutex emitMutex_;
};

/** Stream-style log helper: LOG(sim, Info, "lease") << "created " << id; */
class LogLine
{
  public:
    LogLine(LogLevel level, Time now, std::string tag)
        : level_(level), now_(now), tag_(std::move(tag)) {}

    ~LogLine()
    {
        if (Logger::instance().enabled(level_))
            Logger::instance().log(level_, now_, tag_, os_.str());
    }

    template <typename T>
    LogLine &
    operator<<(const T &v)
    {
        if (Logger::instance().enabled(level_)) os_ << v;
        return *this;
    }

  private:
    LogLevel level_;
    Time now_;
    std::string tag_;
    std::ostringstream os_;
};

} // namespace leaseos::sim

#endif // LEASEOS_SIM_LOGGING_H
