/**
 * @file
 * Quickstart: build a simulated phone, install a buggy app, and compare
 * its power draw with and without LeaseOS.
 *
 * This is the 60-second tour of the public API:
 *   1. harness::Device assembles the full substrate (hardware power
 *      models, Android-style services, environments) — pass
 *      MitigationMode::LeaseOS to transparently enable lease-based
 *      resource management (no app changes needed);
 *   2. install<App>() adds an app model; start() boots everything;
 *   3. runFor() advances virtual time; appPowerMw() reads the profiler.
 */

#include <iostream>

#include "apps/buggy/k9_mail.h"
#include "harness/device.h"

using namespace leaseos;
using sim::operator""_min;

namespace {

double
measure(harness::MitigationMode mode)
{
    harness::Device device(harness::DeviceConfig{}.withMode(mode));

    // Trigger condition: the network is down, so buggy K-9 mail spins in
    // its retry loop holding a wakelock (the paper's Fig. 4 scenario).
    device.network().setConnected(false);

    auto &k9 = device.install<apps::K9Mail>();
    device.start();
    device.runFor(10_min);

    double mw = device.appPowerMw(k9.uid());
    if (device.leaseos()) {
        auto &mgr = device.leaseos()->manager();
        std::cout << "  leases: " << mgr.totalCreated() << " created, "
                  << mgr.totalDeferrals() << " deferrals, last behaviour "
                  << "classes observed: LUB="
                  << mgr.behaviorCount(lease::BehaviorType::LowUtility)
                  << " LHB="
                  << mgr.behaviorCount(lease::BehaviorType::LongHolding)
                  << "\n";
    }
    return mw;
}

} // namespace

int
main()
{
    std::cout << "LeaseOS quickstart: buggy K-9 mail, disconnected "
                 "network, 10 simulated minutes\n\n";

    std::cout << "vanilla Android (ask-use-release):\n";
    double vanilla = measure(harness::MitigationMode::None);
    std::cout << "  K-9 app power: " << vanilla << " mW\n\n";

    std::cout << "LeaseOS (lease-based, utilitarian):\n";
    double leased = measure(harness::MitigationMode::LeaseOS);
    std::cout << "  K-9 app power: " << leased << " mW\n\n";

    std::cout << "wasted power reduced by "
              << 100.0 * (1.0 - leased / vanilla) << "%\n";
    return 0;
}
