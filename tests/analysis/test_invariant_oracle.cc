/**
 * @file
 * Tests for the checked-mode invariant oracle (analysis/invariants.h).
 *
 * The oracle class is compiled in every build flavour, so these tests
 * drive each check directly in Record mode: positive runs over a real
 * Table 5 cell must stay clean, and a deliberate violation of each
 * invariant must produce a structured diagnostic.
 */

#include <gtest/gtest.h>

#include "analysis/invariants.h"
#include "apps/registry.h"
#include "apps/synthetic/synthetic_apps.h"
#include "harness/device.h"
#include "harness/experiment.h"
#include "lease/leaseos_runtime.h"

namespace leaseos {
namespace {

using analysis::InvariantOracle;
using lease::LeaseState;
using sim::operator""_s;
using sim::operator""_min;

InvariantOracle
recordOracle()
{
    return InvariantOracle(InvariantOracle::FailMode::Record);
}

// ---- State machine ---------------------------------------------------------

TEST(InvariantOracle, LegalTransitionRelationMatchesFig5)
{
    using analysis::InvariantOracle;
    // Legal arcs.
    EXPECT_TRUE(InvariantOracle::legalTransition(LeaseState::Active,
                                                 LeaseState::Inactive));
    EXPECT_TRUE(InvariantOracle::legalTransition(LeaseState::Active,
                                                 LeaseState::Deferred));
    EXPECT_TRUE(InvariantOracle::legalTransition(LeaseState::Inactive,
                                                 LeaseState::Active));
    EXPECT_TRUE(InvariantOracle::legalTransition(LeaseState::Deferred,
                                                 LeaseState::Active));
    EXPECT_TRUE(InvariantOracle::legalTransition(LeaseState::Deferred,
                                                 LeaseState::Inactive));
    for (LeaseState from : {LeaseState::Active, LeaseState::Inactive,
                            LeaseState::Deferred})
        EXPECT_TRUE(
            InvariantOracle::legalTransition(from, LeaseState::Dead));

    // DEAD is terminal; self-loops and skip arcs are not transitions.
    for (LeaseState to : {LeaseState::Active, LeaseState::Inactive,
                          LeaseState::Deferred, LeaseState::Dead})
        EXPECT_FALSE(
            InvariantOracle::legalTransition(LeaseState::Dead, to));
    EXPECT_FALSE(InvariantOracle::legalTransition(LeaseState::Inactive,
                                                  LeaseState::Deferred));
    EXPECT_FALSE(InvariantOracle::legalTransition(LeaseState::Active,
                                                  LeaseState::Active));
    EXPECT_FALSE(InvariantOracle::legalTransition(LeaseState::Inactive,
                                                  LeaseState::Inactive));
}

TEST(InvariantOracle, IllegalDeadToActiveIsReported)
{
    InvariantOracle oracle = recordOracle();
    oracle.noteLeaseTransition(5_s, 42, LeaseState::Dead,
                               LeaseState::Active);
    ASSERT_EQ(oracle.violations().size(), 1u);
    const analysis::Violation &v = oracle.violations().front();
    EXPECT_EQ(v.check, "state-machine");
    EXPECT_EQ(v.leaseId, 42u);
    EXPECT_EQ(v.simTime, 5_s);
    EXPECT_NE(v.toString().find("DEAD -> ACTIVE"), std::string::npos);
}

TEST(InvariantOracle, LegalTransitionsAreNotReported)
{
    InvariantOracle oracle = recordOracle();
    oracle.noteLeaseTransition(1_s, 1, LeaseState::Active,
                               LeaseState::Deferred);
    oracle.noteLeaseTransition(2_s, 1, LeaseState::Deferred,
                               LeaseState::Active);
    oracle.noteLeaseTransition(3_s, 1, LeaseState::Active,
                               LeaseState::Inactive);
    oracle.noteLeaseTransition(4_s, 1, LeaseState::Inactive,
                               LeaseState::Dead);
    EXPECT_TRUE(oracle.clean());
}

// ---- Event-time monotonicity ----------------------------------------------

TEST(InvariantOracle, BackwardsEventDispatchIsReported)
{
    InvariantOracle oracle = recordOracle();
    oracle.noteEventDispatch(5_s, 5_s); // same instant: fine
    oracle.noteEventDispatch(5_s, 6_s); // future: fine
    EXPECT_TRUE(oracle.clean());
    oracle.noteEventDispatch(5_s, 4_s); // the clock ran backwards
    ASSERT_EQ(oracle.violations().size(), 1u);
    EXPECT_EQ(oracle.violations().front().check, "time-monotonicity");
}

// ---- Deferral τ accounting -------------------------------------------------

TEST(InvariantOracle, DeferralSettleMatchingRealizedTimeIsClean)
{
    InvariantOracle oracle = recordOracle();
    // Deferred at 5 s, settled at 30 s, 25 s credited: exact.
    oracle.noteDeferralSettled(30_s, 7, 5_s, 25.0);
    // Killed mid-τ at 15 s with the realized 10 s credited: also fine.
    oracle.noteDeferralSettled(15_s, 8, 5_s, 10.0);
    EXPECT_TRUE(oracle.clean());
}

TEST(InvariantOracle, DeferralSettleCreditingScheduledTauIsReported)
{
    InvariantOracle oracle = recordOracle();
    // The historic bug: the full scheduled τ (25 s) credited even though
    // the lease died 10 s into the deferral.
    oracle.noteDeferralSettled(15_s, 7, 5_s, 25.0);
    ASSERT_EQ(oracle.violations().size(), 1u);
    const analysis::Violation &v = oracle.violations().front();
    EXPECT_EQ(v.check, "deferral-accounting");
    EXPECT_EQ(v.leaseId, 7u);
    EXPECT_NE(v.detail.find("25"), std::string::npos);
    EXPECT_NE(v.detail.find("10"), std::string::npos);
}

// ---- Install / current ------------------------------------------------------

TEST(InvariantOracle, InstallNestsAndRestores)
{
    EXPECT_EQ(InvariantOracle::current(), nullptr);
    {
        InvariantOracle outer = recordOracle();
        outer.install();
        EXPECT_EQ(InvariantOracle::current(), &outer);
        {
            InvariantOracle inner = recordOracle();
            inner.install();
            EXPECT_EQ(InvariantOracle::current(), &inner);
        }
        EXPECT_EQ(InvariantOracle::current(), &outer);
    }
    EXPECT_EQ(InvariantOracle::current(), nullptr);
}

// ---- App teardown balance ---------------------------------------------------

TEST(InvariantOracle, LeakyAppIsFlaggedAtTeardown)
{
    harness::Device device;
    // §5.1's validation app: acquires a wakelock and never releases it.
    auto &leaky = device.install<apps::LongHoldingTestApp>();
    device.start();
    device.runFor(1_min);

    InvariantOracle oracle = recordOracle();
    oracle.checkAppTeardown(device.simulator().now(), device.server(),
                            leaky.uid());
    ASSERT_EQ(oracle.violations().size(), 1u);
    EXPECT_EQ(oracle.violations().front().check, "teardown-balance");
    EXPECT_NE(oracle.violations().front().detail.find("wakelock"),
              std::string::npos);
}

TEST(InvariantOracle, CleanTeardownPasses)
{
    harness::Device device;
    auto &leaky = device.install<apps::LongHoldingTestApp>();
    device.start();
    device.runFor(30_s);
    // The app cleans up (what a correct stop() path does) before the
    // teardown check runs.
    device.server().powerManager().release(leaky.token());
    device.server().powerManager().destroy(leaky.token());

    InvariantOracle oracle = recordOracle();
    oracle.checkAppTeardown(device.simulator().now(), device.server(),
                            leaky.uid());
    EXPECT_TRUE(oracle.clean());
}

// ---- Lease table ↔ binder consistency --------------------------------------

TEST(InvariantOracle, Table5CellAuditsCleanUnderLeaseOS)
{
    // Mirror bench_table5_mitigation's smallest cell: the Torch app (the
    // cleanest Long-Holding row) under LeaseOS with the standard glance
    // script, then run every pull-style audit.
    const apps::BuggyAppSpec &spec = apps::buggySpec("torch");
    harness::MitigationRunOptions opt;
    harness::Device device(harness::DeviceConfig{}
                               .withMode(harness::MitigationMode::LeaseOS)
                               .withProfile(opt.profile)
                               .withSeed(opt.seed));
    spec.install(device);
    spec.trigger(device);
    sim::PeriodicHandle glances = harness::installGlanceScript(device, opt);
    device.start();
    device.runFor(10_min);

    InvariantOracle oracle = recordOracle();
    device.auditInvariants(oracle);
    EXPECT_TRUE(oracle.clean())
        << oracle.violations().front().toString();
    EXPECT_GT(device.leaseos()->manager().table().size(), 0u);
}

TEST(InvariantOracle, LeaseOverRetiredTokenIsReported)
{
    const apps::BuggyAppSpec &spec = apps::buggySpec("torch");
    // The token stays retired through device destruction, so keep the
    // device's own checked-build oracle out of the way.
    harness::Device device(harness::DeviceConfig{}
                               .withMode(harness::MitigationMode::LeaseOS)
                               .withCheckedOracle(false));
    spec.install(device);
    spec.trigger(device);
    device.start();
    device.runFor(1_min);

    auto &table = device.leaseos()->manager().table();
    auto leases = table.all();
    ASSERT_FALSE(leases.empty());
    // Simulate a service forgetting its lease when the kernel object died.
    device.server().tokens().retire(leases.front()->token);

    InvariantOracle oracle = recordOracle();
    oracle.auditLeaseTable(device.simulator(), table,
                           device.server().tokens());
    ASSERT_FALSE(oracle.clean());
    EXPECT_EQ(oracle.violations().front().check, "lease-table");
    EXPECT_EQ(oracle.violations().front().leaseId, leases.front()->id);
}

TEST(InvariantOracle, DanglingTimerOnInactiveLeaseIsReported)
{
    const apps::BuggyAppSpec &spec = apps::buggySpec("torch");
    harness::Device device(harness::DeviceConfig{}
                               .withMode(harness::MitigationMode::LeaseOS)
                               .withCheckedOracle(false));
    spec.install(device);
    spec.trigger(device);
    device.start();
    device.runFor(1_min);

    auto &table = device.leaseos()->manager().table();
    auto leases = table.all();
    ASSERT_FALSE(leases.empty());
    lease::Lease *l = leases.front();
    // Force an inconsistent snapshot: the lease claims INACTIVE while its
    // term-end timer is still armed.
    LeaseState saved = l->state;
    l->state = LeaseState::Inactive;

    InvariantOracle oracle = recordOracle();
    oracle.auditLeaseTable(device.simulator(), table,
                           device.server().tokens());
    l->state = saved;
    ASSERT_FALSE(oracle.clean());
    EXPECT_EQ(oracle.violations().front().check, "lease-table");
}

// ---- Energy conservation ----------------------------------------------------

TEST(InvariantOracle, EnergyAuditCleanAfterRealRun)
{
    harness::Device device(harness::DeviceConfig{}.withMode(
        harness::MitigationMode::LeaseOS));
    apps::installGenericFleet(device, 4);
    device.start();
    device.runFor(5_min);

    InvariantOracle oracle = recordOracle();
    oracle.auditEnergy(device.simulator().now(), device.accountant(),
                       device.battery());
    EXPECT_TRUE(oracle.clean())
        << oracle.violations().front().toString();
    device.accountant().sync();
    EXPECT_GT(device.accountant().totalEnergyMj(), 0.0);
}

TEST(InvariantOracle, MismatchedBatteryAccountingIsReported)
{
    // A battery bound to one accountant audited against another models a
    // bookkeeping split-brain: the drain exceeds everything the audited
    // accountant integrated, which conservation must reject.
    harness::Device drained;
    apps::installGenericFleet(drained, 2);
    drained.start();
    drained.runFor(1_min);
    ASSERT_GT(drained.battery().drainedMj(), 0.0);

    sim::Simulator freshSim;
    power::EnergyAccountant emptyAccountant(freshSim);

    InvariantOracle oracle = recordOracle();
    oracle.auditEnergy(drained.simulator().now(), emptyAccountant,
                       drained.battery());
    ASSERT_FALSE(oracle.clean());
    EXPECT_EQ(oracle.violations().front().check, "energy-conservation");
}

} // namespace
} // namespace leaseos
