#include "env/network_environment.h"

#include <utility>

namespace leaseos::env {

const char *
netResultName(NetResult r)
{
    switch (r) {
      case NetResult::Ok: return "ok";
      case NetResult::Timeout: return "timeout";
      case NetResult::IoError: return "io_error";
      case NetResult::Disconnected: return "disconnected";
    }
    return "unknown";
}

NetworkEnvironment::NetworkEnvironment(sim::Simulator &sim,
                                       power::RadioModel &radio,
                                       sim::RandomSource &rng)
    : sim_(sim), radio_(radio), rng_(rng)
{
}

void
NetworkEnvironment::setServerFailProbability(const std::string &server,
                                             double failProbability)
{
    if (failProbability <= 0.0) serverFlaky_.erase(server);
    else serverFlaky_[server] = failProbability;
}

void
NetworkEnvironment::setConnected(bool connected)
{
    if (connected == connected_) return;
    connected_ = connected;
    for (const auto &fn : listeners_) fn(connected_);
}

void
NetworkEnvironment::setServerHealthy(const std::string &server,
                                     bool healthy)
{
    serverHealth_[server] = healthy;
}

bool
NetworkEnvironment::serverHealthy(const std::string &server) const
{
    auto it = serverHealth_.find(server);
    return it == serverHealth_.end() || it->second;
}

void
NetworkEnvironment::addConnectivityListener(std::function<void(bool)> fn)
{
    listeners_.push_back(std::move(fn));
}

void
NetworkEnvironment::httpRequest(Uid uid, const std::string &server,
                                std::uint64_t bytes,
                                std::function<void(NetResult)> cb)
{
    ++requestCount_[uid];
    if (!connected_) {
        ++failureCount_[uid];
        sim_.schedule(kFastFail,
                      [cb = std::move(cb)] { cb(NetResult::Disconnected); });
        return;
    }
    bool flaky_failure = false;
    auto flaky = serverFlaky_.find(server);
    if (flaky != serverFlaky_.end())
        flaky_failure = rng_.chance(flaky->second);
    if (!serverHealthy(server) || flaky_failure) {
        // The radio carries the request out, then the app waits for the
        // server until the socket timeout fires.
        radio_.transferWifi(uid, bytes / 10 + 1);
        ++failureCount_[uid];
        sim_.schedule(kServerTimeout,
                      [cb = std::move(cb)] { cb(NetResult::Timeout); });
        return;
    }
    sim::Time transfer = radio_.transferWifi(uid, bytes);
    sim_.schedule(transfer + kServerLatency,
                  [cb = std::move(cb)] { cb(NetResult::Ok); });
}

std::uint64_t
NetworkEnvironment::requestCount(Uid uid) const
{
    auto it = requestCount_.find(uid);
    return it == requestCount_.end() ? 0 : it->second;
}

std::uint64_t
NetworkEnvironment::failureCount(Uid uid) const
{
    auto it = failureCount_.find(uid);
    return it == failureCount_.end() ? 0 : it->second;
}

} // namespace leaseos::env
