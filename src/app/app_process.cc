#include "app/app_process.h"

#include <utility>

namespace leaseos::app {

AppProcess::AppProcess(sim::Simulator &sim, power::CpuModel &cpu, Uid uid,
                       std::string name)
    : sim_(sim), cpu_(cpu), uid_(uid), name_(std::move(name)),
      alive_(std::make_shared<bool>(true))
{
}

AppProcess::~AppProcess()
{
    *alive_ = false;
}

void
AppProcess::post(sim::Time delay, std::function<void()> fn)
{
    if (!*alive_) return;
    auto alive = alive_;
    auto guarded = [alive, fn = std::move(fn)] {
        if (*alive) fn();
    };
    sim_.schedule(delay, [this, alive, guarded = std::move(guarded)] {
        if (!*alive) return;
        if (cpu_.isAwake()) {
            guarded();
        } else {
            cpu_.notifyOnWake(guarded);
        }
    });
}

void
AppProcess::postNow(std::function<void()> fn)
{
    post(sim::Time::zero(), std::move(fn));
}

void
AppProcess::compute(double load, sim::Time duration)
{
    cpu_.runWorkFor(uid_, load, duration);
}

void
AppProcess::computeScaled(double load, sim::Time referenceDuration)
{
    double factor = cpu_.profile().perfFactor;
    if (factor <= 0.0) factor = 1.0;
    cpu_.runWorkFor(uid_, load, referenceDuration / factor);
}

void
AppProcess::kill()
{
    *alive_ = false;
}

} // namespace leaseos::app
