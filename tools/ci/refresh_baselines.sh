#!/usr/bin/env bash
# Refresh every baseline CI gates against. Run from anywhere inside the
# repo; commits nothing — inspect `git diff` and commit what you meant.
#
# Baselines refreshed:
#   BENCH_eventqueue.json        perf-bench gates allocs_per_op at zero
#                                tolerance against this committed file
#                                (ns_per_op is report-only noise).
#   BENCH_fleet.json             committed reference fleet artifact.
#   tools/leaselint/baseline.lint  accepted-debt ledger for the lint
#                                gate (--diff-baseline on PRs).
#
# The nightly trend gate needs NO refresh here: its baseline is last
# night's rollup artifact, so an intended drift self-heals after one
# (red) night. Use this script when a deliberate change moves a
# committed baseline — e.g. a new allocation in the event loop you have
# justified, or a leaselint rule landing with pre-existing findings.
#
# When a perf gate moved because checkpoint emission or sharding changed
# behaviour, first confirm the sharded-determinism job still passes:
# baselines may move, byte-identity across slicings may not.

set -euo pipefail

root="$(git rev-parse --show-toplevel)"
build="${BUILD_DIR:-$root/build}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cd "$root"

echo "== configure + build (RelWithDebInfo, tracing off — the gated" \
     "config) =="
cmake -B "$build" -S "$root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLEASEOS_TRACING=OFF >/dev/null
cmake --build "$build" --target bench_eventqueue bench_fleet leaselint \
    -j"$jobs"

echo "== BENCH_eventqueue.json (allocs/op is the gated column) =="
"$build/bench/bench_eventqueue" >/dev/null
test -s BENCH_eventqueue.json

echo "== BENCH_fleet.json (sharded, so checkpoint-size rows refresh" \
     "too) =="
"$build/bench/bench_fleet" --devices=50 --minutes=30 \
    --shard-minutes=10 --jobs "$jobs" >/dev/null
test -s BENCH_fleet.json

echo "== tools/leaselint/baseline.lint =="
"$build/tools/leaselint/leaselint" --root "$root" --jobs "$jobs" \
    --write-baseline "$root/tools/leaselint/baseline.lint" || true

echo
echo "Refreshed. Review before committing:"
git -C "$root" status --short -- BENCH_eventqueue.json \
    BENCH_fleet.json tools/leaselint/baseline.lint
