/**
 * @file
 * Unit tests for the Doze baseline controller.
 */

#include <gtest/gtest.h>

#include "apps/buggy/torch.h"
#include "apps/buggy/connectbot_screen.h"
#include "harness/device.h"

namespace leaseos::mitigation {
namespace {

using sim::operator""_s;
using sim::operator""_min;

constexpr Uid kApp = kFirstAppUid;

struct DozeTest : ::testing::Test {
    harness::DeviceConfig
    config(bool aggressive)
    {
        harness::DeviceConfig cfg;
        cfg.mode = aggressive ? harness::MitigationMode::DozeAggressive
                              : harness::MitigationMode::Doze;
        return cfg;
    }
};

TEST_F(DozeTest, StockDozeEntersAfterIdleThreshold)
{
    harness::Device device(config(false));
    device.start();
    EXPECT_FALSE(device.doze()->dozing());
    device.runFor(device.doze() ? 31_min : 31_min);
    EXPECT_TRUE(device.doze()->dozing());
    EXPECT_EQ(device.doze()->enterCount(), 1u);
}

TEST_F(DozeTest, AggressiveDozeStartsImmediately)
{
    harness::Device device(config(true));
    device.start();
    EXPECT_TRUE(device.doze()->dozing());
}

TEST_F(DozeTest, DozeGatesBackgroundWakelocks)
{
    harness::Device device(config(true));
    auto &torch = device.install<apps::Torch>();
    (void)torch;
    device.start();
    device.runFor(1_min);
    // The buggy lock is held but Doze keeps the CPU asleep.
    EXPECT_FALSE(device.cpu().isAwake());
}

TEST_F(DozeTest, DozeNeverBlanksForcedScreens)
{
    harness::Device device(config(true));
    device.install<apps::ConnectBotScreen>();
    device.start();
    device.runFor(1_min);
    // Full wakelocks pass through the doze filter: panel stays lit.
    EXPECT_TRUE(device.screenHardware().isOn());
}

TEST_F(DozeTest, ScreenUseExitsDoze)
{
    harness::Device device(config(true));
    device.start();
    ASSERT_TRUE(device.doze()->dozing());
    device.server().displayManager().userSetScreen(true);
    EXPECT_FALSE(device.doze()->dozing());
    EXPECT_EQ(device.doze()->exitCount(), 1u);
}

TEST_F(DozeTest, MotionExitsDoze)
{
    harness::Device device(config(true));
    device.start();
    ASSERT_TRUE(device.doze()->dozing());
    device.motion().setStationary(false);
    EXPECT_FALSE(device.doze()->dozing());
}

TEST_F(DozeTest, AggressiveDozeReentersAfterShortIdle)
{
    harness::Device device(config(true));
    device.start();
    device.motion().setStationary(false);
    ASSERT_FALSE(device.doze()->dozing());
    device.motion().setStationary(true);
    device.runFor(3_min);
    EXPECT_TRUE(device.doze()->dozing());
    EXPECT_GE(device.doze()->enterCount(), 2u);
}

TEST_F(DozeTest, MaintenanceWindowsOpenPeriodically)
{
    harness::Device device(config(true));
    auto &torch = device.install<apps::Torch>();
    (void)torch;
    device.start();
    // Just before a window the lock is gated; at the window it may run.
    device.runFor(16_min); // past one maintenance interval
    // The CPU got at least a brief awake slice from the window.
    EXPECT_GT(device.cpu().awakeSeconds(), 1.0);
    EXPECT_LT(device.cpu().awakeSeconds(), 120.0);
}

TEST_F(DozeTest, DozeDefersBackgroundAlarms)
{
    harness::Device device(config(true));
    bool ran = false;
    device.server().alarmManager().setAlarm(kApp, 1_min, true,
                                            [&] { ran = true; });
    device.start();
    device.runFor(4_min);
    EXPECT_FALSE(ran); // deferred while dozing
    EXPECT_GT(device.server().alarmManager().deferredCount(), 0u);
}

} // namespace
} // namespace leaseos::mitigation
