#include "os/sensor_manager_service.h"

#include <utility>

namespace leaseos::os {

SensorManagerService::SensorManagerService(sim::Simulator &sim,
                                           power::CpuModel &cpu,
                                           power::SensorModel &sensors,
                                           TokenAllocator &tokens)
    : Service(sim, cpu, "sensor"), sensors_(sensors), tokens_(tokens),
      lastAdvance_(sim.now())
{
    readingFn_ = [](power::SensorType, sim::Time) { return 0.0; };
}

void
SensorManagerService::advance()
{
    sim::Time now = sim_.now();
    if (now <= lastAdvance_) {
        lastAdvance_ = now;
        return;
    }
    double dt = (now - lastAdvance_).seconds();
    for (auto &[token, reg] : regs_)
        if (reg.enabled) registeredSeconds_[reg.uid] += dt;
    lastAdvance_ = now;
}

bool
SensorManagerService::allowedByFilter(Uid uid) const
{
    return !filter_ || filter_(uid);
}

void
SensorManagerService::apply()
{
    for (auto &[token, reg] : regs_) {
        bool enabled =
            reg.active && !reg.suspended && allowedByFilter(reg.uid);
        bool was_hw = hwRegs_.count(token) != 0;
        if (enabled && !was_hw) {
            sensors_.registerUse(reg.type, reg.uid);
            hwRegs_[token] = {reg.type, reg.uid};
        } else if (!enabled && was_hw) {
            sensors_.unregisterUse(reg.type, reg.uid);
            hwRegs_.erase(token);
        }
        if (enabled && !reg.enabled) {
            reg.enabled = true;
            scheduleTick(token);
        } else {
            reg.enabled = enabled;
        }
    }
    // Drop hardware registrations whose request object died.
    for (auto it = hwRegs_.begin(); it != hwRegs_.end();) {
        if (regs_.count(it->first) == 0) {
            sensors_.unregisterUse(it->second.first, it->second.second);
            it = hwRegs_.erase(it);
        } else {
            ++it;
        }
    }
}

void
SensorManagerService::scheduleTick(TokenId token)
{
    auto it = regs_.find(token);
    if (it == regs_.end() || it->second.tickScheduled) return;
    it->second.tickScheduled = true;
    sim_.schedule(it->second.rate, [this, token] { deliverTick(token); });
}

void
SensorManagerService::deliverTick(TokenId token)
{
    auto it = regs_.find(token);
    if (it == regs_.end()) return;
    Registration &reg = it->second;
    reg.tickScheduled = false;
    if (!reg.enabled) return; // suspended: callbacks withheld
    ++eventCount_[reg.uid];
    if (reg.listener) {
        cpu_.runWorkFor(reg.uid, 0.2, sim::Time::fromMillis(1));
        reg.listener->onSensorEvent(reg.type,
                                    readingFn_(reg.type, sim_.now()));
    }
    scheduleTick(token);
}

TokenId
SensorManagerService::registerListener(Uid uid, power::SensorType type,
                                       sim::Time rate,
                                       SensorEventListener *listener)
{
    chargeIpc(uid, kResourceIpcLatency);
    advance();
    TokenId token = tokens_.next();
    Registration reg;
    reg.uid = uid;
    reg.type = type;
    reg.rate = rate;
    reg.listener = listener;
    reg.active = true;
    regs_.emplace(token, reg);
    apply();
    for (auto *l : listeners_) l->onCreated(token, uid);
    for (auto *l : listeners_) l->onAcquired(token, uid);
    return token;
}

void
SensorManagerService::unregisterListener(TokenId token)
{
    auto it = regs_.find(token);
    if (it == regs_.end() || !it->second.active) return;
    Uid uid = it->second.uid;
    chargeIpc(uid, kBinderIpcLatency);
    advance();
    it->second.active = false;
    apply();
    for (auto *l : listeners_) l->onReleased(token, uid);
}

void
SensorManagerService::destroy(TokenId token)
{
    auto it = regs_.find(token);
    if (it == regs_.end()) return;
    advance();
    Uid uid = it->second.uid;
    regs_.erase(it);
    tokens_.retire(token);
    apply();
    for (auto *l : listeners_) l->onDestroyed(token, uid);
}

bool
SensorManagerService::isActive(TokenId token) const
{
    auto it = regs_.find(token);
    return it != regs_.end() && it->second.active;
}

void
SensorManagerService::suspend(TokenId token)
{
    auto it = regs_.find(token);
    if (it == regs_.end() || it->second.suspended) return;
    advance();
    it->second.suspended = true;
    apply();
}

void
SensorManagerService::restore(TokenId token)
{
    auto it = regs_.find(token);
    if (it == regs_.end() || !it->second.suspended) return;
    advance();
    it->second.suspended = false;
    apply();
}

bool
SensorManagerService::isSuspended(TokenId token) const
{
    auto it = regs_.find(token);
    return it != regs_.end() && it->second.suspended;
}

bool
SensorManagerService::isEnabled(TokenId token) const
{
    auto it = regs_.find(token);
    return it != regs_.end() && it->second.enabled;
}

void
SensorManagerService::setGlobalFilter(std::function<bool(Uid)> filter)
{
    advance();
    filter_ = std::move(filter);
    apply();
}

void
SensorManagerService::refilter()
{
    advance();
    apply();
}

void
SensorManagerService::addListener(ResourceListener *listener)
{
    listeners_.push_back(listener);
}

double
SensorManagerService::registeredSeconds(Uid uid)
{
    advance();
    auto it = registeredSeconds_.find(uid);
    return it == registeredSeconds_.end() ? 0.0 : it->second;
}

std::uint64_t
SensorManagerService::eventCount(Uid uid) const
{
    auto it = eventCount_.find(uid);
    return it == eventCount_.end() ? 0 : it->second;
}

Uid
SensorManagerService::ownerOf(TokenId token) const
{
    auto it = regs_.find(token);
    return it == regs_.end() ? kInvalidUid : it->second.uid;
}

std::vector<TokenId>
SensorManagerService::activeRegistrations(Uid uid) const
{
    std::vector<TokenId> active;
    for (const auto &[token, reg] : regs_)
        if (reg.uid == uid && reg.active) active.push_back(token);
    return active;
}

} // namespace leaseos::os
