#ifndef LEASELINT_SARIF_H
#define LEASELINT_SARIF_H

/**
 * @file
 * SARIF 2.1.0 export for lint findings, so CI can upload leaselint runs
 * as GitHub code-scanning annotations (codeql-action/upload-sarif).
 *
 * The document is minimal but spec-conformant: one run, a tool.driver
 * carrying every built-in rule's id/description, and one result per
 * finding with a physicalLocation (root-relative uri + startLine).
 * Findings that carry a FixIt also emit a SARIF `fixes` array (a pure
 * insertion: zero-length deletedRegion + insertedContent), which GitHub
 * renders as a suggested change on the code-scanning alert.
 */

#include <string>

#include "leaselint/driver.h"

namespace leaselint {

/** Serialise @p report as a SARIF 2.1.0 JSON document. */
std::string sarifReport(const LintReport &report);

/**
 * Write sarifReport(@p report) to @p path.
 * @retval false when the file cannot be opened.
 */
bool writeSarif(const LintReport &report, const std::string &path);

} // namespace leaselint

#endif // LEASELINT_SARIF_H
