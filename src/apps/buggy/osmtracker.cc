#include "apps/buggy/osmtracker.h"

// OsmTracker is header-only; this TU anchors the module.
namespace leaseos::apps {
} // namespace leaseos::apps
