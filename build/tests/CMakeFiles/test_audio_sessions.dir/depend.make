# Empty dependencies file for test_audio_sessions.
# This may be replaced when dependencies are built.
