# Empty compiler generated dependencies file for bench_fig3_kontalk.
# This may be replaced when dependencies are built.
