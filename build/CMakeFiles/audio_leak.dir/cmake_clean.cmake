file(REMOVE_RECURSE
  "CMakeFiles/audio_leak.dir/examples/audio_leak.cpp.o"
  "CMakeFiles/audio_leak.dir/examples/audio_leak.cpp.o.d"
  "examples/audio_leak"
  "examples/audio_leak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audio_leak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
