#include "harness/metrics.h"

// MetricsSampler is header-only; this TU anchors the module.
namespace leaseos::harness {
} // namespace leaseos::harness
