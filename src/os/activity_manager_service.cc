#include "os/activity_manager_service.h"

#include <utility>

namespace leaseos::os {

ActivityManagerService::ActivityManagerService(sim::Simulator &sim,
                                               power::CpuModel &cpu)
    : Service(sim, cpu, "activity"), lastAdvance_(sim.now())
{
}

void
ActivityManagerService::advance()
{
    sim::Time now = sim_.now();
    if (now <= lastAdvance_) {
        lastAdvance_ = now;
        return;
    }
    double dt = (now - lastAdvance_).seconds();
    for (auto &[uid, rec] : apps_)
        if (rec.liveActivities > 0) rec.activitySeconds += dt;
    lastAdvance_ = now;
}

void
ActivityManagerService::registerApp(Uid uid, std::string name)
{
    apps_[uid].name = std::move(name);
}

std::vector<Uid>
ActivityManagerService::apps() const
{
    std::vector<Uid> uids;
    for (const auto &[uid, rec] : apps_) uids.push_back(uid);
    return uids;
}

const std::string &
ActivityManagerService::appName(Uid uid) const
{
    static const std::string unknown = "<unknown>";
    auto it = apps_.find(uid);
    return it == apps_.end() ? unknown : it->second.name;
}

bool
ActivityManagerService::isRegistered(Uid uid) const
{
    return apps_.count(uid) != 0;
}

void
ActivityManagerService::setForeground(Uid uid)
{
    if (uid == foreground_) return;
    foreground_ = uid;
    for (const auto &fn : foregroundListeners_) fn(uid);
}

void
ActivityManagerService::addForegroundListener(std::function<void(Uid)> fn)
{
    foregroundListeners_.push_back(std::move(fn));
}

void
ActivityManagerService::activityStarted(Uid uid)
{
    advance();
    ++apps_[uid].liveActivities;
}

void
ActivityManagerService::activityStopped(Uid uid)
{
    advance();
    auto it = apps_.find(uid);
    if (it == apps_.end() || it->second.liveActivities == 0) return;
    --it->second.liveActivities;
}

bool
ActivityManagerService::hasLiveActivity(Uid uid) const
{
    auto it = apps_.find(uid);
    return it != apps_.end() && it->second.liveActivities > 0;
}

double
ActivityManagerService::activityAliveSeconds(Uid uid)
{
    advance();
    auto it = apps_.find(uid);
    return it == apps_.end() ? 0.0 : it->second.activitySeconds;
}

std::uint64_t
ActivityManagerService::uiUpdateCount(Uid uid) const
{
    auto it = uiUpdates_.find(uid);
    return it == uiUpdates_.end() ? 0 : it->second;
}

std::uint64_t
ActivityManagerService::userInteractionCount(Uid uid) const
{
    auto it = interactions_.find(uid);
    return it == interactions_.end() ? 0 : it->second;
}

} // namespace leaseos::os
