#ifndef LEASEOS_LEASE_UTILITY_GENERIC_UTILITY_H
#define LEASEOS_LEASE_UTILITY_GENERIC_UTILITY_H

/**
 * @file
 * Generic utility scoring (§3.3).
 *
 * LeaseOS is app-oblivious: without app changes it estimates how much user
 * value a term's resource consumption produced, using conservative
 * heuristics the paper names explicitly:
 *  - frequency of severe exceptions → low wakelock utility (the K-9
 *    disconnected retry storm);
 *  - distance moved → GPS utility (a stationary device gains nothing from
 *    a streak of identical fixes);
 *  - UI updates and user interactions → high utility for any resource.
 *
 * Apps may register an IUtilityCounter; its score is taken as a hint only
 * when the generic score is not already very low (abuse guard).
 */

#include <cstdint>

#include "common/utility_counter.h"
#include "lease/resource_type.h"

namespace leaseos::lease::utility {

/** Raw per-term signals feeding the generic score. */
struct Signals {
    double termSeconds = 0.0;
    double usageSeconds = 0.0;
    std::uint64_t exceptions = 0;   ///< severe exceptions this term
    std::uint64_t uiUpdates = 0;
    std::uint64_t interactions = 0;
    double distanceMeters = 0.0;
};

/** Neutral score used when there is no evidence either way. */
constexpr double kNeutralScore = 50.0;

/** Generic scores below this bar cannot be overridden by custom hints. */
constexpr double kVeryLowBar = 10.0;

/** Compute the generic 0-100 utility for one term. */
double genericScore(ResourceType rtype, const Signals &signals);

/**
 * Final utility: the custom counter's score when one is registered and
 * the generic score is not too low to trust the app (§3.3).
 */
double combine(double generic, IUtilityCounter *custom);

} // namespace leaseos::lease::utility

#endif // LEASEOS_LEASE_UTILITY_GENERIC_UTILITY_H
