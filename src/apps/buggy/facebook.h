#ifndef LEASEOS_APPS_BUGGY_FACEBOOK_H
#define LEASEOS_APPS_BUGGY_FACEBOOK_H

/**
 * @file
 * Facebook model (Table 5 row; the 2010 "battery drain in latest Android
 * build" report). A background session service keeps a wakelock held
 * permanently while only polling for updates occasionally → Long-Holding.
 */

#include "app/app.h"
#include "os/binder.h"

namespace leaseos::apps {

/**
 * Buggy Facebook background service.
 */
class Facebook : public app::App
{
  public:
    static constexpr const char *kServer = "api.facebook.example";

    Facebook(app::AppContext &ctx, Uid uid) : App(ctx, uid, "Facebook") {}

    void
    start() override
    {
        lock_ = ctx_.powerManager().newWakeLock(
            uid(), os::WakeLockType::Partial, "fb:session");
        // leaselint: allow(cross-unit-pairing) -- modelled defect: never released
        ctx_.powerManager().acquire(lock_);
        poll();
    }

    void
    stop() override
    {
        stopped_ = true;
        ctx_.powerManager().destroy(lock_);
        App::stop();
    }

  private:
    void
    poll()
    {
        if (stopped_) return;
        // A light refresh once a minute: ~0.1 s CPU per 60 s awake.
        process_.computeScaled(0.5, sim::Time::fromMillis(120));
        ctx_.network.httpRequest(uid(), kServer, 15000,
                                 [](env::NetResult) {});
        process_.post(sim::Time::fromSeconds(60.0), [this] { poll(); });
    }

    os::TokenId lock_ = os::kInvalidToken;
    bool stopped_ = false;
};

} // namespace leaseos::apps

#endif // LEASEOS_APPS_BUGGY_FACEBOOK_H
