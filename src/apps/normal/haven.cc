#include "apps/normal/haven.h"

namespace leaseos::apps {

using sim::operator""_s;

void
Haven::start()
{
    lastObservation_ = ctx_.sim.now();
    // Monitoring runs as an Android foreground service (ongoing
    // notification): the registration stays "bound" for the §3.3 metric.
    ctx_.activityManager().activityStarted(uid());
    lock_ = ctx_.powerManager().newWakeLock(
        uid(), os::WakeLockType::Partial, "haven:monitor");
    ctx_.powerManager().acquire(lock_);
    analysisTick();
    if (ctx_.leaseManager) {
        ctx_.leaseManager->setUtility(uid(), lease::ResourceType::Sensor,
                                      this);
        ctx_.leaseManager->setUtility(uid(), lease::ResourceType::Wakelock,
                                      this);
    }
    accel_ = ctx_.sensorManager().registerListener(
        uid(), power::SensorType::Accelerometer, 1_s, this);
    light_ = ctx_.sensorManager().registerListener(
        uid(), power::SensorType::Light, 2_s, this);
}

void
Haven::analysisTick()
{
    // Camera-frame / audio-level analysis: ~15 % of one core.
    process_.compute(0.15, 1_s);
    process_.post(1_s, [this] { analysisTick(); });
}

void
Haven::stop()
{
    ctx_.activityManager().activityStopped(uid());
    ctx_.sensorManager().unregisterListener(accel_);
    ctx_.sensorManager().unregisterListener(light_);
    ctx_.powerManager().release(lock_);
    ctx_.powerManager().destroy(lock_);
    App::stop();
}

} // namespace leaseos::apps
