file(REMOVE_RECURSE
  "CMakeFiles/test_battery_profiler.dir/power/test_battery_profiler.cc.o"
  "CMakeFiles/test_battery_profiler.dir/power/test_battery_profiler.cc.o.d"
  "test_battery_profiler"
  "test_battery_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_battery_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
