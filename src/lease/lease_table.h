#ifndef LEASEOS_LEASE_LEASE_TABLE_H
#define LEASEOS_LEASE_LEASE_TABLE_H

/**
 * @file
 * The system-wide lease table (§4.3): all leases for all apps/resources,
 * addressable by lease descriptor or by the backing kernel object.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "lease/lease.h"

namespace leaseos::lease {

/**
 * Owning registry of all leases in the system.
 */
class LeaseTable
{
  public:
    /** Create a lease; returns a stable reference (owned by the table). */
    Lease &create(ResourceType rtype, os::TokenId token, Uid uid);

    Lease *find(LeaseId id);
    const Lease *find(LeaseId id) const;

    /** Lease backing a kernel object; null if none (or dead+reaped). */
    Lease *findByToken(os::TokenId token);

    /** Remove a dead lease from the table. */
    void reap(LeaseId id);

    std::size_t size() const { return leases_.size(); }

    /** Snapshot of live lease pointers (stable until next mutation). */
    std::vector<Lease *> all();
    std::vector<const Lease *> all() const;

    /** Number of leases in a given state right now. */
    std::size_t countInState(LeaseState state) const;

    std::uint64_t totalCreated() const { return nextId_ - 1; }

    /**
     * Raw-field serialization, embedded in the manager's "leases"
     * section (DESIGN.md §11). Each lease's pendingEvent handle is NOT
     * captured — the manager re-arms term/deferral expiries from the
     * recomputable deadlines on restore.
     */
    void saveState(sim::CheckpointWriter &w) const;
    void restoreState(sim::CheckpointReader &r);

  private:
    std::map<LeaseId, std::unique_ptr<Lease>> leases_;
    std::map<os::TokenId, LeaseId> byToken_;
    LeaseId nextId_ = 1;
};

} // namespace leaseos::lease

#endif // LEASEOS_LEASE_LEASE_TABLE_H
