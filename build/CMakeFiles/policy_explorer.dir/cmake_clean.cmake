file(REMOVE_RECURSE
  "CMakeFiles/policy_explorer.dir/examples/policy_explorer.cpp.o"
  "CMakeFiles/policy_explorer.dir/examples/policy_explorer.cpp.o.d"
  "examples/policy_explorer"
  "examples/policy_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
