#ifndef LEASEOS_APPS_BUGGY_OPENSCIENCE_MAP_H
#define LEASEOS_APPS_BUGGY_OPENSCIENCE_MAP_H

/**
 * @file
 * OpenScienceMap model (Table 5 row; vtm issue #31 "GPS stays active").
 * The map is left open on a stationary device; GPS keeps streaming fixes
 * that redraw nothing → Low-Utility.
 */

#include "apps/buggy/continuous_gps_app.h"

namespace leaseos::apps {

class OpenScienceMap : public ContinuousGpsApp
{
  public:
    OpenScienceMap(app::AppContext &ctx, Uid uid)
        : ContinuousGpsApp(ctx, uid, "OpenScienceMap",
                           Params{sim::Time::fromSeconds(2.0), true,
                                  sim::Time::fromMillis(50), 0.6, true}) {}
};

} // namespace leaseos::apps

#endif // LEASEOS_APPS_BUGGY_OPENSCIENCE_MAP_H
