#ifndef LEASEOS_HARNESS_FIGURE_H
#define LEASEOS_HARNESS_FIGURE_H

/**
 * @file
 * Figure-style text output helpers for the bench binaries: headers,
 * shared-axis series tables, and horizontal bar groups (for the paper's
 * bar-chart figures).
 */

#include <string>
#include <vector>

#include "sim/time_series.h"

namespace leaseos::harness {

/** Print a banner identifying which paper artefact follows. */
std::string figureHeader(const std::string &id, const std::string &caption);

/** Render a bar chart: one labelled bar per (label, value) pair. */
std::string barChart(const std::vector<std::pair<std::string, double>> &bars,
                     const std::string &unit, double scaleMax = 0.0);

/** Render series sharing a time axis (delegates to renderSeriesTable). */
std::string seriesFigure(const std::vector<const sim::TimeSeries *> &series,
                         const std::string &timeUnit = "min");

} // namespace leaseos::harness

#endif // LEASEOS_HARNESS_FIGURE_H
