#include "power/power_profiler.h"

#include <stdexcept>

#include "sim/checkpoint.h"

namespace leaseos::power {

PowerProfiler::PowerProfiler(sim::Simulator &sim,
                             EnergyAccountant &accountant, sim::Time period)
    : sim_(sim), accountant_(accountant), period_(period),
      total_("total_mw")
{
}

void
PowerProfiler::watchUid(Uid uid)
{
    perUid_.emplace(uid,
                    sim::TimeSeries("uid" + std::to_string(uid) + "_mw"));
}

void
PowerProfiler::start()
{
    if (running_) return;
    running_ = true;
    accountant_.sync();
    lastTotalMj_ = accountant_.totalEnergyMj();
    for (auto &[uid, series] : perUid_)
        lastUidMj_[uid] = accountant_.uidEnergyMj(uid);
    tick_ = sim_.schedulePeriodicScoped(period_, [this] { sample(); });
}

void
PowerProfiler::sample()
{
    double dt = period_.seconds();
    // One sync covers the whole sample: every read below is as-of-now.
    accountant_.sync();
    double total = accountant_.totalEnergyMj();
    total_.record(sim_.now(), (total - lastTotalMj_) / dt);
    lastTotalMj_ = total;
    for (auto &[uid, series] : perUid_) {
        double mj = accountant_.uidEnergyMj(uid);
        series.record(sim_.now(), (mj - lastUidMj_[uid]) / dt);
        lastUidMj_[uid] = mj;
    }
}

const sim::TimeSeries &
PowerProfiler::uidSeries(Uid uid) const
{
    auto it = perUid_.find(uid);
    if (it == perUid_.end())
        throw std::out_of_range("uid not watched: " + std::to_string(uid));
    return it->second;
}

double
PowerProfiler::averageUidPowerMw(Uid uid) const
{
    return uidSeries(uid).mean();
}

double
PowerProfiler::averageTotalPowerMw() const
{
    return total_.mean();
}

void
PowerProfiler::saveState(sim::CheckpointWriter &w) const
{
    w.beginSection("profiler", 1);
    w.u8(running_ ? 1 : 0);
    w.time(period_);
    w.f64(lastTotalMj_);
    total_.saveState(w);
    w.u64(perUid_.size());
    for (const auto &[uid, series] : perUid_) {
        w.u32(static_cast<std::uint32_t>(uid));
        auto it = lastUidMj_.find(uid);
        w.f64(it == lastUidMj_.end() ? 0.0 : it->second);
        series.saveState(w);
    }
    w.endSection();
}

void
PowerProfiler::restoreState(sim::CheckpointReader &r)
{
    sim::requireSectionVersion("profiler", r.beginSection("profiler"), 1);
    bool wasRunning = r.u8() != 0;
    sim::Time period = r.time();
    if (period != period_)
        throw sim::CheckpointError(
            "profiler period mismatch: blob " + period.toString() +
            " vs device " + period_.toString());
    lastTotalMj_ = r.f64();
    total_.restoreState(r);
    std::uint64_t uidCount = r.u64();
    if (uidCount != perUid_.size())
        throw sim::CheckpointError(
            "profiler watches " + std::to_string(perUid_.size()) +
            " uids; blob has " + std::to_string(uidCount));
    lastUidMj_.clear();
    for (auto &[uid, series] : perUid_) {
        Uid saved = static_cast<Uid>(r.u32());
        if (saved != uid)
            throw sim::CheckpointError(
                "profiler uid mismatch: blob " + std::to_string(saved) +
                " vs device " + std::to_string(uid));
        lastUidMj_[uid] = r.f64();
        series.restoreState(r);
    }
    r.endSection();
    tick_.cancel();
    running_ = wasRunning;
    if (running_)
        tick_ = sim_.schedulePeriodicScoped(period_, [this] { sample(); });
}

} // namespace leaseos::power
