#ifndef LEASEOS_APPS_BUGGY_GPSLOGGER_H
#define LEASEOS_APPS_BUGGY_GPSLOGGER_H

/**
 * @file
 * GPSLogger model (Table 5 row; issue #4 "location accuracy"): configured
 * for maximum accuracy, it keeps the receiver streaming at 1 Hz from a
 * background service → Long-Holding.
 */

#include "apps/buggy/continuous_gps_app.h"

namespace leaseos::apps {

class GpsLogger : public ContinuousGpsApp
{
  public:
    GpsLogger(app::AppContext &ctx, Uid uid)
        : ContinuousGpsApp(ctx, uid, "GPSLogger",
                           Params{sim::Time::fromSeconds(1.0), false,
                                  sim::Time::fromMillis(10), 0.4, true}) {}
};

} // namespace leaseos::apps

#endif // LEASEOS_APPS_BUGGY_GPSLOGGER_H
