#include "harness/result_sink.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "harness/csv_export.h"
#include "harness/figure.h"
#include "harness/table.h"

namespace leaseos::harness {

std::string
ResultSink::Value::toText() const
{
    switch (kind) {
      case Kind::Text: return text;
      case Kind::Number: return TextTable::fmt(number, precision);
      case Kind::Integer: return std::to_string(integer);
    }
    return {};
}

std::string
ResultSink::Value::toJson() const
{
    switch (kind) {
      case Kind::Text: return "\"" + jsonEscape(text) + "\"";
      case Kind::Number:
        if (!std::isfinite(number)) return "null";
        return TextTable::fmt(number, precision);
      case Kind::Integer: return std::to_string(integer);
    }
    return "null";
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
benchArtifactPath(const std::string &benchName)
{
    std::string file = "BENCH_" + benchName + ".json";
    std::string dir = csvOutputDir();
    return dir.empty() ? file : dir + "/" + file;
}

// ---- TextTableSink ------------------------------------------------------

TextTableSink::TextTableSink(std::ostream &out) : out_(out) {}

TextTableSink::TextTableSink() : out_(std::cout) {}

void
TextTableSink::begin(const std::string &benchId, const std::string &caption)
{
    header_ = figureHeader(benchId, caption);
}

void
TextTableSink::addRow(const Row &row)
{
    if (headers_.empty())
        for (const auto &[key, value] : row) headers_.push_back(key);
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const auto &[key, value] : row) cells.push_back(value.toText());
    rows_.emplace_back(false, std::move(cells));
}

void
TextTableSink::addSeparator()
{
    rows_.emplace_back(true, std::vector<std::string>{});
}

void
TextTableSink::finish()
{
    TextTable table(headers_);
    for (auto &[separator, cells] : rows_) {
        if (separator)
            table.addSeparator();
        else
            table.addRow(cells);
    }
    out_ << header_ << table.toString();
}

// ---- JsonSink -----------------------------------------------------------

JsonSink::JsonSink(std::string path) : path_(std::move(path)) {}

void
JsonSink::begin(const std::string &benchId, const std::string &caption)
{
    benchId_ = benchId;
    caption_ = caption;
}

void
JsonSink::addRow(const Row &row)
{
    rows_.push_back(row);
}

std::string
JsonSink::document() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"bench\": \"" << jsonEscape(benchId_) << "\",\n";
    os << "  \"caption\": \"" << jsonEscape(caption_) << "\",\n";
    os << "  \"rows\": [\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        os << "    {";
        const Row &row = rows_[r];
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i) os << ", ";
            os << "\"" << jsonEscape(row[i].first)
               << "\": " << row[i].second.toJson();
        }
        os << "}" << (r + 1 < rows_.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

void
JsonSink::finish()
{
    if (path_.empty()) return;
    std::ofstream out(path_);
    if (!out) {
        std::cerr << "[result_sink] cannot write " << path_ << "\n";
        return;
    }
    out << document();
    std::cerr << "[result_sink] wrote " << path_ << "\n";
}

} // namespace leaseos::harness
