/**
 * @file
 * Unit tests for the leaselint two-pass analysis engine
 * (tools/leaselint).
 *
 * Covers: the SourceFile primitives (code view, suppression map, CRLF
 * normalization), the per-file index extractor and its cache
 * serialization, the call-graph linker and its resolution policy, every
 * rule (positive / negative / suppression), the incremental cache
 * (warm hit, edit invalidation), baseline diffing, SARIF export with
 * fix-it hints, and the whole-repo gates (the shipped tree must lint
 * clean under every rule, with justified suppressions only).
 *
 * Multi-file rule corpora live in tests/tools/fixtures/ and are loaded
 * with src/-style display paths so directory-scoped rules see them.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "leaselint/baseline.h"
#include "leaselint/callgraph.h"
#include "leaselint/driver.h"
#include "leaselint/index.h"
#include "leaselint/rules.h"
#include "leaselint/sarif.h"
#include "leaselint/source.h"

namespace leaselint {
namespace {

namespace fs = std::filesystem;

LintReport
lintOne(const std::string &path, const std::string &text,
        const std::string &rule)
{
    std::vector<SourceFile> files;
    files.push_back(SourceFile::fromString(path, text));
    return runLint(files, {rule});
}

/** Load tests/tools/fixtures/@p rel with display path @p displayPath. */
SourceFile
fixture(const std::string &rel, const std::string &displayPath)
{
    auto file = SourceFile::load(
        std::string(LEASELINT_TEST_FIXTURE_DIR) + "/" + rel, displayPath);
    EXPECT_TRUE(file.has_value()) << rel;
    return *file;
}

/** Global FuncId of the function whose qualified name is @p name. */
FuncId
findFunc(const CallGraph &graph, const std::string &name)
{
    for (FuncId id = 0; id < graph.funcCount(); ++id)
        if (graph.def(id).name == name) return id;
    return kInvalidFunc;
}

/** A scratch directory that cleans up after itself. */
struct TempTree {
    fs::path root;
    TempTree()
    {
        root = fs::temp_directory_path() /
               ("leaselint_test_" +
                std::to_string(
                    reinterpret_cast<std::uintptr_t>(this) ^
                    static_cast<std::uintptr_t>(::getpid())));
        fs::create_directories(root);
    }
    ~TempTree()
    {
        std::error_code ec;
        fs::remove_all(root, ec);
    }
    void
    write(const std::string &rel, const std::string &text) const
    {
        fs::path p = root / rel;
        fs::create_directories(p.parent_path());
        std::ofstream out(p, std::ios::binary);
        out << text;
    }
};

// ---- SourceFile primitives ----------------------------------------------

TEST(SourceFile, BlanksCommentsAndStrings)
{
    SourceFile f = SourceFile::fromString("src/a.cc",
                                          "int x; // rand() here\n"
                                          "const char *s = \"rand()\";\n"
                                          "/* rand()\n   rand() */\n"
                                          "int y = rand();\n");
    // Only the real call on line 5 survives blanking.
    std::size_t pos = findToken(f.codeText(), "rand", 0);
    ASSERT_NE(pos, std::string::npos);
    EXPECT_EQ(f.lineOfOffset(pos), 5u);
}

TEST(SourceFile, TokenMatchingRespectsIdentifierBoundaries)
{
    // "srand" and "randomize" must not match the token "rand".
    EXPECT_EQ(findToken("srand(1); randomize();", "rand", 0),
              std::string::npos);
    EXPECT_NE(findToken("x = rand();", "rand", 0), std::string::npos);
}

TEST(SourceFile, AllowAppliesToItsLineAndTheNext)
{
    SourceFile f = SourceFile::fromString(
        "src/a.cc",
        "// leaselint: allow(determinism) -- reason\n"
        "int a;\n"
        "int b;\n");
    EXPECT_TRUE(f.allowed("determinism", 1));
    EXPECT_TRUE(f.allowed("determinism", 2));
    EXPECT_FALSE(f.allowed("determinism", 3));
    EXPECT_FALSE(f.allowed("cross-unit-pairing", 2));
}

TEST(SourceFile, CrlfLineEndingsAreNormalized)
{
    // An allow() at end of a CRLF line must work exactly like the LF
    // form, and raw lines must not leak the '\r'.
    SourceFile f = SourceFile::fromString(
        "src/sim/a.h",
        "std::unordered_set<int> s_; // leaselint: allow(determinism) -- "
        "membership only\r\n"
        "int x;\r\n");
    EXPECT_TRUE(f.allowed("determinism", 1));
    EXPECT_TRUE(f.rawLine(1).empty() || f.rawLine(1).back() != '\r');
    EXPECT_EQ(f.rawLine(2), "int x;");

    LintReport report;
    {
        std::vector<SourceFile> files{f};
        report = runLint(files, {"determinism"});
    }
    EXPECT_TRUE(report.findings.empty());
    EXPECT_EQ(report.suppressed, 1u);
}

TEST(SourceFile, CrlfAllowWithTrailingWhitespace)
{
    SourceFile f = SourceFile::fromString(
        "src/sim/a.h",
        "// leaselint: allow(determinism) -- reason  \t\r\n"
        "int r = rand();\r\n");
    EXPECT_TRUE(f.allowed("determinism", 2));
}

TEST(SourceFile, MalformedAllowIsRecorded)
{
    SourceFile f = SourceFile::fromString(
        "src/a.cc",
        "// leaselint: allow(determinism  <- missing paren\n"
        "int a;\n"
        "// leaselint: allow() -- empty\n");
    ASSERT_EQ(f.malformedAllowLines().size(), 2u);
    EXPECT_EQ(f.malformedAllowLines()[0], 1u);
    EXPECT_EQ(f.malformedAllowLines()[1], 3u);
    EXPECT_FALSE(f.allowed("determinism", 2));
}

TEST(SourceFile, ContentHashTracksBytes)
{
    SourceFile a = SourceFile::fromString("a.cc", "int x;\n");
    SourceFile b = SourceFile::fromString("a.cc", "int y;\n");
    SourceFile c = SourceFile::fromString("b.cc", "int x;\n");
    EXPECT_NE(a.contentHash(), b.contentHash());
    EXPECT_EQ(a.contentHash(), c.contentHash()); // path not hashed
    EXPECT_EQ(a.contentHash(), hashContent("int x;\n"));
}

// ---- index extractor ----------------------------------------------------

TEST(Index, ExtractsQualifiedFunctionsAndCalls)
{
    SourceFile f = SourceFile::fromString(
        "src/x.cc",
        "namespace app {\n"
        "\n"
        "void\n"
        "Torch::start()\n"
        "{\n"
        "    lock_.acquire();\n"
        "    helper(1 + 2);\n"
        "}\n"
        "\n"
        "Torch::~Torch() { stopAll(); }\n"
        "\n"
        "} // namespace app\n");
    FileIndex index = buildIndex(f);
    ASSERT_EQ(index.funcs.size(), 2u);
    EXPECT_EQ(index.funcs[0].name, "app::Torch::start");
    EXPECT_EQ(index.funcs[0].startLine, 4u);
    EXPECT_EQ(index.funcs[0].endLine, 8u);
    EXPECT_EQ(index.funcs[1].name, "app::Torch::~Torch");

    ASSERT_EQ(index.resources.size(), 1u);
    EXPECT_FALSE(index.resources[0].release);
    EXPECT_EQ(index.resources[0].line, 6u);
    EXPECT_EQ(index.resources[0].func, 0u);

    bool sawHelper = false, sawStopAll = false;
    for (const CallSite &call : index.calls) {
        if (call.callee == "helper" && call.func == 0) sawHelper = true;
        if (call.callee == "stopAll" && call.func == 1) sawStopAll = true;
    }
    EXPECT_TRUE(sawHelper);
    EXPECT_TRUE(sawStopAll);
}

TEST(Index, AttributesConstructorInitializerListCalls)
{
    SourceFile f = SourceFile::fromString(
        "src/power/radio.cc",
        "RadioModel::RadioModel(EnergyAccountant &acct)\n"
        "    : channel_(acct.makeChannel(\"radio\")), idle_(0.0)\n"
        "{\n"
        "}\n");
    FileIndex index = buildIndex(f);
    ASSERT_EQ(index.funcs.size(), 1u);
    EXPECT_EQ(index.funcs[0].name, "RadioModel::RadioModel");
    bool sawMakeChannel = false;
    for (const CallSite &call : index.calls)
        if (call.callee == "makeChannel" && call.func == 0)
            sawMakeChannel = true;
    EXPECT_TRUE(sawMakeChannel);
}

TEST(Index, MethodCallsAndRegistrationSites)
{
    SourceFile f = SourceFile::fromString(
        "src/obs/x.cc",
        "void Foo::initMetrics() { metrics_->counter(\"a.b\"); }\n"
        "void Foo::tick() { value_.store(1); }\n");
    FileIndex index = buildIndex(f);
    ASSERT_EQ(index.regs.size(), 1u);
    EXPECT_EQ(index.regs[0].methodName, "counter");
    EXPECT_EQ(index.regs[0].func, 0u);
}

TEST(Index, PreprocessorLinesDoNotProduceStructure)
{
    SourceFile f = SourceFile::fromString(
        "src/x.h",
        "#include <map>\n"
        "#define HELPER(x) do { acquire(x); } while (0)\n"
        "#define TWO_LINE(x) \\\n"
        "    acquire(x)\n"
        "void f() { int y = 1; }\n");
    FileIndex index = buildIndex(f);
    EXPECT_TRUE(index.resources.empty()); // macro bodies are not calls
    ASSERT_EQ(index.funcs.size(), 1u);
    EXPECT_EQ(index.funcs[0].name, "f");
}

TEST(Index, SerializeParseRoundTrips)
{
    SourceFile f = SourceFile::fromString(
        "src/sim/bad.cc",
        "enum class LeaseState { Active, Dead };\n"
        "// leaselint: allow(determinism) -- seeded elsewhere\n"
        "int r = rand();\n"
        "void f(LeaseState s) {\n"
        "    switch (s) {\n"
        "      case LeaseState::Active: break;\n"
        "    }\n"
        "    lock_.release();\n"
        "}\n");
    FileIndex index = buildIndex(f);
    EXPECT_FALSE(index.enums.empty());
    EXPECT_FALSE(index.switches.empty());
    EXPECT_FALSE(index.resources.empty());
    EXPECT_FALSE(index.findings.empty());

    std::string text = serializeIndex(index);
    auto parsed = parseIndex(text, index.hash);
    ASSERT_TRUE(parsed.has_value());
    // Strongest equality: re-serialization is byte-identical.
    EXPECT_EQ(serializeIndex(*parsed), text);
    EXPECT_TRUE(parsed->allowed("determinism", 3));
}

TEST(Index, ParseRejectsWrongHashAndVersion)
{
    SourceFile f = SourceFile::fromString("src/a.cc", "int x;\n");
    FileIndex index = buildIndex(f);
    std::string text = serializeIndex(index);

    EXPECT_FALSE(parseIndex(text, index.hash + 1).has_value());
    EXPECT_FALSE(parseIndex("garbage\n", index.hash).has_value());

    std::string versioned = text;
    std::size_t tab = versioned.find('\t');
    versioned.replace(tab + 1, 1, "999"); // bump the format version
    EXPECT_FALSE(parseIndex(versioned, index.hash).has_value());
}

// ---- call graph ---------------------------------------------------------

TEST(CallGraph, ResolvesSameFileFirst)
{
    RepoIndex repo;
    repo.files.push_back(buildIndex(SourceFile::fromString(
        "src/a.cc", "void helper() {}\nvoid caller() { helper(); }\n")));
    repo.files.push_back(buildIndex(
        SourceFile::fromString("src/b.cc", "void helper() {}\n")));
    CallGraph graph(repo);
    FuncId caller = findFunc(graph, "caller");
    ASSERT_NE(caller, kInvalidFunc);
    ASSERT_EQ(graph.callees(caller).size(), 1u);
    EXPECT_EQ(graph.fileOf(graph.callees(caller)[0]), 0u);
}

TEST(CallGraph, ResolvesWithinUnitThenUniqueGlobal)
{
    RepoIndex repo;
    repo.files.push_back(buildIndex(SourceFile::fromString(
        "src/x.h", "void closeAll() {}\n")));
    repo.files.push_back(buildIndex(SourceFile::fromString(
        "src/x.cc", "void open() { closeAll(); }\n")));
    repo.files.push_back(buildIndex(SourceFile::fromString(
        "src/y.cc", "void closeAll() {}\nvoid other() { unique(); }\n")));
    repo.files.push_back(buildIndex(
        SourceFile::fromString("src/z.cc", "void unique() {}\n")));
    CallGraph graph(repo);

    // x.cc's closeAll() call: two candidates, the .h/.cc unit wins.
    FuncId open = findFunc(graph, "open");
    ASSERT_EQ(graph.callees(open).size(), 1u);
    EXPECT_EQ(graph.unitOf(graph.callees(open)[0]), "src/x");

    // unique() has one candidate repo-wide: resolved.
    FuncId other = findFunc(graph, "other");
    ASSERT_EQ(graph.callees(other).size(), 1u);
    EXPECT_EQ(graph.def(graph.callees(other)[0]).name, "unique");
}

TEST(CallGraph, AmbiguousNamesStayUnresolved)
{
    RepoIndex repo;
    repo.files.push_back(buildIndex(SourceFile::fromString(
        "src/apps/a.cc", "void start() {}\n")));
    repo.files.push_back(buildIndex(SourceFile::fromString(
        "src/apps/b.cc", "void start() {}\n")));
    repo.files.push_back(buildIndex(SourceFile::fromString(
        "src/apps/c.cc", "void go() { start(); }\n")));
    CallGraph graph(repo);
    FuncId go = findFunc(graph, "go");
    EXPECT_TRUE(graph.callees(go).empty());
}

TEST(CallGraph, ReachabilityIsDepthBounded)
{
    RepoIndex repo;
    repo.files.push_back(buildIndex(SourceFile::fromString(
        "src/chain.cc",
        "void d() {}\n"
        "void c() { d(); }\n"
        "void b() { c(); }\n"
        "void a() { b(); }\n")));
    CallGraph graph(repo);
    FuncId a = findFunc(graph, "a");
    EXPECT_EQ(graph.reachableFrom({a}, 1).size(), 2u); // a, b
    EXPECT_EQ(graph.reachableFrom({a}, 8).size(), 4u);
}

TEST(CallGraph, StructorNamesAndUnitStems)
{
    EXPECT_TRUE(CallGraph::isStructorName("Foo::Foo"));
    EXPECT_TRUE(CallGraph::isStructorName("ns::Foo::~Foo"));
    EXPECT_FALSE(CallGraph::isStructorName("Foo::bar"));
    EXPECT_FALSE(CallGraph::isStructorName("freeFunction"));
    EXPECT_EQ(unitStem("src/apps/buggy/torch.h"), "src/apps/buggy/torch");
    EXPECT_EQ(unitStem("src/apps/buggy/torch.cc"), "src/apps/buggy/torch");
}

// ---- determinism rule ---------------------------------------------------

TEST(DeterminismRule, FlagsWallClockAndRand)
{
    LintReport report = lintOne("src/sim/bad.cc",
                                "#include <chrono>\n"
                                "auto t = std::chrono::system_clock::now();\n"
                                "int r = rand();\n",
                                "determinism");
    ASSERT_EQ(report.findings.size(), 2u);
    EXPECT_EQ(report.findings[0].line, 2u);
    EXPECT_EQ(report.findings[1].line, 3u);
    EXPECT_EQ(report.findings[0].rule, "determinism");
}

TEST(DeterminismRule, FlagsUnorderedContainers)
{
    LintReport report = lintOne(
        "src/os/bad.h", "std::unordered_map<int, int> m;\n", "determinism");
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_NE(report.findings[0].message.find("iteration order"),
              std::string::npos);
}

TEST(DeterminismRule, IgnoresIncludesCommentsAndOtherDirs)
{
    LintReport clean = lintOne("src/sim/ok.cc",
                               "#include <unordered_set>\n"
                               "// rand() is banned\n"
                               "int seeded = seededRandom();\n",
                               "determinism");
    EXPECT_TRUE(clean.findings.empty());

    // Scope: tools/ and tests/ may use wall clocks (e.g. timing a build).
    LintReport outside =
        lintOne("tools/x.cc", "int r = rand();\n", "determinism");
    EXPECT_TRUE(outside.findings.empty());
}

TEST(DeterminismRule, SuppressionSilencesButCounts)
{
    LintReport report = lintOne(
        "src/sim/ok.h",
        "// leaselint: allow(determinism) -- membership only\n"
        "std::unordered_set<int> live_;\n",
        "determinism");
    EXPECT_TRUE(report.findings.empty());
    EXPECT_EQ(report.suppressed, 1u);
}

TEST(DeterminismRule, FlagsUnorderedIterationOnSnapshotPath)
{
    // The checkpoint hazard (DESIGN.md §11): a saveState() that walks a
    // std::unordered_map serializes hash order straight into blob bytes,
    // breaking "equal state => byte-identical blobs" across hosts.
    std::vector<SourceFile> files;
    files.push_back(fixture("snapshot/unordered_save.cc",
                            "src/power/fix/unordered_save.cc"));
    LintReport report = runLint(files, {"determinism"});
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].rule, "determinism");
    EXPECT_NE(report.findings[0].message.find("iteration order"),
              std::string::npos);
}

TEST(DeterminismRule, OrderedSnapshotSerializationIsClean)
{
    std::vector<SourceFile> files;
    files.push_back(fixture("snapshot/ordered_save.cc",
                            "src/power/fix/ordered_save.cc"));
    LintReport report = runLint(files, {"determinism"});
    for (const Finding &f : report.findings)
        ADD_FAILURE() << formatFinding(f);
}

// ---- cross-unit-pairing rule --------------------------------------------

TEST(CrossUnitPairing, FlagsAcquireWithoutRelease)
{
    LintReport report = lintOne("src/apps/buggy/leak.h",
                                "void start() {\n"
                                "    ctx_.powerManager().acquire(lock_);\n"
                                "}\n",
                                "cross-unit-pairing");
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].rule, "cross-unit-pairing");
    EXPECT_EQ(report.findings[0].line, 2u);
}

TEST(CrossUnitPairing, AcceptsBalancedPairsAcrossHeaderAndImpl)
{
    // acquire in the .h, release in the .cc of the same unit: balanced.
    std::vector<SourceFile> files;
    files.push_back(SourceFile::fromString(
        "src/apps/a.h", "void s() { pm().acquire(lock_); }\n"));
    files.push_back(SourceFile::fromString(
        "src/apps/a.cc", "void t() { pm().release(lock_); }\n"));
    LintReport report = runLint(files, {"cross-unit-pairing"});
    EXPECT_TRUE(report.findings.empty());
}

TEST(CrossUnitPairing, ChecksSubscriptionStylePairsToo)
{
    LintReport report =
        lintOne("src/apps/gps.h",
                "void s() { lm().requestLocationUpdates(uid, i, this); }\n",
                "cross-unit-pairing");
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_NE(report.findings[0].message.find("removeUpdates"),
              std::string::npos);
}

TEST(CrossUnitPairing, OnlyAppliesToAppsAndExamples)
{
    LintReport report = lintOne(
        "src/os/impl.cc", "void s() { acquire(t); }\n",
        "cross-unit-pairing");
    EXPECT_TRUE(report.findings.empty());
}

TEST(CrossUnitPairing, ModelledDefectSuppressionWorks)
{
    LintReport report = lintOne(
        "src/apps/buggy/leak.h",
        "void start() {\n"
        "    // leaselint: allow(cross-unit-pairing) -- modelled defect\n"
        "    ctx_.powerManager().acquire(lock_);\n"
        "}\n",
        "cross-unit-pairing");
    EXPECT_TRUE(report.findings.empty());
    EXPECT_EQ(report.suppressed, 1u);
}

TEST(CrossUnitPairing, ReleaseViaHelperAcrossUnitsIsClean)
{
    // The whole point of the call-graph upgrade: the release lives in a
    // helper in ANOTHER translation unit; the file-local rule called
    // this a leak.
    std::vector<SourceFile> files;
    files.push_back(
        fixture("pairing/clean_app.cc", "src/apps/fix/clean_app.cc"));
    files.push_back(
        fixture("pairing/clean_helper.cc", "src/apps/fix/clean_helper.cc"));
    LintReport report = runLint(files, {"cross-unit-pairing"});
    for (const Finding &f : report.findings)
        ADD_FAILURE() << formatFinding(f);
}

TEST(CrossUnitPairing, LeakThroughForgetfulHelperIsFlagged)
{
    std::vector<SourceFile> files;
    files.push_back(
        fixture("pairing/leak_app.cc", "src/apps/fix/leak_app.cc"));
    LintReport report = runLint(files, {"cross-unit-pairing"});
    ASSERT_EQ(report.findings.size(), 1u);
    const Finding &f = report.findings[0];
    EXPECT_EQ(f.path, "src/apps/fix/leak_app.cc");
    EXPECT_NE(f.message.find("never release()"), std::string::npos);
    // The finding carries a machine-applicable fix-it: insert a
    // suppression above the acquire site, matching its indentation.
    ASSERT_TRUE(f.fix.has_value());
    EXPECT_EQ(f.fix->line, f.line);
    EXPECT_NE(f.fix->insertText.find(
                  "// leaselint: allow(cross-unit-pairing)"),
              std::string::npos);
    EXPECT_EQ(f.fix->insertText.rfind("    //", 0), 0u); // indented
}

TEST(CrossUnitPairing, DoubleReleaseIsFlagged)
{
    std::vector<SourceFile> files;
    files.push_back(fixture("pairing/double_release_app.cc",
                            "src/apps/fix/double_release_app.cc"));
    LintReport report = runLint(files, {"cross-unit-pairing"});
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_NE(report.findings[0].message.find("double release"),
              std::string::npos);
}

TEST(CrossUnitPairing, SharedReleaseHelperIsExempt)
{
    // clean_helper releases without acquiring, but its releasing
    // function is called from another unit — the caller owns the
    // balance, so no finding may land in the helper.
    std::vector<SourceFile> files;
    files.push_back(
        fixture("pairing/clean_app.cc", "src/apps/fix/clean_app.cc"));
    files.push_back(
        fixture("pairing/clean_helper.cc", "src/apps/fix/clean_helper.cc"));
    LintReport report = runLint(files, {"cross-unit-pairing"});
    for (const Finding &f : report.findings)
        EXPECT_NE(f.path, "src/apps/fix/clean_helper.cc")
            << formatFinding(f);
}

// ---- ptr-ordered-iteration rule -----------------------------------------

TEST(PtrOrderedIteration, FlagsPointerKeyedOrderedContainers)
{
    std::vector<SourceFile> files;
    files.push_back(
        fixture("ptr_map/positive.cc", "src/lease/fix/positive.cc"));
    LintReport report = runLint(files, {"ptr-ordered-iteration"});
    ASSERT_EQ(report.findings.size(), 2u);
    EXPECT_EQ(report.findings[0].rule, "ptr-ordered-iteration");
    EXPECT_NE(report.findings[0].message.find("ASLR"), std::string::npos);
}

TEST(PtrOrderedIteration, PointerValuesAndPlainKeysAreClean)
{
    std::vector<SourceFile> files;
    files.push_back(
        fixture("ptr_map/negative.cc", "src/lease/fix/negative.cc"));
    LintReport report = runLint(files, {"ptr-ordered-iteration"});
    for (const Finding &f : report.findings)
        ADD_FAILURE() << formatFinding(f);
}

TEST(PtrOrderedIteration, OnlyAuditsSrc)
{
    LintReport report =
        lintOne("tools/x.cc", "std::map<Node *, int> byAddr;\n",
                "ptr-ordered-iteration");
    EXPECT_TRUE(report.findings.empty());
}

TEST(PtrOrderedIteration, SuppressionSilencesButCounts)
{
    LintReport report = lintOne(
        "src/lease/ok.cc",
        "// leaselint: allow(ptr-ordered-iteration) -- lookup only\n"
        "std::map<Lease *, int> holds_;\n",
        "ptr-ordered-iteration");
    EXPECT_TRUE(report.findings.empty());
    EXPECT_EQ(report.suppressed, 1u);
}

TEST(PtrOrderedIteration, MultiLineDeclarationsAreCaught)
{
    LintReport report = lintOne("src/lease/multi.cc",
                                "std::map<\n"
                                "    Lease *,\n"
                                "    HoldInfo> holds_;\n",
                                "ptr-ordered-iteration");
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].line, 1u);
}

// ---- macro-side-effect rule ---------------------------------------------

TEST(MacroSideEffect, FlagsIncrementAndAssignment)
{
    std::vector<SourceFile> files;
    files.push_back(
        fixture("macro/side_effect.cc", "src/obs/fix/side_effect.cc"));
    LintReport report = runLint(files, {"macro-side-effect"});
    ASSERT_EQ(report.findings.size(), 2u);
    EXPECT_EQ(report.findings[0].rule, "macro-side-effect");
    EXPECT_NE(report.findings[0].message.find("compiles out"),
              std::string::npos);
}

TEST(MacroSideEffect, PureReadsComparisonsAndCapturesAreClean)
{
    std::vector<SourceFile> files;
    files.push_back(fixture("macro/clean.cc", "src/obs/fix/clean.cc"));
    LintReport report = runLint(files, {"macro-side-effect"});
    for (const Finding &f : report.findings)
        ADD_FAILURE() << formatFinding(f);
}

TEST(MacroSideEffect, MacroDefinitionLinesAreIgnored)
{
    LintReport report = lintOne(
        "src/obs/trace.h",
        "#define LEASEOS_TRACE(call) \\\n"
        "    do { sink().call; counter++; } while (0)\n"
        "void f() { LEASEOS_TRACE(emit(x++)); }\n",
        "macro-side-effect");
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].line, 3u);
}

TEST(MacroSideEffect, CompoundAssignmentsAreMutations)
{
    LintReport report =
        lintOne("src/a.cc", "void f() { LEASEOS_ORACLE(total += d); }\n",
                "macro-side-effect");
    EXPECT_EQ(report.findings.size(), 1u);
}

// ---- proxy-bypass rule --------------------------------------------------

TEST(ProxyBypassRule, FlagsInterpositionCallsOutsideProxyLayer)
{
    LintReport report =
        lintOne("src/apps/cheat.cc", "pm().suspend(token);\n",
                "proxy-bypass");
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].rule, "proxy-bypass");
}

TEST(ProxyBypassRule, AllowsProxyMitigationAndServiceLayers)
{
    for (const char *path :
         {"src/lease/proxies/wakelock_proxy.cc", "src/mitigation/doze.cc",
          "src/os/power_manager_service.cc"}) {
        LintReport report =
            lintOne(path, "pm().suspend(token);\n", "proxy-bypass");
        EXPECT_TRUE(report.findings.empty()) << path;
    }
}

// ---- flat-map-hotpath rule ----------------------------------------------

TEST(FlatMapHotpathRule, FlagsNodeMapsInHotPathDirs)
{
    LintReport report = lintOne("src/power/bad.h",
                                "std::map<Uid, double> table_;\n"
                                "std::unordered_map<int, int> index_;\n",
                                "flat-map-hotpath");
    ASSERT_EQ(report.findings.size(), 2u);
    EXPECT_EQ(report.findings[0].rule, "flat-map-hotpath");
    EXPECT_EQ(report.findings[0].line, 1u);
    EXPECT_NE(report.findings[0].message.find("dense"), std::string::npos);
}

TEST(FlatMapHotpathRule, IgnoresColdDirsIncludesAndUnqualifiedNames)
{
    LintReport cold = lintOne("src/harness/ok.cc",
                              "std::map<int, int> agg;\n",
                              "flat-map-hotpath");
    EXPECT_TRUE(cold.findings.empty());

    LintReport clean = lintOne("src/sim/ok.cc",
                               "#include <map>\n"
                               "// the old std::map layout\n"
                               "int bitmap = roadmap(mapIndex);\n",
                               "flat-map-hotpath");
    EXPECT_TRUE(clean.findings.empty());
}

// ---- switch-exhaustive rule ---------------------------------------------

TEST(SwitchExhaustiveRule, FlagsMissingEnumerator)
{
    std::vector<SourceFile> files;
    files.push_back(SourceFile::fromString(
        "src/lease/lease.h",
        "enum class LeaseState { Active, Inactive, Deferred, Dead };\n"));
    files.push_back(SourceFile::fromString(
        "src/lease/use.cc",
        "void f(LeaseState s) {\n"
        "    switch (s) {\n"
        "      case LeaseState::Active: break;\n"
        "      case LeaseState::Inactive: break;\n"
        "    }\n"
        "}\n"));
    LintReport report = runLint(files, {"switch-exhaustive"});
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].rule, "switch-exhaustive");
    EXPECT_NE(report.findings[0].message.find("Deferred"),
              std::string::npos);
    EXPECT_NE(report.findings[0].message.find("Dead"), std::string::npos);
}

TEST(SwitchExhaustiveRule, DefaultDoesNotExcuseMissingCases)
{
    std::vector<SourceFile> files;
    files.push_back(SourceFile::fromString(
        "src/lease/lease.h",
        "enum class LeaseState { Active, Inactive, Deferred, Dead };\n"));
    files.push_back(SourceFile::fromString(
        "src/lease/use.cc",
        "void f(LeaseState s) {\n"
        "    switch (s) {\n"
        "      case LeaseState::Active: break;\n"
        "      default: break;\n"
        "    }\n"
        "}\n"));
    LintReport report = runLint(files, {"switch-exhaustive"});
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_NE(report.findings[0].message.find("default"),
              std::string::npos);
}

TEST(SwitchExhaustiveRule, FullCoverageIsClean)
{
    std::vector<SourceFile> files;
    files.push_back(SourceFile::fromString(
        "src/lease/lease.h",
        "enum class LeaseState { Active, Inactive, Deferred, Dead };\n"));
    files.push_back(SourceFile::fromString(
        "src/lease/use.cc",
        "void f(LeaseState s) {\n"
        "    switch (s) {\n"
        "      case LeaseState::Active: break;\n"
        "      case LeaseState::Inactive: break;\n"
        "      case LeaseState::Deferred: break;\n"
        "      case LeaseState::Dead: break;\n"
        "    }\n"
        "}\n"));
    LintReport report = runLint(files, {"switch-exhaustive"});
    EXPECT_TRUE(report.findings.empty());
}

TEST(SwitchExhaustiveRule, IgnoresSwitchesOverOtherEnums)
{
    std::vector<SourceFile> files;
    files.push_back(SourceFile::fromString(
        "src/os/other.cc",
        "void f(Color c) {\n"
        "    switch (c) {\n"
        "      case Color::Red: break;\n"
        "    }\n"
        "}\n"));
    LintReport report = runLint(files, {"switch-exhaustive"});
    EXPECT_TRUE(report.findings.empty());
}

// ---- registry-contract rule ---------------------------------------------

TEST(RegistryContract, FlagsRegistrationInUncalledSrcFunction)
{
    std::vector<SourceFile> files;
    files.push_back(
        fixture("registry/hot_path.cc", "src/obs/fix/hot_path.cc"));
    LintReport report = runLint(files, {"registry-contract"});
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].rule, "registry-contract");
    EXPECT_NE(report.findings[0].message.find("poll"), std::string::npos);
}

TEST(RegistryContract, ConstructorReachableHelperIsLegal)
{
    std::vector<SourceFile> files;
    files.push_back(
        fixture("registry/ctor_ok.cc", "src/obs/fix/ctor_ok.cc"));
    LintReport report = runLint(files, {"registry-contract"});
    for (const Finding &f : report.findings)
        ADD_FAILURE() << formatFinding(f);
}

TEST(RegistryContract, InitPrefixedFunctionsAreLegal)
{
    LintReport report = lintOne(
        "src/lease/mgr.cc",
        "void Mgr::initMetrics() { metrics_->counter(\"a\"); }\n",
        "registry-contract");
    EXPECT_TRUE(report.findings.empty());
}

TEST(RegistryContract, OutsideSrcIsExempt)
{
    LintReport report = lintOne(
        "bench/fleet.cc",
        "void addGauge() { registry_->boundGauge(\"g\", f); }\n",
        "registry-contract");
    EXPECT_TRUE(report.findings.empty());
}

TEST(RegistryContract, HotCallerPoisonsTheHelper)
{
    // register() is called from a ctor AND from a hot tick(): the hot
    // path makes it illegal.
    std::vector<SourceFile> files;
    files.push_back(SourceFile::fromString(
        "src/obs/w.cc",
        "Widget::Widget() { addChannel(); }\n"
        "void Widget::tick() { addChannel(); }\n"
        "void Widget::addChannel() { metrics_->gauge(\"g\"); }\n"));
    LintReport report = runLint(files, {"registry-contract"});
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_NE(report.findings[0].message.find("addChannel"),
              std::string::npos);
}

// ---- bad-suppression rule -----------------------------------------------

TEST(BadSuppression, UnknownRuleNameIsFlagged)
{
    LintReport report = lintOne(
        "src/sim/a.cc",
        "// leaselint: allow(determinsm) -- typo'd rule name\n"
        "int r = seeded();\n",
        "bad-suppression");
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_NE(report.findings[0].message.find("determinsm"),
              std::string::npos);
}

TEST(BadSuppression, MalformedMarkerIsFlagged)
{
    LintReport report = lintOne(
        "src/sim/a.cc",
        "int x; // leaselint: allow(determinism -- missing paren\n",
        "bad-suppression");
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_NE(report.findings[0].message.find("suppresses nothing"),
              std::string::npos);
}

TEST(BadSuppression, KnownRulesAndOutOfScopeDirsAreClean)
{
    LintReport known = lintOne(
        "src/sim/a.cc",
        "// leaselint: allow(determinism) -- justified\n"
        "std::unordered_set<int> s_;\n",
        "bad-suppression");
    EXPECT_TRUE(known.findings.empty());

    // Docs and tests may mention the syntax in prose.
    LintReport prose = lintOne(
        "tests/tools/doc.cc",
        "// the `// leaselint: allow(some-rule)` comment syntax\n",
        "bad-suppression");
    EXPECT_TRUE(prose.findings.empty());
}

// ---- driver: engine behaviour -------------------------------------------

TEST(Driver, FindingsAreSortedAndFormatted)
{
    std::vector<SourceFile> files;
    files.push_back(
        SourceFile::fromString("src/b.cc", "int r = rand();\n"));
    files.push_back(
        SourceFile::fromString("src/a.cc", "int r = rand();\n"));
    LintReport report = runLint(files, {"determinism"});
    ASSERT_EQ(report.findings.size(), 2u);
    EXPECT_EQ(report.findings[0].path, "src/a.cc");
    EXPECT_EQ(report.findings[1].path, "src/b.cc");
    EXPECT_EQ(report.filesScanned, 2u);
    std::string line = formatFinding(report.findings[0]);
    EXPECT_EQ(line.rfind("src/a.cc:1: [determinism]", 0), 0u);
}

TEST(Driver, WarmRunServesFromCacheAndEditInvalidates)
{
    TempTree tree;
    tree.write("src/sim/a.cc", "int r = rand();\n");
    tree.write("src/sim/b.cc", "int ok = 1;\n");

    LintOptions options;
    options.root = tree.root.string();
    options.paths = {"src"};
    options.cacheDir = (tree.root / "cache").string();
    options.jobs = 2;

    LintReport cold = runLint(options);
    EXPECT_EQ(cold.cacheHits, 0u);
    ASSERT_EQ(cold.findings.size(), 1u);

    // Untouched rerun: everything from cache, identical findings.
    LintReport warm = runLint(options);
    EXPECT_EQ(warm.cacheHits, 2u);
    ASSERT_EQ(warm.findings.size(), 1u);
    EXPECT_EQ(formatFinding(warm.findings[0]),
              formatFinding(cold.findings[0]));

    // Edit one file: only that file re-indexes, findings update.
    tree.write("src/sim/a.cc", "int r = seeded();\n");
    LintReport edited = runLint(options);
    EXPECT_EQ(edited.cacheHits, 1u);
    EXPECT_TRUE(edited.findings.empty());
}

TEST(Driver, JobCountDoesNotChangeOutput)
{
    LintOptions one;
    one.root = LEASELINT_TEST_REPO_ROOT;
    one.jobs = 1;
    LintOptions many = one;
    many.jobs = 4;

    LintReport a = runLint(one);
    LintReport b = runLint(many);
    EXPECT_EQ(a.filesScanned, b.filesScanned);
    EXPECT_EQ(a.suppressed, b.suppressed);
    ASSERT_EQ(a.findings.size(), b.findings.size());
    for (std::size_t i = 0; i < a.findings.size(); ++i)
        EXPECT_EQ(formatFinding(a.findings[i]),
                  formatFinding(b.findings[i]));
}

TEST(Driver, RuleFilterRunsOnlySelectedRules)
{
    std::vector<SourceFile> files;
    files.push_back(SourceFile::fromString(
        "src/sim/a.cc",
        "int r = rand();\n"
        "std::map<Lease *, int> byAddr;\n"));
    LintReport det = runLint(files, {"determinism"});
    EXPECT_EQ(det.findings.size(), 1u);
    LintReport ptr = runLint(files, {"ptr-ordered-iteration"});
    EXPECT_EQ(ptr.findings.size(), 1u);
    LintReport both =
        runLint(files, {"determinism", "ptr-ordered-iteration"});
    EXPECT_EQ(both.findings.size(), 2u);
}

// ---- baseline diffing ---------------------------------------------------

TEST(Baseline, ParseSkipsCommentsBlanksAndCrlf)
{
    std::vector<std::string> keys = parseBaseline(
        "# comment\n"
        "\n"
        "determinism\tsrc/a.cc\tmsg\r\n"
        "  # indented comment\n"
        "rule\tpath\tm2\n");
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "determinism\tsrc/a.cc\tmsg");
}

TEST(Baseline, EachEntryAbsorbsExactlyOneFinding)
{
    Finding f;
    f.rule = "determinism";
    f.path = "src/a.cc";
    f.line = 1;
    f.message = "msg";
    std::vector<Finding> findings{f, f}; // two identical findings
    std::size_t matched = applyBaseline(findings, {baselineKey(f)});
    EXPECT_EQ(matched, 1u);
    ASSERT_EQ(findings.size(), 1u); // the second instance still fails
}

TEST(Baseline, KeysIgnoreLineNumbersSoDriftSurvives)
{
    Finding a, b;
    a.rule = b.rule = "determinism";
    a.path = b.path = "src/a.cc";
    a.message = b.message = "msg";
    a.line = 10;
    b.line = 99; // same finding, shifted by an unrelated edit
    EXPECT_EQ(baselineKey(a), baselineKey(b));
}

TEST(Baseline, DiffBaselineEndToEnd)
{
    TempTree tree;
    tree.write("src/sim/a.cc", "int r = rand();\n");

    LintOptions options;
    options.root = tree.root.string();
    options.paths = {"src"};

    LintReport full = runLint(options);
    ASSERT_EQ(full.findings.size(), 1u);

    tree.write("baseline.lint", renderBaseline(full.findings));
    options.baselinePath = (tree.root / "baseline.lint").string();
    options.diffBaseline = true;

    LintReport diffed = runLint(options);
    EXPECT_TRUE(diffed.findings.empty());
    EXPECT_EQ(diffed.baselineMatched, 1u);

    // A NEW finding still fails the gate.
    tree.write("src/sim/b.cc", "int s = srand(7);\n");
    LintReport withNew = runLint(options);
    ASSERT_EQ(withNew.findings.size(), 1u);
    EXPECT_EQ(withNew.findings[0].path, "src/sim/b.cc");
    EXPECT_EQ(withNew.baselineMatched, 1u);
}

// ---- SARIF export -------------------------------------------------------

TEST(Sarif, ReportCarriesVersionRulesAndResults)
{
    std::vector<SourceFile> files;
    files.push_back(
        SourceFile::fromString("src/sim/bad.cc", "int r = rand();\n"));
    LintReport report = runLint(files, {"determinism"});
    ASSERT_EQ(report.findings.size(), 1u);

    std::string doc = sarifReport(report);
    EXPECT_NE(doc.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(doc.find("\"runs\": ["), std::string::npos);
    EXPECT_NE(doc.find("\"name\": \"leaselint\""), std::string::npos);
    // Every built-in rule is listed in tool.driver.rules.
    for (const auto &rule : allRules())
        EXPECT_NE(doc.find("\"id\": \"" + std::string(rule.name) + "\""),
                  std::string::npos)
            << rule.name;
    EXPECT_NE(doc.find("\"ruleId\": \"determinism\""), std::string::npos);
    EXPECT_NE(doc.find("\"level\": \"error\""), std::string::npos);
    EXPECT_NE(doc.find("\"uri\": \"src/sim/bad.cc\""), std::string::npos);
    EXPECT_NE(doc.find("\"startLine\": 1"), std::string::npos);
}

TEST(Sarif, EmptyReportHasEmptyResults)
{
    LintReport report;
    std::string doc = sarifReport(report);
    EXPECT_NE(doc.find("\"results\": [\n      ]"), std::string::npos);
}

TEST(Sarif, MessagesAreJsonEscaped)
{
    LintReport report;
    Finding f;
    f.rule = "determinism";
    f.path = "src/a.cc";
    f.line = 3;
    f.message = "bad \"quote\"\nand newline";
    report.findings.push_back(f);
    std::string doc = sarifReport(report);
    EXPECT_NE(doc.find("bad \\\"quote\\\"\\nand newline"),
              std::string::npos);
    EXPECT_EQ(doc.find("\nand newline"), std::string::npos);
}

TEST(Sarif, FixItsBecomeSarifFixes)
{
    LintReport report;
    Finding f;
    f.rule = "cross-unit-pairing";
    f.path = "src/apps/fix/leak_app.cc";
    f.line = 10;
    f.message = "leak";
    f.fix = FixIt{"document the intentional hold", 10,
                  "    // leaselint: allow(cross-unit-pairing) -- why\n"};
    report.findings.push_back(f);
    std::string doc = sarifReport(report);
    EXPECT_NE(doc.find("\"fixes\": ["), std::string::npos);
    EXPECT_NE(doc.find("\"insertedContent\""), std::string::npos);
    EXPECT_NE(doc.find("\"deletedRegion\""), std::string::npos);
    EXPECT_NE(doc.find("allow(cross-unit-pairing) -- why\\n"),
              std::string::npos);
}

// ---- whole-repo gates ---------------------------------------------------

TEST(Driver, WholeRepoIsCleanWithJustifiedSuppressions)
{
    // The acceptance gate: the shipped tree must lint clean, with every
    // suppression carrying a justification at the marked site.
    LintOptions options;
    options.root = LEASELINT_TEST_REPO_ROOT;
    LintReport report = runLint(options);
    for (const Finding &f : report.findings)
        ADD_FAILURE() << formatFinding(f);
    EXPECT_GT(report.filesScanned, 100u);
    EXPECT_GT(report.suppressed, 0u);
}

TEST(Rules, RulesDocInSync)
{
    // The committed rule-inventory doc is generated from allRules();
    // this gate keeps it from drifting. Regenerate with:
    //   ./build/tools/leaselint/leaselint --rules-doc \
    //     > tools/leaselint/RULES.md
    std::filesystem::path doc = std::filesystem::path(
        LEASELINT_TEST_REPO_ROOT) / "tools" / "leaselint" / "RULES.md";
    std::ifstream in(doc, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing " << doc;
    std::ostringstream committed;
    committed << in.rdbuf();
    EXPECT_EQ(committed.str(), renderRulesMarkdown())
        << "tools/leaselint/RULES.md is out of sync with allRules(); "
           "regenerate it with `leaselint --rules-doc`";
}

TEST(Driver, WholeRepoIsCleanPerNewRule)
{
    // Each of this PR's rules individually gates clean on the tree.
    for (const char *rule :
         {"cross-unit-pairing", "ptr-ordered-iteration",
          "macro-side-effect", "registry-contract", "bad-suppression"}) {
        LintOptions options;
        options.root = LEASELINT_TEST_REPO_ROOT;
        options.rules = {rule};
        LintReport report = runLint(options);
        for (const Finding &f : report.findings)
            ADD_FAILURE() << rule << ": " << formatFinding(f);
    }
}

} // namespace
} // namespace leaselint
