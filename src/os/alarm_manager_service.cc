#include "os/alarm_manager_service.h"

#include <utility>

namespace leaseos::os {

AlarmManagerService::AlarmManagerService(sim::Simulator &sim,
                                         power::CpuModel &cpu,
                                         TokenAllocator &tokens)
    : Service(sim, cpu, "alarm"), tokens_(tokens)
{
}

TokenId
AlarmManagerService::setAlarm(Uid uid, sim::Time delay, bool wakeup,
                              std::function<void()> callback)
{
    chargeIpc(uid, kBinderIpcLatency);
    TokenId token = tokens_.next();
    Alarm alarm;
    alarm.uid = uid;
    alarm.wakeup = wakeup;
    alarm.callback = std::move(callback);
    alarm.event = sim_.schedule(delay, [this, token] { fire(token); });
    alarms_.emplace(token, std::move(alarm));
    return token;
}

void
AlarmManagerService::cancelAlarm(TokenId token)
{
    auto it = alarms_.find(token);
    if (it == alarms_.end()) return;
    sim_.cancel(it->second.event);
    alarms_.erase(it);
    tokens_.retire(token);
}

void
AlarmManagerService::setGate(std::function<bool(Uid)> gate)
{
    gate_ = std::move(gate);
}

void
AlarmManagerService::fire(TokenId token)
{
    auto it = alarms_.find(token);
    if (it == alarms_.end()) return;
    Alarm &alarm = it->second;

    if (gate_ && !gate_(alarm.uid)) {
        // Doze deferral: postpone and re-check.
        ++deferred_;
        alarm.event =
            sim_.schedule(kDeferRetry, [this, token] { fire(token); });
        return;
    }

    ++fired_;
    if (alarm.wakeup) {
        cpu_.addWakeWindow(kWakeWindow);
        auto cb = std::move(alarm.callback);
        alarms_.erase(it);
        tokens_.retire(token);
        // Run the app callback once the wake transition has completed.
        sim_.schedule(sim::Time::zero(), std::move(cb));
    } else {
        auto cb = std::move(alarm.callback);
        alarms_.erase(it);
        tokens_.retire(token);
        cpu_.notifyOnWake(std::move(cb));
    }
}

} // namespace leaseos::os
