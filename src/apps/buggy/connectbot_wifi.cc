#include "apps/buggy/connectbot_wifi.h"

// ConnectBotWifi is header-only; this TU anchors the module.
namespace leaseos::apps {
} // namespace leaseos::apps
