/**
 * @file
 * Tests for the ResultSink emitters: the JSON document round-trips the
 * fields the text table shows, keeps key order stable, and parses with a
 * minimal checker (no JSON library in the tree — the emitter must stay
 * simple enough to validate by hand).
 */

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/result_sink.h"

namespace leaseos::harness {
namespace {

using Value = ResultSink::Value;

// ---- Minimal JSON checker ----------------------------------------------
// Parses the subset the sinks emit: an object of strings/arrays, rows as
// flat objects of string/number/null. Returns key/value pairs in document
// order so key-order stability is checkable.

struct MiniParser {
    const std::string &s;
    std::size_t i = 0;

    explicit MiniParser(const std::string &text) : s(text) {}

    void
    ws()
    {
        while (i < s.size() && std::isspace(static_cast<unsigned char>(
                                   s[i])))
            ++i;
    }
    bool
    eat(char c)
    {
        ws();
        if (i < s.size() && s[i] == c) {
            ++i;
            return true;
        }
        return false;
    }
    std::string
    parseString()
    {
        ws();
        EXPECT_EQ(s.at(i), '"');
        ++i;
        std::string out;
        while (s.at(i) != '"') {
            if (s[i] == '\\') {
                ++i;
                switch (s.at(i)) {
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  default: ADD_FAILURE() << "escape " << s[i];
                }
                ++i;
            } else {
                out += s[i++];
            }
        }
        ++i;
        return out;
    }
    /** Scalar: quoted string, number, or null — returned as text. */
    std::string
    parseScalar()
    {
        ws();
        if (s.at(i) == '"') return parseString();
        std::string out;
        while (i < s.size() &&
               (std::isalnum(static_cast<unsigned char>(s[i])) ||
                s[i] == '-' || s[i] == '+' || s[i] == '.'))
            out += s[i++];
        EXPECT_FALSE(out.empty()) << "scalar expected at offset " << i;
        return out;
    }
    /** Flat object; returns (key, scalar-text) in document order. */
    std::vector<std::pair<std::string, std::string>>
    parseFlatObject()
    {
        std::vector<std::pair<std::string, std::string>> out;
        EXPECT_TRUE(eat('{'));
        if (eat('}')) return out;
        do {
            std::string key = parseString();
            EXPECT_TRUE(eat(':'));
            out.emplace_back(key, parseScalar());
        } while (eat(','));
        EXPECT_TRUE(eat('}'));
        return out;
    }
};

/** Parse the whole sink document; fills bench/caption/rows. */
struct ParsedDoc {
    std::string bench;
    std::string caption;
    std::vector<std::vector<std::pair<std::string, std::string>>> rows;
};

ParsedDoc
parseDocument(const std::string &text)
{
    ParsedDoc doc;
    MiniParser p(text);
    EXPECT_TRUE(p.eat('{'));
    while (true) {
        std::string key = p.parseString();
        EXPECT_TRUE(p.eat(':'));
        if (key == "bench") {
            doc.bench = p.parseString();
        } else if (key == "caption") {
            doc.caption = p.parseString();
        } else if (key == "rows") {
            EXPECT_TRUE(p.eat('['));
            if (!p.eat(']')) {
                do {
                    doc.rows.push_back(p.parseFlatObject());
                } while (p.eat(','));
                EXPECT_TRUE(p.eat(']'));
            }
        } else {
            ADD_FAILURE() << "unexpected key " << key;
        }
        if (!p.eat(',')) break;
    }
    EXPECT_TRUE(p.eat('}'));
    return doc;
}

ResultSink::Row
sampleRow(const std::string &app, double power, std::int64_t deferrals)
{
    return {{"App", Value::str(app)},
            {"Power (mW)", Value::num(power)},
            {"Deferrals", Value::count(deferrals)}};
}

TEST(JsonSinkTest, DocumentRoundTripsRows)
{
    JsonSink sink;
    sink.begin("Table X", "power \"quoted\" caption\nsecond line");
    sink.addRow(sampleRow("K-9 Mail", 890.355, 12));
    sink.addSeparator(); // JSON ignores separators
    sink.addRow(sampleRow("Torch", 0.5, 0));
    sink.finish();

    ParsedDoc doc = parseDocument(sink.document());
    EXPECT_EQ(doc.bench, "Table X");
    EXPECT_EQ(doc.caption, "power \"quoted\" caption\nsecond line");
    ASSERT_EQ(doc.rows.size(), 2u);
    EXPECT_EQ(doc.rows[0][0].second, "K-9 Mail");
    EXPECT_EQ(doc.rows[0][1].second, "890.36"); // fixed precision 2
    EXPECT_EQ(doc.rows[0][2].second, "12");
    EXPECT_EQ(doc.rows[1][0].second, "Torch");
    EXPECT_EQ(doc.rows[1][2].second, "0");
}

TEST(JsonSinkTest, KeyOrderIsStableAndMatchesInsertion)
{
    JsonSink sink;
    sink.begin("Table X", "");
    sink.addRow(sampleRow("a", 1.0, 1));
    sink.addRow(sampleRow("b", 2.0, 2));
    sink.finish();

    ParsedDoc doc = parseDocument(sink.document());
    const std::vector<std::string> expected = {"App", "Power (mW)",
                                              "Deferrals"};
    for (const auto &row : doc.rows) {
        ASSERT_EQ(row.size(), expected.size());
        for (std::size_t i = 0; i < expected.size(); ++i)
            EXPECT_EQ(row[i].first, expected[i]);
    }
}

TEST(JsonSinkTest, JsonCarriesTheFieldsTheTextTableShows)
{
    ResultSink::Row row = sampleRow("Kontalk", 123.456, 7);

    std::ostringstream tableOut;
    TextTableSink table(tableOut);
    JsonSink json;
    TeeSink tee({&table, &json});
    tee.begin("Table Y", "caption");
    tee.addRow(row);
    tee.finish();

    ParsedDoc doc = parseDocument(json.document());
    ASSERT_EQ(doc.rows.size(), 1u);
    for (const auto &[key, value] : doc.rows[0]) {
        // Every JSON key is a table column and every value appears in
        // the rendered table verbatim.
        EXPECT_NE(tableOut.str().find(key), std::string::npos) << key;
        EXPECT_NE(tableOut.str().find(value), std::string::npos) << value;
    }
}

TEST(JsonSinkTest, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonSinkTest, WritesFileOnFinish)
{
    std::string path = ::testing::TempDir() + "leaseos_sink_test.json";
    JsonSink sink(path);
    sink.begin("Table Z", "file output");
    sink.addRow(sampleRow("app", 1.0, 2));
    sink.finish();

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_EQ(content.str(), sink.document());
}

TEST(TextTableSinkTest, RendersHeaderAndSeparators)
{
    std::ostringstream out;
    TextTableSink sink(out);
    sink.begin("Table W", "caption text");
    sink.addRow(sampleRow("K-9", 890.35, 3));
    sink.addSeparator();
    sink.addRow(sampleRow("Average", 1.0, 0));
    sink.finish();

    std::string text = out.str();
    EXPECT_NE(text.find("Table W"), std::string::npos);
    EXPECT_NE(text.find("caption text"), std::string::npos);
    EXPECT_NE(text.find("890.35"), std::string::npos);
    EXPECT_NE(text.find("Average"), std::string::npos);
}

TEST(ResultSinkTest, BenchArtifactPathUsesEnvDir)
{
    // Without LEASEOS_OUT the artifact lands in the CWD.
    unsetenv("LEASEOS_OUT");
    EXPECT_EQ(benchArtifactPath("table5"), "BENCH_table5.json");
    setenv("LEASEOS_OUT", "/tmp/out", 1);
    EXPECT_EQ(benchArtifactPath("table5"), "/tmp/out/BENCH_table5.json");
    unsetenv("LEASEOS_OUT");
}

} // namespace
} // namespace leaseos::harness
