#ifndef LEASEOS_OS_ALARM_MANAGER_SERVICE_H
#define LEASEOS_OS_ALARM_MANAGER_SERVICE_H

/**
 * @file
 * RTC alarms (android AlarmManagerService analog).
 *
 * Wakeup alarms pull the CPU out of deep sleep for a short wake window so
 * the app can run (typically to acquire a wakelock and sync). Doze defers
 * background alarms; the gate hook implements that.
 */

#include <cstdint>
#include <functional>
#include <map>

#include "os/binder.h"
#include "os/service.h"

namespace leaseos::os {

/**
 * One-shot (re-armable) alarm scheduling with a defer gate.
 */
class AlarmManagerService : public Service
{
  public:
    /** CPU wake window granted to a firing wakeup alarm. */
    static constexpr sim::Time kWakeWindow = sim::Time::fromSeconds(2.0);

    /** Re-check period for alarms deferred by the gate. */
    static constexpr sim::Time kDeferRetry = sim::Time::fromMinutes(5.0);

    AlarmManagerService(sim::Simulator &sim, power::CpuModel &cpu,
                        TokenAllocator &tokens);

    /**
     * Schedule @p callback after @p delay. A wakeup alarm opens a CPU wake
     * window before running the callback; a non-wakeup alarm fires only
     * while the CPU happens to be awake (it waits for wake otherwise).
     */
    TokenId setAlarm(Uid uid, sim::Time delay, bool wakeup,
                     std::function<void()> callback);

    void cancelAlarm(TokenId token);

    /**
     * Doze gate: alarms whose uid the gate rejects are postponed and
     * re-tried every kDeferRetry. Pass nullptr to clear.
     */
    void setGate(std::function<bool(Uid)> gate);

    std::uint64_t firedCount() const { return fired_; }
    std::uint64_t deferredCount() const { return deferred_; }
    std::size_t pendingCount() const { return alarms_.size(); }

  private:
    struct Alarm {
        Uid uid;
        bool wakeup;
        std::function<void()> callback;
        sim::EventId event = sim::kInvalidEventId;
    };

    void fire(TokenId token);

    TokenAllocator &tokens_;
    std::map<TokenId, Alarm> alarms_;
    std::function<bool(Uid)> gate_;
    std::uint64_t fired_ = 0;
    std::uint64_t deferred_ = 0;
};

} // namespace leaseos::os

#endif // LEASEOS_OS_ALARM_MANAGER_SERVICE_H
