/**
 * @file
 * One fully-telemetered Table-5 cell — the nightly CI's tracing target.
 *
 * Runs the Torch app under LeaseOS for a 30-minute cell with the whole
 * unified telemetry layer on: a MetricRegistry collects the lease/proxy/
 * classifier/utility/power metrics, and a TraceBuffer records the binary
 * event stream, exported both as JSON-lines (--trace) and as a Chrome
 * trace_event document (--chrome) loadable in Perfetto / about:tracing.
 * The registry rollup lands in --rollup as a JSON artifact.
 *
 * In -DLEASEOS_CHECKED=ON builds a Record-mode InvariantOracle observes
 * the same run, and the example cross-checks the telemetry against it:
 * the registry's lease.transitions.* counters must sum to exactly the
 * number of transitions the oracle vetted. Any mismatch (or any invariant
 * violation) exits non-zero, so a zero exit certifies that the telemetry
 * layer neither drops nor invents lease transitions.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/invariants.h"
#include "apps/registry.h"
#include "harness/experiment.h"
#include "harness/result_sink.h"
#include "harness/runner.h"

using namespace leaseos;

int
main(int argc, char **argv)
{
    std::string tracePath = "traced_cell.jsonl";
    std::string chromePath = "traced_cell_trace.json";
    std::string rollupPath = "traced_cell_rollup.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--trace=", 8) == 0)
            tracePath = argv[i] + 8;
        else if (std::strncmp(argv[i], "--chrome=", 9) == 0)
            chromePath = argv[i] + 9;
        else if (std::strncmp(argv[i], "--rollup=", 9) == 0)
            rollupPath = argv[i] + 9;
    }

    // Record-mode oracle installed around the run so transitionsChecked()
    // is readable afterwards; the device's own Abort-mode oracle is
    // disabled so this one sees the hooks. No-op in unchecked builds.
    analysis::InvariantOracle oracle(
        analysis::InvariantOracle::FailMode::Record);
    oracle.install();

    harness::MitigationRunOptions opt; // 30 min, Pixel XL, user glances
    harness::RunSpec spec = harness::mitigationCellSpec(
        apps::buggySpec("torch"), harness::MitigationMode::LeaseOS, opt);
    spec.config.checkedOracle = false;
    spec.collectMetrics = true;
    spec.tracePath = tracePath;

    harness::RunResult result = harness::runScenario(spec);
    oracle.uninstall(); // the cross-check covers exactly the first run

    // Second, identical run (same spec, same seed) with a non-.jsonl
    // tracePath: the exporter emits a Chrome trace_event document the
    // artifact consumer can drop straight into Perfetto.
    harness::RunSpec chromeSpec = spec;
    chromeSpec.tracePath = chromePath;
    harness::RunResult chromeResult = harness::runScenario(chromeSpec);

    // Registry rollup artifact: every metric of the traced run.
    harness::JsonSink rollup(rollupPath);
    rollup.begin("traced_cell",
                 "Telemetry rollup for one torch x LeaseOS cell "
                 "(30 min, Pixel XL).");
    harness::ResultSink::Row row;
    row.emplace_back("cell", harness::ResultSink::Value::str(result.name));
    row.emplace_back("app_mw",
                     harness::ResultSink::Value::num(result.appPowerMw, 3));
    row.emplace_back("trace_events_emitted",
                     harness::ResultSink::Value::count(
                         static_cast<std::int64_t>(
                             result.traceEventsEmitted)));
    row.emplace_back("trace_events_retained",
                     harness::ResultSink::Value::count(
                         static_cast<std::int64_t>(
                             result.traceEventsRetained)));
    for (const auto &[name, value] : result.metrics)
        row.emplace_back(name, harness::ResultSink::Value::num(value, 3));
    rollup.addRow(row);
    rollup.finish();

    std::printf("%s: %.2f mW under LeaseOS; %llu trace events emitted, "
                "%llu retained\n",
                result.name.c_str(), result.appPowerMw,
                static_cast<unsigned long long>(result.traceEventsEmitted),
                static_cast<unsigned long long>(result.traceEventsRetained));
    std::printf("wrote %s, %s, %s\n", tracePath.c_str(),
                chromePath.c_str(), rollupPath.c_str());

#if defined(LEASEOS_CHECKED)
    // Cross-check: the registry's transition counters vs. the oracle's
    // independent count. Both hooks sit at the same six lease_manager
    // sites, so a traced+checked run must agree exactly.
    if (!oracle.clean()) {
        std::fprintf(stderr, "FAIL: %zu invariant violation(s)\n",
                     oracle.violations().size());
        for (const auto &v : oracle.violations())
            std::fprintf(stderr, "  %s\n", v.toString().c_str());
        return 1;
    }
    double transitions = 0.0;
    for (const auto &[name, value] : result.metrics)
        if (name.rfind("lease.transitions.", 0) == 0) transitions += value;
    std::uint64_t checked = oracle.transitionsChecked();
    if (static_cast<std::uint64_t>(transitions) != checked) {
        std::fprintf(stderr,
                     "FAIL: registry reports %.0f lease transitions, "
                     "oracle checked %llu\n",
                     transitions,
                     static_cast<unsigned long long>(checked));
        return 1;
    }
    std::printf("telemetry cross-check: %llu lease transitions match the "
                "invariant oracle\n",
                static_cast<unsigned long long>(checked));
#else
    std::printf("invariant cross-check: skipped (rebuild with "
                "-DLEASEOS_CHECKED=ON)\n");
#endif
    (void)chromeResult;
    return 0;
}
