#ifndef LEASEOS_APPS_REGISTRY_H
#define LEASEOS_APPS_REGISTRY_H

/**
 * @file
 * The app corpus registry: the 20 Table 5 buggy apps with their metadata
 * (category, resource, behaviour class) and trigger environments, plus
 * factories for the normal-app population used by Figs. 11/13.
 */

#include <functional>
#include <string>
#include <vector>

#include "app/app.h"
#include "harness/device.h"

namespace leaseos::apps {

/**
 * One Table 5 row: how to install the app and trigger its defect.
 */
struct BuggyAppSpec {
    std::string key;      ///< short identifier, e.g. "k9"
    std::string display;  ///< Table 5 app name
    std::string category; ///< Table 5 category column
    std::string resource; ///< Table 5 resource column
    std::string behavior; ///< Table 5 behaviour column (LHB/LUB/FAB)

    /** Install the app on a device (returns the app handle). */
    std::function<app::App &(harness::Device &)> install;

    /** Configure the environment that triggers the defect. */
    std::function<void(harness::Device &)> trigger;
};

/** All 20 Table 5 rows, in the paper's order. */
const std::vector<BuggyAppSpec> &table5Specs();

/** Look up one row by key; throws std::out_of_range. */
const BuggyAppSpec &buggySpec(const std::string &key);

/**
 * Install a population of @p count varied well-behaved apps (video,
 * browser, game, music, news, social — cycling) for workload scripts.
 */
std::vector<app::App *> installGenericFleet(harness::Device &device,
                                            int count);

} // namespace leaseos::apps

#endif // LEASEOS_APPS_REGISTRY_H
