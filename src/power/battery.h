#ifndef LEASEOS_POWER_BATTERY_H
#define LEASEOS_POWER_BATTERY_H

/**
 * @file
 * Battery state-of-charge model.
 *
 * The battery drains by whatever the EnergyAccountant integrates. It exists
 * for the end-to-end battery-life experiment (§7.6: 12 h without leases vs
 * 15 h with LeaseOS) and for reporting state of charge during long runs.
 */

#include "power/device_profile.h"
#include "power/energy_accountant.h"

namespace leaseos::power {

/**
 * Tracks state-of-charge against the accountant's running total.
 */
class Battery
{
  public:
    Battery(EnergyAccountant &accountant, const DeviceProfile &profile)
        : accountant_(accountant),
          capacityMj_(profile.batteryEnergyMj()) {}

    double capacityMj() const { return capacityMj_; }

    /** Energy drained so far (mJ). */
    double
    drainedMj()
    {
        accountant_.sync();
        return accountant_.totalEnergyMj() - baseMj_;
    }

    /** Remaining charge fraction in [0, 1]. */
    double
    remainingFraction()
    {
        double frac = 1.0 - drainedMj() / capacityMj_;
        return frac < 0.0 ? 0.0 : frac;
    }

    bool empty() { return drainedMj() >= capacityMj_; }

    /**
     * Estimated time to empty at the current instantaneous draw;
     * Time::max() when the device draws nothing.
     */
    sim::Time
    projectedLife()
    {
        double mw = accountant_.totalPowerMw();
        if (mw <= 0.0) return sim::Time::max();
        double seconds = (capacityMj_ - drainedMj()) / mw;
        return sim::Time::fromSeconds(seconds < 0.0 ? 0.0 : seconds);
    }

    /** Treat the current accountant total as "fully charged". */
    void
    recharge()
    {
        accountant_.sync();
        baseMj_ = accountant_.totalEnergyMj();
    }

    /** Serialize the recharge baseline as a "battery" section. */
    void saveState(sim::CheckpointWriter &w) const;
    void restoreState(sim::CheckpointReader &r);

  private:
    EnergyAccountant &accountant_;
    double capacityMj_;
    double baseMj_ = 0.0;
};

} // namespace leaseos::power

#endif // LEASEOS_POWER_BATTERY_H
