#include "leaselint/source.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace leaselint {

namespace {

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/**
 * Extract rule names from "leaselint: allow(a, b)" inside comment text.
 * @return true when the "leaselint:" marker was present at all, so the
 *         caller can distinguish "no suppression" from "suppression
 *         written but unparseable".
 */
bool
parseAllows(const std::string &comment, std::vector<std::string> &rules)
{
    std::size_t at = comment.find("leaselint:");
    bool sawMarker = at != std::string::npos;
    while (at != std::string::npos) {
        std::size_t open = comment.find("allow(", at);
        if (open == std::string::npos) break;
        std::size_t close = comment.find(')', open);
        if (close == std::string::npos) break;
        std::string inside =
            comment.substr(open + 6, close - (open + 6));
        std::string name;
        auto flush = [&] {
            if (!name.empty()) rules.push_back(name);
            name.clear();
        };
        for (char c : inside) {
            if (identChar(c) || c == '-') {
                name += c;
            } else {
                flush();
            }
        }
        flush();
        at = comment.find("leaselint:", close);
    }
    return sawMarker;
}

std::uint64_t
fnv1a64(const std::string &bytes)
{
    std::uint64_t h = 14695981039346656037ull;
    for (char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

SourceFile
SourceFile::fromString(std::string path, const std::string &text)
{
    SourceFile f;
    f.path_ = std::move(path);
    f.contentHash_ = fnv1a64(text);

    // Split into lines (tolerate missing trailing newline). A trailing
    // '\r' is stripped so CRLF files parse — and suppress findings —
    // exactly like their LF-normalized form.
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t nl = text.find('\n', start);
        std::string line = nl == std::string::npos
                               ? text.substr(start)
                               : text.substr(start, nl - start);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (nl == std::string::npos) {
            if (start < text.size()) f.lines_.push_back(std::move(line));
            break;
        }
        f.lines_.push_back(std::move(line));
        start = nl + 1;
    }
    if (f.lines_.empty()) f.lines_.emplace_back();

    // Build the code view with a cross-line scanner. Comment text is
    // collected per line so suppressions can be attached to their line.
    enum class State { Code, Block, Str, Chr };
    State state = State::Code;
    f.code_.reserve(f.lines_.size());
    f.allows_.assign(f.lines_.size(), {});
    f.ownAllows_.assign(f.lines_.size(), {});

    for (std::size_t li = 0; li < f.lines_.size(); ++li) {
        const std::string &raw = f.lines_[li];
        std::string code(raw.size(), ' ');
        std::string comment;
        for (std::size_t i = 0; i < raw.size(); ++i) {
            char c = raw[i];
            char next = i + 1 < raw.size() ? raw[i + 1] : '\0';
            switch (state) {
              case State::Code:
                if (c == '/' && next == '/') {
                    comment += raw.substr(i);
                    i = raw.size();
                } else if (c == '/' && next == '*') {
                    state = State::Block;
                    ++i;
                } else if (c == '"') {
                    state = State::Str;
                    code[i] = '"';
                } else if (c == '\'') {
                    state = State::Chr;
                    code[i] = '\'';
                } else {
                    code[i] = c;
                }
                break;
              case State::Block:
                if (c == '*' && next == '/') {
                    state = State::Code;
                    ++i;
                } else {
                    comment += c;
                }
                break;
              case State::Str:
                if (c == '\\') {
                    ++i;
                } else if (c == '"') {
                    state = State::Code;
                    code[i] = '"';
                }
                break;
              case State::Chr:
                if (c == '\\') {
                    ++i;
                } else if (c == '\'') {
                    state = State::Code;
                    code[i] = '\'';
                }
                break;
            }
        }
        // Unterminated string/char at EOL: treat as closed (macro line
        // continuation of literals does not occur in this codebase).
        if (state == State::Str || state == State::Chr) state = State::Code;

        f.code_.push_back(std::move(code));
        std::vector<std::string> rules;
        bool sawMarker = parseAllows(comment, rules);
        if (sawMarker && rules.empty())
            f.malformedAllows_.push_back(li + 1);
        for (auto &rule : rules) {
            f.ownAllows_[li].push_back(rule);
            f.allows_[li].push_back(rule);
            if (li + 1 < f.allows_.size())
                f.allows_[li + 1].push_back(rule);
        }
    }

    f.lineStart_.reserve(f.code_.size());
    for (const auto &line : f.code_) {
        f.lineStart_.push_back(f.codeText_.size());
        f.codeText_ += line;
        f.codeText_ += '\n';
    }
    return f;
}

std::optional<SourceFile>
SourceFile::load(const std::string &fsPath, std::string displayPath)
{
    std::ifstream in(fsPath, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    return fromString(std::move(displayPath), buf.str());
}

std::size_t
SourceFile::lineOfOffset(std::size_t offset) const
{
    auto it = std::upper_bound(lineStart_.begin(), lineStart_.end(), offset);
    return static_cast<std::size_t>(it - lineStart_.begin());
}

bool
SourceFile::allowed(const std::string &rule, std::size_t line) const
{
    if (line == 0 || line > allows_.size()) return false;
    const auto &rules = allows_[line - 1];
    return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

std::size_t
findToken(const std::string &text, const std::string &token,
          std::size_t from)
{
    if (token.empty()) return std::string::npos;
    std::size_t at = text.find(token, from);
    while (at != std::string::npos) {
        bool leftOk = at == 0 || !identChar(text[at - 1]);
        std::size_t end = at + token.size();
        bool rightOk = end >= text.size() || !identChar(text[end]);
        if (leftOk && rightOk) return at;
        at = text.find(token, at + 1);
    }
    return std::string::npos;
}

bool
underDir(const std::string &path, const std::string &prefix)
{
    if (path.size() < prefix.size()) return false;
    if (path.compare(0, prefix.size(), prefix) != 0) return false;
    return path.size() == prefix.size() || prefix.back() == '/' ||
           path[prefix.size()] == '/';
}

} // namespace leaselint
