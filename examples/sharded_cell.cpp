/**
 * @file
 * One Table-5 cell executed in K time slices — the sharded-determinism
 * CI target (DESIGN.md §11).
 *
 * Runs the Torch cell (vanilla and LeaseOS) with a checkpoint emitted
 * every 1/8 of the duration, sliced into --shards time slices on the
 * ShardedRunner (--shards=1 runs the single-shot runScenario() baseline
 * instead — same spec, no slicing machinery at all). The full result —
 * power in exact IEEE-754 bits, lease counters, and every checkpoint's
 * {time, size, payload digest} — is written as canonical JSON to --out.
 *
 * CI runs this three times (--shards=1/4/8) and diffs the three files
 * byte-for-byte: any divergence between single-shot and sliced execution
 * of the same virtual timeline fails the gate. Built with
 * -DLEASEOS_CHECKED=ON the same run also certifies the slicing is
 * invariant-clean.
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "harness/experiment.h"
#include "harness/sharded_runner.h"

using namespace leaseos;

namespace {

/** Exact, locale-free double rendering: IEEE-754 bits as hex. */
void
writeBits(std::FILE *f, const char *key, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    std::fprintf(f, "\"%s\": \"%016" PRIx64 "\"", key, bits);
}

void
writeResult(std::FILE *f, const harness::RunResult &r)
{
    std::fprintf(f, "  {\n    \"name\": \"%s\",\n    ", r.name.c_str());
    writeBits(f, "app_mw", r.appPowerMw);
    std::fprintf(f, ",\n    ");
    writeBits(f, "system_mw", r.systemPowerMw);
    std::fprintf(f,
                 ",\n    \"deferrals\": %" PRIu64
                 ",\n    \"term_checks\": %" PRIu64
                 ",\n    \"leases_created\": %" PRIu64
                 ",\n    \"checkpoints\": [\n",
                 r.deferrals, r.termChecks, r.leasesCreated);
    for (std::size_t i = 0; i < r.checkpoints.size(); ++i) {
        const auto &c = r.checkpoints[i];
        std::fprintf(f,
                     "      {\"t_ns\": %" PRId64 ", \"bytes\": %" PRIu64
                     ", \"digest\": \"%016" PRIx64 "\"}%s\n",
                     c.timeNanos, c.sizeBytes, c.digest,
                     i + 1 < r.checkpoints.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  }");
}

} // namespace

int
main(int argc, char **argv)
{
    long shards = 1;
    std::string outPath;
    std::string ckptDir;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--shards=", 9) == 0)
            shards = std::strtol(argv[i] + 9, nullptr, 10);
        else if (std::strncmp(argv[i], "--out=", 6) == 0)
            outPath = argv[i] + 6;
        else if (std::strncmp(argv[i], "--ckpt-dir=", 11) == 0)
            ckptDir = argv[i] + 11;
    }
    if (shards < 1 || shards > 64) {
        std::fprintf(stderr,
                     "usage: sharded_cell [--shards=N (1..64)] "
                     "[--out=PATH] [--ckpt-dir=DIR] [--jobs=N]\n");
        return 2;
    }

    const apps::BuggyAppSpec &app = apps::buggySpec("torch");
    harness::MitigationRunOptions opt; // 30 min, Pixel XL, user glances

    std::vector<harness::RunSpec> specs;
    for (harness::MitigationMode mode :
         {harness::MitigationMode::None, harness::MitigationMode::LeaseOS}) {
        harness::RunSpec spec = mitigationCellSpec(app, mode, opt);
        // 8 checkpoints regardless of shard count: emission instants
        // depend on the spec only, so the digests must match across
        // every slicing of the same timeline.
        spec.checkpointEvery =
            sim::Time::fromNanos(spec.duration.nanos() / 8);
        spec.shards = static_cast<int>(shards);
        spec.checkpointDir = ckptDir; // empty: stats only, no files
        specs.push_back(std::move(spec));
    }

    std::vector<harness::RunResult> results;
    if (shards == 1) {
        // Single-shot baseline: no slicing machinery in the loop at all.
        for (const auto &spec : specs)
            results.push_back(harness::runScenario(spec));
        for (std::size_t i = 0; i < results.size(); ++i)
            results[i].specIndex = i;
    } else {
        harness::ShardedRunner runner(
            harness::ParallelRunner::parseArgs(argc, argv));
        results = runner.run(specs);
    }

    std::FILE *f =
        outPath.empty() ? stdout : std::fopen(outPath.c_str(), "wb");
    if (f == nullptr) {
        std::fprintf(stderr, "sharded_cell: cannot open %s\n",
                     outPath.c_str());
        return 1;
    }
    // Deliberately omits shard/job counts: files from different
    // slicings of the same cell must be byte-identical.
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        writeResult(f, results[i]);
        std::fprintf(f, "%s\n", i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    if (f != stdout) std::fclose(f);

    std::fprintf(stderr,
                 "sharded_cell: %zu cells, %ld shard(s), %zu checkpoints "
                 "each\n",
                 results.size(), shards, results[0].checkpoints.size());
    return 0;
}
