file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_gps_ask.dir/bench/bench_fig1_gps_ask.cc.o"
  "CMakeFiles/bench_fig1_gps_ask.dir/bench/bench_fig1_gps_ask.cc.o.d"
  "bench/bench_fig1_gps_ask"
  "bench/bench_fig1_gps_ask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_gps_ask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
