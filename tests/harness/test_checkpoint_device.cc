/**
 * @file
 * Whole-device checkpoint tests (DESIGN.md §11).
 *
 * Exercises Device::saveCheckpoint()/restoreCheckpoint() end to end with
 * the checkpointable SnapshotProbeApp: blobs are deterministic, a
 * restored device evolves bit-identically to the uninterrupted original,
 * and every refusal in the restore contract (wrong config, wrong app
 * set, non-checkpointable apps, unknown section versions) surfaces as a
 * catchable sim::CheckpointError — never an abort.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/synthetic/snapshot_probe.h"
#include "harness/device.h"
#include "sim/checkpoint.h"

namespace leaseos::harness {
namespace {

DeviceConfig
probeConfig()
{
    // Mode None: the probe touches no resources, so the vanilla device is
    // the composed round-trip fixture the restore contract targets.
    return DeviceConfig{}.withMode(MitigationMode::None).withSeed(0xabc);
}

TEST(DeviceCheckpointTest, BlobsAreDeterministic)
{
    auto runOne = [] {
        Device dev(probeConfig());
        dev.install<apps::SnapshotProbeApp>();
        dev.start();
        dev.runFor(sim::Time::fromSeconds(10.0));
        return dev.saveCheckpoint();
    };
    std::vector<std::uint8_t> a = runOne();
    std::vector<std::uint8_t> b = runOne();
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "equal device state must yield byte-identical blobs";
}

TEST(DeviceCheckpointTest, RestoredDeviceEvolvesBitIdentically)
{
    // Original: run 10 s, snapshot, keep running to 60 s.
    Device original(probeConfig());
    auto &probeA = original.install<apps::SnapshotProbeApp>();
    original.start();
    original.runFor(sim::Time::fromSeconds(10.0));
    std::vector<std::uint8_t> blob = original.saveCheckpoint();
    original.runFor(sim::Time::fromSeconds(50.0));

    // Restored peer: same config, same install sequence, state from blob.
    Device restored(probeConfig());
    auto &probeB = restored.install<apps::SnapshotProbeApp>();
    restored.restoreCheckpoint(blob);
    EXPECT_EQ(restored.simulator().now(), sim::Time::fromSeconds(10.0));
    restored.start(); // must be a no-op: the blob device was running
    restored.runFor(sim::Time::fromSeconds(50.0));

    EXPECT_EQ(probeA.ticks(), probeB.ticks());
    EXPECT_EQ(probeA.nextDueAt(), probeB.nextDueAt());
    EXPECT_EQ(original.simulator().executedEvents(),
              restored.simulator().executedEvents());
    // The strongest form: both timelines serialize to the same bytes.
    EXPECT_EQ(original.saveCheckpoint(), restored.saveCheckpoint());
}

TEST(DeviceCheckpointTest, RestoreRejectsMismatchedDevice)
{
    Device source(probeConfig());
    source.install<apps::SnapshotProbeApp>();
    source.start();
    source.runFor(sim::Time::fromSeconds(5.0));
    std::vector<std::uint8_t> blob = source.saveCheckpoint();

    {
        // Different mitigation mode.
        Device target(probeConfig().withMode(MitigationMode::Doze));
        target.install<apps::SnapshotProbeApp>();
        EXPECT_THROW(target.restoreCheckpoint(blob), sim::CheckpointError);
    }
    {
        // Different profiler period.
        Device target(probeConfig().withProfilerPeriod(
            sim::Time::fromMillis(200)));
        target.install<apps::SnapshotProbeApp>();
        EXPECT_THROW(target.restoreCheckpoint(blob), sim::CheckpointError);
    }
    {
        // Different app count.
        Device target(probeConfig());
        target.install<apps::SnapshotProbeApp>();
        target.install<apps::SnapshotProbeApp>();
        EXPECT_THROW(target.restoreCheckpoint(blob), sim::CheckpointError);
    }
    {
        // Different app period: the probe validates its own section.
        Device target(probeConfig());
        target.install<apps::SnapshotProbeApp>(sim::Time::fromMillis(500));
        EXPECT_THROW(target.restoreCheckpoint(blob), sim::CheckpointError);
    }
}

TEST(DeviceCheckpointTest, RestoreRejectsNonCheckpointableApps)
{
    // A closure-driven app (checkpointable() == false): its blob is still
    // valid for digests and triage, but cannot be restored — only live
    // handoff preserves pending closures.
    class InertApp : public app::App
    {
      public:
        InertApp(app::AppContext &ctx, Uid uid) : App(ctx, uid, "Inert") {}
        void start() override {}
    };

    Device source(probeConfig());
    source.install<InertApp>();
    source.start();
    source.runFor(sim::Time::fromSeconds(5.0));
    std::vector<std::uint8_t> blob = source.saveCheckpoint();
    ASSERT_FALSE(blob.empty());

    Device target(probeConfig());
    target.install<InertApp>();
    EXPECT_THROW(target.restoreCheckpoint(blob), sim::CheckpointError);
}

TEST(DeviceCheckpointTest, VersionMismatchedBlobRejectedWithoutAbort)
{
    // A frame whose "meta" section claims a version this build does not
    // understand must be refused via CheckpointError (EXPECT_DEATH-free:
    // version skew is an operational condition, not a programming error).
    sim::CheckpointWriter w;
    w.beginSection("meta", 99);
    w.u8(0);
    w.endSection();
    std::vector<std::uint8_t> blob = w.finish();

    Device target(probeConfig());
    try {
        target.restoreCheckpoint(blob);
        FAIL() << "expected sim::CheckpointError";
    } catch (const sim::CheckpointError &e) {
        EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    }
}

TEST(DeviceCheckpointTest, LeaseOsModeBlobRoundTripsThroughSave)
{
    // LeaseOS mode adds the "leases" section; with only probes installed
    // the table is empty but the manager's counters and policy-driven
    // sections still have to round-trip byte-for-byte.
    DeviceConfig config =
        DeviceConfig{}.withMode(MitigationMode::LeaseOS).withSeed(0xabc);
    Device original(config);
    original.install<apps::SnapshotProbeApp>();
    original.start();
    original.runFor(sim::Time::fromSeconds(10.0));
    std::vector<std::uint8_t> blob = original.saveCheckpoint();
    original.runFor(sim::Time::fromSeconds(20.0));

    Device restored(config);
    restored.install<apps::SnapshotProbeApp>();
    restored.restoreCheckpoint(blob);
    restored.runFor(sim::Time::fromSeconds(20.0));

    EXPECT_EQ(original.saveCheckpoint(), restored.saveCheckpoint());
}

} // namespace
} // namespace leaseos::harness
