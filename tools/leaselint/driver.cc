#include "leaselint/driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <tuple>
#include <unordered_map>

#include "leaselint/baseline.h"
#include "leaselint/callgraph.h"
#include "leaselint/rules.h"

namespace leaselint {

namespace fs = std::filesystem;

namespace {

bool
lintableExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

/**
 * Lint test fixture corpora (tests/tools/fixtures/) are lint test DATA —
 * deliberately defective sources the unit tests load under src/-style
 * display paths — not lintable code. The build excludes them from the
 * test glob for the same reason.
 */
bool
isFixturePath(const std::string &rel)
{
    return rel.find("/fixtures/") != std::string::npos;
}

/** Collect lintable files under root/rel (or the single file itself). */
void
collect(const fs::path &root, const std::string &rel,
        std::vector<std::pair<std::string, fs::path>> &out)
{
    fs::path abs = root / rel;
    std::error_code ec;
    if (fs::is_regular_file(abs, ec)) {
        out.emplace_back(rel, abs);
        return;
    }
    if (!fs::is_directory(abs, ec)) return;
    for (fs::recursive_directory_iterator it(abs, ec), end;
         it != end && !ec; it.increment(ec)) {
        if (!it->is_regular_file(ec) || !lintableExtension(it->path()))
            continue;
        std::string relPath =
            fs::relative(it->path(), root, ec).generic_string();
        if (isFixturePath(relPath)) continue;
        out.emplace_back(std::move(relPath), it->path());
    }
}

std::optional<std::string>
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Cache entry path for a source path: FNV of the path, hex, ".idx". */
fs::path
cacheEntryPath(const fs::path &cacheDir, const std::string &relPath)
{
    char name[32];
    std::snprintf(name, sizeof name, "%016llx.idx",
                  static_cast<unsigned long long>(hashContent(relPath)));
    return cacheDir / name;
}

bool
ruleEnabled(const std::vector<std::string> &rules, const char *name)
{
    return rules.empty() ||
           std::find(rules.begin(), rules.end(), name) != rules.end();
}

/**
 * Pass 2 plus reporting: link the indexes, run the whole-repo rules,
 * filter suppressions, sort. Fills findings/suppressed/linkMillis.
 */
void
linkAndReport(RepoIndex &&repo, const std::vector<std::string> &rules,
              LintReport &report)
{
    auto start = std::chrono::steady_clock::now();

    std::vector<Finding> raw;
    for (const FileIndex &file : repo.files)
        for (const Finding &finding : file.findings)
            if (ruleEnabled(rules, finding.rule.c_str()))
                raw.push_back(finding);

    bool needGraph = ruleEnabled(rules, "cross-unit-pairing") ||
                     ruleEnabled(rules, "registry-contract");
    if (needGraph) {
        CallGraph graph(repo);
        if (ruleEnabled(rules, "cross-unit-pairing"))
            linkCrossUnitPairing(repo, graph, raw);
        if (ruleEnabled(rules, "registry-contract"))
            linkRegistryContract(repo, graph, raw);
    }
    if (ruleEnabled(rules, "switch-exhaustive"))
        linkSwitchExhaustive(repo, raw);

    // Central suppression filtering against the allow() maps.
    std::unordered_map<std::string, const FileIndex *> byPath;
    for (const FileIndex &file : repo.files) byPath[file.path] = &file;
    for (Finding &finding : raw) {
        auto it = byPath.find(finding.path);
        if (it != byPath.end() &&
            it->second->allowed(finding.rule, finding.line)) {
            ++report.suppressed;
        } else {
            report.findings.push_back(std::move(finding));
        }
    }

    std::sort(report.findings.begin(), report.findings.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.path, a.line, a.rule, a.message) <
                         std::tie(b.path, b.line, b.rule, b.message);
              });

    report.linkMillis =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
}

} // namespace

LintReport
runLint(const std::vector<SourceFile> &files,
        const std::vector<std::string> &rules)
{
    LintReport report;
    report.filesScanned = files.size();

    auto start = std::chrono::steady_clock::now();
    RepoIndex repo;
    repo.files.reserve(files.size());
    for (const SourceFile &file : files)
        repo.files.push_back(buildIndex(file));
    report.indexMillis = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();

    linkAndReport(std::move(repo), rules, report);
    return report;
}

LintReport
runLint(const LintOptions &options)
{
    std::vector<std::pair<std::string, fs::path>> paths;
    for (const std::string &rel : options.paths)
        collect(options.root, rel, paths);
    std::sort(paths.begin(), paths.end());
    paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

    LintReport report;
    report.filesScanned = paths.size();

    fs::path cacheDir;
    bool useCache = !options.cacheDir.empty();
    if (useCache) {
        cacheDir = options.cacheDir;
        std::error_code ec;
        fs::create_directories(cacheDir, ec);
        useCache = !ec && fs::is_directory(cacheDir, ec);
    }

    // Pass 1: index every file, parallel across a worker pool. Results
    // land in a pre-sized slot vector so output order never depends on
    // scheduling.
    auto start = std::chrono::steady_clock::now();
    std::vector<std::optional<FileIndex>> slots(paths.size());
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> cacheHits{0};

    auto worker = [&] {
        while (true) {
            std::size_t i = next.fetch_add(1);
            if (i >= slots.size()) return;
            const auto &[rel, abs] = paths[i];
            std::optional<std::string> bytes = readFile(abs);
            if (!bytes) continue; // unreadable: skip, slot stays empty

            std::uint64_t hash = hashContent(*bytes);
            fs::path entry;
            if (useCache) {
                entry = cacheEntryPath(cacheDir, rel);
                if (auto cached = readFile(entry)) {
                    auto index = parseIndex(*cached, hash);
                    // A hash-colliding entry for another path is a miss.
                    if (index && index->path == rel) {
                        slots[i] = std::move(*index);
                        cacheHits.fetch_add(1);
                        continue;
                    }
                }
            }

            SourceFile file = SourceFile::fromString(rel, *bytes);
            FileIndex index = buildIndex(file);
            if (useCache) {
                // Write-then-rename so a concurrent reader never sees a
                // truncated entry.
                fs::path tmp = entry;
                tmp += ".tmp";
                std::ofstream out(tmp, std::ios::binary);
                out << serializeIndex(index);
                out.close();
                std::error_code ec;
                if (out) fs::rename(tmp, entry, ec);
                if (ec) fs::remove(tmp, ec);
            }
            slots[i] = std::move(index);
        }
    };

    unsigned jobs = options.jobs != 0
                        ? options.jobs
                        : std::max(1u, std::thread::hardware_concurrency());
    jobs = std::min<unsigned>(
        jobs, static_cast<unsigned>(std::max<std::size_t>(1, paths.size())));
    if (jobs <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t) pool.emplace_back(worker);
        for (std::thread &t : pool) t.join();
    }
    report.cacheHits = cacheHits.load();
    report.indexMillis = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();

    RepoIndex repo;
    repo.files.reserve(slots.size());
    for (auto &slot : slots)
        if (slot) repo.files.push_back(std::move(*slot));

    linkAndReport(std::move(repo), options.rules, report);

    if (options.diffBaseline) {
        fs::path baselinePath =
            options.baselinePath.empty()
                ? fs::path(options.root) / "tools/leaselint/baseline.lint"
                : fs::path(options.baselinePath);
        if (auto text = readFile(baselinePath))
            report.baselineMatched =
                applyBaseline(report.findings, parseBaseline(*text));
    }
    return report;
}

std::string
formatFinding(const Finding &finding)
{
    return finding.path + ":" + std::to_string(finding.line) + ": [" +
           finding.rule + "] " + finding.message;
}

} // namespace leaselint
