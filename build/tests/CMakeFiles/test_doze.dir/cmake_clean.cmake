file(REMOVE_RECURSE
  "CMakeFiles/test_doze.dir/mitigation/test_doze.cc.o"
  "CMakeFiles/test_doze.dir/mitigation/test_doze.cc.o.d"
  "test_doze"
  "test_doze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_doze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
