#ifndef LEASELINT_INDEX_H
#define LEASELINT_INDEX_H

/**
 * @file
 * Pass 1 of the two-pass engine: the per-file index.
 *
 * `buildIndex()` reduces one SourceFile to a FileIndex — the structural
 * facts the whole-repo (link) rules need, plus the findings of every
 * per-file rule, plus the suppression map. A FileIndex is a pure function
 * of the file's bytes, which is what makes the on-disk cache sound: the
 * cache key is the 64-bit FNV-1a hash of the raw content together with
 * the index format version (bumped whenever an indexer or per-file rule
 * changes), and a hit replaces parsing, scanning, and rule execution for
 * that file entirely.
 *
 * Structural facts extracted:
 *  - function definitions with scope-qualified names ("Class::method",
 *    constructors detected as "X::X", destructors as "X::~X") and their
 *    1-based line spans, including constructor initializer lists;
 *  - call sites (callee's unqualified name, enclosing function, whether
 *    the call is through `.`/`->`);
 *  - acquire/release resource sites against the OS-service API pairs;
 *  - MetricRegistry registration sites (counter/gauge/histogram/bound*);
 *  - `enum class` definitions and `switch` descriptors for the
 *    switch-exhaustive link rule.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "leaselint/rule.h"
#include "leaselint/source.h"

namespace leaselint {

/** Bump when the index layout or any per-file rule changes. */
inline constexpr int kIndexFormatVersion = 1;

/** Sentinel for "call site not inside any function" (file scope). */
inline constexpr std::uint32_t kNoFunc = 0xffffffffu;

/** Acquire/release vocabulary of the OS services (src/os headers). */
struct ApiPair {
    const char *acquire;
    const char *release;
};

/** The shared acquire/release pair table (indexing + pairing rule). */
const std::vector<ApiPair> &apiPairs();

struct FuncDef {
    std::string name;           ///< scope-qualified, e.g. "Torch::start"
    std::size_t startLine = 0;  ///< line of the header's name token
    std::size_t endLine = 0;    ///< line of the closing '}'
};

struct CallSite {
    std::uint32_t func = kNoFunc; ///< enclosing FuncDef index (or kNoFunc)
    std::string callee;           ///< unqualified callee name
    std::size_t line = 0;
    bool method = false;          ///< called through '.' or '->'
};

struct ResourceSite {
    std::uint32_t func = kNoFunc;
    std::uint16_t pair = 0; ///< index into apiPairs()
    bool release = false;   ///< acquire side when false
    std::size_t line = 0;
    std::size_t indent = 0; ///< leading spaces (for fix-it rendering)
};

/** MetricRegistry registration call (counter/gauge/histogram/bound*). */
struct RegSite {
    std::uint32_t func = kNoFunc;
    std::string methodName;
    std::size_t line = 0;
};

struct EnumDef {
    std::string name;
    std::vector<std::string> values;
};

/** One `case E::V` population of a switch, grouped by enum name. */
struct SwitchSite {
    std::size_t line = 0;
    bool hasDefault = false;
    std::string enumName;            ///< qualifier guessed from case labels
    std::vector<std::string> values; ///< enumerators named in case labels
};

struct FileIndex {
    std::string path;        ///< root-relative, '/'-separated
    std::uint64_t hash = 0;  ///< FNV-1a of the raw bytes
    std::size_t lineCount = 0;

    std::vector<FuncDef> funcs;
    std::vector<CallSite> calls;
    std::vector<ResourceSite> resources;
    std::vector<RegSite> regs;
    std::vector<EnumDef> enums;
    std::vector<SwitchSite> switches;

    /** Per-file rule findings, pre-suppression. */
    std::vector<Finding> findings;
    /** allows[i] = rules suppressed on line i+1 (from allow() comments). */
    std::vector<std::vector<std::string>> allows;

    bool allowed(const std::string &rule, std::size_t line) const;
};

/** FNV-1a 64-bit over @p bytes. */
std::uint64_t hashContent(const std::string &bytes);

/** Index one file: structure extraction plus every per-file rule. */
FileIndex buildIndex(const SourceFile &file);

/** Serialize @p index to the cache format (text, versioned). */
std::string serializeIndex(const FileIndex &index);

/**
 * Parse a cache entry. Returns nullopt when the entry is malformed, from
 * a different format version, or carries a different content hash than
 * @p expectedHash.
 */
std::optional<FileIndex> parseIndex(const std::string &text,
                                    std::uint64_t expectedHash);

} // namespace leaselint

#endif // LEASELINT_INDEX_H
