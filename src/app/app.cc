#include "app/app.h"

#include "analysis/invariants.h"

namespace leaseos::app {

void
App::saveState(sim::CheckpointWriter &) const
{
    // Non-checkpointable apps never reach here (Device checks the flag);
    // checkpointable subclasses must override both hooks.
}

void
App::restoreState(sim::CheckpointReader &)
{
}

void
App::stop()
{
    // Runs after the subclass released/destroyed its resource handles, so
    // anything still held here is a genuine acquire/release imbalance.
    LEASEOS_ORACLE(checkAppTeardown(ctx_.sim.now(), ctx_.server, uid()));
    process_.kill();
}

} // namespace leaseos::app
