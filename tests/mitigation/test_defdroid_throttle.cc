/**
 * @file
 * Unit tests for the DefDroid-style throttler and the one-shot throttler.
 */

#include <gtest/gtest.h>

#include "apps/buggy/better_weather.h"
#include "apps/buggy/torch.h"
#include "apps/normal/trepn_profiler.h"
#include "harness/device.h"

namespace leaseos::mitigation {
namespace {

using sim::operator""_s;
using sim::operator""_min;

constexpr Uid kApp = kFirstAppUid;

struct DefDroidTest : ::testing::Test {
    harness::DeviceConfig
    config()
    {
        harness::DeviceConfig cfg;
        cfg.mode = harness::MitigationMode::DefDroid;
        return cfg;
    }
};

TEST_F(DefDroidTest, ThrottlesLongHeldWakelock)
{
    harness::Device device(config());
    auto &pms = device.server().powerManager();
    device.start();
    os::TokenId t =
        pms.newWakeLock(kApp, os::WakeLockType::Partial, "leak");
    pms.acquire(t);
    device.runFor(2_min); // past the 60 s hold limit
    EXPECT_TRUE(pms.isSuspended(t));
    EXPECT_GT(device.defdroid()->throttleCount(), 0u);
}

TEST_F(DefDroidTest, RestoresAfterBackoff)
{
    harness::Device device(config());
    auto &pms = device.server().powerManager();
    device.start();
    os::TokenId t =
        pms.newWakeLock(kApp, os::WakeLockType::Partial, "leak");
    pms.acquire(t);
    device.runFor(2_min);
    ASSERT_TRUE(pms.isSuspended(t));
    // Throttled at ~70 s; the 180 s backoff ends at ~250 s. Probe inside
    // the restored window before the next 60 s hold limit re-trips.
    device.runFor(135_s);
    EXPECT_FALSE(pms.isSuspended(t));
}

TEST_F(DefDroidTest, SparesForegroundApps)
{
    harness::Device device(config());
    auto &pms = device.server().powerManager();
    device.server().activityManager().registerApp(kApp, "fg");
    device.server().activityManager().setForeground(kApp);
    device.start();
    os::TokenId t =
        pms.newWakeLock(kApp, os::WakeLockType::Partial, "fg-work");
    pms.acquire(t);
    device.runFor(5_min);
    EXPECT_FALSE(pms.isSuspended(t));
}

TEST_F(DefDroidTest, ReleaseBeforeLimitEscapesThrottle)
{
    harness::Device device(config());
    auto &pms = device.server().powerManager();
    device.start();
    os::TokenId t =
        pms.newWakeLock(kApp, os::WakeLockType::Partial, "short");
    pms.acquire(t);
    device.runFor(30_s);
    pms.release(t);
    device.runFor(5_min);
    EXPECT_EQ(device.defdroid()->throttleCount(), 0u);
}

TEST_F(DefDroidTest, GpsRequestChurnCannotDodgeTheClock)
{
    // BetterWeather recreates its request every attempt; the per-uid
    // pressure clock must still catch it.
    harness::Device device(config());
    device.gpsEnv().setSignalGood(false);
    device.install<apps::BetterWeather>();
    device.start();
    device.runFor(10_min);
    EXPECT_GT(device.defdroid()->throttleCount(), 0u);
}

TEST_F(DefDroidTest, CannotTellGoodFromBad)
{
    // The §7.4 point: a legitimate continuous user (Trepn) gets throttled
    // just like a leak — DefDroid has no utility signal.
    harness::Device device(config());
    auto &app = device.install<apps::TrepnProfiler>();
    device.start();
    device.runFor(10_min);
    EXPECT_TRUE(app.stalled());
}

struct ThrottleTest : ::testing::Test {
};

TEST_F(ThrottleTest, RevokesOnceAfterHoldLimit)
{
    harness::DeviceConfig cfg;
    cfg.mode = harness::MitigationMode::OneShotThrottle;
    cfg.throttleHoldLimit = 1_min;
    harness::Device device(cfg);
    auto &pms = device.server().powerManager();
    device.start();
    os::TokenId t =
        pms.newWakeLock(kApp, os::WakeLockType::Partial, "x");
    pms.acquire(t);
    device.runFor(2_min);
    EXPECT_TRUE(pms.isSuspended(t));
    EXPECT_EQ(device.throttler()->revocations(), 1u);
    // One-shot: never restored.
    device.runFor(30_min);
    EXPECT_TRUE(pms.isSuspended(t));
}

TEST_F(ThrottleTest, ReleaseBeforeLimitIsSafe)
{
    harness::DeviceConfig cfg;
    cfg.mode = harness::MitigationMode::OneShotThrottle;
    cfg.throttleHoldLimit = 1_min;
    harness::Device device(cfg);
    auto &pms = device.server().powerManager();
    device.start();
    os::TokenId t =
        pms.newWakeLock(kApp, os::WakeLockType::Partial, "x");
    pms.acquire(t);
    device.runFor(30_s);
    pms.release(t);
    device.runFor(5_min);
    EXPECT_EQ(device.throttler()->revocations(), 0u);
}

TEST(DefDroidLifetimeTest, DestroyedControllerStopsPolling)
{
    // Regression: the poll loop was a legacy periodic whose EventId went
    // stale after the first fire, so a destroyed controller left an
    // unstoppable repetition behind — polling freed memory. The scoped
    // handle cancels the pending poll on destruction.
    harness::Device device; // MitigationMode::None: no built-in defdroid
    device.start();
    auto &sim = device.simulator();
    std::size_t before = sim.pendingEvents();
    std::size_t during = 0;
    {
        DefDroidController controller(sim, device.server());
        controller.start();
        EXPECT_EQ(sim.pendingEvents(), before + 1)
            << "start() schedules exactly one poll tick";
        device.runFor(25_s); // several polls fire and re-arm
        during = sim.pendingEvents();
    }
    EXPECT_EQ(sim.pendingEvents(), during - 1)
        << "destroying the controller must cancel its pending poll";
}

} // namespace
} // namespace leaseos::mitigation
