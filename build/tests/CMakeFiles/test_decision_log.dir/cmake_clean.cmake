file(REMOVE_RECURSE
  "CMakeFiles/test_decision_log.dir/lease/test_decision_log.cc.o"
  "CMakeFiles/test_decision_log.dir/lease/test_decision_log.cc.o.d"
  "test_decision_log"
  "test_decision_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decision_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
