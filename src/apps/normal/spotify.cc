#include "apps/normal/spotify.h"

namespace leaseos::apps {

using sim::operator""_s;
using sim::operator""_ms;

void
Spotify::start()
{
    // Media playback runs as a foreground service with a notification.
    ctx_.activityManager().activityStarted(uid());
    lock_ = ctx_.powerManager().newWakeLock(
        uid(), os::WakeLockType::Partial, "spotify:playback");
    ctx_.powerManager().acquire(lock_);
    ctx_.audio().setPlaying(uid(), true);
    lastChunk_ = ctx_.sim.now();
    streamChunk();
}

void
Spotify::stop()
{
    stopped_ = true;
    ctx_.audio().setPlaying(uid(), false);
    ctx_.powerManager().release(lock_);
    ctx_.powerManager().destroy(lock_);
    App::stop();
}

void
Spotify::streamChunk()
{
    if (stopped_) return;
    // Fetch ~10 s of audio, decode it, account the playback time. If the
    // process is frozen (revoked wakelock under a throttler) the chain
    // stalls and playedSeconds stops advancing — the disruption signal.
    ctx_.network.httpRequest(
        uid(), kServer, 400000, [this](env::NetResult result) {
            process_.postNow([this, result] {
                if (stopped_) return;
                if (result == env::NetResult::Ok) {
                    playedSeconds_ += 10.0;
                    lastChunk_ = ctx_.sim.now();
                    // Decoding: ~8 % of one core over the chunk.
                    process_.compute(0.08, 10_s);
                }
                process_.post(10_s, [this] { streamChunk(); });
            });
        });
}

} // namespace leaseos::apps
