# Empty dependencies file for test_app_process.
# This may be replaced when dependencies are built.
