// Fixture: acquire whose "cleanup" helper forgot the release — a leak
// the cross-unit rule must still flag even though a helper call is in
// the stop path. Display path src/apps/fix/leak_app.cc.

namespace fix {

void
LeakApp::start()
{
    lock_.acquire();
}

void
LeakApp::stop()
{
    cleanupNothing(); // forgets lock_.release()
}

void
cleanupNothing()
{
}

} // namespace fix
