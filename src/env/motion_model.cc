#include "env/motion_model.h"

// MotionModel is header-only; this TU anchors the module in the build.
namespace leaseos::env {
} // namespace leaseos::env
