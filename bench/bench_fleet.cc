/**
 * @file
 * Device-fleet scenario: N independent simulated phones (default 100,
 * `--devices=N` up to 500) each running one of the 20 Table-5 buggy apps
 * round-robin, half vanilla Android and half LeaseOS, under a diurnal
 * glance script whose cadence varies per device (heavy users glance every
 * half minute, light users every few minutes). Every device is an
 * independent RunSpec executed on the ParallelRunner worker pool, so the
 * whole fleet is bit-identical for any `--jobs N`.
 *
 * This is the scale workload for the event-queue fast path: a fleet run
 * pushes tens of millions of events through sim::EventQueue, and the
 * bench reports aggregate simulated events, wall time, and events/sec
 * next to the fleet-level power numbers (mean per mode and per behaviour
 * class, with the LeaseOS reduction). Results land on stdout and in
 * BENCH_fleet.json.
 *
 * Flags: --devices=N (1..500, default 100), --minutes=M (virtual minutes
 * per device, up to a week = 10080, default 30), --shard-minutes=S (cut
 * each device's timeline into ceil(M/S) time slices executed on the
 * ShardedRunner with a checkpoint emitted every S virtual minutes —
 * results are bit-identical to the unsharded run), --jobs=N / -j N
 * (worker pool, default automatic), --trace=PATH (export the first
 * LeaseOS device's trace ring; needs a -DLEASEOS_TRACING=ON build). CI
 * smoke runs `--devices=50 --minutes=5`; the sharded smoke adds
 * `--shard-minutes=10`.
 *
 * Runs of 12 h or longer coarsen the power-profiler sampling period from
 * 100 ms to 10 s so a week-long fleet's TimeSeries memory stays bounded;
 * they also switch the glance script to an hour-granular diurnal cycle
 * (cadence follows the device's phase-shifted local time of day) instead
 * of a fixed cadence.
 *
 * Every device runs with a MetricRegistry installed; per-device metric
 * rollups ride in the JSON artifact (stdout keeps the aggregate table);
 * sharded runs add per-mode checkpoint-size rows.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "harness/experiment.h"
#include "harness/result_sink.h"
#include "harness/runner.h"
#include "harness/sharded_runner.h"
#include "support/alloc_counter.h"

using namespace leaseos;
using harness::MitigationMode;
using harness::ResultSink;
using sim::operator""_s;

namespace {

std::int64_t
nowNanos()
{
    // leaselint: allow(determinism) -- bench: wall time is the measurand
    auto now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(now)
        .count();
}

[[noreturn]] void
usageError(const char *flag)
{
    std::fprintf(stderr,
                 "bench_fleet: bad value for %s\n"
                 "usage: bench_fleet [--devices=N (1..500)] "
                 "[--minutes=M (1..10080)] [--shard-minutes=S] "
                 "[--jobs=N | -j N]\n",
                 flag);
    std::exit(2);
}

/** Strict positive-integer flag value; exits with usage on garbage. */
long
parseValue(const char *text, const char *flag, long lo, long hi)
{
    if (text == nullptr || *text == '\0') usageError(flag);
    char *end = nullptr;
    long v = std::strtol(text, &end, 10);
    if (*end != '\0' || v < lo || v > hi) usageError(flag);
    return v;
}

/** Glance cadence for local hour-of-day @p local (0..23): daytime
 *  phases glance often with long looks, nighttime rarely and briefly. */
void
glanceCadence(int local, long &intervalSec, long &lengthSec)
{
    bool day = local >= 7 && local < 23;
    intervalSec = day ? 30 + 10 * (local % 5)   // 30..70 s
                      : 180 + 60 * (local % 4); // 3..6 min
    lengthSec = day ? 8 + local % 7 : 3;        // 8..14 s vs 3 s
}

/**
 * Per-device diurnal glance cadence for short runs. Device i is pinned
 * to a "time of day" phase; deterministic in i — no wall clock.
 */
void
diurnalGlances(harness::RunSpec &spec, int i)
{
    long interval = 0;
    long length = 0;
    glanceCadence(i % 24, interval, length);
    spec.userGlances = true;
    spec.glanceInterval = sim::Time::fromSeconds(
        static_cast<double>(interval));
    spec.glanceLength = sim::Time::fromSeconds(static_cast<double>(length));
}

/**
 * Hour-granular diurnal cycle for day/week-long runs: the glance script
 * is re-tuned every simulated hour to the cadence of the device's local
 * time of day (virtual hour + per-device phase shift, mod 24). Installed
 * as a postStart hook so it composes with sharded execution — all state
 * lives in simulator events, which migrate with the device.
 */
void
installWeekScript(harness::Device &d, int phase)
{
    struct Cycle {
        sim::PeriodicHandle glances;
        sim::PeriodicHandle retune;
    };
    auto cycle = std::make_shared<Cycle>();
    auto tune = [&d, cycle, phase] {
        int hour =
            static_cast<int>(d.simulator().now().seconds() / 3600.0);
        long interval = 0;
        long length = 0;
        glanceCadence((phase + hour) % 24, interval, length);
        cycle->glances = harness::installGlanceScript(
            d, sim::Time::fromSeconds(static_cast<double>(interval)),
            sim::Time::fromSeconds(static_cast<double>(length)));
    };
    tune();
    cycle->retune = d.simulator().schedulePeriodicScoped(
        sim::Time::fromMinutes(60.0), tune);
}

struct ModeAgg {
    double powerSum = 0.0;
    double eventsSum = 0.0;
    int n = 0;
};

struct CheckpointAgg {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
    std::uint64_t maxBytes = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    long devices = 100;
    long minutes = 30;
    long shardMinutes = 0; // 0 = unsharded ParallelRunner
    std::string tracePath;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--devices=", 10) == 0)
            devices = parseValue(argv[i] + 10, "--devices", 1, 500);
        else if (std::strncmp(argv[i], "--minutes=", 10) == 0)
            minutes = parseValue(argv[i] + 10, "--minutes", 1, 7 * 24 * 60);
        else if (std::strncmp(argv[i], "--shard-minutes=", 16) == 0)
            shardMinutes = parseValue(argv[i] + 16, "--shard-minutes", 1,
                                      7 * 24 * 60);
        else if (std::strncmp(argv[i], "--trace=", 8) == 0)
            tracePath = argv[i] + 8;
    }
    // Long runs: coarsen profiler sampling (bounded TimeSeries memory
    // over a week) and switch to the hour-granular diurnal cycle.
    const bool longRun = minutes >= 12 * 60;

    const auto &corpus = apps::table5Specs();
    const MitigationMode modes[] = {MitigationMode::None,
                                    MitigationMode::LeaseOS};

    // Device i: buggy app i mod 20, vanilla/LeaseOS alternating, diurnal
    // glance cadence pinned to i. Seeds come from the runner's baseSeed so
    // every device is an independent deterministic stream.
    std::vector<harness::RunSpec> specs;
    specs.reserve(static_cast<std::size_t>(devices));
    for (long i = 0; i < devices; ++i) {
        const auto &app = corpus[static_cast<std::size_t>(i) %
                                 corpus.size()];
        MitigationMode mode = modes[i % 2];
        harness::MitigationRunOptions opt;
        opt.duration = sim::Time::fromMinutes(static_cast<double>(minutes));
        harness::RunSpec spec = mitigationCellSpec(app, mode, opt);
        spec.name = "dev" + std::to_string(i) + " " + spec.name;
        if (longRun) {
            spec.config.profilerPeriod = sim::Time::fromSeconds(10.0);
            int phase = static_cast<int>(i) % 24;
            spec.postStart.push_back([phase](harness::Device &d) {
                installWeekScript(d, phase);
            });
        } else {
            diurnalGlances(spec, static_cast<int>(i));
        }
        if (shardMinutes > 0) {
            spec.shards = static_cast<int>((minutes + shardMinutes - 1) /
                                           shardMinutes);
            spec.checkpointEvery =
                sim::Time::fromMinutes(static_cast<double>(shardMinutes));
        }
        spec.probes.emplace_back("events", [](harness::Device &d) {
            return static_cast<double>(d.simulator().executedEvents());
        });
        spec.collectMetrics = true;
        // Device 1 is the first LeaseOS device — the interesting trace.
        if (!tracePath.empty() && i == 1) spec.tracePath = tracePath;
        specs.push_back(std::move(spec));
    }

    harness::RunnerOptions options =
        harness::ParallelRunner::parseArgs(argc, argv);
    options.baseSeed = 0xf1ee7ULL;
    int jobs = 0;
    std::int64_t t0 = 0;
    std::uint64_t allocs0 = 0;
    std::vector<harness::RunResult> results;
    if (shardMinutes > 0) {
        harness::ShardedRunner runner(options);
        jobs = runner.jobs();
        std::fprintf(stderr,
                     "[fleet] %ld devices x %ld min on %d worker(s), "
                     "%ld-min time slices\n",
                     devices, minutes, jobs, shardMinutes);
        t0 = nowNanos();
        allocs0 = benchsupport::allocCount();
        results = runner.run(specs);
    } else {
        harness::ParallelRunner runner(options);
        jobs = runner.jobs();
        std::fprintf(stderr,
                     "[fleet] %ld devices x %ld min on %d worker(s)\n",
                     devices, minutes, jobs);
        t0 = nowNanos();
        allocs0 = benchsupport::allocCount();
        results = runner.run(specs);
    }
    std::uint64_t allocs = benchsupport::allocCount() - allocs0;
    double wallSec = static_cast<double>(nowNanos() - t0) / 1e9;

    // Aggregate per mode and per (behaviour class, mode). The per-mode
    // split relies on result i being device i (vanilla on even indices,
    // LeaseOS on odd): both runners guarantee spec-order collection for
    // any --jobs, and the name/specIndex check pins that contract — a
    // reordering would silently swap the modes in every fleet number.
    std::map<std::string, ModeAgg> perMode;
    std::map<std::string, ModeAgg> perBehavior; // key "LHB/None" etc.
    std::map<std::string, CheckpointAgg> perModeCkpt;
    double totalEvents = 0.0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        const std::string prefix = "dev" + std::to_string(i) + " ";
        if (r.specIndex != i ||
            r.name.compare(0, prefix.size(), prefix) != 0) {
            std::fprintf(stderr,
                         "bench_fleet: result %zu is '%s' (specIndex "
                         "%zu) — runner broke spec-order collection\n",
                         i, r.name.c_str(), r.specIndex);
            return 1;
        }
        const auto &app = corpus[i % corpus.size()];
        const char *mode = (i % 2 == 0) ? "None" : "LeaseOS";
        double events = r.probe("events");
        totalEvents += events;
        auto &m = perMode[mode];
        m.powerSum += r.appPowerMw;
        m.eventsSum += events;
        ++m.n;
        auto &b = perBehavior[app.behavior + std::string("/") + mode];
        b.powerSum += r.appPowerMw;
        ++b.n;
        auto &c = perModeCkpt[mode];
        for (const auto &ckpt : r.checkpoints) {
            ++c.count;
            c.bytes += ckpt.sizeBytes;
            c.maxBytes = std::max(c.maxBytes, ckpt.sizeBytes);
        }
    }

    harness::TextTableSink table;
    harness::JsonSink json(harness::benchArtifactPath("fleet"));
    harness::TeeSink sink({&table, &json});
    sink.begin("Device fleet",
               std::to_string(devices) + " devices x " +
                   std::to_string(minutes) +
                   " virtual minutes; Table-5 buggy apps round-robin, "
                   "alternating vanilla/LeaseOS, diurnal glance script. "
                   "Mean app power (mW) per behaviour class and mode, "
                   "plus simulator throughput.");

    for (const char *behavior : {"LHB", "LUB", "FAB"}) {
        const auto none = perBehavior.find(behavior + std::string("/None"));
        const auto leased =
            perBehavior.find(behavior + std::string("/LeaseOS"));
        if (none == perBehavior.end() || leased == perBehavior.end())
            continue;
        double vanillaMw = none->second.powerSum / none->second.n;
        double leasedMw = leased->second.powerSum / leased->second.n;
        sink.addRow(
            {{"group", ResultSink::Value::str(behavior)},
             {"devices", ResultSink::Value::count(none->second.n +
                                                  leased->second.n)},
             {"vanilla_mw", ResultSink::Value::num(vanillaMw)},
             {"leaseos_mw", ResultSink::Value::num(leasedMw)},
             {"reduction_pct", ResultSink::Value::num(
                                   harness::reductionPercent(vanillaMw,
                                                             leasedMw))}});
    }

    sink.addSeparator();
    double vanillaMw = perMode["None"].powerSum / perMode["None"].n;
    double leasedMw = perMode["LeaseOS"].powerSum / perMode["LeaseOS"].n;
    sink.addRow(
        {{"group", ResultSink::Value::str("fleet")},
         {"devices", ResultSink::Value::count(
                         static_cast<std::int64_t>(results.size()))},
         {"vanilla_mw", ResultSink::Value::num(vanillaMw)},
         {"leaseos_mw", ResultSink::Value::num(leasedMw)},
         {"reduction_pct", ResultSink::Value::num(
                               harness::reductionPercent(vanillaMw,
                                                         leasedMw))}});
    // Throughput goes to the JSON artifact only: its columns differ from
    // the power table's, and TextTableSink headers come from row 1.
    json.addRow(
        {{"group", ResultSink::Value::str("throughput")},
         {"devices", ResultSink::Value::count(
                         static_cast<std::int64_t>(results.size()))},
         {"events", ResultSink::Value::count(
                        static_cast<std::int64_t>(totalEvents))},
         {"wall_s", ResultSink::Value::num(wallSec, 3)},
         {"events_per_s", ResultSink::Value::num(totalEvents / wallSec,
                                                 0)},
         {"allocs", ResultSink::Value::count(
                        static_cast<std::int64_t>(allocs))},
         {"allocs_per_event",
          ResultSink::Value::num(
              static_cast<double>(allocs) / totalEvents, 4)}});
    // Checkpoint-size stats (sharded runs only) — JSON artifact, one row
    // per mode; the perf-bench CI job uploads these.
    for (const auto &[mode, c] : perModeCkpt) {
        if (c.count == 0) continue;
        json.addRow(
            {{"group", ResultSink::Value::str("checkpoints")},
             {"mode", ResultSink::Value::str(mode)},
             {"count", ResultSink::Value::count(
                           static_cast<std::int64_t>(c.count))},
             {"mean_bytes",
              ResultSink::Value::num(static_cast<double>(c.bytes) /
                                         static_cast<double>(c.count),
                                     1)},
             {"max_bytes", ResultSink::Value::count(
                               static_cast<std::int64_t>(c.maxBytes))}});
    }
    // Per-device MetricRegistry rollups — JSON artifact only, one row per
    // device, every registered metric flattened to a key. The stdout
    // table stays the aggregate view.
    for (const auto &r : results) {
        ResultSink::Row row;
        row.emplace_back("group", ResultSink::Value::str("device"));
        row.emplace_back("name", ResultSink::Value::str(r.name));
        row.emplace_back("app_mw", ResultSink::Value::num(r.appPowerMw, 3));
        for (const auto &[metricName, value] : r.metrics)
            row.emplace_back(metricName, ResultSink::Value::num(value, 3));
        json.addRow(row);
    }
    sink.finish();
    std::printf("\nSimulated %.0f events in %.2f s wall — %.0f events/s "
                "across %d worker(s); %.4f heap allocs/event.\n",
                totalEvents, wallSec, totalEvents / wallSec, jobs,
                static_cast<double>(allocs) / totalEvents);
    return 0;
}
