#include "sim/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "sim/checkpoint.h"

namespace leaseos::sim {

void
Accumulator::record(double v)
{
    if (n_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++n_;
    sum_ += v;
    double d = v - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (v - mean_);
}

double
Accumulator::variance() const
{
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

void
Accumulator::reset()
{
    n_ = 0;
    mean_ = m2_ = sum_ = min_ = max_ = 0.0;
}

void
Accumulator::saveState(CheckpointWriter &w) const
{
    w.u64(n_);
    w.f64(mean_);
    w.f64(m2_);
    w.f64(sum_);
    w.f64(min_);
    w.f64(max_);
}

void
Accumulator::restoreState(CheckpointReader &r)
{
    n_ = r.u64();
    mean_ = r.f64();
    m2_ = r.f64();
    sum_ = r.f64();
    min_ = r.f64();
    max_ = r.f64();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi),
      width_((hi - lo) / static_cast<double>(buckets)),
      buckets_(buckets, 0)
{
    assert(hi > lo && buckets > 0);
}

void
Histogram::record(double v)
{
    ++count_;
    if (v < lo_) {
        ++underflow_;
        return;
    }
    if (v >= hi_) {
        ++overflow_;
        return;
    }
    auto idx = static_cast<std::size_t>((v - lo_) / width_);
    if (idx >= buckets_.size()) idx = buckets_.size() - 1;
    ++buckets_[idx];
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0) return lo_;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the q-th sample. q=1.0 must select the *last* sample (rank
    // count_-1), not the one-past-the-end rank count_ — otherwise the
    // scan always falls through to hi_ even when every sample sits in a
    // low bucket and there is no overflow mass.
    auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(count_));
    if (target >= count_) target = count_ - 1;
    std::uint64_t seen = underflow_;
    if (seen > target) return lo_;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (seen + buckets_[i] > target) {
            double frac = buckets_[i] == 0
                ? 0.0
                : static_cast<double>(target - seen) /
                      static_cast<double>(buckets_[i]);
            return lo_ + (static_cast<double>(i) + frac) * width_;
        }
        seen += buckets_[i];
    }
    return hi_;
}

std::string
Histogram::toString(const std::string &label) const
{
    std::ostringstream os;
    if (!label.empty()) os << label << "\n";
    std::uint64_t peak = 1;
    for (auto b : buckets_) peak = std::max(peak, b);
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        double b_lo = lo_ + static_cast<double>(i) * width_;
        os << "[" << b_lo << ", " << b_lo + width_ << ") ";
        auto bars = static_cast<std::size_t>(
            40.0 * static_cast<double>(buckets_[i]) /
            static_cast<double>(peak));
        os << std::string(bars, '#') << " " << buckets_[i] << "\n";
    }
    return os.str();
}

} // namespace leaseos::sim
