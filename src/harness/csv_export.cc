#include "harness/csv_export.h"

#include <cstdlib>
#include <fstream>
#include <map>

namespace leaseos::harness {

std::string
csvOutputDir()
{
    const char *dir = std::getenv("LEASEOS_OUT");
    return dir ? std::string(dir) : std::string();
}

bool
maybeWriteCsv(const std::string &name, const sim::TimeSeries &series)
{
    return maybeWriteCsv(name, std::vector<const sim::TimeSeries *>{
                                   &series});
}

bool
maybeWriteCsv(const std::string &name,
              const std::vector<const sim::TimeSeries *> &series)
{
    std::string dir = csvOutputDir();
    if (dir.empty()) return false;
    std::ofstream out(dir + "/" + name + ".csv");
    if (!out) return false;

    out << "time_s";
    for (const auto *s : series)
        out << "," << (s->name().empty() ? "value" : s->name());
    out << "\n";

    // Union of timestamps; blank cells where a series has no sample.
    std::map<std::int64_t, std::vector<std::string>> rows;
    for (std::size_t i = 0; i < series.size(); ++i) {
        for (const auto &p : series[i]->points()) {
            auto &row = rows[p.t.nanos()];
            row.resize(series.size());
            row[i] = std::to_string(p.value);
        }
    }
    for (auto &[ns, row] : rows) {
        row.resize(series.size());
        out << static_cast<double>(ns) / 1e9;
        for (const auto &cell : row) out << "," << cell;
        out << "\n";
    }
    return true;
}

} // namespace leaseos::harness
