#include "power/component.h"

// PowerComponent is header-only; this TU anchors the module in the build.
namespace leaseos::power {
} // namespace leaseos::power
