/**
 * @file
 * Unit tests for AudioSessionService and the audio lease proxy,
 * including the §1 Facebook iOS audio-session leak end to end.
 */

#include "os_fixture.h"

#include "apps/buggy/facebook_audio.h"
#include "harness/device.h"
#include "lease/leaseos_runtime.h"

namespace leaseos::os {
namespace {

using sim::operator""_s;
using sim::operator""_min;
using testing::OsFixture;

struct AudioSessionTest : OsFixture {
    AudioSessionService &svc = server.audioSessions();
};

TEST_F(AudioSessionTest, OpenSessionKeepsCpuAwake)
{
    TokenId t = svc.openSession(kApp);
    EXPECT_TRUE(svc.isOpen(t));
    EXPECT_TRUE(cpu.isAwake());
    svc.closeSession(t);
    sim.runFor(1_s);
    EXPECT_FALSE(cpu.isAwake());
}

TEST_F(AudioSessionTest, PlaybackDrawsAudioPower)
{
    TokenId t = svc.openSession(kApp);
    svc.startPlayback(t);
    EXPECT_TRUE(svc.isPlaying(t));
    EXPECT_TRUE(audio.playing(kApp));
    sim.runFor(10_s);
    svc.stopPlayback(t);
    EXPECT_FALSE(audio.playing(kApp));
    EXPECT_NEAR(svc.playingSeconds(kApp), 10.0, 0.1);
    acc.sync();
    EXPECT_GT(acc.uidEnergyMj(kApp), profile.audioMw * 9.0);
}

TEST_F(AudioSessionTest, SilentOpenSessionStillCosts)
{
    TokenId t = svc.openSession(kApp);
    sim.runFor(60_s);
    // Pipeline + awake-idle CPU, all billed to the leaking app.
    double expected_min =
        (AudioSessionService::kPipelineMw + profile.cpuIdleAwakeMw) * 55.0;
    acc.sync();
    EXPECT_GT(acc.uidEnergyMj(kApp), expected_min);
    EXPECT_NEAR(svc.openSeconds(kApp), 60.0, 0.5);
    EXPECT_DOUBLE_EQ(svc.playingSeconds(kApp), 0.0);
    svc.closeSession(t);
}

TEST_F(AudioSessionTest, SuspendSilencesAndSleeps)
{
    TokenId t = svc.openSession(kApp);
    svc.startPlayback(t);
    svc.suspend(t);
    EXPECT_FALSE(svc.isEnabled(t));
    EXPECT_FALSE(audio.playing(kApp));
    sim.runFor(1_s);
    EXPECT_FALSE(cpu.isAwake());
    svc.restore(t);
    EXPECT_TRUE(svc.isEnabled(t));
    EXPECT_TRUE(audio.playing(kApp));
    EXPECT_TRUE(cpu.isAwake());
}

TEST_F(AudioSessionTest, FilterGatesByUid)
{
    TokenId t = svc.openSession(kApp);
    svc.setGlobalFilter([this](Uid u) { return u != kApp; });
    EXPECT_FALSE(svc.isEnabled(t));
    svc.setGlobalFilter(nullptr);
    EXPECT_TRUE(svc.isEnabled(t));
}

TEST_F(AudioSessionTest, DestroyCleansUp)
{
    TokenId t = svc.openSession(kApp);
    svc.destroy(t);
    EXPECT_FALSE(svc.isOpen(t));
    EXPECT_EQ(svc.ownerOf(t), kInvalidUid);
    sim.runFor(1_s);
    EXPECT_FALSE(cpu.isAwake());
}

// ---- The §1 motivating bug, end to end -----------------------------------

struct AudioLeakTest : ::testing::Test {
};

TEST_F(AudioLeakTest, LeakedSessionIsLongHoldingUnderLeaseOS)
{
    harness::DeviceConfig cfg;
    cfg.mode = harness::MitigationMode::LeaseOS;
    harness::Device device(cfg);
    auto &app = device.install<apps::FacebookAudio>();
    device.start();
    device.runFor(10_min);
    auto &mgr = device.leaseos()->manager();
    lease::LeaseId id = mgr.leaseIdForToken(app.session());
    ASSERT_NE(id, lease::kInvalidLeaseId);
    EXPECT_GT(mgr.lease(id)->deferrals, 0u);
    EXPECT_EQ(mgr.lastBehavior(id), lease::BehaviorType::LongHolding);
}

TEST_F(AudioLeakTest, LeaseOsRecoversMostOfTheLeak)
{
    auto run = [](harness::MitigationMode mode) {
        harness::DeviceConfig cfg;
        cfg.mode = mode;
        harness::Device device(cfg);
        auto &app = device.install<apps::FacebookAudio>();
        device.start();
        device.runFor(30_min);
        return device.appPowerMw(app.uid());
    };
    double vanilla = run(harness::MitigationMode::None);
    double leased = run(harness::MitigationMode::LeaseOS);
    EXPECT_GT(vanilla, 20.0);
    EXPECT_GT(1.0 - leased / vanilla, 0.8);
}

TEST_F(AudioLeakTest, ActivePlaybackIsNotDeferred)
{
    harness::DeviceConfig cfg;
    cfg.mode = harness::MitigationMode::LeaseOS;
    harness::Device device(cfg);
    auto &svc = device.server().audioSessions();
    TokenId t = svc.openSession(kFirstAppUid);
    svc.startPlayback(t);
    device.start();
    device.runFor(10_min);
    EXPECT_TRUE(svc.isEnabled(t));
    EXPECT_EQ(device.leaseos()->manager().totalDeferrals(), 0u);
}

} // namespace
} // namespace leaseos::os
