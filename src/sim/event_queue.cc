#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace leaseos::sim {

EventId
EventQueue::schedule(Time when, Callback cb)
{
    EventId id = nextId_++;
    heap_.push(Entry{when, nextSeq_++, id, std::move(cb)});
    live_.insert(id);
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    // erase() returns 0 for ids that never existed, already fired, or were
    // already cancelled; the heap entry (if any) becomes a tombstone that
    // skipDead() discards when it surfaces.
    return live_.erase(id) != 0;
}

void
EventQueue::skipDead()
{
    while (!heap_.empty() && live_.count(heap_.top().id) == 0)
        heap_.pop();
}

Time
EventQueue::nextTime()
{
    skipDead();
    assert(!heap_.empty() && "nextTime() on empty queue");
    return heap_.top().when;
}

std::pair<Time, EventQueue::Callback>
EventQueue::pop()
{
    skipDead();
    assert(!heap_.empty() && "pop() on empty queue");
    // priority_queue::top() returns const&; moving the callback out requires
    // a const_cast, which is safe because we pop the entry immediately.
    Entry &top = const_cast<Entry &>(heap_.top());
    auto result = std::make_pair(top.when, std::move(top.cb));
    live_.erase(top.id);
    heap_.pop();
    return result;
}

} // namespace leaseos::sim
