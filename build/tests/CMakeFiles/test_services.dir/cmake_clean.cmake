file(REMOVE_RECURSE
  "CMakeFiles/test_services.dir/os/test_services.cc.o"
  "CMakeFiles/test_services.dir/os/test_services.cc.o.d"
  "test_services"
  "test_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
