file(REMOVE_RECURSE
  "CMakeFiles/bench_battery_life.dir/bench/bench_battery_life.cc.o"
  "CMakeFiles/bench_battery_life.dir/bench/bench_battery_life.cc.o.d"
  "bench/bench_battery_life"
  "bench/bench_battery_life.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_battery_life.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
