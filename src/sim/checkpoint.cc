#include "sim/checkpoint.h"

#include <cstdio>

namespace leaseos::sim {

namespace {

constexpr char kMagic[8] = {'L', 'O', 'S', 'C', 'K', 'P', 'T', '1'};
constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 8 + 8;

std::uint64_t
readLe64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

std::uint32_t
readLe32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

std::uint64_t
checkpointDigest(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

// ---- CheckpointWriter ----------------------------------------------------

void
CheckpointWriter::beginSection(std::string_view name, std::uint32_t version)
{
    if (inSection_)
        throw CheckpointError("beginSection('" + std::string(name) +
                              "') inside an open section");
    inSection_ = true;
    u32(static_cast<std::uint32_t>(name.size()));
    buf_.insert(buf_.end(), name.begin(), name.end());
    u32(version);
    sectionBodyAt_ = buf_.size();
    u64(0); // body length, patched by endSection()
}

void
CheckpointWriter::endSection()
{
    if (!inSection_) throw CheckpointError("endSection() with none open");
    inSection_ = false;
    std::uint64_t bodyLen = buf_.size() - sectionBodyAt_ - 8;
    for (std::size_t i = 0; i < 8; ++i)
        buf_[sectionBodyAt_ + i] =
            static_cast<std::uint8_t>(bodyLen >> (8 * i));
}

void
CheckpointWriter::str(std::string_view s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
}

std::vector<std::uint8_t>
CheckpointWriter::finish()
{
    if (inSection_) throw CheckpointError("finish() with a section open");
    std::vector<std::uint8_t> out;
    out.reserve(kHeaderSize + buf_.size());
    out.insert(out.end(), kMagic, kMagic + 8);
    auto le = [&out](std::uint64_t v, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i)
            out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    le(kCheckpointFormatVersion, 4);
    le(0, 4); // reserved
    le(buf_.size(), 8);
    le(checkpointDigest(buf_.data(), buf_.size()), 8);
    out.insert(out.end(), buf_.begin(), buf_.end());
    buf_.clear();
    return out;
}

// ---- CheckpointReader ----------------------------------------------------

CheckpointReader::CheckpointReader(const std::uint8_t *data,
                                   std::size_t size)
    : data_(data)
{
    if (size < kHeaderSize)
        throw CheckpointError("checkpoint truncated: " +
                              std::to_string(size) + " bytes");
    if (std::memcmp(data, kMagic, 8) != 0)
        throw CheckpointError("not a checkpoint (bad magic)");
    std::uint32_t format = readLe32(data + 8);
    if (format != kCheckpointFormatVersion)
        throw CheckpointError(
            "unsupported checkpoint format version " +
            std::to_string(format) + " (this build reads " +
            std::to_string(kCheckpointFormatVersion) + ")");
    std::uint64_t payloadSize = readLe64(data + 16);
    if (kHeaderSize + payloadSize != size)
        throw CheckpointError(
            "checkpoint payload size mismatch: header says " +
            std::to_string(payloadSize) + ", file has " +
            std::to_string(size - kHeaderSize));
    std::uint64_t digest = readLe64(data + 24);
    std::uint64_t actual = checkpointDigest(data + kHeaderSize, payloadSize);
    if (digest != actual)
        throw CheckpointError("checkpoint digest mismatch (corrupt blob)");
    pos_ = kHeaderSize;
    end_ = kHeaderSize + payloadSize;
}

const std::uint8_t *
CheckpointReader::take(std::size_t n)
{
    std::size_t limit = inSection_ ? sectionEnd_ : end_;
    if (pos_ + n > limit)
        throw CheckpointError("checkpoint read past " +
                              std::string(inSection_ ? "section" : "payload") +
                              " end");
    const std::uint8_t *p = data_ + pos_;
    pos_ += n;
    return p;
}

std::uint32_t
CheckpointReader::beginSection(std::string_view name)
{
    std::uint32_t version = 0;
    std::string actual = nextSection(version);
    if (actual != name)
        throw CheckpointError("expected section '" + std::string(name) +
                              "', found '" + actual + "'");
    return version;
}

std::string
CheckpointReader::nextSection(std::uint32_t &versionOut)
{
    if (inSection_) throw CheckpointError("section already open");
    if (pos_ == end_) throw CheckpointError("no section left in payload");
    std::uint32_t nameLen = u32();
    std::string name(reinterpret_cast<const char *>(take(nameLen)), nameLen);
    versionOut = u32();
    std::uint64_t bodyLen = u64();
    if (pos_ + bodyLen > end_)
        throw CheckpointError("section '" + name + "' body truncated");
    sectionEnd_ = pos_ + bodyLen;
    inSection_ = true;
    return name;
}

std::string
CheckpointReader::peekSection() const
{
    if (inSection_ || pos_ == end_) return "";
    CheckpointReader probe = *this;
    std::uint32_t version = 0;
    return probe.nextSection(version);
}

void
CheckpointReader::endSection()
{
    if (!inSection_) throw CheckpointError("endSection() with none open");
    if (pos_ != sectionEnd_)
        throw CheckpointError(
            "section body not fully consumed (" +
            std::to_string(sectionEnd_ - pos_) + " bytes left)");
    inSection_ = false;
}

void
CheckpointReader::skipSection()
{
    if (!inSection_) throw CheckpointError("skipSection() with none open");
    pos_ = sectionEnd_;
    inSection_ = false;
}

bool
CheckpointReader::seekSection(std::string_view name)
{
    if (inSection_) skipSection();
    while (pos_ != end_) {
        std::uint32_t version = 0;
        std::string actual = nextSection(version);
        if (actual == name) return true;
        skipSection();
    }
    return false;
}

std::uint8_t
CheckpointReader::u8()
{
    return *take(1);
}

std::uint32_t
CheckpointReader::u32()
{
    return readLe32(take(4));
}

std::uint64_t
CheckpointReader::u64()
{
    return readLe64(take(8));
}

double
CheckpointReader::f64()
{
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

std::string
CheckpointReader::str()
{
    std::uint32_t n = u32();
    return std::string(reinterpret_cast<const char *>(take(n)), n);
}

// ---- File helpers --------------------------------------------------------

bool
writeCheckpointFile(const std::string &path,
                    const std::vector<std::uint8_t> &blob)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return false;
    std::size_t written = std::fwrite(blob.data(), 1, blob.size(), f);
    bool ok = std::fclose(f) == 0 && written == blob.size();
    return ok;
}

std::vector<std::uint8_t>
readCheckpointFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        throw CheckpointError("cannot open checkpoint file " + path);
    std::vector<std::uint8_t> blob;
    std::uint8_t chunk[4096];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0)
        blob.insert(blob.end(), chunk, chunk + n);
    std::fclose(f);
    return blob;
}

} // namespace leaseos::sim
