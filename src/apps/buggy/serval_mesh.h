#ifndef LEASEOS_APPS_BUGGY_SERVAL_MESH_H
#define LEASEOS_APPS_BUGGY_SERVAL_MESH_H

/**
 * @file
 * ServalMesh model (Table 5 row; batphone issue #50 "save power when not
 * connected to an access point"). The mesh daemon keeps scanning for peers
 * under a wakelock even with no access point in range: busy but pointless
 * → Low-Utility.
 */

#include "app/app.h"
#include "os/binder.h"

namespace leaseos::apps {

/**
 * Buggy Serval mesh daemon.
 */
class ServalMesh : public app::App
{
  public:
    ServalMesh(app::AppContext &ctx, Uid uid)
        : App(ctx, uid, "ServalMesh") {}

    void
    start() override
    {
        lock_ = ctx_.powerManager().newWakeLock(
            uid(), os::WakeLockType::Partial, "serval:mesh");
        // leaselint: allow(cross-unit-pairing) -- modelled defect: mesh lock leaks
        ctx_.powerManager().acquire(lock_);
        scan();
    }

    void
    stop() override
    {
        stopped_ = true;
        ctx_.powerManager().destroy(lock_);
        App::stop();
    }

  private:
    void
    scan()
    {
        if (stopped_) return;
        // Peer discovery probe; with no AP every probe errors out.
        process_.computeScaled(0.8, sim::Time::fromMillis(300));
        if (!ctx_.network.connected()) throwSevere();
        process_.post(sim::Time::fromMillis(1200), [this] { scan(); });
    }

    os::TokenId lock_ = os::kInvalidToken;
    bool stopped_ = false;
};

} // namespace leaseos::apps

#endif // LEASEOS_APPS_BUGGY_SERVAL_MESH_H
