// Fixture: ordered containers keyed on raw pointers — iteration order
// follows allocation addresses. Display path src/lease/fix/positive.cc
// (the rule only fires under src/).

#include <map>
#include <set>

namespace fix {

struct Lease;

std::map<Lease *, int> holdCounts;     // flagged
std::set<const Lease *> activeLeases;  // flagged

} // namespace fix
