/**
 * @file
 * tracereplay tests: the minijson reader, both load formats (JSON-lines
 * export and flightrec-*.json), the offline legality validator against
 * clean and deliberately corrupted timelines, --diff first-divergence
 * reporting, and the end-to-end determinism contract — the same Table 5
 * cell run twice produces byte-identical event streams (meaningful under
 * -DLEASEOS_TRACING; trivially empty otherwise, asserted either way).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "harness/experiment.h"
#include "harness/runner.h"
#include "support/minijson.h"
#include "tracereplay/checkpoint_view.h"
#include "tracereplay/replay.h"

namespace leaseos::tracereplay {
namespace {

struct ScratchDir {
    std::filesystem::path path;

    explicit ScratchDir(const char *name)
        : path(std::filesystem::temp_directory_path() / name)
    {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~ScratchDir() { std::filesystem::remove_all(path); }
};

std::string
writeFile(const ScratchDir &dir, const char *name, const std::string &text)
{
    std::string path = (dir.path / name).string();
    std::ofstream out(path, std::ios::binary);
    out << text;
    return path;
}

/** One trace line in the exporter's schema. */
std::string
line(std::int64_t t, const char *cat, const char *ev, int uid,
     std::uint64_t leaseId, const std::string &payload = "0")
{
    std::ostringstream os;
    os << "{\"t\":" << t << ",\"cat\":\"" << cat << "\",\"ev\":\"" << ev
       << "\",\"uid\":" << uid << ",\"lease\":" << leaseId
       << ",\"payload\":" << payload << "}\n";
    return os.str();
}

// ---- minijson -----------------------------------------------------------

TEST(MiniJsonTest, ParsesScalarsObjectsAndArrays)
{
    auto parsed = minijson::parse(
        "{\"a\":1.5,\"b\":\"x\\ny\",\"c\":[true,false,null],\"d\":{}}");
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const minijson::Value &v = parsed.value;
    ASSERT_TRUE(v.isObject());
    EXPECT_DOUBLE_EQ(v.find("a")->asNumber(), 1.5);
    EXPECT_EQ(v.find("b")->asString(), "x\ny");
    ASSERT_TRUE(v.find("c")->isArray());
    ASSERT_EQ(v.find("c")->array.size(), 3u);
    EXPECT_TRUE(v.find("c")->array[0].boolean);
    EXPECT_TRUE(v.find("c")->array[2].isNull());
    EXPECT_TRUE(v.find("d")->isObject());
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(MiniJsonTest, KeepsRawTokensFor64BitPrecision)
{
    // 2^53 + 1 is not representable as a double; the raw token must
    // survive so exact diffs (bit-cast payloads, lease ids) still work.
    auto parsed = minijson::parse("{\"p\":9007199254740993}");
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value.find("p")->raw, "9007199254740993");
}

TEST(MiniJsonTest, ReportsErrorsWithLineNumbers)
{
    auto bad = minijson::parse("{\"a\":1,\n\"b\":}");
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.line, 2u);
    EXPECT_FALSE(minijson::parse("").ok());
    EXPECT_FALSE(minijson::parse("{\"a\":1} trailing").ok());
}

// ---- loadTrace ----------------------------------------------------------

TEST(TraceReplayTest, LoadsJsonLinesTrace)
{
    ScratchDir dir("leaseos_replay_load");
    std::string path = writeFile(
        dir, "t.jsonl",
        line(1000, "lease", "lease_created", 10001, 42, "3") +
            line(2000, "proxy", "grant", 10001, 42));
    Trace trace = loadTrace(path);
    ASSERT_TRUE(trace.ok()) << trace.error;
    EXPECT_FALSE(trace.flightRecord);
    ASSERT_EQ(trace.events.size(), 2u);
    EXPECT_EQ(trace.events[0].ev, "lease_created");
    EXPECT_EQ(trace.events[0].payload, 3u);
    EXPECT_EQ(trace.events[1].timeNs, 2000);
    EXPECT_EQ(trace.events[1].cat, "proxy");
}

TEST(TraceReplayTest, LoadsFlightRecordDocument)
{
    ScratchDir dir("leaseos_replay_fr");
    std::string doc =
        "{\"flightrec\":1,\n"
        "\"label\":\"run\",\"reason\":\"invariant-violation\",\n"
        "\"check\":\"state-machine\",\"detail\":\"dead->active\",\n"
        "\"sim_time_ns\":5,\"lease\":42,\n"
        "\"metrics\":{\"proxy.grants\":7},\n"
        "\"trace\":{\"emitted\":2,\"retained\":2,\"dropped\":0,"
        "\"events\":[\n" +
        line(1, "lease", "lease_created", 1, 42, "0") + "," +
        line(2, "lease", "to_inactive", 1, 42, "0") + "]}}\n";
    std::string path = writeFile(dir, "flightrec-run-t5-1.json", doc);
    Trace trace = loadTrace(path);
    ASSERT_TRUE(trace.ok()) << trace.error;
    EXPECT_TRUE(trace.flightRecord);
    EXPECT_EQ(trace.check, "state-machine");
    EXPECT_EQ(trace.detail, "dead->active");
    ASSERT_EQ(trace.events.size(), 2u);
    EXPECT_EQ(trace.events[1].ev, "to_inactive");
}

TEST(TraceReplayTest, LoadReportsMissingFileAndBadLines)
{
    ScratchDir dir("leaseos_replay_bad");
    EXPECT_FALSE(loadTrace((dir.path / "nope.jsonl").string()).ok());
    std::string path =
        writeFile(dir, "bad.jsonl",
                  line(1, "lease", "lease_created", 1, 1) + "{\"t\":2}\n");
    Trace trace = loadTrace(path);
    EXPECT_FALSE(trace.ok());
    EXPECT_NE(trace.error.find("line 2"), std::string::npos) << trace.error;
}

// ---- validate -----------------------------------------------------------

TEST(TraceReplayTest, CleanLifecycleValidatesClean)
{
    ScratchDir dir("leaseos_replay_clean");
    // created(Active) -> deferred -> active -> inactive -> dead, with
    // proxy decisions consistent with the tracked state throughout.
    std::string path = writeFile(
        dir, "t.jsonl",
        line(1, "lease", "lease_created", 1, 7, "3") +
            line(2, "proxy", "grant", 1, 7) +
            line(3, "utility", "utility_charge", 1, 7, "123") +
            line(4, "lease", "to_deferred", 1, 7, "0") + // from Active
            line(5, "proxy", "defer", 1, 7) +
            line(6, "lease", "to_active", 1, 7, "2") + // from Deferred
            line(7, "lease", "to_inactive", 1, 7, "0") +
            line(8, "proxy", "deny", 1, 7) +
            line(9, "lease", "to_dead", 1, 7, "1"));
    ReplayReport report = validate(loadTrace(path));
    EXPECT_TRUE(report.clean())
        << (report.issues.empty() ? "" : report.issues[0].toString());
    EXPECT_EQ(report.eventCount, 9u);
    EXPECT_EQ(report.leaseCount, 1u);
    EXPECT_EQ(report.transitionsChecked, 4u);
    EXPECT_EQ(report.inferredLeases, 0u);
}

TEST(TraceReplayTest, PinpointsIllegalTransition)
{
    ScratchDir dir("leaseos_replay_illegal");
    // INACTIVE -> DEFERRED is not in the Fig. 5 relation.
    std::string path = writeFile(
        dir, "t.jsonl",
        line(1, "lease", "lease_created", 1, 7, "3") +
            line(2, "lease", "to_inactive", 1, 7, "0") +
            line(3, "lease", "to_deferred", 1, 7, "1"));
    ReplayReport report = validate(loadTrace(path));
    ASSERT_EQ(report.issues.size(), 1u);
    EXPECT_EQ(report.issues[0].eventIndex, 2u);
    EXPECT_EQ(report.issues[0].check, "state-machine");
    EXPECT_NE(report.issues[0].detail.find("INACTIVE"), std::string::npos);
}

TEST(TraceReplayTest, CatchesPayloadStateDisagreement)
{
    ScratchDir dir("leaseos_replay_payload");
    // Emitter claims from=Deferred but the replay tracked Active.
    std::string path = writeFile(
        dir, "t.jsonl",
        line(1, "lease", "lease_created", 1, 7, "3") +
            line(2, "lease", "to_active", 1, 7, "2"));
    ReplayReport report = validate(loadTrace(path));
    ASSERT_FALSE(report.clean());
    EXPECT_EQ(report.issues[0].check, "trace-payload");
}

TEST(TraceReplayTest, CatchesProxyDecisionViolations)
{
    ScratchDir dir("leaseos_replay_proxy");
    std::string path = writeFile(
        dir, "t.jsonl",
        line(1, "lease", "lease_created", 1, 7, "3") +
            line(2, "lease", "to_inactive", 1, 7, "0") +
            line(3, "proxy", "grant", 1, 7) +       // grant while INACTIVE
            line(4, "utility", "utility_charge", 1, 7) + // charge, too
            line(5, "lease", "to_active", 1, 7, "1") +
            line(6, "proxy", "deny", 1, 7));        // deny while ACTIVE
    ReplayReport report = validate(loadTrace(path));
    ASSERT_EQ(report.issues.size(), 3u);
    EXPECT_EQ(report.issues[0].eventIndex, 2u);
    EXPECT_EQ(report.issues[0].check, "proxy-decision");
    EXPECT_EQ(report.issues[1].eventIndex, 3u);
    EXPECT_EQ(report.issues[2].eventIndex, 5u);
}

TEST(TraceReplayTest, DetectsTimeRunningBackwardsAndDuplicateCreate)
{
    ScratchDir dir("leaseos_replay_time");
    std::string path = writeFile(
        dir, "t.jsonl",
        line(10, "lease", "lease_created", 1, 7, "3") +
            line(5, "lease", "lease_created", 1, 7, "3"));
    ReplayReport report = validate(loadTrace(path));
    ASSERT_EQ(report.issues.size(), 2u);
    EXPECT_EQ(report.issues[0].check, "time-monotonicity");
    EXPECT_EQ(report.issues[1].check, "duplicate-create");
}

TEST(TraceReplayTest, DeadlineStampedQueueEventsDoNotTripTheClock)
{
    ScratchDir dir("leaseos_replay_deadline");
    // Queue schedule/cancel carry the slot's *deadline* in t, so a
    // setup-time schedule for the run's end legitimately precedes t=0
    // events in the emission-ordered ring; a cancel can equally carry a
    // deadline behind the clock. Neither may advance or trip the clock —
    // but a backwards non-queue event after them still must.
    std::string path = writeFile(
        dir, "t.jsonl",
        line(600000000000, "queue", "schedule", 1000, 1) +
            line(0, "lease", "lease_created", 1, 7) +
            line(20, "lease", "to_inactive", 1, 7, "0") +
            line(5, "queue", "cancel", 1000, 1) +
            line(30, "queue", "fire", 1000, 2) +
            line(25, "lease", "to_active", 1, 7, "1"));
    ReplayReport report = validate(loadTrace(path));
    ASSERT_EQ(report.issues.size(), 1u)
        << (report.issues.empty() ? "" : report.issues[0].toString());
    EXPECT_EQ(report.issues[0].check, "time-monotonicity");
    EXPECT_EQ(report.issues[0].eventIndex, 5u);
}

TEST(TraceReplayTest, AdoptsLeasesBornBeforeRingWrap)
{
    ScratchDir dir("leaseos_replay_wrap");
    // No lease_created — the ring wrapped past it. The first transition's
    // payload seeds the tracked state; this is counted, not flagged.
    std::string path = writeFile(
        dir, "t.jsonl",
        line(1, "lease", "to_active", 1, 7, "2") + // from Deferred
            line(2, "proxy", "grant", 1, 7));
    ReplayReport report = validate(loadTrace(path));
    EXPECT_TRUE(report.clean())
        << (report.issues.empty() ? "" : report.issues[0].toString());
    EXPECT_EQ(report.inferredLeases, 1u);
}

// ---- diff ---------------------------------------------------------------

TEST(TraceReplayTest, DiffReportsFirstDivergingField)
{
    ScratchDir dir("leaseos_replay_diff");
    std::string base = line(1, "lease", "lease_created", 1, 7, "3") +
                       line(2, "proxy", "grant", 1, 7);
    Trace a = loadTrace(writeFile(dir, "a.jsonl", base));
    Trace b = loadTrace(writeFile(
        dir, "b.jsonl", line(1, "lease", "lease_created", 1, 7, "3") +
                            line(2, "proxy", "deny", 1, 7)));
    EXPECT_FALSE(diffTraces(a, a).diverged);

    DiffResult diff = diffTraces(a, b);
    ASSERT_TRUE(diff.diverged);
    EXPECT_EQ(diff.index, 1u);
    EXPECT_EQ(diff.field, "ev");

    // Prefix relation diverges on length, reporting the extra event.
    Trace shorter =
        loadTrace(writeFile(dir, "c.jsonl",
                            line(1, "lease", "lease_created", 1, 7, "3")));
    DiffResult tail = diffTraces(a, shorter);
    ASSERT_TRUE(tail.diverged);
    EXPECT_EQ(tail.index, 1u);
    EXPECT_EQ(tail.field, "length");
    EXPECT_EQ(tail.b, "<absent>");

    // Payload comparison is on the raw token: equal doubles, different
    // 64-bit values must diverge.
    Trace p1 = loadTrace(writeFile(
        dir, "p1.jsonl",
        line(1, "lease", "lease_created", 1, 7, "9007199254740993")));
    Trace p2 = loadTrace(writeFile(
        dir, "p2.jsonl",
        line(1, "lease", "lease_created", 1, 7, "9007199254740992")));
    DiffResult raw = diffTraces(p1, p2);
    ASSERT_TRUE(raw.diverged);
    EXPECT_EQ(raw.field, "payload");
}

// ---- determinism: one Table 5 cell, run twice ---------------------------

TEST(TraceReplayTest, TracedCellRunIsDeterministic)
{
    ScratchDir dir("leaseos_replay_det");
    harness::MitigationRunOptions opt;
    opt.duration = sim::Time::fromMinutes(8.0);

    auto runOnce = [&](const char *name) {
        harness::RunSpec spec = harness::mitigationCellSpec(
            apps::buggySpec("k9"), harness::MitigationMode::LeaseOS, opt);
        spec.withTrace((dir.path / name).string(), 1u << 12);
        harness::runScenario(spec);
        return loadTrace((dir.path / name).string());
    };
    Trace first = runOnce("run1.jsonl");
    Trace second = runOnce("run2.jsonl");
    ASSERT_TRUE(first.ok()) << first.error;
    ASSERT_TRUE(second.ok()) << second.error;

    DiffResult diff = diffTraces(first, second);
    EXPECT_FALSE(diff.diverged)
        << "event #" << diff.index << " field=" << diff.field << "\n  a: "
        << diff.a << "\n  b: " << diff.b;

#if defined(LEASEOS_TRACING)
    // With hooks compiled in the cell must actually emit events, and the
    // real timeline must satisfy the offline legality rules.
    ASSERT_FALSE(first.events.empty());
    ReplayReport report = validate(first);
    EXPECT_TRUE(report.clean())
        << (report.issues.empty() ? "" : report.issues[0].toString());
    EXPECT_GT(report.transitionsChecked, 0u);
#else
    // Hooks compiled out: the export is empty but the determinism
    // contract (and the file round-trip) still holds.
    EXPECT_TRUE(first.events.empty());
#endif
}

TEST(CheckpointViewTest, LoadsBlobWrittenByHarnessRun)
{
    ScratchDir dir("leaseos_replay_ckpt");
    harness::MitigationRunOptions opt;
    opt.duration = sim::Time::fromMinutes(5.0);
    harness::RunSpec spec = harness::mitigationCellSpec(
        apps::buggySpec("torch"), harness::MitigationMode::LeaseOS, opt);
    spec.withName("cell").withCheckpoints(
        sim::Time::fromNanos(opt.duration.nanos() / 2), dir.path.string());
    harness::RunResult result = harness::runScenario(spec);
    ASSERT_EQ(result.checkpoints.size(), 2u);

    std::vector<std::string> blobs;
    for (const auto &entry : std::filesystem::directory_iterator(dir.path))
        if (entry.path().extension() == ".ckpt")
            blobs.push_back(entry.path().string());
    std::sort(blobs.begin(), blobs.end());
    ASSERT_EQ(blobs.size(), 2u);

    CheckpointView view = loadCheckpointView(blobs.back());
    ASSERT_TRUE(view.ok()) << view.error;
    EXPECT_EQ(view.mode, 1); // MitigationMode::LeaseOS
    EXPECT_EQ(view.profile, "Pixel XL");
    EXPECT_EQ(view.appCount, 1u);
    EXPECT_EQ(view.simTimeNs, opt.duration.nanos());
    EXPECT_GT(view.executedEvents, 0u);
    EXPECT_GT(view.totalMj, 0.0);
    EXPECT_TRUE(view.hasLeases);
    EXPECT_GE(view.nextLeaseId, 2u); // torch took at least one lease
    ASSERT_FALSE(view.sections.empty());
    EXPECT_EQ(view.sections.front().name, "meta");
    EXPECT_EQ(view.sections.back().name, "apps");

    // A blob from a real boundary satisfies the quiescence invariants.
    std::vector<CheckpointIssue> issues = checkCheckpoint(view);
    EXPECT_TRUE(issues.empty())
        << (issues.empty() ? "" : issues[0].toString());

    // Unreadable path surfaces as a load error, not a throw.
    CheckpointView missing =
        loadCheckpointView((dir.path / "absent.ckpt").string());
    EXPECT_FALSE(missing.ok());
}

TEST(CheckpointViewTest, ChecksFlagCorruptedLeaseTables)
{
    CheckpointView view;
    view.hasLeases = true;
    view.simTimeNs = 1000;
    view.nextLeaseId = 3;

    CkptLease active;
    active.id = 1;
    active.token = 0x11;
    active.state = 0; // Active, but its term ended before the boundary
    active.termStartNs = 0;
    active.termLengthNs = 500;
    view.leases.push_back(active);

    CkptLease bogus;
    bogus.id = 7; // >= nextLeaseId
    bogus.state = 9; // not a LeaseState
    view.leases.push_back(bogus);

    view.byToken.emplace_back(0x11, 1); // ok
    view.byToken.emplace_back(0x22, 1); // token disagrees with lease 1
    view.byToken.emplace_back(0x33, 5); // unknown lease id

    std::vector<CheckpointIssue> issues = checkCheckpoint(view);
    std::vector<std::string> checks;
    for (const CheckpointIssue &issue : issues) checks.push_back(issue.check);
    EXPECT_EQ(checks,
              (std::vector<std::string>{"term-deadline", "lease-state",
                                        "token-index", "token-index"}));
}

TEST(CheckpointViewTest, BaselineSeedsValidateWithoutInference)
{
    CheckpointView view;
    view.hasLeases = true;
    view.simTimeNs = 5000;
    view.nextLeaseId = 3;
    CkptLease lease;
    lease.id = 2;
    lease.state = 0; // Active
    lease.termStartNs = 4000;
    lease.termLengthNs = 10000;
    view.leases.push_back(lease);

    ScratchDir dir("leaseos_replay_ckpt_base");
    // A post-boundary slice trace: the lease transitions without ever
    // having a lease_created event in this slice.
    std::string path = writeFile(
        dir, "slice.jsonl",
        line(6000, "lease", "to_inactive", 10000, 2, "0") +
            line(7000, "lease", "to_active", 10000, 2, "1"));
    Trace trace = loadTrace(path);
    ASSERT_TRUE(trace.ok()) << trace.error;

    ReplayReport report = validate(trace, view);
    EXPECT_TRUE(report.clean())
        << (report.issues.empty() ? "" : report.issues[0].toString());
    EXPECT_EQ(report.baselineLeases, 1u);
    EXPECT_EQ(report.inferredLeases, 0u); // known from the blob, no guess

    // Without the baseline the same trace counts the lease as inferred.
    ReplayReport bare = validate(trace);
    EXPECT_EQ(bare.inferredLeases, 1u);

    // An event stamped before the blob's boundary cannot belong to this
    // slice: the baseline anchors the replay clock.
    std::string early = writeFile(
        dir, "early.jsonl", line(4000, "lease", "to_inactive", 10000, 2, "0"));
    Trace earlyTrace = loadTrace(early);
    ASSERT_TRUE(earlyTrace.ok());
    ReplayReport earlyReport = validate(earlyTrace, view);
    ASSERT_EQ(earlyReport.issues.size(), 1u);
    EXPECT_EQ(earlyReport.issues[0].check, "time-monotonicity");
}

} // namespace
} // namespace leaseos::tracereplay
