/**
 * @file
 * Unit tests for the leaselint static-analysis rules (tools/leaselint).
 *
 * Each rule gets a positive case (the hazard is flagged), a negative case
 * (clean code passes), and a suppression case (an inline
 * `// leaselint: allow(<rule>)` silences the finding but counts it as
 * suppressed).
 */

#include <gtest/gtest.h>

#include "leaselint/driver.h"
#include "leaselint/rules.h"
#include "leaselint/sarif.h"
#include "leaselint/source.h"

namespace leaselint {
namespace {

std::vector<std::unique_ptr<Rule>>
only(std::unique_ptr<Rule> rule)
{
    std::vector<std::unique_ptr<Rule>> rules;
    rules.push_back(std::move(rule));
    return rules;
}

LintReport
lintOne(const std::string &path, const std::string &text,
        std::unique_ptr<Rule> rule)
{
    std::vector<SourceFile> files;
    files.push_back(SourceFile::fromString(path, text));
    return runLint(files, only(std::move(rule)));
}

// ---- SourceFile primitives --------------------------------------------------

TEST(SourceFile, BlanksCommentsAndStrings)
{
    SourceFile f = SourceFile::fromString("src/a.cc",
                                          "int x; // rand() here\n"
                                          "const char *s = \"rand()\";\n"
                                          "/* rand()\n   rand() */\n"
                                          "int y = rand();\n");
    EXPECT_EQ(findToken(f.codeText(), "rand", 0) != std::string::npos, true);
    // Only the real call on line 5 survives blanking.
    std::size_t pos = findToken(f.codeText(), "rand", 0);
    EXPECT_EQ(f.lineOfOffset(pos), 5u);
}

TEST(SourceFile, TokenMatchingRespectsIdentifierBoundaries)
{
    // "srand" and "randomize" must not match the token "rand".
    EXPECT_EQ(findToken("srand(1); randomize();", "rand", 0),
              std::string::npos);
    EXPECT_NE(findToken("x = rand();", "rand", 0), std::string::npos);
}

TEST(SourceFile, AllowAppliesToItsLineAndTheNext)
{
    SourceFile f = SourceFile::fromString(
        "src/a.cc",
        "// leaselint: allow(determinism) -- reason\n"
        "int a;\n"
        "int b;\n");
    EXPECT_TRUE(f.allowed("determinism", 1));
    EXPECT_TRUE(f.allowed("determinism", 2));
    EXPECT_FALSE(f.allowed("determinism", 3));
    EXPECT_FALSE(f.allowed("pairing", 2));
}

// ---- determinism rule -------------------------------------------------------

TEST(DeterminismRule, FlagsWallClockAndRand)
{
    LintReport report = lintOne("src/sim/bad.cc",
                                "#include <chrono>\n"
                                "auto t = std::chrono::system_clock::now();\n"
                                "int r = rand();\n",
                                makeDeterminismRule());
    ASSERT_EQ(report.findings.size(), 2u);
    EXPECT_EQ(report.findings[0].line, 2u);
    EXPECT_EQ(report.findings[1].line, 3u);
    EXPECT_EQ(report.findings[0].rule, "determinism");
}

TEST(DeterminismRule, FlagsUnorderedContainers)
{
    LintReport report =
        lintOne("src/os/bad.h", "std::unordered_map<int, int> m;\n",
                makeDeterminismRule());
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_NE(report.findings[0].message.find("iteration order"),
              std::string::npos);
}

TEST(DeterminismRule, IgnoresIncludesCommentsAndOtherDirs)
{
    LintReport clean = lintOne("src/sim/ok.cc",
                               "#include <unordered_set>\n"
                               "// rand() is banned\n"
                               "int seeded = seededRandom();\n",
                               makeDeterminismRule());
    EXPECT_TRUE(clean.findings.empty());

    // Scope: tools/ and tests/ may use wall clocks (e.g. timing a build).
    LintReport outside =
        lintOne("tools/x.cc", "int r = rand();\n", makeDeterminismRule());
    EXPECT_TRUE(outside.findings.empty());
}

TEST(DeterminismRule, SuppressionSilencesButCounts)
{
    LintReport report = lintOne(
        "src/sim/ok.h",
        "// leaselint: allow(determinism) -- membership only\n"
        "std::unordered_set<int> live_;\n",
        makeDeterminismRule());
    EXPECT_TRUE(report.findings.empty());
    EXPECT_EQ(report.suppressed, 1u);
}

// ---- pairing rule -----------------------------------------------------------

TEST(PairingRule, FlagsAcquireWithoutRelease)
{
    LintReport report = lintOne("src/apps/buggy/leak.h",
                                "void start() {\n"
                                "    ctx_.powerManager().acquire(lock_);\n"
                                "}\n",
                                makePairingRule());
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].rule, "pairing");
    EXPECT_EQ(report.findings[0].line, 2u);
}

TEST(PairingRule, AcceptsBalancedPairsAcrossHeaderAndImpl)
{
    // acquire in the .h, release in the .cc of the same unit: balanced.
    std::vector<SourceFile> files;
    files.push_back(SourceFile::fromString(
        "src/apps/a.h", "void s() { pm().acquire(lock_); }\n"));
    files.push_back(SourceFile::fromString(
        "src/apps/a.cc", "void t() { pm().release(lock_); }\n"));
    LintReport report = runLint(files, only(makePairingRule()));
    EXPECT_TRUE(report.findings.empty());
}

TEST(PairingRule, ChecksSubscriptionStylePairsToo)
{
    LintReport report =
        lintOne("src/apps/gps.h",
                "void s() { lm().requestLocationUpdates(uid, i, this); }\n",
                makePairingRule());
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_NE(report.findings[0].message.find("removeUpdates"),
              std::string::npos);
}

TEST(PairingRule, OnlyAppliesToAppsDirectory)
{
    LintReport report =
        lintOne("src/os/impl.cc", "void s() { acquire(t); }\n",
                makePairingRule());
    EXPECT_TRUE(report.findings.empty());
}

TEST(PairingRule, ModelledDefectSuppressionWorks)
{
    LintReport report = lintOne(
        "src/apps/buggy/leak.h",
        "void start() {\n"
        "    // leaselint: allow(pairing) -- modelled defect\n"
        "    ctx_.powerManager().acquire(lock_);\n"
        "}\n",
        makePairingRule());
    EXPECT_TRUE(report.findings.empty());
    EXPECT_EQ(report.suppressed, 1u);
}

// ---- proxy-bypass rule ------------------------------------------------------

TEST(ProxyBypassRule, FlagsInterpositionCallsOutsideProxyLayer)
{
    LintReport report =
        lintOne("src/apps/cheat.cc", "pm().suspend(token);\n",
                makeProxyBypassRule());
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].rule, "proxy-bypass");
}

TEST(ProxyBypassRule, AllowsProxyMitigationAndServiceLayers)
{
    for (const char *path :
         {"src/lease/proxies/wakelock_proxy.cc", "src/mitigation/doze.cc",
          "src/os/power_manager_service.cc"}) {
        LintReport report = lintOne(path, "pm().suspend(token);\n",
                                    makeProxyBypassRule());
        EXPECT_TRUE(report.findings.empty()) << path;
    }
}

// ---- switch-exhaustive rule -------------------------------------------------

TEST(SwitchExhaustiveRule, FlagsMissingEnumerator)
{
    std::vector<SourceFile> files;
    files.push_back(SourceFile::fromString(
        "src/lease/lease.h",
        "enum class LeaseState { Active, Inactive, Deferred, Dead };\n"));
    files.push_back(SourceFile::fromString(
        "src/lease/use.cc",
        "void f(LeaseState s) {\n"
        "    switch (s) {\n"
        "      case LeaseState::Active: break;\n"
        "      case LeaseState::Inactive: break;\n"
        "    }\n"
        "}\n"));
    LintReport report = runLint(files, only(makeSwitchExhaustiveRule()));
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].rule, "switch-exhaustive");
    EXPECT_NE(report.findings[0].message.find("Deferred"),
              std::string::npos);
    EXPECT_NE(report.findings[0].message.find("Dead"), std::string::npos);
}

TEST(SwitchExhaustiveRule, DefaultDoesNotExcuseMissingCases)
{
    std::vector<SourceFile> files;
    files.push_back(SourceFile::fromString(
        "src/lease/lease.h",
        "enum class LeaseState { Active, Inactive, Deferred, Dead };\n"));
    files.push_back(SourceFile::fromString(
        "src/lease/use.cc",
        "void f(LeaseState s) {\n"
        "    switch (s) {\n"
        "      case LeaseState::Active: break;\n"
        "      default: break;\n"
        "    }\n"
        "}\n"));
    LintReport report = runLint(files, only(makeSwitchExhaustiveRule()));
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_NE(report.findings[0].message.find("default"),
              std::string::npos);
}

TEST(SwitchExhaustiveRule, FullCoverageIsClean)
{
    std::vector<SourceFile> files;
    files.push_back(SourceFile::fromString(
        "src/lease/lease.h",
        "enum class LeaseState { Active, Inactive, Deferred, Dead };\n"));
    files.push_back(SourceFile::fromString(
        "src/lease/use.cc",
        "void f(LeaseState s) {\n"
        "    switch (s) {\n"
        "      case LeaseState::Active: break;\n"
        "      case LeaseState::Inactive: break;\n"
        "      case LeaseState::Deferred: break;\n"
        "      case LeaseState::Dead: break;\n"
        "    }\n"
        "}\n"));
    LintReport report = runLint(files, only(makeSwitchExhaustiveRule()));
    EXPECT_TRUE(report.findings.empty());
}

TEST(SwitchExhaustiveRule, IgnoresSwitchesOverOtherEnums)
{
    std::vector<SourceFile> files;
    files.push_back(SourceFile::fromString(
        "src/os/other.cc",
        "void f(Color c) {\n"
        "    switch (c) {\n"
        "      case Color::Red: break;\n"
        "    }\n"
        "}\n"));
    LintReport report = runLint(files, only(makeSwitchExhaustiveRule()));
    EXPECT_TRUE(report.findings.empty());
}

// ---- flat-map-hotpath rule --------------------------------------------------

TEST(FlatMapHotpathRule, FlagsNodeMapsInHotPathDirs)
{
    LintReport report = lintOne("src/power/bad.h",
                                "std::map<Uid, double> table_;\n"
                                "std::unordered_map<int, int> index_;\n",
                                makeFlatMapHotpathRule());
    ASSERT_EQ(report.findings.size(), 2u);
    EXPECT_EQ(report.findings[0].rule, "flat-map-hotpath");
    EXPECT_EQ(report.findings[0].line, 1u);
    EXPECT_NE(report.findings[0].message.find("dense"),
              std::string::npos);
}

TEST(FlatMapHotpathRule, IgnoresColdDirsIncludesAndUnqualifiedNames)
{
    // Maps outside src/sim and src/power are not hot-path concerns.
    LintReport cold = lintOne("src/harness/ok.cc",
                              "std::map<int, int> agg;\n",
                              makeFlatMapHotpathRule());
    EXPECT_TRUE(cold.findings.empty());

    LintReport clean = lintOne("src/sim/ok.cc",
                               "#include <map>\n"
                               "// the old std::map layout\n"
                               "int bitmap = roadmap(mapIndex);\n",
                               makeFlatMapHotpathRule());
    EXPECT_TRUE(clean.findings.empty());
}

TEST(FlatMapHotpathRule, SuppressionSilencesButCounts)
{
    LintReport report = lintOne(
        "src/power/ok.h",
        "// leaselint: allow(flat-map-hotpath) -- read at teardown\n"
        "std::map<Uid, double> statSeconds_;\n",
        makeFlatMapHotpathRule());
    EXPECT_TRUE(report.findings.empty());
    EXPECT_EQ(report.suppressed, 1u);
}

// ---- driver ----------------------------------------------------------------

TEST(Driver, FindingsAreSortedAndFormatted)
{
    std::vector<SourceFile> files;
    files.push_back(
        SourceFile::fromString("src/b.cc", "int r = rand();\n"));
    files.push_back(
        SourceFile::fromString("src/a.cc", "int r = rand();\n"));
    LintReport report = runLint(files, only(makeDeterminismRule()));
    ASSERT_EQ(report.findings.size(), 2u);
    EXPECT_EQ(report.findings[0].path, "src/a.cc");
    EXPECT_EQ(report.findings[1].path, "src/b.cc");
    EXPECT_EQ(report.filesScanned, 2u);
    std::string line = formatFinding(report.findings[0]);
    EXPECT_EQ(line.rfind("src/a.cc:1: [determinism]", 0), 0u);
}

// ---- SARIF export -----------------------------------------------------------

TEST(Sarif, ReportCarriesVersionRulesAndResults)
{
    std::vector<SourceFile> files;
    files.push_back(
        SourceFile::fromString("src/sim/bad.cc", "int r = rand();\n"));
    LintReport report = runLint(files, only(makeDeterminismRule()));
    ASSERT_EQ(report.findings.size(), 1u);

    std::string doc = sarifReport(report);
    // Top-level SARIF 2.1.0 shape.
    EXPECT_NE(doc.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(doc.find("\"runs\": ["), std::string::npos);
    EXPECT_NE(doc.find("\"name\": \"leaselint\""), std::string::npos);
    // Every built-in rule is listed in tool.driver.rules.
    for (const auto &rule : makeAllRules())
        EXPECT_NE(doc.find("\"id\": \"" + std::string(rule->name()) +
                           "\""),
                  std::string::npos)
            << rule->name();
    // The finding maps to a result with ruleId, level, and location.
    EXPECT_NE(doc.find("\"ruleId\": \"determinism\""), std::string::npos);
    EXPECT_NE(doc.find("\"level\": \"error\""), std::string::npos);
    EXPECT_NE(doc.find("\"uri\": \"src/sim/bad.cc\""), std::string::npos);
    EXPECT_NE(doc.find("\"startLine\": 1"), std::string::npos);
}

TEST(Sarif, EmptyReportHasEmptyResults)
{
    LintReport report;
    std::string doc = sarifReport(report);
    EXPECT_NE(doc.find("\"results\": [\n      ]"), std::string::npos);
}

TEST(Sarif, MessagesAreJsonEscaped)
{
    LintReport report;
    Finding f;
    f.rule = "determinism";
    f.path = "src/a.cc";
    f.line = 3;
    f.message = "bad \"quote\"\nand newline";
    report.findings.push_back(f);
    std::string doc = sarifReport(report);
    EXPECT_NE(doc.find("bad \\\"quote\\\"\\nand newline"),
              std::string::npos);
    EXPECT_EQ(doc.find("\nand newline"), std::string::npos);
}

TEST(Driver, WholeRepoIsCleanWithJustifiedSuppressions)
{
    // The acceptance gate: the shipped tree must lint clean, with every
    // suppression carrying a justification at the marked site.
    LintOptions options;
    options.root = LEASELINT_TEST_REPO_ROOT;
    LintReport report = runLint(options);
    for (const Finding &f : report.findings)
        ADD_FAILURE() << formatFinding(f);
    EXPECT_GT(report.filesScanned, 100u);
    EXPECT_GT(report.suppressed, 0u);
}

} // namespace
} // namespace leaselint
