#ifndef LEASEOS_SIM_INLINE_CALLBACK_H
#define LEASEOS_SIM_INLINE_CALLBACK_H

/**
 * @file
 * Small-buffer-optimized move-only callable — the event queue's callback
 * type (see DESIGN.md §8).
 *
 * `std::function<void()>` heap-allocates for any capture larger than two
 * pointers, which put one allocation on nearly every simulated event.
 * InlineCallback stores captures up to kInlineSize (48 bytes — enough for
 * a shared_ptr plus a std::function, the largest hot-path capture in the
 * tree) directly inside the object and dispatches through a plain
 * function pointer: no virtual call, no heap touch, and a noexcept move
 * that the EventQueue slot pool can shuffle freely. Oversized or
 * potentially-throwing-move captures fall back to a single heap
 * allocation, exactly like std::function — but no steady-state event in
 * the simulator needs the fallback.
 *
 * Unlike std::function it is move-only, so move-only captures
 * (std::unique_ptr, PeriodicHandle, another InlineCallback) work without
 * shared_ptr wrapping.
 */

#include <cassert>
#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace leaseos::sim {

/**
 * Move-only `void()` callable with 48 bytes of inline capture storage.
 */
class InlineCallback
{
  public:
    /** Inline capture capacity, in bytes. */
    static constexpr std::size_t kInlineSize = 48;
    static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

    /**
     * True when callables of type F are stored inline (no allocation).
     * Requires a noexcept move so the whole InlineCallback move (and the
     * event-queue slot shuffling built on it) stays noexcept.
     */
    template <typename F>
    static constexpr bool storedInline =
        sizeof(F) <= kInlineSize && alignof(F) <= kInlineAlign &&
        std::is_nothrow_move_constructible_v<F>;

    InlineCallback() = default;
    InlineCallback(std::nullptr_t) {}
    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    /** Wrap any void() callable (SFINAE'd away for InlineCallback itself). */
    template <typename F,
              std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                      std::is_invocable_r_v<void, std::decay_t<F> &>,
                  int> = 0>
    InlineCallback(F &&fn)
    {
        using Fn = std::decay_t<F>;
        if constexpr (storedInline<Fn>) {
            ::new (static_cast<void *>(storage_.buf))
                Fn(std::forward<F>(fn));
            invoke_ = [](InlineCallback &self) {
                (*std::launder(
                    reinterpret_cast<Fn *>(self.storage_.buf)))();
            };
            manage_ = &manageInline<Fn>;
        } else {
            storage_.heap = new Fn(std::forward<F>(fn));
            invoke_ = [](InlineCallback &self) {
                (*static_cast<Fn *>(self.storage_.heap))();
            };
            manage_ = &manageHeap<Fn>;
        }
    }

    InlineCallback(InlineCallback &&other) noexcept { moveFrom(other); }

    InlineCallback &
    operator=(InlineCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineCallback &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    ~InlineCallback() { reset(); }

    explicit operator bool() const noexcept { return invoke_ != nullptr; }

    void
    operator()()
    {
        assert(invoke_ != nullptr && "invoking an empty InlineCallback");
        invoke_(*this);
    }

  private:
    enum class Op { MoveTo, Destroy };

    /** Type-erased move/destroy; @p dst used by MoveTo only. */
    using Manage = void (*)(Op, InlineCallback &self, InlineCallback *dst);

    template <typename Fn>
    static void
    manageInline(Op op, InlineCallback &self, InlineCallback *dst)
    {
        Fn *fn = std::launder(reinterpret_cast<Fn *>(self.storage_.buf));
        if (op == Op::MoveTo)
            ::new (static_cast<void *>(dst->storage_.buf))
                Fn(std::move(*fn));
        fn->~Fn();
    }

    template <typename Fn>
    static void
    manageHeap(Op op, InlineCallback &self, InlineCallback *dst)
    {
        if (op == Op::MoveTo)
            dst->storage_.heap = self.storage_.heap;
        else
            delete static_cast<Fn *>(self.storage_.heap);
    }

    /** Steal @p other's target; leaves @p other empty. */
    void
    moveFrom(InlineCallback &other) noexcept
    {
        invoke_ = other.invoke_;
        manage_ = other.manage_;
        if (manage_ != nullptr) manage_(Op::MoveTo, other, this);
        other.invoke_ = nullptr;
        other.manage_ = nullptr;
    }

    void
    reset() noexcept
    {
        if (manage_ != nullptr) manage_(Op::Destroy, *this, nullptr);
        invoke_ = nullptr;
        manage_ = nullptr;
    }

    void (*invoke_)(InlineCallback &) = nullptr;
    Manage manage_ = nullptr;
    union Storage {
        alignas(kInlineAlign) unsigned char buf[kInlineSize];
        void *heap;
    } storage_;
};

} // namespace leaseos::sim

#endif // LEASEOS_SIM_INLINE_CALLBACK_H
