#include "apps/buggy/aimsicd.h"

// Aimsicd is header-only; this TU anchors the module.
namespace leaseos::apps {
} // namespace leaseos::apps
