/**
 * @file
 * Reproduces the §7.4 usability experiment: three representative normal
 * background apps (RunKeeper fitness tracking, Spotify streaming, Haven
 * monitoring — plus the Trepn profiler anecdote) under LeaseOS vs a pure
 * time-based throttling scheme ("essentially leases with only a single
 * term").
 *
 * Expected shape: LeaseOS continuously renews every lease (zero
 * deferrals, no disruption); throttling stops all three apps' background
 * function once the hold limit passes.
 */

#include <iostream>

#include "apps/normal/haven.h"
#include "apps/normal/runkeeper.h"
#include "apps/normal/spotify.h"
#include "apps/normal/trepn_profiler.h"
#include "harness/device.h"
#include "harness/figure.h"
#include "harness/table.h"

using namespace leaseos;
using sim::operator""_min;
using harness::TextTable;

namespace {

struct UsabilityRow {
    std::string app;
    std::string function;
    bool disrupted = false;
    std::string detail;
};

template <typename Installer>
UsabilityRow
runCase(harness::MitigationMode mode, Installer installer)
{
    harness::DeviceConfig cfg;
    cfg.mode = mode;
    cfg.throttleHoldLimit = sim::Time::fromMinutes(5.0);
    harness::Device device(cfg);
    device.gpsEnv().setVelocity(2.5, 0.5); // RunKeeper user is out running
    device.motion().setStationary(false);
    UsabilityRow row = installer(device);
    device.start();
    device.runFor(30_min);
    return row;
}

} // namespace

int
main()
{
    std::cout << harness::figureHeader(
        "Section 7.4",
        "Usability impact on legitimate background apps: LeaseOS vs pure "
        "time-based throttling (single-term leases, 5 min hold limit). "
        "30-minute runs.");

    TextTable table({"App", "Background function", "LeaseOS",
                     "Throttling"});

    struct CaseDef {
        std::string name;
        std::string function;
        std::function<UsabilityRow(harness::Device &)> install;
    };

    std::vector<CaseDef> cases;
    cases.push_back(
        {"RunKeeper", "fitness tracking (GPS+sensors)",
         [](harness::Device &device) {
             auto &app = device.install<apps::RunKeeper>();
             UsabilityRow row;
             device.simulator().scheduleAt(sim::Time::fromMinutes(30.0) -
                                               sim::Time::fromMillis(1),
                                           [&app, &row] {
                 std::uint64_t expected = app.expectedSamples();
                 row.disrupted =
                     app.samplesWritten() < expected * 9 / 10;
                 row.detail = std::to_string(app.samplesWritten()) + "/" +
                     std::to_string(expected) + " samples";
             });
             return row;
         }});
    cases.push_back({"Spotify", "music streaming",
                     [](harness::Device &device) {
                         auto &app = device.install<apps::Spotify>();
                         UsabilityRow row;
                         device.simulator().scheduleAt(
                             sim::Time::fromMinutes(30.0) -
                                 sim::Time::fromMillis(1),
                             [&app, &row] {
                                 row.disrupted = app.stalled() ||
                                     app.playedSeconds() < 0.9 * 1800.0;
                                 row.detail = TextTable::fmt(
                                                  app.playedSeconds() /
                                                      60.0,
                                                  1) +
                                     " min played";
                             });
                         return row;
                     }});
    cases.push_back({"Haven", "intruder monitoring (sensors)",
                     [](harness::Device &device) {
                         auto &app = device.install<apps::Haven>();
                         UsabilityRow row;
                         device.simulator().scheduleAt(
                             sim::Time::fromMinutes(30.0) -
                                 sim::Time::fromMillis(1),
                             [&app, &row] {
                                 row.disrupted = app.stalled();
                                 row.detail =
                                     std::to_string(app.observations()) +
                                     " observations";
                             });
                         return row;
                     }});
    cases.push_back({"Trepn profiler", "100 ms counter sampling",
                     [](harness::Device &device) {
                         auto &app = device.install<apps::TrepnProfiler>();
                         UsabilityRow row;
                         device.simulator().scheduleAt(
                             sim::Time::fromMinutes(30.0) -
                                 sim::Time::fromMillis(1),
                             [&app, &row] {
                                 row.disrupted = app.stalled();
                                 row.detail =
                                     std::to_string(app.samples()) +
                                     " samples";
                             });
                         return row;
                     }});

    for (auto &def : cases) {
        UsabilityRow lease =
            runCase(harness::MitigationMode::LeaseOS, def.install);
        UsabilityRow throttle =
            runCase(harness::MitigationMode::OneShotThrottle, def.install);
        table.addRow({def.name, def.function,
                      (lease.disrupted ? "DISRUPTED " : "ok ") +
                          lease.detail,
                      (throttle.disrupted ? "DISRUPTED " : "ok ") +
                          throttle.detail});
    }
    std::cout << table.toString();
    std::cout << "\nPaper: all three apps (and Trepn) run undisturbed "
                 "under LeaseOS; all experience disruption under pure "
                 "throttling.\n";
    return 0;
}
