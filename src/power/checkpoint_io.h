#ifndef LEASEOS_POWER_CHECKPOINT_IO_H
#define LEASEOS_POWER_CHECKPOINT_IO_H

/**
 * @file
 * Shared encode/decode helpers for the power models' saveState /
 * restoreState implementations (DESIGN.md §11). All containers travel
 * with an explicit element count; std::map iteration is key-ordered, so
 * the emitted bytes are deterministic.
 */

#include <map>
#include <vector>

#include "common/ids.h"
#include "sim/checkpoint.h"

namespace leaseos::power::ckpt {

// Ordered on purpose: blob bytes must be a pure function of state, and
// encode/decode runs once per checkpoint, never in the event loop.
// leaselint: allow(flat-map-hotpath) -- checkpoint tables, once per blob
using UidDoubleMap = std::map<Uid, double>;
// leaselint: allow(flat-map-hotpath) -- checkpoint tables, once per blob
using UidIntMap = std::map<Uid, int>;

inline void
writeUids(sim::CheckpointWriter &w, const std::vector<Uid> &uids)
{
    w.u64(uids.size());
    for (Uid u : uids) w.u32(static_cast<std::uint32_t>(u));
}

inline std::vector<Uid>
readUids(sim::CheckpointReader &r)
{
    std::uint64_t n = r.u64();
    std::vector<Uid> uids;
    uids.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        uids.push_back(static_cast<Uid>(r.u32()));
    return uids;
}

inline void
writeUidDoubleMap(sim::CheckpointWriter &w, const UidDoubleMap &m)
{
    w.u64(m.size());
    for (const auto &[uid, v] : m) {
        w.u32(static_cast<std::uint32_t>(uid));
        w.f64(v);
    }
}

inline UidDoubleMap
readUidDoubleMap(sim::CheckpointReader &r)
{
    UidDoubleMap m;
    std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        Uid uid = static_cast<Uid>(r.u32());
        m[uid] = r.f64();
    }
    return m;
}

inline void
writeUidIntMap(sim::CheckpointWriter &w, const UidIntMap &m)
{
    w.u64(m.size());
    for (const auto &[uid, v] : m) {
        w.u32(static_cast<std::uint32_t>(uid));
        w.i64(v);
    }
}

inline UidIntMap
readUidIntMap(sim::CheckpointReader &r)
{
    UidIntMap m;
    std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        Uid uid = static_cast<Uid>(r.u32());
        m[uid] = static_cast<int>(r.i64());
    }
    return m;
}

} // namespace leaseos::power::ckpt

#endif // LEASEOS_POWER_CHECKPOINT_IO_H
