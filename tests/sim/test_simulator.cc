/**
 * @file
 * Unit tests for the discrete-event Simulator.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace leaseos::sim {
namespace {

TEST(SimulatorTest, TimeStartsAtZero)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), Time::zero());
}

TEST(SimulatorTest, RunAdvancesToEventTimes)
{
    Simulator sim;
    std::vector<double> times;
    sim.schedule(2_s, [&] { times.push_back(sim.now().seconds()); });
    sim.schedule(5_s, [&] { times.push_back(sim.now().seconds()); });
    sim.run();
    EXPECT_EQ(times, (std::vector<double>{2.0, 5.0}));
    EXPECT_EQ(sim.now(), 5_s);
}

TEST(SimulatorTest, RunUntilStopsBeforeLaterEvents)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(1_s, [&] { ++fired; });
    sim.schedule(10_s, [&] { ++fired; });
    sim.run(5_s);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), 5_s);
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventAtExactHorizonFires)
{
    Simulator sim;
    bool fired = false;
    sim.schedule(5_s, [&] { fired = true; });
    sim.run(5_s);
    EXPECT_TRUE(fired);
}

TEST(SimulatorTest, RunForAdvancesRelative)
{
    Simulator sim;
    sim.runFor(10_s);
    EXPECT_EQ(sim.now(), 10_s);
    sim.runFor(5_s);
    EXPECT_EQ(sim.now(), 15_s);
}

TEST(SimulatorTest, EventsScheduledDuringRunExecute)
{
    Simulator sim;
    int depth = 0;
    sim.schedule(1_s, [&] {
        ++depth;
        sim.schedule(1_s, [&] { ++depth; });
    });
    sim.run();
    EXPECT_EQ(depth, 2);
    EXPECT_EQ(sim.now(), 2_s);
}

TEST(SimulatorTest, ScheduleAtClampsPastTimes)
{
    Simulator sim;
    sim.runFor(10_s);
    Time fired_at;
    sim.scheduleAt(5_s, [&] { fired_at = sim.now(); });
    sim.run();
    EXPECT_EQ(fired_at, 10_s);
}

TEST(SimulatorTest, CancelPreventsExecution)
{
    Simulator sim;
    bool fired = false;
    EventId id = sim.schedule(1_s, [&] { fired = true; });
    EXPECT_TRUE(sim.pending(id));
    sim.cancel(id);
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(SimulatorTest, PeriodicRepeatsUntilFalse)
{
    Simulator sim;
    int count = 0;
    sim.schedulePeriodic(1_s, [&] {
        ++count;
        return count < 5;
    });
    sim.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(sim.now(), 5_s);
}

TEST(SimulatorTest, PeriodicHonoursHorizon)
{
    Simulator sim;
    int count = 0;
    sim.schedulePeriodic(1_s, [&] {
        ++count;
        return true;
    });
    sim.run(10_s);
    EXPECT_EQ(count, 10);
}

TEST(PeriodicHandleTest, CancelStopsTheWholeRepetition)
{
    Simulator sim;
    int count = 0;
    PeriodicHandle handle =
        sim.schedulePeriodic(1_s, [&] { ++count; });
    EXPECT_TRUE(handle.active());
    sim.run(3_s);
    EXPECT_EQ(count, 3);
    handle.cancel();
    EXPECT_FALSE(handle.active());
    sim.run(10_s);
    EXPECT_EQ(count, 3);
}

TEST(PeriodicHandleTest, DestructionCancelsRaiiStyle)
{
    Simulator sim;
    int count = 0;
    {
        PeriodicHandle handle =
            sim.schedulePeriodic(1_s, [&] { ++count; });
        sim.run(2_s);
    }
    sim.run(10_s);
    EXPECT_EQ(count, 2);
}

TEST(PeriodicHandleTest, MoveTransfersOwnership)
{
    Simulator sim;
    int count = 0;
    PeriodicHandle a = sim.schedulePeriodic(1_s, [&] { ++count; });
    PeriodicHandle b = std::move(a);
    EXPECT_TRUE(b.active());
    sim.run(2_s);
    EXPECT_EQ(count, 2);
    b.cancel();
    sim.run(5_s);
    EXPECT_EQ(count, 2);
}

TEST(PeriodicHandleTest, CallbackMayCancelItsOwnHandle)
{
    Simulator sim;
    int count = 0;
    PeriodicHandle handle;
    handle = sim.schedulePeriodic(1_s, [&] {
        if (++count == 3) handle.cancel();
    });
    sim.run();
    EXPECT_EQ(count, 3);
    EXPECT_FALSE(handle.active());
}

TEST(PeriodicHandleTest, BoolCallbackOverloadHasNoStaleIdChannel)
{
    Simulator sim;
    int count = 0;
    // A bool-returning callback selects the legacy cooperative overload,
    // which deliberately returns nothing: the EventId it used to return
    // went stale after the first fire, so cancelling it silently failed.
    static_assert(
        std::is_void_v<decltype(sim.schedulePeriodic(
            1_s, std::function<bool()>([] { return false; })))>,
        "legacy overload must not hand out a first-occurrence EventId");
    sim.schedulePeriodic(1_s, [&] {
        ++count;
        return count < 2;
    });
    sim.run();
    EXPECT_EQ(count, 2);
}

TEST(PeriodicHandleTest, HandleCancelWorksAfterManyFires)
{
    // Regression: the repetition must stay cancellable long after the
    // first occurrence fired (the stale-EventId failure mode).
    Simulator sim;
    int count = 0;
    PeriodicHandle handle = sim.schedulePeriodic(1_s, [&] { ++count; });
    sim.run(50_s);
    EXPECT_EQ(count, 50);
    EXPECT_TRUE(handle.active());
    handle.cancel();
    std::size_t pendingAfterCancel = sim.pendingEvents();
    sim.run(100_s);
    EXPECT_EQ(count, 50);
    EXPECT_EQ(pendingAfterCancel, 0u)
        << "cancelling the handle must remove the pending occurrence";
}

TEST(SimulatorTest, ExecutedEventsCounted)
{
    Simulator sim;
    for (int i = 0; i < 7; ++i) sim.schedule(1_s, [] {});
    sim.run();
    EXPECT_EQ(sim.executedEvents(), 7u);
}

TEST(SimulatorTest, DrainedRunClampsToHorizon)
{
    Simulator sim;
    sim.schedule(1_s, [] {});
    Time end = sim.run(30_s);
    EXPECT_EQ(end, 30_s);
    EXPECT_EQ(sim.now(), 30_s);
}

} // namespace
} // namespace leaseos::sim
