#ifndef LEASEOS_APPS_NORMAL_TREPN_PROFILER_H
#define LEASEOS_APPS_NORMAL_TREPN_PROFILER_H

/**
 * @file
 * Trepn profiler model (§7.4's closing anecdote): a measurement app that
 * samples system counters every 100 ms under a wakelock. Under pure
 * throttling it "also stops collecting data, whereas it functions well
 * under LeaseOS" — its steady CPU use keeps wakelock utilisation healthy.
 */

#include <cstdint>

#include "app/app.h"
#include "os/binder.h"

namespace leaseos::apps {

/**
 * Well-behaved profiling tool.
 */
class TrepnProfiler : public app::App
{
  public:
    TrepnProfiler(app::AppContext &ctx, Uid uid)
        : App(ctx, uid, "Trepn Profiler") {}

    void
    start() override
    {
        lock_ = ctx_.powerManager().newWakeLock(
            uid(), os::WakeLockType::Partial, "trepn:sampler");
        ctx_.powerManager().acquire(lock_);
        lastSample_ = ctx_.sim.now();
        sample();
    }

    void
    stop() override
    {
        stopped_ = true;
        ctx_.powerManager().release(lock_);
        ctx_.powerManager().destroy(lock_);
        App::stop();
    }

    std::uint64_t samples() const { return samples_; }

    bool
    stalled() const
    {
        return (ctx_.sim.now() - lastSample_).seconds() > 5.0;
    }

  private:
    void
    sample()
    {
        if (stopped_) return;
        ++samples_;
        lastSample_ = ctx_.sim.now();
        // Reading counters: ~10 % of a core continuously.
        process_.compute(1.0, sim::Time::fromMillis(10));
        process_.post(sim::Time::fromMillis(100), [this] { sample(); });
    }

    os::TokenId lock_ = os::kInvalidToken;
    std::uint64_t samples_ = 0;
    sim::Time lastSample_;
    bool stopped_ = false;
};

} // namespace leaseos::apps

#endif // LEASEOS_APPS_NORMAL_TREPN_PROFILER_H
