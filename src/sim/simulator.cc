#include "sim/simulator.h"

#include <memory>
#include <utility>

namespace leaseos::sim {

EventId
Simulator::schedulePeriodic(Time period, std::function<bool()> cb)
{
    // The repeating closure owns the user callback and re-schedules itself
    // while the callback keeps returning true.
    struct Repeater : std::enable_shared_from_this<Repeater> {
        Simulator *sim;
        Time period;
        std::function<bool()> cb;

        void
        fire()
        {
            if (!cb()) return;
            auto self = shared_from_this();
            sim->schedule(period, [self] { self->fire(); });
        }
    };
    auto rep = std::make_shared<Repeater>();
    rep->sim = this;
    rep->period = period;
    rep->cb = std::move(cb);
    return schedule(period, [rep] { rep->fire(); });
}

Time
Simulator::run(Time until)
{
    while (!queue_.empty()) {
        Time t = queue_.nextTime();
        if (t > until) {
            now_ = until;
            return now_;
        }
        auto [when, cb] = queue_.pop();
        now_ = when;
        ++executed_;
        cb();
    }
    // Queue drained: clamp to the requested horizon if it is finite so that
    // back-to-back runFor() calls keep advancing wall-clock style.
    if (until != Time::max() && until > now_) now_ = until;
    return now_;
}

} // namespace leaseos::sim
