#ifndef LEASEOS_MITIGATION_DOZE_H
#define LEASEOS_MITIGATION_DOZE_H

/**
 * @file
 * Android Doze baseline (§7.3's first comparison point).
 *
 * Doze is a *system-wide* idle mode: when the device has been unused
 * (screen off, stationary) for a long time, background apps' wakelocks,
 * Wi-Fi locks, GPS requests, sensor listeners, and alarms are deferred,
 * with periodic maintenance windows. Any non-trivial activity (motion,
 * screen) exits the mode — which is why it is "too conservative to be
 * triggered for most cases" (Table 5 footnote); the aggressive flag
 * reproduces the paper's adb-forced variant.
 */

#include <cstdint>

#include "env/motion_model.h"
#include "os/system_server.h"
#include "sim/simulator.h"

namespace leaseos::mitigation {

/** Doze timing parameters. */
struct DozeConfig {
    /** Unused time (screen off + no motion) before entering doze. */
    sim::Time idleThreshold = sim::Time::fromMinutes(30.0);

    /** Spacing of maintenance windows while dozing. */
    sim::Time maintenanceInterval = sim::Time::fromMinutes(15.0);

    /** Length of each maintenance window. */
    sim::Time maintenanceWindow = sim::Time::fromSeconds(30.0);

    /**
     * Enter doze immediately at start() and re-enter after a short idle
     * instead of the full threshold (the Table 5 '*' variant forced via
     * adb). Interruptions still exit doze — the reason aggressive Doze
     * trails LeaseOS.
     */
    bool aggressive = false;

    /** Idle needed to re-enter when aggressive. */
    sim::Time aggressiveReentry = sim::Time::fromMinutes(1.0);
};

/**
 * System-wide idle deferral controller.
 */
class DozeController
{
  public:
    DozeController(sim::Simulator &sim, os::SystemServer &server,
                   env::MotionModel &motion, DozeConfig config = {});

    /** Arm idle detection (and force-enter if aggressive). */
    void start();

    bool dozing() const { return dozing_; }
    bool inMaintenanceWindow() const { return maintenance_; }

    /** Force doze on right now (the adb command of §7.3). */
    void forceEnter();

    std::uint64_t enterCount() const { return enters_; }
    std::uint64_t exitCount() const { return exits_; }

  private:
    void enter();
    void exit();
    void applyFilters();
    void clearFilters();
    void scheduleIdleCheck();
    void idleCheck();
    void openMaintenanceWindow();
    void closeMaintenanceWindow();

    /** Whether a uid's background activity is currently allowed. */
    bool allowed(Uid uid) const;

    sim::Simulator &sim_;
    os::SystemServer &server_;
    env::MotionModel &motion_;
    DozeConfig config_;

    bool started_ = false;
    bool dozing_ = false;
    bool maintenance_ = false;
    sim::Time screenOffSince_;
    bool screenOn_ = false;
    std::uint64_t enters_ = 0;
    std::uint64_t exits_ = 0;
};

} // namespace leaseos::mitigation

#endif // LEASEOS_MITIGATION_DOZE_H
