/**
 * @file
 * Unit tests for obs::MetricRegistry — registration/interning, the push
 * and bound metric kinds, histogram bucketing, snapshots, the
 * thread-local install protocol, and concurrent writers (the latter is
 * the case CI runs under ThreadSanitizer).
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metric_registry.h"

namespace leaseos::obs {
namespace {

TEST(MetricRegistryTest, CountersAccumulate)
{
    MetricRegistry reg;
    MetricId c = reg.counter("lease.created");
    EXPECT_NE(c, kInvalidMetricId);
    EXPECT_DOUBLE_EQ(reg.value(c), 0.0);
    reg.add(c);
    reg.add(c, 2.5);
    EXPECT_DOUBLE_EQ(reg.value(c), 3.5);
    EXPECT_EQ(reg.kind(c), MetricKind::Counter);
    EXPECT_EQ(reg.name(c), "lease.created");
}

TEST(MetricRegistryTest, GaugesOverwrite)
{
    MetricRegistry reg;
    MetricId g = reg.gauge("power.cpu.mj");
    reg.set(g, 10.0);
    reg.set(g, 4.0);
    EXPECT_DOUBLE_EQ(reg.value(g), 4.0);
}

TEST(MetricRegistryTest, ReRegistrationDedupsByName)
{
    MetricRegistry reg;
    MetricId a = reg.counter("shared");
    MetricId b = reg.counter("shared");
    EXPECT_EQ(a, b);
    reg.add(a);
    reg.add(b);
    EXPECT_DOUBLE_EQ(reg.value(a), 2.0);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricRegistryTest, KindMismatchOnReRegistrationThrows)
{
    MetricRegistry reg;
    reg.counter("x");
    EXPECT_THROW(reg.gauge("x"), std::logic_error);
}

TEST(MetricRegistryTest, FindByName)
{
    MetricRegistry reg;
    MetricId a = reg.counter("bbb");
    MetricId b = reg.counter("aaa");
    EXPECT_EQ(reg.find("bbb"), a);
    EXPECT_EQ(reg.find("aaa"), b);
    EXPECT_EQ(reg.find("none"), kInvalidMetricId);
}

TEST(MetricRegistryTest, BoundMetricsPullTheirCallback)
{
    MetricRegistry reg;
    double level = 1.5;
    MetricId g = reg.boundGauge("level", [&] { return level; });
    MetricId c = reg.boundCounter("total", [&] { return 2.0 * level; });
    EXPECT_DOUBLE_EQ(reg.value(g), 1.5);
    EXPECT_DOUBLE_EQ(reg.value(c), 3.0);
    level = 4.0;
    EXPECT_DOUBLE_EQ(reg.value(g), 4.0);
    EXPECT_DOUBLE_EQ(reg.value(c), 8.0);
    EXPECT_EQ(reg.kind(g), MetricKind::BoundGauge);
    EXPECT_EQ(reg.kind(c), MetricKind::BoundCounter);
}

TEST(MetricRegistryTest, HistogramBucketsByLog2)
{
    // bucket 0: v < 1; bucket 1+floor(log2 v) otherwise, clamped.
    EXPECT_EQ(MetricRegistry::bucketFor(0.0), 0);
    EXPECT_EQ(MetricRegistry::bucketFor(0.5), 0);
    EXPECT_EQ(MetricRegistry::bucketFor(-3.0), 0);
    EXPECT_EQ(MetricRegistry::bucketFor(1.0), 1);
    EXPECT_EQ(MetricRegistry::bucketFor(2.0), 2);
    EXPECT_EQ(MetricRegistry::bucketFor(3.9), 2);
    EXPECT_EQ(MetricRegistry::bucketFor(4.0), 3);
    EXPECT_EQ(MetricRegistry::bucketFor(1e300),
              MetricRegistry::kHistBuckets - 1);

    MetricRegistry reg;
    MetricId h = reg.histogram("lease.term_seconds");
    reg.observe(h, 0.5);
    reg.observe(h, 2.0);
    reg.observe(h, 3.0);
    EXPECT_EQ(reg.histCount(h), 3u);
    EXPECT_DOUBLE_EQ(reg.histSum(h), 5.5);
    EXPECT_EQ(reg.histBucket(h, 0), 1u);
    EXPECT_EQ(reg.histBucket(h, 2), 2u);
    // value() of a histogram is its observation count.
    EXPECT_DOUBLE_EQ(reg.value(h), 3.0);
}

TEST(MetricRegistryTest, SnapshotKeepsRegistrationOrder)
{
    MetricRegistry reg;
    reg.counter("zz");
    MetricId h = reg.histogram("hist");
    reg.gauge("aa");
    reg.observe(h, 2.0);
    auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 7u);
    EXPECT_EQ(snap[0].first, "zz");
    EXPECT_EQ(snap[1].first, "hist.count");
    EXPECT_DOUBLE_EQ(snap[1].second, 1.0);
    EXPECT_EQ(snap[2].first, "hist.sum");
    EXPECT_DOUBLE_EQ(snap[2].second, 2.0);
    EXPECT_EQ(snap[3].first, "hist.p50");
    EXPECT_EQ(snap[4].first, "hist.p90");
    EXPECT_EQ(snap[5].first, "hist.p99");
    EXPECT_EQ(snap[6].first, "aa");
}

TEST(MetricRegistryTest, HistPercentileInterpolatesWithinBucket)
{
    MetricRegistry reg;
    MetricId h = reg.histogram("h");
    EXPECT_DOUBLE_EQ(reg.histPercentile(h, 0.5), 0.0); // empty
    // 100 observations, all in bucket 3 = [4, 8): interpolation walks the
    // bucket linearly with rank.
    for (int i = 0; i < 100; ++i) reg.observe(h, 5.0);
    EXPECT_DOUBLE_EQ(reg.histPercentile(h, 0.50), 6.0);
    EXPECT_DOUBLE_EQ(reg.histPercentile(h, 1.00), 8.0);
    EXPECT_DOUBLE_EQ(reg.histPercentile(h, 0.0), 4.0 + 4.0 / 100.0);
}

TEST(MetricRegistryTest, HistPercentileSpansBuckets)
{
    MetricRegistry reg;
    MetricId h = reg.histogram("h");
    // 90 small observations in bucket 0 ([0,1)) and 10 in bucket 5
    // ([16,32)): p50 stays in the low bucket, p99 lands in the tail.
    for (int i = 0; i < 90; ++i) reg.observe(h, 0.5);
    for (int i = 0; i < 10; ++i) reg.observe(h, 20.0);
    EXPECT_DOUBLE_EQ(reg.histPercentile(h, 0.50), 50.0 / 90.0);
    EXPECT_DOUBLE_EQ(reg.histPercentile(h, 0.90), 1.0);
    EXPECT_DOUBLE_EQ(reg.histPercentile(h, 0.99),
                     16.0 + 16.0 * (99.0 - 90.0) / 10.0);
    // Percentiles are monotone in q.
    double last = 0.0;
    for (double q = 0.0; q <= 1.0; q += 0.05) {
        double p = reg.histPercentile(h, q);
        EXPECT_GE(p, last);
        last = p;
    }
}

TEST(MetricRegistryTest, InstallNestsAndRestores)
{
    EXPECT_EQ(MetricRegistry::current(), nullptr);
    {
        MetricRegistry outer;
        outer.install();
        EXPECT_EQ(MetricRegistry::current(), &outer);
        {
            MetricRegistry inner;
            inner.install();
            EXPECT_EQ(MetricRegistry::current(), &inner);
            inner.uninstall();
        }
        EXPECT_EQ(MetricRegistry::current(), &outer);
        outer.uninstall();
    }
    EXPECT_EQ(MetricRegistry::current(), nullptr);
}

TEST(MetricRegistryTest, DestructorUninstallsItself)
{
    {
        MetricRegistry reg;
        reg.install();
        EXPECT_EQ(MetricRegistry::current(), &reg);
    }
    EXPECT_EQ(MetricRegistry::current(), nullptr);
}

TEST(MetricRegistryTest, ConcurrentWritersNeverLoseCounts)
{
    // Registration happens before workers start (the documented
    // threading contract); add/observe are relaxed atomics. CI builds
    // this test under -fsanitize=thread.
    MetricRegistry reg;
    MetricId c = reg.counter("hits");
    MetricId h = reg.histogram("obs");
    constexpr int kThreads = 4;
    constexpr int kPerThread = 25'000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&reg, c, h] {
            for (int i = 0; i < kPerThread; ++i) {
                reg.add(c);
                reg.observe(h, 2.0);
            }
        });
    for (auto &w : workers) w.join();
    EXPECT_DOUBLE_EQ(reg.value(c),
                     static_cast<double>(kThreads * kPerThread));
    EXPECT_EQ(reg.histCount(h),
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_DOUBLE_EQ(reg.histSum(h), 2.0 * kThreads * kPerThread);
}

} // namespace
} // namespace leaseos::obs
