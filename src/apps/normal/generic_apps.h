#ifndef LEASEOS_APPS_NORMAL_GENERIC_APPS_H
#define LEASEOS_APPS_NORMAL_GENERIC_APPS_H

/**
 * @file
 * Parameterised well-behaved interactive apps.
 *
 * The Fig. 11 ("popular apps... games, social network, news, music") and
 * Fig. 13 ("use 10 apps / 30 apps in turn") workloads need a population of
 * ordinary apps that use resources correctly: short wakelocks around
 * interaction bursts, streaming while foreground, periodic background
 * syncs via alarms. Each interaction creates a fresh wakelock kernel
 * object (the common Android idiom), so the lease population matches the
 * paper's "most leases are short-lived" observation.
 */

#include <cstdint>
#include <string>

#include "app/app.h"
#include "os/binder.h"

namespace leaseos::apps {

/** Behaviour archetypes for the generic app population. */
enum class GenericKind {
    Video,   ///< streams a/v while foreground (YouTube)
    Browser, ///< network bursts per interaction
    Game,    ///< heavy CPU + sensors while foreground
    Music,   ///< light background audio
    News,    ///< periodic background sync via alarms
    Social   ///< interaction bursts + periodic sync
};

const char *genericKindName(GenericKind kind);

/**
 * One well-behaved app of a given archetype.
 */
class GenericInteractiveApp : public app::App
{
  public:
    GenericInteractiveApp(app::AppContext &ctx, Uid uid, GenericKind kind,
                          std::string name);

    void start() override;
    void stop() override;

    GenericKind kind() const { return kind_; }
    std::uint64_t interactionBursts() const { return bursts_; }

  private:
    void onInteraction();
    void onForegroundChange(Uid fg);
    void backgroundSync();
    void streamTick();
    void renderTick();

    GenericKind kind_;
    bool foreground_ = false;
    bool stopped_ = false;
    os::TokenId sensor_ = os::kInvalidToken;
    os::TokenId playbackLock_ = os::kInvalidToken;
    std::uint64_t bursts_ = 0;
};

} // namespace leaseos::apps

#endif // LEASEOS_APPS_NORMAL_GENERIC_APPS_H
