#include "lease/behavior_classifier.h"

namespace leaseos::lease {

BehaviorType
BehaviorClassifier::classify(ResourceType rtype, const LeaseStat &stat) const
{
    const ClassifierThresholds &th = thresholds_;
    double term = stat.termSeconds();
    if (term <= 0.0) return BehaviorType::Normal;

    // FAB only exists for resources whose acquisition can fail for long
    // stretches — GPS (Table 1: wakelock/sensor requests succeed almost
    // immediately).
    if (rtype == ResourceType::Gps) {
        double request_ratio = stat.requestSeconds / term;
        if (request_ratio >= th.fabMinRequestRatio &&
            stat.requestSuccessRatio() <= th.fabMaxSuccessRatio) {
            return BehaviorType::FrequentAsk;
        }
    }

    // The remaining classes require the resource to actually be held for
    // a substantial part of the term.
    if (stat.holdingRatio() < th.minHoldingRatio)
        return BehaviorType::Normal;

    if (stat.utilizationRatio() < th.lhbMaxUtilization)
        return BehaviorType::LongHolding;

    if (stat.utilityScore < th.lubMaxUtilityScore)
        return BehaviorType::LowUtility;

    // Held and well-utilised with real utility: heavy use is Excessive-Use
    // when the usage itself dominates the term; otherwise plain normal.
    if (stat.usageSeconds / term >= th.eubMinUsageRatio)
        return BehaviorType::ExcessiveUse;

    return BehaviorType::Normal;
}

} // namespace leaseos::lease
