#ifndef LEASEOS_SIM_EVENT_QUEUE_H
#define LEASEOS_SIM_EVENT_QUEUE_H

/**
 * @file
 * Priority-ordered event queue for the discrete-event simulator.
 *
 * Events are (time, sequence, callback) tuples ordered by time with FIFO
 * tie-breaking so that same-timestamp events fire in scheduling order,
 * which keeps runs deterministic. Cancellation is supported lazily: a
 * cancelled event's heap entry stays behind as a tombstone and is
 * discarded when it reaches the top.
 *
 * Internals (the hot path of every simulation — see DESIGN.md §7–8):
 * callbacks live in a pooled slot vector recycled through an intrusive
 * free list, so steady-state scheduling performs no allocation — and the
 * callback type is sim::InlineCallback, so capture storage doesn't
 * allocate either. The binary heap entries carry their own (when, seq)
 * sort key next to the slot index, so sift-up/down compares and moves
 * 24-byte entries sequentially in the heap array and never dereferences
 * a slot; callbacks are moved exactly twice in their life (in at
 * schedule(), out at pop()). EventIds carry a per-slot generation stamp,
 * making pending()/cancel() O(1) array lookups with no hashing; a reused
 * slot bumps its generation, so stale ids from fired or cancelled events
 * can never resurrect.
 */

#include <cstdint>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "sim/inline_callback.h"
#include "sim/time.h"

namespace leaseos::sim {

class CheckpointWriter;
class CheckpointReader;

/**
 * Opaque handle identifying a scheduled event; 0 is "invalid".
 * Layout: low 32 bits = slot index + 1, high 32 bits = slot generation.
 */
using EventId = std::uint64_t;

constexpr EventId kInvalidEventId = 0;

/**
 * Min-heap of pending simulation events with lazy cancellation.
 */
class EventQueue
{
  public:
    using Callback = InlineCallback;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule a callback to run at absolute time @p when.
     * @return an id that can be passed to cancel().
     */
    EventId schedule(Time when, Callback cb);

    /**
     * Cancel a pending event.
     * @retval true if the event existed and was still pending.
     */
    bool cancel(EventId id);

    /** @return true if @p id is scheduled and not yet fired or cancelled. */
    bool
    pending(EventId id) const
    {
        const Slot *slot = decode(id);
        return slot != nullptr && slot->live;
    }

    /** @return true if there is no live pending event. */
    bool empty() const { return liveCount_ == 0; }

    /** Number of live (non-cancelled) pending events. */
    std::size_t size() const { return liveCount_; }

    /** Timestamp of the earliest live event. Requires !empty(). */
    Time nextTime();

    /**
     * Remove and return the earliest live event.
     * Requires !empty().
     */
    std::pair<Time, Callback> pop();

    /** Total number of events ever scheduled (for stats/debug). */
    std::uint64_t scheduledCount() const { return nextSeq_; }

    /**
     * Serialize the queue's checkpoint-relevant state (DESIGN.md §11) —
     * currently nothing. Pending callbacks are closures and are NOT
     * serialized — checkpoints are taken at boundaries where every due
     * event has fired, and restored components re-arm their own timers
     * from recomputable deadlines. The nextSeq_ tie-break counter is
     * runtime bookkeeping, deliberately excluded: re-arms consume fresh
     * sequence numbers, yet ordering is preserved because every re-armed
     * event — like every pre-save pending event — carries a smaller
     * sequence than anything scheduled afterwards. Serializing it would
     * make a restored run's later blobs differ from the original's by
     * exactly the number of re-armed events.
     */
    void saveState(CheckpointWriter &w) const;

    /**
     * Counterpart of saveState(). The queue must be empty (throws
     * CheckpointError otherwise): restore happens on a fresh simulation
     * before components re-arm their events.
     */
    void restoreState(CheckpointReader &r);

  private:
    /** Free-list terminator / "no slot" marker. */
    static constexpr std::uint32_t kNoSlot = 0xffffffffu;

    /**
     * One pooled callback. A slot is allocated from schedule() until its
     * heap entry is removed (at pop() or when a tombstone surfaces), then
     * recycled via the free list with its generation bumped. The (when,
     * seq) ordering key lives in the slot's HeapEntry, not here.
     */
    struct Slot {
        std::uint32_t gen = 0;
        bool live = false;            ///< scheduled, not fired/cancelled
        std::uint32_t nextFree = kNoSlot;
#if defined(LEASEOS_TRACING)
        Time when; ///< fire time, kept so cancel trace events carry it
#endif
        Callback cb;
    };

    /**
     * One heap element: the event's sort key plus its slot index. Keys
     * ride in the heap so sift comparisons touch only the (contiguous)
     * heap array — never the slot pool.
     */
    struct HeapEntry {
        Time when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** Strict (when, seq) ordering between two heap entries. */
    static bool
    earlier(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.when != b.when) return a.when < b.when;
        return a.seq < b.seq;
    }

    static EventId
    makeId(std::uint32_t slot, std::uint32_t gen)
    {
        return (static_cast<EventId>(gen) << 32) |
               (static_cast<EventId>(slot) + 1);
    }

    /** Decode an id to its slot, or nullptr if malformed or stale. */
    const Slot *
    decode(EventId id) const
    {
        std::uint32_t low = static_cast<std::uint32_t>(id);
        if (low == 0) return nullptr;
        std::uint32_t index = low - 1;
        if (index >= slots_.size()) return nullptr;
        const Slot &slot = slots_[index];
        if (slot.gen != static_cast<std::uint32_t>(id >> 32))
            return nullptr;
        return &slot;
    }

    void siftUp(std::size_t pos);
    void siftDown(std::size_t pos);

    /** Remove the heap root (replace with last entry, restore order). */
    void popHeapTop();

    /** Recycle a slot: bump generation, drop callback, push free list. */
    void recycleSlot(std::uint32_t index);

    /** Drop tombstones (cancelled entries) from the top of the heap. */
    void skipDead();

    /**
     * Sweep every tombstone out of the heap and re-heapify (Floyd build,
     * O(n)). Triggered from cancel() once tombstones outnumber live
     * entries, which bounds the pool at ~2x the live event count and
     * keeps cancel() amortized O(1). Ordering is unaffected: the heap is
     * rebuilt under the same total (when, seq) order.
     */
    void compact();

    std::vector<Slot> slots_;          ///< pooled callback storage
    std::vector<HeapEntry> heap_;      ///< binary min-heap of keyed entries
    std::uint32_t freeHead_ = kNoSlot; ///< intrusive free-list head
    std::size_t liveCount_ = 0;
    std::uint64_t nextSeq_ = 0;

#if defined(LEASEOS_TRACING)
    /**
     * Cached trace sink: the runtime-off mode is this pointer being null,
     * one predictable branch per queue operation. The queue is the
     * simulator's firehose, so events are decimated 1-in-64.
     */
    static constexpr std::uint32_t kTraceSampleMask = 63;
    obs::TraceBuffer *trace_ = obs::TraceBuffer::current();
#endif
};

} // namespace leaseos::sim

#endif // LEASEOS_SIM_EVENT_QUEUE_H
