#include "power/bluetooth_model.h"

#include "power/checkpoint_io.h"

namespace leaseos::power {

void
BluetoothModel::saveState(sim::CheckpointWriter &w) const
{
    w.beginSection("bt", 1);
    ckpt::writeUids(w, owners_);
    w.time(lastAdvance_);
    ckpt::writeUidDoubleMap(w, scanSeconds_);
    w.endSection();
}

void
BluetoothModel::restoreState(sim::CheckpointReader &r)
{
    sim::requireSectionVersion("bt", r.beginSection("bt"), 1);
    owners_ = ckpt::readUids(r);
    lastAdvance_ = r.time();
    scanSeconds_ = ckpt::readUidDoubleMap(r);
    r.endSection();
}

} // namespace leaseos::power
