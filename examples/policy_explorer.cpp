/**
 * @file
 * Policy explorer: sweep the lease term and deferral interval over a
 * Long-Holding app and print the resulting effectiveness — a hands-on
 * version of the §5.1 trade-off (short terms detect faster but account
 * more; the ratio λ = τ/t decides the reduction).
 */

#include <iostream>

#include "apps/synthetic/synthetic_apps.h"
#include "harness/device.h"
#include "harness/table.h"

using namespace leaseos;
using sim::operator""_s;
using sim::operator""_min;

namespace {

struct SweepResult {
    double holdingSeconds;
    double appPowerMw;
    std::uint64_t termChecks;
};

SweepResult
run(sim::Time term, sim::Time tau)
{
    harness::DeviceConfig config;
    config.mode = harness::MitigationMode::LeaseOS;
    config.leasePolicy.initialTerm = term;
    config.leasePolicy.deferralInterval = tau;
    config.leasePolicy.adaptiveTerm = false;
    config.leasePolicy.escalateDeferral = false;
    harness::Device device(config);
    auto &app = device.install<apps::LongHoldingTestApp>();
    device.start();
    device.runFor(30_min);
    return {device.server().powerManager().enabledSeconds(app.uid()),
            device.appPowerMw(app.uid()),
            device.leaseos()->manager().termChecks()};
}

} // namespace

int
main()
{
    std::cout << "Lease policy explorer: Long-Holding app, 30-minute "
                 "runs\n\n";

    harness::TextTable table({"term", "tau", "lambda", "held (s)",
                              "app power (mW)", "term checks"});
    for (sim::Time term : {5_s, 30_s, 60_s}) {
        for (sim::Time tau : {25_s, 60_s, 180_s}) {
            SweepResult r = run(term, tau);
            table.addRow({term.toString(), tau.toString(),
                          harness::TextTable::fmt(tau / term, 2),
                          harness::TextTable::fmt(r.holdingSeconds, 0),
                          harness::TextTable::fmt(r.appPowerMw),
                          std::to_string(r.termChecks)});
        }
    }
    std::cout << table.toString();
    std::cout << "\nReading: holding ~ 1800/(1+lambda); short terms cost "
                 "more term checks (accounting) for the same lambda.\n";
    return 0;
}
