#include "apps/buggy/tapandturn.h"

namespace leaseos::apps {

using sim::operator""_s;

TapAndTurn::TapAndTurn(app::AppContext &ctx, Uid uid)
    : App(ctx, uid, "TapAndTurn")
{
}

void
TapAndTurn::start()
{
    // The overlay service keeps a window alive (counts as an Activity for
    // the listener-utilisation metric).
    ctx_.activityManager().activityStarted(uid());
    // Fig. 6: sensor.enable(utility) — register the custom counter when a
    // lease manager exists; the app runs unchanged without one.
    if (ctx_.leaseManager) {
        ctx_.leaseManager->setUtility(uid(), lease::ResourceType::Sensor,
                                      this);
    }
    // leaselint: allow(cross-unit-pairing) -- modelled defect: listener leaks
    sensor_ = ctx_.sensorManager().registerListener(
        uid(), power::SensorType::Orientation, 1_s, this);
}

void
TapAndTurn::stop()
{
    ctx_.sensorManager().destroy(sensor_);
    ctx_.activityManager().activityStopped(uid());
    if (ctx_.leaseManager) {
        ctx_.leaseManager->setUtility(uid(), lease::ResourceType::Sensor,
                                      nullptr);
    }
    App::stop();
}

void
TapAndTurn::onSensorEvent(power::SensorType, double value)
{
    if (value != lastOrientation_) {
        lastOrientation_ = value;
        ++rotations_;
        uiUpdate(); // the rotation icon appears
    }
}

void
TapAndTurn::clickIcon()
{
    ++clicks_;
    ctx_.activityManager().noteUserInteraction(uid());
}

} // namespace leaseos::apps
