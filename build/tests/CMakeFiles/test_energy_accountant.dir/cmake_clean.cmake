file(REMOVE_RECURSE
  "CMakeFiles/test_energy_accountant.dir/power/test_energy_accountant.cc.o"
  "CMakeFiles/test_energy_accountant.dir/power/test_energy_accountant.cc.o.d"
  "test_energy_accountant"
  "test_energy_accountant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_energy_accountant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
