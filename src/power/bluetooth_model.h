#ifndef LEASEOS_POWER_BLUETOOTH_MODEL_H
#define LEASEOS_POWER_BLUETOOTH_MODEL_H

/**
 * @file
 * Bluetooth radio power model.
 *
 * Table 1 lists Bluetooth with the sensors as a leasable subscription
 * resource: apps register scans and the OS delivers discovered devices.
 * Scanning (LE discovery) is the expensive state; a bonded idle link is
 * nearly free.
 */

#include <map>
#include <vector>

#include "power/component.h"

namespace leaseos::power {

/**
 * Scan-registration-based Bluetooth power model.
 */
class BluetoothModel : public PowerComponent
{
  public:
    /** Draw while at least one scan is active. */
    static constexpr double kScanMw = 38.0;
    /** Floor with the adapter on but idle. */
    static constexpr double kIdleMw = 1.5;

    BluetoothModel(sim::Simulator &sim, EnergyAccountant &accountant,
                   const DeviceProfile &profile)
        : PowerComponent(sim, accountant, profile, "bluetooth"),
          channel_(accountant.makeChannel("bluetooth")),
          lastAdvance_(sim.now())
    {
        update();
    }

    /** Uids with enabled scans (from os::BluetoothService). */
    void
    setScanOwners(std::vector<Uid> owners)
    {
        advance();
        owners_ = std::move(owners);
        update();
    }

    bool scanning() const { return !owners_.empty(); }

    /** Seconds @p uid has kept the radio scanning. */
    double
    scanSeconds(Uid uid)
    {
        advance();
        auto it = scanSeconds_.find(uid);
        return it == scanSeconds_.end() ? 0.0 : it->second;
    }

  private:
    void
    advance()
    {
        sim::Time now = sim_.now();
        if (now <= lastAdvance_) {
            lastAdvance_ = now;
            return;
        }
        double dt = (now - lastAdvance_).seconds();
        if (!owners_.empty()) {
            double each = dt / static_cast<double>(owners_.size());
            for (Uid u : owners_) scanSeconds_[u] += each;
        }
        lastAdvance_ = now;
    }

    void
    update()
    {
        if (owners_.empty()) {
            accountant_.setPower(channel_, kIdleMw, {kSystemUid});
        } else {
            accountant_.setPower(channel_, kScanMw, owners_);
        }
    }

    ChannelId channel_;
    std::vector<Uid> owners_;
    sim::Time lastAdvance_;
    // leaselint: allow(flat-map-hotpath) -- per-run stat, read at teardown
    std::map<Uid, double> scanSeconds_;

  public:
    /** Serialize scan state as a "bt" section (DESIGN.md §11). */
    void saveState(sim::CheckpointWriter &w) const;
    void restoreState(sim::CheckpointReader &r);
};

} // namespace leaseos::power

#endif // LEASEOS_POWER_BLUETOOTH_MODEL_H
