/**
 * @file
 * Allocation-count regression tests for the telemetry hot path
 * (DESIGN.md §9). Replaces global operator new/delete with counting
 * versions and asserts that steady-state trace emission and metric
 * updates perform ZERO heap allocations — the ring and the cell table
 * are sized at construction, never on the recording path. This is the
 * unit-scope twin of the perf-bench gate that keeps bench_eventqueue at
 * 0 allocs/op with tracing compiled out.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "common/ids.h"
#include "obs/metric_registry.h"
#include "obs/trace.h"
#include "sim/time.h"

// GCC inlines the replacement operator new/delete below into container
// code and then reports the malloc/free pairing as mismatched; the
// pairing is correct for global replacement allocation functions.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {

std::atomic<std::uint64_t> g_allocs{0};

std::uint64_t
allocCount()
{
    return g_allocs.load(std::memory_order_relaxed);
}

} // namespace

void *
operator new(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (size == 0) size = 1;
    if (void *p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (size == 0) size = 1;
    std::size_t a = static_cast<std::size_t>(align);
    if (void *p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace leaseos::obs {
namespace {

using sim::Time;

TEST(ObsAllocTest, TraceEmitIsAllocationFree)
{
    TraceBuffer buf(1u << 10);
    Time when = Time::zero();
    auto tick = [&] { when = when + Time::fromSeconds(0.25); };
    // Warm: wrap the ring at least once so every slot has been written.
    for (int i = 0; i < 2048; ++i) {
        tick();
        buf.emit(when, TraceCategory::Lease, TraceCode::LeaseToActive,
                 kFirstAppUid, static_cast<std::uint64_t>(i));
    }
    std::uint64_t before = allocCount();
    for (int i = 0; i < 10'000; ++i) {
        tick();
        buf.emit(when, TraceCategory::Lease, TraceCode::LeaseToActive,
                 kFirstAppUid, static_cast<std::uint64_t>(i));
        buf.emitSampled(63, when, TraceCategory::Queue,
                        TraceCode::QueueFire, kSystemUid,
                        static_cast<std::uint64_t>(i));
    }
    std::uint64_t after = allocCount();
    EXPECT_EQ(after, before)
        << "steady trace emission allocated " << (after - before)
        << " times in 10k iterations";
}

TEST(ObsAllocTest, DisabledTraceBufferIsAllocationFree)
{
    TraceBuffer buf(1u << 10);
    buf.setEnabled(false);
    std::uint64_t before = allocCount();
    for (int i = 0; i < 10'000; ++i)
        buf.emit(Time::zero(), TraceCategory::Proxy, TraceCode::ProxyGrant,
                 kFirstAppUid, 1);
    EXPECT_EQ(allocCount(), before);
    EXPECT_EQ(buf.emitted(), 0u);
}

TEST(ObsAllocTest, MetricUpdatesAreAllocationFree)
{
    // Registration may allocate (name interning, slot growth); updates
    // must not — they are a relaxed atomic op on a pre-sized cell.
    MetricRegistry reg;
    MetricId c = reg.counter("lease.transitions.active");
    MetricId g = reg.gauge("power.battery.mw");
    MetricId h = reg.histogram("lease.term_seconds");
    reg.add(c);
    reg.set(g, 1.0);
    reg.observe(h, 2.0);
    std::uint64_t before = allocCount();
    for (int i = 0; i < 10'000; ++i) {
        reg.add(c);
        reg.set(g, static_cast<double>(i));
        reg.observe(h, static_cast<double>(i % 512));
    }
    std::uint64_t after = allocCount();
    EXPECT_EQ(after, before)
        << "steady metric updates allocated " << (after - before)
        << " times in 10k iterations";
}

TEST(ObsAllocTest, UninstalledHookPathIsAllocationFree)
{
    // With no thread-local buffer installed, the instrumented-code path
    // is current() == nullptr followed by nothing; it must never touch
    // the heap.
    ASSERT_EQ(TraceBuffer::current(), nullptr);
    ASSERT_EQ(MetricRegistry::current(), nullptr);
    std::uint64_t before = allocCount();
    for (int i = 0; i < 10'000; ++i) {
        if (TraceBuffer *t = TraceBuffer::current())
            t->emit(Time::zero(), TraceCategory::Lease,
                    TraceCode::LeaseCreated, kSystemUid, 1);
        if (MetricRegistry *m = MetricRegistry::current()) m->add(0);
    }
    EXPECT_EQ(allocCount(), before);
}

} // namespace
} // namespace leaseos::obs
