#ifndef LEASEOS_APPS_BUGGY_BEACON_SCANNER_H
#define LEASEOS_APPS_BUGGY_BEACON_SCANNER_H

/**
 * @file
 * Item-finder beacon scanner: the canonical Bluetooth misbehaviour
 * pattern (Table 1's Bluetooth column). The app is supposed to scan in
 * duty-cycled bursts; a defect keeps the LE scan running continuously in
 * the background after the user closes the app — holding the radio in
 * its expensive discovery state for nothing → Long-Holding.
 */

#include "app/app.h"
#include "os/binder.h"
#include "os/bluetooth_service.h"

namespace leaseos::apps {

/**
 * Buggy always-scanning beacon tracker.
 */
class BeaconScanner : public app::App, private os::ScanListener
{
  public:
    BeaconScanner(app::AppContext &ctx, Uid uid)
        : App(ctx, uid, "BeaconScanner") {}

    void
    start() override
    {
        // The user checks their keys, then leaves; stopScan is never
        // called on this path (the defect).
        ctx_.activityManager().activityStarted(uid());
        // leaselint: allow(cross-unit-pairing) -- modelled defect: scan leaks by design
        scan_ = ctx_.bluetoothService().startScan(uid(), this);
        // The user closing the app is an external event — it must not
        // depend on the app process being runnable.
        ctx_.alarmManager().setAlarm(uid(), sim::Time::fromSeconds(20.0),
                                     true, [this] {
            ctx_.activityManager().activityStopped(uid());
        });
    }

    void
    stop() override
    {
        ctx_.bluetoothService().destroy(scan_);
        App::stop();
    }

    std::uint64_t sightings() const { return sightings_; }

  private:
    void
    onDeviceFound(std::uint64_t) override
    {
        ++sightings_;
        process_.computeScaled(0.2, sim::Time::fromMillis(5));
    }

    os::TokenId scan_ = os::kInvalidToken;
    std::uint64_t sightings_ = 0;
};

} // namespace leaseos::apps

#endif // LEASEOS_APPS_BUGGY_BEACON_SCANNER_H
