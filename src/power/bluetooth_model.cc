#include "power/bluetooth_model.h"

// BluetoothModel is header-only; this TU anchors the module.
namespace leaseos::power {
} // namespace leaseos::power
