#include "sim/time_series.h"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>

#include "sim/checkpoint.h"

namespace leaseos::sim {

void
TimeSeries::saveState(CheckpointWriter &w) const
{
    w.u64(points_.size());
    for (const auto &p : points_) {
        w.time(p.t);
        w.f64(p.value);
    }
}

void
TimeSeries::restoreState(CheckpointReader &r)
{
    std::uint64_t n = r.u64();
    points_.clear();
    points_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        Time t = r.time();
        double v = r.f64();
        points_.push_back({t, v});
    }
}

double
TimeSeries::sum() const
{
    double s = 0.0;
    for (const auto &p : points_) s += p.value;
    return s;
}

double
TimeSeries::mean() const
{
    return points_.empty() ? 0.0
                           : sum() / static_cast<double>(points_.size());
}

double
TimeSeries::max() const
{
    double m = points_.empty() ? 0.0 : points_.front().value;
    for (const auto &p : points_) m = std::max(m, p.value);
    return m;
}

double
TimeSeries::min() const
{
    double m = points_.empty() ? 0.0 : points_.front().value;
    for (const auto &p : points_) m = std::min(m, p.value);
    return m;
}

double
TimeSeries::sumBetween(Time from, Time to) const
{
    double s = 0.0;
    for (const auto &p : points_)
        if (p.t >= from && p.t < to) s += p.value;
    return s;
}

std::string
TimeSeries::toCsv() const
{
    std::ostringstream os;
    os << "time_s," << (name_.empty() ? "value" : name_) << "\n";
    for (const auto &p : points_)
        os << p.t.seconds() << "," << p.value << "\n";
    return os.str();
}

std::string
renderSeriesTable(const std::vector<const TimeSeries *> &series,
                  const std::string &timeUnit)
{
    // Collect the union of timestamps, then fill a row per timestamp.
    // leaselint: allow(flat-map-hotpath) -- report rendering, runs once
    std::map<std::int64_t, std::vector<std::string>> rows;
    for (std::size_t i = 0; i < series.size(); ++i) {
        for (const auto &p : series[i]->points()) {
            auto &row = rows[p.t.nanos()];
            row.resize(series.size());
            std::ostringstream v;
            v << std::fixed << std::setprecision(2) << p.value;
            row[i] = v.str();
        }
    }

    std::ostringstream os;
    os << std::left << std::setw(12) << ("time(" + timeUnit + ")");
    for (const auto *s : series)
        os << std::setw(24) << (s->name().empty() ? "series" : s->name());
    os << "\n";
    for (auto &[ns, row] : rows) {
        double t = static_cast<double>(ns) / 1e9;
        if (timeUnit == "min") t /= 60.0;
        row.resize(series.size());
        std::ostringstream ts;
        ts << std::fixed << std::setprecision(1) << t;
        os << std::setw(12) << ts.str();
        for (const auto &cell : row) os << std::setw(24) << cell;
        os << "\n";
    }
    return os.str();
}

} // namespace leaseos::sim
