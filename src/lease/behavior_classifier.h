#ifndef LEASEOS_LEASE_BEHAVIOR_CLASSIFIER_H
#define LEASEOS_LEASE_BEHAVIOR_CLASSIFIER_H

/**
 * @file
 * Term-stat → behaviour-type classification (§2.4).
 *
 * The classifier implements the paper's observation that misbehaviour
 * shows as one of three ratios dropping to a very low value:
 *   FAB: request success ratio ≈ 0 while requesting is frequent/long;
 *   LHB: utilisation ratio ultralow (< ~5 %) while held most of the term;
 *   LUB: utilisation fine but utility score low;
 *   EUB: held and used heavily with real utility (not deferred).
 */

#include "lease/behavior.h"
#include "lease/lease_stat.h"
#include "lease/resource_type.h"

namespace leaseos::lease {

/**
 * Tunable thresholds; defaults follow the paper's characterisation
 * (ultralow utilisation < 1-5 %, utility scale 0-100).
 */
struct ClassifierThresholds {
    /** Requesting must cover at least this fraction of the term (FAB). */
    double fabMinRequestRatio = 0.3;
    /** Success ratio below this is "rarely gets it" (FAB). */
    double fabMaxSuccessRatio = 0.2;

    /** Holding must cover at least this fraction of the term (LHB/LUB). */
    double minHoldingRatio = 0.5;
    /** Utilisation below this is ultralow (LHB). */
    double lhbMaxUtilization = 0.05;

    /** Utility score below this marks Low-Utility (LUB). */
    double lubMaxUtilityScore = 20.0;

    /** Usage above this fraction of the term marks heavy use (EUB). */
    double eubMinUsageRatio = 0.5;
};

/**
 * Stateless behaviour classifier.
 */
class BehaviorClassifier
{
  public:
    explicit BehaviorClassifier(ClassifierThresholds thresholds = {})
        : thresholds_(thresholds) {}

    /** Classify one term's stats for a resource of type @p rtype. */
    BehaviorType classify(ResourceType rtype, const LeaseStat &stat) const;

    const ClassifierThresholds &thresholds() const { return thresholds_; }

  private:
    ClassifierThresholds thresholds_;
};

} // namespace leaseos::lease

#endif // LEASEOS_LEASE_BEHAVIOR_CLASSIFIER_H
