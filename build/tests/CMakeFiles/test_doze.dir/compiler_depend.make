# Empty compiler generated dependencies file for test_doze.
# This may be replaced when dependencies are built.
