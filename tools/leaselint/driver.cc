#include "leaselint/driver.h"

#include <algorithm>
#include <filesystem>

#include "leaselint/rules.h"

namespace leaselint {

namespace fs = std::filesystem;

namespace {

bool
lintableExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

/** Collect lintable files under root/rel (or the single file itself). */
void
collect(const fs::path &root, const std::string &rel,
        std::vector<std::pair<std::string, fs::path>> &out)
{
    fs::path abs = root / rel;
    std::error_code ec;
    if (fs::is_regular_file(abs, ec)) {
        out.emplace_back(rel, abs);
        return;
    }
    if (!fs::is_directory(abs, ec)) return;
    for (fs::recursive_directory_iterator it(abs, ec), end;
         it != end && !ec; it.increment(ec)) {
        if (!it->is_regular_file(ec) || !lintableExtension(it->path()))
            continue;
        out.emplace_back(
            fs::relative(it->path(), root, ec).generic_string(),
            it->path());
    }
}

} // namespace

LintReport
runLint(const std::vector<SourceFile> &files,
        std::vector<std::unique_ptr<Rule>> rules)
{
    LintReport report;
    report.filesScanned = files.size();

    for (auto &rule : rules)
        for (const SourceFile &file : files) rule->scan(file);

    std::vector<Finding> raw;
    for (auto &rule : rules) {
        for (const SourceFile &file : files) rule->check(file, raw);
        rule->finalize(raw);
    }

    // Central suppression filtering against the allow() maps.
    for (Finding &finding : raw) {
        auto file = std::find_if(files.begin(), files.end(),
                                 [&](const SourceFile &f) {
                                     return f.path() == finding.path;
                                 });
        if (file != files.end() &&
            file->allowed(finding.rule, finding.line)) {
            ++report.suppressed;
        } else {
            report.findings.push_back(std::move(finding));
        }
    }

    std::sort(report.findings.begin(), report.findings.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.path, a.line, a.rule, a.message) <
                         std::tie(b.path, b.line, b.rule, b.message);
              });
    return report;
}

LintReport
runLint(const LintOptions &options)
{
    std::vector<std::pair<std::string, fs::path>> paths;
    for (const std::string &rel : options.paths)
        collect(options.root, rel, paths);
    std::sort(paths.begin(), paths.end());
    paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

    std::vector<SourceFile> files;
    files.reserve(paths.size());
    for (const auto &[rel, abs] : paths) {
        if (auto file = SourceFile::load(abs.string(), rel))
            files.push_back(std::move(*file));
    }

    std::vector<std::unique_ptr<Rule>> rules;
    for (auto &rule : makeAllRules()) {
        if (options.rules.empty() ||
            std::find(options.rules.begin(), options.rules.end(),
                      rule->name()) != options.rules.end())
            rules.push_back(std::move(rule));
    }
    return runLint(files, std::move(rules));
}

std::string
formatFinding(const Finding &finding)
{
    return finding.path + ":" + std::to_string(finding.line) + ": [" +
           finding.rule + "] " + finding.message;
}

} // namespace leaselint
