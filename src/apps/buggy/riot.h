#ifndef LEASEOS_APPS_BUGGY_RIOT_H
#define LEASEOS_APPS_BUGGY_RIOT_H

/**
 * @file
 * Riot model (Table 5 row; riot-android issue #1830 "accelerometer use").
 * The chat app registers an accelerometer listener (shake-to-report) and
 * keeps it while the app sits open in the background; the feed produces
 * nothing the user ever sees → Low-Utility.
 */

#include "app/app.h"
#include "os/binder.h"
#include "os/sensor_manager_service.h"

namespace leaseos::apps {

/**
 * Buggy Riot messenger.
 */
class Riot : public app::App, private os::SensorEventListener
{
  public:
    Riot(app::AppContext &ctx, Uid uid) : App(ctx, uid, "Riot") {}

    void
    start() override
    {
        // Left open: the chat Activity stays alive.
        ctx_.activityManager().activityStarted(uid());
        // leaselint: allow(cross-unit-pairing) -- modelled defect: listener leaks
        sensor_ = ctx_.sensorManager().registerListener(
            uid(), power::SensorType::Accelerometer,
            sim::Time::fromMillis(500), this);
    }

    void
    stop() override
    {
        ctx_.sensorManager().destroy(sensor_);
        ctx_.activityManager().activityStopped(uid());
        App::stop();
    }

  private:
    void
    onSensorEvent(power::SensorType, double) override
    {
        // Shake detection that never triggers anything.
        process_.computeScaled(0.2, sim::Time::fromMillis(2));
    }

    os::TokenId sensor_ = os::kInvalidToken;
};

} // namespace leaseos::apps

#endif // LEASEOS_APPS_BUGGY_RIOT_H
