#ifndef LEASEOS_APPS_BUGGY_K9_MAIL_H
#define LEASEOS_APPS_BUGGY_K9_MAIL_H

/**
 * @file
 * K-9 Mail model (Case I, §2.1; Fig. 2/4/8; Table 5 row "K-9").
 *
 * The push service acquires a wakelock per sync attempt and retries
 * indefinitely without back-off on failure (fixed upstream in 4542e64 by
 * adding exponential back-off and prompt release). Two trigger modes:
 *  - connected + bad mail server: each attempt waits out a long server
 *    timeout holding the wakelock with the CPU nearly idle → LHB (Fig. 2);
 *  - disconnected network: requests fail fast, so the retry loop spins hot
 *    raising an exception per iteration → LUB with CPU/wakelock > 100 %
 *    (Fig. 4).
 */

#include <cstdint>
#include <string>

#include "app/app.h"
#include "os/binder.h"

namespace leaseos::apps {

/**
 * Buggy K-9 mail push service.
 */
class K9Mail : public app::App
{
  public:
    /** The mail server hostname used in the network environment. */
    static constexpr const char *kServer = "mail.k9.example";

    K9Mail(app::AppContext &ctx, Uid uid);

    void start() override;
    void stop() override;

    std::uint64_t successfulSyncs() const { return successes_; }
    std::uint64_t failedAttempts() const { return failures_; }

  private:
    /** EasPusher.start(): acquire the lock and run the sync loop. */
    void startPush();
    void attemptSync();
    void onSyncResult(env::NetResult result);
    void finishPush();

    os::TokenId wakeLock_ = os::kInvalidToken;
    bool pushing_ = false;
    bool stopped_ = false;
    std::uint64_t successes_ = 0;
    std::uint64_t failures_ = 0;
};

} // namespace leaseos::apps

#endif // LEASEOS_APPS_BUGGY_K9_MAIL_H
