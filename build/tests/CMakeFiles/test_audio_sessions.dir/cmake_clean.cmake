file(REMOVE_RECURSE
  "CMakeFiles/test_audio_sessions.dir/os/test_audio_sessions.cc.o"
  "CMakeFiles/test_audio_sessions.dir/os/test_audio_sessions.cc.o.d"
  "test_audio_sessions"
  "test_audio_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_audio_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
