#include "sim/random.h"

#include <locale>
#include <sstream>

#include "sim/checkpoint.h"

namespace leaseos::sim {

void
RandomSource::saveState(CheckpointWriter &w) const
{
    // The standard guarantees operator<< writes the engine's full state
    // as decimal integers; pinning the classic locale makes the text (and
    // with it the blob bytes) identical on every host.
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os << rng_;
    w.beginSection("rng", 1);
    w.str(os.str());
    w.endSection();
}

void
RandomSource::restoreState(CheckpointReader &r)
{
    requireSectionVersion("rng", r.beginSection("rng"), 1);
    std::istringstream is(r.str());
    is.imbue(std::locale::classic());
    is >> rng_;
    r.endSection();
    if (is.fail())
        throw CheckpointError("rng section does not decode as mt19937_64");
}

} // namespace leaseos::sim
