file(REMOVE_RECURSE
  "CMakeFiles/test_app_process.dir/app/test_app_process.cc.o"
  "CMakeFiles/test_app_process.dir/app/test_app_process.cc.o.d"
  "test_app_process"
  "test_app_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
