#ifndef LEASEOS_APPS_BUGGY_TAPANDTURN_H
#define LEASEOS_APPS_BUGGY_TAPANDTURN_H

/**
 * @file
 * TapAndTurn model (Table 5 row; issue #28 "polls sensors even when
 * screen is off") and the custom-utility example of Fig. 6.
 *
 * The service listens to the orientation sensor and pops a rotation icon
 * the user may click. The app implements IUtilityCounter as in Fig. 6:
 * score = 100 * clicks / rotations — when the icon keeps appearing with no
 * clicks (user asleep, phone on the nightstand) utility goes to zero →
 * Low-Utility via the custom counter.
 */

#include <cstdint>

#include "app/app.h"
#include "common/utility_counter.h"
#include "lease/lease_manager.h"
#include "os/binder.h"
#include "os/sensor_manager_service.h"

namespace leaseos::apps {

/**
 * Buggy TapAndTurn rotation-control service.
 */
class TapAndTurn : public app::App,
                   private os::SensorEventListener,
                   private IUtilityCounter
{
  public:
    TapAndTurn(app::AppContext &ctx, Uid uid);

    void start() override;
    void stop() override;

    /** User clicked the rotation icon (wired by the usability benches). */
    void clickIcon();

    std::uint64_t rotations() const { return rotations_; }
    std::uint64_t clicks() const { return clicks_; }

  private:
    // Fig. 6's ClickUtility.getScore().
    double
    getScore() override
    {
        if (rotations_ == 0) return 50.0;
        return 100.0 * static_cast<double>(clicks_) /
            static_cast<double>(rotations_);
    }

    void onSensorEvent(power::SensorType type, double value) override;

    os::TokenId sensor_ = os::kInvalidToken;
    double lastOrientation_ = 0.0;
    std::uint64_t rotations_ = 0;
    std::uint64_t clicks_ = 0;
};

} // namespace leaseos::apps

#endif // LEASEOS_APPS_BUGGY_TAPANDTURN_H
