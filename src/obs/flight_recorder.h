#ifndef LEASEOS_OBS_FLIGHT_RECORDER_H
#define LEASEOS_OBS_FLIGHT_RECORDER_H

/**
 * @file
 * FlightRecorder — the crash-dump half of the telemetry layer
 * (DESIGN.md §10): when the checked-mode oracle is about to abort the
 * process, it cuts a `flightrec-*.json` file holding the full TraceBuffer
 * ring plus a MetricRegistry snapshot, so the violation can be triaged
 * offline with tools/tracereplay instead of rerunning the sweep.
 *
 * Cost model: the recorder does nothing until dump() is called — no
 * per-event work, no allocation on any steady-state path. Installing one
 * is free in every build flavour; the only code that consults it is the
 * oracle's abort path and explicit dump() callers.
 *
 * Visibility follows the thread-local install()/uninstall()/current()
 * protocol shared with InvariantOracle, MetricRegistry, and TraceBuffer:
 * one recorder per run thread, nestable, deterministic under parallel
 * sweeps.
 *
 * Reentrancy: dump() walks the registry's bound-metric callbacks and (in
 * principle) arbitrary instrumented code, which could fire the oracle
 * again mid-dump. A thread-local in-dump flag makes the nested dump() a
 * no-op and tells the oracle to record instead of abort while a dump is
 * being written, so one violation can never recurse into a torn record.
 *
 * File naming is deterministic: simulated time plus a per-recorder
 * sequence number — never wall-clock time, which the leaselint
 * determinism rule (correctly) forbids in simulation-adjacent code.
 */

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace leaseos::obs {

/** Why a flight record is being cut; becomes the JSON header. */
struct FlightRecordContext {
    std::string reason;  ///< "invariant-violation", "manual", ...
    std::string check;   ///< oracle check name; empty for manual dumps
    std::string detail;  ///< human-readable diagnostic
    sim::Time simTime;   ///< virtual time of the trigger
    std::uint64_t leaseId = 0; ///< involved lease, 0 when n/a
};

class FlightRecorder
{
  public:
    /**
     * Records will be written under @p dir (created on first dump) as
     * `flightrec-<label>-t<simNanos>-<seq>.json`. @p label is sanitized
     * to [A-Za-z0-9._-].
     */
    explicit FlightRecorder(std::string dir, std::string label = "run");
    ~FlightRecorder();

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /**
     * Write one flight record from the telemetry installed on this
     * thread (MetricRegistry::current(), TraceBuffer::current() — either
     * may be absent). Returns the path written, or "" if the dump was
     * suppressed (reentrant call) or the file could not be created.
     */
    std::string dump(const FlightRecordContext &ctx);

    /** True while this thread is inside dump() — the oracle must not
     *  abort (or re-dump) while the record is being written. */
    static bool inDump() noexcept;

    const std::string &directory() const noexcept { return dir_; }
    const std::string &label() const noexcept { return label_; }
    /** Path of the most recent successful dump ("" if none). */
    const std::string &lastPath() const noexcept { return lastPath_; }
    /** Successful dumps so far. */
    std::uint64_t dumps() const noexcept { return dumps_; }

    // ---- thread-local visibility (mirrors InvariantOracle) --------------

    void install();
    void uninstall();
    static FlightRecorder *current();

  private:
    std::string dir_;
    std::string label_;
    std::string lastPath_;
    std::uint64_t dumps_ = 0;
    bool installed_ = false;
    FlightRecorder *previous_ = nullptr;
};

} // namespace leaseos::obs

#endif // LEASEOS_OBS_FLIGHT_RECORDER_H
