#include "os/service.h"

// Service is header-only; this TU anchors the module in the build.
namespace leaseos::os {
} // namespace leaseos::os
