#include "mitigation/throttle.h"

namespace leaseos::mitigation {

OneShotThrottler::OneShotThrottler(sim::Simulator &sim,
                                   os::SystemServer &server,
                                   sim::Time holdLimit)
    : sim_(sim), server_(server), holdLimit_(holdLimit)
{
}

void
OneShotThrottler::start()
{
    if (started_) return;
    started_ = true;
    server_.powerManager().addListener(&powerWatcher_);
    server_.locationManager().addListener(&gpsWatcher_);
    server_.sensorManager().addListener(&sensorWatcher_);
    server_.wifiManager().addListener(&wifiWatcher_);
}

void
OneShotThrottler::noteAcquired(os::TokenId token, Uid uid, Kind kind)
{
    (void)uid;
    if (tracked_.count(token)) return;
    tracked_[token] = kind;
    sim_.schedule(holdLimit_, [this, token, kind] {
        if (tracked_.count(token)) revoke(token, kind);
    });
}

void
OneShotThrottler::noteReleased(os::TokenId token)
{
    tracked_.erase(token);
}

void
OneShotThrottler::revoke(os::TokenId token, Kind kind)
{
    ++revocations_;
    switch (kind) {
      case Kind::Power:
        server_.powerManager().suspend(token);
        break;
      case Kind::Gps:
        server_.locationManager().suspend(token);
        break;
      case Kind::Sensor:
        server_.sensorManager().suspend(token);
        break;
      case Kind::Wifi:
        server_.wifiManager().suspend(token);
        break;
    }
}

} // namespace leaseos::mitigation
