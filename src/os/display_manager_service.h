#ifndef LEASEOS_OS_DISPLAY_MANAGER_SERVICE_H
#define LEASEOS_OS_DISPLAY_MANAGER_SERVICE_H

/**
 * @file
 * Display policy (android DisplayManager/PowerManager display part).
 *
 * The panel is lit when the user wants it on (UserModel) OR an enabled
 * full wakelock forces it. Attribution: user-initiated screen time is
 * system power; forced screen time is billed to the forcing apps — that is
 * the 500+ mW signal in the ConnectBot/Standup Timer rows of Table 5.
 */

#include <functional>
#include <vector>

#include "os/service.h"
#include "power/screen_model.h"

namespace leaseos::os {

/**
 * Screen-state policy combining user intent and full wakelocks.
 */
class DisplayManagerService : public Service
{
  public:
    DisplayManagerService(sim::Simulator &sim, power::CpuModel &cpu,
                          power::ScreenModel &screen);

    /** User pressed power button / lock timeout (from env::UserModel). */
    void userSetScreen(bool on);

    /** Enabled full-wakelock owners (wired from PowerManagerService). */
    void setForcedOwners(std::vector<Uid> owners);

    void setBrightness(double b) { screen_.setBrightness(b); }

    bool screenOn() const { return screen_.isOn(); }
    bool userWantsOn() const { return userOn_; }

    /** Seconds the panel was on solely because apps forced it. */
    double forcedOnSeconds();

    /** Screen state change notification (doze idle detection). */
    void addStateListener(std::function<void(bool on)> fn);

  private:
    void advance();
    void apply();

    power::ScreenModel &screen_;
    bool userOn_ = false;
    std::vector<Uid> forcedOwners_;
    std::vector<std::function<void(bool)>> stateListeners_;
    bool lastOn_ = false;

    sim::Time lastAdvance_;
    double forcedOnSeconds_ = 0.0;
};

} // namespace leaseos::os

#endif // LEASEOS_OS_DISPLAY_MANAGER_SERVICE_H
