#ifndef LEASEOS_APPS_BUGGY_BOSTONBUSMAP_H
#define LEASEOS_APPS_BUGGY_BOSTONBUSMAP_H

/**
 * @file
 * BostonBusMap model (Table 5 row; commit 9fa09e7 "can't find location
 * message was still posted even if location manager was turned off"). The
 * map Activity finishes but its location subscription leaks and keeps the
 * receiver running → Long-Holding after the Activity dies.
 */

#include "apps/buggy/continuous_gps_app.h"

namespace leaseos::apps {

class BostonBusMap : public ContinuousGpsApp
{
  public:
    BostonBusMap(app::AppContext &ctx, Uid uid)
        : ContinuousGpsApp(ctx, uid, "BostonBusMap",
                           Params{sim::Time::fromSeconds(5.0), false,
                                  sim::Time::fromMillis(25), 0.5, true}) {}

    void
    start() override
    {
        // The user checks a bus, then leaves; the request outlives the
        // Activity (the leak).
        ctx_.activityManager().activityStarted(uid());
        ContinuousGpsApp::start();
        process_.post(sim::Time::fromSeconds(25.0), [this] {
            ctx_.activityManager().activityStopped(uid());
        });
    }
};

} // namespace leaseos::apps

#endif // LEASEOS_APPS_BUGGY_BOSTONBUSMAP_H
