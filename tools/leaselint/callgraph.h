#ifndef LEASELINT_CALLGRAPH_H
#define LEASELINT_CALLGRAPH_H

/**
 * @file
 * Pass 2 of the two-pass engine: linking per-file indexes into a
 * whole-repo view.
 *
 * RepoIndex is just the bag of FileIndexes; CallGraph flattens every
 * FuncDef into a global FuncId space and resolves every CallSite to
 * candidate definitions by the callee's unqualified name. Resolution is
 * deliberately conservative (this is a linter, not a compiler):
 *
 *  1. definitions in the same file win;
 *  2. else definitions in the same unit (path stem, i.e. the .h/.cc
 *     pair) win;
 *  3. else a repo-wide match is accepted only when it is unique —
 *     an ambiguous name (every app has a `start()`) stays unresolved
 *     rather than fusing unrelated apps into one call graph.
 *
 * Reachability queries are bounded-depth BFS over the resolved edges.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "leaselint/index.h"

namespace leaselint {

struct RepoIndex {
    std::vector<FileIndex> files;
};

/** "src/apps/buggy/torch.h" -> "src/apps/buggy/torch". */
std::string unitStem(const std::string &path);

using FuncId = std::uint32_t;
inline constexpr FuncId kInvalidFunc = 0xffffffffu;

class CallGraph
{
  public:
    explicit CallGraph(const RepoIndex &repo);

    std::size_t funcCount() const { return defs_.size(); }

    const FuncDef &def(FuncId id) const;
    /** Index of the file defining @p id, into RepoIndex::files. */
    std::uint32_t fileOf(FuncId id) const { return fileOf_[id]; }
    /** Unit stem of the defining file. */
    const std::string &unitOf(FuncId id) const;

    /** Global id of funcs[funcIdx] in files[fileIdx]. */
    FuncId funcId(std::uint32_t fileIdx, std::uint32_t funcIdx) const;

    /** Resolved callees of @p id (deduplicated, in call order). */
    const std::vector<FuncId> &callees(FuncId id) const;
    /** Resolved callers of @p id. */
    const std::vector<FuncId> &callers(FuncId id) const;

    /**
     * Last component of the qualified name ("Torch::start" -> "start").
     */
    static std::string unqualified(const std::string &name);

    /** True when @p id is a constructor or destructor ("X::X", "X::~X"). */
    static bool isStructorName(const std::string &qualifiedName);

    /**
     * Every function reachable from @p roots (inclusive) following
     * callee edges, to at most @p maxDepth hops.
     */
    std::vector<FuncId> reachableFrom(const std::vector<FuncId> &roots,
                                      std::size_t maxDepth = 8) const;

  private:
    const RepoIndex *repo_;
    std::vector<const FuncDef *> defs_;
    std::vector<std::uint32_t> fileOf_;
    std::vector<std::uint32_t> fileBase_; ///< first FuncId per file
    std::vector<std::string> units_;      ///< unit stem per file
    std::vector<std::vector<FuncId>> callees_;
    std::vector<std::vector<FuncId>> callers_;
};

} // namespace leaselint

#endif // LEASELINT_CALLGRAPH_H
