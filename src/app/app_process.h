#ifndef LEASEOS_APP_APP_PROCESS_H
#define LEASEOS_APP_APP_PROCESS_H

/**
 * @file
 * An app's execution context with CPU-sleep pause semantics.
 *
 * Android app code only runs while the CPU is awake. When a lease deferral
 * removes the last wakelock and the CPU deep-sleeps, pending app work
 * freezes and resumes on the next wake — §4.6's "the execution is paused
 * and will be resumed seamlessly later". AppProcess::post() implements
 * exactly that: the continuation fires at its scheduled time if the CPU is
 * awake, otherwise parks in the CPU's wake-waiter queue.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/ids.h"
#include "power/cpu_model.h"
#include "sim/simulator.h"

namespace leaseos::app {

/**
 * Pause-aware scheduling and CPU work for one app process.
 */
class AppProcess
{
  public:
    AppProcess(sim::Simulator &sim, power::CpuModel &cpu, Uid uid,
               std::string name);
    ~AppProcess();
    AppProcess(const AppProcess &) = delete;
    AppProcess &operator=(const AppProcess &) = delete;

    Uid uid() const { return uid_; }
    const std::string &name() const { return name_; }
    bool alive() const { return state_->alive; }

    /**
     * Run @p fn after @p delay of virtual time, but never while the CPU
     * sleeps: if asleep at the due time, @p fn waits for the next wake.
     * Work posted by a dead process is dropped.
     */
    void post(sim::Time delay, std::function<void()> fn);

    /** post() with zero delay. */
    void postNow(std::function<void()> fn);

    /**
     * Burn CPU: @p load cores for @p duration, attributed to this uid.
     * The device profile's perfFactor is NOT applied here — callers
     * expressing "an amount of computation" should use computeScaled().
     */
    void compute(double load, sim::Time duration);

    /**
     * Burn the CPU time that a unit of work costs on *this* device:
     * duration scaled by 1/perfFactor so slow phones take longer.
     */
    void computeScaled(double load, sim::Time referenceDuration);

    /** Kill the process; pending posts are dropped. */
    void kill();

  private:
    /**
     * The shared context queued closures capture: the CPU handle and the
     * liveness flag in a single shared_ptr (16 bytes in the capture), so a
     * posted continuation — this struct plus the user's std::function —
     * fits sim::InlineCallback's inline storage exactly and scheduling a
     * post never allocates.
     */
    struct State {
        power::CpuModel &cpu;
        bool alive = true;
    };

    sim::Simulator &sim_;
    Uid uid_;
    std::string name_;
    /** Shared so queued closures see kill() after destruction. */
    std::shared_ptr<State> state_;
};

} // namespace leaseos::app

#endif // LEASEOS_APP_APP_PROCESS_H
