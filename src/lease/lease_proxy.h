#ifndef LEASEOS_LEASE_LEASE_PROXY_H
#define LEASEOS_LEASE_LEASE_PROXY_H

/**
 * @file
 * Generic lease proxy (§4.4, §6).
 *
 * A proxy is the lease manager's light-weight delegate living inside one
 * OS subsystem's address space. It watches that subsystem's kernel-object
 * lifecycle, forwards lease operations (create / noteEvent / remove) to
 * the manager over the (modelled) IPC channel, caches the kernel-object →
 * lease-descriptor mapping, and applies the manager's decisions to the
 * kernel objects directly via onExpire/onRenew.
 *
 * §6: "Much of the logic for different lease proxies is the same... This
 * common logic is provided via a generic lease proxy class." Subclasses
 * implement the resource-specific parts: how to suspend/restore the kernel
 * object, and how to compute a term's LeaseStat from service counters.
 */

#include <map>

#include "lease/lease.h"
#include "lease/lease_stat.h"
#include "lease/resource_type.h"
#include "os/resource_listener.h"

namespace leaseos::lease {

class LeaseManagerService;

/**
 * Base class providing the common proxy logic.
 */
class LeaseProxy : public os::ResourceListener
{
  public:
    explicit LeaseProxy(ResourceType rtype) : rtype_(rtype) {}
    ~LeaseProxy() override = default;

    ResourceType rtype() const { return rtype_; }

    /** Wired by LeaseManagerService::registerProxy. */
    void attach(LeaseManagerService *manager) { manager_ = manager; }
    void detach() { manager_ = nullptr; }
    bool attached() const { return manager_ != nullptr; }

    // ---- Manager-facing callbacks (invoked on lease decisions) ---------

    /** Term deferred: temporarily revoke the kernel resource. */
    virtual void onExpire(const Lease &lease) = 0;

    /** Deferral over / lease renewed: restore the kernel resource. */
    virtual void onRenew(const Lease &lease) = 0;

    /** Does the app still hold the backing resource right now? */
    virtual bool resourceHeld(const Lease &lease) = 0;

    /** A new term begins: snapshot service counters. */
    virtual void beginTerm(const Lease &lease) = 0;

    /** Term over: compute the term's stats from counter deltas. */
    virtual LeaseStat collectStat(const Lease &lease) = 0;

    // ---- ResourceListener: generic forwarding to the manager ------------

    void onCreated(os::TokenId token, Uid uid) override;
    void onAcquired(os::TokenId token, Uid uid) override;
    void onReleased(os::TokenId token, Uid uid) override;
    void onDestroyed(os::TokenId token, Uid uid) override;

  protected:
    /** Proxy-local cache of kernel object → lease descriptor (§4.4). */
    LeaseId leaseFor(os::TokenId token) const;

    LeaseManagerService *manager_ = nullptr;
    std::map<os::TokenId, LeaseId> leaseByToken_;

  private:
    ResourceType rtype_;
};

} // namespace leaseos::lease

#endif // LEASEOS_LEASE_LEASE_PROXY_H
