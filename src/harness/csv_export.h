#ifndef LEASEOS_HARNESS_CSV_EXPORT_H
#define LEASEOS_HARNESS_CSV_EXPORT_H

/**
 * @file
 * Optional CSV export for figure data.
 *
 * The bench binaries print text figures; when the LEASEOS_OUT environment
 * variable names a directory they additionally drop the raw series there
 * as CSV for external plotting.
 */

#include <string>
#include <vector>

#include "sim/time_series.h"

namespace leaseos::harness {

/** Directory from $LEASEOS_OUT, or empty when export is disabled. */
std::string csvOutputDir();

/**
 * Write @p series as "<dir>/<name>.csv" when export is enabled.
 * @retval true if a file was written.
 */
bool maybeWriteCsv(const std::string &name, const sim::TimeSeries &series);

/** Multi-series variant: one shared time column per row. */
bool maybeWriteCsv(const std::string &name,
                   const std::vector<const sim::TimeSeries *> &series);

} // namespace leaseos::harness

#endif // LEASEOS_HARNESS_CSV_EXPORT_H
