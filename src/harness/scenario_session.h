#ifndef LEASEOS_HARNESS_SCENARIO_SESSION_H
#define LEASEOS_HARNESS_SCENARIO_SESSION_H

/**
 * @file
 * One in-flight scenario run, advanceable in time slices (DESIGN.md §11).
 *
 * ScenarioSession is the unit both execution engines drive:
 *
 *  - runScenario() constructs one and advances it to the full duration in
 *    a single call — the single-shot baseline;
 *  - ShardedRunner constructs one per spec and advances it slice by
 *    slice, handing the *live* session between worker threads (pending
 *    event closures cannot be serialized, so migration — not
 *    restore-from-blob — is how a long scenario crosses workers).
 *
 * Checkpoint blobs are emitted whenever the clock reaches a multiple of
 * RunSpec::checkpointEvery, regardless of how advanceTo() calls slice the
 * timeline; since equal device state serializes to byte-identical blobs,
 * the digests double as a cheap proof that sliced execution matched the
 * single shot.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "harness/device.h"
#include "harness/runner.h"
#include "harness/telemetry_scope.h"

namespace leaseos::harness {

/**
 * A scenario mid-run: device, telemetry sinks, and checkpoint cursor.
 */
class ScenarioSession
{
  public:
    /**
     * Build the device, run RunSpec::setup, install apps, start the
     * device, and run RunSpec::postStart — everything up to the first
     * advance of virtual time. The calling thread becomes the bound
     * thread (thread-local telemetry is installed on it).
     */
    ScenarioSession(const RunSpec &spec, const DeviceConfig &config);

    ~ScenarioSession();
    ScenarioSession(const ScenarioSession &) = delete;
    ScenarioSession &operator=(const ScenarioSession &) = delete;

    /**
     * Run virtual time forward to @p target (absolute; clamped to the
     * spec duration), emitting a checkpoint at every multiple of
     * checkpointEvery crossed on the way. Caller must be bound.
     */
    void advanceTo(sim::Time target);

    /** Current virtual time. */
    sim::Time now() const { return device_->simulator().now(); }

    /** True once the clock has reached the spec duration. */
    bool done() const { return now() >= spec_->duration; }

    /**
     * Collect the RunResult (identical to what runScenario() returns,
     * RunResult::specIndex aside) and tear the session down — the device
     * is destroyed and the telemetry sinks drained. Call exactly once,
     * after advancing to the full duration, on the bound thread.
     */
    RunResult finish();

    /**
     * Thread-handoff hooks: unbind() on the worker that just finished a
     * slice, bind() on the worker about to run the next one. The
     * telemetry sinks and the device's own thread-local hooks (flight
     * recorder, checked-build oracle) move together.
     */
    void bind();
    void unbind();

    const RunSpec &spec() const { return *spec_; }

  private:
    void emitCheckpoint();

    const RunSpec *spec_;
    DeviceConfig config_;
    std::unique_ptr<TelemetryScope> telemetry_;
    std::unique_ptr<Device> device_;
    std::vector<Uid> uids_;
    sim::PeriodicHandle glanceTick_;
    std::vector<RunResult::CheckpointStat> checkpoints_;
};

} // namespace leaseos::harness

#endif // LEASEOS_HARNESS_SCENARIO_SESSION_H
