#include "obs/trace.h"

#include <cassert>

namespace leaseos::obs {

namespace {

thread_local TraceBuffer *t_current = nullptr;

std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t cap = 1;
    while (cap < n) cap <<= 1;
    return cap;
}

} // namespace

const char *
traceCategoryName(TraceCategory cat)
{
    switch (cat) {
    case TraceCategory::Lease: return "lease";
    case TraceCategory::Proxy: return "proxy";
    case TraceCategory::Classifier: return "classifier";
    case TraceCategory::Utility: return "utility";
    case TraceCategory::Queue: return "queue";
    case TraceCategory::Power: return "power";
    }
    return "?";
}

const char *
traceCodeName(TraceCode code)
{
    switch (code) {
    case TraceCode::LeaseCreated: return "lease_created";
    case TraceCode::LeaseToActive: return "to_active";
    case TraceCode::LeaseToInactive: return "to_inactive";
    case TraceCode::LeaseToDeferred: return "to_deferred";
    case TraceCode::LeaseToDead: return "to_dead";
    case TraceCode::ProxyGrant: return "grant";
    case TraceCode::ProxyDeny: return "deny";
    case TraceCode::ProxyDefer: return "defer";
    case TraceCode::ClassifyNormal: return "classify_normal";
    case TraceCode::ClassifyFrequentAsk: return "classify_fab";
    case TraceCode::ClassifyLongHolding: return "classify_lhb";
    case TraceCode::ClassifyLowUtility: return "classify_lub";
    case TraceCode::ClassifyExcessiveUse: return "classify_eub";
    case TraceCode::UtilityCharge: return "utility_charge";
    case TraceCode::QueueSchedule: return "schedule";
    case TraceCode::QueueCancel: return "cancel";
    case TraceCode::QueueFire: return "fire";
    case TraceCode::PowerSync: return "power_sync";
    }
    return "?";
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : ring_(roundUpPow2(capacity == 0 ? 1 : capacity)),
      mask_(ring_.size() - 1)
{
}

TraceBuffer::~TraceBuffer()
{
    if (installed_) uninstall();
}

void
TraceBuffer::install()
{
    assert(!installed_ && "trace buffer installed twice");
    previous_ = t_current;
    t_current = this;
    installed_ = true;
}

void
TraceBuffer::uninstall()
{
    assert(installed_ && t_current == this);
    t_current = previous_;
    previous_ = nullptr;
    installed_ = false;
}

TraceBuffer *
TraceBuffer::current()
{
    return t_current;
}

} // namespace leaseos::obs
