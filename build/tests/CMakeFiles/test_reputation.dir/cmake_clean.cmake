file(REMOVE_RECURSE
  "CMakeFiles/test_reputation.dir/lease/test_reputation.cc.o"
  "CMakeFiles/test_reputation.dir/lease/test_reputation.cc.o.d"
  "test_reputation"
  "test_reputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
