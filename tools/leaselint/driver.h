#ifndef LEASELINT_DRIVER_H
#define LEASELINT_DRIVER_H

/**
 * @file
 * The lint driver: file discovery, the two-pass rule run, and central
 * suppression filtering. Split from main() so the unit tests can run the
 * full pipeline over in-memory sources.
 */

#include <string>
#include <vector>

#include "leaselint/rule.h"

namespace leaselint {

struct LintOptions {
    /** Repository root; scanned paths and findings are relative to it. */
    std::string root = ".";
    /** Root-relative directories/files to lint (default: the repo). */
    std::vector<std::string> paths = {"src", "bench", "examples", "tools",
                                      "tests"};
    /** Rule names to run (empty = all). */
    std::vector<std::string> rules;
};

struct LintReport {
    std::vector<Finding> findings; ///< surviving (unsuppressed) findings
    std::size_t suppressed = 0;    ///< findings silenced by allow()
    std::size_t filesScanned = 0;
};

/** Run @p rules over @p files (already loaded). */
LintReport runLint(const std::vector<SourceFile> &files,
                   std::vector<std::unique_ptr<Rule>> rules);

/** Discover files under options.root and run the selected rules. */
LintReport runLint(const LintOptions &options);

/** Render one finding as "path:line: [rule] message". */
std::string formatFinding(const Finding &finding);

} // namespace leaselint

#endif // LEASELINT_DRIVER_H
