#include "lease/proxies/screen_proxy.h"

#include "lease/utility/generic_utility.h"

namespace leaseos::lease {

ScreenLeaseProxy::ScreenLeaseProxy(os::PowerManagerService &pms,
                                   os::ActivityManagerService &am)
    : LeaseProxy(ResourceType::Screen), pms_(pms), am_(am)
{
    pms_.addListener(this);
}

bool
ScreenLeaseProxy::mine(os::TokenId token) const
{
    return pms_.typeOf(token) == os::WakeLockType::Full;
}

void
ScreenLeaseProxy::onCreated(os::TokenId token, Uid uid)
{
    if (mine(token)) LeaseProxy::onCreated(token, uid);
}

void
ScreenLeaseProxy::onAcquired(os::TokenId token, Uid uid)
{
    if (mine(token)) LeaseProxy::onAcquired(token, uid);
}

void
ScreenLeaseProxy::onReleased(os::TokenId token, Uid uid)
{
    if (mine(token)) LeaseProxy::onReleased(token, uid);
}

void
ScreenLeaseProxy::onDestroyed(os::TokenId token, Uid uid)
{
    LeaseProxy::onDestroyed(token, uid);
}

void
ScreenLeaseProxy::onExpire(const Lease &lease)
{
    pms_.suspend(lease.token);
}

void
ScreenLeaseProxy::onRenew(const Lease &lease)
{
    pms_.restore(lease.token);
}

bool
ScreenLeaseProxy::resourceHeld(const Lease &lease)
{
    return pms_.isHeld(lease.token);
}

ScreenLeaseProxy::Snapshot
ScreenLeaseProxy::snapshot(const Lease &lease)
{
    Snapshot s;
    s.enabledSeconds = pms_.enabledSecondsForToken(lease.token);
    s.activitySeconds = am_.activityAliveSeconds(lease.uid);
    s.uiUpdates = am_.uiUpdateCount(lease.uid);
    s.interactions = am_.userInteractionCount(lease.uid);
    s.acquires = pms_.acquireCount(lease.uid);
    return s;
}

void
ScreenLeaseProxy::beginTerm(const Lease &lease)
{
    snapshots_[lease.id] = snapshot(lease);
}

LeaseStat
ScreenLeaseProxy::collectStat(const Lease &lease)
{
    Snapshot start = snapshots_[lease.id];
    Snapshot now = snapshot(lease);

    LeaseStat stat;
    stat.termStart = lease.termStart;
    stat.termEnd = lease.termStart + lease.termLength;
    stat.holdingSeconds = now.enabledSeconds - start.enabledSeconds;
    stat.usageSeconds = now.activitySeconds - start.activitySeconds;
    stat.uiUpdates = now.uiUpdates - start.uiUpdates;
    stat.interactions = now.interactions - start.interactions;
    stat.acquires = now.acquires - start.acquires;
    stat.heldAtTermEnd = pms_.isHeld(lease.token);

    utility::Signals signals;
    signals.termSeconds = stat.termSeconds();
    signals.usageSeconds = stat.usageSeconds;
    signals.uiUpdates = stat.uiUpdates;
    signals.interactions = stat.interactions;
    stat.utilityScore = utility::genericScore(ResourceType::Screen, signals);
    return stat;
}

} // namespace leaseos::lease
