/**
 * @file
 * Reproduces Table 2: prevalence of each misbehaviour type across the
 * §2.5 study of 109 real-world cases in 81 apps, recomputed from the
 * encoded corpus, plus Findings 1 and 2.
 */

#include <iostream>

#include "harness/figure.h"
#include "harness/study/misbehavior_study.h"
#include "harness/table.h"

using namespace leaseos;
using namespace leaseos::harness;

int
main()
{
    std::cout << figureHeader(
        "Table 2",
        "Prevalence of each type of energy misbehaviour in 109 real-world "
        "cases (" + std::to_string(study::distinctApps()) +
            " apps). Cells recomputed from the encoded study corpus.");

    auto counts = study::summarize();
    int total_cases = static_cast<int>(study::corpus().size());

    TextTable table({"Type", "Bug", "Config.", "Enhance.", "N/A", "Total",
                     "Pct."});
    const study::CaseType types[] = {
        study::CaseType::FAB, study::CaseType::LHB, study::CaseType::LUB,
        study::CaseType::EUB, study::CaseType::Unknown};
    const study::RootCause causes[] = {
        study::RootCause::Bug, study::RootCause::Configuration,
        study::RootCause::Enhancement, study::RootCause::Unknown};

    for (auto type : types) {
        std::vector<std::string> row{study::caseTypeName(type)};
        int row_total = 0;
        for (auto cause : causes) {
            int n = counts[type][cause];
            row_total += n;
            row.push_back(std::to_string(n));
        }
        row.push_back(std::to_string(row_total));
        row.push_back(TextTable::pct(100.0 * row_total / total_cases, 0));
        table.addRow(std::move(row));
    }
    std::cout << table.toString();

    auto f1 = study::finding1();
    auto f2 = study::finding2();
    std::cout << "\nFinding 1: FAB+LHB+LUB occupy "
              << TextTable::pct(f1.defectSharePct, 0) << " of cases; EUB "
              << TextTable::pct(f1.eubSharePct, 0)
              << " (paper: 58% / 31%).\n";
    std::cout << "Finding 2: " << TextTable::pct(f2.defectBugSharePct, 0)
              << " of FAB/LHB/LUB are clear bugs; "
              << TextTable::pct(f2.eubNonBugSharePct, 0)
              << " of EUB are design trade-offs (paper: 80% / 77%).\n";
    return 0;
}
