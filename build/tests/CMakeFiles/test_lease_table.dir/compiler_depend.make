# Empty compiler generated dependencies file for test_lease_table.
# This may be replaced when dependencies are built.
