/**
 * @file
 * Unit tests for Battery and PowerProfiler.
 */

#include <gtest/gtest.h>

#include "power/battery.h"
#include "power/power_profiler.h"

namespace leaseos::power {
namespace {

using sim::operator""_s;
using sim::operator""_ms;

constexpr Uid kApp = kFirstAppUid;

TEST(BatteryTest, DrainsWithAccountant)
{
    sim::Simulator sim;
    EnergyAccountant acc(sim);
    DeviceProfile p = profiles::pixelXl();
    Battery battery(acc, p);
    ChannelId ch = acc.makeChannel("x");
    acc.setPower(ch, 1000.0, {kApp});
    sim.runFor(10_s);
    EXPECT_DOUBLE_EQ(battery.drainedMj(), 10000.0);
    EXPECT_LT(battery.remainingFraction(), 1.0);
    EXPECT_FALSE(battery.empty());
}

TEST(BatteryTest, ProjectedLifeMatchesDraw)
{
    sim::Simulator sim;
    EnergyAccountant acc(sim);
    DeviceProfile p = profiles::pixelXl();
    Battery battery(acc, p);
    ChannelId ch = acc.makeChannel("x");
    acc.setPower(ch, 1000.0, {kApp});
    sim::Time life = battery.projectedLife();
    EXPECT_NEAR(life.seconds(), p.batteryEnergyMj() / 1000.0, 1.0);
}

TEST(BatteryTest, ProjectedLifeInfiniteAtZeroDraw)
{
    sim::Simulator sim;
    EnergyAccountant acc(sim);
    Battery battery(acc, profiles::pixelXl());
    EXPECT_EQ(battery.projectedLife(), sim::Time::max());
}

TEST(BatteryTest, RechargeResetsBaseline)
{
    sim::Simulator sim;
    EnergyAccountant acc(sim);
    Battery battery(acc, profiles::pixelXl());
    ChannelId ch = acc.makeChannel("x");
    acc.setPower(ch, 500.0, {kApp});
    sim.runFor(10_s);
    battery.recharge();
    EXPECT_DOUBLE_EQ(battery.drainedMj(), 0.0);
}

TEST(PowerProfilerTest, SamplesAveragePower)
{
    sim::Simulator sim;
    EnergyAccountant acc(sim);
    PowerProfiler profiler(sim, acc, 100_ms);
    profiler.watchUid(kApp);
    ChannelId ch = acc.makeChannel("x");
    acc.setPower(ch, 200.0, {kApp});
    profiler.start();
    sim.runFor(10_s);
    EXPECT_NEAR(profiler.averageUidPowerMw(kApp), 200.0, 1e-6);
    EXPECT_NEAR(profiler.averageTotalPowerMw(), 200.0, 1e-6);
    EXPECT_EQ(profiler.totalSeries().size(), 100u);
}

TEST(PowerProfilerTest, CapturesPowerChanges)
{
    sim::Simulator sim;
    EnergyAccountant acc(sim);
    PowerProfiler profiler(sim, acc, 1_s);
    profiler.watchUid(kApp);
    ChannelId ch = acc.makeChannel("x");
    profiler.start();
    acc.setPower(ch, 100.0, {kApp});
    sim.runFor(5_s);
    acc.setPower(ch, 0.0, {kApp});
    sim.runFor(5_s);
    EXPECT_NEAR(profiler.averageUidPowerMw(kApp), 50.0, 1e-6);
    const auto &series = profiler.uidSeries(kApp);
    EXPECT_NEAR(series.points().front().value, 100.0, 1e-6);
    EXPECT_NEAR(series.points().back().value, 0.0, 1e-6);
}

TEST(PowerProfilerTest, UnwatchedUidThrows)
{
    sim::Simulator sim;
    EnergyAccountant acc(sim);
    PowerProfiler profiler(sim, acc, 1_s);
    EXPECT_THROW(profiler.uidSeries(kApp), std::out_of_range);
}

TEST(PowerProfilerTest, StopHaltsSampling)
{
    sim::Simulator sim;
    EnergyAccountant acc(sim);
    PowerProfiler profiler(sim, acc, 1_s);
    profiler.start();
    sim.runFor(3_s);
    profiler.stop();
    sim.runFor(3_s);
    EXPECT_LE(profiler.totalSeries().size(), 4u);
}

TEST(PowerProfilerTest, StopCancelsThePendingTickImmediately)
{
    // Regression: the legacy periodic left its next occurrence in the
    // queue after stop() (the cooperative flag only took effect when the
    // zombie event fired), so a "stopped" profiler still owned a pending
    // event — a stale-id hazard and a drain blocker for run-to-empty.
    sim::Simulator sim;
    EnergyAccountant acc(sim);
    PowerProfiler profiler(sim, acc, 1_s);
    profiler.start();
    sim.runFor(3_s);
    EXPECT_EQ(profiler.totalSeries().size(), 3u);
    profiler.stop();
    EXPECT_EQ(sim.pendingEvents(), 0u)
        << "stop() must cancel the pending sampling tick";
    EXPECT_EQ(sim.run(), 3_s) << "queue drains at the stop point";
    // And the profiler is restartable afterwards.
    profiler.start();
    sim.runFor(2_s);
    EXPECT_EQ(profiler.totalSeries().size(), 5u);
    EXPECT_EQ(sim.pendingEvents(), 1u);
}

} // namespace
} // namespace leaseos::power
