file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_mitigation.dir/bench/bench_table5_mitigation.cc.o"
  "CMakeFiles/bench_table5_mitigation.dir/bench/bench_table5_mitigation.cc.o.d"
  "bench/bench_table5_mitigation"
  "bench/bench_table5_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
