#include "harness/scenario_session.h"

#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>

#include "sim/checkpoint.h"

namespace leaseos::harness {

namespace {

/** The frame's stored payload digest (header offset 24, LE). */
std::uint64_t
frameDigest(const std::vector<std::uint8_t> &blob)
{
    std::uint64_t d = 0;
    for (std::size_t i = 0; i < 8; ++i)
        d |= static_cast<std::uint64_t>(blob[24 + i]) << (8 * i);
    return d;
}

/** Run names ("w/o lease") become filesystem-safe blob stems. */
std::string
sanitizeName(const std::string &name)
{
    std::string out = name.empty() ? "run" : name;
    for (char &c : out) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                  c == '.';
        if (!ok) c = '-';
    }
    return out;
}

} // namespace

ScenarioSession::ScenarioSession(const RunSpec &spec,
                                 const DeviceConfig &config)
    : spec_(&spec), config_(config)
{
    // Sinks first: components cache MetricRegistry::current() at
    // construction, so the registry must be installed before the Device
    // is built.
    telemetry_ = std::make_unique<TelemetryScope>(spec);
    device_ = std::make_unique<Device>(config_);

    for (const auto &fn : spec.setup) fn(*device_);

    uids_.reserve(spec.apps.size());
    for (const auto &installFn : spec.apps)
        uids_.push_back(installFn(*device_).uid());

    if (spec.userGlances)
        glanceTick_ = installGlanceScript(*device_, spec.glanceInterval,
                                          spec.glanceLength);

    device_->start();
    for (const auto &fn : spec.postStart) fn(*device_);
}

ScenarioSession::~ScenarioSession()
{
    // An abandoned session (error path) tears down in slice order:
    // glance handle before the simulator it points into.
    glanceTick_.cancel();
    device_.reset();
    telemetry_.reset();
}

void
ScenarioSession::advanceTo(sim::Time target)
{
    if (target > spec_->duration) target = spec_->duration;
    auto &sim = device_->simulator();
    sim::Time every = spec_->checkpointEvery;
    while (sim.now() < target) {
        sim::Time next = target;
        if (every.nanos() > 0) {
            // Next multiple of `every` strictly after now.
            std::int64_t k = sim.now().nanos() / every.nanos() + 1;
            sim::Time boundary = sim::Time::fromNanos(k * every.nanos());
            if (boundary < next) next = boundary;
        }
        sim.run(next);
        if (every.nanos() > 0 && sim.now().nanos() % every.nanos() == 0)
            emitCheckpoint();
    }
}

void
ScenarioSession::emitCheckpoint()
{
    std::vector<std::uint8_t> blob = device_->saveCheckpoint();
    RunResult::CheckpointStat stat;
    stat.timeNanos = device_->simulator().now().nanos();
    stat.sizeBytes = blob.size();
    stat.digest = frameDigest(blob);
    checkpoints_.push_back(stat);
    if (!spec_->checkpointDir.empty()) {
        std::error_code ec; // best-effort, like the write warning below
        std::filesystem::create_directories(spec_->checkpointDir, ec);
        std::string path = spec_->checkpointDir + "/" +
                           sanitizeName(spec_->name) + "-ckpt-" +
                           std::to_string(checkpoints_.size() - 1) +
                           ".ckpt";
        if (!sim::writeCheckpointFile(path, blob))
            std::fprintf(stderr, "warning: cannot write checkpoint %s\n",
                         path.c_str());
    }
}

RunResult
ScenarioSession::finish()
{
    const RunSpec &spec = *spec_;
    RunResult result;
    result.name = spec.name;
    result.seed = config_.seed;
    if (!uids_.empty())
        result.appPowerMw = device_->appPowerMw(uids_.front());
    for (Uid uid : uids_)
        result.perAppPowerMw.push_back(device_->appPowerMw(uid));
    result.systemPowerMw = device_->profiler().averageTotalPowerMw();

    if (auto *leaseos = device_->leaseos()) {
        auto &mgr = leaseos->manager();
        result.deferrals = mgr.totalDeferrals();
        result.termChecks = mgr.termChecks();
        result.leasesCreated = mgr.totalCreated();
        for (lease::BehaviorType b :
             {lease::BehaviorType::Normal, lease::BehaviorType::FrequentAsk,
              lease::BehaviorType::LongHolding,
              lease::BehaviorType::LowUtility,
              lease::BehaviorType::ExcessiveUse}) {
            std::uint64_t n = mgr.behaviorCount(b);
            if (n > 0) result.behaviorCounts[b] = n;
        }
    }

    result.probes.reserve(spec.probes.size());
    for (const auto &[name, fn] : spec.probes)
        result.probes.emplace_back(name, fn(*device_));

    result.checkpoints = std::move(checkpoints_);
    checkpoints_.clear();

    telemetry_->finish(spec, result);

    // Tear down eagerly: the sharded runner keeps finished sessions
    // around until every spec completes, and a dead Device frees its
    // whole event queue + time series.
    glanceTick_.cancel();
    device_.reset();
    telemetry_.reset();
    return result;
}

void
ScenarioSession::bind()
{
    telemetry_->install();
    device_->bindToThread();
}

void
ScenarioSession::unbind()
{
    device_->unbindFromThread();
    telemetry_->uninstall();
}

} // namespace leaseos::harness
