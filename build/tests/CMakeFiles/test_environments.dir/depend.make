# Empty dependencies file for test_environments.
# This may be replaced when dependencies are built.
