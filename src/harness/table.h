#ifndef LEASEOS_HARNESS_TABLE_H
#define LEASEOS_HARNESS_TABLE_H

/**
 * @file
 * Aligned text-table rendering for the bench binaries.
 */

#include <string>
#include <vector>

namespace leaseos::harness {

/**
 * Simple column-aligned text table.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Insert a horizontal separator before the next row. */
    void addSeparator();

    std::string toString() const;

    std::size_t rows() const { return rows_.size(); }

    /** Format a double with fixed precision. */
    static std::string fmt(double v, int precision = 2);

    /** Format a percentage (value already in 0-100). */
    static std::string pct(double v, int precision = 2);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::size_t> separators_;
};

} // namespace leaseos::harness

#endif // LEASEOS_HARNESS_TABLE_H
