/**
 * @file
 * Reproduces Figure 13: LeaseOS's system power overhead under five
 * settings — (1) idle, screen off, stock apps; (2) screen on, popular
 * apps installed, no interaction; (3) using YouTube; (4) using 10 apps in
 * turn; (5) using 30 apps in turn — each 8 runs with different seeds,
 * with vs without the lease service.
 *
 * Expected shape: LeaseOS's overhead is negligible (<1 %), with slightly
 * larger variance (the lease accounting bursts).
 */

#include <iostream>

#include "apps/normal/generic_apps.h"
#include "apps/registry.h"
#include "harness/device.h"
#include "harness/figure.h"
#include "harness/table.h"
#include "sim/stats.h"

using namespace leaseos;
using sim::operator""_s;
using sim::operator""_min;

namespace {

constexpr int kRuns = 8;

enum class Setting { Idle, NoInteraction, YouTube, TenApps, ThirtyApps };

const char *
settingName(Setting s)
{
    switch (s) {
      case Setting::Idle: return "Idle";
      case Setting::NoInteraction: return "No Interaction";
      case Setting::YouTube: return "Use YouTube";
      case Setting::TenApps: return "Use 10 apps";
      case Setting::ThirtyApps: return "Use 30 apps";
    }
    return "?";
}

double
runSetting(Setting setting, bool leased, std::uint64_t seed)
{
    harness::DeviceConfig cfg;
    cfg.mode = leased ? harness::MitigationMode::LeaseOS
                      : harness::MitigationMode::None;
    cfg.seed = seed;
    harness::Device device(cfg);

    switch (setting) {
      case Setting::Idle:
        // Screen off, only stock behaviour: nothing to install.
        break;
      case Setting::NoInteraction: {
        apps::installGenericFleet(device, 8);
        device.server().displayManager().userSetScreen(true);
        break;
      }
      case Setting::YouTube: {
        auto &yt = device.install<apps::GenericInteractiveApp>(
            apps::GenericKind::Video, "YouTube");
        device.user().scheduleSession(5_s, 29_min, {yt.uid()});
        break;
      }
      case Setting::TenApps: {
        auto fleet = apps::installGenericFleet(device, 10);
        std::vector<Uid> uids;
        for (auto *a : fleet) uids.push_back(a->uid());
        device.user().setAppSwitchInterval(2_min);
        device.user().scheduleSession(5_s, 29_min, uids);
        break;
      }
      case Setting::ThirtyApps: {
        auto fleet = apps::installGenericFleet(device, 30);
        std::vector<Uid> uids;
        for (auto *a : fleet) uids.push_back(a->uid());
        device.user().setAppSwitchInterval(50_s);
        device.user().scheduleSession(5_s, 29_min, uids);
        break;
      }
    }

    device.start();
    device.runFor(30_min);
    return device.profiler().averageTotalPowerMw();
}

} // namespace

int
main()
{
    std::cout << harness::figureHeader(
        "Figure 13",
        "System power consumption with vs without LeaseOS under five "
        "settings (8 seeded runs each; mean +/- stddev). Paper: overhead "
        "negligible (<1%), slightly larger variance with leases.");

    harness::TextTable table({"Setting", "w/o lease (mW)",
                              "with lease (mW)", "overhead"});
    for (Setting setting :
         {Setting::Idle, Setting::NoInteraction, Setting::YouTube,
          Setting::TenApps, Setting::ThirtyApps}) {
        sim::Accumulator vanilla;
        sim::Accumulator leased;
        for (int run = 0; run < kRuns; ++run) {
            std::uint64_t seed = 0xbeef + static_cast<std::uint64_t>(run);
            vanilla.record(runSetting(setting, false, seed));
            leased.record(runSetting(setting, true, seed));
        }
        double overhead_pct = vanilla.mean() > 0.0
            ? 100.0 * (leased.mean() - vanilla.mean()) / vanilla.mean()
            : 0.0;
        table.addRow(
            {settingName(setting),
             harness::TextTable::fmt(vanilla.mean()) + " +/- " +
                 harness::TextTable::fmt(vanilla.stddev()),
             harness::TextTable::fmt(leased.mean()) + " +/- " +
                 harness::TextTable::fmt(leased.stddev()),
             harness::TextTable::pct(overhead_pct)});
        std::cerr << "[fig13] " << settingName(setting) << " done\n";
    }
    std::cout << table.toString();
    std::cout << "\nOverhead source: lease accounting CPU bursts "
                 "(create/check/update) on the system uid.\n";
    return 0;
}
