#include "obs/metric_registry.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace leaseos::obs {

namespace {

thread_local MetricRegistry *t_current = nullptr;

} // namespace

MetricRegistry::~MetricRegistry()
{
    if (installed_) uninstall();
}

MetricId
MetricRegistry::intern(std::string_view name, MetricKind kind,
                       std::uint32_t cellSpan, std::function<double()> fn)
{
    if (MetricId existing = find(name); existing != kInvalidMetricId) {
        if (slots_[existing].kind != kind)
            throw std::logic_error("metric '" + std::string(name) +
                                   "' re-registered with a different kind");
        return existing;
    }

    MetricId id = static_cast<MetricId>(slots_.size());
    Slot slot;
    slot.kind = kind;
    slot.cell = static_cast<std::uint32_t>(cells_.size());
    for (std::uint32_t i = 0; i < cellSpan; ++i) cells_.emplace_back();
    if (fn) {
        slot.fn = static_cast<std::int32_t>(fns_.size());
        fns_.push_back(std::move(fn));
    }
    slots_.push_back(slot);
    names_.emplace_back(name);

    auto pos = std::lower_bound(byName_.begin(), byName_.end(), name,
                                [&](MetricId a, std::string_view n) {
                                    return names_[a] < n;
                                });
    byName_.insert(pos, id);
    return id;
}

MetricId
MetricRegistry::counter(std::string_view name)
{
    return intern(name, MetricKind::Counter, 1, nullptr);
}

MetricId
MetricRegistry::gauge(std::string_view name)
{
    return intern(name, MetricKind::Gauge, 1, nullptr);
}

MetricId
MetricRegistry::histogram(std::string_view name)
{
    return intern(name, MetricKind::Histogram,
                  2 + static_cast<std::uint32_t>(kHistBuckets), nullptr);
}

MetricId
MetricRegistry::boundCounter(std::string_view name, std::function<double()> fn)
{
    return intern(name, MetricKind::BoundCounter, 0, std::move(fn));
}

MetricId
MetricRegistry::boundGauge(std::string_view name, std::function<double()> fn)
{
    return intern(name, MetricKind::BoundGauge, 0, std::move(fn));
}

double
MetricRegistry::value(MetricId id) const
{
    const Slot &slot = slots_[id];
    switch (slot.kind) {
    case MetricKind::Counter:
    case MetricKind::Gauge:
        return cells_[slot.cell].load();
    case MetricKind::Histogram:
        return cells_[slot.cell].load(); // observation count
    case MetricKind::BoundCounter:
    case MetricKind::BoundGauge:
        return fns_[static_cast<std::size_t>(slot.fn)]();
    }
    return 0.0;
}

std::uint64_t
MetricRegistry::histCount(MetricId id) const
{
    assert(slots_[id].kind == MetricKind::Histogram);
    return static_cast<std::uint64_t>(cells_[slots_[id].cell].load());
}

double
MetricRegistry::histSum(MetricId id) const
{
    assert(slots_[id].kind == MetricKind::Histogram);
    return cells_[slots_[id].cell + 1].load();
}

std::uint64_t
MetricRegistry::histBucket(MetricId id, int bucket) const
{
    assert(slots_[id].kind == MetricKind::Histogram);
    assert(bucket >= 0 && bucket < kHistBuckets);
    return static_cast<std::uint64_t>(
        cells_[slots_[id].cell + 2 + static_cast<std::uint32_t>(bucket)]
            .load());
}

double
MetricRegistry::histPercentile(MetricId id, double q) const
{
    assert(slots_[id].kind == MetricKind::Histogram);
    const std::uint64_t total = histCount(id);
    if (total == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Rank of the target observation, 1-based; q=0 maps to the first.
    double target = q * static_cast<double>(total);
    if (target < 1.0) target = 1.0;
    std::uint64_t seen = 0;
    for (int b = 0; b < kHistBuckets; ++b) {
        const std::uint64_t n = histBucket(id, b);
        if (n == 0) continue;
        if (static_cast<double>(seen) + static_cast<double>(n) >= target) {
            // Bucket 0 covers [0,1); bucket b >= 1 covers [2^(b-1), 2^b).
            const double lo =
                b == 0 ? 0.0
                       : static_cast<double>(std::uint64_t{1} << (b - 1));
            const double hi =
                b == 0 ? 1.0 : static_cast<double>(std::uint64_t{1} << b);
            const double frac =
                (target - static_cast<double>(seen)) / static_cast<double>(n);
            return lo + (hi - lo) * frac;
        }
        seen += n;
    }
    return 0.0; // unreachable: every observation lands in some bucket
}

int
MetricRegistry::bucketFor(double value) noexcept
{
    if (!(value >= 1.0)) return 0; // negatives and NaN land in bucket 0
    // Clamp before the integer cast: converting a double beyond the
    // target range is undefined, and anything >= 2^30 saturates into the
    // last bucket regardless.
    constexpr double kLast =
        static_cast<double>(std::uint64_t{1} << (kHistBuckets - 2));
    if (value >= kLast) return kHistBuckets - 1;
    std::uint64_t v = static_cast<std::uint64_t>(value);
    int b = std::bit_width(v); // [1,2) -> 1, [2,4) -> 2, ...
    return b < kHistBuckets ? b : kHistBuckets - 1;
}

MetricId
MetricRegistry::find(std::string_view name) const
{
    auto pos = std::lower_bound(byName_.begin(), byName_.end(), name,
                                [&](MetricId a, std::string_view n) {
                                    return names_[a] < n;
                                });
    if (pos != byName_.end() && names_[*pos] == name) return *pos;
    return kInvalidMetricId;
}

std::vector<std::pair<std::string, double>>
MetricRegistry::snapshot() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(slots_.size());
    for (MetricId id = 0; id < slots_.size(); ++id) {
        if (slots_[id].kind == MetricKind::Histogram) {
            out.emplace_back(names_[id] + ".count",
                             static_cast<double>(histCount(id)));
            out.emplace_back(names_[id] + ".sum", histSum(id));
            out.emplace_back(names_[id] + ".p50", histPercentile(id, 0.50));
            out.emplace_back(names_[id] + ".p90", histPercentile(id, 0.90));
            out.emplace_back(names_[id] + ".p99", histPercentile(id, 0.99));
        } else {
            out.emplace_back(names_[id], value(id));
        }
    }
    return out;
}

void
MetricRegistry::install()
{
    assert(!installed_ && "registry installed twice");
    previous_ = t_current;
    t_current = this;
    installed_ = true;
}

void
MetricRegistry::uninstall()
{
    assert(installed_ && t_current == this);
    t_current = previous_;
    previous_ = nullptr;
    installed_ = false;
}

MetricRegistry *
MetricRegistry::current()
{
    return t_current;
}

} // namespace leaseos::obs
