#ifndef LEASEOS_OS_SENSOR_MANAGER_SERVICE_H
#define LEASEOS_OS_SENSOR_MANAGER_SERVICE_H

/**
 * @file
 * Sensor listener management (android SensorService analog).
 *
 * Like GPS, sensors are subscription-style: apps register listeners at a
 * sampling rate and the OS invokes them. The TapAndTurn and Riot bugs in
 * Table 5 keep sensor listeners registered while producing no user-visible
 * value — the Low-Utility pattern the custom utility counter of Fig. 6
 * exists for.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "os/binder.h"
#include "os/resource_listener.h"
#include "os/service.h"
#include "power/sensor_model.h"

namespace leaseos::os {

/** App callback receiving sensor samples. */
class SensorEventListener
{
  public:
    virtual ~SensorEventListener() = default;
    virtual void onSensorEvent(power::SensorType type, double value) = 0;
};

/**
 * Sensor registration service with interposition hooks.
 */
class SensorManagerService : public Service
{
  public:
    /** Ground-truth reading source (from env::MotionModel). */
    using ReadingFn = std::function<double(power::SensorType, sim::Time)>;

    SensorManagerService(sim::Simulator &sim, power::CpuModel &cpu,
                         power::SensorModel &sensors,
                         TokenAllocator &tokens);

    void setReadingFn(ReadingFn fn) { readingFn_ = std::move(fn); }

    // ---- App-facing API ------------------------------------------------

    TokenId registerListener(Uid uid, power::SensorType type,
                             sim::Time rate, SensorEventListener *listener);
    void unregisterListener(TokenId token);
    void destroy(TokenId token);
    bool isActive(TokenId token) const;

    // ---- Interposition ---------------------------------------------------

    void suspend(TokenId token);
    void restore(TokenId token);
    bool isSuspended(TokenId token) const;
    bool isEnabled(TokenId token) const;
    void setGlobalFilter(std::function<bool(Uid)> filter);
    void refilter();
    void addListener(ResourceListener *listener);

    // ---- Metrics --------------------------------------------------------

    /** Time @p uid has had an enabled registration outstanding. */
    double registeredSeconds(Uid uid);
    std::uint64_t eventCount(Uid uid) const;
    Uid ownerOf(TokenId token) const;

    /** Listener registrations @p uid still has active (not unregistered). */
    std::vector<TokenId> activeRegistrations(Uid uid) const;

  private:
    struct Registration {
        Uid uid = kInvalidUid;
        power::SensorType type = power::SensorType::Accelerometer;
        sim::Time rate;
        SensorEventListener *listener = nullptr;
        bool active = false;
        bool suspended = false;
        bool enabled = false;
        bool tickScheduled = false;
    };

    void advance();
    void apply();
    bool allowedByFilter(Uid uid) const;
    void scheduleTick(TokenId token);
    void deliverTick(TokenId token);

    power::SensorModel &sensors_;
    TokenAllocator &tokens_;
    ReadingFn readingFn_;
    std::map<TokenId, Registration> regs_;
    std::function<bool(Uid)> filter_;
    std::vector<ResourceListener *> listeners_;

    /** Hardware registrations we currently hold, to diff on apply(). */
    std::map<TokenId, std::pair<power::SensorType, Uid>> hwRegs_;

    sim::Time lastAdvance_;
    std::map<Uid, double> registeredSeconds_;
    std::map<Uid, std::uint64_t> eventCount_;
};

} // namespace leaseos::os

#endif // LEASEOS_OS_SENSOR_MANAGER_SERVICE_H
