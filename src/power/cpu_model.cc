#include "power/cpu_model.h"

#include "power/checkpoint_io.h"

#include <algorithm>
#include <utility>

namespace leaseos::power {

namespace {

/** Find-or-append accumulator slot for @p uid (tables hold a few uids). */
double &
accum(common::InlineVec<std::pair<Uid, double>, 8> &table, Uid uid)
{
    for (auto &entry : table)
        if (entry.first == uid) return entry.second;
    return table.emplace_back(uid, 0.0).second;
}

} // namespace

CpuModel::CpuModel(sim::Simulator &sim, EnergyAccountant &accountant,
                   const DeviceProfile &profile)
    : PowerComponent(sim, accountant, profile, "cpu"),
      idleChannel_(accountant.makeChannel("cpu_idle")),
      busyChannel_(accountant.makeChannel("cpu_busy")),
      lastAdvance_(sim.now())
{
    updateWakeState();
    updatePower();
}

void
CpuModel::advance()
{
    sim::Time now = sim_.now();
    if (now <= lastAdvance_) {
        lastAdvance_ = now;
        return;
    }
    double dt = (now - lastAdvance_).seconds();
    if (awake_) {
        awakeSeconds_ += dt;
        double freq = currentFreq();
        for (const auto &[token, task] : tasks_) {
            accum(cpuSeconds_, task.uid) += task.load * dt;
            accum(normalizedCpuSeconds_, task.uid) += task.load * dt * freq;
        }
        if (dvfsEnabled_) {
            if (levelSeconds_.size() < profile_.dvfsLevels.size())
                levelSeconds_.resize(profile_.dvfsLevels.size(), 0.0);
            levelSeconds_[dvfsLevel_] += dt;
        }
    } else {
        asleepSeconds_ += dt;
    }
    lastAdvance_ = now;
}

void
CpuModel::updateWakeState()
{
    advance();
    bool awake = screenOn_ || wakeWindows_ > 0 ||
        !wakelockOwners_.empty() || !audioOwners_.empty();
    if (awake == awake_) return;
    awake_ = awake;
    for (const auto &fn : stateListeners_) fn(awake_);
    if (awake_) {
        // Flush paused app work. Waiters run as zero-delay events so the
        // wake transition completes before any app code runs.
        auto waiters = std::move(wakeWaiters_);
        wakeWaiters_.clear();
        for (auto &fn : waiters)
            sim_.schedule(sim::Time::zero(), std::move(fn));
    }
}

void
CpuModel::updatePower()
{
    if (!awake_) {
        accountant_.setPower(idleChannel_, profile_.cpuSleepMw,
                             {kSystemUid});
        accountant_.setPowerShares(
            busyChannel_, std::span<const std::pair<Uid, double>>{});
        return;
    }

    // Awake-idle baseline: attributed to whatever keeps the CPU awake.
    // Screen-on and wake windows are user/system initiated; wakelocks are
    // app-initiated. The wakelock attribution is the Table 5 "wasted
    // power" signal, so wakelock holders take the idle cost when the
    // screen is off. Sort + unique reproduces the old std::set ordering.
    if (!screenOn_ &&
        (!wakelockOwners_.empty() || !audioOwners_.empty())) {
        common::InlineVec<Uid, 8> owners;
        for (Uid u : wakelockOwners_) owners.push_back(u);
        for (Uid u : audioOwners_) owners.push_back(u);
        std::sort(owners.begin(), owners.end());
        Uid *last = std::unique(owners.begin(), owners.end());
        while (owners.end() != last) owners.pop_back();
        accountant_.setPower(idleChannel_, profile_.cpuIdleAwakeMw,
                             owners.span());
    } else {
        accountant_.setPower(idleChannel_, profile_.cpuIdleAwakeMw,
                             {kSystemUid});
    }

    // Busy power: per-task shares, total load capped at core count,
    // scaled by the DVFS operating point's power factor. Per-uid merging
    // accumulates in task (token) order and the final share list is
    // sorted by uid — both exactly as the old std::map produced, so the
    // accountant sees bit-identical shares in the same order.
    double total_load = currentLoad();
    double cap = static_cast<double>(profile_.cores);
    double scale = total_load > cap ? cap / total_load : 1.0;
    double per_core = profile_.cpuActivePerCoreMw * currentPowerFactor();
    common::InlineVec<std::pair<Uid, double>, 8> shares;
    for (const auto &[token, task] : tasks_)
        accum(shares, task.uid) += task.load * scale * per_core;
    std::sort(shares.begin(), shares.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    accountant_.setPowerShares(busyChannel_, shares.span());
}

void
CpuModel::setWakelockOwners(std::vector<Uid> owners)
{
    advance();
    wakelockOwners_ = std::move(owners);
    updateWakeState();
    updatePower();
}

void
CpuModel::setAudioSessionOwners(std::vector<Uid> owners)
{
    advance();
    audioOwners_ = std::move(owners);
    updateWakeState();
    updatePower();
}

void
CpuModel::setScreenOn(bool on)
{
    advance();
    screenOn_ = on;
    updateWakeState();
    updatePower();
}

void
CpuModel::addWakeWindow(sim::Time duration)
{
    advance();
    ++wakeWindows_;
    updateWakeState();
    updatePower();
    sim_.schedule(duration, [this] {
        advance();
        --wakeWindows_;
        updateWakeState();
        updatePower();
    });
}

CpuModel::WorkToken
CpuModel::beginWork(Uid uid, double load)
{
    advance();
    WorkToken token = nextToken_++;
    tasks_.emplace_back(token, Task{uid, std::max(0.0, load)});
    updateGovernor();
    updatePower();
    return token;
}

void
CpuModel::endWork(WorkToken token)
{
    advance();
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
        if (tasks_[i].first == token) {
            tasks_.erase(i);
            break;
        }
    }
    updateGovernor();
    updatePower();
}

void
CpuModel::runWorkFor(Uid uid, double load, sim::Time duration)
{
    WorkToken token = beginWork(uid, load);
    sim_.schedule(duration, [this, token] { endWork(token); });
}

double
CpuModel::currentLoad() const
{
    double load = 0.0;
    for (const auto &[token, task] : tasks_) load += task.load;
    return load;
}

void
CpuModel::notifyOnWake(sim::InlineCallback fn)
{
    if (awake_) {
        sim_.schedule(sim::Time::zero(), std::move(fn));
    } else {
        wakeWaiters_.push_back(std::move(fn));
    }
}

void
CpuModel::addStateListener(std::function<void(bool)> fn)
{
    stateListeners_.push_back(std::move(fn));
}

void
CpuModel::setDvfsEnabled(bool enabled)
{
    advance();
    dvfsEnabled_ = enabled && !profile_.dvfsLevels.empty();
    updateGovernor();
    updatePower();
}

double
CpuModel::currentFreq() const
{
    if (!dvfsEnabled_) return 1.0;
    return profile_.dvfsLevels[dvfsLevel_].freq;
}

double
CpuModel::currentPowerFactor() const
{
    if (!dvfsEnabled_) return 1.0;
    return profile_.dvfsLevels[dvfsLevel_].powerFactor;
}

void
CpuModel::updateGovernor()
{
    if (!dvfsEnabled_) return;
    // Ondemand-style: pick the lowest operating point whose frequency
    // covers the demanded load with ~30 % headroom.
    double demand = std::min(currentLoad(),
                             static_cast<double>(profile_.cores));
    double needed =
        demand / static_cast<double>(profile_.cores) * 1.3;
    std::size_t level = profile_.dvfsLevels.size() - 1;
    for (std::size_t i = 0; i < profile_.dvfsLevels.size(); ++i) {
        if (profile_.dvfsLevels[i].freq >= needed) {
            level = i;
            break;
        }
    }
    dvfsLevel_ = level;
}

double
CpuModel::levelSeconds(std::size_t level)
{
    advance();
    return level < levelSeconds_.size() ? levelSeconds_[level] : 0.0;
}

double
CpuModel::normalizedCpuSeconds(Uid uid)
{
    advance();
    for (const auto &[u, s] : normalizedCpuSeconds_)
        if (u == uid) return s;
    return 0.0;
}

double
CpuModel::cpuSeconds(Uid uid)
{
    advance();
    for (const auto &[u, s] : cpuSeconds_)
        if (u == uid) return s;
    return 0.0;
}

double
CpuModel::awakeSeconds()
{
    advance();
    return awakeSeconds_;
}

double
CpuModel::asleepSeconds()
{
    advance();
    return asleepSeconds_;
}


void
CpuModel::saveState(sim::CheckpointWriter &w) const
{
    w.beginSection("cpu", 1);
    ckpt::writeUids(w, wakelockOwners_);
    ckpt::writeUids(w, audioOwners_);
    w.u8(screenOn_ ? 1 : 0);
    w.i64(wakeWindows_);
    w.u8(awake_ ? 1 : 0);
    w.u64(tasks_.size());
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
        w.u64(tasks_[i].first);
        w.u32(static_cast<std::uint32_t>(tasks_[i].second.uid));
        w.f64(tasks_[i].second.load);
    }
    w.u64(nextToken_);
    w.u64(wakeWaiters_.size()); // diagnostics; closures, not capturable
    w.u8(dvfsEnabled_ ? 1 : 0);
    w.u64(dvfsLevel_);
    w.u64(levelSeconds_.size());
    for (double s : levelSeconds_) w.f64(s);
    w.time(lastAdvance_);
    auto writeUidDoubles =
        [&w](const common::InlineVec<std::pair<Uid, double>, 8> &v) {
            w.u64(v.size());
            for (std::size_t i = 0; i < v.size(); ++i) {
                w.u32(static_cast<std::uint32_t>(v[i].first));
                w.f64(v[i].second);
            }
        };
    writeUidDoubles(cpuSeconds_);
    writeUidDoubles(normalizedCpuSeconds_);
    w.f64(awakeSeconds_);
    w.f64(asleepSeconds_);
    w.endSection();
}

void
CpuModel::restoreState(sim::CheckpointReader &r)
{
    sim::requireSectionVersion("cpu", r.beginSection("cpu"), 1);
    wakelockOwners_ = ckpt::readUids(r);
    audioOwners_ = ckpt::readUids(r);
    screenOn_ = r.u8() != 0;
    wakeWindows_ = static_cast<int>(r.i64());
    awake_ = r.u8() != 0;
    std::uint64_t taskCount = r.u64();
    tasks_.clear();
    for (std::uint64_t i = 0; i < taskCount; ++i) {
        WorkToken token = r.u64();
        Uid uid = static_cast<Uid>(r.u32());
        double load = r.f64();
        tasks_.push_back({token, Task{uid, load}});
    }
    nextToken_ = r.u64();
    std::uint64_t waiterCount = r.u64();
    if (taskCount != 0 || waiterCount != 0)
        throw sim::CheckpointError(
            "cpu checkpoint carries in-flight work (" +
            std::to_string(taskCount) + " tasks, " +
            std::to_string(waiterCount) +
            " wake waiters); restore requires a quiescent boundary");
    dvfsEnabled_ = r.u8() != 0;
    dvfsLevel_ = r.u64();
    std::uint64_t levels = r.u64();
    levelSeconds_.assign(levels, 0.0);
    for (std::uint64_t i = 0; i < levels; ++i) levelSeconds_[i] = r.f64();
    lastAdvance_ = r.time();
    auto readUidDoubles =
        [&r](common::InlineVec<std::pair<Uid, double>, 8> &v) {
            v.clear();
            std::uint64_t n = r.u64();
            for (std::uint64_t i = 0; i < n; ++i) {
                Uid uid = static_cast<Uid>(r.u32());
                v.push_back({uid, r.f64()});
            }
        };
    readUidDoubles(cpuSeconds_);
    readUidDoubles(normalizedCpuSeconds_);
    awakeSeconds_ = r.f64();
    asleepSeconds_ = r.f64();
    r.endSection();
}

} // namespace leaseos::power
