#include "lease/lease_proxy.h"

#include "lease/lease_manager.h"

namespace leaseos::lease {

LeaseId
LeaseProxy::leaseFor(os::TokenId token) const
{
    auto it = leaseByToken_.find(token);
    return it == leaseByToken_.end() ? kInvalidLeaseId : it->second;
}

void
LeaseProxy::onCreated(os::TokenId token, Uid uid)
{
    if (!manager_) return;
    leaseByToken_[token] = manager_->create(rtype_, token, uid);
}

void
LeaseProxy::onAcquired(os::TokenId token, Uid uid)
{
    if (!manager_) return;
    LeaseId id = leaseFor(token);
    if (id == kInvalidLeaseId) {
        // Acquire on an object we never saw created (possible if the proxy
        // registered late): adopt it now.
        id = manager_->create(rtype_, token, uid);
        leaseByToken_[token] = id;
    }
    manager_->noteAcquire(id);
}

void
LeaseProxy::onReleased(os::TokenId token, Uid uid)
{
    (void)uid;
    if (!manager_) return;
    LeaseId id = leaseFor(token);
    if (id != kInvalidLeaseId) manager_->noteRelease(id);
}

void
LeaseProxy::onDestroyed(os::TokenId token, Uid uid)
{
    (void)uid;
    if (!manager_) return;
    LeaseId id = leaseFor(token);
    if (id != kInvalidLeaseId) {
        manager_->remove(id);
        leaseByToken_.erase(token);
    }
}

} // namespace leaseos::lease
