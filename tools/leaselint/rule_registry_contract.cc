/**
 * @file
 * registry-contract: MetricRegistry registration reachable from
 * post-construction / hot code.
 *
 * Registration (counter/gauge/histogram/boundCounter/boundGauge) is
 * explicitly single-threaded and allocating — the header says "do it
 * before workers start", and DESIGN.md §8's zero-allocation discipline
 * bans it from the steady state. The hot operations (add/set/observe)
 * are the only part meant to run per event.
 *
 * A registration call site is legal when every path to it starts in
 * construction or setup code. Concretely, a function is OK when it is:
 *  - a constructor or destructor ("X::X" / "X::~X"),
 *  - named with an init / setup / configure prefix, or main(),
 *  - defined outside src/ (tests, benches, and tools own their phases),
 *  - or ALL of its observed callers are OK (computed as a fixpoint over
 *    the call graph, so a helper called only from constructors — e.g.
 *    EnergyAccountant::makeChannel from the power-model constructor
 *    initializer lists — is fine).
 *
 * A src/ function with NO observed callers is assumed reachable from
 * anywhere and flagged: a public refresh()/poll() entry point that
 * registers on demand is exactly the bug this rule exists to catch.
 */

#include "leaselint/rules.h"

namespace leaselint {

namespace {

bool
baseLegal(const CallGraph &graph, const RepoIndex &repo, FuncId id)
{
    const FuncDef &def = graph.def(id);
    if (!underDir(repo.files[graph.fileOf(id)].path, "src")) return true;
    if (CallGraph::isStructorName(def.name)) return true;
    std::string name = CallGraph::unqualified(def.name);
    if (name == "main") return true;
    static const char *const kSetupPrefixes[] = {"init", "setup",
                                                 "configure"};
    for (const char *prefix : kSetupPrefixes)
        if (name.rfind(prefix, 0) == 0) return true;
    return false;
}

} // namespace

void
linkRegistryContract(const RepoIndex &repo, const CallGraph &graph,
                     std::vector<Finding> &out)
{
    enum State : char { Unknown = 0, Visiting, Ok, Bad };
    std::vector<char> state(graph.funcCount(), Unknown);

    // ok(id) = baseLegal(id) || (has callers && all callers ok); cycles
    // resolve optimistically (a recursive init helper stays legal).
    auto ok = [&](FuncId start) {
        std::vector<FuncId> stack{start};
        while (!stack.empty()) {
            FuncId id = stack.back();
            if (state[id] == Ok || state[id] == Bad) {
                stack.pop_back();
                continue;
            }
            if (baseLegal(graph, repo, id)) {
                state[id] = Ok;
                stack.pop_back();
                continue;
            }
            const std::vector<FuncId> &callers = graph.callers(id);
            if (callers.empty()) {
                state[id] = Bad;
                stack.pop_back();
                continue;
            }
            if (state[id] == Unknown) {
                state[id] = Visiting;
                for (FuncId caller : callers)
                    if (state[caller] == Unknown) stack.push_back(caller);
                continue;
            }
            // All callers settled (Visiting counts as Ok: optimistic on
            // cycles).
            bool allOk = true;
            for (FuncId caller : callers)
                if (state[caller] == Bad) allOk = false;
            state[id] = allOk ? Ok : Bad;
            stack.pop_back();
        }
        return state[start] == Ok;
    };

    auto firstBadCaller = [&](FuncId id) -> std::string {
        for (FuncId caller : graph.callers(id))
            if (state[caller] == Bad)
                return graph.def(caller).name + "()";
        return "no observed caller (assumed reachable from hot paths)";
    };

    for (std::uint32_t fi = 0; fi < repo.files.size(); ++fi) {
        const FileIndex &file = repo.files[fi];
        if (!underDir(file.path, "src")) continue;
        for (const RegSite &site : file.regs) {
            if (site.func == kNoFunc) {
                out.push_back(
                    {"registry-contract", file.path, site.line,
                     "MetricRegistry::" + site.methodName +
                         "() at file scope (static initializer): "
                         "registration order across translation units is "
                         "unspecified — register from a constructor or "
                         "init path instead"});
                continue;
            }
            FuncId id = graph.funcId(fi, site.func);
            if (ok(id)) continue;
            out.push_back(
                {"registry-contract", file.path, site.line,
                 "MetricRegistry::" + site.methodName +
                     "() reachable from post-construction code via " +
                     graph.def(id).name + "() [" + firstBadCaller(id) +
                     "]: registration allocates and is not thread-safe — "
                     "confine it to constructors or init/setup paths "
                     "(hot paths may only add/set/observe)"});
        }
    }
}

} // namespace leaselint
