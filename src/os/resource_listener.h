#ifndef LEASEOS_OS_RESOURCE_LISTENER_H
#define LEASEOS_OS_RESOURCE_LISTENER_H

/**
 * @file
 * Observer interface for kernel-object lifecycle events.
 *
 * Lease proxies (§4.4) interpose on the OS subsystems by watching the
 * kernel objects those subsystems manage. Every resource service publishes
 * the same four lifecycle events; a proxy translates them into lease
 * operations (create / noteEvent / remove) toward the lease manager.
 */

#include "common/ids.h"
#include "os/binder.h"

namespace leaseos::os {

/**
 * Lifecycle callbacks for one resource service's kernel objects.
 */
class ResourceListener
{
  public:
    virtual ~ResourceListener() = default;

    /** A kernel object came into existence (e.g. newWakeLock). */
    virtual void onCreated(TokenId token, Uid uid)
    {
        (void)token;
        (void)uid;
    }

    /** The app acquired / re-acquired the resource. */
    virtual void onAcquired(TokenId token, Uid uid)
    {
        (void)token;
        (void)uid;
    }

    /** The app released the resource (object still exists). */
    virtual void onReleased(TokenId token, Uid uid)
    {
        (void)token;
        (void)uid;
    }

    /** The kernel object is gone (app death or explicit destroy). */
    virtual void onDestroyed(TokenId token, Uid uid)
    {
        (void)token;
        (void)uid;
    }
};

} // namespace leaseos::os

#endif // LEASEOS_OS_RESOURCE_LISTENER_H
