/**
 * @file
 * proxy-bypass: the service interposition surface (suspend/restore,
 * global filters, refilter) exists so lease proxies and the mitigation
 * controllers can revoke kernel objects from inside the OS (§4.4). Any
 * other caller — apps, benches, examples, the harness — is mutating
 * service state behind the lease manager's back, which desynchronises the
 * lease table from the kernel objects it claims to govern.
 *
 * Legal homes for these calls: src/lease/proxies/, src/mitigation/, and
 * src/os/ (the services themselves). Tests and tools are exempt (they
 * exercise the surface deliberately).
 */

#include "leaselint/rules.h"

namespace leaselint {

namespace {

constexpr const char *kInterpositionTokens[] = {
    "suspend",
    "restore",
    "setGlobalFilter",
    "clearGlobalFilter",
    "refilter",
};

constexpr const char *kAllowedDirs[] = {
    "src/lease/proxies",
    "src/mitigation",
    "src/os",
    "tests",
    "tools",
};

} // namespace

void
checkProxyBypass(const SourceFile &file, std::vector<Finding> &out)
{
    for (const char *dir : kAllowedDirs)
        if (underDir(file.path(), dir)) return;
    for (std::size_t line = 1; line <= file.lineCount(); ++line) {
        const std::string &code = file.codeLine(line);
        for (const char *token : kInterpositionTokens) {
            if (findToken(code, token) != std::string::npos) {
                out.push_back(
                    {"proxy-bypass", file.path(), line,
                     std::string(token) +
                         "() mutates service interposition state; "
                         "only lease proxies and mitigation "
                         "controllers may bypass the app-facing API"});
            }
        }
    }
}

} // namespace leaselint
