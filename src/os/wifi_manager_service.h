#ifndef LEASEOS_OS_WIFI_MANAGER_SERVICE_H
#define LEASEOS_OS_WIFI_MANAGER_SERVICE_H

/**
 * @file
 * Wi-Fi lock management (android WifiManager/WifiService analog).
 *
 * A held Wi-Fi high-performance lock keeps the radio out of power-save.
 * The ConnectBot b7cc89c bug in Table 5 held one even when the active
 * network was not Wi-Fi. Structure mirrors PowerManagerService.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "os/binder.h"
#include "os/resource_listener.h"
#include "os/service.h"
#include "power/radio_model.h"

namespace leaseos::os {

/**
 * Wi-Fi lock service with interposition hooks.
 */
class WifiManagerService : public Service
{
  public:
    WifiManagerService(sim::Simulator &sim, power::CpuModel &cpu,
                       power::RadioModel &radio, TokenAllocator &tokens);

    // ---- App-facing API ------------------------------------------------

    TokenId createWifiLock(Uid uid, std::string tag);
    void acquire(TokenId token);
    void release(TokenId token);
    void destroy(TokenId token);
    bool isHeld(TokenId token) const;

    // ---- Interposition --------------------------------------------------

    void suspend(TokenId token);
    void restore(TokenId token);
    bool isSuspended(TokenId token) const;
    bool isEnabled(TokenId token) const;
    void setGlobalFilter(std::function<bool(Uid)> filter);
    void refilter();
    void addListener(ResourceListener *listener);

    // ---- Metrics --------------------------------------------------------

    double heldSeconds(Uid uid);
    double enabledSeconds(Uid uid);
    std::uint64_t acquireCount(Uid uid) const;
    Uid ownerOf(TokenId token) const;

  private:
    struct Lock {
        Uid uid = kInvalidUid;
        std::string tag;
        bool held = false;
        bool suspended = false;
        bool enabled = false;
    };

    void advance();
    void apply();
    bool allowedByFilter(Uid uid) const;

    power::RadioModel &radio_;
    TokenAllocator &tokens_;
    std::map<TokenId, Lock> locks_;
    std::function<bool(Uid)> filter_;
    std::vector<ResourceListener *> listeners_;

    sim::Time lastAdvance_;
    std::map<Uid, double> heldSeconds_;
    std::map<Uid, double> enabledSeconds_;
    std::map<Uid, std::uint64_t> acquireCount_;
};

} // namespace leaseos::os

#endif // LEASEOS_OS_WIFI_MANAGER_SERVICE_H
