#include "apps/buggy/facebook.h"

// Facebook is header-only; this TU anchors the module in the build.
namespace leaseos::apps {
} // namespace leaseos::apps
