/**
 * @file
 * One Table-5 cell as a standalone run — the checked-mode CI target.
 *
 * Runs the Torch app (the cleanest Long-Holding row) under LeaseOS for a
 * full 30-minute cell. Built with -DLEASEOS_CHECKED=ON this exercises the
 * whole invariant oracle: every lease transition, every event dispatch,
 * periodic lease-table/energy audits, and the teardown audit in the
 * Device destructor. Any violation aborts with a structured diagnostic,
 * so a zero exit code certifies the run was invariant-clean.
 */

#include <iostream>

#include "apps/registry.h"
#include "harness/experiment.h"

using namespace leaseos;

int
main()
{
    const apps::BuggyAppSpec &spec = apps::buggySpec("torch");
    harness::MitigationRunOptions opt; // 30 min, Pixel XL, user glances

    harness::RunResult vanilla = harness::runScenario(
        harness::mitigationCellSpec(spec, harness::MitigationMode::None,
                                    opt));
    harness::RunResult leased = harness::runScenario(
        harness::mitigationCellSpec(spec, harness::MitigationMode::LeaseOS,
                                    opt));

    std::cout << spec.display << ": " << vanilla.appPowerMw
              << " mW without leases, " << leased.appPowerMw
              << " mW under LeaseOS\n";
#if defined(LEASEOS_CHECKED)
    std::cout << "invariant oracle: enabled, no violations\n";
#else
    std::cout << "invariant oracle: disabled "
                 "(rebuild with -DLEASEOS_CHECKED=ON)\n";
#endif
    return 0;
}
