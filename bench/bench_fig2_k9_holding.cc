/**
 * @file
 * Reproduces Figure 2: buggy K-9 mail's wakelock holding time and CPU
 * usage per 60 s in a *connected* environment with a *bad mail server*,
 * and the §2.3 observation that absolute holding time varies ~2x across
 * phones (Moto G vs Nexus 6) while the ultralow utilisation signature is
 * invariant.
 */

#include <iostream>

#include "apps/buggy/k9_mail.h"
#include "harness/device.h"
#include "harness/figure.h"
#include "harness/metrics.h"
#include "harness/table.h"

using namespace leaseos;
using sim::operator""_s;
using sim::operator""_min;

namespace {

struct PhoneRun {
    double meanHold = 0.0;
    double meanCpu = 0.0;
    std::string figure;
};

PhoneRun
runOn(const power::DeviceProfile &profile)
{
    harness::DeviceConfig cfg;
    cfg.profile = profile;
    harness::Device device(cfg);
    // A flaky mail server: heavily-used ecosystems (higher load factor)
    // see more contention, i.e. more failed sync attempts (§2.3's source
    // of the ~2x cross-phone holding variance).
    device.network().setServerFailProbability(
        apps::K9Mail::kServer, 0.3 + 0.3 * profile.ecosystemLoad);

    auto &app = device.install<apps::K9Mail>();
    Uid uid = app.uid();
    auto &pms = device.server().powerManager();
    auto &cpu = device.cpu();

    harness::MetricsSampler sampler(device.simulator(), 60_s);
    sampler.addDeltaGauge("wakelock_holding_s",
                          [&] { return pms.heldSeconds(uid); });
    sampler.addDeltaGauge("cpu_usage_s",
                          [&] { return cpu.cpuSeconds(uid); });
    sampler.start();

    device.start();
    device.runFor(60_min);

    PhoneRun result;
    result.meanHold = sampler.series("wakelock_holding_s").mean();
    result.meanCpu = sampler.series("cpu_usage_s").mean();
    result.figure = harness::seriesFigure(
        {&sampler.series("wakelock_holding_s"),
         &sampler.series("cpu_usage_s")});
    return result;
}

} // namespace

int
main()
{
    std::cout << harness::figureHeader(
        "Figure 2",
        "Buggy K-9 mail, connected environment with a bad mail server: "
        "long wakelock holds with CPU usage near zero (ultralow "
        "utilisation). Moto G vs Nexus 6 differ ~2x in absolute holding.");

    PhoneRun moto = runOn(power::profiles::motoG());
    std::cout << "--- Moto G ---\n" << moto.figure << "\n";
    PhoneRun nexus = runOn(power::profiles::nexus6());
    std::cout << "--- Nexus 6 ---\n" << nexus.figure << "\n";

    harness::TextTable summary(
        {"Phone", "mean hold (s/60s)", "mean CPU (s/60s)",
         "utilisation"});
    summary.addRow({"Moto G", harness::TextTable::fmt(moto.meanHold),
                    harness::TextTable::fmt(moto.meanCpu, 3),
                    harness::TextTable::pct(
                        100.0 * moto.meanCpu / moto.meanHold)});
    summary.addRow({"Nexus 6", harness::TextTable::fmt(nexus.meanHold),
                    harness::TextTable::fmt(nexus.meanCpu, 3),
                    harness::TextTable::pct(
                        100.0 * nexus.meanCpu / nexus.meanHold)});
    std::cout << summary.toString();
    std::cout << "\ncross-phone holding-time ratio (Moto/Nexus): "
              << moto.meanHold / nexus.meanHold
              << " (paper: ~2x variance; utilisation <1% on both)\n";
    return 0;
}
