#ifndef LEASEOS_OS_EXCEPTION_NOTE_HANDLER_H
#define LEASEOS_OS_EXCEPTION_NOTE_HANDLER_H

/**
 * @file
 * App exception telemetry (§6's libcore ExceptionNoteHandler analog).
 *
 * LeaseOS's generic utility for wakelocks uses "the frequency of severe
 * exceptions raised in apps" (§3.3): a high-CPU loop that keeps throwing
 * (K-9's disconnected retry loop) is Low-Utility even though utilisation
 * looks high. The real system hooks libcore's exception path; we model the
 * note store that hook feeds.
 */

#include <cstdint>
#include <map>

#include "common/ids.h"
#include "sim/simulator.h"

namespace leaseos::os {

/** Exception severity as judged by the runtime hook. */
enum class ExceptionSeverity { Minor, Severe };

/**
 * Per-uid exception counters.
 */
class ExceptionNoteHandler
{
  public:
    explicit ExceptionNoteHandler(sim::Simulator &sim) : sim_(sim) {}

    /** Called from the app runtime when an exception propagates. */
    void
    noteException(Uid uid, ExceptionSeverity severity)
    {
        ++total_[uid];
        if (severity == ExceptionSeverity::Severe) ++severe_[uid];
    }

    std::uint64_t
    severeCount(Uid uid) const
    {
        auto it = severe_.find(uid);
        return it == severe_.end() ? 0 : it->second;
    }

    std::uint64_t
    totalCount(Uid uid) const
    {
        auto it = total_.find(uid);
        return it == total_.end() ? 0 : it->second;
    }

  private:
    sim::Simulator &sim_;
    std::map<Uid, std::uint64_t> severe_;
    std::map<Uid, std::uint64_t> total_;
};

} // namespace leaseos::os

#endif // LEASEOS_OS_EXCEPTION_NOTE_HANDLER_H
