#include "apps/buggy/standup_timer.h"

// StandupTimer is header-only; this TU anchors the module.
namespace leaseos::apps {
} // namespace leaseos::apps
