#ifndef LEASEOS_COMMON_GEO_H
#define LEASEOS_COMMON_GEO_H

/**
 * @file
 * Planar geographic coordinates.
 *
 * Locations are modelled on a local tangent plane in metres, which is all
 * the GPS utility metric needs: the paper uses "the distance moved for the
 * utility of GPS" (§3.3), i.e. metres between consecutive fixes.
 */

#include <cmath>

namespace leaseos {

/** A position on a local metre grid. */
struct GeoPoint {
    double x = 0.0; ///< metres east
    double y = 0.0; ///< metres north
};

/** Euclidean distance between two points, metres. */
inline double
distanceMeters(const GeoPoint &a, const GeoPoint &b)
{
    return std::hypot(a.x - b.x, a.y - b.y);
}

} // namespace leaseos

#endif // LEASEOS_COMMON_GEO_H
