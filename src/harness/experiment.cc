#include "harness/experiment.h"

#include "apps/registry.h"

namespace leaseos::harness {

void
installGlanceScript(Device &device, const MitigationRunOptions &opt)
{
    if (!opt.userGlances) return;
    auto &sim = device.simulator();
    auto &dms = device.server().displayManager();
    auto &motion = device.motion();
    sim::Time length = opt.glanceLength;
    sim.schedulePeriodic(opt.glanceInterval, [&sim, &dms, &motion,
                                              length] {
        // Pick up the phone: motion, then screen for a moment.
        motion.setStationary(false);
        dms.userSetScreen(true);
        sim.schedule(length, [&dms, &motion] {
            dms.userSetScreen(false);
            motion.setStationary(true);
        });
        return true;
    });
}

MitigationRunResult
runMitigationCell(const apps::BuggyAppSpec &spec, MitigationMode mode,
                  const MitigationRunOptions &opt)
{
    DeviceConfig cfg;
    cfg.mode = mode;
    cfg.profile = opt.profile;
    cfg.seed = opt.seed;
    Device device(cfg);

    spec.trigger(device);
    app::App &app = spec.install(device);
    installGlanceScript(device, opt);

    MitigationRunResult result;
    if (device.leaseos()) {
        device.leaseos()->manager().setTermObserver(
            [&result](const lease::Lease &, const lease::TermRecord &rec) {
                ++result.behaviorCounts[rec.behavior];
            });
    }

    device.start();
    device.runFor(opt.duration);

    result.appPowerMw = device.appPowerMw(app.uid());
    result.systemPowerMw = device.profiler().averageTotalPowerMw();
    if (device.leaseos())
        result.deferrals = device.leaseos()->manager().totalDeferrals();
    return result;
}

double
reductionPercent(double baselineMw, double mitigatedMw)
{
    if (baselineMw <= 0.0) return 0.0;
    return 100.0 * (1.0 - mitigatedMw / baselineMw);
}

} // namespace leaseos::harness
