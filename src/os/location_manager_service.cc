#include "os/location_manager_service.h"

#include <set>
#include <utility>

namespace leaseos::os {

LocationManagerService::LocationManagerService(sim::Simulator &sim,
                                               power::CpuModel &cpu,
                                               power::GpsModel &gps,
                                               TokenAllocator &tokens)
    : Service(sim, cpu, "location"), gps_(gps), tokens_(tokens),
      lastAdvance_(sim.now())
{
    positionFn_ = [](sim::Time) { return GeoPoint{}; };
}

void
LocationManagerService::advance()
{
    sim::Time now = sim_.now();
    if (now <= lastAdvance_) {
        lastAdvance_ = now;
        return;
    }
    double dt = (now - lastAdvance_).seconds();
    bool fix = gps_.hasFix();
    for (auto &[token, req] : requests_) {
        if (!req.enabled) continue;
        requestSeconds_[req.uid] += dt;
        if (!fix) noFixSeconds_[req.uid] += dt;
    }
    lastAdvance_ = now;
}

bool
LocationManagerService::allowedByFilter(Uid uid) const
{
    return !filter_ || filter_(uid);
}

void
LocationManagerService::apply()
{
    std::set<Uid> owners;
    for (auto &[token, req] : requests_) {
        bool enabled =
            req.active && !req.suspended && allowedByFilter(req.uid);
        if (enabled && !req.enabled) {
            req.enabled = true;
            scheduleTick(token);
        } else {
            req.enabled = enabled;
        }
        if (req.enabled) owners.insert(req.uid);
    }
    gps_.setRequestOwners({owners.begin(), owners.end()});
}

void
LocationManagerService::scheduleTick(TokenId token)
{
    auto it = requests_.find(token);
    if (it == requests_.end() || it->second.tickScheduled) return;
    it->second.tickScheduled = true;
    sim_.schedule(it->second.interval,
                  [this, token] { deliverTick(token); });
}

void
LocationManagerService::deliverTick(TokenId token)
{
    auto it = requests_.find(token);
    if (it == requests_.end()) return;
    Request &req = it->second;
    req.tickScheduled = false;
    if (!req.enabled) return; // suspended/filtered: callbacks withheld
    if (gps_.hasFix()) {
        GeoPoint here = positionFn_(sim_.now());
        ++fixCount_[req.uid];
        if (req.hasLastPoint)
            distanceMeters_[req.uid] +=
                leaseos::distanceMeters(req.lastPoint, here);
        req.lastPoint = here;
        req.hasLastPoint = true;
        if (req.listener) {
            // Deliveries run a sliver of app CPU (listener invocation).
            cpu_.runWorkFor(req.uid, 0.5, sim::Time::fromMillis(5));
            req.listener->onLocation(here);
        }
    }
    scheduleTick(token);
}

TokenId
LocationManagerService::requestLocationUpdates(Uid uid, sim::Time interval,
                                               LocationListener *listener)
{
    chargeIpc(uid, kResourceIpcLatency);
    advance();
    TokenId token = tokens_.next();
    Request req;
    req.uid = uid;
    req.interval = interval;
    req.listener = listener;
    req.active = true;
    requests_.emplace(token, req);
    ++requestCount_[uid];
    apply();
    for (auto *l : listeners_) l->onCreated(token, uid);
    for (auto *l : listeners_) l->onAcquired(token, uid);
    return token;
}

void
LocationManagerService::removeUpdates(TokenId token)
{
    auto it = requests_.find(token);
    if (it == requests_.end() || !it->second.active) return;
    Uid uid = it->second.uid;
    chargeIpc(uid, kBinderIpcLatency);
    advance();
    it->second.active = false;
    apply();
    for (auto *l : listeners_) l->onReleased(token, uid);
}

void
LocationManagerService::destroy(TokenId token)
{
    auto it = requests_.find(token);
    if (it == requests_.end()) return;
    advance();
    Uid uid = it->second.uid;
    requests_.erase(it);
    tokens_.retire(token);
    apply();
    for (auto *l : listeners_) l->onDestroyed(token, uid);
}

bool
LocationManagerService::isActive(TokenId token) const
{
    auto it = requests_.find(token);
    return it != requests_.end() && it->second.active;
}

void
LocationManagerService::suspend(TokenId token)
{
    auto it = requests_.find(token);
    if (it == requests_.end() || it->second.suspended) return;
    advance();
    it->second.suspended = true;
    apply();
}

void
LocationManagerService::restore(TokenId token)
{
    auto it = requests_.find(token);
    if (it == requests_.end() || !it->second.suspended) return;
    advance();
    it->second.suspended = false;
    apply();
}

bool
LocationManagerService::isSuspended(TokenId token) const
{
    auto it = requests_.find(token);
    return it != requests_.end() && it->second.suspended;
}

bool
LocationManagerService::isEnabled(TokenId token) const
{
    auto it = requests_.find(token);
    return it != requests_.end() && it->second.enabled;
}

void
LocationManagerService::setGlobalFilter(std::function<bool(Uid)> filter)
{
    advance();
    filter_ = std::move(filter);
    apply();
}

void
LocationManagerService::refilter()
{
    advance();
    apply();
}

void
LocationManagerService::addListener(ResourceListener *listener)
{
    listeners_.push_back(listener);
}

double
LocationManagerService::requestSeconds(Uid uid)
{
    advance();
    auto it = requestSeconds_.find(uid);
    return it == requestSeconds_.end() ? 0.0 : it->second;
}

double
LocationManagerService::noFixSeconds(Uid uid)
{
    advance();
    auto it = noFixSeconds_.find(uid);
    return it == noFixSeconds_.end() ? 0.0 : it->second;
}

std::uint64_t
LocationManagerService::fixCount(Uid uid) const
{
    auto it = fixCount_.find(uid);
    return it == fixCount_.end() ? 0 : it->second;
}

std::uint64_t
LocationManagerService::requestCount(Uid uid) const
{
    auto it = requestCount_.find(uid);
    return it == requestCount_.end() ? 0 : it->second;
}

double
LocationManagerService::distanceMeters(Uid uid) const
{
    auto it = distanceMeters_.find(uid);
    return it == distanceMeters_.end() ? 0.0 : it->second;
}

Uid
LocationManagerService::ownerOf(TokenId token) const
{
    auto it = requests_.find(token);
    return it == requests_.end() ? kInvalidUid : it->second.uid;
}

std::vector<TokenId>
LocationManagerService::activeRequests(Uid uid) const
{
    std::vector<TokenId> active;
    for (const auto &[token, request] : requests_)
        if (request.uid == uid && request.active) active.push_back(token);
    return active;
}

} // namespace leaseos::os
