#ifndef LEASEOS_HARNESS_METRICS_H
#define LEASEOS_HARNESS_METRICS_H

/**
 * @file
 * Periodic metric sampling — the §2.1 profiling tool ("samples a vector of
 * per-app metrics every 60 s, e.g., wakelock time, CPU usage") generalised
 * to arbitrary gauges. Figures 1-4 and 11 are produced with it.
 */

#include <functional>
#include <map>
#include <string>

#include "sim/simulator.h"
#include "sim/time_series.h"

namespace leaseos::harness {

/**
 * Samples registered gauges into time series.
 *
 * Two gauge styles:
 *  - addGauge: records the gauge value at each tick;
 *  - addDeltaGauge: records the increase of a monotonic counter over each
 *    interval (how the paper reports "wakelock time per 60 s").
 */
class MetricsSampler
{
  public:
    MetricsSampler(sim::Simulator &sim, sim::Time period)
        : sim_(sim), period_(period) {}

    void
    addGauge(const std::string &name, std::function<double()> fn)
    {
        gauges_[name] = std::move(fn);
        series_.emplace(name, sim::TimeSeries(name));
    }

    void
    addDeltaGauge(const std::string &name, std::function<double()> fn)
    {
        last_[name] = fn();
        deltas_[name] = std::move(fn);
        series_.emplace(name, sim::TimeSeries(name));
    }

    void
    start()
    {
        tick_ = sim_.schedulePeriodicScoped(period_, [this] { sample(); });
    }

    void stop() { tick_.cancel(); }

    const sim::TimeSeries &
    series(const std::string &name) const
    {
        return series_.at(name);
    }

  private:
    void
    sample()
    {
        for (auto &[name, fn] : gauges_)
            series_.at(name).record(sim_.now(), fn());
        for (auto &[name, fn] : deltas_) {
            double v = fn();
            series_.at(name).record(sim_.now(), v - last_[name]);
            last_[name] = v;
        }
    }

    sim::Simulator &sim_;
    sim::Time period_;
    sim::PeriodicHandle tick_;
    std::map<std::string, std::function<double()>> gauges_;
    std::map<std::string, std::function<double()>> deltas_;
    std::map<std::string, double> last_;
    std::map<std::string, sim::TimeSeries> series_;
};

} // namespace leaseos::harness

#endif // LEASEOS_HARNESS_METRICS_H
