// Fixture: a component saveState() that serializes by iterating a
// std::unordered_map — the canonical checkpoint hazard. Blob bytes would
// follow hash/bucket order, which varies across libstdc++ versions and
// ASLR, so "equal state => byte-identical blobs" (DESIGN.md §11) breaks
// silently. Display path src/power/fix/unordered_save.cc (the
// determinism rule only audits src/ and bench/).

#include <cstdint>
#include <unordered_map>

namespace fix {

struct CheckpointWriter;

struct ShareTable {
    std::unordered_map<std::int32_t, double> mwByUid; // flagged

    void
    saveState(CheckpointWriter &w) const
    {
        for (const auto &[uid, mw] : mwByUid) { // iteration order leaks
            (void)uid;
            (void)mw;
        }
    }
};

} // namespace fix
