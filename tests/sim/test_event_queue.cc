/**
 * @file
 * Unit tests for sim::EventQueue ordering, cancellation, and determinism.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_queue.h"

namespace leaseos::sim {
namespace {

TEST(EventQueueTest, EmptyInitially)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(3_s, [&] { fired.push_back(3); });
    q.schedule(1_s, [&] { fired.push_back(1); });
    q.schedule(2_s, [&] { fired.push_back(2); });
    while (!q.empty()) q.pop().second();
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoTieBreakAtSameTime)
{
    EventQueue q;
    std::vector<int> fired;
    for (int i = 0; i < 10; ++i)
        q.schedule(5_s, [&fired, i] { fired.push_back(i); });
    while (!q.empty()) q.pop().second();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueueTest, NextTimeReportsEarliestLive)
{
    EventQueue q;
    EventId early = q.schedule(1_s, [] {});
    q.schedule(2_s, [] {});
    EXPECT_EQ(q.nextTime(), 1_s);
    q.cancel(early);
    EXPECT_EQ(q.nextTime(), 2_s);
}

TEST(EventQueueTest, CancelPendingReturnsTrue)
{
    EventQueue q;
    EventId id = q.schedule(1_s, [] {});
    EXPECT_TRUE(q.pending(id));
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.pending(id));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelTwiceReturnsFalse)
{
    EventQueue q;
    EventId id = q.schedule(1_s, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelFiredEventReturnsFalse)
{
    EventQueue q;
    EventId id = q.schedule(1_s, [] {});
    q.schedule(2_s, [] {});
    q.pop().second();
    EXPECT_FALSE(q.cancel(id));
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, CancelInvalidIdReturnsFalse)
{
    EventQueue q;
    EXPECT_FALSE(q.cancel(kInvalidEventId));
    EXPECT_FALSE(q.cancel(9999));
}

TEST(EventQueueTest, CancelledEventNeverFires)
{
    EventQueue q;
    bool fired = false;
    EventId id = q.schedule(1_s, [&] { fired = true; });
    q.schedule(2_s, [] {});
    q.cancel(id);
    while (!q.empty()) q.pop().second();
    EXPECT_FALSE(fired);
}

TEST(EventQueueTest, SizeCountsOnlyLiveEvents)
{
    EventQueue q;
    EventId a = q.schedule(1_s, [] {});
    q.schedule(2_s, [] {});
    q.schedule(3_s, [] {});
    EXPECT_EQ(q.size(), 3u);
    q.cancel(a);
    EXPECT_EQ(q.size(), 2u);
}

TEST(EventQueueTest, ManyEventsStressOrdering)
{
    EventQueue q;
    // Interleave schedule and cancel; verify monotone pop order.
    std::vector<EventId> ids;
    for (int i = 0; i < 1000; ++i)
        ids.push_back(
            q.schedule(Time::fromMillis(997 * i % 1000), [] {}));
    for (int i = 0; i < 1000; i += 3) q.cancel(ids[i]);
    Time last = Time::zero();
    while (!q.empty()) {
        Time t = q.nextTime();
        EXPECT_GE(t, last);
        last = t;
        q.pop();
    }
}

TEST(EventQueueTest, FifoTieBreakSurvivesCancellationsInBetween)
{
    EventQueue q;
    std::vector<int> fired;
    std::vector<EventId> ids;
    for (int i = 0; i < 20; ++i)
        ids.push_back(q.schedule(5_s, [&fired, i] { fired.push_back(i); }));
    for (int i = 1; i < 20; i += 2) q.cancel(ids[i]);
    while (!q.empty()) q.pop().second();
    std::vector<int> expected;
    for (int i = 0; i < 20; i += 2) expected.push_back(i);
    EXPECT_EQ(fired, expected);
}

TEST(EventQueueTest, CancelThenPopSkipsStraightToNextLive)
{
    EventQueue q;
    std::vector<int> fired;
    EventId first = q.schedule(1_s, [&] { fired.push_back(1); });
    q.schedule(2_s, [&] { fired.push_back(2); });
    q.cancel(first);
    auto [when, cb] = q.pop();
    EXPECT_EQ(when, 2_s);
    cb();
    EXPECT_EQ(fired, (std::vector<int>{2}));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, ReusedSlotNeverResurrectsOldId)
{
    // Fire/cancel events so their pool slots recycle, then verify every
    // stale id stays dead: pending() false, cancel() false, and the new
    // occupant of the slot is unaffected.
    EventQueue q;
    EventId fired = q.schedule(1_s, [] {});
    EventId cancelled = q.schedule(2_s, [] {});
    q.cancel(cancelled);
    q.pop().second(); // fires `fired`, recycles its slot
    EXPECT_FALSE(q.pending(fired));
    EXPECT_FALSE(q.pending(cancelled));

    // Recycle until both old slots are reoccupied.
    std::vector<EventId> fresh;
    for (int i = 0; i < 4; ++i) fresh.push_back(q.schedule(5_s, [] {}));
    EXPECT_FALSE(q.pending(fired));
    EXPECT_FALSE(q.cancel(fired));
    EXPECT_FALSE(q.pending(cancelled));
    EXPECT_FALSE(q.cancel(cancelled));
    for (EventId id : fresh) EXPECT_TRUE(q.pending(id));
    EXPECT_EQ(q.size(), fresh.size());
}

TEST(EventQueueTest, SizeAndPendingConsistentUnderMixedChurn)
{
    EventQueue q;
    std::vector<EventId> all;
    std::size_t scheduled = 0;
    std::size_t cursor = 0; // next id to cancel
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 10; ++i) {
            all.push_back(
                q.schedule(Time::fromMillis(131 * (round * 10 + i) % 700),
                           [] {}));
            ++scheduled;
        }
        // Cancel three (possibly already popped), pop two, every round.
        for (int i = 0; i < 3; ++i) q.cancel(all[cursor++]);
        for (int i = 0; i < 2 && !q.empty(); ++i) {
            q.pop();
        }
    }
    EXPECT_EQ(q.scheduledCount(), scheduled);
    // size() must agree exactly with pending() over every id issued.
    std::size_t stillPending = 0;
    for (EventId id : all)
        if (q.pending(id)) ++stillPending;
    EXPECT_EQ(stillPending, q.size());
    EXPECT_GT(q.size(), 0u);
    Time last = Time::zero();
    while (!q.empty()) {
        Time t = q.nextTime();
        EXPECT_GE(t, last);
        last = t;
        q.pop();
    }
}

TEST(EventQueueTest, CancelHeavyChurnStaysOrderedThroughCompaction)
{
    // Cancel-dominated workload (timer resets): tombstones trigger the
    // internal heap compaction many times; ordering and ids must hold.
    EventQueue q;
    std::vector<std::pair<Time, EventId>> live;
    for (int i = 0; i < 200; ++i) {
        Time t = Time::fromMillis(271 * i % 9973);
        live.emplace_back(t, q.schedule(t, [] {}));
    }
    for (int i = 0; i < 5000; ++i) {
        q.cancel(live.front().second);
        live.erase(live.begin());
        Time t = Time::fromMillis((1009 * i + 17) % 9973);
        live.emplace_back(t, q.schedule(t, [] {}));
        EXPECT_EQ(q.size(), 200u);
    }
    for (const auto &[when, id] : live) EXPECT_TRUE(q.pending(id));
    Time last = Time::zero();
    std::size_t popped = 0;
    while (!q.empty()) {
        Time t = q.nextTime();
        EXPECT_GE(t, last);
        last = t;
        q.pop();
        ++popped;
    }
    EXPECT_EQ(popped, 200u);
}

struct CopyCounter {
    static inline int copies = 0;
    CopyCounter() = default;
    CopyCounter(const CopyCounter &) { ++copies; }
    CopyCounter(CopyCounter &&) noexcept {}
    CopyCounter &operator=(const CopyCounter &) = default;
    CopyCounter &operator=(CopyCounter &&) noexcept { return *this; }
};

TEST(EventQueueTest, CallbacksNeverCopiedDuringSift)
{
    // The heap stores slot indices, so heap maintenance must never copy
    // a callback. The only copy allowed is the one std::function makes
    // when the lambda is first wrapped at schedule() time.
    EventQueue q;
    CopyCounter::copies = 0;
    for (int i = 0; i < 64; ++i) {
        CopyCounter token;
        q.schedule(Time::fromMillis(37 * i % 50),
                   [token] { (void)token; });
    }
    int afterSchedule = CopyCounter::copies;
    while (!q.empty()) q.pop().second(); // sift-down churn on every pop
    EXPECT_EQ(CopyCounter::copies, afterSchedule)
        << "heap maintenance copied a callback";
}

TEST(EventQueueTest, ScheduledCountCountsEverySchedule)
{
    EventQueue q;
    EXPECT_EQ(q.scheduledCount(), 0u);
    EventId a = q.schedule(1_s, [] {});
    q.schedule(2_s, [] {});
    q.cancel(a);
    q.pop();
    q.schedule(3_s, [] {});
    EXPECT_EQ(q.scheduledCount(), 3u);
}

} // namespace
} // namespace leaseos::sim
