#include "power/screen_model.h"

// ScreenModel is header-only; this TU anchors the module in the build.
namespace leaseos::power {
} // namespace leaseos::power
