#ifndef LEASEOS_POWER_SCREEN_MODEL_H
#define LEASEOS_POWER_SCREEN_MODEL_H

/**
 * @file
 * Display panel power model.
 *
 * The screen is the single biggest consumer when lit. Two of the Table 5
 * bugs (ConnectBot #299, Standup Timer) hold *screen* wakelocks that keep
 * the panel on in the background — the screen draw is then attributed to
 * the holding app, which is why Doze (which never touches the screen)
 * barely helps those cases.
 */

#include <vector>

#include "power/component.h"

namespace leaseos::power {

/**
 * Screen on/off + brightness with owner attribution.
 */
class ScreenModel : public PowerComponent
{
  public:
    ScreenModel(sim::Simulator &sim, EnergyAccountant &accountant,
                const DeviceProfile &profile)
        : PowerComponent(sim, accountant, profile, "screen"),
          channel_(accountant.makeChannel("screen"))
    {
        update();
    }

    /**
     * Set panel state. @p owners carries the uids responsible for the
     * panel being lit: empty means normal user-initiated use (system
     * attribution); a screen-wakelock holder shows up here when it forces
     * the panel on.
     */
    void
    setOn(bool on, std::vector<Uid> owners = {})
    {
        on_ = on;
        owners_ = std::move(owners);
        update();
    }

    void
    setBrightness(double b)
    {
        brightness_ = b < 0.0 ? 0.0 : (b > 1.0 ? 1.0 : b);
        update();
    }

    bool isOn() const { return on_; }
    double brightness() const { return brightness_; }

    /** Serialize panel state as a "screen" section (DESIGN.md §11). */
    void saveState(sim::CheckpointWriter &w) const;
    void restoreState(sim::CheckpointReader &r);

  private:
    void
    update()
    {
        double mw = on_
            ? profile_.screenBaseMw + brightness_ * profile_.screenFullMw
            : 0.0;
        accountant_.setPower(channel_, mw, owners_);
    }

    ChannelId channel_;
    bool on_ = false;
    double brightness_ = 0.5;
    std::vector<Uid> owners_;
};

} // namespace leaseos::power

#endif // LEASEOS_POWER_SCREEN_MODEL_H
