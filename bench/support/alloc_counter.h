#ifndef LEASEOS_BENCH_SUPPORT_ALLOC_COUNTER_H
#define LEASEOS_BENCH_SUPPORT_ALLOC_COUNTER_H

/**
 * @file
 * Global allocation oracle for benchmarks.
 *
 * Linking alloc_counter.cc into a binary replaces the global
 * operator new/delete with counting versions, so a bench can prove a
 * code path is allocation-free rather than assume it: read allocCount()
 * before and after the measured region and report the delta per op.
 * DESIGN.md §8's "0 allocs per steady-state event" claim is enforced in
 * CI with exactly this hook (see the perf-bench job).
 *
 * Deliberately not linked into the core library or tests-by-default:
 * only the bench targets that report allocs/op pull it in.
 */

#include <cstdint>

namespace leaseos::benchsupport {

/** Number of global operator-new calls since process start. */
std::uint64_t allocCount();

} // namespace leaseos::benchsupport

#endif // LEASEOS_BENCH_SUPPORT_ALLOC_COUNTER_H
