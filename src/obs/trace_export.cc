#include "obs/trace_export.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace leaseos::obs {

void
writeEventJson(const TraceEvent &e, std::ostream &out)
{
    char line[192];
    std::snprintf(line, sizeof line,
                  "{\"t\":%" PRId64 ",\"cat\":\"%s\",\"ev\":\"%s\","
                  "\"uid\":%" PRId32 ",\"lease\":%" PRIu64
                  ",\"payload\":%" PRIu64 "}",
                  e.timeNs,
                  traceCategoryName(static_cast<TraceCategory>(e.category)),
                  traceCodeName(static_cast<TraceCode>(e.code)), e.uid,
                  e.leaseId, e.payload);
    out << line;
}

namespace {

void
writeChromeEvent(const TraceEvent &e, bool first, std::ostream &out)
{
    // Instant events, thread scope; ts is microseconds with nanosecond
    // precision kept in the fraction. uid doubles as the track (tid).
    char line[256];
    std::snprintf(line, sizeof line,
                  "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\","
                  "\"s\":\"t\",\"ts\":%" PRId64 ".%03" PRId64
                  ",\"pid\":1,\"tid\":%" PRId32 ",\"args\":{\"lease\":%" PRIu64
                  ",\"payload\":%" PRIu64 "}}",
                  first ? "" : ",\n",
                  traceCodeName(static_cast<TraceCode>(e.code)),
                  traceCategoryName(static_cast<TraceCategory>(e.category)),
                  e.timeNs / 1000, e.timeNs % 1000, e.uid, e.leaseId,
                  e.payload);
    out << line;
}

} // namespace

void
writeJsonLines(const TraceBuffer &buffer, std::ostream &out)
{
    for (std::size_t i = 0; i < buffer.size(); ++i) {
        writeEventJson(buffer.event(i), out);
        out << '\n';
    }
}

void
writeChromeTrace(const TraceBuffer &buffer, std::ostream &out)
{
    out << "{\"traceEvents\":[\n";
    for (std::size_t i = 0; i < buffer.size(); ++i)
        writeChromeEvent(buffer.event(i), i == 0, out);
    out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

bool
writeTraceFile(const TraceBuffer &buffer, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out.good()) return false;
    const bool jsonl =
        path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0;
    if (jsonl)
        writeJsonLines(buffer, out);
    else
        writeChromeTrace(buffer, out);
    out.flush();
    return out.good();
}

} // namespace leaseos::obs
