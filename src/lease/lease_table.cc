#include "lease/lease_table.h"

namespace leaseos::lease {

Lease &
LeaseTable::create(ResourceType rtype, os::TokenId token, Uid uid)
{
    auto lease = std::make_unique<Lease>();
    lease->id = nextId_++;
    lease->uid = uid;
    lease->rtype = rtype;
    lease->token = token;
    Lease &ref = *lease;
    leases_.emplace(ref.id, std::move(lease));
    byToken_[token] = ref.id;
    return ref;
}

Lease *
LeaseTable::find(LeaseId id)
{
    auto it = leases_.find(id);
    return it == leases_.end() ? nullptr : it->second.get();
}

const Lease *
LeaseTable::find(LeaseId id) const
{
    auto it = leases_.find(id);
    return it == leases_.end() ? nullptr : it->second.get();
}

Lease *
LeaseTable::findByToken(os::TokenId token)
{
    auto it = byToken_.find(token);
    return it == byToken_.end() ? nullptr : find(it->second);
}

void
LeaseTable::reap(LeaseId id)
{
    auto it = leases_.find(id);
    if (it == leases_.end()) return;
    byToken_.erase(it->second->token);
    leases_.erase(it);
}

std::vector<Lease *>
LeaseTable::all()
{
    std::vector<Lease *> out;
    out.reserve(leases_.size());
    for (auto &[id, lease] : leases_) out.push_back(lease.get());
    return out;
}

std::vector<const Lease *>
LeaseTable::all() const
{
    std::vector<const Lease *> out;
    out.reserve(leases_.size());
    for (const auto &[id, lease] : leases_) out.push_back(lease.get());
    return out;
}

std::size_t
LeaseTable::countInState(LeaseState state) const
{
    std::size_t n = 0;
    for (const auto &[id, lease] : leases_)
        if (lease->state == state) ++n;
    return n;
}

} // namespace leaseos::lease
