file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_study.dir/bench/bench_table2_study.cc.o"
  "CMakeFiles/bench_table2_study.dir/bench/bench_table2_study.cc.o.d"
  "bench/bench_table2_study"
  "bench/bench_table2_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
