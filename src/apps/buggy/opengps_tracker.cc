#include "apps/buggy/opengps_tracker.h"

// OpenGpsTracker is header-only; this TU anchors the module.
namespace leaseos::apps {
} // namespace leaseos::apps
