#ifndef LEASEOS_APPS_BUGGY_OSMTRACKER_H
#define LEASEOS_APPS_BUGGY_OSMTRACKER_H

/**
 * @file
 * OSMTracker model (Table 5 row): a track-recording service the user
 * forgot to stop; GPS runs forever in the background with nothing bound
 * to it → Long-Holding.
 */

#include "apps/buggy/continuous_gps_app.h"

namespace leaseos::apps {

class OsmTracker : public ContinuousGpsApp
{
  public:
    OsmTracker(app::AppContext &ctx, Uid uid)
        : ContinuousGpsApp(ctx, uid, "OSMTracker",
                           Params{sim::Time::fromSeconds(4.0), false,
                                  sim::Time::fromMillis(35), 0.5, true}) {}
};

} // namespace leaseos::apps

#endif // LEASEOS_APPS_BUGGY_OSMTRACKER_H
