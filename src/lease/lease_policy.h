#ifndef LEASEOS_LEASE_LEASE_POLICY_H
#define LEASEOS_LEASE_LEASE_POLICY_H

/**
 * @file
 * Lease policy parameters (§5).
 *
 * Defaults follow the paper: 5 s initial term, 25 s deferral (λ = 5),
 * adaptive term growth for well-behaved leases (12 normal terms → 1 min,
 * 120 → 5 min, any misbehaviour → back to 5 s).
 *
 * Deferral escalation is our documented reading of the paper's
 * "avg(τ)" formulation (§5.1 defines λ with an *average* deferral): on
 * consecutive misbehaving terms τ doubles up to a cap, which is what
 * drives persistent bugs beyond the single-cycle 1/(1+λ) bound to the
 * ~92-98 % reductions of Table 5. bench_ablation_policy quantifies it.
 */

#include "lease/behavior_classifier.h"
#include "sim/time.h"

namespace leaseos::lease {

/**
 * All tunables of the lease manager.
 */
struct LeasePolicy {
    /** Initial (and post-misbehaviour) lease term. */
    sim::Time initialTerm = sim::Time::fromSeconds(5.0);

    /** Base deferral interval τ. */
    sim::Time deferralInterval = sim::Time::fromSeconds(25.0);

    // ---- Common-case optimisation (§5.2) -------------------------------
    bool adaptiveTerm = true;
    int mediumTermAfter = 12;  ///< consecutive normal terms → mediumTerm
    sim::Time mediumTerm = sim::Time::fromMinutes(1.0);
    int longTermAfter = 120;   ///< consecutive normal terms → longTerm
    sim::Time longTerm = sim::Time::fromMinutes(5.0);

    // ---- Deferral escalation ---------------------------------------------
    bool escalateDeferral = true;
    double deferralGrowth = 2.0;
    sim::Time maxDeferral = sim::Time::fromMinutes(5.0);

    /**
     * Misbehaviour on subscription-style resources (GPS, sensors) must
     * persist (same class) for this many consecutive terms before
     * deferral. Their utility arrives episodically: a GPS cold start
     * spends a full time-to-first-fix "asking" (looks like FAB for one
     * short term), the first fix has no distance yet (looks like LUB),
     * and a game's sensor feed shows UI evidence only at the next touch.
     * §4.3's decisions over "the current term and last few terms" absorb
     * these. Other resources defer on the first misbehaving term (the
     * paper's n = 1 analysis in §5.1).
     */
    int gpsConfirmTerms = 2;
    int sensorConfirmTerms = 2;

    /** Confirmation terms required before deferring a resource type. */
    int
    confirmTermsFor(ResourceType rtype) const
    {
        if (rtype == ResourceType::Gps) return gpsConfirmTerms;
        if (rtype == ResourceType::Sensor ||
            rtype == ResourceType::Bluetooth) {
            return sensorConfirmTerms;
        }
        return 1;
    }

    /** History depth kept per lease (bounded, §4.3). */
    std::size_t historyDepth = 16;

    // ---- §8 extension: app usage history --------------------------------
    /**
     * Carry misbehaviour reputation across kernel-object churn: when an
     * app's lease dies while misbehaving and the app re-creates the same
     * resource type shortly after (the BetterWeather re-request pattern),
     * the new lease inherits the escalation counter instead of starting
     * fresh. This implements the paper's §8 plan to "adjust the policies
     * dynamically based on app usage history"; off by default to keep the
     * base system faithful. bench_ablation_policy quantifies it.
     */
    bool rememberMisbehavior = false;

    /** How long a dead lease's bad reputation lingers. */
    sim::Time reputationWindow = sim::Time::fromMinutes(3.0);

    ClassifierThresholds thresholds;

    /** Term length for a lease with @p consecutiveNormal good terms. */
    sim::Time
    termFor(int consecutiveNormal) const
    {
        if (!adaptiveTerm) return initialTerm;
        if (consecutiveNormal >= longTermAfter) return longTerm;
        if (consecutiveNormal >= mediumTermAfter) return mediumTerm;
        return initialTerm;
    }

    /** Deferral for the @p consecutiveMisbehaved-th misbehaving term. */
    sim::Time
    deferralFor(int consecutiveMisbehaved) const
    {
        if (!escalateDeferral || consecutiveMisbehaved <= 1)
            return deferralInterval;
        sim::Time tau = deferralInterval;
        for (int i = 1; i < consecutiveMisbehaved; ++i) {
            tau = tau * deferralGrowth;
            if (tau >= maxDeferral) return maxDeferral;
        }
        return tau;
    }
};

} // namespace leaseos::lease

#endif // LEASEOS_LEASE_LEASE_POLICY_H
