#ifndef LEASEOS_COMMON_UTILITY_COUNTER_H
#define LEASEOS_COMMON_UTILITY_COUNTER_H

/**
 * @file
 * The optional app-provided custom utility interface (paper's
 * IUtilityCounter, §3.3 / Fig. 6).
 *
 * Apps that want the lease manager to understand their semantics implement
 * getScore() returning 0-100 (e.g. TapAndTurn returns clicks per rotation
 * icon shown × 100). The score is only a *hint*: LeaseOS consults it only
 * when the generic utility is not already too low, to prevent abuse.
 */

namespace leaseos {

/**
 * App-defined utility scoring callback.
 */
class IUtilityCounter
{
  public:
    virtual ~IUtilityCounter() = default;

    /** @return utility in [0, 100]; higher = more user value. */
    virtual double getScore() = 0;
};

} // namespace leaseos

#endif // LEASEOS_COMMON_UTILITY_COUNTER_H
