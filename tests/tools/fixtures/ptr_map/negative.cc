// Fixture: ordered containers that must NOT trip ptr-ordered-iteration:
// pointer as the VALUE is fine (order comes from the key), and non-
// pointer keys are fine. Display path src/lease/fix/negative.cc.

#include <map>
#include <set>
#include <string>

namespace fix {

struct Lease;

std::map<int, Lease *> byId;          // pointer value, int key: ok
std::set<std::string> names;          // ok
std::map<std::string, int> counters;  // ok

} // namespace fix
