/**
 * @file
 * Unit tests for Counter, Accumulator, Histogram, and RandomSource.
 */

#include <gtest/gtest.h>

#include "sim/random.h"
#include "sim/stats.h"

namespace leaseos::sim {
namespace {

TEST(CounterTest, AccumulatesAndCheckpoints)
{
    Counter c;
    c.add(3.0);
    c.increment();
    EXPECT_DOUBLE_EQ(c.total(), 4.0);
    EXPECT_DOUBLE_EQ(c.delta(), 4.0);
    c.checkpoint();
    EXPECT_DOUBLE_EQ(c.delta(), 0.0);
    c.add(1.5);
    EXPECT_DOUBLE_EQ(c.delta(), 1.5);
    EXPECT_DOUBLE_EQ(c.total(), 5.5);
    c.reset();
    EXPECT_DOUBLE_EQ(c.total(), 0.0);
}

TEST(AccumulatorTest, EmptyIsZero)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(AccumulatorTest, MomentsMatchClosedForm)
{
    Accumulator a;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.record(v);
    EXPECT_EQ(a.count(), 8u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_DOUBLE_EQ(a.sum(), 40.0);
    EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12); // sample variance
}

TEST(AccumulatorTest, SingleSampleVarianceZero)
{
    Accumulator a;
    a.record(42.0);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
    EXPECT_DOUBLE_EQ(a.mean(), 42.0);
}

TEST(HistogramTest, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.record(0.5);
    h.record(5.5);
    h.record(5.6);
    h.record(-1.0);
    h.record(100.0);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(5), 2u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(HistogramTest, QuantileApproximation)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i) h.record(static_cast<double>(i) + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(HistogramTest, QuantileOneReturnsLastSampleNotHi)
{
    // Regression: q=1.0 targeted the one-past-the-end rank and always
    // fell through to hi_, even with every sample far below it.
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 50; ++i) h.record(5.0 + 0.001 * i);
    EXPECT_NEAR(h.quantile(1.0), 6.0, 1.0);
    EXPECT_LT(h.quantile(1.0), 10.0) << "all mass sits in [5, 6)";
}

TEST(HistogramTest, QuantileEndpointsPinnedOnKnownData)
{
    Histogram h(0.0, 10.0, 10);
    for (double v : {1.5, 1.5, 1.5, 1.5, 8.5}) h.record(v);
    // Rank 0 and the median are in the [1, 2) bucket.
    EXPECT_GE(h.quantile(0.0), 1.0);
    EXPECT_LT(h.quantile(0.0), 2.0);
    EXPECT_GE(h.quantile(0.5), 1.0);
    EXPECT_LT(h.quantile(0.5), 2.0);
    // The last sample sits in [8, 9): q=1.0 must land there, not at 10.
    EXPECT_GE(h.quantile(1.0), 8.0);
    EXPECT_LT(h.quantile(1.0), 9.0);
}

TEST(HistogramTest, QuantileUnderOverflowStillClamped)
{
    Histogram h(0.0, 10.0, 10);
    h.record(-5.0); // underflow
    h.record(2.5);
    h.record(50.0); // overflow
    EXPECT_EQ(h.quantile(0.0), 0.0);  // rank 0 is the underflow sample
    EXPECT_GE(h.quantile(0.5), 2.0);  // median is the in-range sample
    EXPECT_LT(h.quantile(0.5), 3.0);
    EXPECT_EQ(h.quantile(1.0), 10.0); // rank 2 is the overflow sample
    Histogram empty(0.0, 10.0, 10);
    EXPECT_EQ(empty.quantile(1.0), 0.0); // lo_ when empty
}

TEST(HistogramTest, ToStringContainsCounts)
{
    Histogram h(0.0, 2.0, 2);
    h.record(0.5);
    h.record(1.5);
    std::string s = h.toString("demo");
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(RandomTest, DeterministicForSameSeed)
{
    RandomSource a(7);
    RandomSource b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(RandomTest, DifferentSeedsDiffer)
{
    RandomSource a(1);
    RandomSource b(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        if (a.uniform() != b.uniform()) any_diff = true;
    EXPECT_TRUE(any_diff);
}

TEST(RandomTest, UniformIntInRange)
{
    RandomSource r(3);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.uniformInt(5, 9);
        EXPECT_GE(v, 5);
        EXPECT_LE(v, 9);
    }
}

TEST(RandomTest, ChanceRespectsProbabilityRoughly)
{
    RandomSource r(11);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        if (r.chance(0.25)) ++hits;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(RandomTest, UniformTimeInRange)
{
    RandomSource r(13);
    for (int i = 0; i < 100; ++i) {
        Time t = r.uniformTime(1_s, 2_s);
        EXPECT_GE(t, 1_s);
        EXPECT_LT(t, 2_s);
    }
}

} // namespace
} // namespace leaseos::sim
