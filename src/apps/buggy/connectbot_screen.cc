#include "apps/buggy/connectbot_screen.h"

// ConnectBotScreen is header-only; this TU anchors the module.
namespace leaseos::apps {
} // namespace leaseos::apps
