#ifndef LEASEOS_LEASE_PROXIES_WIFI_PROXY_H
#define LEASEOS_LEASE_PROXIES_WIFI_PROXY_H

/**
 * @file
 * Lease proxy for Wi-Fi high-performance locks.
 *
 * Usage = actual Wi-Fi transfer time: a lock held with an idle radio (the
 * ConnectBot case, "only lock Wi-Fi if our active network is Wi-Fi") is
 * Long-Holding.
 */

#include <map>

#include "lease/lease_proxy.h"
#include "os/activity_manager_service.h"
#include "os/wifi_manager_service.h"
#include "power/radio_model.h"

namespace leaseos::lease {

/**
 * Wi-Fi lock lease proxy.
 */
class WifiLeaseProxy : public LeaseProxy
{
  public:
    WifiLeaseProxy(os::WifiManagerService &wms, power::RadioModel &radio,
                   os::ActivityManagerService &am);

    void onExpire(const Lease &lease) override;
    void onRenew(const Lease &lease) override;
    bool resourceHeld(const Lease &lease) override;
    void beginTerm(const Lease &lease) override;
    LeaseStat collectStat(const Lease &lease) override;

  private:
    struct Snapshot {
        double enabledSeconds = 0.0;
        double activeSeconds = 0.0;
        std::uint64_t uiUpdates = 0;
        std::uint64_t interactions = 0;
        std::uint64_t acquires = 0;
    };

    Snapshot snapshot(const Lease &lease);

    os::WifiManagerService &wms_;
    power::RadioModel &radio_;
    os::ActivityManagerService &am_;
    std::map<LeaseId, Snapshot> snapshots_;
};

} // namespace leaseos::lease

#endif // LEASEOS_LEASE_PROXIES_WIFI_PROXY_H
