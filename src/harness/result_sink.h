#ifndef LEASEOS_HARNESS_RESULT_SINK_H
#define LEASEOS_HARNESS_RESULT_SINK_H

/**
 * @file
 * Machine-readable result emission for the bench binaries.
 *
 * A bench assembles rows of named cells once and hands them to one or
 * more ResultSinks: TextTableSink renders the familiar aligned table on
 * stdout, JsonSink writes a `BENCH_<name>.json` artifact so sweeps can be
 * diffed, plotted, and regression-checked without scraping text, CsvSink
 * writes the same rows as a spreadsheet-ready CSV file. Key order is
 * stable: cells serialise in insertion order in every emitter.
 *
 * The module also owns the $LEASEOS_OUT artifact-directory convention and
 * the figure benches' raw time-series CSV export (maybeExportSeriesCsv),
 * so every escaping/formatting rule lives in exactly one place.
 */

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "sim/time_series.h"

namespace leaseos::harness {

/**
 * Consumer of experiment result rows.
 */
class ResultSink
{
  public:
    /** One cell: tagged text / fixed-precision number / integer. */
    struct Value {
        enum class Kind { Text, Number, Integer };

        Kind kind = Kind::Text;
        std::string text;
        double number = 0.0;
        std::int64_t integer = 0;
        int precision = 2;

        static Value
        str(std::string s)
        {
            Value v;
            v.kind = Kind::Text;
            v.text = std::move(s);
            return v;
        }
        static Value
        num(double d, int precision = 2)
        {
            Value v;
            v.kind = Kind::Number;
            v.number = d;
            v.precision = precision;
            return v;
        }
        static Value
        count(std::int64_t i)
        {
            Value v;
            v.kind = Kind::Integer;
            v.integer = i;
            return v;
        }

        /** Rendering for text tables (numbers at fixed precision). */
        std::string toText() const;
        /** Rendering for JSON (quoted+escaped text, raw numerals). */
        std::string toJson() const;
    };

    /** Ordered named cells; order is the column/key order everywhere. */
    using Row = std::vector<std::pair<std::string, Value>>;

    virtual ~ResultSink() = default;

    /** Start a result set. @p benchId names the artefact ("Table 5"). */
    virtual void begin(const std::string &benchId,
                       const std::string &caption) = 0;
    virtual void addRow(const Row &row) = 0;
    /** Visual separator; JSON emitters ignore it. */
    virtual void addSeparator() {}
    /** Flush the result set (render the table / write the file). */
    virtual void finish() = 0;
};

/**
 * Renders rows as the aligned text table the benches always printed,
 * with a figureHeader() banner, to an ostream (defaults to stdout).
 * Column headers come from the first row's keys.
 */
class TextTableSink : public ResultSink
{
  public:
    explicit TextTableSink(std::ostream &out);
    TextTableSink();

    void begin(const std::string &benchId,
               const std::string &caption) override;
    void addRow(const Row &row) override;
    void addSeparator() override;
    void finish() override;

  private:
    std::ostream &out_;
    std::vector<std::string> headers_;
    std::vector<std::pair<bool, std::vector<std::string>>> rows_;
    std::string header_;
};

/**
 * Serialises the result set as one JSON document:
 *
 *     {"bench": "...", "caption": "...",
 *      "rows": [{"col": value, ...}, ...]}
 *
 * Keys keep row insertion order. With a path, finish() writes the file;
 * document() returns the serialised text either way.
 */
class JsonSink : public ResultSink
{
  public:
    /** In-memory document only (tests, embedding). */
    JsonSink() = default;
    /** Write to @p path on finish(). */
    explicit JsonSink(std::string path);

    void begin(const std::string &benchId,
               const std::string &caption) override;
    void addRow(const Row &row) override;
    void finish() override;

    std::string document() const;
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::string benchId_;
    std::string caption_;
    std::vector<Row> rows_;
};

/**
 * Serialises the result set as RFC-4180-style CSV: one header line from
 * the first row's keys, then one line per row. Fields containing commas,
 * quotes, or newlines are quoted with doubled inner quotes (csvEscape).
 * With a path, finish() writes the file; document() returns the text
 * either way. Separators are ignored (CSV has no visual rows).
 */
class CsvSink : public ResultSink
{
  public:
    /** In-memory document only (tests, embedding). */
    CsvSink() = default;
    /** Write to @p path on finish(). */
    explicit CsvSink(std::string path);

    void begin(const std::string &benchId,
               const std::string &caption) override;
    void addRow(const Row &row) override;
    void finish() override;

    std::string document() const;
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::vector<Row> rows_;
};

/** Broadcasts every call to a set of sinks (table + JSON together). */
class TeeSink : public ResultSink
{
  public:
    explicit TeeSink(std::vector<ResultSink *> sinks)
        : sinks_(std::move(sinks)) {}

    void
    begin(const std::string &benchId, const std::string &caption) override
    {
        for (auto *s : sinks_) s->begin(benchId, caption);
    }
    void
    addRow(const Row &row) override
    {
        for (auto *s : sinks_) s->addRow(row);
    }
    void
    addSeparator() override
    {
        for (auto *s : sinks_) s->addSeparator();
    }
    void
    finish() override
    {
        for (auto *s : sinks_) s->finish();
    }

  private:
    std::vector<ResultSink *> sinks_;
};

/** JSON string escaping (quotes, backslashes, control characters). */
std::string jsonEscape(const std::string &s);

/** CSV field escaping: quote (doubling inner quotes) only when needed. */
std::string csvEscape(const std::string &s);

/**
 * Artifact path for a bench: `$LEASEOS_OUT/BENCH_<name>.json` when the
 * export directory is configured, else `BENCH_<name>.json` in the CWD.
 */
std::string benchArtifactPath(const std::string &benchName);

/** Artifact directory from $LEASEOS_OUT, or empty when export is off. */
std::string csvOutputDir();

/**
 * Raw time-series export for the figure benches: write @p series as
 * "<$LEASEOS_OUT>/<name>.csv" with one shared time column per row (blank
 * cells where a series has no sample at that instant).
 * @retval true if a file was written (false when export is disabled).
 */
bool maybeExportSeriesCsv(const std::string &name,
                          const std::vector<const sim::TimeSeries *> &series);

/** Single-series convenience overload. */
bool maybeExportSeriesCsv(const std::string &name,
                          const sim::TimeSeries &series);

} // namespace leaseos::harness

#endif // LEASEOS_HARNESS_RESULT_SINK_H
