file(REMOVE_RECURSE
  "CMakeFiles/test_power_manager.dir/os/test_power_manager.cc.o"
  "CMakeFiles/test_power_manager.dir/os/test_power_manager.cc.o.d"
  "test_power_manager"
  "test_power_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
