#include "leaselint/sarif.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "leaselint/rules.h"

namespace leaselint {

namespace {

/** JSON string escaping (local: leaselint has no dependency on leaseos). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
sarifReport(const LintReport &report)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json"
          "\",\n";
    os << "  \"version\": \"2.1.0\",\n";
    os << "  \"runs\": [\n";
    os << "    {\n";
    os << "      \"tool\": {\n";
    os << "        \"driver\": {\n";
    os << "          \"name\": \"leaselint\",\n";
    os << "          \"informationUri\": "
          "\"https://example.invalid/leaselint\",\n";
    os << "          \"rules\": [\n";
    const auto &rules = allRules();
    for (std::size_t i = 0; i < rules.size(); ++i) {
        os << "            {\"id\": \"" << jsonEscape(rules[i].name)
           << "\", \"shortDescription\": {\"text\": \""
           << jsonEscape(rules[i].description) << "\"}}"
           << (i + 1 < rules.size() ? "," : "") << "\n";
    }
    os << "          ]\n";
    os << "        }\n";
    os << "      },\n";
    os << "      \"results\": [\n";
    const auto &findings = report.findings;
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        os << "        {\"ruleId\": \"" << jsonEscape(f.rule)
           << "\", \"level\": \"error\", \"message\": {\"text\": \""
           << jsonEscape(f.message)
           << "\"}, \"locations\": [{\"physicalLocation\": "
              "{\"artifactLocation\": {\"uri\": \""
           << jsonEscape(f.path) << "\"}, \"region\": {\"startLine\": "
           << (f.line > 0 ? f.line : 1) << "}}}]";
        if (f.fix) {
            // A fix-it: insert fix->insertText at the start of fix->line
            // (zero-length deletedRegion = pure insertion).
            os << ", \"fixes\": [{\"description\": {\"text\": \""
               << jsonEscape(f.fix->description)
               << "\"}, \"artifactChanges\": [{\"artifactLocation\": "
                  "{\"uri\": \""
               << jsonEscape(f.path)
               << "\"}, \"replacements\": [{\"deletedRegion\": "
                  "{\"startLine\": "
               << (f.fix->line > 0 ? f.fix->line : 1)
               << ", \"startColumn\": 1, \"endColumn\": 1}, "
                  "\"insertedContent\": {\"text\": \""
               << jsonEscape(f.fix->insertText) << "\"}}]}]}]";
        }
        os << "}" << (i + 1 < findings.size() ? "," : "") << "\n";
    }
    os << "      ]\n";
    os << "    }\n";
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

bool
writeSarif(const LintReport &report, const std::string &path)
{
    std::ofstream out(path);
    if (!out) return false;
    out << sarifReport(report);
    return static_cast<bool>(out);
}

} // namespace leaselint
