/**
 * @file
 * Lease manager tests: adaptive terms, escalation, custom utility,
 * per-resource proxies, Table-3 surface.
 */

#include "lease_fixture.h"

namespace leaseos::lease {
namespace {

using sim::operator""_s;
using sim::operator""_ms;
using sim::operator""_min;
using testing::LeaseFixture;
using testing::LeaseFixtureBase;

struct LeaseManagerTest : LeaseFixture {
    os::PowerManagerService &pms = server.powerManager();
};

TEST_F(LeaseManagerTest, AdaptiveTermGrowsAfterNormalStreak)
{
    os::TokenId t = pms.newWakeLock(kApp, os::WakeLockType::Partial, "x");
    pms.acquire(t);
    // Healthy workload: good utilisation, no exceptions.
    sim.schedulePeriodic(1_s, [&] {
        cpu.runWorkFor(kApp, 1.0, 500_ms);
        return true;
    });
    LeaseId id = mgr.leaseIdForToken(t);
    // 12 normal 5 s terms = 60 s, after which terms grow to 1 min.
    sim.runFor(70_s);
    EXPECT_EQ(mgr.lease(id)->termLength, mgr.policy().mediumTerm);
    EXPECT_EQ(mgr.lease(id)->state, LeaseState::Active);
}

TEST_F(LeaseManagerTest, MisbehaviourResetsTermToInitial)
{
    os::TokenId t = pms.newWakeLock(kApp, os::WakeLockType::Partial, "x");
    pms.acquire(t);
    bool busy = true;
    sim.schedulePeriodic(1_s, [&] {
        if (busy) cpu.runWorkFor(kApp, 1.0, 500_ms);
        return true;
    });
    LeaseId id = mgr.leaseIdForToken(t);
    sim.runFor(70_s);
    ASSERT_EQ(mgr.lease(id)->termLength, mgr.policy().mediumTerm);
    busy = false; // app goes idle while holding: LHB next term
    sim.runFor(3_min);
    const Lease *lease = mgr.lease(id);
    EXPECT_GT(lease->deferrals, 0u);
    EXPECT_EQ(lease->termLength, mgr.policy().initialTerm);
}

TEST_F(LeaseManagerTest, DeferralEscalatesForPersistentMisbehaviour)
{
    os::TokenId t = pms.newWakeLock(kApp, os::WakeLockType::Partial, "x");
    pms.acquire(t);
    LeaseId id = mgr.leaseIdForToken(t);
    // Two full defer cycles: 5+25, then 5+50.
    sim.runFor(6_s);
    ASSERT_EQ(mgr.lease(id)->state, LeaseState::Deferred);
    sim.runFor(25_s + 6_s);
    ASSERT_EQ(mgr.lease(id)->state, LeaseState::Deferred);
    EXPECT_EQ(mgr.lease(id)->consecutiveMisbehaved, 2);
    // τ escalated to 50 s: still deferred 40 s into the second deferral
    // (a non-escalating τ of 25 s would have been over by now).
    sim.runFor(40_s);
    EXPECT_EQ(mgr.lease(id)->state, LeaseState::Deferred);
    // Restored at 85 s; probe inside the short follow-up term (85-90 s)
    // before the still-misbehaving app gets deferred again.
    sim.runFor(9_s);
    EXPECT_EQ(mgr.lease(id)->state, LeaseState::Active);
}

TEST_F(LeaseManagerTest, DeferralSecondsSettleOnResume)
{
    // Idle wakelock: LHB at the first 5 s term end, deferred for τ=25 s,
    // resumed at t=30 s. Deferral seconds are credited when the lease
    // *leaves* DEFERRED, and the realized time equals the scheduled τ
    // only because the deferral ran to completion.
    os::TokenId t = pms.newWakeLock(kApp, os::WakeLockType::Partial, "x");
    pms.acquire(t);
    LeaseId id = mgr.leaseIdForToken(t);
    sim.runFor(15_s);
    ASSERT_EQ(mgr.lease(id)->state, LeaseState::Deferred);
    // Mid-deferral nothing is credited yet — crediting the scheduled τ
    // up-front was the double-accounting bug.
    EXPECT_DOUBLE_EQ(mgr.lease(id)->totalDeferralSeconds, 0.0);
    EXPECT_DOUBLE_EQ(mgr.totalDeferralSeconds(), 0.0);
    sim.runFor(16_s); // past the t=30 s resume
    ASSERT_EQ(mgr.lease(id)->state, LeaseState::Active);
    EXPECT_DOUBLE_EQ(mgr.lease(id)->totalDeferralSeconds, 25.0);
    EXPECT_DOUBLE_EQ(mgr.totalDeferralSeconds(), 25.0);
}

TEST_F(LeaseManagerTest, MidDeferralDeathCreditsRealizedTimeOnly)
{
    // The regression the deferral-accounting invariant guards: a lease
    // killed 10 s into a 25 s deferral must be charged the 10 s that
    // actually elapsed, not the τ that was scheduled.
    os::TokenId t = pms.newWakeLock(kApp, os::WakeLockType::Partial, "x");
    pms.acquire(t);
    LeaseId id = mgr.leaseIdForToken(t);
    sim.runFor(15_s); // deferred at t=5 s; 10 s into the 25 s τ
    ASSERT_EQ(mgr.lease(id)->state, LeaseState::Deferred);
    pms.destroy(t); // app releases+destroys the token mid-deferral
    EXPECT_EQ(mgr.lease(id), nullptr);
    EXPECT_DOUBLE_EQ(mgr.totalDeferralSeconds(), 10.0);
}

TEST_F(LeaseManagerTest, TotalsTrackActivity)
{
    os::TokenId t = pms.newWakeLock(kApp, os::WakeLockType::Partial, "x");
    pms.acquire(t);
    sim.runFor(1_min);
    EXPECT_EQ(mgr.totalCreated(), 1u);
    EXPECT_GT(mgr.totalDeferrals(), 0u);
    EXPECT_GT(mgr.termChecks(), 0u);
    EXPECT_GT(mgr.behaviorCount(BehaviorType::LongHolding), 0u);
}

TEST_F(LeaseManagerTest, TermObserverSeesClassifications)
{
    std::vector<BehaviorType> seen;
    mgr.setTermObserver([&](const Lease &, const TermRecord &rec) {
        seen.push_back(rec.behavior);
    });
    os::TokenId t = pms.newWakeLock(kApp, os::WakeLockType::Partial, "x");
    pms.acquire(t);
    sim.runFor(6_s);
    ASSERT_FALSE(seen.empty());
    EXPECT_EQ(seen.front(), BehaviorType::LongHolding);
}

struct TestCounter : IUtilityCounter {
    double score = 100.0;
    double getScore() override { return score; }
};

TEST_F(LeaseManagerTest, CustomUtilityKeepsLeaseAlive)
{
    // An idle-looking hold would be LHB; but utilisation must be fine for
    // the custom hint to matter, so give it real usage and make the
    // *generic* utility the issue: sensors with no UI evidence.
    auto &sms = server.sensorManager();
    server.activityManager().activityStarted(kApp); // listener bound
    TestCounter counter;
    mgr.setUtility(kApp, ResourceType::Sensor, &counter);
    sms.registerListener(kApp, power::SensorType::Accelerometer, 1_s,
                         nullptr);
    sim.runFor(30_s);
    // High custom score: the sensor lease stays active.
    EXPECT_EQ(mgr.deferredLeases(), 0u);

    counter.score = 0.0; // now the app admits the data is worthless
    sim.runFor(30_s);
    EXPECT_GT(mgr.totalDeferrals(), 0u);
}

TEST_F(LeaseManagerTest, SetUtilityNullClears)
{
    TestCounter counter;
    mgr.setUtility(kApp, ResourceType::Sensor, &counter);
    mgr.setUtility(kApp, ResourceType::Sensor, nullptr);
    server.activityManager().activityStarted(kApp);
    server.sensorManager().registerListener(
        kApp, power::SensorType::Accelerometer, 1_s, nullptr);
    counter.score = 100.0;
    sim.runFor(30_s);
    // Without the counter the generic low sensor utility drives deferral.
    EXPECT_GT(mgr.totalDeferrals(), 0u);
}

TEST_F(LeaseManagerTest, ProxyRegistrationRules)
{
    WakelockLeaseProxy extra(pms, cpu, server.exceptionHandler(),
                             server.activityManager());
    // Type already registered by the runtime.
    EXPECT_FALSE(mgr.registerProxy(&extra));
    EXPECT_FALSE(mgr.unregisterProxy(&extra));
    EXPECT_TRUE(mgr.unregisterProxy(&leaseos.wakelockProxy()));
    EXPECT_TRUE(mgr.registerProxy(&extra));
    EXPECT_FALSE(mgr.registerProxy(nullptr));
}

// ---- Per-resource proxy behaviour -------------------------------------------

struct ProxyTest : LeaseFixture {
};

TEST_F(ProxyTest, GpsFrequentAskDeferred)
{
    gps.setSignalGood(false); // indoors
    auto &lms = server.locationManager();
    os::TokenId t = lms.requestLocationUpdates(kApp, 10_s, nullptr);
    LeaseId id = mgr.leaseIdForToken(t);
    ASSERT_NE(id, kInvalidLeaseId);
    // FAB needs two consecutive confirming terms (cold-start grace).
    sim.runFor(12_s);
    EXPECT_EQ(mgr.lease(id)->state, LeaseState::Deferred);
    EXPECT_EQ(mgr.lastBehavior(id), BehaviorType::FrequentAsk);
    EXPECT_EQ(gps.state(), power::GpsModel::State::Off); // revoked
}

TEST_F(ProxyTest, GpsBackgroundHoldIsLongHolding)
{
    // Good signal, but no Activity bound to the listener and the device
    // never moves: the MozStumbler pattern.
    auto &lms = server.locationManager();
    os::TokenId t = lms.requestLocationUpdates(kApp, 5_s, nullptr);
    LeaseId id = mgr.leaseIdForToken(t);
    sim.runFor(30_s);
    EXPECT_GT(mgr.lease(id)->deferrals, 0u);
    EXPECT_EQ(mgr.lastBehavior(id), BehaviorType::LongHolding);
}

TEST_F(ProxyTest, GpsNavigationWithMovementStaysActive)
{
    // Foreground navigation: Activity alive, device moving.
    server.activityManager().activityStarted(kApp);
    auto &lms = server.locationManager();
    lms.setPositionFn(
        [](sim::Time t) { return GeoPoint{12.0 * t.seconds(), 0.0}; });
    os::TokenId t = lms.requestLocationUpdates(kApp, 2_s, nullptr);
    LeaseId id = mgr.leaseIdForToken(t);
    sim.runFor(2_min);
    EXPECT_EQ(mgr.lease(id)->deferrals, 0u);
    EXPECT_EQ(mgr.lease(id)->state, LeaseState::Active);
}

TEST_F(ProxyTest, ScreenLockWithoutViewerIsLongHolding)
{
    auto &pms = server.powerManager();
    os::TokenId t = pms.newWakeLock(kApp, os::WakeLockType::Full, "s");
    pms.acquire(t);
    LeaseId id = mgr.leaseIdForToken(t);
    ASSERT_NE(id, kInvalidLeaseId);
    sim.runFor(6_s);
    EXPECT_EQ(mgr.lease(id)->state, LeaseState::Deferred);
    EXPECT_EQ(mgr.lastBehavior(id), BehaviorType::LongHolding);
    EXPECT_FALSE(screen.isOn()); // panel actually went dark
}

TEST_F(ProxyTest, WifiLockWithoutTrafficIsLongHolding)
{
    auto &wms = server.wifiManager();
    os::TokenId t = wms.createWifiLock(kApp, "hiperf");
    wms.acquire(t);
    LeaseId id = mgr.leaseIdForToken(t);
    sim.runFor(6_s);
    EXPECT_EQ(mgr.lease(id)->state, LeaseState::Deferred);
    EXPECT_EQ(mgr.lastBehavior(id), BehaviorType::LongHolding);
}

TEST_F(ProxyTest, WifiLockWithTrafficStaysActive)
{
    auto &wms = server.wifiManager();
    os::TokenId t = wms.createWifiLock(kApp, "hiperf");
    wms.acquire(t);
    // Stream: a transfer burst most of every second.
    sim.schedulePeriodic(1_s, [&] {
        radio.transferWifi(kApp, 1500000);
        return true;
    });
    LeaseId id = mgr.leaseIdForToken(t);
    sim.runFor(30_s);
    EXPECT_EQ(mgr.lease(id)->deferrals, 0u);
}

TEST_F(ProxyTest, SeparateLeasesPerResourceType)
{
    auto &pms = server.powerManager();
    auto &wms = server.wifiManager();
    os::TokenId wl = pms.newWakeLock(kApp, os::WakeLockType::Partial, "a");
    os::TokenId wifi = wms.createWifiLock(kApp, "b");
    pms.acquire(wl);
    wms.acquire(wifi);
    LeaseId wl_lease = mgr.leaseIdForToken(wl);
    LeaseId wifi_lease = mgr.leaseIdForToken(wifi);
    EXPECT_NE(wl_lease, kInvalidLeaseId);
    EXPECT_NE(wifi_lease, kInvalidLeaseId);
    EXPECT_NE(wl_lease, wifi_lease);
    EXPECT_EQ(mgr.lease(wl_lease)->rtype, ResourceType::Wakelock);
    EXPECT_EQ(mgr.lease(wifi_lease)->rtype, ResourceType::Wifi);
    EXPECT_EQ(mgr.totalCreated(), 2u);
}

// ---- No-runtime baseline --------------------------------------------------

struct VanillaTest : LeaseFixtureBase {
};

TEST_F(VanillaTest, WithoutRuntimeNothingIsRevoked)
{
    auto &pms = server.powerManager();
    os::TokenId t = pms.newWakeLock(kApp, os::WakeLockType::Partial, "x");
    pms.acquire(t);
    sim.runFor(10_min);
    // Vanilla ask-use-release: held forever, CPU awake the whole time.
    EXPECT_TRUE(pms.isEnabled(t));
    EXPECT_NEAR(cpu.awakeSeconds(), 600.0, 1.0);
}

} // namespace
} // namespace leaseos::lease
