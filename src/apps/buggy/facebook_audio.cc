#include "apps/buggy/facebook_audio.h"

// FacebookAudio is header-only; this TU anchors the module.
namespace leaseos::apps {
} // namespace leaseos::apps
