file(REMOVE_RECURSE
  "CMakeFiles/bench_usability.dir/bench/bench_usability.cc.o"
  "CMakeFiles/bench_usability.dir/bench/bench_usability.cc.o.d"
  "bench/bench_usability"
  "bench/bench_usability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_usability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
