/**
 * @file
 * Unit tests for LeaseTable and Lease value semantics.
 */

#include <gtest/gtest.h>

#include "lease/lease_table.h"

namespace leaseos::lease {
namespace {

TEST(LeaseTableTest, CreateAssignsUniqueIdsAndIndexes)
{
    LeaseTable table;
    Lease &a = table.create(ResourceType::Wakelock, 11, kFirstAppUid);
    Lease &b = table.create(ResourceType::Gps, 22, kFirstAppUid + 1);
    EXPECT_NE(a.id, b.id);
    EXPECT_EQ(table.size(), 2u);
    EXPECT_EQ(table.totalCreated(), 2u);
    EXPECT_EQ(table.find(a.id), &a);
    EXPECT_EQ(table.findByToken(22), &b);
    EXPECT_EQ(table.find(999), nullptr);
    EXPECT_EQ(table.findByToken(999), nullptr);
}

TEST(LeaseTableTest, ReapRemovesBothIndexes)
{
    LeaseTable table;
    Lease &a = table.create(ResourceType::Wifi, 7, kFirstAppUid);
    LeaseId id = a.id;
    table.reap(id);
    EXPECT_EQ(table.size(), 0u);
    EXPECT_EQ(table.find(id), nullptr);
    EXPECT_EQ(table.findByToken(7), nullptr);
    table.reap(id); // double reap is safe
}

TEST(LeaseTableTest, CountInStateAndAll)
{
    LeaseTable table;
    Lease &a = table.create(ResourceType::Wakelock, 1, kFirstAppUid);
    Lease &b = table.create(ResourceType::Wakelock, 2, kFirstAppUid);
    table.create(ResourceType::Wakelock, 3, kFirstAppUid);
    a.state = LeaseState::Deferred;
    b.state = LeaseState::Inactive;
    EXPECT_EQ(table.countInState(LeaseState::Active), 1u);
    EXPECT_EQ(table.countInState(LeaseState::Deferred), 1u);
    EXPECT_EQ(table.countInState(LeaseState::Inactive), 1u);
    EXPECT_EQ(table.all().size(), 3u);
}

TEST(LeaseTest, HistoryBoundedAndLastBehavior)
{
    Lease lease;
    EXPECT_EQ(lease.lastBehavior(), BehaviorType::Normal);
    for (int i = 0; i < 20; ++i) {
        TermRecord rec;
        rec.behavior = i % 2 == 0 ? BehaviorType::LongHolding
                                  : BehaviorType::Normal;
        lease.recordTerm(rec, 8);
    }
    EXPECT_EQ(lease.history.size(), 8u);
    EXPECT_EQ(lease.lastBehavior(), BehaviorType::Normal); // i=19 odd
}

TEST(LeaseTest, StateNames)
{
    EXPECT_STREQ(leaseStateName(LeaseState::Active), "ACTIVE");
    EXPECT_STREQ(leaseStateName(LeaseState::Inactive), "INACTIVE");
    EXPECT_STREQ(leaseStateName(LeaseState::Deferred), "DEFERRED");
    EXPECT_STREQ(leaseStateName(LeaseState::Dead), "DEAD");
}

TEST(BehaviorTest, NamesAndMisbehaviorPredicate)
{
    EXPECT_STREQ(behaviorName(BehaviorType::FrequentAsk), "FAB");
    EXPECT_STREQ(behaviorName(BehaviorType::LongHolding), "LHB");
    EXPECT_STREQ(behaviorName(BehaviorType::LowUtility), "LUB");
    EXPECT_STREQ(behaviorName(BehaviorType::ExcessiveUse), "EUB");
    EXPECT_TRUE(isMisbehavior(BehaviorType::FrequentAsk));
    EXPECT_TRUE(isMisbehavior(BehaviorType::LongHolding));
    EXPECT_TRUE(isMisbehavior(BehaviorType::LowUtility));
    EXPECT_FALSE(isMisbehavior(BehaviorType::ExcessiveUse));
    EXPECT_FALSE(isMisbehavior(BehaviorType::Normal));
}

TEST(ResourceTypeTest, Names)
{
    EXPECT_STREQ(resourceTypeName(ResourceType::Wakelock), "wakelock");
    EXPECT_STREQ(resourceTypeName(ResourceType::Screen), "screen");
    EXPECT_STREQ(resourceTypeName(ResourceType::Gps), "gps");
    EXPECT_STREQ(resourceTypeName(ResourceType::Sensor), "sensor");
    EXPECT_STREQ(resourceTypeName(ResourceType::Wifi), "wifi");
    EXPECT_STREQ(resourceTypeName(ResourceType::Audio), "audio");
    EXPECT_STREQ(resourceTypeName(ResourceType::Bluetooth), "bluetooth");
}

TEST(LeaseStatTest, DerivedRatios)
{
    LeaseStat s;
    s.termStart = sim::Time::zero();
    s.termEnd = sim::Time::fromSeconds(10.0);
    s.holdingSeconds = 5.0;
    s.usageSeconds = 1.0;
    s.requestSeconds = 4.0;
    s.failedRequestSeconds = 3.0;
    EXPECT_DOUBLE_EQ(s.termSeconds(), 10.0);
    EXPECT_DOUBLE_EQ(s.holdingRatio(), 0.5);
    EXPECT_DOUBLE_EQ(s.utilizationRatio(), 0.2);
    EXPECT_DOUBLE_EQ(s.requestSuccessRatio(), 0.25);

    LeaseStat empty;
    EXPECT_DOUBLE_EQ(empty.holdingRatio(), 0.0);
    EXPECT_DOUBLE_EQ(empty.utilizationRatio(), 0.0);
    EXPECT_DOUBLE_EQ(empty.requestSuccessRatio(), 1.0);
}

} // namespace
} // namespace leaseos::lease
