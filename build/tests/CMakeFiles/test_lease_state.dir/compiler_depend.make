# Empty compiler generated dependencies file for test_lease_state.
# This may be replaced when dependencies are built.
