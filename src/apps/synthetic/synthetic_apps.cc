#include "apps/synthetic/synthetic_apps.h"

namespace leaseos::apps {

using sim::operator""_ms;
using sim::operator""_s;

// ---- IntermittentMisbehaviorApp ------------------------------------------

IntermittentMisbehaviorApp::IntermittentMisbehaviorApp(
    app::AppContext &ctx, Uid uid, std::vector<sim::Time> sliceLengths)
    : App(ctx, uid, "IntermittentTest"), slices_(std::move(sliceLengths))
{
}

void
IntermittentMisbehaviorApp::start()
{
    lock_ = ctx_.powerManager().newWakeLock(
        uid(), os::WakeLockType::Partial, "test:intermittent");
    ctx_.powerManager().acquire(lock_);
    busyTick();
    nextSlice();
}

void
IntermittentMisbehaviorApp::nextSlice()
{
    if (index_ >= slices_.size()) return;
    // Even slices misbehave (idle hold), odd slices behave (busy hold).
    misbehaving_ = index_ % 2 == 0;
    sim::Time length = slices_[index_++];
    if (misbehaving_) misbehaveSeconds_ += length.seconds();
    ctx_.sim.schedule(length, [this] { nextSlice(); });
}

void
IntermittentMisbehaviorApp::busyTick()
{
    // Scheduled on the raw simulator: a frozen process must not stop the
    // slice clock, only the work.
    if (!misbehaving_)
        ctx_.cpu.runWorkFor(uid(), 1.0, 500_ms);
    ctx_.sim.schedule(1_s, [this] { busyTick(); });
}

// ---- MicrobenchApp -------------------------------------------------------

void
MicrobenchApp::start()
{
    round();
}

void
MicrobenchApp::round()
{
    if (completed_ >= rounds_) return;
    auto &pms = ctx_.powerManager();
    auto &wms = ctx_.wifiManager();
    auto &lms = ctx_.locationManager();
    auto &sms = ctx_.sensorManager();

    os::TokenId wl = pms.newWakeLock(uid(), os::WakeLockType::Partial,
                                     "bench:wl");
    pms.acquire(wl);
    pms.release(wl);
    pms.destroy(wl);

    os::TokenId wifi = wms.createWifiLock(uid(), "bench:wifi");
    wms.acquire(wifi);
    wms.release(wifi);
    wms.destroy(wifi);

    os::TokenId gps = lms.requestLocationUpdates(uid(), 1_s, nullptr);
    lms.removeUpdates(gps);
    lms.destroy(gps);

    os::TokenId sensor = sms.registerListener(
        uid(), power::SensorType::Accelerometer, 1_s, nullptr);
    sms.unregisterListener(sensor);
    sms.destroy(sensor);

    ++completed_;
    process_.post(200_ms, [this] { round(); });
}

// ---- InteractionFlowApp ---------------------------------------------------

namespace {

/** Sensor listener that fires a callback on the first event. */
struct OneShotSensorListener : os::SensorEventListener {
    std::function<void()> fn;

    void
    onSensorEvent(power::SensorType, double) override
    {
        if (fn) {
            auto f = std::move(fn);
            fn = nullptr;
            f();
        }
    }
};

/** Location listener that fires a callback on the first fix. */
struct OneShotLocationListener : os::LocationListener {
    std::function<void()> fn;

    void
    onLocation(const GeoPoint &) override
    {
        if (fn) {
            auto f = std::move(fn);
            fn = nullptr;
            f();
        }
    }
};

} // namespace

InteractionFlowApp::InteractionFlowApp(app::AppContext &ctx, Uid uid,
                                       Flavor flavor)
    : App(ctx, uid,
          flavor == Flavor::Sensor
              ? "SensorFlow"
              : (flavor == Flavor::Wakelock ? "WakelockFlow" : "GpsFlow")),
      flavor_(flavor)
{
}

void
InteractionFlowApp::start()
{
    // The flow apps act in the foreground: keep the screen path realistic.
    ctx_.activityManager().activityStarted(uid());
    if (flavor_ == Flavor::Gps) {
        // A navigation app in active use: keeps a warm fix (so flows
        // measure hot-GPS latency, Fig. 14's ~2.8 s bar, not a cold
        // TTFF) and redraws its map — the UI evidence that keeps the
        // persistent request's utility high.
        ctx_.locationManager().requestLocationUpdates(uid(), 5_s, nullptr);
        redrawTick();
    }
}

void
InteractionFlowApp::redrawTick()
{
    uiUpdate();
    process_.post(2_s, [this] { redrawTick(); });
}

void
InteractionFlowApp::runFlow(std::function<void(sim::Time)> done)
{
    sim::Time t0 = ctx_.sim.now();
    auto finish = [this, t0, done = std::move(done)] {
        uiUpdate();
        sim::Time latency = ctx_.sim.now() - t0;
        latencies_.record(latency.seconds() * 1000.0);
        if (done) done(latency);
    };

    switch (flavor_) {
      case Flavor::Sensor: {
        // Click → register listener → first sample → UI update.
        auto *listener = new OneShotSensorListener();
        os::TokenId reg = ctx_.sensorManager().registerListener(
            uid(), power::SensorType::Accelerometer, 50_ms, listener);
        listener->fn = [this, reg, listener, finish] {
            ctx_.sensorManager().unregisterListener(reg);
            process_.postNow([finish, listener] {
                finish();
                delete listener;
            });
        };
        break;
      }
      case Flavor::Wakelock: {
        // Click → acquire → ~2.2 s of guarded work → UI update → release.
        os::TokenId lock = ctx_.powerManager().newWakeLock(
            uid(), os::WakeLockType::Partial, "flow:wl");
        ctx_.powerManager().acquire(lock);
        process_.compute(1.0, 2200_ms);
        process_.post(2200_ms, [this, lock, finish] {
            finish();
            ctx_.powerManager().release(lock);
            ctx_.powerManager().destroy(lock);
        });
        break;
      }
      case Flavor::Gps: {
        // Click → request updates → next fix → UI update.
        auto *listener = new OneShotLocationListener();
        os::TokenId req = ctx_.locationManager().requestLocationUpdates(
            uid(), 2750_ms, listener);
        listener->fn = [this, req, listener, finish] {
            ctx_.locationManager().removeUpdates(req);
            process_.postNow([finish, listener] {
                finish();
                delete listener;
            });
        };
        break;
      }
    }
}

} // namespace leaseos::apps
