#ifndef LEASEOS_POWER_ENERGY_ACCOUNTANT_H
#define LEASEOS_POWER_ENERGY_ACCOUNTANT_H

/**
 * @file
 * Per-component, per-app energy bookkeeping.
 *
 * This is the simulator's replacement for the paper's measurement rigs:
 * the Monsoon power monitor (system-wide power) and the Qualcomm Trepn
 * profiler (per-app power). Every power-drawing hardware component owns one
 * or more *channels*; whenever a channel's power or attribution changes the
 * accountant integrates the elapsed interval, so energy totals are exact,
 * not sampled.
 *
 * Attribution follows the way Trepn/Android batterystats assign blame: a
 * channel's draw is divided across the uids responsible for it (wakelock
 * holders, GPS requestors, the app whose code is on-CPU, ...).
 *
 * Storage is flat and dense (DESIGN.md §8): channels are indexed directly
 * by ChannelId, a channel's shares live in a small inline array that only
 * spills past 4 uids, and per-uid integrals sit in dense tables indexed by
 * a uid *slot* interned on first sight. Every share caches its uid's slot,
 * so the per-event integrate loop is pure array arithmetic — no maps, no
 * hashing, no allocation.
 *
 * Readers return *synced* state: call sync() first when you need values
 * up to the current instant (energy accrues continuously between events).
 */

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/inline_vec.h"
#include "obs/metric_registry.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace leaseos::power {

using ChannelId = std::uint32_t;

/**
 * Exact (event-driven) energy integrator with per-uid attribution.
 *
 * Units: power in milliwatts, energy in millijoules (mW·s).
 */
class EnergyAccountant
{
  public:
    explicit EnergyAccountant(sim::Simulator &sim)
        : sim_(sim), metrics_(obs::MetricRegistry::current())
    {
    }
    EnergyAccountant(const EnergyAccountant &) = delete;
    EnergyAccountant &operator=(const EnergyAccountant &) = delete;

    /** Create a named power channel (one per component power source). */
    ChannelId makeChannel(std::string name);

    /**
     * Set a channel's draw as explicit per-uid shares.
     * Integrates the previous setting up to now first. The span contents
     * are copied into the channel's inline share array — callers can pass
     * a view of their own persistent storage and never materialize a
     * temporary vector.
     */
    void setPowerShares(ChannelId ch,
                        std::span<const std::pair<Uid, double>> sharesMw);

    /** Vector convenience overload (tests, cold callers). */
    void
    setPowerShares(ChannelId ch,
                   const std::vector<std::pair<Uid, double>> &sharesMw)
    {
        setPowerShares(ch, std::span<const std::pair<Uid, double>>(
                               sharesMw.data(), sharesMw.size()));
    }

    /**
     * Set a channel's total draw split equally across @p owners
     * (attributed to the system uid when @p owners is empty). Duplicate
     * owners receive one equal share each, preserving the caller's order.
     */
    void setPower(ChannelId ch, double totalMw, std::span<const Uid> owners);

    /** Braced-list convenience: `setPower(ch, mw, {kSystemUid})`. */
    void
    setPower(ChannelId ch, double totalMw, std::initializer_list<Uid> owners)
    {
        setPower(ch, totalMw,
                 std::span<const Uid>(owners.begin(), owners.size()));
    }

    /** Bring all integrals up to the current simulation time. */
    void sync();

    // ---- Readers over synced state --------------------------------------
    // Energy accrues continuously; these return integrals as of the last
    // sync(). Call sync() first (it is idempotent and O(channels)) when a
    // value up to the current instant is needed.

    /** Total energy drawn since construction, in millijoules. */
    double totalEnergyMj() const { return totalMj_; }

    /** Energy attributed to one uid, in millijoules. */
    double uidEnergyMj(Uid uid) const;

    /** Energy drawn through one channel, in millijoules. */
    double channelEnergyMj(ChannelId ch) const;

    /** Energy for one uid on one channel, in millijoules. */
    double uidChannelEnergyMj(Uid uid, ChannelId ch) const;

    /** Instantaneous total draw in mW. */
    double totalPowerMw() const;

    /** Instantaneous draw attributed to @p uid in mW. */
    double uidPowerMw(Uid uid) const;

    const std::string &channelName(ChannelId ch) const;
    std::size_t channelCount() const { return channels_.size(); }

    /**
     * Find a channel by name (e.g. "cpu_idle").
     * @retval channelCount() when no channel has that name.
     */
    ChannelId channelByName(const std::string &name) const;

    /** All uids that ever drew power (sorted, for report iteration). */
    std::vector<Uid> knownUids() const;

    /**
     * Serialize the raw integrals, uid-slot table, and current shares as
     * an "energy" section (DESIGN.md §11). Deliberately does NOT sync()
     * first: splitting an integration interval changes floating-point
     * sums, so a checkpoint must capture the integrals exactly as the
     * running device holds them.
     */
    void saveState(sim::CheckpointWriter &w) const;

    /**
     * Restore integrals saved by saveState() onto an accountant whose
     * channels were created in the same order with the same names
     * (i.e. an identically configured device); throws CheckpointError
     * on any mismatch.
     */
    void restoreState(sim::CheckpointReader &r);

  private:
    /** One attribution entry; the uid's dense slot is cached at set time. */
    struct Share {
        Uid uid;
        std::uint32_t slot;
        double mw;
    };

    struct Channel {
        std::string name;
        common::InlineVec<Share, 4> shares;
        double energyMj = 0.0;
        /** Per-uid integral, indexed by uid slot (grown at share-set). */
        std::vector<double> uidMj;
        /** Registry gauge "power.<name>.mj" (telemetry runs only). */
        obs::MetricId metric = obs::kInvalidMetricId;
    };

    /** Dense slot for @p uid, interning it on first sight. */
    std::uint32_t uidSlot(Uid uid);

    /** Integrate one channel from lastSync_ to now. */
    void integrate(Channel &ch, double dtSeconds);

    sim::Simulator &sim_;
    /** Telemetry (nullptr unless a registry was installed for the run). */
    obs::MetricRegistry *metrics_;
    std::vector<Channel> channels_;
    sim::Time lastSync_;
    double totalMj_ = 0.0;
    std::vector<Uid> uids_;    ///< slot -> uid, first-seen order
    std::vector<double> uidMj_; ///< per-uid integral, indexed by slot
};

} // namespace leaseos::power

#endif // LEASEOS_POWER_ENERGY_ACCOUNTANT_H
