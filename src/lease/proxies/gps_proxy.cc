#include "lease/proxies/gps_proxy.h"

#include "lease/utility/generic_utility.h"

namespace leaseos::lease {

GpsLeaseProxy::GpsLeaseProxy(os::LocationManagerService &lms,
                             os::ActivityManagerService &am)
    : LeaseProxy(ResourceType::Gps), lms_(lms), am_(am)
{
    lms_.addListener(this);
}

void
GpsLeaseProxy::onExpire(const Lease &lease)
{
    lms_.suspend(lease.token);
}

void
GpsLeaseProxy::onRenew(const Lease &lease)
{
    lms_.restore(lease.token);
}

bool
GpsLeaseProxy::resourceHeld(const Lease &lease)
{
    return lms_.isActive(lease.token);
}

GpsLeaseProxy::Snapshot
GpsLeaseProxy::snapshot(const Lease &lease)
{
    Snapshot s;
    s.requestSeconds = lms_.requestSeconds(lease.uid);
    s.noFixSeconds = lms_.noFixSeconds(lease.uid);
    s.activitySeconds = am_.activityAliveSeconds(lease.uid);
    s.distanceMeters = lms_.distanceMeters(lease.uid);
    s.uiUpdates = am_.uiUpdateCount(lease.uid);
    s.interactions = am_.userInteractionCount(lease.uid);
    s.requests = lms_.requestCount(lease.uid);
    return s;
}

void
GpsLeaseProxy::beginTerm(const Lease &lease)
{
    snapshots_[lease.id] = snapshot(lease);
}

LeaseStat
GpsLeaseProxy::collectStat(const Lease &lease)
{
    Snapshot start = snapshots_[lease.id];
    Snapshot now = snapshot(lease);

    LeaseStat stat;
    stat.termStart = lease.termStart;
    stat.termEnd = lease.termStart + lease.termLength;
    stat.requestSeconds = now.requestSeconds - start.requestSeconds;
    stat.failedRequestSeconds = now.noFixSeconds - start.noFixSeconds;
    // For a subscription resource, holding == the outstanding request.
    stat.holdingSeconds = stat.requestSeconds;
    stat.usageSeconds = now.activitySeconds - start.activitySeconds;
    stat.distanceMeters = now.distanceMeters - start.distanceMeters;
    stat.uiUpdates = now.uiUpdates - start.uiUpdates;
    stat.interactions = now.interactions - start.interactions;
    stat.acquires = now.requests - start.requests;
    stat.heldAtTermEnd = lms_.isActive(lease.token);

    utility::Signals signals;
    signals.termSeconds = stat.termSeconds();
    signals.usageSeconds = stat.usageSeconds;
    signals.distanceMeters = stat.distanceMeters;
    signals.uiUpdates = stat.uiUpdates;
    signals.interactions = stat.interactions;
    stat.utilityScore = utility::genericScore(ResourceType::Gps, signals);
    return stat;
}

} // namespace leaseos::lease
