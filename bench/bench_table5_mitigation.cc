/**
 * @file
 * Reproduces Table 5 — the paper's headline result: for each of the 20
 * real-world buggy apps, the app-level power on vanilla Android and under
 * LeaseOS, aggressive Doze (Doze*), and DefDroid, with the reduction
 * percentages, over 30-minute Pixel XL runs sampled at 100 ms.
 *
 * Expected shape (not absolute numbers): LeaseOS reduces wasted power by
 * ~92 % on average and beats Doze* (~69 %) and DefDroid (~62 %); Doze is
 * nearly useless on the screen-wakelock rows (it never touches the
 * screen); DefDroid is weakest on the GPS rows.
 *
 * The 80 cells (20 apps x 4 modes) are independent simulations and run on
 * a worker pool: pass `--jobs N` (or set LEASEOS_JOBS) to pick the pool
 * size, default hardware_concurrency. Results are identical for every
 * job count. A machine-readable copy of the table lands in
 * BENCH_table5_mitigation.json.
 *
 * `--trace-dir=DIR` turns on telemetry for the sweep (the nightly CI
 * configuration): every cell collects a MetricRegistry rollup into
 * DIR/rollup.json, and each of the 20 LeaseOS cells exports its trace
 * ring to DIR/<app>_leaseos.jsonl (populated in -DLEASEOS_TRACING=ON
 * builds). The stdout table is unaffected.
 *
 * `--flightrec-dir=DIR` installs an obs::FlightRecorder per cell: if the
 * checked-mode oracle aborts, the cell's trace ring and metrics snapshot
 * land in DIR/flightrec-<cell>-*.json for tools/tracereplay triage.
 */

#include <cstring>
#include <iostream>
#include <string>

#include "apps/registry.h"
#include "harness/experiment.h"
#include "harness/result_sink.h"
#include "harness/runner.h"
#include "harness/table.h"

using namespace leaseos;
using harness::MitigationMode;
using harness::ResultSink;
using harness::TextTable;

int
main(int argc, char **argv)
{
    harness::MitigationRunOptions opt; // 30 min, Pixel XL, user glances

    std::string traceDir;
    std::string flightRecDir;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--trace-dir=", 12) == 0)
            traceDir = argv[i] + 12;
        else if (std::strncmp(argv[i], "--flightrec-dir=", 16) == 0)
            flightRecDir = argv[i] + 16;
    }

    const MitigationMode modes[] = {
        MitigationMode::None, MitigationMode::LeaseOS,
        MitigationMode::DozeAggressive, MitigationMode::DefDroid};

    // One spec per (app, mode) cell, grouped per app so results index as
    // cell = results[appIndex * 4 + modeIndex].
    std::vector<harness::RunSpec> specs;
    for (const auto &spec : apps::table5Specs())
        for (MitigationMode mode : modes) {
            harness::RunSpec run =
                harness::mitigationCellSpec(spec, mode, opt);
            if (!traceDir.empty()) {
                run.collectMetrics = true;
                if (mode == MitigationMode::LeaseOS) {
                    // Lease cells are the interesting traces; a 16K ring
                    // comfortably holds a 30-minute cell's sampled events.
                    run.tracePath = traceDir + "/" + spec.key +
                                    "_leaseos.jsonl";
                    run.traceCapacity = 1u << 14;
                }
            }
            // In checked builds an oracle abort first dumps the cell's
            // trace ring + metrics there for offline tracereplay triage.
            if (!flightRecDir.empty()) run.flightRecordDir = flightRecDir;
            specs.push_back(std::move(run));
        }

    harness::ParallelRunner runner(harness::ParallelRunner::parseArgs(
        argc, argv));
    std::cerr << "[table5] " << specs.size() << " cells on "
              << runner.jobs() << " worker(s)\n";
    auto results = runner.run(specs, [](const harness::RunResult &r) {
        std::cerr << "[table5] " << r.name << " done\n";
    });

    harness::TextTableSink table;
    harness::JsonSink json(
        harness::benchArtifactPath("table5_mitigation"));
    harness::TeeSink sink({&table, &json});
    sink.begin(
        "Table 5",
        "Real-world apps with FAB/LHB/LUB misbehaviour: power (mW) w/o "
        "lease vs LeaseOS / Doze* / DefDroid, and reduction percentages. "
        "30-minute runs, Pixel XL, 100 ms power sampling. Doze* is "
        "force-triggered as in the paper.");

    double sum_lease = 0.0;
    double sum_doze = 0.0;
    double sum_defdroid = 0.0;
    int rows = 0;

    const auto &table5 = apps::table5Specs();
    for (std::size_t a = 0; a < table5.size(); ++a) {
        const auto &spec = table5[a];
        const auto &vanilla = results[a * 4 + 0];
        const auto &leased = results[a * 4 + 1];
        const auto &dozed = results[a * 4 + 2];
        const auto &defdroid = results[a * 4 + 3];

        double r_lease = harness::reductionPercent(vanilla.appPowerMw,
                                                   leased.appPowerMw);
        double r_doze = harness::reductionPercent(vanilla.appPowerMw,
                                                  dozed.appPowerMw);
        double r_defdroid = harness::reductionPercent(
            vanilla.appPowerMw, defdroid.appPowerMw);
        sum_lease += r_lease;
        sum_doze += r_doze;
        sum_defdroid += r_defdroid;
        ++rows;

        sink.addRow({{"App", ResultSink::Value::str(spec.display)},
                     {"Cat.", ResultSink::Value::str(spec.category)},
                     {"Res.", ResultSink::Value::str(spec.resource)},
                     {"Behav.", ResultSink::Value::str(spec.behavior)},
                     {"w/o lease",
                      ResultSink::Value::num(vanilla.appPowerMw)},
                     {"LeaseOS", ResultSink::Value::num(leased.appPowerMw)},
                     {"Doze*", ResultSink::Value::num(dozed.appPowerMw)},
                     {"DefDroid",
                      ResultSink::Value::num(defdroid.appPowerMw)},
                     {"Lease%", ResultSink::Value::num(r_lease)},
                     {"Doze%", ResultSink::Value::num(r_doze)},
                     {"DefDroid%", ResultSink::Value::num(r_defdroid)}});
    }

    sink.addSeparator();
    sink.addRow({{"App", ResultSink::Value::str("Average")},
                 {"Cat.", ResultSink::Value::str("")},
                 {"Res.", ResultSink::Value::str("")},
                 {"Behav.", ResultSink::Value::str("")},
                 {"w/o lease", ResultSink::Value::str("")},
                 {"LeaseOS", ResultSink::Value::str("")},
                 {"Doze*", ResultSink::Value::str("")},
                 {"DefDroid", ResultSink::Value::str("")},
                 {"Lease%", ResultSink::Value::num(sum_lease / rows)},
                 {"Doze%", ResultSink::Value::num(sum_doze / rows)},
                 {"DefDroid%",
                  ResultSink::Value::num(sum_defdroid / rows)}});
    sink.finish();
    if (!traceDir.empty()) {
        // Per-cell metric rollups for the nightly artifact: one row per
        // cell, every registered metric flattened to a key.
        harness::JsonSink rollup(traceDir + "/rollup.json");
        rollup.begin("Table 5 telemetry",
                     "Per-cell MetricRegistry rollups for the 80-cell "
                     "sweep; LeaseOS cells also export trace rings "
                     "alongside this file.");
        for (const auto &r : results) {
            ResultSink::Row row;
            row.emplace_back("cell", ResultSink::Value::str(r.name));
            row.emplace_back("app_mw",
                             ResultSink::Value::num(r.appPowerMw, 3));
            row.emplace_back(
                "trace_events",
                ResultSink::Value::count(static_cast<std::int64_t>(
                    r.traceEventsEmitted)));
            for (const auto &[metricName, value] : r.metrics)
                row.emplace_back(metricName,
                                 ResultSink::Value::num(value, 3));
            rollup.addRow(row);
        }
        rollup.finish();
    }
    std::cout << "\nPaper averages: LeaseOS 92.62%, Doze* 69.64%, "
                 "DefDroid 62.04%.\n";
    return 0;
}
