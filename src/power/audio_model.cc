#include "power/audio_model.h"

#include "power/checkpoint_io.h"

namespace leaseos::power {

void
AudioModel::saveState(sim::CheckpointWriter &w) const
{
    w.beginSection("audio", 1);
    w.u64(players_.size());
    for (Uid u : players_) w.u32(static_cast<std::uint32_t>(u));
    w.endSection();
}

void
AudioModel::restoreState(sim::CheckpointReader &r)
{
    sim::requireSectionVersion("audio", r.beginSection("audio"), 1);
    players_.clear();
    std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i)
        players_.insert(static_cast<Uid>(r.u32()));
    r.endSection();
}

} // namespace leaseos::power
