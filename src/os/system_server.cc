#include "os/system_server.h"

namespace leaseos::os {

SystemServer::SystemServer(sim::Simulator &sim, power::CpuModel &cpu,
                           power::ScreenModel &screen, power::GpsModel &gps,
                           power::RadioModel &radio,
                           power::SensorModel &sensors,
                           power::AudioModel &audio,
                           power::BluetoothModel &bluetooth,
                           power::EnergyAccountant &accountant)
    : audio_(audio)
{
    powerManager_ =
        std::make_unique<PowerManagerService>(sim, cpu, tokens_);
    locationManager_ =
        std::make_unique<LocationManagerService>(sim, cpu, gps, tokens_);
    sensorManager_ =
        std::make_unique<SensorManagerService>(sim, cpu, sensors, tokens_);
    wifiManager_ =
        std::make_unique<WifiManagerService>(sim, cpu, radio, tokens_);
    displayManager_ =
        std::make_unique<DisplayManagerService>(sim, cpu, screen);
    alarmManager_ =
        std::make_unique<AlarmManagerService>(sim, cpu, tokens_);
    activityManager_ = std::make_unique<ActivityManagerService>(sim, cpu);
    exceptionHandler_ = std::make_unique<ExceptionNoteHandler>(sim);
    audioSessions_ = std::make_unique<AudioSessionService>(
        sim, cpu, audio, accountant, tokens_);
    bluetoothService_ =
        std::make_unique<BluetoothService>(sim, cpu, bluetooth, tokens_);

    // Full wakelocks force the screen on via the display policy.
    powerManager_->setFullLockCallback([this](std::vector<Uid> owners) {
        displayManager_->setForcedOwners(std::move(owners));
    });
}

} // namespace leaseos::os
