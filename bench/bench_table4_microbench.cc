/**
 * @file
 * Reproduces Table 4: average latency of major lease operations, from the
 * test app that acquires and releases different resources 20 times. Two
 * parts:
 *  1. the modelled operation latencies the simulated system charges
 *     (create / check-accept / check-reject / update), compared with a
 *     plain resource-acquire IPC without leases (~2 ms);
 *  2. a google-benchmark measurement of this implementation's actual
 *     lease-manager hot paths (create+remove / check / term update) in
 *     wall-clock nanoseconds.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "apps/synthetic/synthetic_apps.h"
#include "harness/device.h"
#include "harness/figure.h"
#include "harness/table.h"

using namespace leaseos;
using sim::operator""_s;
using sim::operator""_min;

namespace {

void
printModeledLatencies()
{
    std::cout << harness::figureHeader(
        "Table 4",
        "Average latency of major lease operations (ms). Paper: create "
        "0.357, check(acc) 0.498, check(rej) 0.388, update 4.79; plain "
        "resource-acquire IPC without lease ~2 ms.");

    // Exercise the paths with the paper's micro-bench app so the numbers
    // below are the ones actually charged during a run.
    harness::DeviceConfig cfg;
    cfg.mode = harness::MitigationMode::LeaseOS;
    harness::Device device(cfg);
    // The test app is driven interactively: screen on, device awake.
    device.server().displayManager().userSetScreen(true);
    auto &app = device.install<apps::MicrobenchApp>(20);
    device.start();
    device.runFor(1_min);

    harness::TextTable table({"Operation", "Latency (ms)"});
    table.addRow({"Create",
                  harness::TextTable::fmt(
                      lease::LeaseManagerService::kCreateLatency.micros() /
                          1000.0,
                      3)});
    table.addRow(
        {"Check (Acc)",
         harness::TextTable::fmt(
             lease::LeaseManagerService::kCheckAcceptLatency.micros() /
                 1000.0,
             3)});
    table.addRow(
        {"Check (Rej)",
         harness::TextTable::fmt(
             lease::LeaseManagerService::kCheckRejectLatency.micros() /
                 1000.0,
             3)});
    table.addRow({"Update",
                  harness::TextTable::fmt(
                      lease::LeaseManagerService::kUpdateLatency.micros() /
                          1000.0,
                      3)});
    table.addSeparator();
    table.addRow({"resource acquire IPC (no lease)",
                  harness::TextTable::fmt(
                      os::kResourceIpcLatency.micros() / 1000.0, 3)});
    std::cout << table.toString();
    std::cout << "\nmicro-bench app completed rounds: "
              << app.completedRounds() << " x 4 resources; leases created: "
              << device.leaseos()->manager().totalCreated() << "\n"
              << "Lease ops run on the system side and are not on app "
                 "critical paths most of the time (§7.2).\n\n"
              << "google-benchmark of this implementation's hot paths "
                 "(wall clock):\n";
}

// ---- google-benchmark of the real implementation --------------------------

struct BenchWorld {
    harness::Device device{[] {
        harness::DeviceConfig cfg;
        cfg.mode = harness::MitigationMode::LeaseOS;
        return cfg;
    }()};
};

void
BM_LeaseCreateRemove(benchmark::State &state)
{
    BenchWorld world;
    auto &mgr = world.device.leaseos()->manager();
    os::TokenId token = 1000000;
    for (auto _ : state) {
        lease::LeaseId id = mgr.create(lease::ResourceType::Wakelock,
                                       ++token, kFirstAppUid);
        mgr.remove(id);
    }
}
BENCHMARK(BM_LeaseCreateRemove);

void
BM_LeaseCheck(benchmark::State &state)
{
    BenchWorld world;
    auto &mgr = world.device.leaseos()->manager();
    lease::LeaseId id =
        mgr.create(lease::ResourceType::Wakelock, 999999, kFirstAppUid);
    for (auto _ : state) benchmark::DoNotOptimize(mgr.check(id));
}
BENCHMARK(BM_LeaseCheck);

void
BM_TermUpdateCycle(benchmark::State &state)
{
    // Drive full term-check cycles (collect stats + classify + decide)
    // through simulated time with a held wakelock.
    BenchWorld world;
    auto &device = world.device;
    auto &pms = device.server().powerManager();
    os::TokenId t =
        pms.newWakeLock(kFirstAppUid, os::WakeLockType::Partial, "bm");
    pms.acquire(t);
    device.start();
    for (auto _ : state) device.runFor(5_s); // ≥1 term check per iteration
    state.SetItemsProcessed(static_cast<std::int64_t>(
        device.leaseos()->manager().termChecks()));
}
BENCHMARK(BM_TermUpdateCycle);

} // namespace

int
main(int argc, char **argv)
{
    printModeledLatencies();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
