/**
 * @file
 * Reproduces Figure 9 and the §5.1 analytical model: resource holding
 * times of a Long-Holding test app (the Torch-based one: acquire a
 * wakelock, hold it 30 minutes doing nothing) under different lease
 * terms.
 *
 *  (a) fixed deferral τ = 30 s, terms {30 s, 60 s, 180 s, ∞}: holding
 *      grows with the term (λ = 1, 0.5, 1/6);
 *  (b) fixed λ = 1 (τ = term): holding ~900 s for every term — only the
 *      ratio λ matters, not the absolute term (r = 1/(1+λ)).
 */

#include <iostream>

#include "apps/synthetic/synthetic_apps.h"
#include "harness/device.h"
#include "harness/figure.h"
#include "harness/table.h"

using namespace leaseos;
using sim::operator""_s;
using sim::operator""_min;

namespace {

/** Run the LHB test app for 30 min; return effective holding seconds. */
double
runWith(sim::Time term, sim::Time tau, bool lease_enabled)
{
    harness::DeviceConfig cfg;
    cfg.mode = lease_enabled ? harness::MitigationMode::LeaseOS
                             : harness::MitigationMode::None;
    cfg.leasePolicy.initialTerm = term;
    cfg.leasePolicy.deferralInterval = tau;
    cfg.leasePolicy.adaptiveTerm = false;   // isolate the term variable
    cfg.leasePolicy.escalateDeferral = false; // the paper's fixed-τ setup
    harness::Device device(cfg);
    auto &app = device.install<apps::LongHoldingTestApp>();
    device.start();
    device.runFor(30_min);
    return device.server().powerManager().enabledSeconds(app.uid());
}

std::string
termLabel(sim::Time t)
{
    if (t == sim::Time::max()) return "inf";
    return harness::TextTable::fmt(t.seconds(), 0) + "s";
}

} // namespace

int
main()
{
    std::cout << harness::figureHeader(
        "Figure 9",
        "Resource holding times (s) of a test app with Long-Holding "
        "misbehaviour under different lease terms (30-minute runs). "
        "Paper: (a) tau=30s fixed -> 904/1201/1560/1800; (b) lambda=1 -> "
        "900/900/899/1800.");

    const sim::Time terms[] = {30_s, 60_s, 180_s};

    std::cout << "(a) fixed deferral interval tau = 30 s\n";
    std::vector<std::pair<std::string, double>> bars_a;
    for (sim::Time term : terms)
        bars_a.emplace_back(termLabel(term), runWith(term, 30_s, true));
    bars_a.emplace_back("inf", runWith(30_s, 30_s, false));
    std::cout << harness::barChart(bars_a, "s held", 1800.0) << "\n";

    std::cout << "(b) fixed lambda = tau/term = 1\n";
    std::vector<std::pair<std::string, double>> bars_b;
    for (sim::Time term : terms)
        bars_b.emplace_back(termLabel(term), runWith(term, term, true));
    bars_b.emplace_back("inf", runWith(30_s, 30_s, false));
    std::cout << harness::barChart(bars_b, "s held", 1800.0) << "\n";

    // §5.1 model check: holding fraction r = 1/(1+lambda).
    harness::TextTable model({"term", "tau", "lambda", "measured r",
                              "model 1/(1+lambda)"});
    for (sim::Time term : terms) {
        for (sim::Time tau : {30_s, term}) {
            double lambda = tau / term;
            double measured = runWith(term, tau, true) / 1800.0;
            model.addRow({termLabel(term), termLabel(tau),
                          harness::TextTable::fmt(lambda, 2),
                          harness::TextTable::fmt(measured, 3),
                          harness::TextTable::fmt(1.0 / (1.0 + lambda),
                                                  3)});
        }
    }
    std::cout << "Model validation (r = holding fraction):\n"
              << model.toString();
    return 0;
}
