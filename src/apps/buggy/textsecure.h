#ifndef LEASEOS_APPS_BUGGY_TEXTSECURE_H
#define LEASEOS_APPS_BUGGY_TEXTSECURE_H

/**
 * @file
 * TextSecure model (Table 5 row; issue #2498 "battery usage is high").
 * The websocket keep-alive loop reconnects in a tight cycle against an
 * unreachable push endpoint while holding its wakelock → Low-Utility.
 */

#include "app/app.h"
#include "os/binder.h"

namespace leaseos::apps {

/**
 * Buggy TextSecure push connection.
 */
class TextSecure : public app::App
{
  public:
    static constexpr const char *kServer = "push.textsecure.example";

    TextSecure(app::AppContext &ctx, Uid uid)
        : App(ctx, uid, "TextSecure") {}

    void
    start() override
    {
        lock_ = ctx_.powerManager().newWakeLock(
            uid(), os::WakeLockType::Partial, "TextSecure:push");
        // leaselint: allow(cross-unit-pairing) -- modelled defect: push lock leaks
        ctx_.powerManager().acquire(lock_);
        reconnect();
    }

    void
    stop() override
    {
        stopped_ = true;
        ctx_.powerManager().destroy(lock_);
        App::stop();
    }

  private:
    void
    reconnect()
    {
        if (stopped_) return;
        process_.computeScaled(0.6, sim::Time::fromMillis(150));
        ctx_.network.httpRequest(
            uid(), kServer, 4000, [this](env::NetResult result) {
                process_.postNow([this, result] {
                    if (stopped_) return;
                    if (result != env::NetResult::Ok) throwSevere();
                    process_.post(sim::Time::fromMillis(700),
                                  [this] { reconnect(); });
                });
            });
    }

    os::TokenId lock_ = os::kInvalidToken;
    bool stopped_ = false;
};

} // namespace leaseos::apps

#endif // LEASEOS_APPS_BUGGY_TEXTSECURE_H
