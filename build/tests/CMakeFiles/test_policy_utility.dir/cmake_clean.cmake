file(REMOVE_RECURSE
  "CMakeFiles/test_policy_utility.dir/lease/test_policy_utility.cc.o"
  "CMakeFiles/test_policy_utility.dir/lease/test_policy_utility.cc.o.d"
  "test_policy_utility"
  "test_policy_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
