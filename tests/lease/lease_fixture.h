#ifndef LEASEOS_TESTS_LEASE_FIXTURE_H
#define LEASEOS_TESTS_LEASE_FIXTURE_H

/**
 * @file
 * Shared fixture: full device substrate + LeaseOS runtime.
 */

#include <gtest/gtest.h>

#include "lease/leaseos_runtime.h"
#include "os/system_server.h"

namespace leaseos::lease::testing {

struct LeaseFixtureBase : ::testing::Test {
    sim::Simulator sim;
    power::DeviceProfile profile = power::profiles::pixelXl();
    power::EnergyAccountant acc{sim};
    power::CpuModel cpu{sim, acc, profile};
    power::ScreenModel screen{sim, acc, profile};
    power::GpsModel gps{sim, acc, profile};
    power::RadioModel radio{sim, acc, profile};
    power::SensorModel sensors{sim, acc, profile};
    power::AudioModel audio{sim, acc, profile};
    power::BluetoothModel bluetooth{sim, acc, profile};
    os::SystemServer server{sim,     cpu,   screen,    gps, radio,
                            sensors, audio, bluetooth, acc};

    static constexpr Uid kApp = kFirstAppUid;
    static constexpr Uid kApp2 = kFirstAppUid + 1;

    static LeasePolicy
    defaultPolicy()
    {
        return LeasePolicy{};
    }
};

/** Fixture with the LeaseOS runtime installed under the default policy. */
struct LeaseFixture : LeaseFixtureBase {
    LeaseOsRuntime leaseos{sim, cpu, radio, server, defaultPolicy()};
    LeaseManagerService &mgr = leaseos.manager();
};

} // namespace leaseos::lease::testing

#endif // LEASEOS_TESTS_LEASE_FIXTURE_H
