#ifndef LEASEOS_TOOLS_TRACEREPLAY_CHECKPOINT_VIEW_H
#define LEASEOS_TOOLS_TRACEREPLAY_CHECKPOINT_VIEW_H

/**
 * @file
 * Offline view of a device checkpoint blob (DESIGN.md §11).
 *
 * The sharded runner (and `bench_fleet --shard-minutes`) writes framed
 * snapshot blobs at slice boundaries. This module lets tracereplay
 * triage them without a simulator:
 *
 *  - decode the section table and the load-bearing scalars (sim clock,
 *    event count, energy integral, lease table);
 *  - sanity-check the lease table against the §4.3 invariants that must
 *    hold at any quiescent boundary (states in range, token index
 *    consistent, no ACTIVE lease past its term end, no DEFERRED lease
 *    deferred in the future);
 *  - seed replay::validate() with the blob's lease states, so a trace
 *    captured *after* the boundary is validated from the checkpoint
 *    baseline instead of replaying the whole prefix (leases alive at
 *    the boundary would otherwise all count as ring-wrap inferences).
 */

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace leaseos::tracereplay {

/** One lease row decoded from the blob's "leases" section. */
struct CkptLease {
    std::uint64_t id = 0;
    std::int32_t uid = 0;
    std::uint8_t rtype = 0;
    std::uint64_t token = 0;
    std::uint8_t state = 0; ///< LeaseState numeric value
    std::int64_t termIndex = 0;
    std::uint64_t renewals = 0;
    std::uint64_t deferrals = 0;
    std::int64_t termStartNs = 0;
    std::int64_t termLengthNs = 0;
    std::int64_t deferredAtNs = 0;
    std::size_t historyLen = 0;
};

/** Decoded checkpoint: section table + the scalars the CLI reports. */
struct CheckpointView {
    std::string error; ///< non-empty when loading/decoding failed
    bool ok() const { return error.empty(); }

    struct Section {
        std::string name;
        std::uint32_t version = 0;
        std::uint64_t bodyBytes = 0;
    };
    std::vector<Section> sections;
    std::uint64_t payloadBytes = 0;

    // "meta"
    std::uint8_t mode = 0;
    std::uint64_t seed = 0;
    std::string profile;
    std::uint64_t appCount = 0;

    // "sim"
    std::int64_t simTimeNs = 0;
    std::uint64_t executedEvents = 0;

    // "energy"
    double totalMj = 0.0;

    // "leases" (hasLeases false on a vanilla-mode blob)
    bool hasLeases = false;
    std::uint64_t nextLeaseId = 0;
    std::vector<CkptLease> leases;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> byToken;
};

/** Issue found by checkCheckpoint(). */
struct CheckpointIssue {
    std::string check; ///< "lease-state", "token-index", ...
    std::string detail;
    std::string toString() const;
};

/** Load and decode a checkpoint blob written by Device::saveCheckpoint. */
CheckpointView loadCheckpointView(const std::string &path);

/** Boundary-invariant sanity checks on a decoded blob. */
std::vector<CheckpointIssue> checkCheckpoint(const CheckpointView &view);

} // namespace leaseos::tracereplay

#endif // LEASEOS_TOOLS_TRACEREPLAY_CHECKPOINT_VIEW_H
