/**
 * @file
 * Unit tests for screen, GPS, radio, sensor, and audio power models.
 */

#include <gtest/gtest.h>

#include "power/audio_model.h"
#include "power/gps_model.h"
#include "power/radio_model.h"
#include "power/screen_model.h"
#include "power/sensor_model.h"

namespace leaseos::power {
namespace {

using sim::operator""_s;

constexpr Uid kApp = kFirstAppUid;
constexpr Uid kApp2 = kFirstAppUid + 1;

struct ComponentFixture : ::testing::Test {
    sim::Simulator sim;
    EnergyAccountant acc{sim};
    DeviceProfile profile = profiles::pixelXl();
};

// ---- Screen --------------------------------------------------------------

TEST_F(ComponentFixture, ScreenOffDrawsNothing)
{
    ScreenModel screen(sim, acc, profile);
    sim.runFor(10_s);
    acc.sync();
    EXPECT_DOUBLE_EQ(acc.totalEnergyMj(), 0.0);
}

TEST_F(ComponentFixture, ScreenOnDrawsBasePlusBrightness)
{
    ScreenModel screen(sim, acc, profile);
    screen.setBrightness(1.0);
    screen.setOn(true);
    sim.runFor(10_s);
    acc.sync();
    EXPECT_DOUBLE_EQ(acc.totalEnergyMj(),
                     (profile.screenBaseMw + profile.screenFullMw) * 10.0);
}

TEST_F(ComponentFixture, ScreenWakelockOwnerAttribution)
{
    ScreenModel screen(sim, acc, profile);
    screen.setOn(true, {kApp});
    sim.runFor(10_s);
    acc.sync();
    EXPECT_GT(acc.uidEnergyMj(kApp), 0.0);
    EXPECT_DOUBLE_EQ(acc.uidEnergyMj(kSystemUid), 0.0);
}

TEST_F(ComponentFixture, BrightnessClamped)
{
    ScreenModel screen(sim, acc, profile);
    screen.setBrightness(5.0);
    EXPECT_DOUBLE_EQ(screen.brightness(), 1.0);
    screen.setBrightness(-1.0);
    EXPECT_DOUBLE_EQ(screen.brightness(), 0.0);
}

// ---- GPS -------------------------------------------------------------------

TEST_F(ComponentFixture, GpsOffWithNoRequests)
{
    GpsModel gps(sim, acc, profile);
    EXPECT_EQ(gps.state(), GpsModel::State::Off);
    sim.runFor(5_s);
    acc.sync();
    EXPECT_DOUBLE_EQ(acc.totalEnergyMj(), 0.0);
}

TEST_F(ComponentFixture, GpsAcquiresFixWithGoodSignal)
{
    GpsModel gps(sim, acc, profile);
    bool got_fix = false;
    gps.addFixListener([&](bool fix) { got_fix = fix; });
    gps.setRequestOwners({kApp});
    EXPECT_EQ(gps.state(), GpsModel::State::Searching);
    sim.runFor(gps.fixAcquireDelay() + 1_s);
    EXPECT_EQ(gps.state(), GpsModel::State::Tracking);
    EXPECT_TRUE(got_fix);
}

TEST_F(ComponentFixture, GpsStaysSearchingWithBadSignal)
{
    GpsModel gps(sim, acc, profile);
    gps.setSignalGood(false);
    gps.setRequestOwners({kApp});
    sim.runFor(60_s);
    EXPECT_EQ(gps.state(), GpsModel::State::Searching);
    EXPECT_NEAR(gps.searchSeconds(kApp), 60.0, 1e-6);
    acc.sync();
    EXPECT_NEAR(acc.uidEnergyMj(kApp), profile.gpsSearchMw * 60.0, 1.0);
}

TEST_F(ComponentFixture, GpsSignalLossRegressesToSearching)
{
    GpsModel gps(sim, acc, profile);
    gps.setRequestOwners({kApp});
    sim.runFor(gps.fixAcquireDelay() + 1_s);
    ASSERT_TRUE(gps.hasFix());
    gps.setSignalGood(false);
    EXPECT_EQ(gps.state(), GpsModel::State::Searching);
}

TEST_F(ComponentFixture, GpsTurnsOffWhenRequestsEnd)
{
    GpsModel gps(sim, acc, profile);
    gps.setRequestOwners({kApp});
    sim.runFor(20_s);
    gps.setRequestOwners({});
    EXPECT_EQ(gps.state(), GpsModel::State::Off);
    double e = acc.totalEnergyMj();
    sim.runFor(20_s);
    acc.sync();
    EXPECT_DOUBLE_EQ(acc.totalEnergyMj(), e);
}

TEST_F(ComponentFixture, GpsTrackingCheaperThanSearching)
{
    GpsModel gps(sim, acc, profile);
    gps.setRequestOwners({kApp});
    sim.runFor(gps.fixAcquireDelay() + 100_s);
    EXPECT_GT(gps.trackSeconds(kApp), 0.0);
    EXPECT_LT(profile.gpsTrackMw, profile.gpsSearchMw);
}

// ---- Radio -------------------------------------------------------------------

TEST_F(ComponentFixture, WifiIdleByDefault)
{
    RadioModel radio(sim, acc, profile);
    sim.runFor(10_s);
    acc.sync();
    EXPECT_NEAR(acc.totalEnergyMj(),
                (profile.wifiIdleMw + profile.cellIdleMw) * 10.0, 1e-6);
}

TEST_F(ComponentFixture, WifiLockDrawAttributedToHolder)
{
    RadioModel radio(sim, acc, profile);
    radio.setWifiLockOwners({kApp});
    sim.runFor(100_s);
    acc.sync();
    EXPECT_NEAR(acc.uidEnergyMj(kApp), profile.wifiLockMw * 100.0, 1e-6);
    EXPECT_NEAR(radio.wifiLockSeconds(kApp), 100.0, 1e-9);
}

TEST_F(ComponentFixture, WifiTransferBurst)
{
    RadioModel radio(sim, acc, profile);
    auto dur = radio.transferWifi(kApp, 2500000); // 2.5 MB at 2.5 MB/s = 1 s
    EXPECT_NEAR(dur.seconds(), 1.0, 1e-9);
    EXPECT_TRUE(radio.wifiBusy());
    sim.runFor(2_s);
    EXPECT_FALSE(radio.wifiBusy());
    acc.sync();
    EXPECT_NEAR(acc.uidEnergyMj(kApp), profile.wifiActiveMw * 1.0, 1e-6);
}

TEST_F(ComponentFixture, CellTransferBurst)
{
    RadioModel radio(sim, acc, profile);
    radio.transferCell(kApp, 625000); // 625 KB at 625 KB/s = 1 s
    sim.runFor(2_s);
    acc.sync();
    EXPECT_NEAR(acc.uidEnergyMj(kApp), profile.cellActiveMw * 1.0, 1e-6);
}

// ---- Sensors -------------------------------------------------------------

TEST_F(ComponentFixture, SensorDrawsWhileRegistered)
{
    SensorModel sensors(sim, acc, profile);
    sensors.registerUse(SensorType::Orientation, kApp);
    EXPECT_TRUE(sensors.active(SensorType::Orientation));
    sim.runFor(10_s);
    sensors.unregisterUse(SensorType::Orientation, kApp);
    EXPECT_FALSE(sensors.active(SensorType::Orientation));
    sim.runFor(10_s);
    acc.sync();
    EXPECT_NEAR(acc.uidEnergyMj(kApp), profile.orientationMw * 10.0, 1e-6);
}

TEST_F(ComponentFixture, SensorSharedAcrossUids)
{
    SensorModel sensors(sim, acc, profile);
    sensors.registerUse(SensorType::Accelerometer, kApp);
    sensors.registerUse(SensorType::Accelerometer, kApp2);
    sim.runFor(10_s);
    acc.sync();
    EXPECT_NEAR(acc.uidEnergyMj(kApp),
                profile.accelerometerMw * 10.0 / 2.0, 1e-6);
    auto users = sensors.users(SensorType::Accelerometer);
    EXPECT_EQ(users.size(), 2u);
}

TEST_F(ComponentFixture, SensorNestedRegistrationCounts)
{
    SensorModel sensors(sim, acc, profile);
    sensors.registerUse(SensorType::Gyroscope, kApp);
    sensors.registerUse(SensorType::Gyroscope, kApp);
    sensors.unregisterUse(SensorType::Gyroscope, kApp);
    EXPECT_TRUE(sensors.active(SensorType::Gyroscope));
    sensors.unregisterUse(SensorType::Gyroscope, kApp);
    EXPECT_FALSE(sensors.active(SensorType::Gyroscope));
}

TEST_F(ComponentFixture, SensorTypeNames)
{
    EXPECT_STREQ(sensorTypeName(SensorType::Accelerometer),
                 "accelerometer");
    EXPECT_STREQ(sensorTypeName(SensorType::Orientation), "orientation");
}

// ---- Audio -------------------------------------------------------------

TEST_F(ComponentFixture, AudioDrawWhilePlaying)
{
    AudioModel audio(sim, acc, profile);
    audio.setPlaying(kApp, true);
    EXPECT_TRUE(audio.playing(kApp));
    sim.runFor(10_s);
    audio.setPlaying(kApp, false);
    sim.runFor(10_s);
    acc.sync();
    EXPECT_NEAR(acc.uidEnergyMj(kApp), profile.audioMw * 10.0, 1e-6);
}

// ---- Profiles --------------------------------------------------------------

TEST(DeviceProfileTest, AllPhonesConstructible)
{
    for (const auto &p :
         {profiles::pixelXl(), profiles::nexus6(), profiles::nexus4(),
          profiles::galaxyS4(), profiles::motoG(), profiles::nexus5x()}) {
        EXPECT_FALSE(p.name.empty());
        EXPECT_GT(p.batteryMah, 0.0);
        EXPECT_GT(p.batteryEnergyMj(), 0.0);
        EXPECT_GT(p.gpsSearchMw, p.gpsTrackMw);
        EXPECT_GT(p.cpuActivePerCoreMw, p.cpuIdleAwakeMw);
        EXPECT_GT(p.cpuIdleAwakeMw, p.cpuSleepMw);
    }
}

TEST(DeviceProfileTest, ByNameLookup)
{
    EXPECT_EQ(profiles::byName("Pixel XL").name, "Pixel XL");
    EXPECT_EQ(profiles::byName("nexus6").name, "Nexus 6");
    EXPECT_EQ(profiles::byName("Moto G").name, "Moto G");
    EXPECT_THROW(profiles::byName("iPhone"), std::out_of_range);
}

TEST(DeviceProfileTest, LowEndSlowerThanFlagship)
{
    EXPECT_LT(profiles::motoG().perfFactor, profiles::pixelXl().perfFactor);
}

} // namespace
} // namespace leaseos::power
