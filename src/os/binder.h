#ifndef LEASEOS_OS_BINDER_H
#define LEASEOS_OS_BINDER_H

/**
 * @file
 * Binder kernel-object identities and IPC cost model.
 *
 * In Android, an app-side resource descriptor (e.g. a PowerManager.WakeLock
 * wrapper) maps one-to-one onto a kernel IBinder token held by the managing
 * system service (§4.2). Leases wrap these kernel objects. We model a token
 * as a unique 64-bit id plus owner bookkeeping, and charge IPC costs for
 * cross-address-space calls so that lease overhead (Table 4, Fig. 13/14) is
 * measurable.
 */

#include <cstdint>
#include <set>

#include "common/ids.h"
#include "sim/time.h"

namespace leaseos::os {

/** Identity of a kernel IBinder object; 0 is invalid. */
using TokenId = std::uint64_t;

constexpr TokenId kInvalidToken = 0;

/**
 * Latency of one binder transaction (measured Android binder round trips
 * are a few hundred microseconds).
 */
constexpr sim::Time kBinderIpcLatency = sim::Time::fromMicros(350);

/**
 * Latency of a full resource-acquire IPC without leases: the paper reports
 * ~2 ms for a resource acquire call (§7.2), which includes service-side
 * bookkeeping beyond the raw binder hop.
 */
constexpr sim::Time kResourceIpcLatency = sim::Time::fromMillis(2);

/**
 * Monotonically increasing token id allocator (one per device).
 *
 * Doubles as the kernel-object registry: services register every token
 * they mint and retire it when the kernel object dies, so the checked-mode
 * invariant oracle can ask whether a lease still maps to a live object
 * (lease-table ↔ binder consistency, §4.3).
 */
class TokenAllocator
{
  public:
    TokenId
    next()
    {
        TokenId id = next_++;
        live_.insert(id);
        return id;
    }

    /** Mark a kernel object dead (called from service destroy paths). */
    void retire(TokenId id) { live_.erase(id); }

    /** @return true while @p id names a live kernel object. */
    bool live(TokenId id) const { return live_.count(id) != 0; }

    std::size_t liveCount() const { return live_.size(); }

  private:
    TokenId next_ = 1;
    std::set<TokenId> live_;
};

} // namespace leaseos::os

#endif // LEASEOS_OS_BINDER_H
