/**
 * @file
 * Behaviour classifier tests, including parameterised threshold sweeps.
 */

#include <gtest/gtest.h>

#include "lease/behavior_classifier.h"

namespace leaseos::lease {
namespace {

using sim::operator""_s;

LeaseStat
baseStat(double term_s = 5.0)
{
    LeaseStat s;
    s.termStart = sim::Time::zero();
    s.termEnd = sim::Time::fromSeconds(term_s);
    return s;
}

TEST(ClassifierTest, IdleTermIsNormal)
{
    BehaviorClassifier c;
    EXPECT_EQ(c.classify(ResourceType::Wakelock, baseStat()),
              BehaviorType::Normal);
}

TEST(ClassifierTest, LongHoldingOnUltralowUtilization)
{
    BehaviorClassifier c;
    LeaseStat s = baseStat();
    s.holdingSeconds = 5.0;
    s.usageSeconds = 0.01; // 0.2 % utilisation
    s.utilityScore = 60.0;
    EXPECT_EQ(c.classify(ResourceType::Wakelock, s),
              BehaviorType::LongHolding);
}

TEST(ClassifierTest, LowUtilityOnBusyUselessWork)
{
    BehaviorClassifier c;
    LeaseStat s = baseStat();
    s.holdingSeconds = 5.0;
    s.usageSeconds = 5.5; // >100 %, like Fig. 4
    s.utilityScore = 5.0;
    EXPECT_EQ(c.classify(ResourceType::Wakelock, s),
              BehaviorType::LowUtility);
}

TEST(ClassifierTest, ExcessiveUseOnHeavyUsefulWork)
{
    BehaviorClassifier c;
    LeaseStat s = baseStat();
    s.holdingSeconds = 5.0;
    s.usageSeconds = 4.0;
    s.utilityScore = 90.0;
    EXPECT_EQ(c.classify(ResourceType::Wakelock, s),
              BehaviorType::ExcessiveUse);
}

TEST(ClassifierTest, ModerateUsefulWorkIsNormal)
{
    BehaviorClassifier c;
    LeaseStat s = baseStat();
    s.holdingSeconds = 5.0;
    s.usageSeconds = 1.0;
    s.utilityScore = 70.0;
    EXPECT_EQ(c.classify(ResourceType::Wakelock, s), BehaviorType::Normal);
}

TEST(ClassifierTest, FrequentAskForGpsOnly)
{
    BehaviorClassifier c;
    LeaseStat s = baseStat();
    s.requestSeconds = 3.0;        // 60 % of the term requesting
    s.failedRequestSeconds = 3.0;  // none of it succeeded
    EXPECT_EQ(c.classify(ResourceType::Gps, s), BehaviorType::FrequentAsk);
    // The same stat on a wakelock cannot be FAB (Table 1).
    EXPECT_EQ(c.classify(ResourceType::Wakelock, s), BehaviorType::Normal);
}

TEST(ClassifierTest, GpsWithGoodFixesNotFab)
{
    BehaviorClassifier c;
    LeaseStat s = baseStat();
    s.requestSeconds = 5.0;
    s.failedRequestSeconds = 0.2;
    s.holdingSeconds = 5.0;
    s.usageSeconds = 5.0;
    s.utilityScore = 80.0;
    EXPECT_NE(c.classify(ResourceType::Gps, s), BehaviorType::FrequentAsk);
}

TEST(ClassifierTest, ShortHoldIsNormalEvenIfIdle)
{
    BehaviorClassifier c;
    LeaseStat s = baseStat();
    s.holdingSeconds = 1.0; // 20 % of term — below minHoldingRatio
    s.usageSeconds = 0.0;
    s.utilityScore = 50.0;
    EXPECT_EQ(c.classify(ResourceType::Wakelock, s), BehaviorType::Normal);
}

TEST(ClassifierTest, ZeroLengthTermIsNormal)
{
    BehaviorClassifier c;
    LeaseStat s;
    EXPECT_EQ(c.classify(ResourceType::Wakelock, s), BehaviorType::Normal);
}

TEST(ClassifierTest, CustomThresholdsRespected)
{
    ClassifierThresholds th;
    th.lhbMaxUtilization = 0.5; // very aggressive
    BehaviorClassifier c(th);
    LeaseStat s = baseStat();
    s.holdingSeconds = 5.0;
    s.usageSeconds = 1.0; // 20 % utilisation
    s.utilityScore = 70.0;
    EXPECT_EQ(c.classify(ResourceType::Wakelock, s),
              BehaviorType::LongHolding);
}

// ---- Parameterised sweep: utilisation boundary --------------------------

struct UtilizationCase {
    double utilization;
    BehaviorType expected;
};

class UtilizationSweep : public ::testing::TestWithParam<UtilizationCase>
{
};

TEST_P(UtilizationSweep, BoundaryAtLhbThreshold)
{
    BehaviorClassifier c;
    LeaseStat s = baseStat();
    s.holdingSeconds = 5.0;
    s.usageSeconds = GetParam().utilization * s.holdingSeconds;
    s.utilityScore = 60.0;
    EXPECT_EQ(c.classify(ResourceType::Wakelock, s), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, UtilizationSweep,
    ::testing::Values(UtilizationCase{0.0, BehaviorType::LongHolding},
                      UtilizationCase{0.01, BehaviorType::LongHolding},
                      UtilizationCase{0.049, BehaviorType::LongHolding},
                      UtilizationCase{0.06, BehaviorType::Normal},
                      UtilizationCase{0.2, BehaviorType::Normal}));

// ---- Parameterised sweep: utility boundary --------------------------------

struct UtilityCase {
    double score;
    BehaviorType expected;
};

class UtilitySweep : public ::testing::TestWithParam<UtilityCase>
{
};

TEST_P(UtilitySweep, BoundaryAtLubThreshold)
{
    BehaviorClassifier c;
    LeaseStat s = baseStat();
    s.holdingSeconds = 5.0;
    s.usageSeconds = 1.0;
    s.utilityScore = GetParam().score;
    EXPECT_EQ(c.classify(ResourceType::Wakelock, s), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, UtilitySweep,
    ::testing::Values(UtilityCase{0.0, BehaviorType::LowUtility},
                      UtilityCase{19.9, BehaviorType::LowUtility},
                      UtilityCase{20.0, BehaviorType::Normal},
                      UtilityCase{100.0, BehaviorType::Normal}));

// ---- Parameterised sweep: GPS success ratio ---------------------------------

struct FabCase {
    double failed_fraction;
    bool expect_fab;
};

class FabSweep : public ::testing::TestWithParam<FabCase>
{
};

TEST_P(FabSweep, BoundaryAtSuccessRatio)
{
    BehaviorClassifier c;
    LeaseStat s = baseStat();
    s.requestSeconds = 4.0;
    s.failedRequestSeconds = GetParam().failed_fraction * s.requestSeconds;
    BehaviorType got = c.classify(ResourceType::Gps, s);
    EXPECT_EQ(got == BehaviorType::FrequentAsk, GetParam().expect_fab);
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, FabSweep,
    ::testing::Values(FabCase{1.0, true}, FabCase{0.9, true},
                      FabCase{0.8, true}, FabCase{0.5, false},
                      FabCase{0.0, false}));

} // namespace
} // namespace leaseos::lease
