#ifndef LEASEOS_ENV_NETWORK_ENVIRONMENT_H
#define LEASEOS_ENV_NETWORK_ENVIRONMENT_H

/**
 * @file
 * Network connectivity and server-health environment.
 *
 * Two of the paper's trigger conditions live here: "the network is
 * disconnected" (K-9's LUB spin) and "the mail server fails" (K-9's LHB
 * wait). Requests behave accordingly:
 *  - disconnected: fail fast with Disconnected (cheap, so a buggy retry
 *    loop burns CPU, not radio);
 *  - unhealthy server: time out after a long server timeout (the app waits
 *    holding its wakelock, CPU mostly idle);
 *  - healthy: transfer over the radio model and complete with Ok.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "power/radio_model.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace leaseos::env {

/** Completion status of a network request. */
enum class NetResult { Ok, Timeout, IoError, Disconnected };

const char *netResultName(NetResult r);

/**
 * Scriptable connectivity + per-server health model.
 */
class NetworkEnvironment
{
  public:
    /** How long an unhealthy server stalls a request before timeout. */
    static constexpr sim::Time kServerTimeout = sim::Time::fromSeconds(25.0);

    /** Round-trip latency of a healthy request (before transfer time). */
    static constexpr sim::Time kServerLatency =
        sim::Time::fromMillis(200);

    /** How fast a disconnected request fails locally. */
    static constexpr sim::Time kFastFail = sim::Time::fromMillis(20);

    NetworkEnvironment(sim::Simulator &sim, power::RadioModel &radio,
                       sim::RandomSource &rng);

    // ---- Environment scripting ------------------------------------------

    void setConnected(bool connected);
    bool connected() const { return connected_; }

    void setServerHealthy(const std::string &server, bool healthy);
    bool serverHealthy(const std::string &server) const;

    /**
     * Make a server *flaky*: each request independently times out with
     * probability @p failProbability (0 clears flakiness). This is the
     * Fig. 2 condition — a bad mail server that intermittently answers,
     * producing intermittent long wakelock holds.
     */
    void setServerFailProbability(const std::string &server,
                                  double failProbability);

    /** Notified on connectivity flips (apps re-sync on reconnect). */
    void addConnectivityListener(std::function<void(bool)> fn);

    // ---- App-facing request API -----------------------------------------

    /**
     * Issue an async request of @p bytes to @p server for @p uid; @p cb
     * runs with the outcome. The callback is invoked from a simulator
     * event — apps should wrap it through their AppProcess if they need
     * CPU-sleep pause semantics.
     */
    void httpRequest(Uid uid, const std::string &server,
                     std::uint64_t bytes,
                     std::function<void(NetResult)> cb);

    // ---- Stats -----------------------------------------------------------

    std::uint64_t requestCount(Uid uid) const;
    std::uint64_t failureCount(Uid uid) const;

  private:
    sim::Simulator &sim_;
    power::RadioModel &radio_;
    sim::RandomSource &rng_;
    bool connected_ = true;
    std::map<std::string, bool> serverHealth_;
    std::map<std::string, double> serverFlaky_;
    std::vector<std::function<void(bool)>> listeners_;
    std::map<Uid, std::uint64_t> requestCount_;
    std::map<Uid, std::uint64_t> failureCount_;
};

} // namespace leaseos::env

#endif // LEASEOS_ENV_NETWORK_ENVIRONMENT_H
