#include "sim/simulator.h"

#include <memory>
#include <utility>

#include "analysis/invariants.h"
#include "sim/checkpoint.h"

namespace leaseos::sim {

void
Simulator::saveState(CheckpointWriter &w) const
{
    w.beginSection("sim", 1);
    w.time(now_);
    w.u64(executed_);
    queue_.saveState(w);
    w.endSection();
}

void
Simulator::restoreState(CheckpointReader &r)
{
    requireSectionVersion("sim", r.beginSection("sim"), 1);
    now_ = r.time();
    executed_ = r.u64();
    queue_.restoreState(r);
    r.endSection();
}

void
PeriodicHandle::cancel()
{
    if (!state_ || state_->stopped) return;
    state_->stopped = true;
    if (state_->sim) state_->sim->cancel(state_->current);
}

bool
PeriodicHandle::active() const
{
    return state_ && !state_->stopped && state_->sim &&
           state_->sim->pending(state_->current);
}

void
Simulator::schedulePeriodic(Time period, std::function<bool()> cb)
{
    // The repeating closure owns the user callback and re-schedules itself
    // while the callback keeps returning true.
    struct Repeater : std::enable_shared_from_this<Repeater> {
        Simulator *sim;
        Time period;
        std::function<bool()> cb;

        void
        fire()
        {
            if (!cb()) return;
            auto self = shared_from_this();
            sim->schedule(period, [self] { self->fire(); });
        }
    };
    auto rep = std::make_shared<Repeater>();
    rep->sim = this;
    rep->period = period;
    rep->cb = std::move(cb);
    schedule(period, [rep] { rep->fire(); });
}

PeriodicHandle
Simulator::schedulePeriodicScoped(Time period, std::function<void()> cb)
{
    // Like the legacy repeater, but the shared PeriodicState publishes the
    // id of the pending occurrence so the handle can cancel the whole
    // repetition at any point.
    struct Repeater : std::enable_shared_from_this<Repeater> {
        std::shared_ptr<detail::PeriodicState> state;
        Time period;
        std::function<void()> cb;

        void
        fire()
        {
            if (state->stopped) return;
            cb();
            if (state->stopped) return; // cb may have cancelled the handle
            auto self = shared_from_this();
            state->current =
                state->sim->schedule(period, [self] { self->fire(); });
        }
    };
    auto state = std::make_shared<detail::PeriodicState>();
    state->sim = this;
    auto rep = std::make_shared<Repeater>();
    rep->state = state;
    rep->period = period;
    rep->cb = std::move(cb);
    state->current = schedule(period, [rep] { rep->fire(); });
    return PeriodicHandle(std::move(state));
}

Time
Simulator::run(Time until)
{
    while (!queue_.empty()) {
        Time t = queue_.nextTime();
        if (t > until) {
            now_ = until;
            return now_;
        }
        auto [when, cb] = queue_.pop();
        LEASEOS_ORACLE(noteEventDispatch(now_, when));
        now_ = when;
        ++executed_;
        cb();
    }
    // Queue drained: clamp to the requested horizon if it is finite so that
    // back-to-back runFor() calls keep advancing wall-clock style.
    if (until != Time::max() && until > now_) now_ = until;
    return now_;
}

} // namespace leaseos::sim
