#include "support/minijson.h"

#include <cstdlib>

namespace leaseos::minijson {

namespace {

const std::string kEmpty;

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    ParseResult
    run()
    {
        ParseResult result;
        skipWs();
        if (!parseValue(result.value)) {
            result.error = error_;
            result.line = line_;
            return result;
        }
        skipWs();
        if (pos_ != text_.size()) {
            result.error = "trailing characters after the document";
            result.line = line_;
        }
        return result;
    }

  private:
    bool
    fail(const char *message)
    {
        if (error_.empty()) error_ = message;
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '\n') ++line_;
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("invalid literal");
        pos_ += word.size();
        return true;
    }

    bool
    parseValue(Value &out)
    {
        if (pos_ >= text_.size()) return fail("unexpected end of input");
        switch (text_[pos_]) {
        case '{': return parseObject(out);
        case '[': return parseArray(out);
        case '"':
            out.kind = Value::Kind::String;
            return parseString(out.raw);
        case 't':
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            return literal("true");
        case 'f':
            out.kind = Value::Kind::Bool;
            out.boolean = false;
            return literal("false");
        case 'n':
            out.kind = Value::Kind::Null;
            return literal("null");
        default: return parseNumber(out);
        }
    }

    bool
    parseObject(Value &out)
    {
        out.kind = Value::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key)) return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':' after object key");
            ++pos_;
            skipWs();
            Value member;
            if (!parseValue(member)) return false;
            out.object.emplace_back(std::move(key), std::move(member));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(Value &out)
    {
        out.kind = Value::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            Value element;
            if (!parseValue(element)) return false;
            out.array.push_back(std::move(element));
            skipWs();
            if (pos_ >= text_.size()) return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    static void
    appendUtf8(std::string &out, unsigned code)
    {
        if (code < 0x80) {
            out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
        } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                if (pos_ + 1 >= text_.size())
                    return fail("unterminated escape");
                char esc = text_[pos_ + 1];
                pos_ += 2;
                switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    if (pos_ + 4 > text_.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text_[pos_ + static_cast<std::size_t>(i)];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= unsigned(h - 'A' + 10);
                        else return fail("invalid \\u escape digit");
                    }
                    pos_ += 4;
                    appendUtf8(out, code);
                    break;
                }
                default: return fail("unknown escape character");
                }
                continue;
            }
            if (c == '\n') ++line_;
            out.push_back(c);
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(Value &out)
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        auto eatDigits = [&] {
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
                digits = true;
            }
        };
        eatDigits();
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            eatDigits();
        }
        if (!digits) return fail("invalid number");
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '-' || text_[pos_] == '+'))
                ++pos_;
            bool expDigits = false;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
                expDigits = true;
            }
            if (!expDigits) return fail("invalid number exponent");
        }
        out.kind = Value::Kind::Number;
        out.raw.assign(text_.substr(start, pos_ - start));
        out.number = std::strtod(out.raw.c_str(), nullptr);
        return true;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::size_t line_ = 1;
    std::string error_;
};

} // namespace

const Value *
Value::find(std::string_view key) const
{
    if (kind != Kind::Object) return nullptr;
    for (const auto &[k, v] : object)
        if (k == key) return &v;
    return nullptr;
}

const std::string &
Value::asString() const
{
    return isString() ? raw : kEmpty;
}

ParseResult
parse(std::string_view text)
{
    return Parser(text).run();
}

} // namespace leaseos::minijson
