#ifndef LEASEOS_OS_AUDIO_SESSION_SERVICE_H
#define LEASEOS_OS_AUDIO_SESSION_SERVICE_H

/**
 * @file
 * Audio session management.
 *
 * The paper's §1 motivating example is the Facebook iOS release that
 * leaked audio sessions: the app finished playing but a code path skipped
 * the session close, "leaving the app doing nothing but staying awake in
 * the background draining the battery". We model audio the same way iOS
 * (and Android's media focus) does: an *open* session keeps the app
 * process runnable (an implicit wakelock) and the audio pipeline powered,
 * whether or not anything is audibly playing. Audio is one of the
 * resources Table 1 lists as leasable.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "os/binder.h"
#include "os/resource_listener.h"
#include "os/service.h"
#include "power/audio_model.h"

namespace leaseos::os {

/**
 * Audio session service with lease/throttle interposition hooks.
 */
class AudioSessionService : public Service
{
  public:
    /** Draw of an open-but-silent session's pipeline (DSP powered). */
    static constexpr double kPipelineMw = 14.0;

    AudioSessionService(sim::Simulator &sim, power::CpuModel &cpu,
                        power::AudioModel &audio,
                        power::EnergyAccountant &accountant,
                        TokenAllocator &tokens);

    // ---- App-facing API -------------------------------------------------

    /** Open (acquire) an audio session. */
    TokenId openSession(Uid uid);

    /** Begin/stop audible playback on an open session. */
    void startPlayback(TokenId token);
    void stopPlayback(TokenId token);

    /** Close (release) the session. */
    void closeSession(TokenId token);

    /** Kernel object death. */
    void destroy(TokenId token);

    bool isOpen(TokenId token) const;
    bool isPlaying(TokenId token) const;

    // ---- Interposition ---------------------------------------------------

    void suspend(TokenId token);
    void restore(TokenId token);
    bool isSuspended(TokenId token) const;
    bool isEnabled(TokenId token) const;
    void setGlobalFilter(std::function<bool(Uid)> filter);
    void refilter();
    void addListener(ResourceListener *listener);

    // ---- Metrics --------------------------------------------------------

    /** Time @p uid has had an enabled session open. */
    double openSeconds(Uid uid);

    /** Time @p uid spent audibly playing through enabled sessions. */
    double playingSeconds(Uid uid);

    Uid ownerOf(TokenId token) const;

  private:
    struct Session {
        Uid uid = kInvalidUid;
        bool open = false;
        bool playing = false;
        bool suspended = false;
        bool enabled = false;
    };

    void advance();
    void apply();
    bool allowedByFilter(Uid uid) const;

    power::AudioModel &audio_;
    power::EnergyAccountant &accountant_;
    power::ChannelId pipelineChannel_;
    TokenAllocator &tokens_;
    std::map<TokenId, Session> sessions_;
    std::function<bool(Uid)> filter_;
    std::vector<ResourceListener *> listeners_;

    sim::Time lastAdvance_;
    std::map<Uid, double> openSeconds_;
    std::map<Uid, double> playingSeconds_;
    std::map<Uid, bool> lastPlaying_;
};

} // namespace leaseos::os

#endif // LEASEOS_OS_AUDIO_SESSION_SERVICE_H
