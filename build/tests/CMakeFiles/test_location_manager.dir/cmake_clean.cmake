file(REMOVE_RECURSE
  "CMakeFiles/test_location_manager.dir/os/test_location_manager.cc.o"
  "CMakeFiles/test_location_manager.dir/os/test_location_manager.cc.o.d"
  "test_location_manager"
  "test_location_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_location_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
