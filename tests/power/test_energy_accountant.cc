/**
 * @file
 * Unit tests for the EnergyAccountant's integration and attribution.
 */

#include <gtest/gtest.h>

#include "common/ids.h"
#include "power/energy_accountant.h"
#include "sim/simulator.h"

namespace leaseos::power {
namespace {

using sim::operator""_s;

constexpr Uid kAppA = kFirstAppUid;
constexpr Uid kAppB = kFirstAppUid + 1;

TEST(EnergyAccountantTest, IntegratesConstantPower)
{
    sim::Simulator sim;
    EnergyAccountant acc(sim);
    ChannelId ch = acc.makeChannel("cpu");
    acc.setPower(ch, 100.0, {kAppA});
    sim.runFor(10_s);
    acc.sync();
    EXPECT_DOUBLE_EQ(acc.totalEnergyMj(), 1000.0); // 100 mW * 10 s
    EXPECT_DOUBLE_EQ(acc.uidEnergyMj(kAppA), 1000.0);
}

TEST(EnergyAccountantTest, SplitsAcrossOwners)
{
    sim::Simulator sim;
    EnergyAccountant acc(sim);
    ChannelId ch = acc.makeChannel("gps");
    acc.setPower(ch, 100.0, {kAppA, kAppB});
    sim.runFor(10_s);
    acc.sync();
    EXPECT_DOUBLE_EQ(acc.uidEnergyMj(kAppA), 500.0);
    EXPECT_DOUBLE_EQ(acc.uidEnergyMj(kAppB), 500.0);
}

TEST(EnergyAccountantTest, EmptyOwnersGoesToSystem)
{
    sim::Simulator sim;
    EnergyAccountant acc(sim);
    ChannelId ch = acc.makeChannel("misc");
    acc.setPower(ch, 50.0, {});
    sim.runFor(2_s);
    acc.sync();
    EXPECT_DOUBLE_EQ(acc.uidEnergyMj(kSystemUid), 100.0);
}

TEST(EnergyAccountantTest, PowerChangeSplitsInterval)
{
    sim::Simulator sim;
    EnergyAccountant acc(sim);
    ChannelId ch = acc.makeChannel("cpu");
    acc.setPower(ch, 100.0, {kAppA});
    sim.runFor(5_s);
    acc.setPower(ch, 10.0, {kAppA});
    sim.runFor(5_s);
    acc.sync();
    EXPECT_DOUBLE_EQ(acc.totalEnergyMj(), 550.0);
}

TEST(EnergyAccountantTest, AttributionChangeSplitsInterval)
{
    sim::Simulator sim;
    EnergyAccountant acc(sim);
    ChannelId ch = acc.makeChannel("cpu");
    acc.setPower(ch, 100.0, {kAppA});
    sim.runFor(4_s);
    acc.setPower(ch, 100.0, {kAppB});
    sim.runFor(6_s);
    acc.sync();
    EXPECT_DOUBLE_EQ(acc.uidEnergyMj(kAppA), 400.0);
    EXPECT_DOUBLE_EQ(acc.uidEnergyMj(kAppB), 600.0);
}

TEST(EnergyAccountantTest, MultipleChannelsSum)
{
    sim::Simulator sim;
    EnergyAccountant acc(sim);
    ChannelId cpu = acc.makeChannel("cpu");
    ChannelId gps = acc.makeChannel("gps");
    acc.setPower(cpu, 30.0, {kAppA});
    acc.setPower(gps, 70.0, {kAppA});
    sim.runFor(1_s);
    acc.sync();
    EXPECT_DOUBLE_EQ(acc.totalEnergyMj(), 100.0);
    EXPECT_DOUBLE_EQ(acc.channelEnergyMj(cpu), 30.0);
    EXPECT_DOUBLE_EQ(acc.channelEnergyMj(gps), 70.0);
    EXPECT_DOUBLE_EQ(acc.uidChannelEnergyMj(kAppA, gps), 70.0);
}

TEST(EnergyAccountantTest, InstantaneousPower)
{
    sim::Simulator sim;
    EnergyAccountant acc(sim);
    ChannelId ch = acc.makeChannel("cpu");
    acc.setPowerShares(ch, {{kAppA, 20.0}, {kAppB, 5.0}});
    EXPECT_DOUBLE_EQ(acc.totalPowerMw(), 25.0);
    EXPECT_DOUBLE_EQ(acc.uidPowerMw(kAppA), 20.0);
    EXPECT_DOUBLE_EQ(acc.uidPowerMw(kAppB), 5.0);
    EXPECT_DOUBLE_EQ(acc.uidPowerMw(kSystemUid), 0.0);
}

TEST(EnergyAccountantTest, KnownUidsListsContributors)
{
    sim::Simulator sim;
    EnergyAccountant acc(sim);
    ChannelId ch = acc.makeChannel("cpu");
    acc.setPower(ch, 10.0, {kAppA});
    sim.runFor(1_s);
    acc.sync();
    auto uids = acc.knownUids();
    EXPECT_EQ(uids.size(), 1u);
    EXPECT_EQ(uids[0], kAppA);
}

TEST(EnergyAccountantTest, ExplicitSyncMatchesMidIntervalRead)
{
    sim::Simulator sim;
    EnergyAccountant acc(sim);
    ChannelId ch = acc.makeChannel("cpu");
    acc.setPower(ch, 100.0, {kAppA});
    // Advance mid-interval with no power-change boundary: readers lag at
    // the last sync point until an explicit sync() brings them to now.
    sim.runFor(3_s);
    EXPECT_DOUBLE_EQ(acc.totalEnergyMj(), 0.0);
    acc.sync();
    // Post-sync the values match what the old implicit-sync readers gave.
    EXPECT_DOUBLE_EQ(acc.totalEnergyMj(), 300.0);
    EXPECT_DOUBLE_EQ(acc.uidEnergyMj(kAppA), 300.0);
    EXPECT_DOUBLE_EQ(acc.channelEnergyMj(ch), 300.0);
    EXPECT_DOUBLE_EQ(acc.uidChannelEnergyMj(kAppA, ch), 300.0);
    // sync() is idempotent while time stands still.
    acc.sync();
    EXPECT_DOUBLE_EQ(acc.totalEnergyMj(), 300.0);
}

TEST(EnergyAccountantTest, ChannelNamesStored)
{
    sim::Simulator sim;
    EnergyAccountant acc(sim);
    ChannelId ch = acc.makeChannel("screen");
    EXPECT_EQ(acc.channelName(ch), "screen");
    EXPECT_EQ(acc.channelCount(), 1u);
}

} // namespace
} // namespace leaseos::power
