#include "os/power_manager_service.h"

#include <algorithm>
#include <set>
#include <utility>

namespace leaseos::os {

PowerManagerService::PowerManagerService(sim::Simulator &sim,
                                         power::CpuModel &cpu,
                                         TokenAllocator &tokens)
    : Service(sim, cpu, "power"), tokens_(tokens), lastAdvance_(sim.now())
{
}

void
PowerManagerService::advance()
{
    sim::Time now = sim_.now();
    if (now <= lastAdvance_) {
        lastAdvance_ = now;
        return;
    }
    double dt = (now - lastAdvance_).seconds();
    for (auto &[token, lock] : locks_) {
        if (lock.held) {
            lock.heldSeconds += dt;
            heldSeconds_[lock.uid] += dt;
        }
        if (lock.enabled) {
            lock.enabledSeconds += dt;
            enabledSeconds_[lock.uid] += dt;
        }
    }
    lastAdvance_ = now;
}

bool
PowerManagerService::allowedByFilter(Uid uid, WakeLockType type) const
{
    return !filter_ || filter_(uid, type);
}

void
PowerManagerService::apply()
{
    std::set<Uid> partial;
    std::set<Uid> full;
    for (auto &[token, lock] : locks_) {
        lock.enabled = lock.held && !lock.suspended &&
            allowedByFilter(lock.uid, lock.type);
        if (!lock.enabled) continue;
        if (lock.type == WakeLockType::Partial) partial.insert(lock.uid);
        else full.insert(lock.uid);
    }
    // Full locks also keep the CPU awake.
    std::set<Uid> cpu_owners = partial;
    cpu_owners.insert(full.begin(), full.end());
    cpu_.setWakelockOwners({cpu_owners.begin(), cpu_owners.end()});

    std::vector<Uid> full_owners(full.begin(), full.end());
    if (full_owners != lastFullOwners_) {
        lastFullOwners_ = full_owners;
        if (fullLockCb_) fullLockCb_(lastFullOwners_);
    }
}

TokenId
PowerManagerService::newWakeLock(Uid uid, WakeLockType type,
                                 std::string tag)
{
    chargeIpc(uid, kBinderIpcLatency);
    advance();
    TokenId token = tokens_.next();
    Lock lock;
    lock.uid = uid;
    lock.type = type;
    lock.tag = std::move(tag);
    locks_.emplace(token, std::move(lock));
    for (auto *l : listeners_) l->onCreated(token, uid);
    return token;
}

void
PowerManagerService::acquire(TokenId token)
{
    auto it = locks_.find(token);
    if (it == locks_.end()) return;
    Lock &lock = it->second;
    chargeIpc(lock.uid, kResourceIpcLatency);
    advance();
    lock.held = true;
    ++acquireCount_[lock.uid];
    apply();
    for (auto *l : listeners_) l->onAcquired(token, lock.uid);
}

void
PowerManagerService::release(TokenId token)
{
    auto it = locks_.find(token);
    if (it == locks_.end()) return;
    Lock &lock = it->second;
    chargeIpc(lock.uid, kBinderIpcLatency);
    advance();
    if (!lock.held) return;
    lock.held = false;
    ++releaseCount_[lock.uid];
    apply();
    for (auto *l : listeners_) l->onReleased(token, lock.uid);
}

void
PowerManagerService::destroy(TokenId token)
{
    auto it = locks_.find(token);
    if (it == locks_.end()) return;
    advance();
    Uid uid = it->second.uid;
    locks_.erase(it);
    tokens_.retire(token);
    apply();
    for (auto *l : listeners_) l->onDestroyed(token, uid);
}

bool
PowerManagerService::isHeld(TokenId token) const
{
    auto it = locks_.find(token);
    return it != locks_.end() && it->second.held;
}

void
PowerManagerService::suspend(TokenId token)
{
    auto it = locks_.find(token);
    if (it == locks_.end() || it->second.suspended) return;
    advance();
    it->second.suspended = true;
    apply();
}

void
PowerManagerService::restore(TokenId token)
{
    auto it = locks_.find(token);
    if (it == locks_.end() || !it->second.suspended) return;
    advance();
    it->second.suspended = false;
    apply();
}

bool
PowerManagerService::isSuspended(TokenId token) const
{
    auto it = locks_.find(token);
    return it != locks_.end() && it->second.suspended;
}

bool
PowerManagerService::isEnabled(TokenId token) const
{
    auto it = locks_.find(token);
    return it != locks_.end() && it->second.enabled;
}

void
PowerManagerService::setGlobalFilter(std::function<bool(Uid)> filter)
{
    if (!filter) {
        clearGlobalFilter();
        return;
    }
    advance();
    filter_ = [filter = std::move(filter)](Uid uid, WakeLockType) {
        return filter(uid);
    };
    apply();
}

void
PowerManagerService::clearGlobalFilter()
{
    advance();
    filter_ = nullptr;
    apply();
}

void
PowerManagerService::setGlobalFilter(
    std::function<bool(Uid, WakeLockType)> filter)
{
    advance();
    filter_ = std::move(filter);
    apply();
}

void
PowerManagerService::refilter()
{
    advance();
    apply();
}

void
PowerManagerService::addListener(ResourceListener *listener)
{
    listeners_.push_back(listener);
}

double
PowerManagerService::heldSeconds(Uid uid)
{
    advance();
    auto it = heldSeconds_.find(uid);
    return it == heldSeconds_.end() ? 0.0 : it->second;
}

double
PowerManagerService::heldSecondsForToken(TokenId token)
{
    advance();
    auto it = locks_.find(token);
    return it == locks_.end() ? 0.0 : it->second.heldSeconds;
}

double
PowerManagerService::enabledSeconds(Uid uid)
{
    advance();
    auto it = enabledSeconds_.find(uid);
    return it == enabledSeconds_.end() ? 0.0 : it->second;
}

double
PowerManagerService::enabledSecondsForToken(TokenId token)
{
    advance();
    auto it = locks_.find(token);
    return it == locks_.end() ? 0.0 : it->second.enabledSeconds;
}

std::uint64_t
PowerManagerService::acquireCount(Uid uid) const
{
    auto it = acquireCount_.find(uid);
    return it == acquireCount_.end() ? 0 : it->second;
}

std::uint64_t
PowerManagerService::releaseCount(Uid uid) const
{
    auto it = releaseCount_.find(uid);
    return it == releaseCount_.end() ? 0 : it->second;
}

std::vector<Uid>
PowerManagerService::enabledOwners() const
{
    std::set<Uid> owners;
    for (const auto &[token, lock] : locks_)
        if (lock.enabled) owners.insert(lock.uid);
    return {owners.begin(), owners.end()};
}

std::vector<TokenId>
PowerManagerService::heldTokens(Uid uid) const
{
    std::vector<TokenId> held;
    for (const auto &[token, lock] : locks_)
        if (lock.uid == uid && lock.held) held.push_back(token);
    return held;
}

Uid
PowerManagerService::ownerOf(TokenId token) const
{
    auto it = locks_.find(token);
    return it == locks_.end() ? kInvalidUid : it->second.uid;
}

WakeLockType
PowerManagerService::typeOf(TokenId token) const
{
    auto it = locks_.find(token);
    return it == locks_.end() ? WakeLockType::Partial : it->second.type;
}

const std::string &
PowerManagerService::tagOf(TokenId token) const
{
    static const std::string empty;
    auto it = locks_.find(token);
    return it == locks_.end() ? empty : it->second.tag;
}

void
PowerManagerService::setFullLockCallback(
    std::function<void(std::vector<Uid>)> cb)
{
    fullLockCb_ = std::move(cb);
    if (fullLockCb_) fullLockCb_(lastFullOwners_);
}

} // namespace leaseos::os
