# Empty dependencies file for custom_utility.
# This may be replaced when dependencies are built.
