/**
 * @file
 * macro-side-effect: mutating expressions inside LEASEOS_TRACE /
 * LEASEOS_ORACLE arguments.
 *
 * Both macros expand to nothing in default builds (tracing is compiled
 * out unless LEASEOS_TRACING is set; oracle checks unless
 * LEASEOS_CHECKED). An argument like `LEASEOS_TRACE(emit(ids++))` or
 * `LEASEOS_ORACLE(state = recompute())` therefore mutates state ONLY in
 * instrumented builds — the classic assert-with-side-effect bug, and the
 * exact failure mode the obs-layer contract in DESIGN.md §7 forbids
 * (instrumentation must never change simulation results).
 *
 * Detected mutations: ++ / --, compound assignment, and bare `=`
 * (excluding comparisons and `[=]` lambda captures).
 */

#include "leaselint/rules.h"

namespace leaselint {

namespace {

constexpr const char *kMacros[] = {"LEASEOS_TRACE", "LEASEOS_ORACLE"};

/** Offset just past the ')' matching text[open] == '('. */
std::size_t
matchParen(const std::string &text, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < text.size(); ++i) {
        if (text[i] == '(') ++depth;
        else if (text[i] == ')' && --depth == 0) return i + 1;
    }
    return text.size();
}

/** True when @p arg contains a mutating operator. */
bool
hasMutation(const std::string &arg)
{
    for (std::size_t i = 0; i < arg.size(); ++i) {
        char c = arg[i];
        char next = i + 1 < arg.size() ? arg[i + 1] : '\0';
        if ((c == '+' && next == '+') || (c == '-' && next == '-'))
            return true;
        // Compound assignment: op followed by '=' but not a comparison.
        if (next == '=' &&
            (c == '+' || c == '-' || c == '*' || c == '/' || c == '%' ||
             c == '&' || c == '|' || c == '^'))
            return true;
        if ((c == '<' || c == '>') && next == c && i + 2 < arg.size() &&
            arg[i + 2] == '=')
            return true; // <<= / >>=
        if (c == '=') {
            if (next == '=') {
                ++i; // '==' comparison
                continue;
            }
            char prev = i > 0 ? arg[i - 1] : '\0';
            if (prev == '=' || prev == '!' || prev == '<' || prev == '>')
                continue; // right half of a comparison
            if (prev == '[') continue; // [=] lambda capture
            return true;
        }
    }
    return false;
}

/**
 * pp[i] = line i+1 is a preprocessor line (or a backslash continuation of
 * one) — where the macro DEFINITION lives, not a use.
 */
std::vector<char>
preprocessorLines(const SourceFile &file)
{
    std::vector<char> pp(file.lineCount(), 0);
    bool continued = false;
    for (std::size_t line = 1; line <= file.lineCount(); ++line) {
        const std::string &raw = file.rawLine(line);
        std::size_t first = raw.find_first_not_of(" \t");
        bool isPp =
            continued || (first != std::string::npos && raw[first] == '#');
        pp[line - 1] = isPp ? 1 : 0;
        std::size_t last = raw.find_last_not_of(" \t");
        continued = isPp && last != std::string::npos && raw[last] == '\\';
    }
    return pp;
}

} // namespace

void
checkMacroSideEffect(const SourceFile &file, std::vector<Finding> &out)
{
    const std::string &text = file.codeText();
    std::vector<char> pp = preprocessorLines(file);
    for (const char *macro : kMacros) {
        std::size_t at = 0;
        while ((at = findToken(text, macro, at)) != std::string::npos) {
            std::size_t pos = at;
            at += 1;
            std::size_t line = file.lineOfOffset(pos);
            if (line >= 1 && line <= pp.size() && pp[line - 1]) continue;
            std::size_t open = pos + std::string(macro).size();
            while (open < text.size() &&
                   (text[open] == ' ' || text[open] == '\t' ||
                    text[open] == '\n'))
                ++open;
            if (open >= text.size() || text[open] != '(') continue;
            std::size_t close = matchParen(text, open);
            std::string arg = text.substr(open + 1, close - open - 2);
            if (!hasMutation(arg)) continue;
            out.push_back(
                {"macro-side-effect", file.path(), line,
                 std::string(macro) + " argument contains a mutating "
                 "expression: the macro compiles out in default builds, "
                 "so the side effect happens only in instrumented builds "
                 "— hoist the mutation out of the macro argument"});
        }
    }
}

} // namespace leaselint
