file(REMOVE_RECURSE
  "CMakeFiles/test_lease_state.dir/lease/test_lease_state.cc.o"
  "CMakeFiles/test_lease_state.dir/lease/test_lease_state.cc.o.d"
  "test_lease_state"
  "test_lease_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lease_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
