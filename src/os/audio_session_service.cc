#include "os/audio_session_service.h"

#include <set>

namespace leaseos::os {

AudioSessionService::AudioSessionService(
    sim::Simulator &sim, power::CpuModel &cpu, power::AudioModel &audio,
    power::EnergyAccountant &accountant, TokenAllocator &tokens)
    : Service(sim, cpu, "audio"), audio_(audio), accountant_(accountant),
      pipelineChannel_(accountant.makeChannel("audio_pipeline")),
      tokens_(tokens), lastAdvance_(sim.now())
{
}

void
AudioSessionService::advance()
{
    sim::Time now = sim_.now();
    if (now <= lastAdvance_) {
        lastAdvance_ = now;
        return;
    }
    double dt = (now - lastAdvance_).seconds();
    for (auto &[token, session] : sessions_) {
        if (!session.enabled) continue;
        openSeconds_[session.uid] += dt;
        if (session.playing) playingSeconds_[session.uid] += dt;
    }
    lastAdvance_ = now;
}

bool
AudioSessionService::allowedByFilter(Uid uid) const
{
    return !filter_ || filter_(uid);
}

void
AudioSessionService::apply()
{
    std::set<Uid> open_owners;
    std::map<Uid, bool> playing;
    for (auto &[token, session] : sessions_) {
        session.enabled = session.open && !session.suspended &&
            allowedByFilter(session.uid);
        if (session.enabled) {
            open_owners.insert(session.uid);
            if (session.playing) playing[session.uid] = true;
        }
    }
    // Open sessions keep the pipeline powered and the app runnable (the
    // iOS background-audio semantics behind the Facebook leak).
    std::vector<Uid> owners(open_owners.begin(), open_owners.end());
    accountant_.setPower(pipelineChannel_,
                         open_owners.empty() ? 0.0 : kPipelineMw, owners);
    cpu_.setAudioSessionOwners(owners);
    // Route audible output per uid.
    for (const auto &[uid, on] : lastPlaying_)
        if (!playing.count(uid)) audio_.setPlaying(uid, false);
    for (const auto &[uid, on] : playing) audio_.setPlaying(uid, true);
    lastPlaying_ = playing;
}

TokenId
AudioSessionService::openSession(Uid uid)
{
    chargeIpc(uid, kResourceIpcLatency);
    advance();
    TokenId token = tokens_.next();
    Session session;
    session.uid = uid;
    session.open = true;
    sessions_.emplace(token, session);
    apply();
    for (auto *l : listeners_) l->onCreated(token, uid);
    for (auto *l : listeners_) l->onAcquired(token, uid);
    return token;
}

void
AudioSessionService::startPlayback(TokenId token)
{
    auto it = sessions_.find(token);
    if (it == sessions_.end() || !it->second.open) return;
    chargeIpc(it->second.uid, kBinderIpcLatency);
    advance();
    it->second.playing = true;
    apply();
}

void
AudioSessionService::stopPlayback(TokenId token)
{
    auto it = sessions_.find(token);
    if (it == sessions_.end()) return;
    chargeIpc(it->second.uid, kBinderIpcLatency);
    advance();
    it->second.playing = false;
    apply();
}

void
AudioSessionService::closeSession(TokenId token)
{
    auto it = sessions_.find(token);
    if (it == sessions_.end() || !it->second.open) return;
    Uid uid = it->second.uid;
    chargeIpc(uid, kBinderIpcLatency);
    advance();
    it->second.open = false;
    it->second.playing = false;
    apply();
    for (auto *l : listeners_) l->onReleased(token, uid);
}

void
AudioSessionService::destroy(TokenId token)
{
    auto it = sessions_.find(token);
    if (it == sessions_.end()) return;
    advance();
    Uid uid = it->second.uid;
    sessions_.erase(it);
    tokens_.retire(token);
    apply();
    for (auto *l : listeners_) l->onDestroyed(token, uid);
}

bool
AudioSessionService::isOpen(TokenId token) const
{
    auto it = sessions_.find(token);
    return it != sessions_.end() && it->second.open;
}

bool
AudioSessionService::isPlaying(TokenId token) const
{
    auto it = sessions_.find(token);
    return it != sessions_.end() && it->second.playing;
}

void
AudioSessionService::suspend(TokenId token)
{
    auto it = sessions_.find(token);
    if (it == sessions_.end() || it->second.suspended) return;
    advance();
    it->second.suspended = true;
    apply();
}

void
AudioSessionService::restore(TokenId token)
{
    auto it = sessions_.find(token);
    if (it == sessions_.end() || !it->second.suspended) return;
    advance();
    it->second.suspended = false;
    apply();
}

bool
AudioSessionService::isSuspended(TokenId token) const
{
    auto it = sessions_.find(token);
    return it != sessions_.end() && it->second.suspended;
}

bool
AudioSessionService::isEnabled(TokenId token) const
{
    auto it = sessions_.find(token);
    return it != sessions_.end() && it->second.enabled;
}

void
AudioSessionService::setGlobalFilter(std::function<bool(Uid)> filter)
{
    advance();
    filter_ = std::move(filter);
    apply();
}

void
AudioSessionService::refilter()
{
    advance();
    apply();
}

void
AudioSessionService::addListener(ResourceListener *listener)
{
    listeners_.push_back(listener);
}

double
AudioSessionService::openSeconds(Uid uid)
{
    advance();
    auto it = openSeconds_.find(uid);
    return it == openSeconds_.end() ? 0.0 : it->second;
}

double
AudioSessionService::playingSeconds(Uid uid)
{
    advance();
    auto it = playingSeconds_.find(uid);
    return it == playingSeconds_.end() ? 0.0 : it->second;
}

Uid
AudioSessionService::ownerOf(TokenId token) const
{
    auto it = sessions_.find(token);
    return it == sessions_.end() ? kInvalidUid : it->second.uid;
}

} // namespace leaseos::os
