#include "harness/experiment.h"

#include "apps/registry.h"

namespace leaseos::harness {

sim::PeriodicHandle
installGlanceScript(Device &device, const MitigationRunOptions &opt)
{
    if (!opt.userGlances) return {};
    return installGlanceScript(device, opt.glanceInterval,
                               opt.glanceLength);
}

RunSpec
mitigationCellSpec(const apps::BuggyAppSpec &spec, MitigationMode mode,
                   const MitigationRunOptions &opt)
{
    RunSpec run;
    run.name = spec.display + std::string(" / ") + mitigationModeName(mode);
    run.config = DeviceConfig{}
                     .withMode(mode)
                     .withProfile(opt.profile)
                     .withSeed(opt.seed);
    run.duration = opt.duration;
    run.setup.push_back(spec.trigger);
    run.apps.push_back(spec.install);
    if (opt.userGlances) {
        run.userGlances = true;
        run.glanceInterval = opt.glanceInterval;
        run.glanceLength = opt.glanceLength;
    }
    return run;
}

double
reductionPercent(double baselineMw, double mitigatedMw)
{
    if (baselineMw <= 0.0) return 0.0;
    return 100.0 * (1.0 - mitigatedMw / baselineMw);
}

} // namespace leaseos::harness
