/**
 * tracereplay CLI — offline trace triage (DESIGN.md §10, §11).
 *
 *   tracereplay TRACE                 validate one trace / flight record
 *   tracereplay --diff A B            report the first diverging event
 *   tracereplay --checkpoint BLOB     decode + sanity-check a snapshot
 *   tracereplay --checkpoint BLOB TRACE
 *                                     validate TRACE from the blob's
 *                                     lease states as the baseline
 *
 * Exit status: 0 clean, 1 replay/checkpoint issues or divergence,
 * 2 usage or load error.
 */

#include <cstdint>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "tracereplay/checkpoint_view.h"
#include "tracereplay/replay.h"

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: tracereplay TRACE\n"
                 "       tracereplay --diff A B\n"
                 "       tracereplay --checkpoint BLOB [TRACE]\n"
                 "TRACE is a .jsonl trace export or a flightrec-*.json;\n"
                 "BLOB is a .ckpt device snapshot\n");
    return 2;
}

int
runValidate(const char *path)
{
    using namespace leaseos::tracereplay;
    Trace trace = loadTrace(path);
    if (!trace.ok()) {
        std::fprintf(stderr, "tracereplay: %s\n", trace.error.c_str());
        return 2;
    }
    if (trace.flightRecord) {
        std::printf("flight record: check=%s\n  %s\n",
                    trace.check.empty() ? "?" : trace.check.c_str(),
                    trace.detail.c_str());
    }
    ReplayReport report = validate(trace);
    for (const ReplayIssue &issue : report.issues) {
        std::printf("%s\n", issue.toString().c_str());
        if (issue.eventIndex < trace.events.size())
            std::printf("  %s\n",
                        trace.events[issue.eventIndex].toString().c_str());
    }
    std::printf("%s: %zu events, %zu leases (%zu pre-ring), "
                "%zu transitions checked, %zu issues\n",
                report.clean() ? "replay OK" : "replay FAILED",
                report.eventCount, report.leaseCount,
                report.inferredLeases, report.transitionsChecked,
                report.issues.size());
    return report.clean() ? 0 : 1;
}

int
runDiff(const char *pathA, const char *pathB)
{
    using namespace leaseos::tracereplay;
    Trace a = loadTrace(pathA);
    Trace b = loadTrace(pathB);
    if (!a.ok() || !b.ok()) {
        std::fprintf(stderr, "tracereplay: %s\n",
                     (!a.ok() ? a.error : b.error).c_str());
        return 2;
    }
    DiffResult diff = diffTraces(a, b);
    if (!diff.diverged) {
        std::printf("identical: %zu events\n", a.events.size());
        return 0;
    }
    std::printf("diverged at event #%zu (field %s):\n  a: %s\n  b: %s\n",
                diff.index, diff.field.c_str(), diff.a.c_str(),
                diff.b.c_str());
    return 1;
}

int
runCheckpoint(const char *blobPath, const char *tracePath)
{
    using namespace leaseos::tracereplay;
    CheckpointView view = loadCheckpointView(blobPath);
    if (!view.ok()) {
        std::fprintf(stderr, "tracereplay: %s: %s\n", blobPath,
                     view.error.c_str());
        return 2;
    }
    std::printf("checkpoint %s: %" PRIu64 " bytes, mode=%u profile=%s "
                "seed=%" PRIu64 " apps=%" PRIu64 "\n",
                blobPath, view.payloadBytes,
                static_cast<unsigned>(view.mode), view.profile.c_str(),
                view.seed, view.appCount);
    std::printf("  sim t=%" PRId64 "ns, %" PRIu64 " events executed\n",
                view.simTimeNs, view.executedEvents);
    std::printf("  energy total=%.3f mJ\n", view.totalMj);
    for (const auto &section : view.sections)
        std::printf("  section %-10s v%u  %" PRIu64 " bytes\n",
                    section.name.c_str(), section.version,
                    section.bodyBytes);
    if (view.hasLeases)
        std::printf("  leases: %zu rows, next id %" PRIu64
                    ", %zu live tokens\n",
                    view.leases.size(), view.nextLeaseId,
                    view.byToken.size());

    std::vector<CheckpointIssue> issues = checkCheckpoint(view);
    for (const CheckpointIssue &issue : issues)
        std::printf("%s\n", issue.toString().c_str());
    if (!issues.empty()) {
        std::printf("checkpoint FAILED: %zu issues\n", issues.size());
        return 1;
    }
    if (tracePath == nullptr) {
        std::printf("checkpoint OK\n");
        return 0;
    }

    Trace trace = loadTrace(tracePath);
    if (!trace.ok()) {
        std::fprintf(stderr, "tracereplay: %s\n", trace.error.c_str());
        return 2;
    }
    ReplayReport report = validate(trace, view);
    for (const ReplayIssue &issue : report.issues) {
        std::printf("%s\n", issue.toString().c_str());
        if (issue.eventIndex < trace.events.size())
            std::printf("  %s\n",
                        trace.events[issue.eventIndex].toString().c_str());
    }
    std::printf("%s: %zu events, %zu leases (%zu from checkpoint, "
                "%zu pre-ring), %zu transitions checked, %zu issues\n",
                report.clean() ? "replay OK" : "replay FAILED",
                report.eventCount, report.leaseCount,
                report.baselineLeases, report.inferredLeases,
                report.transitionsChecked, report.issues.size());
    return report.clean() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 2 && std::strcmp(argv[1], "--help") != 0)
        return runValidate(argv[1]);
    if (argc == 4 && std::strcmp(argv[1], "--diff") == 0)
        return runDiff(argv[2], argv[3]);
    if ((argc == 3 || argc == 4) &&
        std::strcmp(argv[1], "--checkpoint") == 0)
        return runCheckpoint(argv[2], argc == 4 ? argv[3] : nullptr);
    return usage();
}
