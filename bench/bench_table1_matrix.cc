/**
 * @file
 * Reproduces Table 1: which misbehaviour types can occur for which
 * resources. The matrix is *derived* by probing the behaviour classifier
 * with synthetic term stats representing each behaviour pattern, so it
 * documents what the implementation actually enforces (e.g. FAB is only
 * reachable for GPS). Emitted through the ResultSink pair: text table on
 * stdout plus BENCH_table1_matrix.json.
 */

#include <iostream>

#include "harness/result_sink.h"
#include "lease/behavior_classifier.h"

using namespace leaseos;
using namespace leaseos::lease;
using harness::ResultSink;

namespace {

LeaseStat
statFor(BehaviorType target)
{
    LeaseStat s;
    s.termStart = sim::Time::zero();
    s.termEnd = sim::Time::fromSeconds(5.0);
    switch (target) {
      case BehaviorType::FrequentAsk:
        s.requestSeconds = 4.0;
        s.failedRequestSeconds = 4.0;
        break;
      case BehaviorType::LongHolding:
        s.holdingSeconds = 5.0;
        s.usageSeconds = 0.0;
        s.utilityScore = 50.0;
        break;
      case BehaviorType::LowUtility:
        s.holdingSeconds = 5.0;
        s.usageSeconds = 1.0;
        s.utilityScore = 5.0;
        break;
      case BehaviorType::ExcessiveUse:
        s.holdingSeconds = 5.0;
        s.usageSeconds = 4.5;
        s.utilityScore = 95.0;
        break;
      case BehaviorType::Normal:
        break;
    }
    return s;
}

} // namespace

int
main()
{
    harness::TextTableSink table;
    harness::JsonSink json(harness::benchArtifactPath("table1_matrix"));
    harness::TeeSink sink({&table, &json});
    sink.begin(
        "Table 1",
        "Four types of energy misbehaviour x resources. A check means the "
        "classifier can produce that behaviour for the resource; '*' "
        "marks the resources whose Use semantics differ (GPS/sensor "
        "utilisation is Activity-bound-lifetime, not physical use).");

    BehaviorClassifier classifier;
    const struct {
        ResourceType rtype;
        const char *label;
        bool starredUse;
    } resources[] = {
        {ResourceType::Wakelock, "CPU (wakelock)", false},
        {ResourceType::Screen, "Screen", false},
        {ResourceType::Wifi, "Wi-Fi radio", false},
        {ResourceType::Audio, "Audio", false},
        {ResourceType::Gps, "GPS", true},
        {ResourceType::Sensor, "Sensors", true},
        {ResourceType::Bluetooth, "Bluetooth", true},
    };
    const struct {
        BehaviorType behavior;
        const char *column;
    } columns[] = {
        {BehaviorType::FrequentAsk, "FAB (Ask)"},
        {BehaviorType::LongHolding, "LHB (Use)"},
        {BehaviorType::LowUtility, "LUB (Use)"},
        {BehaviorType::ExcessiveUse, "EUB (Release)"},
    };

    for (const auto &res : resources) {
        ResultSink::Row row{
            {"Resource", ResultSink::Value::str(res.label)}};
        for (const auto &column : columns) {
            BehaviorType got =
                classifier.classify(res.rtype, statFor(column.behavior));
            bool reachable = got == column.behavior;
            std::string mark = reachable ? "yes" : "no";
            if (reachable && res.starredUse &&
                (column.behavior == BehaviorType::LongHolding))
                mark += "*";
            row.emplace_back(column.column, ResultSink::Value::str(mark));
        }
        sink.addRow(row);
    }
    sink.finish();
    std::cout << "\nPaper: FAB only occurs for GPS; all resources can "
                 "exhibit LHB/LUB/EUB; audio LUB is rescued by the "
                 "audible-output generic utility in practice.\n";
    return 0;
}
