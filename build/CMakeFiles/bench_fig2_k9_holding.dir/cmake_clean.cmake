file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_k9_holding.dir/bench/bench_fig2_k9_holding.cc.o"
  "CMakeFiles/bench_fig2_k9_holding.dir/bench/bench_fig2_k9_holding.cc.o.d"
  "bench/bench_fig2_k9_holding"
  "bench/bench_fig2_k9_holding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_k9_holding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
