/**
 * @file
 * leaselint_bench — wall-clock gate for the two-pass engine.
 *
 * Runs the full-repo analysis twice against a fresh cache directory:
 * cold (everything indexed from source) and warm (every file served
 * from the cache). Prints both times and enforces the PR's performance
 * budget: cold < 2000 ms with --jobs 8, warm < 200 ms. Run by ctest as
 * `leaselint_bench`.
 *
 * Usage: leaselint_bench --root DIR --cache-dir DIR [--jobs N]
 *        [--cold-budget-ms N] [--warm-budget-ms N]
 */

#include <chrono>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>

#include "leaselint/driver.h"

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string cacheDir;
    unsigned jobs = 8;
    double coldBudgetMs = 2000.0;
    double warmBudgetMs = 200.0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) root = argv[++i];
        else if (arg == "--cache-dir" && i + 1 < argc) cacheDir = argv[++i];
        else if (arg == "--jobs" && i + 1 < argc)
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (arg == "--cold-budget-ms" && i + 1 < argc)
            coldBudgetMs = std::strtod(argv[++i], nullptr);
        else if (arg == "--warm-budget-ms" && i + 1 < argc)
            warmBudgetMs = std::strtod(argv[++i], nullptr);
        else {
            std::cerr << "usage: leaselint_bench --root DIR --cache-dir "
                         "DIR [--jobs N]\n";
            return 2;
        }
    }
    if (cacheDir.empty()) {
        std::cerr << "leaselint_bench: --cache-dir is required\n";
        return 2;
    }

    // Fresh cache: the first run is genuinely cold.
    std::error_code ec;
    std::filesystem::remove_all(cacheDir, ec);

    leaselint::LintOptions options;
    options.root = root;
    options.jobs = jobs;
    options.cacheDir = cacheDir;

    auto wallMs = [&](leaselint::LintReport &report) {
        auto start = std::chrono::steady_clock::now();
        report = leaselint::runLint(options);
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    leaselint::LintReport cold, warm;
    double coldMs = wallMs(cold);
    double warmMs = wallMs(warm);

    std::cout << "leaselint_bench: " << cold.filesScanned << " files, "
              << jobs << " jobs\n"
              << "  cold: " << coldMs << " ms (cache hits "
              << cold.cacheHits << ", budget " << coldBudgetMs << " ms)\n"
              << "  warm: " << warmMs << " ms (cache hits "
              << warm.cacheHits << ", budget " << warmBudgetMs << " ms)\n";

    bool ok = true;
    if (coldMs >= coldBudgetMs) {
        std::cout << "FAIL: cold run over budget\n";
        ok = false;
    }
    if (warmMs >= warmBudgetMs) {
        std::cout << "FAIL: warm run over budget\n";
        ok = false;
    }
    if (warm.cacheHits != warm.filesScanned) {
        std::cout << "FAIL: warm run expected " << warm.filesScanned
                  << " cache hits, got " << warm.cacheHits << "\n";
        ok = false;
    }
    if (cold.findings.size() != warm.findings.size()) {
        std::cout << "FAIL: cold and warm runs disagree ("
                  << cold.findings.size() << " vs " << warm.findings.size()
                  << " findings)\n";
        ok = false;
    }
    return ok ? 0 : 1;
}
