#ifndef LEASEOS_LEASE_PROXIES_SCREEN_PROXY_H
#define LEASEOS_LEASE_PROXIES_SCREEN_PROXY_H

/**
 * @file
 * Lease proxy for full (screen) wakelocks.
 *
 * Same kernel objects as the wakelock proxy but the Full level: holding a
 * full lock keeps the panel lit. Usage is measured as the holder's live
 * Activity time (someone can only benefit from a lit screen through a
 * visible Activity), which is what flags ConnectBot's and Standup Timer's
 * background screen-holds as Long-Holding.
 */

#include <map>

#include "lease/lease_proxy.h"
#include "os/activity_manager_service.h"
#include "os/power_manager_service.h"

namespace leaseos::lease {

/**
 * Full-wakelock (screen) lease proxy.
 */
class ScreenLeaseProxy : public LeaseProxy
{
  public:
    ScreenLeaseProxy(os::PowerManagerService &pms,
                     os::ActivityManagerService &am);

    void onExpire(const Lease &lease) override;
    void onRenew(const Lease &lease) override;
    bool resourceHeld(const Lease &lease) override;
    void beginTerm(const Lease &lease) override;
    LeaseStat collectStat(const Lease &lease) override;

    void onCreated(os::TokenId token, Uid uid) override;
    void onAcquired(os::TokenId token, Uid uid) override;
    void onReleased(os::TokenId token, Uid uid) override;
    void onDestroyed(os::TokenId token, Uid uid) override;

  private:
    struct Snapshot {
        double enabledSeconds = 0.0;
        double activitySeconds = 0.0;
        std::uint64_t uiUpdates = 0;
        std::uint64_t interactions = 0;
        std::uint64_t acquires = 0;
    };

    bool mine(os::TokenId token) const;
    Snapshot snapshot(const Lease &lease);

    os::PowerManagerService &pms_;
    os::ActivityManagerService &am_;
    std::map<LeaseId, Snapshot> snapshots_;
};

} // namespace leaseos::lease

#endif // LEASEOS_LEASE_PROXIES_SCREEN_PROXY_H
