#ifndef LEASEOS_OS_POWER_MANAGER_SERVICE_H
#define LEASEOS_OS_POWER_MANAGER_SERVICE_H

/**
 * @file
 * Wakelock management (android.os.PowerManagerService analog).
 *
 * Apps create wakelocks (kernel IBinder tokens) and acquire/release them.
 * A held *partial* wakelock keeps the CPU awake; a held *full* wakelock
 * additionally forces the screen on (the ConnectBot / Standup Timer bug
 * pattern). The service maintains the internal token array that decides
 * whether the CPU may deep-sleep — exactly the array the wakelock lease
 * proxy mutates in onExpire (§4.4: "remove the IBinder from the array").
 *
 * Interposition surface used by LeaseOS / DefDroid / Doze:
 *  - suspend(token)/restore(token): temporarily pull one kernel object out
 *    of the array without the app noticing (the descriptor stays valid and
 *    acquire/release IPCs behave as §4.6 describes);
 *  - setGlobalFilter(uid -> allow): Doze-style gating of whole uids.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "os/binder.h"
#include "os/resource_listener.h"
#include "os/service.h"

namespace leaseos::os {

/** Android wakelock levels we distinguish. */
enum class WakeLockType {
    Partial, ///< CPU stays on; screen may sleep
    Full     ///< CPU and screen stay on
};

/**
 * Wakelock service with lease/throttle interposition hooks.
 */
class PowerManagerService : public Service
{
  public:
    PowerManagerService(sim::Simulator &sim, power::CpuModel &cpu,
                        TokenAllocator &tokens);

    // ---- App-facing API (binder IPCs) --------------------------------

    /** Create a wakelock kernel object; does not acquire it. */
    TokenId newWakeLock(Uid uid, WakeLockType type, std::string tag);

    /** Acquire; nested acquires are idempotent (counted as re-acquire). */
    void acquire(TokenId token);

    /** Release; unknown/unheld tokens are ignored (Android semantics). */
    void release(TokenId token);

    /** Kernel object death (app exit / GC of the wrapper). */
    void destroy(TokenId token);

    bool isHeld(TokenId token) const;

    // ---- Interposition (same-address-space, no IPC) -------------------

    /** Pull @p token out of the kernel array; the app keeps "holding" it. */
    void suspend(TokenId token);

    /** Undo suspend(); re-enables the lock if the app still holds it. */
    void restore(TokenId token);

    bool isSuspended(TokenId token) const;

    /**
     * Whether the token currently keeps hardware awake:
     * held && !suspended && filter(uid).
     */
    bool isEnabled(TokenId token) const;

    /**
     * Doze-style global gate. Pass nullptr to clear. The filter is
     * re-evaluated immediately and on every subsequent state change.
     * The typed variant lets a policy exempt lock levels (Doze defers
     * background CPU but never forces the panel off).
     */
    void setGlobalFilter(std::function<bool(Uid)> filter);
    void
    setGlobalFilter(std::function<bool(Uid, WakeLockType)> filter);

    /** Remove any global gate (avoids nullptr-overload ambiguity). */
    void clearGlobalFilter();

    /** Re-apply the global filter after external state changed. */
    void refilter();

    void addListener(ResourceListener *listener);

    // ---- Metrics --------------------------------------------------------

    /** App-perspective holding time (held, regardless of suspension). */
    double heldSeconds(Uid uid);
    double heldSecondsForToken(TokenId token);

    /** Effective time the token kept hardware awake. */
    double enabledSeconds(Uid uid);
    double enabledSecondsForToken(TokenId token);

    std::uint64_t acquireCount(Uid uid) const;
    std::uint64_t releaseCount(Uid uid) const;

    /** Uids with at least one enabled partial or full lock. */
    std::vector<Uid> enabledOwners() const;

    /** Tokens @p uid currently holds (acquired, not released/destroyed). */
    std::vector<TokenId> heldTokens(Uid uid) const;

    Uid ownerOf(TokenId token) const;
    const std::string &tagOf(TokenId token) const;
    WakeLockType typeOf(TokenId token) const;

    /**
     * Display coupling: invoked with the uids whose *full* locks are
     * enabled whenever that set changes.
     */
    void setFullLockCallback(std::function<void(std::vector<Uid>)> cb);

  private:
    struct Lock {
        Uid uid = kInvalidUid;
        WakeLockType type = WakeLockType::Partial;
        std::string tag;
        bool held = false;
        bool suspended = false;
        bool enabled = false;
        double heldSeconds = 0.0;
        double enabledSeconds = 0.0;
    };

    /** Integrate per-token and per-uid times up to now. */
    void advance();

    /** Recompute enabled flags and push wake sources to hardware. */
    void apply();

    bool allowedByFilter(Uid uid, WakeLockType type) const;

    TokenAllocator &tokens_;
    std::map<TokenId, Lock> locks_;
    std::function<bool(Uid, WakeLockType)> filter_;
    std::function<void(std::vector<Uid>)> fullLockCb_;
    std::vector<ResourceListener *> listeners_;

    sim::Time lastAdvance_;
    std::map<Uid, double> heldSeconds_;
    std::map<Uid, double> enabledSeconds_;
    std::map<Uid, std::uint64_t> acquireCount_;
    std::map<Uid, std::uint64_t> releaseCount_;
    std::vector<Uid> lastFullOwners_;
};

} // namespace leaseos::os

#endif // LEASEOS_OS_POWER_MANAGER_SERVICE_H
