#ifndef LEASEOS_SIM_TIME_SERIES_H
#define LEASEOS_SIM_TIME_SERIES_H

/**
 * @file
 * Time-stamped sample series, the backing store for every figure.
 *
 * The paper's characterisation figures (Figs. 1-4) are per-minute metric
 * vectors; the evaluation figures (Figs. 9, 11-14) are series or grouped
 * bars. TimeSeries collects (time, value) points and renders them as
 * aligned text columns or CSV so the bench binaries can print the same
 * series the paper plots.
 */

#include <string>
#include <vector>

#include "sim/time.h"

namespace leaseos::sim {

class CheckpointWriter;
class CheckpointReader;

/**
 * Ordered sequence of (timestamp, value) samples.
 */
class TimeSeries
{
  public:
    struct Point {
        Time t;
        double value;
    };

    explicit TimeSeries(std::string name = "") : name_(std::move(name)) {}

    void record(Time t, double value) { points_.push_back({t, value}); }

    const std::string &name() const { return name_; }
    const std::vector<Point> &points() const { return points_; }
    std::size_t size() const { return points_.size(); }
    bool empty() const { return points_.empty(); }

    double sum() const;
    double mean() const;
    double max() const;
    double min() const;

    /** Sum of values where the sample time lies in [from, to). */
    double sumBetween(Time from, Time to) const;

    /** CSV rendering: "t_seconds,value" lines. */
    std::string toCsv() const;

    /** Raw-point serialization (embedded in the owner's section). */
    void saveState(CheckpointWriter &w) const;
    void restoreState(CheckpointReader &r);

  private:
    std::string name_;
    std::vector<Point> points_;
};

/**
 * Render several series that share a time axis as an aligned text table,
 * one row per timestamp (union of the series' timestamps; missing cells
 * print as blanks). This is the "figure" format the bench binaries emit.
 */
std::string renderSeriesTable(const std::vector<const TimeSeries *> &series,
                              const std::string &timeUnit = "s");

} // namespace leaseos::sim

#endif // LEASEOS_SIM_TIME_SERIES_H
