#include "apps/synthetic/snapshot_probe.h"

#include "sim/checkpoint.h"

namespace leaseos::apps {

SnapshotProbeApp::~SnapshotProbeApp()
{
    ctx_.sim.cancel(pending_);
}

void
SnapshotProbeApp::start()
{
    running_ = true;
    nextDueAt_ = ctx_.sim.now() + period_;
    arm();
}

void
SnapshotProbeApp::arm()
{
    // Directly on the simulator: a process_.post continuation would park
    // as a CPU wake waiter whenever the device is asleep, making every
    // boundary non-quiescent. The raw event fires regardless of CPU state
    // and is fully described by nextDueAt_.
    pending_ = ctx_.sim.scheduleAt(nextDueAt_, [this] { tick(); });
}

void
SnapshotProbeApp::tick()
{
    if (!running_) return;
    ++ticks_;
    nextDueAt_ = ctx_.sim.now() + period_;
    arm();
}

void
SnapshotProbeApp::saveState(sim::CheckpointWriter &w) const
{
    w.time(period_);
    w.u64(ticks_);
    w.u8(running_ ? 1 : 0);
    w.time(nextDueAt_);
}

void
SnapshotProbeApp::restoreState(sim::CheckpointReader &r)
{
    sim::Time period = r.time();
    if (period != period_) {
        throw sim::CheckpointError(
            "snapshot probe period differs from the blob's");
    }
    ticks_ = r.u64();
    bool wasRunning = r.u8() != 0;
    nextDueAt_ = r.time();
    if (wasRunning && !running_) {
        // Restoring onto a not-yet-started device: adopt the serialized
        // deadline instead of starting a fresh cycle.
        running_ = true;
        arm();
    }
}

} // namespace leaseos::apps
