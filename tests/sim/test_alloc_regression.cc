/**
 * @file
 * Allocation-count regression tests for the hot path (DESIGN.md §8).
 *
 * This binary replaces the global operator new/delete with counting
 * versions, then asserts that steady-state event-queue churn and power
 * re-attribution perform ZERO heap allocations. The same invariant is
 * enforced at scale by the perf-bench CI gate over bench_eventqueue's
 * allocs_per_op column; this test catches regressions at unit scope with
 * a precise callstack when it fires.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/ids.h"
#include "power/energy_accountant.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/time.h"

// GCC inlines the replacement operator new/delete below into container
// code and then reports the malloc/free pairing as mismatched; the
// pairing is correct for global replacement allocation functions.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {

std::atomic<std::uint64_t> g_allocs{0};

std::uint64_t
allocCount()
{
    return g_allocs.load(std::memory_order_relaxed);
}

} // namespace

void *
operator new(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (size == 0) size = 1;
    if (void *p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (size == 0) size = 1;
    std::size_t a = static_cast<std::size_t>(align);
    if (void *p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace leaseos::sim {
namespace {

TEST(AllocRegressionTest, SteadyChurnIsAllocationFree)
{
    EventQueue q;
    const int window = 256;
    Time when = Time::zero();
    auto tick = [&] { when = when + Time::fromSeconds(1.0); };
    for (int i = 0; i < window; ++i) {
        tick();
        q.schedule(when, [] {});
    }
    // Warm-up churn: the slot pool and heap reach their high-water mark.
    for (int i = 0; i < 2 * window; ++i) {
        q.pop().second();
        tick();
        q.schedule(when, [] {});
    }
    std::uint64_t before = allocCount();
    for (int i = 0; i < 10'000; ++i) {
        q.pop().second();
        tick();
        q.schedule(when, [] {});
    }
    std::uint64_t after = allocCount();
    EXPECT_EQ(after, before)
        << "steady schedule/pop churn allocated " << (after - before)
        << " times in 10k iterations";
}

TEST(AllocRegressionTest, CancelChurnIsAllocationFree)
{
    EventQueue q;
    const int window = 128;
    std::vector<EventId> live(window);
    Time when = Time::zero();
    auto tick = [&] { when = when + Time::fromSeconds(1.0); };
    for (int i = 0; i < window; ++i) {
        tick();
        live[static_cast<std::size_t>(i)] = q.schedule(when, [] {});
    }
    std::size_t head = 0;
    auto churn = [&](int ops) {
        for (int i = 0; i < ops; ++i) {
            q.cancel(live[head]);
            tick();
            live[head] = q.schedule(when, [] {});
            head = (head + 1) % window;
        }
    };
    churn(5'000); // warm: tombstone high-water mark, compaction cadence
    std::uint64_t before = allocCount();
    churn(10'000);
    std::uint64_t after = allocCount();
    EXPECT_EQ(after, before)
        << "steady cancel/schedule churn allocated " << (after - before)
        << " times in 10k iterations";
}

TEST(AllocRegressionTest, InlineCaptureScheduleIsAllocationFree)
{
    EventQueue q;
    // The capture AppProcess::post relies on: shared_ptr + std::function
    // fits the 48-byte inline buffer, so no allocation per schedule —
    // the shared state and function are created once, outside the loop.
    auto state = std::make_shared<int>(0);
    Time when = Time::zero();
    // One cold cycle: the first schedule grows the slot pool and heap.
    q.schedule(when, [st = state] { ++*st; });
    q.pop().second();
    std::uint64_t before = allocCount();
    for (int i = 0; i < 1'000; ++i) {
        when = when + Time::fromSeconds(1.0);
        q.schedule(when, [st = state] { ++*st; });
        q.pop().second();
    }
    std::uint64_t after = allocCount();
    EXPECT_EQ(after, before);
    EXPECT_EQ(*state, 1'001);
}

} // namespace
} // namespace leaseos::sim

namespace leaseos::power {
namespace {

TEST(AllocRegressionTest, PowerReattributionIsAllocationFree)
{
    sim::Simulator sim;
    EnergyAccountant acc(sim);
    ChannelId ch = acc.makeChannel("cpu_busy");
    std::vector<Uid> owners = {kFirstAppUid, kFirstAppUid + 1};
    // First set interns the uids and sizes the share array.
    acc.setPower(ch, 100.0, owners);
    std::uint64_t before = allocCount();
    for (int i = 0; i < 10'000; ++i)
        acc.setPower(ch, 100.0 + static_cast<double>(i % 7), owners);
    acc.sync();
    std::uint64_t after = allocCount();
    EXPECT_EQ(after, before)
        << "steady setPower re-attribution allocated " << (after - before)
        << " times in 10k iterations";
}

} // namespace
} // namespace leaseos::power
