/**
 * @file
 * Tests for the harness: tables, figures, metrics sampler, study corpus,
 * and the Table 5 cell runner.
 */

#include <gtest/gtest.h>

#include "apps/registry.h"
#include "harness/experiment.h"
#include "harness/figure.h"
#include "harness/metrics.h"
#include "harness/study/misbehavior_study.h"
#include "harness/table.h"

namespace leaseos::harness {
namespace {

using sim::operator""_s;
using sim::operator""_min;

TEST(TextTableTest, AlignsColumnsAndFormats)
{
    TextTable table({"App", "Power"});
    table.addRow({"K-9", TextTable::fmt(890.35)});
    table.addSeparator();
    table.addRow({"Torch", TextTable::pct(98.41)});
    std::string out = table.toString();
    EXPECT_NE(out.find("App"), std::string::npos);
    EXPECT_NE(out.find("890.35"), std::string::npos);
    EXPECT_NE(out.find("98.41%"), std::string::npos);
    EXPECT_EQ(table.rows(), 2u);
}

TEST(FigureTest, BarChartScalesBars)
{
    std::string out = barChart({{"a", 100.0}, {"b", 50.0}}, "mW");
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("100.00 mW"), std::string::npos);
    // The larger bar has more blocks.
    auto count_hashes = [&](const std::string &label) {
        auto pos = out.find(label);
        auto end = out.find('\n', pos);
        return std::count(out.begin() + static_cast<long>(pos),
                          out.begin() + static_cast<long>(end), '#');
    };
    EXPECT_GT(count_hashes("a"), count_hashes("b"));
}

TEST(FigureTest, HeaderNamesArtifact)
{
    std::string h = figureHeader("Figure 9", "holding times");
    EXPECT_NE(h.find("Figure 9"), std::string::npos);
}

TEST(MetricsSamplerTest, GaugesAndDeltas)
{
    sim::Simulator sim;
    MetricsSampler sampler(sim, 60_s);
    double gauge = 1.0;
    double counter = 0.0;
    sampler.addGauge("g", [&] { return gauge; });
    sampler.addDeltaGauge("d", [&] { return counter; });
    sampler.start();
    sim.schedulePeriodic(1_s, [&] {
        counter += 0.5;
        return true;
    });
    sim.run(5_min);
    EXPECT_EQ(sampler.series("g").size(), 5u);
    EXPECT_NEAR(sampler.series("g").mean(), 1.0, 1e-9);
    // Each 60 s bucket sees 60 ticks * 0.5.
    EXPECT_NEAR(sampler.series("d").points()[1].value, 30.0, 1e-9);
}

// ---- Study corpus -------------------------------------------------------

TEST(StudyTest, CorpusMatchesPublishedMarginals)
{
    using study::CaseType;
    using study::RootCause;
    EXPECT_EQ(study::corpus().size(), 109u);
    auto counts = study::summarize();
    EXPECT_EQ(counts[CaseType::FAB][RootCause::Bug], 10);
    EXPECT_EQ(counts[CaseType::LHB][RootCause::Bug], 18);
    EXPECT_EQ(counts[CaseType::LHB][RootCause::Configuration], 5);
    EXPECT_EQ(counts[CaseType::LUB][RootCause::Bug], 23);
    EXPECT_EQ(counts[CaseType::EUB][RootCause::Configuration], 18);
    EXPECT_EQ(counts[CaseType::Unknown][RootCause::Unknown], 12);
    EXPECT_EQ(study::distinctApps(), 81);
}

TEST(StudyTest, FindingsMatchPaper)
{
    auto f1 = study::finding1();
    // "FAB, LHB and LUB together occupy 58% ... EUB occupies 31%".
    EXPECT_NEAR(f1.defectSharePct, 58.0, 1.0);
    EXPECT_NEAR(f1.eubSharePct, 31.0, 1.0);
    auto f2 = study::finding2();
    // "The majority (80%) of FAB/LHB/LUB due to Bug; 77% of EUB non-Bug".
    EXPECT_NEAR(f2.defectBugSharePct, 80.0, 2.0);
    EXPECT_NEAR(f2.eubNonBugSharePct, 77.0, 2.0);
}

// ---- Mitigation cell runner -------------------------------------------------

TEST(ExperimentTest, ReductionPercentMath)
{
    EXPECT_DOUBLE_EQ(reductionPercent(100.0, 8.0), 92.0);
    EXPECT_DOUBLE_EQ(reductionPercent(0.0, 5.0), 0.0);
}

TEST(ExperimentTest, LeaseCellBeatsVanillaOnTorch)
{
    const auto &spec = apps::buggySpec("torch");
    MitigationRunOptions opt;
    opt.duration = 10_min;
    auto vanilla =
        runScenario(mitigationCellSpec(spec, MitigationMode::None, opt));
    auto leased =
        runScenario(mitigationCellSpec(spec, MitigationMode::LeaseOS, opt));
    EXPECT_GT(vanilla.appPowerMw, 10.0);
    EXPECT_GT(reductionPercent(vanilla.appPowerMw, leased.appPowerMw),
              80.0);
    EXPECT_GT(leased.deferrals, 0u);
    EXPECT_GT(
        leased.behaviorCounts.at(lease::BehaviorType::LongHolding), 0u);
}

TEST(ExperimentTest, GlanceScriptWakesDeviceBriefly)
{
    DeviceConfig cfg;
    Device device(cfg);
    MitigationRunOptions opt;
    opt.glanceInterval = 2_min;
    opt.glanceLength = 10_s;
    sim::PeriodicHandle glances = installGlanceScript(device, opt);
    device.start();
    device.runFor(10_min);
    // ~5 glances x 10 s of screen-on.
    double awake = device.cpu().awakeSeconds();
    EXPECT_GT(awake, 30.0);
    EXPECT_LT(awake, 120.0);
}

} // namespace
} // namespace leaseos::harness
