#ifndef LEASEOS_HARNESS_DEVICE_H
#define LEASEOS_HARNESS_DEVICE_H

/**
 * @file
 * A complete simulated phone: hardware models, OS services, environments,
 * optional mitigation (LeaseOS / Doze / DefDroid / one-shot throttling),
 * power profiling, and installed apps.
 *
 * This is the top-level object every experiment, example, and bench
 * builds. The mitigation mode mirrors the paper's experimental arms in
 * Table 5; MitigationMode::None is the vanilla-Android baseline ("a flag
 * in LeaseOS to completely turn off the lease service", §7.1).
 */

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <cstdint>

#include "analysis/invariants.h"
#include "app/app.h"
#include "sim/checkpoint.h"
#include "obs/flight_recorder.h"
#include "app/app_context.h"
#include "env/gps_environment.h"
#include "env/motion_model.h"
#include "env/network_environment.h"
#include "env/user_model.h"
#include "lease/leaseos_runtime.h"
#include "power/bluetooth_model.h"
#include "mitigation/defdroid.h"
#include "mitigation/doze.h"
#include "mitigation/throttle.h"
#include "os/system_server.h"
#include "power/battery.h"
#include "power/power_profiler.h"

namespace leaseos::harness {

/** Which runtime mitigation the device runs. */
enum class MitigationMode {
    None,            ///< vanilla ask-use-release Android
    LeaseOS,         ///< the paper's system
    Doze,            ///< stock Doze (conservative trigger)
    DozeAggressive,  ///< Doze forced on at start (Table 5 '*')
    DefDroid,        ///< holding-time throttling
    OneShotThrottle  ///< single-term time-based revocation (§7.4)
};

const char *mitigationModeName(MitigationMode m);

/**
 * Device construction parameters.
 *
 * Plain aggregate, plus fluent `with*` builders so declarative call sites
 * (RunSpec lists, benches, examples) can assemble a config inline:
 *
 *     Device dev(DeviceConfig{}
 *                    .withMode(MitigationMode::LeaseOS)
 *                    .withSeed(42));
 */
struct DeviceConfig {
    power::DeviceProfile profile = power::profiles::pixelXl();
    MitigationMode mode = MitigationMode::None;
    lease::LeasePolicy leasePolicy;
    mitigation::DozeConfig dozeConfig;
    mitigation::DefDroidConfig defdroidConfig;
    sim::Time throttleHoldLimit = sim::Time::fromMinutes(5.0);
    std::uint64_t seed = 0x1ea5e05;
    /** Power sampling period (the paper samples every 100 ms, §7.3). */
    sim::Time profilerPeriod = sim::Time::fromMillis(100);
    /**
     * Enable the §8 DVFS extension (frequency governor + adjusted
     * utilisation metrics). Off by default: the paper's base system
     * assumes constant frequency.
     */
    bool dvfsEnabled = false;
    /**
     * Period of the lease-table / energy-conservation audits in checked
     * builds (-DLEASEOS_CHECKED=ON). Ignored in normal builds.
     */
    sim::Time checkedAuditPeriod = sim::Time::fromSeconds(10.0);
    /**
     * Whether the device installs its own Abort-mode oracle in checked
     * builds. Negative tests that deliberately corrupt device state turn
     * this off so only their Record-mode oracle sees the violation.
     * Ignored in normal builds.
     */
    bool checkedOracle = true;
    /**
     * When non-empty, the device installs an obs::FlightRecorder for its
     * thread so the checked-mode oracle's abort path can dump the trace
     * ring + metrics snapshot there before dying (DESIGN.md §10). Free
     * until a dump happens. Harness runs usually set this per-run via
     * RunSpec::flightRecordDir instead.
     */
    std::string flightRecordDir;

    // ---- Fluent builders -----------------------------------------------

    DeviceConfig &
    withMode(MitigationMode m)
    {
        mode = m;
        return *this;
    }
    DeviceConfig &
    withProfile(power::DeviceProfile p)
    {
        profile = std::move(p);
        return *this;
    }
    DeviceConfig &
    withSeed(std::uint64_t s)
    {
        seed = s;
        return *this;
    }
    DeviceConfig &
    withLeasePolicy(lease::LeasePolicy p)
    {
        leasePolicy = std::move(p);
        return *this;
    }
    /** In-place tweak of the lease policy: `.tunePolicy([](auto &p) {...})`. */
    template <typename F>
    DeviceConfig &
    tunePolicy(F &&f)
    {
        f(leasePolicy);
        return *this;
    }
    DeviceConfig &
    withDozeConfig(mitigation::DozeConfig c)
    {
        dozeConfig = c;
        return *this;
    }
    DeviceConfig &
    withDefDroidConfig(mitigation::DefDroidConfig c)
    {
        defdroidConfig = c;
        return *this;
    }
    DeviceConfig &
    withThrottleHoldLimit(sim::Time limit)
    {
        throttleHoldLimit = limit;
        return *this;
    }
    DeviceConfig &
    withProfilerPeriod(sim::Time period)
    {
        profilerPeriod = period;
        return *this;
    }
    DeviceConfig &
    withDvfs(bool enabled = true)
    {
        dvfsEnabled = enabled;
        return *this;
    }
    DeviceConfig &
    withCheckedAuditPeriod(sim::Time period)
    {
        checkedAuditPeriod = period;
        return *this;
    }
    DeviceConfig &
    withCheckedOracle(bool enabled)
    {
        checkedOracle = enabled;
        return *this;
    }
    DeviceConfig &
    withFlightRecordDir(std::string dir)
    {
        flightRecordDir = std::move(dir);
        return *this;
    }
};

/**
 * Fully-wired simulated device.
 */
class Device
{
  public:
    explicit Device(DeviceConfig config = {});
    ~Device();
    Device(const Device &) = delete;
    Device &operator=(const Device &) = delete;

    // ---- Core handles ---------------------------------------------------

    sim::Simulator &simulator() { return sim_; }
    sim::RandomSource &rng() { return rng_; }
    const power::DeviceProfile &profile() const { return config_.profile; }
    power::EnergyAccountant &accountant() { return *accountant_; }
    power::Battery &battery() { return *battery_; }
    power::PowerProfiler &profiler() { return *profiler_; }
    power::CpuModel &cpu() { return *cpu_; }
    power::GpsModel &gpsHardware() { return *gps_; }
    power::RadioModel &radio() { return *radio_; }
    power::ScreenModel &screenHardware() { return *screen_; }
    power::BluetoothModel &bluetoothHardware() { return *bluetooth_; }
    os::SystemServer &server() { return *server_; }
    env::NetworkEnvironment &network() { return *network_; }
    env::GpsEnvironment &gpsEnv() { return *gpsEnv_; }
    env::MotionModel &motion() { return *motion_; }
    env::UserModel &user() { return *user_; }
    app::AppContext &context() { return *context_; }

    MitigationMode mode() const { return config_.mode; }

    /** Non-null only in MitigationMode::LeaseOS. */
    lease::LeaseOsRuntime *leaseos() { return leaseos_.get(); }
    mitigation::DozeController *doze() { return doze_.get(); }
    mitigation::DefDroidController *defdroid() { return defdroid_.get(); }
    mitigation::OneShotThrottler *throttler() { return throttler_.get(); }

    // ---- Apps ------------------------------------------------------------

    /** Install an app of type T (ctor: T(AppContext&, Uid, extra...)). */
    template <typename T, typename... Args>
    T &
    install(Args &&...args)
    {
        Uid uid = nextUid_++;
        auto owned =
            std::make_unique<T>(*context_, uid, std::forward<Args>(args)...);
        T &ref = *owned;
        profiler_->watchUid(uid);
        apps_.push_back(std::move(owned));
        return ref;
    }

    /** Start every installed app (and the profiler + mitigation). */
    void start();

    const std::vector<std::unique_ptr<app::App>> &apps() const
    {
        return apps_;
    }

    /** Run the simulation forward. */
    void runFor(sim::Time span) { sim_.run(sim_.now() + span); }

    /** Average power attributed to @p uid since profiling began (mW). */
    double appPowerMw(Uid uid) { return profiler_->averageUidPowerMw(uid); }

    /**
     * Run the pull-style invariant audits (lease table ↔ binder, energy
     * conservation) against @p oracle now. Checked builds call this
     * periodically and at teardown through the device's own oracle; tests
     * can call it directly with a Record-mode oracle in any build.
     */
    void auditInvariants(analysis::InvariantOracle &oracle);

    // ---- Checkpointing (DESIGN.md §11) ----------------------------------

    /**
     * Serialize the whole device — simulator clock, RNG stream, every
     * power model's integrals, lease service (LeaseOS mode), and app
     * states — into one framed blob. Deterministic: equal device state
     * yields byte-identical blobs, which is what the sharded-determinism
     * CI gate diffs. Always succeeds; the quiescence requirements live on
     * the restore side.
     */
    std::vector<std::uint8_t> saveCheckpoint() const;

    /**
     * Restore a blob from saveCheckpoint() onto a freshly built device
     * with the same config and the same install<T>() sequence, *before*
     * start() has been called. Components re-arm their recomputable
     * deadlines (profiler tick, lease term/deferral expiries, app
     * timers). Throws sim::CheckpointError if the blob is malformed,
     * was taken on an incompatible device, or carries state only live
     * handoff can preserve (in-flight CPU work, parked wake waiters, a
     * mid-acquisition GPS fix, non-checkpointable apps).
     */
    void restoreCheckpoint(const std::vector<std::uint8_t> &blob);

    /**
     * Re-install this device's thread-local telemetry (flight recorder,
     * checked-build oracle) on the calling thread. The constructor binds
     * the constructing thread; the sharded runner calls this when a
     * device migrates to another worker for its next time slice.
     * unbindFromThread() must run on the old thread first.
     */
    void bindToThread();
    void unbindFromThread();

  private:
    void saveCheckpoint(sim::CheckpointWriter &w) const;
    void restoreCheckpoint(sim::CheckpointReader &r);
    DeviceConfig config_;
    sim::Simulator sim_;
    sim::RandomSource rng_;

    std::unique_ptr<power::EnergyAccountant> accountant_;
    std::unique_ptr<power::CpuModel> cpu_;
    std::unique_ptr<power::ScreenModel> screen_;
    std::unique_ptr<power::GpsModel> gps_;
    std::unique_ptr<power::RadioModel> radio_;
    std::unique_ptr<power::SensorModel> sensors_;
    std::unique_ptr<power::AudioModel> audio_;
    std::unique_ptr<power::BluetoothModel> bluetooth_;
    std::unique_ptr<power::Battery> battery_;
    std::unique_ptr<power::PowerProfiler> profiler_;
    std::unique_ptr<os::SystemServer> server_;
    std::unique_ptr<env::NetworkEnvironment> network_;
    std::unique_ptr<env::GpsEnvironment> gpsEnv_;
    std::unique_ptr<env::MotionModel> motion_;
    std::unique_ptr<env::UserModel> user_;
    std::unique_ptr<app::AppContext> context_;

    std::unique_ptr<lease::LeaseOsRuntime> leaseos_;
    std::unique_ptr<mitigation::DozeController> doze_;
    std::unique_ptr<mitigation::DefDroidController> defdroid_;
    std::unique_ptr<mitigation::OneShotThrottler> throttler_;

    std::vector<std::unique_ptr<app::App>> apps_;
    Uid nextUid_ = kFirstAppUid;
    bool started_ = false;

    /** Set when config.flightRecordDir is non-empty (any build). */
    std::unique_ptr<obs::FlightRecorder> recorder_;
    /** Only set in checked builds (LEASEOS_CHECKED). */
    std::unique_ptr<analysis::InvariantOracle> oracle_;
    sim::PeriodicHandle auditTick_;
};

} // namespace leaseos::harness

#endif // LEASEOS_HARNESS_DEVICE_H
