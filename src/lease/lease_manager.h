#ifndef LEASEOS_LEASE_LEASE_MANAGER_H
#define LEASEOS_LEASE_LEASE_MANAGER_H

/**
 * @file
 * The lease manager (§4.3): creates, checks, renews, defers, and removes
 * leases for all resources granted to all apps, and makes the utilitarian
 * lease decisions at each term boundary.
 *
 * Decision loop per lease term (Fig. 5):
 *   term ends, resource not held        → INACTIVE
 *   term ends, held, Normal/EUB stats   → renew immediately (adaptive term)
 *   term ends, held, FAB/LHB/LUB stats  → DEFERRED for τ (resource
 *                                          temporarily revoked), then renew
 *   kernel object freed                 → DEAD (reaped)
 */

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "common/ids.h"
#include "common/utility_counter.h"
#include "lease/behavior_classifier.h"
#include "obs/metric_registry.h"
#include "lease/lease.h"
#include "lease/lease_policy.h"
#include "lease/lease_proxy.h"
#include "lease/lease_table.h"
#include "os/binder.h"
#include "power/cpu_model.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace leaseos::lease {

/**
 * System-wide lease management service (Table 3 API).
 */
class LeaseManagerService
{
  public:
    // Lease operation costs; the micro-benchmark of Table 4 measures
    // these. Creation/check are about one binder hop; the per-term update
    // includes utility-metric calculation and is costlier, but runs on the
    // system side without pausing app execution.
    static constexpr sim::Time kCreateLatency = sim::Time::fromMicros(357);
    static constexpr sim::Time kCheckAcceptLatency =
        sim::Time::fromMicros(498);
    static constexpr sim::Time kCheckRejectLatency =
        sim::Time::fromMicros(388);
    static constexpr sim::Time kUpdateLatency = sim::Time::fromMicros(4790);

    LeaseManagerService(sim::Simulator &sim, power::CpuModel &cpu,
                        LeasePolicy policy = {});
    LeaseManagerService(const LeaseManagerService &) = delete;
    LeaseManagerService &operator=(const LeaseManagerService &) = delete;

    // ---- Table 3 interface ------------------------------------------------

    /** Register @p proxy for its resource type. */
    bool registerProxy(LeaseProxy *proxy);
    bool unregisterProxy(LeaseProxy *proxy);

    /** Create a lease for a kernel object; returns its descriptor. */
    LeaseId create(ResourceType rtype, os::TokenId token, Uid uid);

    /** Whether the lease is currently active. */
    bool check(LeaseId id);

    /** Renew an inactive/expired lease (approval path, §3.2). */
    bool renew(LeaseId id);

    /** Remove a lease whose kernel object died. */
    bool remove(LeaseId id);

    /** Proxy event notes (resource acquired / released). */
    void noteAcquire(LeaseId id);
    void noteRelease(LeaseId id);

    /** App-facing: register a custom utility counter (Fig. 6). */
    void setUtility(Uid uid, ResourceType rtype, IUtilityCounter *counter);

    // ---- Queries ---------------------------------------------------------

    const Lease *lease(LeaseId id) const { return table_.find(id); }
    LeaseId leaseIdForToken(os::TokenId token);
    const LeaseTable &table() const { return table_; }
    LeaseTable &table() { return table_; }
    const LeasePolicy &policy() const { return policy_; }

    std::size_t activeLeases() const
    {
        return table_.countInState(LeaseState::Active);
    }
    std::size_t deferredLeases() const
    {
        return table_.countInState(LeaseState::Deferred);
    }
    std::uint64_t totalCreated() const { return table_.totalCreated(); }
    std::uint64_t totalDeferrals() const { return totalDeferrals_; }
    std::uint64_t totalRenewals() const { return totalRenewals_; }
    std::uint64_t termChecks() const { return termChecks_; }
    /**
     * Wall seconds of deferral realized across all leases (settled when
     * each lease leaves DEFERRED; per-lease figures die with the reap).
     */
    double totalDeferralSeconds() const { return totalDeferralSeconds_; }

    /** Lifespans (seconds) of leases that have died, for Fig. 11 stats. */
    const sim::Accumulator &lifespanStats() const { return lifespans_; }
    /** Term counts of leases that have died. */
    const sim::Accumulator &termCountStats() const { return termCounts_; }

    /** Behaviour classifications observed, by type (diagnostics). */
    std::uint64_t behaviorCount(BehaviorType b) const;

    /** Most recent classification for a lease (Normal if no history). */
    BehaviorType lastBehavior(LeaseId id) const;

    /** Invoked after every term classification (benches subscribe). */
    void
    setTermObserver(
        std::function<void(const Lease &, const TermRecord &)> fn)
    {
        termObserver_ = std::move(fn);
    }

    /**
     * Serialize the lease table, reputations, and counters as a
     * "leases" section (DESIGN.md §11).
     */
    void saveState(sim::CheckpointWriter &w) const;

    /**
     * Restore onto a freshly built service (same policy, same proxies
     * registered). Every ACTIVE lease's term-expiry and every DEFERRED
     * lease's deferral-end event is re-armed from its recomputable
     * deadline: termStart + termLength, and deferredAt +
     * policy().deferralFor(consecutiveMisbehaved) respectively —
     * exactly the instants the original events sat at.
     */
    void restoreState(sim::CheckpointReader &r);

  private:
    LeaseProxy *proxyFor(ResourceType rtype) const;
    IUtilityCounter *utilityFor(Uid uid, ResourceType rtype) const;

    /** Start a fresh term on an active lease and arm its expiry check. */
    void startTerm(Lease &lease, sim::Time length);
    void onTermEnd(LeaseId id);
    void onDeferralEnd(LeaseId id);

    /** Lease accounting costs system CPU (Fig. 13's overhead). */
    void chargeAccounting(sim::Time latency);

    void recordDeath(Lease &lease);

    /** Credit realized deferral wall time as a lease leaves DEFERRED. */
    void settleDeferral(Lease &lease);

    /** Intern this service's metrics in the run's registry (DESIGN §9). */
    void initMetrics();
    /** Count + trace one state transition (the six Fig. 5 sites). */
    void noteTransition(const Lease &lease, LeaseState to);

    /** §8 extension: misbehaviour reputation outliving the lease. */
    struct Reputation {
        int consecutiveMisbehaved = 0;
        sim::Time diedAt;
    };

    sim::Simulator &sim_;
    power::CpuModel &cpu_;
    LeasePolicy policy_;
    BehaviorClassifier classifier_;
    LeaseTable table_;
    std::map<std::pair<Uid, ResourceType>, Reputation> reputations_;
    std::map<ResourceType, LeaseProxy *> proxies_;
    std::map<std::pair<Uid, ResourceType>, IUtilityCounter *> utilities_;
    std::function<void(const Lease &, const TermRecord &)> termObserver_;

    std::uint64_t totalDeferrals_ = 0;
    std::uint64_t totalRenewals_ = 0;
    std::uint64_t termChecks_ = 0;
    double totalDeferralSeconds_ = 0.0;

    /** Telemetry (nullptr unless a registry was installed for the run). */
    obs::MetricRegistry *metrics_ = nullptr;
    struct Metrics {
        obs::MetricId created = obs::kInvalidMetricId;
        obs::MetricId renewals = obs::kInvalidMetricId;
        obs::MetricId deferrals = obs::kInvalidMetricId;
        obs::MetricId termChecks = obs::kInvalidMetricId;
        obs::MetricId toActive = obs::kInvalidMetricId;
        obs::MetricId toInactive = obs::kInvalidMetricId;
        obs::MetricId toDeferred = obs::kInvalidMetricId;
        obs::MetricId toDead = obs::kInvalidMetricId;
        obs::MetricId grant = obs::kInvalidMetricId;
        obs::MetricId deny = obs::kInvalidMetricId;
        obs::MetricId defer = obs::kInvalidMetricId;
        obs::MetricId utilityCharges = obs::kInvalidMetricId;
        obs::MetricId utilityScore = obs::kInvalidMetricId; // histogram
        obs::MetricId termSeconds = obs::kInvalidMetricId;  // histogram
        obs::MetricId deferralSeconds = obs::kInvalidMetricId; // histogram
        obs::MetricId behavior[5] = {
            obs::kInvalidMetricId, obs::kInvalidMetricId,
            obs::kInvalidMetricId, obs::kInvalidMetricId,
            obs::kInvalidMetricId};
    } m_;
    std::map<BehaviorType, std::uint64_t> behaviorCounts_;
    sim::Accumulator lifespans_;
    sim::Accumulator termCounts_;
};

} // namespace leaseos::lease

#endif // LEASEOS_LEASE_LEASE_MANAGER_H
