#ifndef LEASEOS_MITIGATION_THROTTLE_H
#define LEASEOS_MITIGATION_THROTTLE_H

/**
 * @file
 * Pure one-shot, time-based throttling — "essentially leases with only a
 * single term" (§7.4). After a fixed holding time every resource of a
 * background app is revoked permanently. This is the strawman the
 * usability experiment runs RunKeeper/Spotify/Haven against: it cannot
 * tell fitness tracking from a leaked wakelock, so it breaks both.
 */

#include <cstdint>
#include <map>

#include "os/resource_listener.h"
#include "os/system_server.h"
#include "sim/simulator.h"

namespace leaseos::mitigation {

/**
 * Single-term time-based throttler.
 */
class OneShotThrottler
{
  public:
    OneShotThrottler(sim::Simulator &sim, os::SystemServer &server,
                     sim::Time holdLimit = sim::Time::fromMinutes(5.0));

    void start();

    std::uint64_t revocations() const { return revocations_; }

  private:
    enum class Kind { Power, Gps, Sensor, Wifi };

    class Watcher : public os::ResourceListener
    {
      public:
        Watcher(OneShotThrottler &owner, Kind kind)
            : owner_(owner), kind_(kind) {}

        void
        onAcquired(os::TokenId token, Uid uid) override
        {
            owner_.noteAcquired(token, uid, kind_);
        }
        void
        onReleased(os::TokenId token, Uid uid) override
        {
            (void)uid;
            owner_.noteReleased(token);
        }
        void
        onDestroyed(os::TokenId token, Uid uid) override
        {
            (void)uid;
            owner_.noteReleased(token);
        }

      private:
        OneShotThrottler &owner_;
        Kind kind_;
    };

    void noteAcquired(os::TokenId token, Uid uid, Kind kind);
    void noteReleased(os::TokenId token);
    void revoke(os::TokenId token, Kind kind);

    sim::Simulator &sim_;
    os::SystemServer &server_;
    sim::Time holdLimit_;
    bool started_ = false;

    Watcher powerWatcher_{*this, Kind::Power};
    Watcher gpsWatcher_{*this, Kind::Gps};
    Watcher sensorWatcher_{*this, Kind::Sensor};
    Watcher wifiWatcher_{*this, Kind::Wifi};

    std::map<os::TokenId, Kind> tracked_;
    std::uint64_t revocations_ = 0;
};

} // namespace leaseos::mitigation

#endif // LEASEOS_MITIGATION_THROTTLE_H
