/**
 * @file
 * Reproduces Table 5 — the paper's headline result: for each of the 20
 * real-world buggy apps, the app-level power on vanilla Android and under
 * LeaseOS, aggressive Doze (Doze*), and DefDroid, with the reduction
 * percentages, over 30-minute Pixel XL runs sampled at 100 ms.
 *
 * Expected shape (not absolute numbers): LeaseOS reduces wasted power by
 * ~92 % on average and beats Doze* (~69 %) and DefDroid (~62 %); Doze is
 * nearly useless on the screen-wakelock rows (it never touches the
 * screen); DefDroid is weakest on the GPS rows.
 */

#include <iostream>

#include "apps/registry.h"
#include "harness/experiment.h"
#include "harness/figure.h"
#include "harness/table.h"

using namespace leaseos;
using harness::MitigationMode;
using harness::TextTable;

int
main()
{
    std::cout << harness::figureHeader(
        "Table 5",
        "Real-world apps with FAB/LHB/LUB misbehaviour: power (mW) w/o "
        "lease vs LeaseOS / Doze* / DefDroid, and reduction percentages. "
        "30-minute runs, Pixel XL, 100 ms power sampling. Doze* is "
        "force-triggered as in the paper.");

    harness::MitigationRunOptions opt; // 30 min, Pixel XL, user glances

    TextTable table({"App", "Cat.", "Res.", "Behav.", "w/o lease",
                     "LeaseOS", "Doze*", "DefDroid", "Lease%", "Doze%",
                     "DefDroid%"});

    double sum_lease = 0.0;
    double sum_doze = 0.0;
    double sum_defdroid = 0.0;
    int rows = 0;

    for (const auto &spec : apps::table5Specs()) {
        auto vanilla =
            harness::runMitigationCell(spec, MitigationMode::None, opt);
        auto leased =
            harness::runMitigationCell(spec, MitigationMode::LeaseOS, opt);
        auto dozed = harness::runMitigationCell(
            spec, MitigationMode::DozeAggressive, opt);
        auto defdroid = harness::runMitigationCell(
            spec, MitigationMode::DefDroid, opt);

        double r_lease = harness::reductionPercent(vanilla.appPowerMw,
                                                   leased.appPowerMw);
        double r_doze = harness::reductionPercent(vanilla.appPowerMw,
                                                  dozed.appPowerMw);
        double r_defdroid = harness::reductionPercent(
            vanilla.appPowerMw, defdroid.appPowerMw);
        sum_lease += r_lease;
        sum_doze += r_doze;
        sum_defdroid += r_defdroid;
        ++rows;

        table.addRow({spec.display, spec.category, spec.resource,
                      spec.behavior, TextTable::fmt(vanilla.appPowerMw),
                      TextTable::fmt(leased.appPowerMw),
                      TextTable::fmt(dozed.appPowerMw),
                      TextTable::fmt(defdroid.appPowerMw),
                      TextTable::pct(r_lease), TextTable::pct(r_doze),
                      TextTable::pct(r_defdroid)});
        std::cerr << "[table5] " << spec.display << " done\n";
    }

    table.addSeparator();
    table.addRow({"Average", "", "", "", "", "", "", "",
                  TextTable::pct(sum_lease / rows),
                  TextTable::pct(sum_doze / rows),
                  TextTable::pct(sum_defdroid / rows)});
    std::cout << table.toString();
    std::cout << "\nPaper averages: LeaseOS 92.62%, Doze* 69.64%, "
                 "DefDroid 62.04%.\n";
    return 0;
}
