/**
 * @file
 * Reproduces Figure 14: average end-to-end latency of interaction flows
 * (button click → resource operation → UI update) for three
 * representative apps whose flow crosses a leased resource, with and
 * without the lease service.
 *
 * Paper shape: sensor app ~57.1 vs 57.6 ms; wakelock app ~2207 vs
 * 2215 ms; GPS app ~2785 vs 2788 ms — lease overhead is invisible
 * because lease operations run off the app's critical path.
 */

#include <iostream>

#include "apps/synthetic/synthetic_apps.h"
#include "harness/device.h"
#include "harness/figure.h"
#include "harness/table.h"

using namespace leaseos;
using sim::operator""_s;
using sim::operator""_min;

namespace {

double
measureFlavor(apps::InteractionFlowApp::Flavor flavor, bool leased,
              int flows = 20)
{
    harness::DeviceConfig cfg;
    cfg.mode = leased ? harness::MitigationMode::LeaseOS
                      : harness::MitigationMode::None;
    harness::Device device(cfg);
    // The user is interacting: screen on, so flows run at full speed.
    device.server().displayManager().userSetScreen(true);
    auto &app = device.install<apps::InteractionFlowApp>(flavor);
    device.start();
    device.runFor(30_s); // let GPS warm up for the hot-fix flow

    for (int i = 0; i < flows; ++i) {
        app.runFlow(nullptr);
        device.runFor(10_s);
    }
    return app.latencies().mean();
}

} // namespace

int
main()
{
    std::cout << harness::figureHeader(
        "Figure 14",
        "Average end-to-end interaction latency (ms) for three "
        "representative apps, with vs without leases (20 flows each). "
        "Paper: differences are sub-millisecond to a few ms.");

    harness::TextTable table({"App", "w/o lease (ms)", "with lease (ms)",
                              "delta (ms)"});
    const struct {
        apps::InteractionFlowApp::Flavor flavor;
        const char *label;
    } flavors[] = {
        {apps::InteractionFlowApp::Flavor::Sensor, "Sensor app"},
        {apps::InteractionFlowApp::Flavor::Wakelock, "Wakelock app"},
        {apps::InteractionFlowApp::Flavor::Gps, "GPS app"},
    };

    for (const auto &f : flavors) {
        double vanilla = measureFlavor(f.flavor, false);
        double leased = measureFlavor(f.flavor, true);
        table.addRow({f.label, harness::TextTable::fmt(vanilla, 1),
                      harness::TextTable::fmt(leased, 1),
                      harness::TextTable::fmt(leased - vanilla, 2)});
    }
    std::cout << table.toString();
    std::cout << "\nLease operations (create/renew checks) happen on the "
                 "system server, not inside the interaction flow.\n";
    return 0;
}
