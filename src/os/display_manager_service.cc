#include "os/display_manager_service.h"

#include <utility>

namespace leaseos::os {

DisplayManagerService::DisplayManagerService(sim::Simulator &sim,
                                             power::CpuModel &cpu,
                                             power::ScreenModel &screen)
    : Service(sim, cpu, "display"), screen_(screen), lastAdvance_(sim.now())
{
}

void
DisplayManagerService::advance()
{
    sim::Time now = sim_.now();
    if (now <= lastAdvance_) {
        lastAdvance_ = now;
        return;
    }
    double dt = (now - lastAdvance_).seconds();
    if (screen_.isOn() && !userOn_ && !forcedOwners_.empty())
        forcedOnSeconds_ += dt;
    lastAdvance_ = now;
}

void
DisplayManagerService::apply()
{
    bool on = userOn_ || !forcedOwners_.empty();
    // Forced-only screen time is attributed to the forcing apps;
    // user-initiated screen time goes to the system bucket.
    std::vector<Uid> owners;
    if (!userOn_ && !forcedOwners_.empty()) owners = forcedOwners_;
    screen_.setOn(on, owners);
    cpu_.setScreenOn(on);
    if (on != lastOn_) {
        lastOn_ = on;
        for (const auto &fn : stateListeners_) fn(on);
    }
}

void
DisplayManagerService::userSetScreen(bool on)
{
    advance();
    userOn_ = on;
    apply();
}

void
DisplayManagerService::setForcedOwners(std::vector<Uid> owners)
{
    advance();
    forcedOwners_ = std::move(owners);
    apply();
}

double
DisplayManagerService::forcedOnSeconds()
{
    advance();
    return forcedOnSeconds_;
}

void
DisplayManagerService::addStateListener(std::function<void(bool)> fn)
{
    stateListeners_.push_back(std::move(fn));
}

} // namespace leaseos::os
