#ifndef LEASEOS_LEASE_RESOURCE_TYPE_H
#define LEASEOS_LEASE_RESOURCE_TYPE_H

/**
 * @file
 * The resource classes LeaseOS manages (Table 1).
 */

namespace leaseos::lease {

/**
 * Leased resource kinds. CPU is reached through partial wakelocks and the
 * screen through full wakelocks; GPS and sensors are subscription-style
 * (the OS invokes an app listener); Wi-Fi through high-performance locks.
 */
enum class ResourceType {
    Wakelock, ///< partial wakelock → CPU
    Screen,   ///< full wakelock → screen + CPU
    Gps,
    Sensor,
    Wifi,
    Audio,
    Bluetooth
};

inline const char *
resourceTypeName(ResourceType t)
{
    switch (t) {
      case ResourceType::Wakelock: return "wakelock";
      case ResourceType::Screen: return "screen";
      case ResourceType::Gps: return "gps";
      case ResourceType::Sensor: return "sensor";
      case ResourceType::Wifi: return "wifi";
      case ResourceType::Audio: return "audio";
      case ResourceType::Bluetooth: return "bluetooth";
    }
    return "unknown";
}

} // namespace leaseos::lease

#endif // LEASEOS_LEASE_RESOURCE_TYPE_H
