/**
 * @file
 * leaselint — protocol lint for the LeaseOS reproduction.
 *
 * Usage:
 *   leaselint [--root DIR] [--rule NAME]... [--sarif OUT] [--list-rules]
 *             [PATH...]
 *
 * PATHs are root-relative files or directories (default: src bench
 * examples tools tests). Exits 1 when any unsuppressed finding remains,
 * so CI can gate on it. Suppress a finding in place with
 * `// leaselint: allow(<rule>) -- justification`. `--sarif OUT` also
 * writes the findings as a SARIF 2.1.0 document for GitHub code-scanning
 * upload.
 */

#include <cstring>
#include <iostream>
#include <string>

#include "leaselint/driver.h"
#include "leaselint/rules.h"
#include "leaselint/sarif.h"

int
main(int argc, char **argv)
{
    leaselint::LintOptions options;
    std::string sarifPath;
    bool defaultPaths = true;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            options.root = argv[++i];
        } else if (arg == "--rule" && i + 1 < argc) {
            options.rules.push_back(argv[++i]);
        } else if (arg == "--sarif" && i + 1 < argc) {
            sarifPath = argv[++i];
        } else if (arg == "--list-rules") {
            for (const auto &rule : leaselint::makeAllRules())
                std::cout << rule->name() << ": " << rule->description()
                          << "\n";
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: leaselint [--root DIR] [--rule NAME]... "
                         "[--sarif OUT] [--list-rules] [PATH...]\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "leaselint: unknown option " << arg << "\n";
            return 2;
        } else {
            if (defaultPaths) {
                options.paths.clear();
                defaultPaths = false;
            }
            options.paths.push_back(arg);
        }
    }

    leaselint::LintReport report = leaselint::runLint(options);
    for (const auto &finding : report.findings)
        std::cout << leaselint::formatFinding(finding) << "\n";
    if (!sarifPath.empty() && !leaselint::writeSarif(report, sarifPath)) {
        std::cerr << "leaselint: cannot write " << sarifPath << "\n";
        return 2;
    }
    std::cerr << "leaselint: " << report.filesScanned << " files, "
              << report.findings.size() << " finding(s), "
              << report.suppressed << " suppressed\n";
    return report.findings.empty() ? 0 : 1;
}
