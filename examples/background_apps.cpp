/**
 * @file
 * Usability example (§7.4): legitimate heavy background apps under
 * LeaseOS versus naive time-based throttling.
 *
 * RunKeeper records a workout (GPS + sensors + wakelock) while Spotify
 * streams music. LeaseOS keeps renewing their leases because the
 * resources produce real utility; a single-term throttler kills both
 * after its hold limit — breaking exactly the apps the user cares about.
 */

#include <iostream>

#include "apps/normal/runkeeper.h"
#include "apps/normal/spotify.h"
#include "harness/device.h"

using namespace leaseos;
using sim::operator""_min;

namespace {

void
runWorld(harness::MitigationMode mode, const char *label)
{
    harness::DeviceConfig config;
    config.mode = mode;
    config.throttleHoldLimit = 5_min;
    harness::Device device(config);

    // The user is out on a run, phone in an armband.
    device.gpsEnv().setVelocity(2.8, 0.3);
    device.motion().setStationary(false);

    auto &runkeeper = device.install<apps::RunKeeper>();
    auto &spotify = device.install<apps::Spotify>();
    device.start();
    device.runFor(30_min);

    std::cout << label << ":\n";
    std::cout << "  RunKeeper: " << runkeeper.samplesWritten() << "/"
              << runkeeper.expectedSamples() << " track samples "
              << (runkeeper.samplesWritten() >=
                          runkeeper.expectedSamples() * 9 / 10
                      ? "(tracking intact)"
                      : "(TRACKING BROKEN)")
              << "\n";
    std::cout << "  Spotify:   " << spotify.playedSeconds() / 60.0
              << " min of music "
              << (spotify.stalled() ? "(PLAYBACK STOPPED)"
                                    : "(playing fine)")
              << "\n\n";
}

} // namespace

int
main()
{
    std::cout << "Legitimate background apps: 30-minute workout with "
                 "music\n\n";
    runWorld(harness::MitigationMode::LeaseOS, "LeaseOS");
    runWorld(harness::MitigationMode::OneShotThrottle,
             "Time-based throttling (5 min limit)");
    std::cout << "Utilitarian leases reward apps that use resources "
                 "efficiently; blind throttling cannot tell them from "
                 "leaks.\n";
    return 0;
}
