#ifndef LEASEOS_APPS_BUGGY_OPENGPS_TRACKER_H
#define LEASEOS_APPS_BUGGY_OPENGPS_TRACKER_H

/**
 * @file
 * OpenGPSTracker model (Table 5 row; issue #239). Tracking left running
 * with an aggressive filtering pipeline: heavy CPU + 1 Hz GPS on a parked
 * device → the most power-hungry GPS Low-Utility row (360 mW).
 */

#include "apps/buggy/continuous_gps_app.h"

namespace leaseos::apps {

class OpenGpsTracker : public ContinuousGpsApp
{
  public:
    OpenGpsTracker(app::AppContext &ctx, Uid uid)
        : ContinuousGpsApp(ctx, uid, "OpenGPSTracker",
                           Params{sim::Time::fromSeconds(1.0), true,
                                  sim::Time::fromMillis(700), 1.2, true}) {}
};

} // namespace leaseos::apps

#endif // LEASEOS_APPS_BUGGY_OPENGPS_TRACKER_H
