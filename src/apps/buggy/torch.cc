#include "apps/buggy/torch.h"

// Torch is header-only; this TU anchors the module in the build.
namespace leaseos::apps {
} // namespace leaseos::apps
