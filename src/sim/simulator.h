#ifndef LEASEOS_SIM_SIMULATOR_H
#define LEASEOS_SIM_SIMULATOR_H

/**
 * @file
 * The discrete-event simulator driving a simulated device.
 *
 * Every simulated subsystem (power model, OS services, apps, environments,
 * the lease manager) schedules work through one Simulator instance. Virtual
 * time only advances when the event at the head of the queue fires, so a
 * 30-minute experiment completes in milliseconds of wall time while
 * preserving exact timing relationships.
 *
 * Thread-safety: a Simulator (and everything scheduled on it) belongs to
 * exactly one thread. Concurrency is achieved by running *independent*
 * Simulator/Device instances on different threads (see harness/runner.h),
 * never by sharing one instance.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace leaseos::sim {

class Simulator;

namespace detail {
/** Shared bookkeeping between a repeating event and its handle. */
struct PeriodicState {
    Simulator *sim = nullptr;
    EventId current = kInvalidEventId;
    bool stopped = false;
};
} // namespace detail

/**
 * RAII handle to a repeating event scheduled with schedulePeriodic().
 *
 * Destroying (or cancel()ing) the handle stops the repetition, including
 * the occurrence currently pending in the queue — unlike the EventId
 * returned by the legacy bool-callback overload, which only names one
 * occurrence. Default-constructed handles are inert.
 */
class PeriodicHandle
{
  public:
    PeriodicHandle() = default;
    explicit PeriodicHandle(std::shared_ptr<detail::PeriodicState> state)
        : state_(std::move(state)) {}
    ~PeriodicHandle() { cancel(); }

    PeriodicHandle(const PeriodicHandle &) = delete;
    PeriodicHandle &operator=(const PeriodicHandle &) = delete;
    PeriodicHandle(PeriodicHandle &&other) noexcept = default;
    PeriodicHandle &
    operator=(PeriodicHandle &&other) noexcept
    {
        if (this != &other) {
            cancel();
            state_ = std::move(other.state_);
        }
        return *this;
    }

    /** Stop the repetition. Safe to call repeatedly or on an inert handle. */
    void cancel();

    /** @return true while the repetition is still scheduled. */
    bool active() const;

  private:
    std::shared_ptr<detail::PeriodicState> state_;
};

/**
 * Discrete-event simulation engine.
 */
class Simulator
{
  public:
    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current virtual time. */
    Time now() const { return now_; }

    /** Schedule @p cb to run @p delay after the current time. */
    EventId
    schedule(Time delay, EventQueue::Callback cb)
    {
        return queue_.schedule(now_ + delay, std::move(cb));
    }

    /** Schedule @p cb at an absolute virtual timestamp. */
    EventId
    scheduleAt(Time when, EventQueue::Callback cb)
    {
        return queue_.schedule(when < now_ ? now_ : when, std::move(cb));
    }

    /**
     * Schedule a repeating callback with fixed period. The callback
     * returns false to stop the repetition (cooperative shutdown is the
     * *only* stop channel of this overload).
     *
     * Deliberately returns nothing: the EventId this overload used to
     * return named only the first occurrence, so cancelling it after the
     * first fire silently failed. Callers that need to stop a repetition
     * from outside use the void-callback overload below, whose
     * PeriodicHandle cancels the whole repetition at any point.
     */
    void schedulePeriodic(Time period, std::function<bool()> cb);

    /**
     * Schedule a repeating callback owned by the returned RAII handle:
     * the repetition stops when the handle is cancelled or destroyed.
     * Selected for callables returning void (no cooperative-stop channel
     * needed — the handle is the stop channel).
     */
    template <typename F,
              std::enable_if_t<
                  std::is_void_v<std::invoke_result_t<F &>>, int> = 0>
    [[nodiscard]] PeriodicHandle
    schedulePeriodic(Time period, F cb)
    {
        return schedulePeriodicScoped(period,
                                      std::function<void()>(std::move(cb)));
    }

    /** Non-template form of the RAII overload. */
    [[nodiscard]] PeriodicHandle
    schedulePeriodicScoped(Time period, std::function<void()> cb);

    /** Cancel a pending event. @retval true if it was still pending. */
    bool cancel(EventId id) { return queue_.cancel(id); }

    /** @return true if @p id has not yet fired or been cancelled. */
    bool pending(EventId id) const { return queue_.pending(id); }

    /**
     * Run until the event queue drains or virtual time reaches @p until.
     * Events at exactly @p until still fire.
     * @return the virtual time at which the run stopped.
     */
    Time run(Time until = Time::max());

    /** Run for a span of virtual time from now. */
    Time runFor(Time span) { return run(now_ + span); }

    /** Pending live events (diagnostics). */
    std::size_t pendingEvents() const { return queue_.size(); }

    /** Total events executed so far. */
    std::uint64_t executedEvents() const { return executed_; }

    /**
     * Serialize the clock and event counters as a "sim" section
     * (DESIGN.md §11). Pending events are deliberately not captured —
     * see EventQueue::saveState.
     */
    void saveState(CheckpointWriter &w) const;

    /**
     * Restore the clock onto a fresh simulator (empty queue required).
     * After this, now() reports the checkpoint time and newly scheduled
     * events run at their absolute deadlines.
     */
    void restoreState(CheckpointReader &r);

  private:
    EventQueue queue_;
    Time now_;
    std::uint64_t executed_ = 0;
};

} // namespace leaseos::sim

#endif // LEASEOS_SIM_SIMULATOR_H
