#ifndef LEASEOS_HARNESS_EXPERIMENT_H
#define LEASEOS_HARNESS_EXPERIMENT_H

/**
 * @file
 * Legacy Table-5 cell runner, kept as a thin shim over the generic
 * scenario-run API in harness/runner.h.
 *
 * New code should build RunSpecs (and sweep them with ParallelRunner)
 * directly; this header remains so older benches and tests keep their
 * one-call entry point: run one buggy app for 30 minutes under a
 * mitigation mode on a Pixel XL, sampling power every 100 ms, with a
 * background "lightly attended device" script (occasional glances /
 * pocket movement) that gives Doze its realistic interruptions.
 */

#include "harness/runner.h"
#include "sim/time.h"

namespace leaseos::apps {
struct BuggyAppSpec;
} // namespace leaseos::apps

namespace leaseos::harness {

/** Outcome of one mitigation run (the generic scenario result). */
using MitigationRunResult = RunResult;

/** Options for a Table 5 cell run. */
struct MitigationRunOptions {
    sim::Time duration = sim::Time::fromMinutes(30.0);
    power::DeviceProfile profile = power::profiles::pixelXl();
    /**
     * Periodic user glances (screen + motion blips). On = the realistic
     * "phone on the desk but alive" condition that interrupts Doze.
     */
    bool userGlances = true;
    sim::Time glanceInterval = sim::Time::fromMinutes(10.0);
    sim::Time glanceLength = sim::Time::fromSeconds(20.0);
    std::uint64_t seed = 0x1ea5e05;
};

/**
 * Install the glance script on a device (screen on briefly + motion blip
 * every glanceInterval). Inert handle when opt.userGlances is off; the
 * script stops when the returned handle is cancelled or destroyed.
 */
[[nodiscard]] sim::PeriodicHandle
installGlanceScript(Device &device, const MitigationRunOptions &opt);

/**
 * Build the RunSpec for one buggy-app × mitigation-mode Table 5 cell
 * (what runMitigationCell executes; benches feed these to a
 * ParallelRunner instead).
 */
RunSpec mitigationCellSpec(const apps::BuggyAppSpec &spec,
                           MitigationMode mode,
                           const MitigationRunOptions &opt = {});

/** Run one buggy-app × mitigation-mode cell (shim over runScenario). */
MitigationRunResult runMitigationCell(const apps::BuggyAppSpec &spec,
                                      MitigationMode mode,
                                      const MitigationRunOptions &opt = {});

/** Reduction percentage of @p mitigated relative to @p baseline. */
double reductionPercent(double baselineMw, double mitigatedMw);

} // namespace leaseos::harness

#endif // LEASEOS_HARNESS_EXPERIMENT_H
