#ifndef LEASEOS_ENV_MOTION_MODEL_H
#define LEASEOS_ENV_MOTION_MODEL_H

/**
 * @file
 * Device motion environment.
 *
 * Two consumers: SensorManagerService pulls synthetic readings here, and
 * Doze's idle detector needs "no angle change in 4 minutes" (§7.3) — i.e.
 * a stationary device — plus significant-motion exits.
 */

#include <cmath>
#include <functional>
#include <vector>

#include "power/sensor_model.h"
#include "sim/simulator.h"

namespace leaseos::env {

/**
 * Stationary/moving state with synthetic sensor readings.
 */
class MotionModel
{
  public:
    explicit MotionModel(sim::Simulator &sim) : sim_(sim)
    {
        lastMotion_ = sim.now();
    }

    /** Flip device motion; entering motion notifies listeners. */
    void
    setStationary(bool stationary)
    {
        if (stationary == stationary_) return;
        stationary_ = stationary;
        if (!stationary_) {
            lastMotion_ = sim_.now();
            for (const auto &fn : motionListeners_) fn();
        }
    }

    bool stationary() const { return stationary_; }

    /** Time since the device last moved. */
    sim::Time
    stillFor() const
    {
        return stationary_ ? sim_.now() - lastMotion_ : sim::Time::zero();
    }

    /** Significant-motion callbacks (Doze exit trigger). */
    void
    addMotionListener(std::function<void()> fn)
    {
        motionListeners_.push_back(std::move(fn));
    }

    /**
     * Synthetic sensor reading: stationary devices report a constant,
     * moving devices a time-varying value (so orientation-change handlers
     * in apps see activity).
     */
    double
    reading(power::SensorType type, sim::Time t) const
    {
        if (stationary_) {
            // Micro-movements below the significant-motion threshold: a
            // pocketed phone still shuffles orientation occasionally.
            if (type == power::SensorType::Orientation) {
                return static_cast<double>(
                    static_cast<int>(t.seconds() / 120.0) % 4) * 90.0;
            }
            return 0.0;
        }
        double phase = t.seconds();
        switch (type) {
          case power::SensorType::Accelerometer:
            return 2.0 * std::sin(phase);
          case power::SensorType::Orientation:
            // Quantised heading that flips every ~20 s of movement.
            return static_cast<double>(
                static_cast<int>(phase / 20.0) % 4) * 90.0;
          case power::SensorType::Gyroscope:
            return 0.5 * std::cos(phase);
          case power::SensorType::Light:
            return 120.0;
        }
        return 0.0;
    }

  private:
    sim::Simulator &sim_;
    bool stationary_ = true;
    sim::Time lastMotion_;
    std::vector<std::function<void()>> motionListeners_;
};

} // namespace leaseos::env

#endif // LEASEOS_ENV_MOTION_MODEL_H
