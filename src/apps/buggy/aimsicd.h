#ifndef LEASEOS_APPS_BUGGY_AIMSICD_H
#define LEASEOS_APPS_BUGGY_AIMSICD_H

/**
 * @file
 * AIMSICD model (Table 5 row; issue #87 "battery consumption way too
 * high"). The IMSI-catcher detector runs its cell-tracking pipeline with
 * GPS pinned on and a status overlay alive; the work is real but, with
 * the device sitting on a desk, produces nothing of value → Low-Utility.
 */

#include "apps/buggy/continuous_gps_app.h"

namespace leaseos::apps {

class Aimsicd : public ContinuousGpsApp
{
  public:
    Aimsicd(app::AppContext &ctx, Uid uid)
        : ContinuousGpsApp(ctx, uid, "AIMSICD",
                           Params{sim::Time::fromSeconds(3.0), true,
                                  sim::Time::fromMillis(40), 0.6, true}) {}
};

} // namespace leaseos::apps

#endif // LEASEOS_APPS_BUGGY_AIMSICD_H
