#ifndef LEASEOS_LEASE_LEASE_H
#define LEASEOS_LEASE_LEASE_H

/**
 * @file
 * The lease object: a timed capability over one kernel resource (§3).
 *
 * A lease is created when an app first touches a kernel object, lives for
 * a sequence of terms t1..tn, and dies with the object. State transitions
 * (Fig. 5): ACTIVE --(term end, held, misbehaving)--> DEFERRED --(τ)-->
 * ACTIVE; ACTIVE --(term end, not held)--> INACTIVE --(re-acquire)-->
 * ACTIVE; any --(object freed)--> DEAD.
 */

#include <cstdint>
#include <deque>

#include "common/ids.h"
#include "lease/behavior.h"
#include "lease/lease_stat.h"
#include "lease/resource_type.h"
#include "os/binder.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace leaseos::lease {

/** Lease descriptor handed to proxies (Table 3's long lease ids). */
using LeaseId = std::uint64_t;

constexpr LeaseId kInvalidLeaseId = 0;

/** Lease lifecycle states (Fig. 5). */
enum class LeaseState { Active, Inactive, Deferred, Dead };

inline const char *
leaseStateName(LeaseState s)
{
    switch (s) {
      case LeaseState::Active: return "ACTIVE";
      case LeaseState::Inactive: return "INACTIVE";
      case LeaseState::Deferred: return "DEFERRED";
      case LeaseState::Dead: return "DEAD";
    }
    return "?";
}

/** One completed term's record kept in the bounded history (§4.3). */
struct TermRecord {
    LeaseStat stat;
    BehaviorType behavior = BehaviorType::Normal;
};

/**
 * Lease bookkeeping; owned by the LeaseTable, mutated by the manager.
 */
struct Lease {
    LeaseId id = kInvalidLeaseId;
    Uid uid = kInvalidUid;
    ResourceType rtype = ResourceType::Wakelock;
    os::TokenId token = os::kInvalidToken;

    LeaseState state = LeaseState::Active;
    sim::Time createdAt;
    sim::Time termStart;
    sim::Time termLength;
    int termIndex = 0;

    int consecutiveNormal = 0;
    int consecutiveMisbehaved = 0;

    std::uint64_t renewals = 0;
    std::uint64_t deferrals = 0;
    /** When the current deferral began (valid while state == Deferred). */
    sim::Time deferredAt;
    /**
     * Wall seconds actually spent deferred, credited when the lease
     * *leaves* DEFERRED (resume or death) — never pre-credited with the
     * scheduled τ, which over-counts leases killed mid-deferral.
     */
    double totalDeferralSeconds = 0.0;

    /** Bounded per-term history, newest at the back. */
    std::deque<TermRecord> history;

    /** Pending term-expiry / deferral-end event. */
    sim::EventId pendingEvent = sim::kInvalidEventId;

    bool isActive() const { return state == LeaseState::Active; }
    bool isDead() const { return state == LeaseState::Dead; }

    BehaviorType
    lastBehavior() const
    {
        return history.empty() ? BehaviorType::Normal
                               : history.back().behavior;
    }

    void
    recordTerm(TermRecord record, std::size_t depth)
    {
        history.push_back(std::move(record));
        while (history.size() > depth) history.pop_front();
    }
};

} // namespace leaseos::lease

#endif // LEASEOS_LEASE_LEASE_H
