/**
 * @file
 * cross-unit-pairing: DroidLeaks-style acquire-without-release detection
 * over the app corpus (src/apps/) and the examples, traced through
 * helper calls across translation units.
 *
 * Supersedes the PR-2 file-local `pairing` rule. For each app unit (the
 * .h/.cc pair sharing a path stem) the rule tallies acquire-side and
 * release-side calls per resource-API pair over the unit's own functions
 * PLUS every function reachable from them through the call graph — so a
 * unit that releases via a shared RAII helper in another translation
 * unit is no longer a false positive, and a unit whose "cleanup" helper
 * forgot the release is no longer a false negative.
 *
 * Two findings:
 *  - acquire with no reachable release: a leak unless the hold is
 *    intentional (`// leaselint: allow(cross-unit-pairing)` at the
 *    acquire site documents it; the finding carries a SARIF fix-it that
 *    inserts that annotation);
 *  - release with no acquire anywhere in the unit's reach: a
 *    double-release / releasing a resource owned elsewhere. Shared
 *    helper units (whose releasing functions are called from other
 *    units) are exempt — the caller's unit owns the balance.
 */

#include "leaselint/rules.h"

#include <map>

namespace leaselint {

namespace {

struct SiteRef {
    std::uint32_t fileIdx;
    std::size_t line;
    std::size_t indent;
};

struct PairTally {
    std::size_t acquires = 0;
    std::size_t releases = 0;
    bool haveFirstAcquire = false;
    SiteRef firstAcquire{};
    bool haveAllowedAcquire = false;
    SiteRef allowedAcquire{};
    /** Release sites in the unit's OWN files (not just reachable). */
    std::vector<FuncId> ownReleaseFuncs;
    bool haveFirstRelease = false;
    SiteRef firstRelease{};
};

bool
inPairingScope(const std::string &path)
{
    return underDir(path, "src/apps") || underDir(path, "examples");
}

} // namespace

void
linkCrossUnitPairing(const RepoIndex &repo, const CallGraph &graph,
                     std::vector<Finding> &out)
{
    // Units in scope, in first-file order for deterministic output.
    std::vector<std::string> unitOrder;
    std::map<std::string, std::vector<std::uint32_t>> unitFiles;
    for (std::uint32_t fi = 0; fi < repo.files.size(); ++fi) {
        const FileIndex &file = repo.files[fi];
        if (!inPairingScope(file.path)) continue;
        std::string unit = unitStem(file.path);
        if (unitFiles.find(unit) == unitFiles.end())
            unitOrder.push_back(unit);
        unitFiles[unit].push_back(fi);
    }

    for (const std::string &unit : unitOrder) {
        const std::vector<std::uint32_t> &files = unitFiles[unit];

        std::vector<FuncId> roots;
        for (std::uint32_t fi : files)
            for (std::uint32_t f = 0; f < repo.files[fi].funcs.size(); ++f)
                roots.push_back(graph.funcId(fi, f));

        std::vector<char> reach(graph.funcCount(), 0);
        for (FuncId id : graph.reachableFrom(roots)) reach[id] = 1;

        std::vector<char> own(graph.funcCount(), 0);
        for (FuncId id : roots) own[id] = 1;

        // Tally resource sites attributed to this unit: sites inside a
        // reachable function, plus file-scope sites in the unit's files.
        std::map<std::size_t, PairTally> tallies;
        for (std::uint32_t fi = 0; fi < repo.files.size(); ++fi) {
            const FileIndex &file = repo.files[fi];
            bool ownFile = inPairingScope(file.path) &&
                           unitStem(file.path) == unit;
            for (const ResourceSite &site : file.resources) {
                bool counted;
                FuncId id = kInvalidFunc;
                if (site.func == kNoFunc) {
                    counted = ownFile;
                } else {
                    id = graph.funcId(fi, site.func);
                    counted = reach[id] != 0;
                }
                if (!counted) continue;
                PairTally &tally = tallies[site.pair];
                if (site.release) {
                    ++tally.releases;
                    if (!tally.haveFirstRelease && ownFile) {
                        tally.haveFirstRelease = true;
                        tally.firstRelease = {fi, site.line, site.indent};
                    }
                    if (ownFile && id != kInvalidFunc)
                        tally.ownReleaseFuncs.push_back(id);
                } else {
                    ++tally.acquires;
                    if (!tally.haveFirstAcquire) {
                        tally.haveFirstAcquire = true;
                        tally.firstAcquire = {fi, site.line, site.indent};
                    }
                    // Prefer an annotated acquire site so a suppression
                    // on any acquire in the unit silences the finding.
                    if (!tally.haveAllowedAcquire &&
                        file.allowed("cross-unit-pairing", site.line)) {
                        tally.haveAllowedAcquire = true;
                        tally.allowedAcquire = {fi, site.line,
                                                site.indent};
                    }
                }
            }
        }

        for (const auto &[pi, tally] : tallies) {
            const ApiPair &pair = apiPairs()[pi];
            if (tally.acquires > 0 && tally.releases == 0) {
                const SiteRef &at = tally.haveAllowedAcquire
                                        ? tally.allowedAcquire
                                        : tally.firstAcquire;
                Finding finding{
                    "cross-unit-pairing", repo.files[at.fileIdx].path,
                    at.line,
                    unit + " calls " + pair.acquire + "() " +
                        std::to_string(tally.acquires) +
                        " time(s) but never " + pair.release +
                        "() — searched the unit and every function "
                        "reachable from it across translation units; "
                        "resource leak unless the hold is intentional "
                        "(annotate the leak if it models a documented "
                        "bug)"};
                finding.fix = FixIt{
                    "document the intentional hold with a suppression",
                    at.line,
                    std::string(at.indent, ' ') +
                        "// leaselint: allow(cross-unit-pairing) -- "
                        "TODO: justify this intentional hold\n"};
                out.push_back(std::move(finding));
                continue;
            }
            if (tally.releases > 0 && tally.acquires == 0 &&
                tally.haveFirstRelease) {
                // Shared-helper exemption: if any of the unit's releasing
                // functions is called from outside the unit, the caller
                // owns the acquire/release balance.
                bool sharedHelper = false;
                for (FuncId id : tally.ownReleaseFuncs)
                    for (FuncId caller : graph.callers(id))
                        if (!own[caller]) sharedHelper = true;
                if (sharedHelper) continue;
                const SiteRef &at = tally.firstRelease;
                out.push_back(
                    {"cross-unit-pairing", repo.files[at.fileIdx].path,
                     at.line,
                     unit + " calls " + pair.release + "() " +
                         std::to_string(tally.releases) +
                         " time(s) but never " + pair.acquire +
                         "() — double release, or releasing a resource "
                         "owned by another unit"});
            }
        }
    }
}

} // namespace leaselint
