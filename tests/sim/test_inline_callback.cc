/**
 * @file
 * Unit tests for sim::InlineCallback — the SBO callable the event queue
 * stores in its slot pool (DESIGN.md §8).
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <utility>

#include "sim/event_queue.h"
#include "sim/inline_callback.h"
#include "sim/time.h"

namespace leaseos::sim {
namespace {

struct Counters {
    int constructed = 0;
    int moved = 0;
    int destroyed = 0;
    int calls = 0;
};

/** Instrumented callable padded to @p Pad bytes beyond the pointer. */
template <std::size_t Pad>
struct Probe {
    Counters *c;
    unsigned char pad[Pad] = {};

    explicit Probe(Counters *counters) : c(counters) { ++c->constructed; }
    Probe(const Probe &other) : c(other.c) { ++c->constructed; }
    Probe(Probe &&other) noexcept : c(other.c) { ++c->moved; }
    ~Probe() { ++c->destroyed; }
    void operator()() { ++c->calls; }
};

using SmallProbe = Probe<8>;
using LargeProbe = Probe<InlineCallback::kInlineSize>;

static_assert(InlineCallback::storedInline<SmallProbe>,
              "small probe must fit the inline buffer");
static_assert(!InlineCallback::storedInline<LargeProbe>,
              "large probe must spill to the heap");

TEST(InlineCallbackTest, EmptyByDefault)
{
    InlineCallback cb;
    EXPECT_FALSE(cb);
    InlineCallback fromNull(nullptr);
    EXPECT_FALSE(fromNull);
}

TEST(InlineCallbackTest, InvokesInlineCallable)
{
    Counters c;
    {
        InlineCallback cb(SmallProbe{&c});
        ASSERT_TRUE(cb);
        cb();
        cb();
    }
    EXPECT_EQ(c.calls, 2);
    // Every construction (direct or move) is balanced by a destruction.
    EXPECT_EQ(c.constructed + c.moved, c.destroyed);
}

TEST(InlineCallbackTest, InvokesHeapCallable)
{
    Counters c;
    {
        InlineCallback cb(LargeProbe{&c});
        ASSERT_TRUE(cb);
        cb();
    }
    EXPECT_EQ(c.calls, 1);
    EXPECT_EQ(c.constructed + c.moved, c.destroyed);
}

TEST(InlineCallbackTest, MoveTransfersInlineCallable)
{
    Counters c;
    InlineCallback a(SmallProbe{&c});
    InlineCallback b(std::move(a));
    EXPECT_FALSE(a); // NOLINT(bugprone-use-after-move): post-move empty
    ASSERT_TRUE(b);
    b();
    EXPECT_EQ(c.calls, 1);

    InlineCallback d;
    d = std::move(b);
    EXPECT_FALSE(b); // NOLINT(bugprone-use-after-move)
    ASSERT_TRUE(d);
    d();
    EXPECT_EQ(c.calls, 2);
}

TEST(InlineCallbackTest, MoveTransfersHeapCallable)
{
    Counters c;
    InlineCallback a(LargeProbe{&c});
    int movesBefore = c.moved;
    InlineCallback b(std::move(a));
    // Heap-stored callables move by pointer swap, not element move.
    EXPECT_EQ(c.moved, movesBefore);
    EXPECT_FALSE(a); // NOLINT(bugprone-use-after-move)
    ASSERT_TRUE(b);
    b();
    EXPECT_EQ(c.calls, 1);
    b = nullptr;
    EXPECT_EQ(c.constructed + c.moved, c.destroyed);
}

TEST(InlineCallbackTest, MoveOnlyCapture)
{
    auto value = std::make_unique<int>(41);
    int seen = 0;
    InlineCallback cb([v = std::move(value), &seen] { seen = *v + 1; });
    cb();
    EXPECT_EQ(seen, 42);
}

TEST(InlineCallbackTest, NullAssignmentDestroysTarget)
{
    Counters c;
    InlineCallback cb(SmallProbe{&c});
    int destroyedBefore = c.destroyed;
    cb = nullptr;
    EXPECT_FALSE(cb);
    EXPECT_GT(c.destroyed, destroyedBefore);
    EXPECT_EQ(c.constructed + c.moved, c.destroyed);
}

TEST(InlineCallbackTest, OverwriteDestroysOldTarget)
{
    Counters cOld;
    Counters cNew;
    InlineCallback cb(SmallProbe{&cOld});
    cb = InlineCallback(SmallProbe{&cNew});
    EXPECT_EQ(cOld.constructed + cOld.moved, cOld.destroyed);
    cb();
    EXPECT_EQ(cNew.calls, 1);
    EXPECT_EQ(cOld.calls, 0);
}

TEST(InlineCallbackTest, SelfMoveAssignIsSafe)
{
    Counters c;
    InlineCallback cb(SmallProbe{&c});
    InlineCallback &alias = cb;
    cb = std::move(alias);
    ASSERT_TRUE(cb);
    cb();
    EXPECT_EQ(c.calls, 1);
}

// ---- Interaction with the event queue -----------------------------------

TEST(InlineCallbackQueueTest, ScheduleFromRunningCallback)
{
    EventQueue q;
    int fired = 0;
    q.schedule(Time::fromSeconds(1.0), [&] {
        ++fired;
        // Re-entrant schedule while this callback runs: the queue must
        // tolerate slot-pool growth mid-invocation.
        q.schedule(Time::fromSeconds(2.0), [&] { ++fired; });
    });
    while (!q.empty()) q.pop().second();
    EXPECT_EQ(fired, 2);
}

TEST(InlineCallbackQueueTest, CallbackDestroyedAfterPop)
{
    Counters c;
    EventQueue q;
    q.schedule(Time::fromSeconds(1.0), SmallProbe{&c});
    {
        auto [when, cb] = q.pop();
        EXPECT_EQ(when, Time::fromSeconds(1.0));
        cb();
    }
    EXPECT_EQ(c.calls, 1);
    EXPECT_EQ(c.constructed + c.moved, c.destroyed);
}

TEST(InlineCallbackQueueTest, CancelDestroysCallback)
{
    Counters c;
    EventQueue q;
    EventId id = q.schedule(Time::fromSeconds(1.0), SmallProbe{&c});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_EQ(c.constructed + c.moved, c.destroyed);
    EXPECT_EQ(c.calls, 0);
}

} // namespace
} // namespace leaseos::sim
