#include "env/gps_environment.h"

// GpsEnvironment is header-only; this TU anchors the module in the build.
namespace leaseos::env {
} // namespace leaseos::env
