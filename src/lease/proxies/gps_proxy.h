#ifndef LEASEOS_LEASE_PROXIES_GPS_PROXY_H
#define LEASEOS_LEASE_PROXIES_GPS_PROXY_H

/**
 * @file
 * Lease proxy for GPS location requests.
 *
 * GPS is the one resource where asking can fail for long stretches, so
 * this proxy also records request/failed-request time for the FAB metric
 * (the BetterWeather pattern of Fig. 1). Usage follows §3.3's
 * listener-bound-Activity metric; the distance moved feeds the generic
 * utility.
 */

#include <map>

#include "lease/lease_proxy.h"
#include "os/activity_manager_service.h"
#include "os/location_manager_service.h"

namespace leaseos::lease {

/**
 * GPS request lease proxy.
 */
class GpsLeaseProxy : public LeaseProxy
{
  public:
    GpsLeaseProxy(os::LocationManagerService &lms,
                  os::ActivityManagerService &am);

    void onExpire(const Lease &lease) override;
    void onRenew(const Lease &lease) override;
    bool resourceHeld(const Lease &lease) override;
    void beginTerm(const Lease &lease) override;
    LeaseStat collectStat(const Lease &lease) override;

  private:
    struct Snapshot {
        double requestSeconds = 0.0;
        double noFixSeconds = 0.0;
        double activitySeconds = 0.0;
        double distanceMeters = 0.0;
        std::uint64_t uiUpdates = 0;
        std::uint64_t interactions = 0;
        std::uint64_t requests = 0;
    };

    Snapshot snapshot(const Lease &lease);

    os::LocationManagerService &lms_;
    os::ActivityManagerService &am_;
    std::map<LeaseId, Snapshot> snapshots_;
};

} // namespace leaseos::lease

#endif // LEASEOS_LEASE_PROXIES_GPS_PROXY_H
