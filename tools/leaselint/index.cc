#include "leaselint/index.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "leaselint/rules.h"

namespace leaselint {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool
isSpace(char c)
{
    return std::isspace(static_cast<unsigned char>(c)) != 0;
}

std::size_t
skipWs(const std::string &text, std::size_t at)
{
    while (at < text.size() && isSpace(text[at])) ++at;
    return at;
}

/** Offset just past the ')' matching text[open] == '('. */
std::size_t
matchParen(const std::string &text, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < text.size(); ++i) {
        if (text[i] == '(') ++depth;
        else if (text[i] == ')' && --depth == 0) return i + 1;
    }
    return text.size();
}

/** Offset just past the '}' matching text[open] == '{'. */
std::size_t
matchBrace(const std::string &text, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < text.size(); ++i) {
        if (text[i] == '{') ++depth;
        else if (text[i] == '}' && --depth == 0) return i + 1;
    }
    return text.size();
}

/** Keywords that look like calls ("if (") but are not. */
bool
isControlKeyword(const std::string &name)
{
    static const char *kw[] = {"if",       "for",          "while",
                               "switch",   "catch",        "return",
                               "sizeof",   "alignof",      "decltype",
                               "typeid",   "static_assert", "throw",
                               "new",      "delete",       "alignas",
                               "co_await", "co_return",    "co_yield"};
    for (const char *k : kw)
        if (name == k) return true;
    return false;
}

const char *const kRegMethods[] = {"counter", "gauge", "histogram",
                                   "boundCounter", "boundGauge"};

/**
 * Blank every preprocessor line (first non-ws char '#', plus backslash
 * continuations) so #define bodies and #include paths never register as
 * functions, calls, or scopes.
 */
std::string
stripPreprocessor(const SourceFile &file)
{
    std::string out = file.codeText();
    std::size_t lineStart = 0;
    bool continued = false;
    for (std::size_t i = 0; i <= out.size(); ++i) {
        if (i == out.size() || out[i] == '\n') {
            std::size_t first = lineStart;
            while (first < i && (out[first] == ' ' || out[first] == '\t'))
                ++first;
            bool pp = continued || (first < i && out[first] == '#');
            std::size_t last = i;
            while (last > lineStart && isSpace(out[last - 1])) --last;
            continued = pp && last > lineStart && out[last - 1] == '\\';
            if (pp)
                for (std::size_t j = lineStart; j < i; ++j) out[j] = ' ';
            lineStart = i + 1;
        }
    }
    return out;
}

// ---- structural extractor -----------------------------------------------

class Extractor
{
  public:
    Extractor(const SourceFile &file, FileIndex &out)
        : file_(file), out_(out), text_(stripPreprocessor(file))
    {
    }

    void
    run()
    {
        std::size_t i = 0;
        while (i < text_.size()) {
            char c = text_[i];
            if (isSpace(c)) {
                ++i;
                continue;
            }
            if (identStart(c) || c == '~') {
                i = handleToken(i);
                continue;
            }
            if (c == '{') {
                openScope(i);
                stmt_.clear();
                prev_ = '{';
                ++i;
                continue;
            }
            if (c == '}') {
                closeScope(i);
                stmt_.clear();
                prev_ = '}';
                ++i;
                continue;
            }
            if (c == ';') stmt_.clear();
            prev_ = c;
            ++i;
        }
        // Unterminated scopes (truncated file): close functions at EOF.
        while (!scopes_.empty()) closeScope(text_.size() - 1);
    }

  private:
    struct Scope {
        enum Kind { Namespace, Class, Func, Block } kind;
        std::string name;
        std::uint32_t func = kNoFunc;
    };

    /** Qualified identifier (with :: chains and ~) starting at @p at. */
    std::string
    readQualified(std::size_t &at)
    {
        std::string name;
        while (at < text_.size()) {
            if (text_[at] == '~') {
                name += '~';
                ++at;
            }
            std::size_t start = at;
            while (at < text_.size() && identChar(text_[at])) ++at;
            name += text_.substr(start, at - start);
            if (at + 1 < text_.size() && text_[at] == ':' &&
                text_[at + 1] == ':' && at + 2 < text_.size() &&
                (identStart(text_[at + 2]) || text_[at + 2] == '~')) {
                name += "::";
                at += 2;
            } else {
                break;
            }
        }
        return name;
    }

    static std::string
    lastComponent(const std::string &qualified)
    {
        std::size_t at = qualified.rfind("::");
        return at == std::string::npos ? qualified
                                       : qualified.substr(at + 2);
    }

    std::uint32_t
    enclosingFunc() const
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it)
            if (it->kind == Scope::Func) return it->func;
        return kNoFunc;
    }

    /** Scope-qualify @p name with the enclosing class/namespace names. */
    std::string
    qualify(const std::string &name) const
    {
        std::string full;
        for (const Scope &s : scopes_) {
            if ((s.kind == Scope::Class || s.kind == Scope::Namespace) &&
                !s.name.empty()) {
                full += s.name;
                full += "::";
            }
        }
        return full + name;
    }

    /** True when the char before offset @p at (skipping ws) is . or ->. */
    bool
    isMethodCall(std::size_t at) const
    {
        while (at > 0 && isSpace(text_[at - 1])) --at;
        if (at == 0) return false;
        if (text_[at - 1] == '.') {
            // Exclude "0.5(" style (not valid code anyway) and "...".
            return at < 2 ||
                   !std::isdigit(static_cast<unsigned char>(text_[at - 2]));
        }
        return at >= 2 && text_[at - 2] == '-' && text_[at - 1] == '>';
    }

    void
    recordCall(const std::string &callee, std::size_t nameOff,
               std::uint32_t func)
    {
        std::size_t line = file_.lineOfOffset(nameOff);
        bool method = isMethodCall(nameOff);
        out_.calls.push_back({func, callee, line, method});

        const auto &pairs = apiPairs();
        for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
            bool release = callee == pairs[pi].release;
            if (callee != pairs[pi].acquire && !release) continue;
            std::size_t indent = 0;
            const std::string &raw = file_.rawLine(line);
            while (indent < raw.size() &&
                   (raw[indent] == ' ' || raw[indent] == '\t'))
                ++indent;
            out_.resources.push_back(
                {func, static_cast<std::uint16_t>(pi), release, line,
                 indent});
        }
        if (method) {
            for (const char *reg : kRegMethods) {
                if (callee == reg) {
                    out_.regs.push_back({func, callee, line});
                    break;
                }
            }
        }
    }

    /** Record calls in [from, to) attributed to @p func (init lists). */
    void
    scanCallsIn(std::size_t from, std::size_t to, std::uint32_t func)
    {
        std::size_t i = from;
        while (i < to) {
            if (!identStart(text_[i]) && text_[i] != '~') {
                ++i;
                continue;
            }
            std::size_t nameOff = i;
            std::string name = readQualified(i);
            std::size_t j = skipWs(text_, i);
            if (j < to && text_[j] == '(' &&
                !isControlKeyword(lastComponent(name))) {
                recordCall(lastComponent(name), nameOff, func);
                i = j + 1;
            }
        }
    }

    /**
     * After a parameter list ending at @p afterParams, decide whether a
     * function body follows. Handles cv/ref qualifiers, noexcept(...),
     * trailing return types, and constructor initializer lists (whose
     * extent is reported via @p initFrom / @p initTo for call
     * attribution).
     */
    bool
    parseHeaderTail(std::size_t afterParams, std::size_t &bodyOpen,
                    std::size_t &initFrom, std::size_t &initTo)
    {
        std::size_t j = skipWs(text_, afterParams);
        initFrom = initTo = 0;
        while (j < text_.size()) {
            char c = text_[j];
            if (c == '{') {
                bodyOpen = j;
                return true;
            }
            if (c == ';' || c == ',' || c == ')' || c == '=') return false;
            if (c == '&') {
                j = skipWs(text_, j + 1);
                continue;
            }
            if (c == '-' && j + 1 < text_.size() && text_[j + 1] == '>') {
                // Trailing return type: scan to the body/terminator.
                j += 2;
                while (j < text_.size() && text_[j] != '{' &&
                       text_[j] != ';')
                    j = text_[j] == '(' ? matchParen(text_, j) : j + 1;
                continue;
            }
            if (c == ':') {
                // Constructor initializer list; skip "name(args)" /
                // "name{args}" items up to the body brace.
                initFrom = j + 1;
                j = skipWs(text_, j + 1);
                while (j < text_.size()) {
                    if (!identStart(text_[j])) break;
                    readQualified(j);
                    if (j < text_.size() && text_[j] == '<')
                        j = skipAngles(j);
                    j = skipWs(text_, j);
                    if (j < text_.size() && text_[j] == '(')
                        j = matchParen(text_, j);
                    else if (j < text_.size() && text_[j] == '{')
                        j = matchBrace(text_, j);
                    j = skipWs(text_, j);
                    if (j < text_.size() && text_[j] == ',')
                        j = skipWs(text_, j + 1);
                    else
                        break;
                }
                initTo = j;
                continue;
            }
            if (identStart(c)) {
                std::size_t w = j;
                std::string word = readQualified(w);
                if (word == "const" || word == "noexcept" ||
                    word == "override" || word == "final" ||
                    word == "mutable" || word == "try" ||
                    word == "requires") {
                    j = w;
                    if (j < text_.size() && text_[j] == '(')
                        j = matchParen(text_, j);
                    j = skipWs(text_, j);
                    continue;
                }
                return false;
            }
            return false;
        }
        return false;
    }

    /** Skip a balanced <...> starting at text_[at] == '<'. */
    std::size_t
    skipAngles(std::size_t at)
    {
        int depth = 0;
        for (std::size_t i = at; i < text_.size(); ++i) {
            if (text_[i] == '<') ++depth;
            else if (text_[i] == '>' && --depth == 0) return i + 1;
            else if (text_[i] == ';' || text_[i] == '{') return i;
        }
        return text_.size();
    }

    /** Handle an identifier at @p at; returns the resume offset. */
    std::size_t
    handleToken(std::size_t at)
    {
        std::size_t nameOff = at;
        std::size_t i = at;
        std::string name = readQualified(i);
        if (name == "template" || name == "operator") {
            // Skip template parameter lists; fold operator tokens into a
            // name so "operator==(...)" is seen as one unit.
            if (name == "template") {
                std::size_t j = skipWs(text_, i);
                if (j < text_.size() && text_[j] == '<')
                    return skipAngles(j);
                return i;
            }
            while (i < text_.size() && !isSpace(text_[i]) &&
                   text_[i] != '(')
                name += text_[i++];
        }
        stmt_.push_back(name);
        prev_ = 'a';

        std::size_t j = skipWs(text_, i);
        if (j >= text_.size() || text_[j] != '(') return i;

        std::string last = lastComponent(name);
        if (isControlKeyword(last)) return matchParen(text_, j);

        if (enclosingFunc() != kNoFunc) {
            recordCall(last, nameOff, enclosingFunc());
            return j + 1; // descend into the argument list
        }

        // Class / namespace / file scope: a definition header, or a
        // declaration to skip.
        std::size_t afterParams = matchParen(text_, j);
        std::size_t bodyOpen = 0, initFrom = 0, initTo = 0;
        if (!parseHeaderTail(afterParams, bodyOpen, initFrom, initTo))
            return afterParams;

        FuncDef def;
        def.name = qualify(name);
        def.startLine = file_.lineOfOffset(nameOff);
        out_.funcs.push_back(std::move(def));
        pendingFunc_ = static_cast<std::uint32_t>(out_.funcs.size() - 1);
        if (initTo > initFrom)
            scanCallsIn(initFrom, initTo, pendingFunc_);
        return bodyOpen; // the '{' is consumed by the main loop next
    }

    void
    openScope(std::size_t at)
    {
        (void)at;
        Scope s;
        if (pendingFunc_ != kNoFunc) {
            s.kind = Scope::Func;
            s.func = pendingFunc_;
            pendingFunc_ = kNoFunc;
            scopes_.push_back(std::move(s));
            return;
        }
        // Brace-init / lambda / compound statements are plain blocks.
        if (prev_ == '=' || prev_ == ',' || prev_ == '(' || prev_ == '{' ||
            prev_ == '[') {
            s.kind = Scope::Block;
            scopes_.push_back(std::move(s));
            return;
        }
        bool sawEnum = false;
        for (std::size_t t = 0; t < stmt_.size(); ++t) {
            const std::string &tok = stmt_[t];
            if (tok == "enum") sawEnum = true;
            if (tok == "namespace") {
                s.kind = Scope::Namespace;
                if (t + 1 < stmt_.size()) s.name = stmt_[t + 1];
                scopes_.push_back(std::move(s));
                return;
            }
            if (!sawEnum &&
                (tok == "class" || tok == "struct" || tok == "union")) {
                s.kind = Scope::Class;
                if (t + 1 < stmt_.size()) s.name = stmt_[t + 1];
                scopes_.push_back(std::move(s));
                return;
            }
        }
        s.kind = Scope::Block;
        scopes_.push_back(std::move(s));
    }

    void
    closeScope(std::size_t at)
    {
        if (scopes_.empty()) return;
        Scope s = scopes_.back();
        scopes_.pop_back();
        if (s.kind == Scope::Func && s.func != kNoFunc)
            out_.funcs[s.func].endLine = file_.lineOfOffset(at);
    }

    const SourceFile &file_;
    FileIndex &out_;
    std::string text_;
    std::vector<Scope> scopes_;
    std::vector<std::string> stmt_; ///< tokens since last ; { }
    char prev_ = ';';               ///< last significant char
    std::uint32_t pendingFunc_ = kNoFunc;
};

// ---- enum / switch harvest (for the switch-exhaustive link rule) --------

std::size_t
skipWsPub(const std::string &text, std::size_t at)
{
    return skipWs(text, at);
}

std::string
readIdent(const std::string &text, std::size_t &at)
{
    std::size_t start = at;
    while (at < text.size() && identChar(text[at])) ++at;
    return text.substr(start, at - start);
}

void
harvestEnums(const SourceFile &file, FileIndex &out)
{
    const std::string &text = file.codeText();
    std::size_t at = 0;
    while ((at = findToken(text, "enum", at)) != std::string::npos) {
        std::size_t cur = skipWsPub(text, at + 4);
        at += 4;
        std::size_t kw = cur;
        std::string cls = readIdent(text, kw);
        if (cls != "class" && cls != "struct") continue;
        cur = skipWsPub(text, kw);
        std::string enumName = readIdent(text, cur);
        if (enumName.empty()) continue;
        cur = skipWsPub(text, cur);
        if (cur < text.size() && text[cur] == ':') {
            while (cur < text.size() && text[cur] != '{' && text[cur] != ';')
                ++cur;
        }
        if (cur >= text.size() || text[cur] != '{') continue;
        std::size_t bodyEnd = matchBrace(text, cur) - 1;

        EnumDef def;
        def.name = enumName;
        std::size_t p = cur + 1;
        while (p < bodyEnd) {
            p = skipWsPub(text, p);
            if (p >= bodyEnd) break;
            std::string value = readIdent(text, p);
            if (!value.empty()) def.values.push_back(value);
            int depth = 0;
            while (p < bodyEnd) {
                char c = text[p];
                if (c == '(' || c == '{') ++depth;
                else if (c == ')' || c == '}') --depth;
                else if (c == ',' && depth == 0) {
                    ++p;
                    break;
                }
                ++p;
            }
        }
        out.enums.push_back(std::move(def));
    }
}

void
harvestSwitches(const SourceFile &file, FileIndex &out)
{
    const std::string &text = file.codeText();
    std::size_t at = 0;
    while ((at = findToken(text, "switch", at)) != std::string::npos) {
        std::size_t kwAt = at;
        at += 6;
        std::size_t open = skipWsPub(text, kwAt + 6);
        if (open >= text.size() || text[open] != '(') continue;
        std::size_t afterCond = matchParen(text, open);
        std::size_t bodyOpen = skipWsPub(text, afterCond);
        if (bodyOpen >= text.size() || text[bodyOpen] != '{') continue;
        std::size_t bodyEnd = matchBrace(text, bodyOpen) - 1;

        // Collect case labels, grouped by the qualifying enum name.
        std::vector<SwitchSite> sites;
        bool hasDefault = false;
        std::size_t p = bodyOpen + 1;
        while (p < bodyEnd) {
            std::size_t caseAt = findToken(text, "case", p);
            std::size_t defAt = findToken(text, "default", p);
            if (defAt != std::string::npos && defAt < bodyEnd)
                hasDefault = true;
            if (caseAt == std::string::npos || caseAt >= bodyEnd) break;
            std::size_t cur = skipWsPub(text, caseAt + 4);
            std::vector<std::string> parts;
            while (cur < bodyEnd) {
                std::string part = readIdent(text, cur);
                if (part.empty()) break;
                parts.push_back(part);
                if (cur + 1 < bodyEnd && text[cur] == ':' &&
                    text[cur + 1] == ':')
                    cur += 2;
                else
                    break;
            }
            if (parts.size() >= 2) {
                const std::string &enumName = parts[parts.size() - 2];
                auto it = std::find_if(sites.begin(), sites.end(),
                                       [&](const SwitchSite &s) {
                                           return s.enumName == enumName;
                                       });
                if (it == sites.end()) {
                    sites.push_back({file.lineOfOffset(kwAt), false,
                                     enumName, {}});
                    it = sites.end() - 1;
                }
                it->values.push_back(parts.back());
            }
            p = caseAt + 4;
        }
        for (SwitchSite &s : sites) {
            s.hasDefault = hasDefault;
            out.switches.push_back(std::move(s));
        }
    }
}

// ---- cache serialization ------------------------------------------------

std::string
escapeField(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '\t': out += "\\t"; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

std::string
unescapeField(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 >= s.size()) {
            out += s[i];
            continue;
        }
        ++i;
        out += s[i] == 't' ? '\t' : s[i] == 'n' ? '\n' : s[i];
    }
    return out;
}

std::vector<std::string>
splitTabs(const std::string &line)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
        std::size_t tab = line.find('\t', start);
        if (tab == std::string::npos) {
            fields.push_back(line.substr(start));
            return fields;
        }
        fields.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
}

} // namespace

const std::vector<ApiPair> &
apiPairs()
{
    static const std::vector<ApiPair> pairs = {
        {"acquire", "release"},                      // wakelock + wifi lock
        {"requestLocationUpdates", "removeUpdates"}, // GPS subscription
        {"registerListener", "unregisterListener"},  // sensor subscription
        {"startScan", "stopScan"},                   // bluetooth discovery
        {"startPlayback", "stopPlayback"},           // audio session
        {"openSession", "closeSession"},             // audio session object
    };
    return pairs;
}

bool
FileIndex::allowed(const std::string &rule, std::size_t line) const
{
    if (line == 0 || line > allows.size()) return false;
    const auto &rules = allows[line - 1];
    return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

std::uint64_t
hashContent(const std::string &bytes)
{
    std::uint64_t h = 14695981039346656037ull;
    for (char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

FileIndex
buildIndex(const SourceFile &file)
{
    FileIndex index;
    index.path = file.path();
    index.hash = file.contentHash();
    index.lineCount = file.lineCount();
    index.allows = file.allows();

    Extractor(file, index).run();
    harvestEnums(file, index);
    harvestSwitches(file, index);

    checkDeterminism(file, index.findings);
    checkPtrOrderedIteration(file, index.findings);
    checkMacroSideEffect(file, index.findings);
    checkProxyBypass(file, index.findings);
    checkFlatMapHotpath(file, index.findings);
    checkBadSuppression(file, index.findings);
    return index;
}

std::string
serializeIndex(const FileIndex &index)
{
    std::ostringstream os;
    char hash[32];
    std::snprintf(hash, sizeof hash, "%016llx",
                  static_cast<unsigned long long>(index.hash));
    os << "leaselint-index\t" << kIndexFormatVersion << '\t' << hash
       << '\t' << index.lineCount << '\t' << escapeField(index.path)
       << '\n';
    for (const FuncDef &f : index.funcs)
        os << "F\t" << f.startLine << '\t' << f.endLine << '\t'
           << escapeField(f.name) << '\n';
    for (const CallSite &c : index.calls)
        os << "C\t" << c.func << '\t' << c.line << '\t' << (c.method ? 1 : 0)
           << '\t' << escapeField(c.callee) << '\n';
    for (const ResourceSite &r : index.resources)
        os << "R\t" << r.func << '\t' << r.pair << '\t'
           << (r.release ? 1 : 0) << '\t' << r.line << '\t' << r.indent
           << '\n';
    for (const RegSite &g : index.regs)
        os << "G\t" << g.func << '\t' << g.line << '\t'
           << escapeField(g.methodName) << '\n';
    for (const EnumDef &e : index.enums) {
        os << "E\t" << escapeField(e.name);
        for (const std::string &v : e.values) os << '\t' << v;
        os << '\n';
    }
    for (const SwitchSite &s : index.switches) {
        os << "S\t" << s.line << '\t' << (s.hasDefault ? 1 : 0) << '\t'
           << escapeField(s.enumName);
        for (const std::string &v : s.values) os << '\t' << v;
        os << '\n';
    }
    for (std::size_t li = 0; li < index.allows.size(); ++li) {
        if (index.allows[li].empty()) continue;
        os << "A\t" << (li + 1);
        for (const std::string &rule : index.allows[li]) os << '\t' << rule;
        os << '\n';
    }
    for (const Finding &f : index.findings)
        os << "D\t" << f.line << '\t' << escapeField(f.rule) << '\t'
           << escapeField(f.message) << '\n';
    return os.str();
}

std::optional<FileIndex>
parseIndex(const std::string &text, std::uint64_t expectedHash)
{
    FileIndex index;
    std::istringstream is(text);
    std::string line;
    bool sawHeader = false;
    auto num = [](const std::string &s, std::size_t &out) {
        char *end = nullptr;
        out = std::strtoull(s.c_str(), &end, 10);
        return end != nullptr && *end == '\0' && !s.empty();
    };
    while (std::getline(is, line)) {
        std::vector<std::string> f = splitTabs(line);
        if (!sawHeader) {
            if (f.size() != 5 || f[0] != "leaselint-index" ||
                f[1] != std::to_string(kIndexFormatVersion))
                return std::nullopt;
            char hash[32];
            std::snprintf(hash, sizeof hash, "%016llx",
                          static_cast<unsigned long long>(expectedHash));
            if (f[2] != hash) return std::nullopt;
            std::size_t lines = 0;
            if (!num(f[3], lines)) return std::nullopt;
            index.hash = expectedHash;
            index.lineCount = lines;
            index.path = unescapeField(f[4]);
            index.allows.assign(lines, {});
            sawHeader = true;
            continue;
        }
        if (f.empty() || f[0].empty()) continue;
        std::size_t a = 0, b = 0, c = 0, d = 0, e = 0;
        if (f[0] == "F" && f.size() == 4 && num(f[1], a) && num(f[2], b)) {
            index.funcs.push_back({unescapeField(f[3]), a, b});
        } else if (f[0] == "C" && f.size() == 5 && num(f[1], a) &&
                   num(f[2], b) && num(f[3], c)) {
            index.calls.push_back({static_cast<std::uint32_t>(a),
                                   unescapeField(f[4]), b, c != 0});
        } else if (f[0] == "R" && f.size() == 6 && num(f[1], a) &&
                   num(f[2], b) && num(f[3], c) && num(f[4], d) &&
                   num(f[5], e)) {
            index.resources.push_back({static_cast<std::uint32_t>(a),
                                       static_cast<std::uint16_t>(b),
                                       c != 0, d, e});
        } else if (f[0] == "G" && f.size() == 4 && num(f[1], a) &&
                   num(f[2], b)) {
            index.regs.push_back({static_cast<std::uint32_t>(a),
                                  unescapeField(f[3]), b});
        } else if (f[0] == "E" && f.size() >= 2) {
            EnumDef def;
            def.name = unescapeField(f[1]);
            def.values.assign(f.begin() + 2, f.end());
            index.enums.push_back(std::move(def));
        } else if (f[0] == "S" && f.size() >= 4 && num(f[1], a) &&
                   num(f[2], b)) {
            SwitchSite s;
            s.line = a;
            s.hasDefault = b != 0;
            s.enumName = unescapeField(f[3]);
            s.values.assign(f.begin() + 4, f.end());
            index.switches.push_back(std::move(s));
        } else if (f[0] == "A" && f.size() >= 3 && num(f[1], a) && a >= 1 &&
                   a <= index.allows.size()) {
            index.allows[a - 1].assign(f.begin() + 2, f.end());
        } else if (f[0] == "D" && f.size() == 4 && num(f[1], a)) {
            Finding finding;
            finding.rule = unescapeField(f[2]);
            finding.path = index.path;
            finding.line = a;
            finding.message = unescapeField(f[3]);
            index.findings.push_back(std::move(finding));
        } else {
            return std::nullopt;
        }
    }
    if (!sawHeader) return std::nullopt;
    return index;
}

} // namespace leaselint
