#ifndef LEASEOS_HARNESS_RUNNER_H
#define LEASEOS_HARNESS_RUNNER_H

/**
 * @file
 * The parallel experiment engine: a generic scenario-run API plus a
 * thread-pool sweep runner.
 *
 * Every paper table/figure (and every sweep the paper never printed) is a
 * list of *independent* discrete-event simulations: build a Device,
 * install apps, trigger an environment, run virtual time forward, read
 * metrics. A RunSpec describes one such run declaratively; runScenario()
 * executes it; ParallelRunner executes a whole list across a fixed worker
 * pool with deterministic per-spec seeding and ordered result collection,
 * so `jobs=1` and `jobs=N` produce bit-identical results.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "harness/device.h"
#include "lease/behavior.h"
#include "obs/trace.h"
#include "sim/time.h"

namespace leaseos::app {
class App;
} // namespace leaseos::app

namespace leaseos::harness {

/**
 * Declarative description of one independent simulation run.
 *
 * A scenario is: a device configuration (mitigation mode, profile, policy,
 * seed — see DeviceConfig's fluent builders), an app set, optional
 * environment/trigger scripts, a duration, and a selection of metrics to
 * collect. The struct is plain data plus std::functions so spec lists can
 * be built up-front and shipped to worker threads.
 */
struct RunSpec {
    /** Label for tables, artifacts, and progress lines. */
    std::string name;

    /** Device construction parameters (includes the seed). */
    DeviceConfig config;

    /** Virtual time to simulate. */
    sim::Time duration = sim::Time::fromMinutes(30.0);

    /**
     * Environment/trigger scripts, run against the device before apps are
     * installed (e.g. "network down", "weak GPS signal").
     */
    std::vector<std::function<void(Device &)>> setup;

    /**
     * Apps to install, in order. The first one is the *primary* app whose
     * power is reported as RunResult::appPowerMw.
     */
    std::vector<std::function<app::App &(Device &)>> apps;

    /**
     * Hooks run after Device::start() but before time advances (e.g.
     * de-registering a custom utility counter to ablate it).
     */
    std::vector<std::function<void(Device &)>> postStart;

    /**
     * Periodic user glances (screen + motion blips) — the "lightly
     * attended device" script that gives Doze realistic interruptions.
     */
    bool userGlances = false;
    sim::Time glanceInterval = sim::Time::fromMinutes(10.0);
    sim::Time glanceLength = sim::Time::fromSeconds(20.0);

    /**
     * Metrics selection: named probes evaluated on the finished device,
     * reported (in order) in RunResult::probes. The standard power/lease
     * metrics are always collected.
     */
    std::vector<std::pair<std::string, std::function<double(Device &)>>>
        probes;

    /**
     * Telemetry (DESIGN.md §9). When collectMetrics is set, a
     * MetricRegistry is installed for the run's thread and its snapshot
     * lands in RunResult::metrics. When tracePath is non-empty, a
     * TraceBuffer ring of traceCapacity events is installed and exported
     * there after the run (".jsonl" → JSON-lines, else Chrome
     * trace_event; hooks require a -DLEASEOS_TRACING=ON build).
     */
    bool collectMetrics = false;
    std::string tracePath;
    std::size_t traceCapacity = obs::TraceBuffer::kDefaultCapacity;

    /**
     * When non-empty, an obs::FlightRecorder is installed for the run's
     * thread: if the checked-mode oracle aborts, it first dumps the trace
     * ring + metrics snapshot to `flightRecordDir/flightrec-<name>-*.json`
     * (DESIGN.md §10). Free when nothing fires — the recorder does no
     * per-event work.
     */
    std::string flightRecordDir;

    /**
     * Checkpointing (DESIGN.md §11). When checkpointEvery is non-zero,
     * the run emits a device snapshot at every multiple of that interval
     * (k·every ≤ duration, k ≥ 1); each snapshot's {time, size, digest}
     * lands in RunResult::checkpoints, and the blob itself is written to
     * checkpointDir when that is non-empty. The emission instants depend
     * only on the spec — never on shard count or job count — which is
     * what makes the digests comparable across execution slicings (the
     * CI sharded-determinism gate diffs exactly these).
     */
    sim::Time checkpointEvery;
    std::string checkpointDir;

    /**
     * Time slices for ShardedRunner: the run is cut at shard boundaries
     * (i·duration/shards) and each slice is scheduled independently, so
     * one long scenario pipelines across workers. runScenario() and
     * ParallelRunner ignore this field — a single-shot run of the same
     * spec is the equivalence baseline the sharded path is checked
     * against.
     */
    int shards = 1;

    // ---- Fluent helpers (keep spec lists declarative) -------------------

    RunSpec &
    withName(std::string n)
    {
        name = std::move(n);
        return *this;
    }
    RunSpec &
    withConfig(DeviceConfig c)
    {
        config = std::move(c);
        return *this;
    }
    RunSpec &
    withDuration(sim::Time d)
    {
        duration = d;
        return *this;
    }
    RunSpec &
    withSetup(std::function<void(Device &)> fn)
    {
        setup.push_back(std::move(fn));
        return *this;
    }
    RunSpec &
    withApp(std::function<app::App &(Device &)> fn)
    {
        apps.push_back(std::move(fn));
        return *this;
    }
    /** Install an app of type T (ctor: T(AppContext&, Uid)). */
    template <typename T>
    RunSpec &
    withApp()
    {
        return withApp(
            [](Device &d) -> app::App & { return d.install<T>(); });
    }
    RunSpec &
    withPostStart(std::function<void(Device &)> fn)
    {
        postStart.push_back(std::move(fn));
        return *this;
    }
    RunSpec &
    withGlances(sim::Time interval = sim::Time::fromMinutes(10.0),
                sim::Time length = sim::Time::fromSeconds(20.0))
    {
        userGlances = true;
        glanceInterval = interval;
        glanceLength = length;
        return *this;
    }
    RunSpec &
    withProbe(std::string probeName, std::function<double(Device &)> fn)
    {
        probes.emplace_back(std::move(probeName), std::move(fn));
        return *this;
    }
    RunSpec &
    withMetrics(bool on = true)
    {
        collectMetrics = on;
        return *this;
    }
    RunSpec &
    withTrace(std::string path,
              std::size_t capacity = obs::TraceBuffer::kDefaultCapacity)
    {
        tracePath = std::move(path);
        traceCapacity = capacity;
        return *this;
    }
    RunSpec &
    withFlightRecorder(std::string dir)
    {
        flightRecordDir = std::move(dir);
        return *this;
    }
    RunSpec &
    withCheckpoints(sim::Time every, std::string dir = {})
    {
        checkpointEvery = every;
        checkpointDir = std::move(dir);
        return *this;
    }
    RunSpec &
    withShards(int n)
    {
        shards = n;
        return *this;
    }
};

/** Outcome of one scenario run. Field-wise comparable for determinism
 *  checks. */
struct RunResult {
    std::string name;
    std::size_t specIndex = 0;
    std::uint64_t seed = 0;

    /** Average power of the primary (first-installed) app, mW. */
    double appPowerMw = 0.0;
    /** Average whole-device power, mW. */
    double systemPowerMw = 0.0;
    /** Per-app average power keyed by install order, mW. */
    std::vector<double> perAppPowerMw;

    /** Lease metrics (all zero when the mode has no lease runtime). */
    std::map<lease::BehaviorType, std::uint64_t> behaviorCounts;
    std::uint64_t deferrals = 0;
    std::uint64_t termChecks = 0;
    std::uint64_t leasesCreated = 0;

    /** Probe values, in RunSpec::probes order. */
    std::vector<std::pair<std::string, double>> probes;

    /**
     * MetricRegistry snapshot in registration order (empty unless
     * RunSpec::collectMetrics was set). Deterministic across job counts.
     */
    std::vector<std::pair<std::string, double>> metrics;

    /** Trace-ring accounting (zero unless RunSpec::tracePath was set). */
    std::uint64_t traceEventsRetained = 0;
    std::uint64_t traceEventsEmitted = 0;

    /** One emitted device snapshot (RunSpec::checkpointEvery). */
    struct CheckpointStat {
        std::int64_t timeNanos = 0;   ///< sim time of the boundary
        std::uint64_t sizeBytes = 0;  ///< framed blob size
        std::uint64_t digest = 0;     ///< FNV-1a 64 over the payload
        friend bool operator==(const CheckpointStat &,
                               const CheckpointStat &) = default;
    };

    /**
     * Snapshots emitted during the run, in time order. Equal across job
     * counts and shard counts for the same spec — the byte-level
     * determinism signal the sharded CI gate keys on.
     */
    std::vector<CheckpointStat> checkpoints;

    /** Probe value by name; throws std::out_of_range if absent. */
    double probe(const std::string &probeName) const;

    /** Registry metric by name; throws std::out_of_range if absent. */
    double metric(const std::string &metricName) const;

    friend bool operator==(const RunResult &, const RunResult &) = default;
};

/** Execute one scenario synchronously on the calling thread. */
RunResult runScenario(const RunSpec &spec);

/**
 * As above, but with @p config in place of spec.config — lets callers
 * (e.g. ParallelRunner's reseeding) vary device parameters without
 * copying the whole spec. RunResult::seed reports config.seed.
 */
RunResult runScenario(const RunSpec &spec, const DeviceConfig &config);

/**
 * Install the lightly-attended-device script: screen on briefly + motion
 * blip every @p interval (what RunSpec::userGlances uses internally).
 * The script stops when the returned handle is cancelled or destroyed;
 * keep it alive for as long as the user should stay lively. Overlapping
 * glances (length >= interval) are safe: a glance's screen-off event is
 * ignored once a newer glance has begun.
 */
[[nodiscard]] sim::PeriodicHandle
installGlanceScript(Device &device, sim::Time interval, sim::Time length);

/**
 * Deterministic per-spec seed: splitmix64 of (baseSeed, specIndex).
 * Distinct indices give well-separated streams regardless of baseSeed.
 */
std::uint64_t deriveSeed(std::uint64_t baseSeed, std::uint64_t specIndex);

/** ParallelRunner construction parameters. */
struct RunnerOptions {
    /**
     * Worker threads. 0 = automatic: $LEASEOS_JOBS if set, else
     * hardware_concurrency.
     */
    int jobs = 0;

    /**
     * When set, every spec's seed is overridden with
     * deriveSeed(*baseSeed, specIndex) — use for sweeps that want
     * independent randomness per cell without hand-writing seeds. When
     * unset (default), each spec's own config.seed is used verbatim.
     */
    std::optional<std::uint64_t> baseSeed;
};

/**
 * Fixed worker-pool executor for lists of independent RunSpecs.
 *
 * Results are collected in spec order no matter which worker finished
 * first, and every run's seed depends only on (spec, index) — never on
 * scheduling — so a sweep is bit-identical across job counts.
 */
class ParallelRunner
{
  public:
    explicit ParallelRunner(RunnerOptions options = {});

    /** Resolved worker count (>= 1). */
    int jobs() const { return jobs_; }

    /**
     * Run every spec; returns results in spec order. @p onResult, when
     * given, is invoked once per completed run (serialised under an
     * internal mutex, in completion order) for progress reporting.
     */
    std::vector<RunResult>
    run(const std::vector<RunSpec> &specs,
        const std::function<void(const RunResult &)> &onResult = {}) const;

    /**
     * Automatic worker count: $LEASEOS_JOBS when set to a positive
     * integer, else std::thread::hardware_concurrency().
     */
    static int defaultJobs();

    /**
     * Parse a `--jobs N` / `--jobs=N` / `-jN` / `-j N` flag from argv
     * (first match wins); returns options with jobs=0 (automatic) when
     * absent. A malformed or missing value (`--jobs=abc`, `-jxyz`,
     * trailing `--jobs`) prints a usage message to stderr and exits with
     * status 2 — never silently falls back to the default.
     */
    static RunnerOptions parseArgs(int argc, char **argv);

    /**
     * Strictly parse a jobs value: decimal digits only, >= 0 (0 means
     * automatic). std::nullopt on anything else (empty, sign, suffix,
     * overflow) — what parseArgs treats as a usage error.
     */
    static std::optional<int> parseJobs(const char *text);

  private:
    int jobs_ = 1;
    RunnerOptions options_;
};

} // namespace leaseos::harness

#endif // LEASEOS_HARNESS_RUNNER_H
