/**
 * @file
 * Device-fleet scenario: N independent simulated phones (default 100,
 * `--devices=N` up to 500) each running one of the 20 Table-5 buggy apps
 * round-robin, half vanilla Android and half LeaseOS, under a diurnal
 * glance script whose cadence varies per device (heavy users glance every
 * half minute, light users every few minutes). Every device is an
 * independent RunSpec executed on the ParallelRunner worker pool, so the
 * whole fleet is bit-identical for any `--jobs N`.
 *
 * This is the scale workload for the event-queue fast path: a fleet run
 * pushes tens of millions of events through sim::EventQueue, and the
 * bench reports aggregate simulated events, wall time, and events/sec
 * next to the fleet-level power numbers (mean per mode and per behaviour
 * class, with the LeaseOS reduction). Results land on stdout and in
 * BENCH_fleet.json.
 *
 * Flags: --devices=N (1..500, default 100), --minutes=M (virtual minutes
 * per device, default 30), --jobs=N / -j N (worker pool, default
 * automatic), --trace=PATH (export the first LeaseOS device's trace ring;
 * needs a -DLEASEOS_TRACING=ON build). CI smoke runs `--devices=50
 * --minutes=5`.
 *
 * Every device runs with a MetricRegistry installed; per-device metric
 * rollups ride in the JSON artifact (stdout keeps the aggregate table).
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "harness/experiment.h"
#include "harness/result_sink.h"
#include "harness/runner.h"
#include "support/alloc_counter.h"

using namespace leaseos;
using harness::MitigationMode;
using harness::ResultSink;
using sim::operator""_s;

namespace {

std::int64_t
nowNanos()
{
    // leaselint: allow(determinism) -- bench: wall time is the measurand
    auto now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(now)
        .count();
}

[[noreturn]] void
usageError(const char *flag)
{
    std::fprintf(stderr,
                 "bench_fleet: bad value for %s\n"
                 "usage: bench_fleet [--devices=N (1..500)] "
                 "[--minutes=M (>=1)] [--jobs=N | -j N]\n",
                 flag);
    std::exit(2);
}

/** Strict positive-integer flag value; exits with usage on garbage. */
long
parseValue(const char *text, const char *flag, long lo, long hi)
{
    if (text == nullptr || *text == '\0') usageError(flag);
    char *end = nullptr;
    long v = std::strtol(text, &end, 10);
    if (*end != '\0' || v < lo || v > hi) usageError(flag);
    return v;
}

/**
 * Per-device diurnal glance cadence. Device i is pinned to a "time of
 * day" phase; daytime phases glance often with long looks, nighttime
 * phases rarely and briefly. Deterministic in i — no wall clock.
 */
void
diurnalGlances(harness::RunSpec &spec, int i)
{
    int phase = i % 24; // hour-of-day this device's trace is centred on
    bool day = phase >= 7 && phase < 23;
    long interval = day ? 30 + 10 * (phase % 5)  // 30..70 s
                        : 180 + 60 * (phase % 4); // 3..6 min
    long length = day ? 8 + phase % 7 : 3;        // 8..14 s vs 3 s
    spec.userGlances = true;
    spec.glanceInterval = sim::Time::fromSeconds(
        static_cast<double>(interval));
    spec.glanceLength = sim::Time::fromSeconds(static_cast<double>(length));
}

struct ModeAgg {
    double powerSum = 0.0;
    double eventsSum = 0.0;
    int n = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    long devices = 100;
    long minutes = 30;
    std::string tracePath;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--devices=", 10) == 0)
            devices = parseValue(argv[i] + 10, "--devices", 1, 500);
        else if (std::strncmp(argv[i], "--minutes=", 10) == 0)
            minutes = parseValue(argv[i] + 10, "--minutes", 1, 24 * 60);
        else if (std::strncmp(argv[i], "--trace=", 8) == 0)
            tracePath = argv[i] + 8;
    }

    const auto &corpus = apps::table5Specs();
    const MitigationMode modes[] = {MitigationMode::None,
                                    MitigationMode::LeaseOS};

    // Device i: buggy app i mod 20, vanilla/LeaseOS alternating, diurnal
    // glance cadence pinned to i. Seeds come from the runner's baseSeed so
    // every device is an independent deterministic stream.
    std::vector<harness::RunSpec> specs;
    specs.reserve(static_cast<std::size_t>(devices));
    for (long i = 0; i < devices; ++i) {
        const auto &app = corpus[static_cast<std::size_t>(i) %
                                 corpus.size()];
        MitigationMode mode = modes[i % 2];
        harness::MitigationRunOptions opt;
        opt.duration = sim::Time::fromMinutes(static_cast<double>(minutes));
        harness::RunSpec spec = mitigationCellSpec(app, mode, opt);
        spec.name = "dev" + std::to_string(i) + " " + spec.name;
        diurnalGlances(spec, static_cast<int>(i));
        spec.probes.emplace_back("events", [](harness::Device &d) {
            return static_cast<double>(d.simulator().executedEvents());
        });
        spec.collectMetrics = true;
        // Device 1 is the first LeaseOS device — the interesting trace.
        if (!tracePath.empty() && i == 1) spec.tracePath = tracePath;
        specs.push_back(std::move(spec));
    }

    harness::RunnerOptions options =
        harness::ParallelRunner::parseArgs(argc, argv);
    options.baseSeed = 0xf1ee7ULL;
    harness::ParallelRunner runner(options);
    std::fprintf(stderr, "[fleet] %ld devices x %ld min on %d worker(s)\n",
                 devices, minutes, runner.jobs());

    std::int64_t t0 = nowNanos();
    std::uint64_t allocs0 = benchsupport::allocCount();
    auto results = runner.run(specs);
    std::uint64_t allocs = benchsupport::allocCount() - allocs0;
    double wallSec = static_cast<double>(nowNanos() - t0) / 1e9;

    // Aggregate per mode and per (behaviour class, mode).
    std::map<std::string, ModeAgg> perMode;
    std::map<std::string, ModeAgg> perBehavior; // key "LHB/None" etc.
    double totalEvents = 0.0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        const auto &app = corpus[i % corpus.size()];
        const char *mode = (i % 2 == 0) ? "None" : "LeaseOS";
        double events = r.probe("events");
        totalEvents += events;
        auto &m = perMode[mode];
        m.powerSum += r.appPowerMw;
        m.eventsSum += events;
        ++m.n;
        auto &b = perBehavior[app.behavior + std::string("/") + mode];
        b.powerSum += r.appPowerMw;
        ++b.n;
    }

    harness::TextTableSink table;
    harness::JsonSink json(harness::benchArtifactPath("fleet"));
    harness::TeeSink sink({&table, &json});
    sink.begin("Device fleet",
               std::to_string(devices) + " devices x " +
                   std::to_string(minutes) +
                   " virtual minutes; Table-5 buggy apps round-robin, "
                   "alternating vanilla/LeaseOS, diurnal glance script. "
                   "Mean app power (mW) per behaviour class and mode, "
                   "plus simulator throughput.");

    for (const char *behavior : {"LHB", "LUB", "FAB"}) {
        const auto none = perBehavior.find(behavior + std::string("/None"));
        const auto leased =
            perBehavior.find(behavior + std::string("/LeaseOS"));
        if (none == perBehavior.end() || leased == perBehavior.end())
            continue;
        double vanillaMw = none->second.powerSum / none->second.n;
        double leasedMw = leased->second.powerSum / leased->second.n;
        sink.addRow(
            {{"group", ResultSink::Value::str(behavior)},
             {"devices", ResultSink::Value::count(none->second.n +
                                                  leased->second.n)},
             {"vanilla_mw", ResultSink::Value::num(vanillaMw)},
             {"leaseos_mw", ResultSink::Value::num(leasedMw)},
             {"reduction_pct", ResultSink::Value::num(
                                   harness::reductionPercent(vanillaMw,
                                                             leasedMw))}});
    }

    sink.addSeparator();
    double vanillaMw = perMode["None"].powerSum / perMode["None"].n;
    double leasedMw = perMode["LeaseOS"].powerSum / perMode["LeaseOS"].n;
    sink.addRow(
        {{"group", ResultSink::Value::str("fleet")},
         {"devices", ResultSink::Value::count(
                         static_cast<std::int64_t>(results.size()))},
         {"vanilla_mw", ResultSink::Value::num(vanillaMw)},
         {"leaseos_mw", ResultSink::Value::num(leasedMw)},
         {"reduction_pct", ResultSink::Value::num(
                               harness::reductionPercent(vanillaMw,
                                                         leasedMw))}});
    // Throughput goes to the JSON artifact only: its columns differ from
    // the power table's, and TextTableSink headers come from row 1.
    json.addRow(
        {{"group", ResultSink::Value::str("throughput")},
         {"devices", ResultSink::Value::count(
                         static_cast<std::int64_t>(results.size()))},
         {"events", ResultSink::Value::count(
                        static_cast<std::int64_t>(totalEvents))},
         {"wall_s", ResultSink::Value::num(wallSec, 3)},
         {"events_per_s", ResultSink::Value::num(totalEvents / wallSec,
                                                 0)},
         {"allocs", ResultSink::Value::count(
                        static_cast<std::int64_t>(allocs))},
         {"allocs_per_event",
          ResultSink::Value::num(
              static_cast<double>(allocs) / totalEvents, 4)}});
    // Per-device MetricRegistry rollups — JSON artifact only, one row per
    // device, every registered metric flattened to a key. The stdout
    // table stays the aggregate view.
    for (const auto &r : results) {
        ResultSink::Row row;
        row.emplace_back("group", ResultSink::Value::str("device"));
        row.emplace_back("name", ResultSink::Value::str(r.name));
        row.emplace_back("app_mw", ResultSink::Value::num(r.appPowerMw, 3));
        for (const auto &[metricName, value] : r.metrics)
            row.emplace_back(metricName, ResultSink::Value::num(value, 3));
        json.addRow(row);
    }
    sink.finish();
    std::printf("\nSimulated %.0f events in %.2f s wall — %.0f events/s "
                "across %d worker(s); %.4f heap allocs/event.\n",
                totalEvents, wallSec, totalEvents / wallSec, runner.jobs(),
                static_cast<double>(allocs) / totalEvents);
    return 0;
}
