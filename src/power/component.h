#ifndef LEASEOS_POWER_COMPONENT_H
#define LEASEOS_POWER_COMPONENT_H

/**
 * @file
 * Base class for power-drawing hardware components.
 *
 * A component owns one or more accountant channels and translates its
 * semantic state (awake, searching, playing, ...) into per-uid power
 * shares whenever that state changes.
 */

#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "power/device_profile.h"
#include "power/energy_accountant.h"
#include "sim/simulator.h"

namespace leaseos::power {

/**
 * Common plumbing for hardware component models.
 */
class PowerComponent
{
  public:
    PowerComponent(sim::Simulator &sim, EnergyAccountant &accountant,
                   const DeviceProfile &profile, std::string name)
        : sim_(sim), accountant_(accountant), profile_(profile),
          name_(std::move(name)) {}

    virtual ~PowerComponent() = default;
    PowerComponent(const PowerComponent &) = delete;
    PowerComponent &operator=(const PowerComponent &) = delete;

    const std::string &name() const { return name_; }
    const DeviceProfile &profile() const { return profile_; }

  protected:
    sim::Simulator &sim_;
    EnergyAccountant &accountant_;
    DeviceProfile profile_;

  private:
    std::string name_;
};

} // namespace leaseos::power

#endif // LEASEOS_POWER_COMPONENT_H
