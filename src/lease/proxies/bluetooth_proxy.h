#ifndef LEASEOS_LEASE_PROXIES_BLUETOOTH_PROXY_H
#define LEASEOS_LEASE_PROXIES_BLUETOOTH_PROXY_H

/**
 * @file
 * Lease proxy for Bluetooth scans (Table 1 groups Bluetooth with the
 * sensors: a subscription whose utilisation is judged by the bound
 * Activity, with UI evidence as the generic utility).
 */

#include <map>

#include "lease/lease_proxy.h"
#include "os/activity_manager_service.h"
#include "os/bluetooth_service.h"

namespace leaseos::lease {

/**
 * Bluetooth scan lease proxy.
 */
class BluetoothLeaseProxy : public LeaseProxy
{
  public:
    BluetoothLeaseProxy(os::BluetoothService &bt,
                        os::ActivityManagerService &am);

    void onExpire(const Lease &lease) override;
    void onRenew(const Lease &lease) override;
    bool resourceHeld(const Lease &lease) override;
    void beginTerm(const Lease &lease) override;
    LeaseStat collectStat(const Lease &lease) override;

  private:
    struct Snapshot {
        double scanSeconds = 0.0;
        double activitySeconds = 0.0;
        std::uint64_t uiUpdates = 0;
        std::uint64_t interactions = 0;
    };

    Snapshot snapshot(const Lease &lease);

    os::BluetoothService &bt_;
    os::ActivityManagerService &am_;
    std::map<LeaseId, Snapshot> snapshots_;
};

} // namespace leaseos::lease

#endif // LEASEOS_LEASE_PROXIES_BLUETOOTH_PROXY_H
