#include "tracereplay/checkpoint_view.h"

#include <map>
#include <sstream>

#include "sim/checkpoint.h"

namespace leaseos::tracereplay {

namespace {

/** Consume one serialized LeaseStat (layout of lease_table.cc). */
void
skipStat(sim::CheckpointReader &r)
{
    r.time(); // termStart
    r.time(); // termEnd
    r.f64();  // requestSeconds
    r.f64();  // failedRequestSeconds
    r.f64();  // holdingSeconds
    r.f64();  // usageSeconds
    r.f64();  // utilityScore
    r.u64();  // exceptions
    r.u64();  // uiUpdates
    r.u64();  // interactions
    r.f64();  // distanceMeters
    r.u64();  // acquires
    r.u8();   // heldAtTermEnd
}

void
decodeMeta(sim::CheckpointReader &r, CheckpointView &view)
{
    view.mode = r.u8();
    view.seed = r.u64();
    view.profile = r.str();
    r.u8();   // dvfs
    r.time(); // profiler period
    view.appCount = r.u64();
}

void
decodeSim(sim::CheckpointReader &r, CheckpointView &view)
{
    view.simTimeNs = r.time().nanos();
    view.executedEvents = r.u64();
}

void
decodeEnergy(sim::CheckpointReader &r, CheckpointView &view)
{
    r.time(); // lastSync
    view.totalMj = r.f64();
    // remainder (per-uid + per-channel breakdown) skipped by caller
}

void
decodeLeases(sim::CheckpointReader &r, CheckpointView &view)
{
    view.hasLeases = true;
    view.nextLeaseId = r.u64();
    std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
        CkptLease lease;
        lease.id = r.u64();
        lease.uid = static_cast<std::int32_t>(r.u32());
        lease.rtype = r.u8();
        lease.token = r.u64();
        lease.state = r.u8();
        r.time(); // createdAt
        lease.termStartNs = r.time().nanos();
        lease.termLengthNs = r.time().nanos();
        lease.termIndex = r.i64();
        r.i64(); // consecutiveNormal
        r.i64(); // consecutiveMisbehaved
        lease.renewals = r.u64();
        lease.deferrals = r.u64();
        lease.deferredAtNs = r.time().nanos();
        r.f64(); // totalDeferralSeconds
        std::uint64_t records = r.u64();
        lease.historyLen = static_cast<std::size_t>(records);
        for (std::uint64_t k = 0; k < records; ++k) {
            skipStat(r);
            r.u8(); // behavior
        }
        view.leases.push_back(lease);
    }
    std::uint64_t tokens = r.u64();
    for (std::uint64_t i = 0; i < tokens; ++i) {
        std::uint64_t token = r.u64();
        std::uint64_t id = r.u64();
        view.byToken.emplace_back(token, id);
    }
    // remainder (reputations + service counters) skipped by caller
}

} // namespace

std::string
CheckpointIssue::toString() const
{
    return "[" + check + "] " + detail;
}

CheckpointView
loadCheckpointView(const std::string &path)
{
    CheckpointView view;
    try {
        std::vector<std::uint8_t> blob = sim::readCheckpointFile(path);
        sim::CheckpointReader r(blob);
        view.payloadBytes = blob.size();
        while (!r.atEnd()) {
            std::string name = r.peekSection();
            std::uint32_t version = 0;
            r.nextSection(version);
            CheckpointView::Section section;
            section.name = name;
            section.version = version;
            section.bodyBytes = r.sectionRemaining();
            // Known sections decode their prefix; skipSection() then
            // swallows whatever each decoder (or an unknown section —
            // a newer writer must not break an older viewer) left.
            if (name == "meta" && version == 1) decodeMeta(r, view);
            else if (name == "sim" && version == 1) decodeSim(r, view);
            else if (name == "energy" && version == 1)
                decodeEnergy(r, view);
            else if (name == "leases" && version == 1)
                decodeLeases(r, view);
            r.skipSection();
            view.sections.push_back(std::move(section));
        }
    } catch (const sim::CheckpointError &e) {
        view.error = e.what();
    }
    return view;
}

std::vector<CheckpointIssue>
checkCheckpoint(const CheckpointView &view)
{
    std::vector<CheckpointIssue> issues;
    if (!view.hasLeases) return issues;

    std::map<std::uint64_t, const CkptLease *> byId;
    for (const CkptLease &lease : view.leases) {
        byId[lease.id] = &lease;
        if (lease.state > 3) {
            std::ostringstream detail;
            detail << "lease " << lease.id << " has state value "
                   << static_cast<int>(lease.state)
                   << " (not a LeaseState)";
            issues.push_back({"lease-state", detail.str()});
            continue;
        }
        if (lease.id >= view.nextLeaseId) {
            std::ostringstream detail;
            detail << "lease " << lease.id
                   << " >= next lease id " << view.nextLeaseId;
            issues.push_back({"lease-id", detail.str()});
        }
        // A checkpoint is only emitted after the simulator drained every
        // event at the boundary instant, so an ACTIVE lease's term-end
        // event (armed at termStart + termLength) must still be in the
        // future, and a DEFERRED lease's deferral must have begun.
        if (lease.state == 0 /* Active */ &&
            lease.termStartNs + lease.termLengthNs <= view.simTimeNs) {
            std::ostringstream detail;
            detail << "ACTIVE lease " << lease.id << " term ended at "
                   << lease.termStartNs + lease.termLengthNs
                   << "ns but the blob was taken at " << view.simTimeNs
                   << "ns (missed term-end event)";
            issues.push_back({"term-deadline", detail.str()});
        }
        if (lease.state == 2 /* Deferred */ &&
            lease.deferredAtNs > view.simTimeNs) {
            std::ostringstream detail;
            detail << "DEFERRED lease " << lease.id
                   << " was deferred in the future (" << lease.deferredAtNs
                   << "ns > " << view.simTimeNs << "ns)";
            issues.push_back({"deferral-deadline", detail.str()});
        }
    }
    for (const auto &[token, id] : view.byToken) {
        auto it = byId.find(id);
        if (it == byId.end()) {
            std::ostringstream detail;
            detail << "token index maps token " << token
                   << " to unknown lease " << id;
            issues.push_back({"token-index", detail.str()});
        } else if (it->second->token != token) {
            std::ostringstream detail;
            detail << "token index maps token " << token << " to lease "
                   << id << " whose token is " << it->second->token;
            issues.push_back({"token-index", detail.str()});
        }
    }
    return issues;
}

} // namespace leaseos::tracereplay
