#include "power/battery.h"

#include "sim/checkpoint.h"

namespace leaseos::power {

void
Battery::saveState(sim::CheckpointWriter &w) const
{
    w.beginSection("battery", 1);
    w.f64(baseMj_);
    w.endSection();
}

void
Battery::restoreState(sim::CheckpointReader &r)
{
    sim::requireSectionVersion("battery", r.beginSection("battery"), 1);
    baseMj_ = r.f64();
    r.endSection();
}

} // namespace leaseos::power
