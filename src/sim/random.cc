#include "sim/random.h"

// RandomSource is header-only today; this translation unit anchors the
// module so the build exposes a stable place for future out-of-line code.
namespace leaseos::sim {
} // namespace leaseos::sim
