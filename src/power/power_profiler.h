#ifndef LEASEOS_POWER_POWER_PROFILER_H
#define LEASEOS_POWER_POWER_PROFILER_H

/**
 * @file
 * Sampled power profiler (Trepn / Monsoon analog).
 *
 * The evaluation samples power every 100 ms (§7.3) and the §2 profiling
 * tool samples per-app metric vectors every 60 s. PowerProfiler produces
 * the power side: a total-power series and per-uid series, computed as
 * average power over each sampling interval from the accountant's exact
 * energy integrals (which is what a hardware power monitor reports too).
 */

#include <map>
#include <vector>

#include "common/ids.h"
#include "power/energy_accountant.h"
#include "sim/simulator.h"
#include "sim/time_series.h"

namespace leaseos::power {

/**
 * Periodic sampler turning accountant integrals into TimeSeries.
 */
class PowerProfiler
{
  public:
    PowerProfiler(sim::Simulator &sim, EnergyAccountant &accountant,
                  sim::Time period);

    /** Track an app's power (call before start()). */
    void watchUid(Uid uid);

    /** Begin sampling. */
    void start();

    /**
     * Stop sampling: the pending tick is cancelled immediately (no zombie
     * event stays in the queue). start() may be called again later.
     */
    void
    stop()
    {
        running_ = false;
        tick_.cancel();
    }

    const sim::TimeSeries &totalSeries() const { return total_; }
    const sim::TimeSeries &uidSeries(Uid uid) const;

    /** Average app power (mW) over the profiled span so far. */
    double averageUidPowerMw(Uid uid) const;

    /** Average system power (mW) over the profiled span so far. */
    double averageTotalPowerMw() const;

    sim::Time period() const { return period_; }

    /**
     * Serialize the sampled series and interval baselines as a
     * "profiler" section (DESIGN.md §11). Checkpoints must be taken at a
     * multiple of the sampling period so the due tick has already fired.
     */
    void saveState(sim::CheckpointWriter &w) const;

    /**
     * Restore onto a profiler watching the same uids; when the saved
     * profiler was running, the sampling loop is re-armed one period
     * from the (restored) current time — exactly where the original's
     * next tick sat.
     */
    void restoreState(sim::CheckpointReader &r);

  private:
    void sample();

    sim::Simulator &sim_;
    EnergyAccountant &accountant_;
    sim::Time period_;
    bool running_ = false;
    /** Owns the sampling loop; cancelled by stop() / destruction. */
    sim::PeriodicHandle tick_;

    sim::TimeSeries total_;
    // leaselint: allow(flat-map-hotpath) -- touched once per sample tick
    std::map<Uid, sim::TimeSeries> perUid_;
    double lastTotalMj_ = 0.0;
    // leaselint: allow(flat-map-hotpath) -- touched once per sample tick
    std::map<Uid, double> lastUidMj_;
};

} // namespace leaseos::power

#endif // LEASEOS_POWER_POWER_PROFILER_H
