/**
 * @file
 * Tests for the parallel experiment engine: scenario runs, deterministic
 * seed derivation, ordered collection, and bit-identical results across
 * worker-pool sizes.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>

#include "apps/buggy/k9_mail.h"
#include "apps/buggy/torch.h"
#include "apps/registry.h"
#include "harness/experiment.h"
#include "harness/runner.h"

namespace leaseos::harness {
namespace {

using sim::operator""_s;
using sim::operator""_min;

/** A small mixed workload: cheap cells exercising several modes. */
std::vector<RunSpec>
sampleSpecs()
{
    std::vector<RunSpec> specs;

    specs.push_back(RunSpec{}
                        .withName("torch vanilla")
                        .withConfig(DeviceConfig{}.withMode(
                            MitigationMode::None))
                        .withDuration(5_min)
                        .withApp<apps::Torch>());
    specs.push_back(RunSpec{}
                        .withName("torch leased")
                        .withConfig(DeviceConfig{}
                                        .withMode(MitigationMode::LeaseOS)
                                        .withSeed(7))
                        .withDuration(5_min)
                        .withApp<apps::Torch>()
                        .withProbe("events", [](Device &d) {
                            return static_cast<double>(
                                d.simulator().executedEvents());
                        }));
    specs.push_back(RunSpec{}
                        .withName("k9 disconnected doze")
                        .withConfig(DeviceConfig{}.withMode(
                            MitigationMode::DozeAggressive))
                        .withDuration(5_min)
                        .withSetup([](Device &d) {
                            d.network().setConnected(false);
                        })
                        .withApp<apps::K9Mail>()
                        .withGlances(1_min, 5_s));
    specs.push_back(RunSpec{}
                        .withName("k9 disconnected leased")
                        .withConfig(DeviceConfig{}
                                        .withMode(MitigationMode::LeaseOS)
                                        .withSeed(99))
                        .withDuration(5_min)
                        .withSetup([](Device &d) {
                            d.network().setConnected(false);
                        })
                        .withApp<apps::K9Mail>());
    return specs;
}

TEST(RunScenarioTest, CollectsPowerAndLeaseMetrics)
{
    RunSpec spec = RunSpec{}
                       .withName("torch")
                       .withConfig(DeviceConfig{}.withMode(
                           MitigationMode::LeaseOS))
                       .withDuration(10_min)
                       .withApp<apps::Torch>();
    RunResult r = runScenario(spec);
    EXPECT_EQ(r.name, "torch");
    EXPECT_GT(r.systemPowerMw, 0.0);
    EXPECT_GT(r.deferrals, 0u);
    EXPECT_GT(r.termChecks, 0u);
    EXPECT_GT(r.leasesCreated, 0u);
    EXPECT_GT(
        r.behaviorCounts.at(lease::BehaviorType::LongHolding), 0u);
    ASSERT_EQ(r.perAppPowerMw.size(), 1u);
    EXPECT_DOUBLE_EQ(r.perAppPowerMw[0], r.appPowerMw);
}

TEST(RunScenarioTest, ProbesReportInSpecOrder)
{
    RunSpec spec = RunSpec{}
                       .withConfig(DeviceConfig{})
                       .withDuration(1_min)
                       .withProbe("b", [](Device &) { return 2.0; })
                       .withProbe("a", [](Device &) { return 1.0; });
    RunResult r = runScenario(spec);
    ASSERT_EQ(r.probes.size(), 2u);
    EXPECT_EQ(r.probes[0].first, "b");
    EXPECT_DOUBLE_EQ(r.probe("a"), 1.0);
    EXPECT_THROW(r.probe("missing"), std::out_of_range);
}

TEST(RunScenarioTest, MitigationCellSpecDescribesTheStandardCell)
{
    const auto &spec = apps::buggySpec("torch");
    MitigationRunOptions opt;
    opt.duration = 5_min;
    RunSpec cell = mitigationCellSpec(spec, MitigationMode::LeaseOS, opt);
    EXPECT_EQ(cell.name, std::string(spec.display) + " / LeaseOS");
    EXPECT_EQ(cell.config.mode, MitigationMode::LeaseOS);
    EXPECT_EQ(cell.config.seed, opt.seed);
    EXPECT_EQ(cell.duration, opt.duration);
    ASSERT_EQ(cell.apps.size(), 1u);
    ASSERT_EQ(cell.setup.size(), 1u);
    EXPECT_TRUE(cell.userGlances);
    EXPECT_EQ(cell.glanceInterval, opt.glanceInterval);
    EXPECT_EQ(cell.glanceLength, opt.glanceLength);
    // The spec is executable as-is and yields a plausible cell result.
    RunResult direct = runScenario(cell);
    EXPECT_EQ(direct.name, cell.name);
    EXPECT_GT(direct.leasesCreated, 0u);
}

TEST(ParallelRunnerTest, ResultsIdenticalAcrossJobCounts)
{
    std::vector<RunSpec> specs = sampleSpecs();

    RunnerOptions one;
    one.jobs = 1;
    RunnerOptions eight;
    eight.jobs = 8;
    ParallelRunner sequential(one);
    ParallelRunner parallel(eight);
    ASSERT_EQ(sequential.jobs(), 1);
    ASSERT_EQ(parallel.jobs(), 8);

    std::vector<RunResult> a = sequential.run(specs);
    std::vector<RunResult> b = parallel.run(specs);

    ASSERT_EQ(a.size(), specs.size());
    ASSERT_EQ(b.size(), specs.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(specs[i].name);
        EXPECT_EQ(a[i].specIndex, i);
        EXPECT_EQ(a[i], b[i]); // power, behaviour counts, deferrals, ...
    }
    // The workload is not degenerate: different cells disagree.
    EXPECT_NE(a[0].appPowerMw, a[1].appPowerMw);
}

TEST(ParallelRunnerTest, OnResultSeesEveryRunExactlyOnce)
{
    std::vector<RunSpec> specs = sampleSpecs();
    RunnerOptions four;
    four.jobs = 4;
    ParallelRunner runner(four);
    std::set<std::size_t> seen;
    runner.run(specs, [&](const RunResult &r) {
        // Serialised by the runner; no extra locking needed here.
        seen.insert(r.specIndex);
    });
    EXPECT_EQ(seen.size(), specs.size());
}

TEST(ParallelRunnerTest, DerivedSeedsAreDistinctAndDeterministic)
{
    std::set<std::uint64_t> seeds;
    for (std::uint64_t i = 0; i < 1000; ++i)
        seeds.insert(deriveSeed(0x1ea5e05, i));
    EXPECT_EQ(seeds.size(), 1000u);

    EXPECT_EQ(deriveSeed(42, 7), deriveSeed(42, 7));
    EXPECT_NE(deriveSeed(42, 7), deriveSeed(43, 7));
}

TEST(ParallelRunnerTest, BaseSeedOverridesSpecSeeds)
{
    std::vector<RunSpec> specs(2, RunSpec{}
                                      .withConfig(DeviceConfig{})
                                      .withDuration(1_min));
    RunnerOptions options;
    options.jobs = 2;
    options.baseSeed = 123;
    ParallelRunner runner(options);
    auto results = runner.run(specs);
    EXPECT_EQ(results[0].seed, deriveSeed(123, 0));
    EXPECT_EQ(results[1].seed, deriveSeed(123, 1));
    EXPECT_NE(results[0].seed, results[1].seed);
}

TEST(ParallelRunnerTest, HooksAreNotCopiedPerRun)
{
    // The worker loop runs each spec by const ref; the std::function
    // hook vectors must not be cloned per run (they were, when the loop
    // copied whole RunSpecs), even when baseSeed forces a config clone.
    struct CopyTracker {
        std::shared_ptr<int> copies;
        CopyTracker() : copies(std::make_shared<int>(0)) {}
        CopyTracker(const CopyTracker &other) : copies(other.copies)
        {
            ++*copies;
        }
        CopyTracker(CopyTracker &&) = default;
        double operator()(Device &) const { return 0.0; }
    };

    CopyTracker tracker;
    std::shared_ptr<int> copies = tracker.copies;
    std::vector<RunSpec> specs;
    specs.push_back(RunSpec{}
                        .withConfig(DeviceConfig{})
                        .withDuration(1_min)
                        .withProbe("zero", std::move(tracker)));

    RunnerOptions options;
    options.jobs = 1;
    options.baseSeed = 99; // forces the DeviceConfig clone path
    ParallelRunner runner(options);
    int copiesBeforeRun = *copies;
    auto results = runner.run(specs);
    EXPECT_EQ(*copies, copiesBeforeRun);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].probe("zero"), 0.0);
}

TEST(ParallelRunnerTest, ParseArgsReadsJobsFlag)
{
    const char *argv1[] = {"bench", "--jobs", "3"};
    EXPECT_EQ(ParallelRunner::parseArgs(
                  3, const_cast<char **>(argv1)).jobs, 3);
    const char *argv2[] = {"bench", "--jobs=5"};
    EXPECT_EQ(ParallelRunner::parseArgs(
                  2, const_cast<char **>(argv2)).jobs, 5);
    const char *argv3[] = {"bench", "-j2"};
    EXPECT_EQ(ParallelRunner::parseArgs(
                  2, const_cast<char **>(argv3)).jobs, 2);
    const char *argv4[] = {"bench"};
    EXPECT_EQ(ParallelRunner::parseArgs(
                  1, const_cast<char **>(argv4)).jobs, 0);
    // Separated short form (regression: used to be silently ignored).
    const char *argv5[] = {"bench", "-j", "7"};
    EXPECT_EQ(ParallelRunner::parseArgs(
                  3, const_cast<char **>(argv5)).jobs, 7);
    // Other flags are left for the bench to interpret.
    const char *argv6[] = {"bench", "--devices=50", "--jobs=4"};
    EXPECT_EQ(ParallelRunner::parseArgs(
                  3, const_cast<char **>(argv6)).jobs, 4);
}

TEST(ParallelRunnerTest, ParseJobsIsStrict)
{
    // Regression: atoi turned "abc" into 0 (= automatic), silently
    // ignoring the user's (mistyped) request.
    EXPECT_EQ(ParallelRunner::parseJobs("3"), 3);
    EXPECT_EQ(ParallelRunner::parseJobs("0"), 0);
    EXPECT_EQ(ParallelRunner::parseJobs("64"), 64);
    EXPECT_FALSE(ParallelRunner::parseJobs("abc").has_value());
    EXPECT_FALSE(ParallelRunner::parseJobs("3abc").has_value());
    EXPECT_FALSE(ParallelRunner::parseJobs("-2").has_value());
    EXPECT_FALSE(ParallelRunner::parseJobs("+2").has_value());
    EXPECT_FALSE(ParallelRunner::parseJobs("").has_value());
    EXPECT_FALSE(ParallelRunner::parseJobs(nullptr).has_value());
    EXPECT_FALSE(ParallelRunner::parseJobs("999999999").has_value());
}

TEST(ParallelRunnerDeathTest, MalformedJobsFlagExitsWithUsage)
{
    const char *garbage[] = {"bench", "--jobs=abc"};
    EXPECT_EXIT(ParallelRunner::parseArgs(2, const_cast<char **>(garbage)),
                ::testing::ExitedWithCode(2), "usage");
    const char *shortGarbage[] = {"bench", "-jxyz"};
    EXPECT_EXIT(
        ParallelRunner::parseArgs(2, const_cast<char **>(shortGarbage)),
        ::testing::ExitedWithCode(2), "usage");
    const char *missing[] = {"bench", "--jobs"};
    EXPECT_EXIT(ParallelRunner::parseArgs(2, const_cast<char **>(missing)),
                ::testing::ExitedWithCode(2), "usage");
}

TEST(GlanceScriptTest, OverlappingGlancesKeepScreenOn)
{
    // Regression: with glanceLength > glanceInterval, glance N's
    // screen-off event fired mid-glance N+1, blanking the screen and
    // parking the user while a glance was still in progress.
    Device device;
    sim::PeriodicHandle glances =
        installGlanceScript(device, /*interval=*/60_s, /*length=*/90_s);
    device.start();
    // Glances start at 60, 120, 180, ...; each lasts 90 s, so from 60 s
    // on the screen must never be user-off again. Glance 1's off event
    // (t=150) lands inside glance 2 and must be ignored.
    device.runFor(155_s);
    EXPECT_TRUE(device.server().displayManager().userWantsOn())
        << "a stale screen-off event blanked the screen mid-glance";
    EXPECT_FALSE(device.motion().stationary())
        << "a stale off event parked the user mid-glance";
}

TEST(GlanceScriptTest, NonOverlappingGlancesStillEnd)
{
    // The guard must not break the normal case: with length < interval
    // the screen goes off between glances.
    Device device;
    sim::PeriodicHandle glances =
        installGlanceScript(device, /*interval=*/60_s, /*length=*/10_s);
    device.start();
    device.runFor(95_s); // glance 1 span is [60, 70); probe at 95.
    EXPECT_FALSE(device.server().displayManager().userWantsOn());
    EXPECT_TRUE(device.motion().stationary());
}

TEST(GlanceScriptTest, HandleStopsTheScript)
{
    Device device;
    sim::PeriodicHandle glances = installGlanceScript(device, 60_s, 10_s);
    device.start();
    device.runFor(65_s);
    EXPECT_TRUE(device.server().displayManager().userWantsOn());
    glances.cancel();
    device.runFor(300_s);
    // No further glances: the screen stays off after glance 1 ended.
    EXPECT_FALSE(device.server().displayManager().userWantsOn());
}

} // namespace
} // namespace leaseos::harness
