/**
 * @file
 * Reproduces Figure 11: the number of active leases over a one-hour
 * normal-usage period — 30 minutes of actively using popular apps
 * (games, social, news, music), then 30 minutes untouched.
 *
 * Paper shape: active leases are moderate and track user activity; ~160
 * leases created in total; most are short-lived (median active period
 * 5 s, max 18 min); average 4 terms per lease, max ~52.
 */

#include <iostream>

#include "apps/registry.h"
#include "harness/device.h"
#include "harness/figure.h"
#include "harness/metrics.h"
#include "harness/result_sink.h"
#include "harness/table.h"

using namespace leaseos;
using sim::operator""_s;
using sim::operator""_min;

int
main()
{
    harness::DeviceConfig cfg;
    cfg.mode = harness::MitigationMode::LeaseOS;
    harness::Device device(cfg);

    // A mix of popular apps: game, social, news, music, video, browser...
    auto fleet = apps::installGenericFleet(device, 12);
    std::vector<Uid> uids;
    for (auto *app : fleet) uids.push_back(app->uid());

    // 30 minutes of active use, then 30 minutes untouched.
    device.user().setInteractionInterval(6_s);
    device.user().setAppSwitchInterval(2_min);
    device.user().scheduleSession(10_s, 30_min, uids);

    auto &mgr = device.leaseos()->manager();
    harness::MetricsSampler sampler(device.simulator(), 60_s);
    sampler.addGauge("active_leases", [&] {
        return static_cast<double>(mgr.activeLeases());
    });
    sampler.start();

    device.start();
    device.runFor(60_min);

    std::cout << harness::figureHeader(
        "Figure 11",
        "Number of active leases over a one-hour period (30 min active "
        "use of 12 popular apps, then 30 min untouched).");
    std::cout << harness::seriesFigure({&sampler.series("active_leases")});
    harness::maybeExportSeriesCsv("fig11_active_leases",
                                  sampler.series("active_leases"));

    // Merge dead-lease stats with leases still alive at the end of the
    // hour (long-lived playback leases are usually among the latter).
    sim::Accumulator lifespans = mgr.lifespanStats();
    sim::Accumulator terms = mgr.termCountStats();
    for (lease::Lease *l : mgr.table().all()) {
        lifespans.record(
            (device.simulator().now() - l->createdAt).seconds());
        terms.record(static_cast<double>(l->termIndex + 1));
    }

    std::cout << "\nleases created in total: " << mgr.totalCreated()
              << " (paper: 160)\n";
    std::cout << "lease lifespans (s): mean "
              << harness::TextTable::fmt(lifespans.mean()) << ", min "
              << harness::TextTable::fmt(lifespans.min()) << ", max "
              << harness::TextTable::fmt(lifespans.max())
              << " (paper: median 5 s, max 18 min)\n";
    std::cout << "terms per lease: mean "
              << harness::TextTable::fmt(terms.mean(), 1) << ", max "
              << harness::TextTable::fmt(terms.max(), 0)
              << " (paper: average 4, max 52)\n";
    std::cout << "user interactions driven: "
              << device.user().interactionCount() << "\n";
    return 0;
}
