/**
 * @file
 * switch-exhaustive: every switch over the core lease enums must name
 * every enumerator. The compiler's -Wswitch goes silent the moment a
 * `default:` label appears — which is exactly how a newly added
 * LeaseState / BehaviorType / ResourceType enumerator slips into the
 * wrong bucket unnoticed. This rule keeps flagging missing enumerators
 * regardless of `default:`.
 *
 * The enumerator sets are harvested from the `enum class` definitions in
 * the linted sources themselves (pass 1), so the rule never drifts from
 * the headers.
 */

#include "leaselint/rules.h"

#include <cctype>
#include <map>
#include <set>

namespace leaselint {

namespace {

/** Enums whose switches must stay exhaustive. */
constexpr const char *kTargetEnums[] = {
    "LeaseState",
    "BehaviorType",
    "ResourceType",
};

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t
skipWs(const std::string &text, std::size_t at)
{
    while (at < text.size() &&
           std::isspace(static_cast<unsigned char>(text[at])))
        ++at;
    return at;
}

std::string
readIdent(const std::string &text, std::size_t &at)
{
    std::size_t start = at;
    while (at < text.size() && identChar(text[at])) ++at;
    return text.substr(start, at - start);
}

/** Offset just past the bracket matching text[open] ('(' or '{'). */
std::size_t
matchBracket(const std::string &text, std::size_t open)
{
    char oc = text[open];
    char cc = oc == '(' ? ')' : '}';
    int depth = 0;
    for (std::size_t i = open; i < text.size(); ++i) {
        if (text[i] == oc) ++depth;
        else if (text[i] == cc && --depth == 0) return i + 1;
    }
    return text.size();
}

class SwitchExhaustiveRule : public Rule
{
  public:
    const char *name() const override { return "switch-exhaustive"; }
    const char *
    description() const override
    {
        return "switch over a core lease enum does not name every "
               "enumerator";
    }

    void
    scan(const SourceFile &file) override
    {
        const std::string &text = file.codeText();
        std::size_t at = 0;
        while ((at = findToken(text, "enum", at)) != std::string::npos) {
            std::size_t cur = skipWs(text, at + 4);
            at += 4;
            std::size_t kw = cur;
            std::string cls = readIdent(text, kw);
            if (cls != "class" && cls != "struct") continue;
            cur = skipWs(text, kw);
            std::string enumName = readIdent(text, cur);
            if (!isTarget(enumName)) continue;
            cur = skipWs(text, cur);
            if (cur < text.size() && text[cur] == ':') {
                // Skip the underlying-type clause.
                while (cur < text.size() && text[cur] != '{' &&
                       text[cur] != ';')
                    ++cur;
            }
            if (cur >= text.size() || text[cur] != '{') continue;
            std::size_t bodyEnd = matchBracket(text, cur) - 1;
            harvest(enumName, text, cur + 1, bodyEnd);
        }
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out) override
    {
        const std::string &text = file.codeText();
        std::size_t at = 0;
        while ((at = findToken(text, "switch", at)) != std::string::npos) {
            std::size_t kwAt = at;
            at += 6;
            std::size_t open = skipWs(text, kwAt + 6);
            if (open >= text.size() || text[open] != '(') continue;
            std::size_t afterCond = matchBracket(text, open);
            std::size_t bodyOpen = skipWs(text, afterCond);
            if (bodyOpen >= text.size() || text[bodyOpen] != '{') continue;
            std::size_t bodyEnd = matchBracket(text, bodyOpen);
            checkSwitch(file, kwAt, text, bodyOpen + 1, bodyEnd - 1, out);
        }
    }

  private:
    static bool
    isTarget(const std::string &enumName)
    {
        for (const char *target : kTargetEnums)
            if (enumName == target) return true;
        return false;
    }

    /** Collect enumerator names between offsets [from, to). */
    void
    harvest(const std::string &enumName, const std::string &text,
            std::size_t from, std::size_t to)
    {
        std::set<std::string> &values = enums_[enumName];
        std::size_t cur = from;
        while (cur < to) {
            cur = skipWs(text, cur);
            if (cur >= to) break;
            std::string value = readIdent(text, cur);
            if (!value.empty()) values.insert(value);
            // Skip any "= expr" up to the next comma at depth 0.
            int depth = 0;
            while (cur < to) {
                char c = text[cur];
                if (c == '(' || c == '{') ++depth;
                else if (c == ')' || c == '}') --depth;
                else if (c == ',' && depth == 0) {
                    ++cur;
                    break;
                }
                ++cur;
            }
        }
    }

    void
    checkSwitch(const SourceFile &file, std::size_t kwAt,
                const std::string &text, std::size_t bodyFrom,
                std::size_t bodyTo, std::vector<Finding> &out)
    {
        std::map<std::string, std::set<std::string>> present;
        bool hasDefault = false;
        std::size_t at = bodyFrom;
        while (at < bodyTo) {
            std::size_t caseAt = findToken(text, "case", at);
            std::size_t defAt = findToken(text, "default", at);
            if (defAt != std::string::npos && defAt < bodyTo)
                hasDefault = true;
            if (caseAt == std::string::npos || caseAt >= bodyTo) break;
            std::size_t cur = skipWs(text, caseAt + 4);
            // Parse a qualified id: ident(::ident)*; the enum name is the
            // second-to-last component.
            std::vector<std::string> parts;
            while (cur < bodyTo) {
                std::string part = readIdent(text, cur);
                if (part.empty()) break;
                parts.push_back(part);
                if (cur + 1 < bodyTo && text[cur] == ':' &&
                    text[cur + 1] == ':')
                    cur += 2;
                else
                    break;
            }
            if (parts.size() >= 2)
                present[parts[parts.size() - 2]].insert(parts.back());
            at = caseAt + 4;
        }

        for (const auto &[enumName, values] : present) {
            auto def = enums_.find(enumName);
            if (def == enums_.end()) continue;
            std::string missing;
            for (const std::string &value : def->second)
                if (values.count(value) == 0)
                    missing += (missing.empty() ? "" : ", ") + value;
            if (missing.empty()) continue;
            out.push_back(
                {name(), file.path(), file.lineOfOffset(kwAt),
                 "switch over " + enumName + " is missing: " + missing +
                     (hasDefault ? " (a default: label hides newly added "
                                   "enumerators — enumerate them "
                                   "explicitly)"
                                 : "")});
        }
    }

    std::map<std::string, std::set<std::string>> enums_;
};

} // namespace

std::unique_ptr<Rule>
makeSwitchExhaustiveRule()
{
    return std::make_unique<SwitchExhaustiveRule>();
}

std::vector<std::unique_ptr<Rule>>
makeAllRules()
{
    std::vector<std::unique_ptr<Rule>> rules;
    rules.push_back(makeDeterminismRule());
    rules.push_back(makePairingRule());
    rules.push_back(makeProxyBypassRule());
    rules.push_back(makeSwitchExhaustiveRule());
    rules.push_back(makeFlatMapHotpathRule());
    return rules;
}

} // namespace leaselint
