#ifndef LEASEOS_APP_APP_CONTEXT_H
#define LEASEOS_APP_APP_CONTEXT_H

/**
 * @file
 * Everything an app can reach: system services and environments.
 *
 * The harness Device assembles one AppContext per device; apps keep a
 * reference. The lease manager pointer is null when the device runs the
 * vanilla (no-lease) configuration — apps must treat it as optional, which
 * mirrors real apps running on stock Android.
 */

#include "env/gps_environment.h"
#include "env/motion_model.h"
#include "env/network_environment.h"
#include "env/user_model.h"
#include "os/system_server.h"
#include "power/device_profile.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace leaseos::lease {
class LeaseManagerService;
} // namespace leaseos::lease

namespace leaseos::app {

/**
 * Handle bundle passed to every app.
 */
struct AppContext {
    sim::Simulator &sim;
    power::CpuModel &cpu;
    os::SystemServer &server;
    env::NetworkEnvironment &network;
    env::GpsEnvironment &gpsEnv;
    env::MotionModel &motion;
    env::UserModel &user;
    sim::RandomSource &rng;
    const power::DeviceProfile &profile;
    /** Null when the device runs without LeaseOS. */
    lease::LeaseManagerService *leaseManager = nullptr;

    os::PowerManagerService &powerManager() { return server.powerManager(); }
    os::LocationManagerService &
    locationManager()
    {
        return server.locationManager();
    }
    os::SensorManagerService &sensorManager()
    {
        return server.sensorManager();
    }
    os::WifiManagerService &wifiManager() { return server.wifiManager(); }
    os::DisplayManagerService &
    displayManager()
    {
        return server.displayManager();
    }
    os::AlarmManagerService &alarmManager() { return server.alarmManager(); }
    os::ActivityManagerService &
    activityManager()
    {
        return server.activityManager();
    }
    os::ExceptionNoteHandler &exceptions() { return server.exceptionHandler(); }
    os::AudioSessionService &audioSessions() { return server.audioSessions(); }
    os::BluetoothService &bluetoothService()
    {
        return server.bluetoothService();
    }
    power::AudioModel &audio() { return server.audio(); }
};

} // namespace leaseos::app

#endif // LEASEOS_APP_APP_CONTEXT_H
