#include "sim/logging.h"

#include <iomanip>

namespace leaseos::sim {

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::log(LogLevel level, Time now, const std::string &tag,
            const std::string &message)
{
    static const char *names[] = {"off", "E", "W", "I", "D", "T"};
    auto idx = static_cast<std::size_t>(level);
    std::lock_guard<std::mutex> lock(emitMutex_);
    std::cerr << "[" << std::fixed << std::setprecision(3) << now.seconds()
              << "s][" << names[idx] << "][" << tag << "] " << message
              << "\n";
}

} // namespace leaseos::sim
