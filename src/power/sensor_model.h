#ifndef LEASEOS_POWER_SENSOR_MODEL_H
#define LEASEOS_POWER_SENSOR_MODEL_H

/**
 * @file
 * Sensor hub power model.
 *
 * Sensors draw power while any listener is registered (the TapAndTurn #28
 * bug: "polls sensors even when screen is off"). Each sensor type's draw is
 * split across its registered uids.
 */

#include <array>
#include <utility>
#include <vector>

#include "common/inline_vec.h"
#include "power/component.h"

namespace leaseos::power {

/** Sensor types the simulator models. */
enum class SensorType { Accelerometer, Orientation, Gyroscope, Light };

const char *sensorTypeName(SensorType t);

/**
 * Registration-count-based sensor power model.
 */
class SensorModel : public PowerComponent
{
  public:
    SensorModel(sim::Simulator &sim, EnergyAccountant &accountant,
                const DeviceProfile &profile);

    /** Register one use of @p type by @p uid (counted; may nest). */
    void registerUse(SensorType type, Uid uid);

    /** Drop one use; no-op if the uid has no outstanding registration. */
    void unregisterUse(SensorType type, Uid uid);

    bool active(SensorType type) const;
    std::vector<Uid> users(SensorType type) const;

    /** Power draw of one sensor type from the device profile. */
    double sensorMw(SensorType type) const;

    /** Serialize registrations as a "sensors" section (DESIGN.md §11). */
    void saveState(sim::CheckpointWriter &w) const;
    void restoreState(sim::CheckpointReader &r);

  private:
    /** Registered (uid, count) pairs kept sorted by uid. */
    using UserList = common::InlineVec<std::pair<Uid, int>, 4>;

    void updatePower();

    UserList &
    usersFor(SensorType t)
    {
        return uses_[static_cast<std::size_t>(t)];
    }
    const UserList &
    usersFor(SensorType t) const
    {
        return uses_[static_cast<std::size_t>(t)];
    }

    ChannelId channel_;
    /** Indexed by SensorType; uid-sorted lists keep attribution (and its
        floating-point accumulation order) identical to the old nested
        std::map while making re-registration allocation-free. */
    std::array<UserList, 4> uses_;
};

} // namespace leaseos::power

#endif // LEASEOS_POWER_SENSOR_MODEL_H
