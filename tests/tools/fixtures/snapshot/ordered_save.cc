// Fixture: the clean counterpart of unordered_save.cc — serialization
// walks an ordered std::map plus an install-order vector, so blob bytes
// are a pure function of state. Display path src/power/fix/ordered_save.cc.

#include <cstdint>
#include <map>
#include <vector>

namespace fix {

struct CheckpointWriter;

struct ShareTable {
    std::map<std::int32_t, double> mwByUid;
    std::vector<std::int32_t> uidsInInstallOrder;

    void
    saveState(CheckpointWriter &w) const
    {
        for (const auto &[uid, mw] : mwByUid) {
            (void)uid;
            (void)mw;
        }
        for (std::int32_t uid : uidsInInstallOrder) (void)uid;
    }
};

} // namespace fix
