#include "apps/buggy/riot.h"

// Riot is header-only; this TU anchors the module.
namespace leaseos::apps {
} // namespace leaseos::apps
