/**
 * @file
 * leaselint — protocol lint for the LeaseOS reproduction.
 *
 * Usage:
 *   leaselint [--root DIR] [--rule NAME]... [--jobs N] [--cache-dir DIR]
 *             [--baseline FILE] [--diff-baseline] [--write-baseline FILE]
 *             [--sarif OUT] [--stats] [--list-rules] [--rules-doc]
 *             [PATH...]
 *
 * PATHs are root-relative files or directories (default: src bench
 * examples tools tests). Exits 1 when any unsuppressed finding remains,
 * so CI can gate on it. Suppress a finding in place with
 * `// leaselint: allow(<rule>) -- justification`.
 *
 * Engine flags:
 *   --jobs N           index worker threads (default: hardware
 *                      concurrency); output is byte-identical for any N
 *   --cache-dir DIR    memoize per-file indexes on disk, keyed by
 *                      content hash — warm reruns skip parsing and
 *                      per-file rules for unchanged files
 *   --baseline FILE    baseline file for --diff-baseline (default:
 *                      ROOT/tools/leaselint/baseline.lint)
 *   --diff-baseline    report and gate on NEW findings only (baseline
 *                      entries absorb one finding each)
 *   --write-baseline FILE  write the current findings as the baseline
 *                      and exit 0
 *   --stats            print pass timings and cache hits to stderr
 *   --sarif OUT        write findings as SARIF 2.1.0 (with fix-it hints
 *                      for pairing findings) for code-scanning upload
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "leaselint/baseline.h"
#include "leaselint/driver.h"
#include "leaselint/rules.h"
#include "leaselint/sarif.h"

int
main(int argc, char **argv)
{
    leaselint::LintOptions options;
    std::string sarifPath;
    std::string writeBaselinePath;
    bool stats = false;
    bool defaultPaths = true;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            options.root = argv[++i];
        } else if (arg == "--rule" && i + 1 < argc) {
            options.rules.push_back(argv[++i]);
        } else if (arg == "--jobs" && i + 1 < argc) {
            options.jobs =
                static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--cache-dir" && i + 1 < argc) {
            options.cacheDir = argv[++i];
        } else if (arg == "--baseline" && i + 1 < argc) {
            options.baselinePath = argv[++i];
        } else if (arg == "--diff-baseline") {
            options.diffBaseline = true;
        } else if (arg == "--write-baseline" && i + 1 < argc) {
            writeBaselinePath = argv[++i];
        } else if (arg == "--sarif" && i + 1 < argc) {
            sarifPath = argv[++i];
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--list-rules") {
            for (const auto &rule : leaselint::allRules())
                std::cout << rule.name << ": " << rule.description << "\n";
            return 0;
        } else if (arg == "--rules-doc") {
            std::cout << leaselint::renderRulesMarkdown();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: leaselint [--root DIR] [--rule NAME]... "
                   "[--jobs N] [--cache-dir DIR] [--baseline FILE] "
                   "[--diff-baseline] [--write-baseline FILE] "
                   "[--sarif OUT] [--stats] [--list-rules] [PATH...]\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "leaselint: unknown option " << arg << "\n";
            return 2;
        } else {
            if (defaultPaths) {
                options.paths.clear();
                defaultPaths = false;
            }
            options.paths.push_back(arg);
        }
    }

    for (const std::string &rule : options.rules) {
        if (!leaselint::isKnownRule(rule)) {
            std::cerr << "leaselint: unknown rule " << rule
                      << " (see --list-rules)\n";
            return 2;
        }
    }

    leaselint::LintReport report = leaselint::runLint(options);

    if (!writeBaselinePath.empty()) {
        std::ofstream out(writeBaselinePath, std::ios::binary);
        if (!out) {
            std::cerr << "leaselint: cannot write " << writeBaselinePath
                      << "\n";
            return 2;
        }
        out << leaselint::renderBaseline(report.findings);
        std::cerr << "leaselint: wrote " << report.findings.size()
                  << " baseline entr"
                  << (report.findings.size() == 1 ? "y" : "ies") << " to "
                  << writeBaselinePath << "\n";
        return 0;
    }

    for (const auto &finding : report.findings)
        std::cout << leaselint::formatFinding(finding) << "\n";
    if (!sarifPath.empty() && !leaselint::writeSarif(report, sarifPath)) {
        std::cerr << "leaselint: cannot write " << sarifPath << "\n";
        return 2;
    }
    std::cerr << "leaselint: " << report.filesScanned << " files, "
              << report.findings.size() << " finding(s), "
              << report.suppressed << " suppressed";
    if (options.diffBaseline)
        std::cerr << ", " << report.baselineMatched << " baselined";
    std::cerr << "\n";
    if (stats) {
        std::cerr << "leaselint: index " << report.indexMillis
                  << " ms (cache hits " << report.cacheHits << "/"
                  << report.filesScanned << "), link " << report.linkMillis
                  << " ms\n";
    }
    return report.findings.empty() ? 0 : 1;
}
