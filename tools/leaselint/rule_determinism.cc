/**
 * @file
 * determinism: flag constructs that make simulation output depend on
 * anything but the seed.
 *
 * Scope: src/ and bench/ (the simulator library and the bench binaries
 * whose stdout is diffed byte-for-byte across job counts). Two classes:
 *
 *  - wall-clock and ambient randomness (std::chrono clocks, rand(),
 *    std::random_device, gettimeofday, ...): virtual time must come from
 *    sim::Simulator and randomness from the seeded sim::RandomSource;
 *  - std::unordered_* containers: their iteration order is unspecified
 *    and varies across libstdc++ versions and ASLR, so any loop over one
 *    can leak ordering into metrics, logs, or sink output (cf. the
 *    event-queue audit in src/sim/event_queue.h).
 */

#include "leaselint/rules.h"

namespace leaselint {

namespace {

struct BannedToken {
    const char *token;
    const char *why;
};

constexpr BannedToken kClockTokens[] = {
    {"rand", "ambient RNG; use the seeded sim::RandomSource"},
    {"srand", "ambient RNG; use the seeded sim::RandomSource"},
    {"drand48", "ambient RNG; use the seeded sim::RandomSource"},
    {"random_device", "nondeterministic seed source; thread the run seed "
                      "through instead"},
    {"system_clock", "wall clock; use sim::Simulator::now()"},
    {"steady_clock", "wall clock; use sim::Simulator::now()"},
    {"high_resolution_clock", "wall clock; use sim::Simulator::now()"},
    {"gettimeofday", "wall clock; use sim::Simulator::now()"},
    {"clock_gettime", "wall clock; use sim::Simulator::now()"},
    {"localtime", "wall-clock formatting; derive labels from sim time"},
    {"gmtime", "wall-clock formatting; derive labels from sim time"},
};

constexpr const char *kUnorderedTokens[] = {
    "unordered_map",
    "unordered_set",
    "unordered_multimap",
    "unordered_multiset",
};

} // namespace

void
checkDeterminism(const SourceFile &file, std::vector<Finding> &out)
{
    if (!underDir(file.path(), "src") && !underDir(file.path(), "bench"))
        return;
    for (std::size_t line = 1; line <= file.lineCount(); ++line) {
        const std::string &code = file.codeLine(line);
        // Preprocessor lines (#include <unordered_map> etc.) are not
        // uses; the declaration/call site carries the finding.
        std::size_t first = code.find_first_not_of(" \t");
        if (first != std::string::npos && code[first] == '#') continue;
        for (const auto &banned : kClockTokens) {
            if (findToken(code, banned.token) != std::string::npos) {
                out.push_back({"determinism", file.path(), line,
                               std::string(banned.token) + ": " +
                                   banned.why});
            }
        }
        for (const char *container : kUnorderedTokens) {
            if (findToken(code, container) != std::string::npos) {
                out.push_back(
                    {"determinism", file.path(), line,
                     std::string("std::") + container +
                         ": iteration order is unspecified and can "
                         "leak into results; use an ordered container "
                         "or suppress with a justification"});
            }
        }
    }
}

} // namespace leaselint
