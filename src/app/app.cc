#include "app/app.h"

// App is header-only; this TU anchors the module in the build.
namespace leaseos::app {
} // namespace leaseos::app
