#ifndef LEASEOS_LEASE_PROXIES_AUDIO_PROXY_H
#define LEASEOS_LEASE_PROXIES_AUDIO_PROXY_H

/**
 * @file
 * Lease proxy for audio sessions.
 *
 * The §1 motivating bug (Facebook iOS leaking audio sessions and "doing
 * nothing but staying awake") is a textbook Long-Holding on the audio
 * resource: session open, nothing audible. Usage = audible playback
 * time; audible output is also strong generic utility (§3.3's Table 1
 * lists audio among the leasable resources).
 */

#include <map>

#include "lease/lease_proxy.h"
#include "os/activity_manager_service.h"
#include "os/audio_session_service.h"

namespace leaseos::lease {

/**
 * Audio-session lease proxy.
 */
class AudioLeaseProxy : public LeaseProxy
{
  public:
    AudioLeaseProxy(os::AudioSessionService &audio,
                    os::ActivityManagerService &am);

    void onExpire(const Lease &lease) override;
    void onRenew(const Lease &lease) override;
    bool resourceHeld(const Lease &lease) override;
    void beginTerm(const Lease &lease) override;
    LeaseStat collectStat(const Lease &lease) override;

  private:
    struct Snapshot {
        double openSeconds = 0.0;
        double playingSeconds = 0.0;
        std::uint64_t uiUpdates = 0;
        std::uint64_t interactions = 0;
    };

    Snapshot snapshot(const Lease &lease);

    os::AudioSessionService &audio_;
    os::ActivityManagerService &am_;
    std::map<LeaseId, Snapshot> snapshots_;
};

} // namespace leaseos::lease

#endif // LEASEOS_LEASE_PROXIES_AUDIO_PROXY_H
