#ifndef LEASEOS_ENV_GPS_ENVIRONMENT_H
#define LEASEOS_ENV_GPS_ENVIRONMENT_H

/**
 * @file
 * Sky-view and device-movement environment for GPS.
 *
 * "Inside a building with weak GPS signals" (the BetterWeather trigger) is
 * setSignalGood(false). Device movement is a piecewise-constant velocity
 * model; LocationManagerService reads positionAt() for fixes and distance.
 */

#include "common/geo.h"
#include "power/gps_model.h"
#include "sim/simulator.h"

namespace leaseos::env {

/**
 * Drives GpsModel signal state and provides ground-truth position.
 */
class GpsEnvironment
{
  public:
    GpsEnvironment(sim::Simulator &sim, power::GpsModel &gps)
        : sim_(sim), gps_(gps) {}

    /** Sky view: false models indoors / urban canyon. */
    void
    setSignalGood(bool good)
    {
        gps_.setSignalGood(good);
        signalGood_ = good;
    }

    bool signalGood() const { return signalGood_; }

    /** Change the device velocity (m/s east, m/s north) from now on. */
    void
    setVelocity(double vx, double vy)
    {
        anchor_ = positionAt(sim_.now());
        anchorTime_ = sim_.now();
        vx_ = vx;
        vy_ = vy;
    }

    /** Ground-truth position at @p t (>= the last velocity change). */
    GeoPoint
    positionAt(sim::Time t) const
    {
        double dt = (t - anchorTime_).seconds();
        return GeoPoint{anchor_.x + vx_ * dt, anchor_.y + vy_ * dt};
    }

  private:
    sim::Simulator &sim_;
    power::GpsModel &gps_;
    bool signalGood_ = true;
    GeoPoint anchor_;
    sim::Time anchorTime_;
    double vx_ = 0.0;
    double vy_ = 0.0;
};

} // namespace leaseos::env

#endif // LEASEOS_ENV_GPS_ENVIRONMENT_H
