#ifndef LEASEOS_APPS_BUGGY_BETTER_WEATHER_H
#define LEASEOS_APPS_BUGGY_BETTER_WEATHER_H

/**
 * @file
 * BetterWeather model (Case III, §2.1; Fig. 1; Table 5 row).
 *
 * Issue #6: "high battery drain with no gps lock". requestLocation keeps
 * searching for GPS non-stop when the device cannot get a lock (indoors).
 * Each attempt requests updates, waits, times out, and immediately
 * re-requests → Frequent-Ask: ~60 % of every minute spent asking with a
 * near-zero success ratio (Fig. 1).
 */

#include <cstdint>

#include "app/app.h"
#include "os/binder.h"
#include "os/location_manager_service.h"

namespace leaseos::apps {

/**
 * Buggy BetterWeather widget.
 */
class BetterWeather : public app::App, private os::LocationListener
{
  public:
    BetterWeather(app::AppContext &ctx, Uid uid);

    void start() override;
    void stop() override;

    std::uint64_t weatherUpdates() const { return updates_; }

  private:
    void requestLocation();
    void onRequestTimeout(std::uint64_t attempt);
    void onLocation(const GeoPoint &point) override;

    /** How long one GPS attempt waits before giving up. */
    static constexpr sim::Time kAttemptTimeout =
        sim::Time::fromSeconds(40.0);

    /** Think-time between attempts (jittered). */
    static constexpr sim::Time kRetryGap = sim::Time::fromSeconds(20.0);

    os::TokenId request_ = os::kInvalidToken;
    std::uint64_t attempt_ = 0;
    std::uint64_t updates_ = 0;
    bool stopped_ = false;
};

} // namespace leaseos::apps

#endif // LEASEOS_APPS_BUGGY_BETTER_WEATHER_H
