/**
 * @file
 * Reproduces Figure 3: buggy Kontalk's wakelock holding time and the
 * CPU-usage-to-wakelock-time ratio on two phones (Nexus 6 and Galaxy S4).
 *
 * Expected shape: the wakelock is held essentially the whole time on both
 * phones (acquire-in-onCreate bug) while the utilisation ratio stays in
 * the sub-1 % range — the ultralow-utilisation signature that is
 * consistent across ecosystems (§2.3).
 */

#include <iostream>

#include "apps/buggy/kontalk.h"
#include "harness/device.h"
#include "harness/figure.h"
#include "harness/metrics.h"
#include "harness/table.h"

using namespace leaseos;
using sim::operator""_s;
using sim::operator""_min;

namespace {

struct PhoneRun {
    double meanHold = 0.0;
    double meanRatio = 0.0;
    std::string figure;
};

PhoneRun
runOn(const power::DeviceProfile &profile)
{
    harness::DeviceConfig cfg;
    cfg.profile = profile;
    harness::Device device(cfg);

    auto &app = device.install<apps::Kontalk>();
    Uid uid = app.uid();
    auto &pms = device.server().powerManager();
    auto &cpu = device.cpu();

    harness::MetricsSampler sampler(device.simulator(), 60_s);
    sampler.addDeltaGauge("wakelock_holding_s",
                          [&] { return pms.heldSeconds(uid); });
    sampler.addDeltaGauge("cpu_usage_s",
                          [&] { return cpu.cpuSeconds(uid); });
    sampler.start();

    device.start();
    device.runFor(60_min);

    PhoneRun result;
    result.meanHold = sampler.series("wakelock_holding_s").mean();
    double cpu_mean = sampler.series("cpu_usage_s").mean();
    result.meanRatio =
        result.meanHold > 0.0 ? cpu_mean / result.meanHold : 0.0;
    result.figure = harness::seriesFigure(
        {&sampler.series("wakelock_holding_s"),
         &sampler.series("cpu_usage_s")});
    return result;
}

} // namespace

int
main()
{
    std::cout << harness::figureHeader(
        "Figure 3",
        "Buggy Kontalk: wakelock holding time and CPU/wakelock ratio on "
        "Nexus 6 and Galaxy S4. Paper shape: full-interval holds, "
        "utilisation ratio ~0.005 on both phones.");

    PhoneRun nexus = runOn(power::profiles::nexus6());
    std::cout << "--- (a) Nexus 6 ---\n" << nexus.figure << "\n";
    PhoneRun samsung = runOn(power::profiles::galaxyS4());
    std::cout << "--- (b) Galaxy S4 ---\n" << samsung.figure << "\n";

    harness::TextTable summary(
        {"Phone", "mean hold (s/60s)", "CPU/WL ratio"});
    summary.addRow({"Nexus 6", harness::TextTable::fmt(nexus.meanHold),
                    harness::TextTable::fmt(nexus.meanRatio, 4)});
    summary.addRow({"Galaxy S4",
                    harness::TextTable::fmt(samsung.meanHold),
                    harness::TextTable::fmt(samsung.meanRatio, 4)});
    std::cout << summary.toString();
    std::cout << "\nultralow utilisation (<1%) on both phones: "
              << (nexus.meanRatio < 0.01 && samsung.meanRatio < 0.01
                      ? "yes"
                      : "NO")
              << "\n";
    return 0;
}
