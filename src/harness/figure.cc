#include "harness/figure.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace leaseos::harness {

std::string
figureHeader(const std::string &id, const std::string &caption)
{
    std::ostringstream os;
    os << "\n==== " << id << " ====\n" << caption << "\n\n";
    return os.str();
}

std::string
barChart(const std::vector<std::pair<std::string, double>> &bars,
         const std::string &unit, double scaleMax)
{
    double peak = scaleMax;
    std::size_t label_width = 0;
    for (const auto &[label, value] : bars) {
        peak = std::max(peak, value);
        label_width = std::max(label_width, label.size());
    }
    if (peak <= 0.0) peak = 1.0;

    std::ostringstream os;
    for (const auto &[label, value] : bars) {
        auto blocks =
            static_cast<std::size_t>(46.0 * std::max(0.0, value) / peak);
        os << std::left << std::setw(static_cast<int>(label_width) + 2)
           << label << std::string(blocks, '#') << " " << std::fixed
           << std::setprecision(2) << value << " " << unit << "\n";
    }
    return os.str();
}

std::string
seriesFigure(const std::vector<const sim::TimeSeries *> &series,
             const std::string &timeUnit)
{
    return sim::renderSeriesTable(series, timeUnit);
}

} // namespace leaseos::harness
