#include "metricsdiff/metricsdiff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/minijson.h"

namespace leaseos::metricsdiff {

namespace {

/** One flattened row: ordered (name, value) numeric cells + text cells. */
struct Row {
    std::string key;
    std::vector<std::pair<std::string, double>> numbers;
    std::vector<std::pair<std::string, std::string>> texts;
};

struct Document {
    std::vector<Row> rows;
    std::string error;
    bool ok() const { return error.empty(); }
};

void
flattenObjectRow(const minijson::Value &obj, Row &row)
{
    for (const auto &[name, value] : obj.object) {
        if (value.isNumber())
            row.numbers.emplace_back(name, value.number);
        else if (value.isString())
            row.texts.emplace_back(name, value.raw);
        // nested arrays/objects/bools are outside the metric model
    }
}

Document
extractRows(const minijson::Value &doc, const Options &options)
{
    Document out;
    if (!doc.isObject()) {
        out.error = "document is not a JSON object";
        return out;
    }
    const minijson::Value *rows = doc.find("rows");
    if (rows && rows->isArray()) {
        // JsonSink document. Pick the key column: --key, else the first
        // string-valued cell of the first row (e.g. "workload", "group").
        std::string keyColumn = options.keyColumn;
        if (keyColumn.empty() && !rows->array.empty()) {
            for (const auto &[name, value] : rows->array[0].object) {
                if (value.isString()) {
                    keyColumn = name;
                    break;
                }
            }
        }
        std::map<std::string, int> seen;
        for (std::size_t i = 0; i < rows->array.size(); ++i) {
            const minijson::Value &rowObj = rows->array[i];
            if (!rowObj.isObject()) {
                std::ostringstream err;
                err << "rows[" << i << "] is not an object";
                out.error = err.str();
                return out;
            }
            Row row;
            if (const minijson::Value *key = rowObj.find(keyColumn);
                key && key->isString()) {
                row.key = key->raw;
            } else {
                std::ostringstream fallback;
                fallback << "row#" << i;
                row.key = fallback.str();
            }
            // Duplicate keys stay distinct (#2, #3, ...), so repeated
            // groups in a table still pair up positionally by key.
            int n = ++seen[row.key];
            if (n > 1) {
                std::ostringstream suffixed;
                suffixed << row.key << "#" << n;
                row.key = suffixed.str();
            }
            flattenObjectRow(rowObj, row);
            out.rows.push_back(std::move(row));
        }
        return out;
    }
    // Flight record / snapshot: the "metrics" object, else the document's
    // own numeric members.
    const minijson::Value *metrics = doc.find("metrics");
    Row row;
    flattenObjectRow(metrics && metrics->isObject() ? *metrics : doc, row);
    if (row.numbers.empty()) {
        out.error = "no numeric metrics found (expected a JsonSink "
                    "\"rows\" table, a \"metrics\" object, or a flat "
                    "object of numbers)";
        return out;
    }
    row.texts.clear(); // headers like "bench"/"caption" are not metrics
    out.rows.push_back(std::move(row));
    return out;
}

const Row *
findRow(const std::vector<Row> &rows, const std::string &key)
{
    for (const Row &row : rows)
        if (row.key == key) return &row;
    return nullptr;
}

double
relativeError(double a, double b)
{
    const double scale = std::max(std::fabs(a), std::fabs(b));
    if (scale == 0.0) return 0.0;
    return std::fabs(a - b) / scale;
}

void
writeJsonString(const std::string &s, std::ostream &out)
{
    out << '"';
    for (char c : s) {
        switch (c) {
        case '"': out << "\\\""; break;
        case '\\': out << "\\\\"; break;
        case '\n': out << "\\n"; break;
        case '\t': out << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out << buf;
            } else {
                out << c;
            }
        }
    }
    out << '"';
}

} // namespace

std::string
Finding::toString() const
{
    std::ostringstream out;
    out << (gating ? "FAIL" : "note") << " ";
    if (!row.empty()) out << row << ".";
    out << metric << " [" << kind << "]";
    if (kind == "out-of-tolerance" || kind == "drift") {
        out << ": " << a << " -> " << b << " (rel err " << relErr
            << ", tol " << tolerance << ")";
    } else if (kind == "missing-row" || kind == "missing-metric") {
        out << ": present in only one document";
    } else if (kind == "text-mismatch") {
        out << ": values differ";
    }
    return out.str();
}

DiffReport
diffDocuments(const minijson::Value &a, const minijson::Value &b,
              const Options &options)
{
    DiffReport report;
    Document docA = extractRows(a, options);
    Document docB = extractRows(b, options);
    if (!docA.ok() || !docB.ok()) {
        report.error = !docA.ok() ? "a: " + docA.error : "b: " + docB.error;
        return report;
    }

    std::vector<Finding> gating, info;
    auto emit = [&](Finding finding) {
        (finding.gating ? gating : info).push_back(std::move(finding));
    };

    auto toleranceFor = [&](const std::string &metric) {
        auto it = options.relTol.find(metric);
        return it == options.relTol.end() ? options.defaultRelTol
                                          : it->second;
    };

    for (const Row &rowA : docA.rows) {
        const Row *rowB = findRow(docB.rows, rowA.key);
        if (!rowB) {
            Finding f;
            f.row = rowA.key;
            f.metric = "*";
            f.kind = "missing-row";
            f.gating = true;
            emit(std::move(f));
            continue;
        }
        ++report.rowsCompared;
        for (const auto &[metric, valueA] : rowA.numbers) {
            Finding f;
            f.row = docA.rows.size() == 1 && rowA.key.empty() ? ""
                                                              : rowA.key;
            f.metric = metric;
            f.a = valueA;
            f.tolerance = toleranceFor(metric);
            const bool reportOnly = options.reportOnly.count(metric) != 0;
            auto it = std::find_if(
                rowB->numbers.begin(), rowB->numbers.end(),
                [&](const auto &cell) { return cell.first == metric; });
            if (it == rowB->numbers.end()) {
                f.kind = "missing-metric";
                f.gating = !reportOnly;
                emit(std::move(f));
                continue;
            }
            ++report.metricsCompared;
            f.b = it->second;
            f.relErr = relativeError(valueA, it->second);
            if (f.relErr == 0.0) continue; // identical: no finding
            if (f.relErr > f.tolerance && !reportOnly) {
                f.kind = "out-of-tolerance";
                f.gating = true;
            } else {
                f.kind = "drift";
                f.gating = false;
            }
            emit(std::move(f));
        }
        // Extra metrics on the B side only: schema grew — gate so the
        // baseline gets refreshed deliberately.
        for (const auto &[metric, valueB] : rowB->numbers) {
            bool inA = std::any_of(
                rowA.numbers.begin(), rowA.numbers.end(),
                [&](const auto &cell) { return cell.first == metric; });
            if (inA) continue;
            Finding f;
            f.row = rowA.key;
            f.metric = metric;
            f.b = valueB;
            f.kind = "missing-metric";
            f.gating = options.reportOnly.count(metric) == 0;
            emit(std::move(f));
        }
        for (const auto &[name, textA] : rowA.texts) {
            if (name == options.keyColumn) continue;
            auto it = std::find_if(
                rowB->texts.begin(), rowB->texts.end(),
                [&](const auto &cell) { return cell.first == name; });
            if (it != rowB->texts.end() && it->second != textA) {
                Finding f;
                f.row = rowA.key;
                f.metric = name;
                f.kind = "text-mismatch";
                f.gating = false; // labels/captions are informational
                emit(std::move(f));
            }
        }
    }
    for (const Row &rowB : docB.rows) {
        if (findRow(docA.rows, rowB.key)) continue;
        Finding f;
        f.row = rowB.key;
        f.metric = "*";
        f.kind = "missing-row";
        f.gating = true;
        emit(std::move(f));
    }

    report.pass = gating.empty();
    report.findings = std::move(gating);
    report.findings.insert(report.findings.end(), info.begin(), info.end());
    return report;
}

DiffReport
diffFiles(const std::string &pathA, const std::string &pathB,
          const Options &options)
{
    DiffReport report;
    auto load = [&](const std::string &path, minijson::Value &out) {
        std::ifstream in(path, std::ios::binary);
        if (!in.good()) {
            report.error = "cannot open " + path;
            return false;
        }
        std::ostringstream whole;
        whole << in.rdbuf();
        minijson::ParseResult parsed = minijson::parse(whole.str());
        if (!parsed.ok()) {
            std::ostringstream err;
            err << path << ": parse error (line " << parsed.line
                << "): " << parsed.error;
            report.error = err.str();
            return false;
        }
        out = std::move(parsed.value);
        return true;
    };
    minijson::Value a, b;
    if (!load(pathA, a) || !load(pathB, b)) return report;
    return diffDocuments(a, b, options);
}

std::string
renderVerdictJson(const DiffReport &report, const std::string &pathA,
                  const std::string &pathB)
{
    std::ostringstream out;
    out << "{\"verdict\":\""
        << (!report.ok() ? "error" : report.pass ? "pass" : "fail")
        << "\",\"a\":";
    writeJsonString(pathA, out);
    out << ",\"b\":";
    writeJsonString(pathB, out);
    if (!report.ok()) {
        out << ",\"error\":";
        writeJsonString(report.error, out);
        out << "}\n";
        return out.str();
    }
    out << ",\"rows_compared\":" << report.rowsCompared
        << ",\"metrics_compared\":" << report.metricsCompared
        << ",\"findings\":[";
    bool first = true;
    for (const Finding &f : report.findings) {
        if (!first) out << ',';
        first = false;
        out << "\n{\"row\":";
        writeJsonString(f.row, out);
        out << ",\"metric\":";
        writeJsonString(f.metric, out);
        out << ",\"kind\":";
        writeJsonString(f.kind, out);
        char nums[160];
        std::snprintf(nums, sizeof nums,
                      ",\"a\":%.17g,\"b\":%.17g,\"rel_err\":%.17g"
                      ",\"tolerance\":%.17g,\"gating\":%s}",
                      f.a, f.b, f.relErr, f.tolerance,
                      f.gating ? "true" : "false");
        out << nums;
    }
    out << "\n]}\n";
    return out.str();
}

} // namespace leaseos::metricsdiff
