/**
 * @file
 * Round-trip tests for the trace exporters: emit a known event sequence,
 * export, parse the text back, and verify count, order, and field values.
 * The Chrome exporter's document structure (traceEvents array of instant
 * events) is validated so the artifact stays loadable in Perfetto.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "obs/trace_export.h"
#include "sim/time.h"

namespace leaseos::obs {
namespace {

using sim::Time;

void
fillSample(TraceBuffer &buf)
{
    buf.emit(Time::fromSeconds(1.0), TraceCategory::Lease,
             TraceCode::LeaseCreated, 10001, 42, 3);
    buf.emit(Time::fromSeconds(2.5), TraceCategory::Proxy,
             TraceCode::ProxyDeny, 10002, 43);
    buf.emit(Time::fromMillis(2600), TraceCategory::Utility,
             TraceCode::UtilityCharge, 10001, 42,
             payloadFromDouble(0.75));
}

/** Pull `"key":<number>` out of a JSON line (no quotes around value). */
long long
numField(const std::string &line, const std::string &key)
{
    std::size_t at = line.find("\"" + key + "\":");
    EXPECT_NE(at, std::string::npos) << key << " in " << line;
    return std::stoll(line.substr(at + key.size() + 3));
}

/** Pull `"key":"text"` out of a JSON line. */
std::string
strField(const std::string &line, const std::string &key)
{
    std::size_t at = line.find("\"" + key + "\":\"");
    EXPECT_NE(at, std::string::npos) << key << " in " << line;
    std::size_t begin = at + key.size() + 4;
    return line.substr(begin, line.find('"', begin) - begin);
}

TEST(TraceExportTest, JsonLinesRoundTrip)
{
    TraceBuffer buf(16);
    fillSample(buf);
    std::ostringstream os;
    writeJsonLines(buf, os);

    std::vector<std::string> lines;
    std::istringstream is(os.str());
    for (std::string line; std::getline(is, line);) lines.push_back(line);
    ASSERT_EQ(lines.size(), buf.size());

    // Event 0: fields survive the round trip.
    EXPECT_EQ(numField(lines[0], "t"), 1'000'000'000LL);
    EXPECT_EQ(strField(lines[0], "cat"), "lease");
    EXPECT_EQ(strField(lines[0], "ev"), "lease_created");
    EXPECT_EQ(numField(lines[0], "uid"), 10001);
    EXPECT_EQ(numField(lines[0], "lease"), 42);
    EXPECT_EQ(numField(lines[0], "payload"), 3);

    // Order is oldest-first and categories/codes match the emit sequence.
    EXPECT_EQ(strField(lines[1], "ev"), "deny");
    EXPECT_EQ(strField(lines[2], "ev"), "utility_charge");
    EXPECT_DOUBLE_EQ(
        payloadToDouble(static_cast<std::uint64_t>(
            numField(lines[2], "payload"))),
        0.75);
}

TEST(TraceExportTest, ChromeTraceDocumentShape)
{
    TraceBuffer buf(16);
    fillSample(buf);
    std::ostringstream os;
    writeChromeTrace(buf, os);
    std::string doc = os.str();

    // Document wrapper.
    EXPECT_EQ(doc.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(doc.find("],\"displayTimeUnit\":\"ms\"}"), std::string::npos);

    // One instant event per retained trace event.
    std::size_t count = 0;
    for (std::size_t at = doc.find("\"ph\":\"i\""); at != std::string::npos;
         at = doc.find("\"ph\":\"i\"", at + 1))
        ++count;
    EXPECT_EQ(count, buf.size());

    // ts is microseconds: 1 s → 1000000.000, tid is the uid.
    EXPECT_NE(doc.find("\"ts\":1000000.000"), std::string::npos);
    EXPECT_NE(doc.find("\"tid\":10001"), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"lease_created\""), std::string::npos);
    EXPECT_NE(doc.find("\"cat\":\"lease\""), std::string::npos);
    EXPECT_NE(doc.find("\"args\":{\"lease\":42,\"payload\":3}"),
              std::string::npos);
}

TEST(TraceExportTest, FileExtensionSelectsFormat)
{
    TraceBuffer buf(16);
    fillSample(buf);
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "leaseos_trace_test";
    std::filesystem::create_directories(dir);

    std::string jsonl = (dir / "t.jsonl").string();
    std::string chrome = (dir / "t.json").string();
    ASSERT_TRUE(writeTraceFile(buf, jsonl));
    ASSERT_TRUE(writeTraceFile(buf, chrome));

    auto slurp = [](const std::string &p) {
        std::ifstream in(p);
        std::ostringstream os;
        os << in.rdbuf();
        return os.str();
    };
    EXPECT_EQ(slurp(jsonl).rfind("{\"t\":", 0), 0u);
    EXPECT_EQ(slurp(chrome).rfind("{\"traceEvents\":[", 0), 0u);

    EXPECT_FALSE(writeTraceFile(buf, (dir / "no/such/dir/t.jsonl")
                                         .string()));
    std::filesystem::remove_all(dir);
}

TEST(TraceExportTest, WrappedRingExportsOldestFirst)
{
    // Regression guard for the ring-wrap export order: fill well past
    // capacity and verify the export starts at the oldest *retained*
    // event (emitted - capacity), not at ring slot 0, and stays in
    // emission order throughout.
    constexpr std::size_t kCapacity = 8;
    constexpr std::uint64_t kEmitted = 3 * kCapacity + 5; // 29: mid-slot
    TraceBuffer buf(kCapacity);
    for (std::uint64_t i = 0; i < kEmitted; ++i)
        buf.emit(Time::fromNanos(static_cast<std::int64_t>(1000 + i)),
                 TraceCategory::Queue, TraceCode::QueueFire, 1,
                 /*leaseId=*/i);
    ASSERT_EQ(buf.size(), kCapacity);
    EXPECT_EQ(buf.emitted(), kEmitted);
    EXPECT_EQ(buf.dropped(), kEmitted - kCapacity);

    std::ostringstream os;
    writeJsonLines(buf, os);
    std::vector<std::string> lines;
    std::istringstream is(os.str());
    for (std::string line; std::getline(is, line);) lines.push_back(line);
    ASSERT_EQ(lines.size(), kCapacity);
    for (std::size_t i = 0; i < kCapacity; ++i) {
        const std::uint64_t expected = kEmitted - kCapacity + i;
        EXPECT_EQ(static_cast<std::uint64_t>(numField(lines[i], "lease")),
                  expected)
            << "line " << i << ": " << lines[i];
        EXPECT_EQ(numField(lines[i], "t"),
                  static_cast<long long>(1000 + expected));
    }

    // Exactly-full (emitted == capacity) is the wrap boundary: slot 0
    // still holds the oldest event.
    TraceBuffer exact(kCapacity);
    for (std::uint64_t i = 0; i < kCapacity; ++i)
        exact.emit(Time::fromNanos(static_cast<std::int64_t>(i)),
                   TraceCategory::Queue, TraceCode::QueueFire, 1, i);
    EXPECT_EQ(exact.dropped(), 0u);
    EXPECT_EQ(exact.event(0).leaseId, 0u);
    EXPECT_EQ(exact.event(kCapacity - 1).leaseId, kCapacity - 1);
    // One more emission drops exactly event 0.
    exact.emit(Time::fromNanos(static_cast<std::int64_t>(kCapacity)),
               TraceCategory::Queue, TraceCode::QueueFire, 1, kCapacity);
    EXPECT_EQ(exact.dropped(), 1u);
    EXPECT_EQ(exact.event(0).leaseId, 1u);
}

TEST(TraceExportTest, ChromeTsFormatsFirstMillisecondEvents)
{
    // ts is microseconds with the nanosecond remainder in a zero-padded
    // 3-digit fraction; events inside the first millisecond (and first
    // microsecond) must not lose their leading zeros.
    TraceBuffer buf(8);
    buf.emit(Time::fromNanos(5), TraceCategory::Lease,
             TraceCode::LeaseCreated, 1, 1);      // 0.005 us
    buf.emit(Time::fromNanos(980), TraceCategory::Lease,
             TraceCode::LeaseToInactive, 1, 1);   // 0.980 us
    buf.emit(Time::fromNanos(12'345), TraceCategory::Lease,
             TraceCode::LeaseToActive, 1, 1);     // 12.345 us
    std::ostringstream os;
    writeChromeTrace(buf, os);
    std::string doc = os.str();
    EXPECT_NE(doc.find("\"ts\":0.005"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"ts\":0.980"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"ts\":12.345"), std::string::npos) << doc;
}

TEST(TraceExportTest, EmptyBufferExportsEmptyDocuments)
{
    TraceBuffer buf(4);
    std::ostringstream jsonl;
    writeJsonLines(buf, jsonl);
    EXPECT_TRUE(jsonl.str().empty());

    std::ostringstream chrome;
    writeChromeTrace(buf, chrome);
    EXPECT_EQ(chrome.str(),
              "{\"traceEvents\":[\n\n],\"displayTimeUnit\":\"ms\"}\n");
}

} // namespace
} // namespace leaseos::obs
