#ifndef LEASEOS_TESTS_OS_FIXTURE_H
#define LEASEOS_TESTS_OS_FIXTURE_H

/**
 * @file
 * Shared fixture assembling hardware models + SystemServer for OS tests.
 */

#include <gtest/gtest.h>

#include "os/system_server.h"
#include "power/battery.h"

namespace leaseos::os::testing {

struct OsFixture : ::testing::Test {
    sim::Simulator sim;
    power::DeviceProfile profile = power::profiles::pixelXl();
    power::EnergyAccountant acc{sim};
    power::CpuModel cpu{sim, acc, profile};
    power::ScreenModel screen{sim, acc, profile};
    power::GpsModel gps{sim, acc, profile};
    power::RadioModel radio{sim, acc, profile};
    power::SensorModel sensors{sim, acc, profile};
    power::AudioModel audio{sim, acc, profile};
    power::BluetoothModel bluetooth{sim, acc, profile};
    SystemServer server{sim,     cpu,   screen, gps,       radio,
                        sensors, audio, bluetooth, acc};

    static constexpr Uid kApp = kFirstAppUid;
    static constexpr Uid kApp2 = kFirstAppUid + 1;
};

} // namespace leaseos::os::testing

#endif // LEASEOS_TESTS_OS_FIXTURE_H
