#ifndef LEASEOS_HARNESS_STUDY_MISBEHAVIOR_STUDY_H
#define LEASEOS_HARNESS_STUDY_MISBEHAVIOR_STUDY_H

/**
 * @file
 * The §2.5 study of 109 real-world energy-misbehaviour cases in 81 apps.
 *
 * The paper's raw issue list is not published; the corpus here encodes the
 * per-case records consistent with Table 2's published marginals (case
 * type × root cause), with synthesized app identifiers drawn from the
 * study's population size. Table 2 is then *recomputed* from the corpus,
 * as are the two findings (prevalence; bug-share of FAB/LHB/LUB vs EUB).
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace leaseos::harness::study {

/** Case type — the §2.4 classes plus unresolved. */
enum class CaseType { FAB, LHB, LUB, EUB, Unknown };

/** Root cause category (§2.5). */
enum class RootCause { Bug, Configuration, Enhancement, Unknown };

const char *caseTypeName(CaseType t);
const char *rootCauseName(RootCause c);

/** One studied issue. */
struct StudyCase {
    std::string app;
    std::string source; ///< github / googlecode / forum
    CaseType type;
    RootCause cause;
};

/** The encoded corpus (109 cases, 81 apps). */
const std::vector<StudyCase> &corpus();

/** Count matrix: type → cause → cases. */
std::map<CaseType, std::map<RootCause, int>> summarize();

/** Number of distinct apps in the corpus. */
int distinctApps();

/** Finding 1: share of cases that are FAB+LHB+LUB, and EUB (percent). */
struct Finding1 {
    double defectSharePct;  ///< FAB+LHB+LUB
    double eubSharePct;
};
Finding1 finding1();

/** Finding 2: bug-share within FAB/LHB/LUB and non-bug share within EUB. */
struct Finding2 {
    double defectBugSharePct;   ///< ~80 %
    double eubNonBugSharePct;   ///< ~77 %
};
Finding2 finding2();

} // namespace leaseos::harness::study

#endif // LEASEOS_HARNESS_STUDY_MISBEHAVIOR_STUDY_H
