// Fixture: MetricRegistry registration in a function with no observed
// callers — assumed reachable from hot paths, must be flagged. Display
// path src/obs/fix/hot_path.cc (the rule only audits src/).

namespace fix {

void
Poller::poll()
{
    metrics_->counter("poll.count"); // registers on every poll: flagged
}

} // namespace fix
