#ifndef LEASEOS_HARNESS_METRICS_H
#define LEASEOS_HARNESS_METRICS_H

/**
 * @file
 * Periodic metric sampling — the §2.1 profiling tool ("samples a vector of
 * per-app metrics every 60 s, e.g., wakelock time, CPU usage") generalised
 * to arbitrary gauges. Figures 1-4 and 11 are produced with it.
 *
 * The sampler is a thin periodic pump over the obs::MetricRegistry
 * (DESIGN.md §9): every gauge is a registry-interned metric addressed by
 * dense MetricId — no per-name map lookups on the sampling tick — and the
 * recorded time series live in a flat vector in registration order.
 *
 * Two gauge styles:
 *  - addGauge: a registry *bound gauge*; the level is recorded each tick;
 *  - addDeltaGauge: a registry *bound counter*; the increase over each
 *    interval is recorded (how the paper reports "wakelock time per 60 s").
 *
 * Push metrics registered elsewhere (e.g. the lease manager's counters in
 * an externally supplied registry) can be pumped too via watch().
 */

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/metric_registry.h"
#include "sim/simulator.h"
#include "sim/time_series.h"

namespace leaseos::harness {

/**
 * Samples registry metrics into time series at a fixed period.
 */
class MetricsSampler
{
  public:
    /** Standalone sampler over a private registry. */
    MetricsSampler(sim::Simulator &sim, sim::Time period)
        : sim_(sim), period_(period),
          owned_(std::make_unique<obs::MetricRegistry>()),
          registry_(owned_.get())
    {
    }

    /** Pump an existing registry (e.g. the run's installed one). */
    MetricsSampler(sim::Simulator &sim, sim::Time period,
                   obs::MetricRegistry &registry)
        : sim_(sim), period_(period), registry_(&registry)
    {
    }

    obs::MetricRegistry &registry() { return *registry_; }

    /** Register + watch a level gauge; records fn() at each tick. */
    obs::MetricId
    addGauge(const std::string &name, std::function<double()> fn)
    {
        return watch(registry_->boundGauge(name, std::move(fn)));
    }

    /**
     * Register + watch a monotonic counter; records its per-interval
     * increase. The baseline is captured here, at registration.
     */
    obs::MetricId
    addDeltaGauge(const std::string &name, std::function<double()> fn)
    {
        return watch(registry_->boundCounter(name, std::move(fn)));
    }

    /**
     * Pump an already-registered metric. Counter kinds (push or bound)
     * sample as deltas from the value at watch() time; gauge kinds (and
     * histograms, via their observation count) sample as levels.
     */
    obs::MetricId
    watch(obs::MetricId id)
    {
        bool delta = registry_->kind(id) == obs::MetricKind::Counter ||
                     registry_->kind(id) == obs::MetricKind::BoundCounter;
        watches_.push_back(Watch{id, delta, registry_->value(id),
                                 sim::TimeSeries(registry_->name(id))});
        return id;
    }

    void
    start()
    {
        tick_ = sim_.schedulePeriodicScoped(period_, [this] { sample(); });
    }

    void stop() { tick_.cancel(); }

    const sim::TimeSeries &
    series(const std::string &name) const
    {
        for (const Watch &w : watches_)
            if (registry_->name(w.id) == name) return w.series;
        throw std::out_of_range("no sampled metric named '" + name + "'");
    }

  private:
    struct Watch {
        obs::MetricId id;
        bool delta;
        double last;
        sim::TimeSeries series;
    };

    void
    sample()
    {
        for (Watch &w : watches_) {
            double v = registry_->value(w.id);
            if (w.delta) {
                w.series.record(sim_.now(), v - w.last);
                w.last = v;
            } else {
                w.series.record(sim_.now(), v);
            }
        }
    }

    sim::Simulator &sim_;
    sim::Time period_;
    sim::PeriodicHandle tick_;
    std::unique_ptr<obs::MetricRegistry> owned_;
    obs::MetricRegistry *registry_;
    std::vector<Watch> watches_;
};

} // namespace leaseos::harness

#endif // LEASEOS_HARNESS_METRICS_H
