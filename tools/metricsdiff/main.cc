/**
 * metricsdiff CLI — cross-run metrics comparison with tolerances
 * (DESIGN.md §10).
 *
 *   metricsdiff A.json B.json [options]
 *     --default-rel-tol X     tolerance for unlisted metrics (default 0)
 *     --rel-tol NAME=X        per-metric relative tolerance
 *     --report-only NAME      compare + report NAME but never gate on it
 *     --key COL               row-key column (default: first string cell)
 *     --json OUT              write the machine-readable verdict to OUT
 *
 * Exit status: 0 pass, 1 gating differences, 2 usage or load error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "metricsdiff/metricsdiff.h"

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: metricsdiff A.json B.json [--default-rel-tol X]\n"
                 "       [--rel-tol NAME=X]... [--report-only NAME]...\n"
                 "       [--key COL] [--json OUT]\n");
    return 2;
}

bool
parseDouble(const char *text, double &out)
{
    char *end = nullptr;
    out = std::strtod(text, &end);
    return end && end != text && *end == '\0';
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace leaseos::metricsdiff;
    Options options;
    std::vector<std::string> paths;
    std::string jsonOut;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (std::strcmp(arg, "--default-rel-tol") == 0) {
            const char *value = next();
            if (!value || !parseDouble(value, options.defaultRelTol))
                return usage();
        } else if (std::strcmp(arg, "--rel-tol") == 0) {
            const char *value = next();
            const char *eq = value ? std::strchr(value, '=') : nullptr;
            double tol = 0.0;
            if (!eq || !parseDouble(eq + 1, tol)) return usage();
            options.relTol[std::string(value, eq)] = tol;
        } else if (std::strcmp(arg, "--report-only") == 0) {
            const char *value = next();
            if (!value) return usage();
            options.reportOnly.insert(value);
        } else if (std::strcmp(arg, "--key") == 0) {
            const char *value = next();
            if (!value) return usage();
            options.keyColumn = value;
        } else if (std::strcmp(arg, "--json") == 0) {
            const char *value = next();
            if (!value) return usage();
            jsonOut = value;
        } else if (arg[0] == '-') {
            return usage();
        } else {
            paths.emplace_back(arg);
        }
    }
    if (paths.size() != 2) return usage();

    DiffReport report = diffFiles(paths[0], paths[1], options);

    if (!jsonOut.empty()) {
        std::ofstream out(jsonOut, std::ios::binary);
        out << renderVerdictJson(report, paths[0], paths[1]);
        if (!out.good())
            std::fprintf(stderr, "metricsdiff: cannot write %s\n",
                         jsonOut.c_str());
    }

    if (!report.ok()) {
        std::fprintf(stderr, "metricsdiff: %s\n", report.error.c_str());
        return 2;
    }
    for (const Finding &finding : report.findings)
        std::printf("%s\n", finding.toString().c_str());
    std::printf("%s: %zu rows, %zu metrics compared, %zu findings\n",
                report.pass ? "PASS" : "FAIL", report.rowsCompared,
                report.metricsCompared, report.findings.size());
    return report.pass ? 0 : 1;
}
