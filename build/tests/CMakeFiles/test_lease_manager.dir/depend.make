# Empty dependencies file for test_lease_manager.
# This may be replaced when dependencies are built.
