#include "apps/buggy/beacon_scanner.h"

// BeaconScanner is header-only; this TU anchors the module.
namespace leaseos::apps {
} // namespace leaseos::apps
