/**
 * @file
 * ShardedRunner equivalence tests (DESIGN.md §11).
 *
 * The sharded runner's whole contract is "same answer, different
 * wall-clock shape": cutting a scenario into K time slices, migrating
 * the live device between workers at each boundary, must be
 * *bit-identical* to the single-shot run — including the checkpoint
 * digests emitted along the way. These tests pin that equivalence for
 * real Table-5 cells, across shard counts and job counts, plus the
 * shardBounds partition arithmetic.
 */

#include <gtest/gtest.h>

#include <vector>

#include "apps/registry.h"
#include "harness/experiment.h"
#include "harness/runner.h"
#include "harness/sharded_runner.h"

namespace leaseos::harness {
namespace {

/** Two Table-5 cells (vanilla + LeaseOS torch), 10 min, 4 checkpoints. */
std::vector<RunSpec>
cellSpecs(int shards)
{
    MitigationRunOptions opt;
    opt.duration = sim::Time::fromMinutes(10.0);
    std::vector<RunSpec> specs;
    for (MitigationMode mode :
         {MitigationMode::None, MitigationMode::LeaseOS}) {
        RunSpec spec = mitigationCellSpec(apps::buggySpec("torch"), mode, opt);
        spec.withCheckpoints(sim::Time::fromNanos(spec.duration.nanos() / 4))
            .withShards(shards);
        specs.push_back(std::move(spec));
    }
    return specs;
}

TEST(ShardBoundsTest, PartitionsExactly)
{
    // Non-divisible duration: bounds are strictly increasing and land
    // exactly on the duration with no rounding residue.
    sim::Time d = sim::Time::fromNanos(1000000007);
    auto bounds = shardBounds(d, 7);
    ASSERT_EQ(bounds.size(), 7u);
    sim::Time prev = sim::Time::fromNanos(0);
    for (sim::Time b : bounds) {
        EXPECT_GT(b, prev);
        prev = b;
    }
    EXPECT_EQ(bounds.back(), d);

    auto one = shardBounds(d, 1);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], d);

    // More shards than nanoseconds would produce empty slices but must
    // still end exactly at the duration.
    auto tiny = shardBounds(sim::Time::fromNanos(3), 8);
    EXPECT_EQ(tiny.back(), sim::Time::fromNanos(3));
}

TEST(ShardedRunnerTest, BitIdenticalToSingleShot)
{
    // Baseline: single-shot runScenario, no slicing machinery.
    std::vector<RunSpec> specs = cellSpecs(/*shards=*/4);
    std::vector<RunResult> expected;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        expected.push_back(runScenario(specs[i]));
        expected.back().specIndex = i;
    }
    ASSERT_EQ(expected[0].checkpoints.size(), 4u);

    RunnerOptions options;
    options.jobs = 2;
    ShardedRunner runner(options);
    std::vector<RunResult> sharded = runner.run(specs);

    ASSERT_EQ(sharded.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(sharded[i], expected[i]) << specs[i].name;
}

TEST(ShardedRunnerTest, JobCountDoesNotChangeResults)
{
    // The device-migration schedule differs wildly between jobs=1 and
    // jobs=8; the results (and checkpoint digests) must not.
    std::vector<RunSpec> specs = cellSpecs(/*shards=*/5);

    RunnerOptions serial;
    serial.jobs = 1;
    std::vector<RunResult> a = ShardedRunner(serial).run(specs);

    RunnerOptions wide;
    wide.jobs = 8;
    std::vector<RunResult> b = ShardedRunner(wide).run(specs);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].specIndex, i);
        EXPECT_EQ(a[i], b[i]) << specs[i].name;
    }
}

TEST(ShardedRunnerTest, ResultsStayInSpecOrderWithDerivedSeeds)
{
    // Mirror of ParallelRunner's ordering contract: per-spec derived
    // seeds and spec-order collection are scheduling-independent, so the
    // half-vanilla/half-LeaseOS device-index pinning in bench_fleet
    // cannot be reordered by --jobs.
    std::vector<RunSpec> specs;
    for (int i = 0; i < 6; ++i) {
        MitigationRunOptions opt;
        opt.duration = sim::Time::fromMinutes(2.0);
        specs.push_back(mitigationCellSpec(
            apps::buggySpec("torch"),
            i % 2 == 0 ? MitigationMode::None : MitigationMode::LeaseOS,
            opt));
        specs.back().withName("dev" + std::to_string(i)).withShards(3);
    }

    RunnerOptions options;
    options.jobs = 4;
    options.baseSeed = 0x5eedULL;
    ShardedRunner sharded(options);
    ParallelRunner parallel(options);

    std::size_t reported = 0;
    std::vector<RunResult> a =
        sharded.run(specs, [&reported](const RunResult &) { ++reported; });
    std::vector<RunResult> b = parallel.run(specs);
    EXPECT_EQ(reported, specs.size());

    ASSERT_EQ(a.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(a[i].name, "dev" + std::to_string(i));
        EXPECT_EQ(a[i].specIndex, i);
        EXPECT_EQ(a[i].seed, deriveSeed(0x5eedULL, i));
        EXPECT_EQ(a[i], b[i]) << "sharded vs parallel, spec " << i;
    }
}

TEST(ShardedRunnerTest, CheckpointInstantsIndependentOfSlicing)
{
    // 3 shards with 4 checkpoints: boundaries and emission instants
    // interleave without double-emitting or skipping.
    std::vector<RunSpec> s3 = cellSpecs(/*shards=*/3);
    std::vector<RunSpec> s8 = cellSpecs(/*shards=*/8);

    RunnerOptions options;
    options.jobs = 2;
    std::vector<RunResult> a = ShardedRunner(options).run(s3);
    std::vector<RunResult> b = ShardedRunner(options).run(s8);

    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].checkpoints.size(), 4u);
        EXPECT_EQ(a[i].checkpoints, b[i].checkpoints)
            << "checkpoint stream depends on slicing for " << s3[i].name;
    }
}

} // namespace
} // namespace leaseos::harness
