/**
 * @file
 * Unit tests for sim::Time.
 */

#include <gtest/gtest.h>

#include "sim/time.h"

namespace leaseos::sim {
namespace {

TEST(TimeTest, DefaultIsZero)
{
    Time t;
    EXPECT_EQ(t.nanos(), 0);
    EXPECT_TRUE(t.isZero());
}

TEST(TimeTest, FactoryConversions)
{
    EXPECT_EQ(Time::fromMicros(3).nanos(), 3000);
    EXPECT_EQ(Time::fromMillis(3).nanos(), 3000000);
    EXPECT_EQ(Time::fromSeconds(1.5).millis(), 1500);
    EXPECT_DOUBLE_EQ(Time::fromMinutes(2).seconds(), 120.0);
    EXPECT_DOUBLE_EQ(Time::fromHours(1).minutes(), 60.0);
}

TEST(TimeTest, Literals)
{
    EXPECT_EQ((5_s).seconds(), 5.0);
    EXPECT_EQ((30_min).minutes(), 30.0);
    EXPECT_EQ((100_ms).millis(), 100);
    EXPECT_EQ((7_us).micros(), 7);
    EXPECT_EQ((9_ns).nanos(), 9);
}

TEST(TimeTest, Arithmetic)
{
    Time a = 10_s;
    Time b = 4_s;
    EXPECT_EQ((a + b).seconds(), 14.0);
    EXPECT_EQ((a - b).seconds(), 6.0);
    EXPECT_DOUBLE_EQ((a * 2.5).seconds(), 25.0);
    EXPECT_DOUBLE_EQ((a / 4.0).seconds(), 2.5);
    EXPECT_DOUBLE_EQ(a / b, 2.5);
}

TEST(TimeTest, CompoundAssignment)
{
    Time t = 1_s;
    t += 2_s;
    EXPECT_EQ(t.seconds(), 3.0);
    t -= 4_s;
    EXPECT_TRUE(t.isNegative());
}

TEST(TimeTest, Comparisons)
{
    EXPECT_LT(1_s, 2_s);
    EXPECT_GT(1_min, 59_s);
    EXPECT_EQ(60_s, 1_min);
    EXPECT_LE(Time::zero(), Time::zero());
    EXPECT_LT(Time::zero(), Time::max());
}

TEST(TimeTest, ToStringPicksUnits)
{
    EXPECT_NE((2_s).toString().find("s"), std::string::npos);
    EXPECT_NE((5_min).toString().find("min"), std::string::npos);
    EXPECT_NE(Time::fromHours(2).toString().find("h"), std::string::npos);
    EXPECT_NE((10_ms).toString().find("ms"), std::string::npos);
}

} // namespace
} // namespace leaseos::sim
