#include "analysis/invariants.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "lease/lease_table.h"
#include "obs/flight_recorder.h"
#include "os/binder.h"
#include "os/system_server.h"
#include "power/battery.h"
#include "power/energy_accountant.h"
#include "sim/simulator.h"

namespace leaseos::analysis {

namespace {

/** The thread's hook target (one Simulator/Device per thread). */
thread_local InvariantOracle *g_current = nullptr;

bool
relativeClose(double a, double b, double tolerance)
{
    double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
    return std::fabs(a - b) <= tolerance * scale;
}

} // namespace

std::string
Violation::toString() const
{
    std::ostringstream out;
    out << "[leaseos-invariant] t=" << simTime.seconds() << "s";
    if (leaseId != lease::kInvalidLeaseId) out << " lease=" << leaseId;
    out << " check=" << check << ": " << detail;
    return out.str();
}

InvariantOracle::InvariantOracle(FailMode mode) : mode_(mode) {}

InvariantOracle::~InvariantOracle()
{
    if (installed_) uninstall();
}

void
InvariantOracle::install()
{
    if (installed_) return;
    previous_ = g_current;
    g_current = this;
    installed_ = true;
}

void
InvariantOracle::uninstall()
{
    if (!installed_) return;
    if (g_current == this) {
        g_current = previous_;
    } else {
        // Destroyed out of stack order (two devices on one thread torn
        // down in construction order): unlink from the chain instead.
        for (InvariantOracle *o = g_current; o; o = o->previous_) {
            if (o->previous_ == this) {
                o->previous_ = previous_;
                break;
            }
        }
    }
    previous_ = nullptr;
    installed_ = false;
}

InvariantOracle *
InvariantOracle::current()
{
    return g_current;
}

bool
InvariantOracle::legalTransition(lease::LeaseState from, lease::LeaseState to)
{
    using lease::LeaseState;
    if (to == LeaseState::Dead) return from != LeaseState::Dead;
    switch (from) {
      case LeaseState::Active:
        return to == LeaseState::Inactive || to == LeaseState::Deferred;
      case LeaseState::Inactive:
        return to == LeaseState::Active;
      case LeaseState::Deferred:
        return to == LeaseState::Active || to == LeaseState::Inactive;
      case LeaseState::Dead:
        return false; // DEAD is terminal
    }
    return false;
}

void
InvariantOracle::noteLeaseTransition(sim::Time now, lease::LeaseId id,
                                     lease::LeaseState from,
                                     lease::LeaseState to)
{
    ++transitionsChecked_;
    if (legalTransition(from, to)) return;
    std::ostringstream detail;
    detail << "illegal transition " << lease::leaseStateName(from) << " -> "
           << lease::leaseStateName(to)
           << " (not in the Fig. 5 transition relation)";
    report({"state-machine", now, id, detail.str()});
}

void
InvariantOracle::noteEventDispatch(sim::Time now, sim::Time eventTime)
{
    if (eventTime >= now) return;
    std::ostringstream detail;
    detail << "event scheduled for t=" << eventTime.seconds()
           << "s dispatched after virtual time already reached t="
           << now.seconds() << "s (clock ran backwards)";
    report({"time-monotonicity", now, lease::kInvalidLeaseId, detail.str()});
}

void
InvariantOracle::auditLeaseTable(const sim::Simulator &sim,
                                 const lease::LeaseTable &table,
                                 const os::TokenAllocator &tokens)
{
    using lease::LeaseState;
    for (const lease::Lease *l : table.all()) {
        if (l->state == LeaseState::Dead) {
            // remove() reaps dead leases synchronously; one lingering in
            // the table means the reap path was bypassed.
            report({"lease-table", sim.now(), l->id,
                    "DEAD lease still present in the lease table"});
            continue;
        }
        if (!tokens.live(l->token)) {
            std::ostringstream detail;
            detail << lease::leaseStateName(l->state)
                   << " lease maps to token " << l->token
                   << " whose kernel object is no longer live";
            report({"lease-table", sim.now(), l->id, detail.str()});
        }
        bool armed = l->pendingEvent != sim::kInvalidEventId &&
                     sim.pending(l->pendingEvent);
        if (l->state == LeaseState::Active ||
            l->state == LeaseState::Deferred) {
            if (!armed) {
                std::ostringstream detail;
                detail << lease::leaseStateName(l->state)
                       << " lease has no pending "
                       << (l->state == LeaseState::Active ? "term-end"
                                                          : "deferral-end")
                       << " event armed";
                report({"lease-table", sim.now(), l->id, detail.str()});
            }
        } else if (armed) {
            report({"lease-table", sim.now(), l->id,
                    "INACTIVE lease still has a timer event armed"});
        }
    }
}

void
InvariantOracle::auditEnergy(sim::Time now,
                             power::EnergyAccountant &accountant,
                             power::Battery &battery, double tolerance)
{
    // Readers return synced state: one sync here covers the whole audit.
    accountant.sync();
    double total = accountant.totalEnergyMj();

    double uidSum = 0.0;
    for (Uid uid : accountant.knownUids())
        uidSum += accountant.uidEnergyMj(uid);
    if (!relativeClose(uidSum, total, tolerance)) {
        std::ostringstream detail;
        detail << "per-uid energy sums to " << uidSum
               << " mJ but the accountant total is " << total << " mJ";
        report({"energy-conservation", now, lease::kInvalidLeaseId,
                detail.str()});
    }

    double channelSum = 0.0;
    for (power::ChannelId ch = 0; ch < accountant.channelCount(); ++ch) {
        double chMj = accountant.channelEnergyMj(ch);
        channelSum += chMj;
        double chUidSum = 0.0;
        for (Uid uid : accountant.knownUids())
            chUidSum += accountant.uidChannelEnergyMj(uid, ch);
        if (!relativeClose(chUidSum, chMj, tolerance)) {
            std::ostringstream detail;
            detail << "channel '" << accountant.channelName(ch)
                   << "' integrates " << chMj
                   << " mJ but its per-uid shares sum to " << chUidSum
                   << " mJ";
            report({"energy-conservation", now, lease::kInvalidLeaseId,
                    detail.str()});
        }
    }
    if (!relativeClose(channelSum, total, tolerance)) {
        std::ostringstream detail;
        detail << "per-channel energy sums to " << channelSum
               << " mJ but the accountant total is " << total << " mJ";
        report({"energy-conservation", now, lease::kInvalidLeaseId,
                detail.str()});
    }

    double drained = battery.drainedMj();
    // recharge() rebases the drain, so drained <= total always; negative
    // drain would mean energy flowed back out of the components.
    if (drained < -tolerance * std::max(total, 1.0) ||
        drained > total + tolerance * std::max(total, 1.0)) {
        std::ostringstream detail;
        detail << "battery drain " << drained
               << " mJ outside [0, total=" << total << " mJ]";
        report({"energy-conservation", now, lease::kInvalidLeaseId,
                detail.str()});
    }
}

void
InvariantOracle::checkAppTeardown(sim::Time now, os::SystemServer &server,
                                  Uid uid)
{
    for (os::TokenId token : server.powerManager().heldTokens(uid)) {
        std::ostringstream detail;
        detail << "app uid " << uid << " stopped while wakelock token "
               << token << " ('" << server.powerManager().tagOf(token)
               << "') is still held";
        report({"teardown-balance", now, lease::kInvalidLeaseId,
                detail.str()});
    }
    for (os::TokenId token : server.locationManager().activeRequests(uid)) {
        std::ostringstream detail;
        detail << "app uid " << uid
               << " stopped while GPS update request token " << token
               << " is still outstanding";
        report({"teardown-balance", now, lease::kInvalidLeaseId,
                detail.str()});
    }
    for (os::TokenId token :
         server.sensorManager().activeRegistrations(uid)) {
        std::ostringstream detail;
        detail << "app uid " << uid
               << " stopped while sensor listener token " << token
               << " is still registered";
        report({"teardown-balance", now, lease::kInvalidLeaseId,
                detail.str()});
    }
}

void
InvariantOracle::noteDeferralSettled(sim::Time now, lease::LeaseId id,
                                     sim::Time deferredAt,
                                     double accountedSeconds)
{
    const double realized = (now - deferredAt).seconds();
    if (now >= deferredAt &&
        relativeClose(accountedSeconds, realized, 1e-9)) {
        return;
    }
    std::ostringstream detail;
    detail << "deferral settled with " << accountedSeconds
           << "s accounted but " << realized
           << "s of wall deferral time actually elapsed (deferred at t="
           << deferredAt.seconds() << "s)";
    report({"deferral-accounting", now, id, detail.str()});
}

void
InvariantOracle::report(Violation violation)
{
    // While a flight record is being written, a violation fired from
    // inside the dump (e.g. a bound-metric callback) must not abort the
    // process mid-file or recurse into a second dump — record it instead.
    if (mode_ == FailMode::Abort && !obs::FlightRecorder::inDump()) {
        std::fprintf(stderr, "%s\n", violation.toString().c_str());
        std::fflush(stderr);
        if (obs::FlightRecorder *rec = obs::FlightRecorder::current()) {
            obs::FlightRecordContext ctx;
            ctx.reason = "invariant-violation";
            ctx.check = violation.check;
            ctx.detail = violation.detail;
            ctx.simTime = violation.simTime;
            ctx.leaseId = violation.leaseId;
            std::string path = rec->dump(ctx);
            if (!path.empty()) {
                std::fprintf(stderr,
                             "[leaseos-invariant] flight record: %s\n",
                             path.c_str());
                std::fflush(stderr);
            }
        }
        std::abort();
    }
    violations_.push_back(std::move(violation));
}

} // namespace leaseos::analysis
