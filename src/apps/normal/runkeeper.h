#ifndef LEASEOS_APPS_NORMAL_RUNKEEPER_H
#define LEASEOS_APPS_NORMAL_RUNKEEPER_H

/**
 * @file
 * RunKeeper model (§7.4 usability experiment): legitimate heavy background
 * resource use. During a workout it records GPS + accelerometer under a
 * wakelock and writes tracking samples to its database. It registers the
 * §3.3 fitness-app custom utility — "the amount of tracking data written
 * to the database in a period" — so a lease system sees the real value.
 * Under LeaseOS it must run undisturbed; pure throttling breaks it.
 */

#include <cstdint>

#include "app/app.h"
#include "common/utility_counter.h"
#include "lease/lease_manager.h"
#include "os/binder.h"
#include "os/location_manager_service.h"
#include "os/sensor_manager_service.h"

namespace leaseos::apps {

/**
 * Well-behaved fitness tracker.
 */
class RunKeeper : public app::App,
                  private os::LocationListener,
                  private os::SensorEventListener,
                  private IUtilityCounter
{
  public:
    RunKeeper(app::AppContext &ctx, Uid uid);

    void start() override;
    void stop() override;

    std::uint64_t samplesWritten() const { return samples_; }

    /**
     * Samples that should have been written by now, given the configured
     * rates — the usability metric compares this with samplesWritten().
     */
    std::uint64_t expectedSamples() const;

  private:
    double getScore() override;
    void onLocation(const GeoPoint &point) override;
    void onSensorEvent(power::SensorType type, double value) override;
    void fusionTick();

    os::TokenId lock_ = os::kInvalidToken;
    os::TokenId gpsRequest_ = os::kInvalidToken;
    os::TokenId accel_ = os::kInvalidToken;
    std::uint64_t samples_ = 0;
    sim::Time lastWriteTime_;
    sim::Time started_;
};

} // namespace leaseos::apps

#endif // LEASEOS_APPS_NORMAL_RUNKEEPER_H
