#ifndef LEASEOS_OS_BLUETOOTH_SERVICE_H
#define LEASEOS_OS_BLUETOOTH_SERVICE_H

/**
 * @file
 * Bluetooth scan management (android BluetoothLeScanner analog).
 *
 * Apps start scans and receive discovered-device callbacks; the radio
 * draws scan power while any enabled registration exists. Same
 * interposition surface as the other subscription services, so the
 * Bluetooth lease proxy and the baselines plug in unchanged.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "os/binder.h"
#include "os/resource_listener.h"
#include "os/service.h"
#include "power/bluetooth_model.h"

namespace leaseos::os {

/** App callback receiving discovered devices. */
class ScanListener
{
  public:
    virtual ~ScanListener() = default;
    virtual void onDeviceFound(std::uint64_t deviceId) = 0;
};

/**
 * Bluetooth scan service with lease/throttle interposition hooks.
 */
class BluetoothService : public Service
{
  public:
    /** Cadence of discovery callbacks while scanning near devices. */
    static constexpr sim::Time kDiscoveryInterval =
        sim::Time::fromSeconds(12.0);

    BluetoothService(sim::Simulator &sim, power::CpuModel &cpu,
                     power::BluetoothModel &bluetooth,
                     TokenAllocator &tokens);

    /** How many distinct devices are in radio range (env knob). */
    void setNearbyDevices(int count) { nearbyDevices_ = count; }

    // ---- App-facing API ------------------------------------------------

    TokenId startScan(Uid uid, ScanListener *listener);
    void stopScan(TokenId token);
    void destroy(TokenId token);
    bool isActive(TokenId token) const;

    // ---- Interposition ---------------------------------------------------

    void suspend(TokenId token);
    void restore(TokenId token);
    bool isSuspended(TokenId token) const;
    bool isEnabled(TokenId token) const;
    void setGlobalFilter(std::function<bool(Uid)> filter);
    void refilter();
    void addListener(ResourceListener *listener);

    // ---- Metrics --------------------------------------------------------

    double scanSeconds(Uid uid) { return bluetooth_.scanSeconds(uid); }
    std::uint64_t discoveries(Uid uid) const;
    Uid ownerOf(TokenId token) const;

  private:
    struct Scan {
        Uid uid = kInvalidUid;
        ScanListener *listener = nullptr;
        bool active = false;
        bool suspended = false;
        bool enabled = false;
        bool tickScheduled = false;
    };

    void apply();
    bool allowedByFilter(Uid uid) const;
    void scheduleTick(TokenId token);
    void deliverTick(TokenId token);

    power::BluetoothModel &bluetooth_;
    TokenAllocator &tokens_;
    int nearbyDevices_ = 3;
    std::map<TokenId, Scan> scans_;
    std::function<bool(Uid)> filter_;
    std::vector<ResourceListener *> listeners_;
    std::map<Uid, std::uint64_t> discoveries_;
    std::uint64_t nextDeviceId_ = 1;
};

} // namespace leaseos::os

#endif // LEASEOS_OS_BLUETOOTH_SERVICE_H
