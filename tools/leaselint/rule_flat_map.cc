/**
 * @file
 * flat-map-hotpath: informational rule flagging node-based ordered maps in
 * hot-path code (src/sim/ and src/power/).
 *
 * Every simulated event funnels through these two directories, so a
 * std::map or std::unordered_map there usually means a per-event pointer
 * chase and a per-insert heap allocation — exactly what the DESIGN.md §8
 * zero-allocation discipline forbids on the steady state. The preferred
 * shapes are dense vectors indexed by an interned id (EnergyAccountant's
 * uid slots) or common::InlineVec for small keyed tables (CpuModel's task
 * list).
 *
 * The rule is informational: cold-path survivors (per-run statistics
 * keyed by uid, built once and read at teardown) are fine — suppress them
 * with `// leaselint: allow(flat-map-hotpath)` plus a justification, like
 * any other rule.
 */

#include "leaselint/rules.h"

namespace leaselint {

namespace {

constexpr const char *kMapTokens[] = {
    "map",
    "multimap",
    "unordered_map",
    "unordered_multimap",
};

} // namespace

void
checkFlatMapHotpath(const SourceFile &file, std::vector<Finding> &out)
{
    if (!underDir(file.path(), "src/sim") &&
        !underDir(file.path(), "src/power"))
        return;
    for (std::size_t line = 1; line <= file.lineCount(); ++line) {
        const std::string &code = file.codeLine(line);
        std::size_t first = code.find_first_not_of(" \t");
        if (first != std::string::npos && code[first] == '#') continue;
        for (const char *token : kMapTokens) {
            // Only qualified uses: a bare `map` identifier is too
            // common (member names, comments stripped already, but
            // locals like `bitmap` are caught by findToken's word
            // boundary — `std::map`/`std::unordered_map` is the
            // signal).
            std::size_t pos = findToken(code, token);
            while (pos != std::string::npos) {
                if (pos >= 5 && code.compare(pos - 5, 5, "std::") == 0) {
                    out.push_back(
                        {"flat-map-hotpath", file.path(), line,
                         std::string("std::") + token +
                             " in hot-path code: node-based maps "
                             "allocate per insert and chase pointers "
                             "per lookup; use a dense slot-indexed "
                             "array or common::InlineVec, or suppress "
                             "with a justification (DESIGN.md §8)"});
                    break; // one finding per line per token
                }
                pos = findToken(code, token, pos + 1);
            }
        }
    }
}

} // namespace leaselint
