#include "lease/proxies/audio_proxy.h"

#include "lease/utility/generic_utility.h"

namespace leaseos::lease {

AudioLeaseProxy::AudioLeaseProxy(os::AudioSessionService &audio,
                                 os::ActivityManagerService &am)
    : LeaseProxy(ResourceType::Audio), audio_(audio), am_(am)
{
    audio_.addListener(this);
}

void
AudioLeaseProxy::onExpire(const Lease &lease)
{
    audio_.suspend(lease.token);
}

void
AudioLeaseProxy::onRenew(const Lease &lease)
{
    audio_.restore(lease.token);
}

bool
AudioLeaseProxy::resourceHeld(const Lease &lease)
{
    return audio_.isOpen(lease.token);
}

AudioLeaseProxy::Snapshot
AudioLeaseProxy::snapshot(const Lease &lease)
{
    Snapshot s;
    s.openSeconds = audio_.openSeconds(lease.uid);
    s.playingSeconds = audio_.playingSeconds(lease.uid);
    s.uiUpdates = am_.uiUpdateCount(lease.uid);
    s.interactions = am_.userInteractionCount(lease.uid);
    return s;
}

void
AudioLeaseProxy::beginTerm(const Lease &lease)
{
    snapshots_[lease.id] = snapshot(lease);
}

LeaseStat
AudioLeaseProxy::collectStat(const Lease &lease)
{
    Snapshot start = snapshots_[lease.id];
    Snapshot now = snapshot(lease);

    LeaseStat stat;
    stat.termStart = lease.termStart;
    stat.termEnd = lease.termStart + lease.termLength;
    stat.holdingSeconds = now.openSeconds - start.openSeconds;
    stat.usageSeconds = now.playingSeconds - start.playingSeconds;
    stat.uiUpdates = now.uiUpdates - start.uiUpdates;
    stat.interactions = now.interactions - start.interactions;
    stat.heldAtTermEnd = audio_.isOpen(lease.token);

    // Audible output is its own utility evidence; a silent open session
    // only has whatever UI evidence the app produces.
    utility::Signals signals;
    signals.termSeconds = stat.termSeconds();
    signals.usageSeconds = stat.usageSeconds;
    signals.uiUpdates = stat.uiUpdates;
    signals.interactions = stat.interactions;
    if (stat.usageSeconds > 0.0) {
        stat.utilityScore =
            utility::genericScore(ResourceType::Audio, signals);
    } else {
        signals.usageSeconds = 0.0;
        stat.utilityScore =
            utility::genericScore(ResourceType::Wakelock, signals);
    }
    return stat;
}

} // namespace leaseos::lease
