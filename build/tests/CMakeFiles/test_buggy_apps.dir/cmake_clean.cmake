file(REMOVE_RECURSE
  "CMakeFiles/test_buggy_apps.dir/apps/test_buggy_apps.cc.o"
  "CMakeFiles/test_buggy_apps.dir/apps/test_buggy_apps.cc.o.d"
  "test_buggy_apps"
  "test_buggy_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_buggy_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
