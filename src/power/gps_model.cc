#include "power/gps_model.h"

#include "power/checkpoint_io.h"

#include <utility>

namespace leaseos::power {

GpsModel::GpsModel(sim::Simulator &sim, EnergyAccountant &accountant,
                   const DeviceProfile &profile)
    : PowerComponent(sim, accountant, profile, "gps"),
      channel_(accountant.makeChannel("gps")),
      lastAdvance_(sim.now())
{
    updatePower();
}

void
GpsModel::advance()
{
    sim::Time now = sim_.now();
    if (now <= lastAdvance_) {
        lastAdvance_ = now;
        return;
    }
    double dt = (now - lastAdvance_).seconds();
    if (!owners_.empty()) {
        double each = dt / static_cast<double>(owners_.size());
        for (Uid u : owners_) {
            if (state_ == State::Searching) searchSeconds_[u] += each;
            else if (state_ == State::Tracking) trackSeconds_[u] += each;
        }
    }
    lastAdvance_ = now;
}

void
GpsModel::setState(State s)
{
    if (s == state_) return;
    advance();
    bool had_fix = hasFix();
    state_ = s;
    updatePower();
    bool has_fix = hasFix();
    if (had_fix != has_fix)
        for (const auto &fn : fixListeners_) fn(has_fix);
}

void
GpsModel::reevaluate()
{
    advance();
    if (owners_.empty()) {
        if (fixEvent_ != sim::kInvalidEventId) {
            sim_.cancel(fixEvent_);
            fixEvent_ = sim::kInvalidEventId;
        }
        setState(State::Off);
        return;
    }
    if (state_ == State::Tracking && signalGood_) {
        updatePower(); // owners may have changed
        return;
    }
    if (!signalGood_) {
        // Lost (or can't get) the sky view: regress to Searching.
        if (fixEvent_ != sim::kInvalidEventId) {
            sim_.cancel(fixEvent_);
            fixEvent_ = sim::kInvalidEventId;
        }
        setState(State::Searching);
        return;
    }
    // Requests outstanding, good signal, not yet tracking: search, then
    // acquire after the TTFF delay.
    setState(State::Searching);
    if (fixEvent_ == sim::kInvalidEventId) {
        fixEvent_ = sim_.schedule(fixAcquireDelay_, [this] {
            fixEvent_ = sim::kInvalidEventId;
            if (!owners_.empty() && signalGood_) setState(State::Tracking);
        });
    }
}

void
GpsModel::updatePower()
{
    double mw = 0.0;
    if (state_ == State::Searching) mw = profile_.gpsSearchMw;
    else if (state_ == State::Tracking) mw = profile_.gpsTrackMw;
    accountant_.setPower(channel_, mw, owners_);
}

void
GpsModel::setRequestOwners(std::vector<Uid> owners)
{
    advance();
    owners_ = std::move(owners);
    reevaluate();
    // The state may be unchanged but the attribution set is new.
    updatePower();
}

void
GpsModel::setSignalGood(bool good)
{
    advance();
    signalGood_ = good;
    reevaluate();
}

void
GpsModel::addFixListener(std::function<void(bool)> fn)
{
    fixListeners_.push_back(std::move(fn));
}

double
GpsModel::searchSeconds(Uid uid)
{
    advance();
    auto it = searchSeconds_.find(uid);
    return it == searchSeconds_.end() ? 0.0 : it->second;
}

double
GpsModel::trackSeconds(Uid uid)
{
    advance();
    auto it = trackSeconds_.find(uid);
    return it == trackSeconds_.end() ? 0.0 : it->second;
}


void
GpsModel::saveState(sim::CheckpointWriter &w) const
{
    w.beginSection("gps", 1);
    w.u8(static_cast<std::uint8_t>(state_));
    w.u8(signalGood_ ? 1 : 0);
    bool fixPending =
        fixEvent_ != sim::kInvalidEventId && sim_.pending(fixEvent_);
    w.u8(fixPending ? 1 : 0);
    ckpt::writeUids(w, owners_);
    w.time(fixAcquireDelay_);
    w.time(lastAdvance_);
    ckpt::writeUidDoubleMap(w, searchSeconds_);
    ckpt::writeUidDoubleMap(w, trackSeconds_);
    w.endSection();
}

void
GpsModel::restoreState(sim::CheckpointReader &r)
{
    sim::requireSectionVersion("gps", r.beginSection("gps"), 1);
    state_ = static_cast<State>(r.u8());
    signalGood_ = r.u8() != 0;
    bool fixPending = r.u8() != 0;
    if (fixPending)
        throw sim::CheckpointError(
            "gps checkpoint taken mid-fix-acquisition; restore requires "
            "a quiescent boundary");
    owners_ = ckpt::readUids(r);
    fixAcquireDelay_ = r.time();
    lastAdvance_ = r.time();
    searchSeconds_ = ckpt::readUidDoubleMap(r);
    trackSeconds_ = ckpt::readUidDoubleMap(r);
    fixEvent_ = sim::kInvalidEventId;
    r.endSection();
}

} // namespace leaseos::power
