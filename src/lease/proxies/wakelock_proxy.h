#ifndef LEASEOS_LEASE_PROXIES_WAKELOCK_PROXY_H
#define LEASEOS_LEASE_PROXIES_WAKELOCK_PROXY_H

/**
 * @file
 * Lease proxy for partial wakelocks (the CPU resource).
 *
 * Lives inside PowerManagerService. onExpire removes the IBinder from the
 * service's enabled array (the phone may then deep-sleep, §4.4's worked
 * example); onRenew puts it back. Term stats: holding = enabled lock time,
 * usage = the holder's CPU seconds, utility from severe exceptions and UI
 * signals.
 */

#include <map>

#include "lease/lease_proxy.h"
#include "os/activity_manager_service.h"
#include "os/exception_note_handler.h"
#include "os/power_manager_service.h"
#include "power/cpu_model.h"

namespace leaseos::lease {

/**
 * Partial-wakelock lease proxy.
 */
class WakelockLeaseProxy : public LeaseProxy
{
  public:
    WakelockLeaseProxy(os::PowerManagerService &pms, power::CpuModel &cpu,
                       os::ExceptionNoteHandler &exceptions,
                       os::ActivityManagerService &am);

    void onExpire(const Lease &lease) override;
    void onRenew(const Lease &lease) override;
    bool resourceHeld(const Lease &lease) override;
    void beginTerm(const Lease &lease) override;
    LeaseStat collectStat(const Lease &lease) override;

    // Filtered forwarding: only partial locks belong to this proxy.
    void onCreated(os::TokenId token, Uid uid) override;
    void onAcquired(os::TokenId token, Uid uid) override;
    void onReleased(os::TokenId token, Uid uid) override;
    void onDestroyed(os::TokenId token, Uid uid) override;

  private:
    struct Snapshot {
        double enabledSeconds = 0.0;
        double cpuSeconds = 0.0;
        std::uint64_t exceptions = 0;
        std::uint64_t uiUpdates = 0;
        std::uint64_t interactions = 0;
        std::uint64_t acquires = 0;
    };

    bool mine(os::TokenId token) const;
    Snapshot snapshot(const Lease &lease);

    os::PowerManagerService &pms_;
    power::CpuModel &cpu_;
    os::ExceptionNoteHandler &exceptions_;
    os::ActivityManagerService &am_;
    std::map<LeaseId, Snapshot> snapshots_;
};

} // namespace leaseos::lease

#endif // LEASEOS_LEASE_PROXIES_WAKELOCK_PROXY_H
