# Empty compiler generated dependencies file for background_apps.
# This may be replaced when dependencies are built.
