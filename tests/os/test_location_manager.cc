/**
 * @file
 * Unit tests for LocationManagerService: fixes, suspension, metrics.
 */

#include "os_fixture.h"

namespace leaseos::os {
namespace {

using sim::operator""_s;
using sim::operator""_min;
using testing::OsFixture;

struct CountingLocationListener : LocationListener {
    int fixes = 0;
    GeoPoint last;

    void
    onLocation(const GeoPoint &p) override
    {
        ++fixes;
        last = p;
    }
};

struct LocationManagerTest : OsFixture {
    LocationManagerService &lms = server.locationManager();
    CountingLocationListener listener;
};

TEST_F(LocationManagerTest, RequestStartsGpsSearch)
{
    TokenId t = lms.requestLocationUpdates(kApp, 10_s, &listener);
    EXPECT_TRUE(lms.isActive(t));
    EXPECT_EQ(gps.state(), power::GpsModel::State::Searching);
    sim.runFor(30_s);
    EXPECT_EQ(gps.state(), power::GpsModel::State::Tracking);
    EXPECT_GT(listener.fixes, 0);
}

TEST_F(LocationManagerTest, RemoveUpdatesStopsGps)
{
    TokenId t = lms.requestLocationUpdates(kApp, 10_s, &listener);
    sim.runFor(30_s);
    lms.removeUpdates(t);
    EXPECT_FALSE(lms.isActive(t));
    EXPECT_EQ(gps.state(), power::GpsModel::State::Off);
    int fixes = listener.fixes;
    sim.runFor(60_s);
    EXPECT_EQ(listener.fixes, fixes);
}

TEST_F(LocationManagerTest, BadSignalYieldsNoFixTime)
{
    gps.setSignalGood(false);
    lms.requestLocationUpdates(kApp, 10_s, &listener);
    sim.runFor(1_min);
    EXPECT_EQ(listener.fixes, 0);
    EXPECT_NEAR(lms.requestSeconds(kApp), 60.0, 0.5);
    EXPECT_NEAR(lms.noFixSeconds(kApp), 60.0, 0.5);
}

TEST_F(LocationManagerTest, GoodSignalHasLowNoFixShare)
{
    lms.requestLocationUpdates(kApp, 10_s, &listener);
    sim.runFor(10_min);
    double no_fix = lms.noFixSeconds(kApp);
    double total = lms.requestSeconds(kApp);
    EXPECT_LT(no_fix / total, 0.05);
    EXPECT_EQ(lms.fixCount(kApp), static_cast<std::uint64_t>(listener.fixes));
}

TEST_F(LocationManagerTest, SuspendWithholdsCallbacksAndPower)
{
    TokenId t = lms.requestLocationUpdates(kApp, 10_s, &listener);
    sim.runFor(60_s);
    int fixes = listener.fixes;
    lms.suspend(t);
    EXPECT_TRUE(lms.isSuspended(t));
    EXPECT_EQ(gps.state(), power::GpsModel::State::Off);
    sim.runFor(60_s);
    EXPECT_EQ(listener.fixes, fixes); // callbacks withheld (§4.6)
    lms.restore(t);
    sim.runFor(60_s);
    EXPECT_GT(listener.fixes, fixes); // resumed seamlessly
}

TEST_F(LocationManagerTest, DistanceTracksMovement)
{
    // Device moving east at 10 m/s.
    lms.setPositionFn([](sim::Time t) {
        return GeoPoint{10.0 * t.seconds(), 0.0};
    });
    lms.requestLocationUpdates(kApp, 10_s, &listener);
    sim.runFor(5_min);
    // ~290 s of tracking at 10 m/s (minus the ~8 s TTFF).
    EXPECT_GT(lms.distanceMeters(kApp), 2000.0);
    EXPECT_LT(lms.distanceMeters(kApp), 3100.0);
}

TEST_F(LocationManagerTest, StationaryDeviceZeroDistance)
{
    lms.requestLocationUpdates(kApp, 10_s, &listener);
    sim.runFor(5_min);
    EXPECT_DOUBLE_EQ(lms.distanceMeters(kApp), 0.0);
    EXPECT_GT(lms.fixCount(kApp), 0u);
}

TEST_F(LocationManagerTest, GlobalFilterGatesRequests)
{
    lms.requestLocationUpdates(kApp, 10_s, &listener);
    lms.setGlobalFilter([this](Uid uid) { return uid != kApp; });
    EXPECT_EQ(gps.state(), power::GpsModel::State::Off);
    sim.runFor(60_s);
    EXPECT_EQ(listener.fixes, 0);
    lms.setGlobalFilter(nullptr);
    sim.runFor(60_s);
    EXPECT_GT(listener.fixes, 0);
}

TEST_F(LocationManagerTest, SharedGpsAcrossApps)
{
    CountingLocationListener l2;
    lms.requestLocationUpdates(kApp, 10_s, &listener);
    lms.requestLocationUpdates(kApp2, 10_s, &l2);
    sim.runFor(60_s);
    EXPECT_GT(listener.fixes, 0);
    EXPECT_GT(l2.fixes, 0);
    // Both uids accrue request time and share GPS power.
    EXPECT_GT(lms.requestSeconds(kApp2), 0.0);
    acc.sync();
    EXPECT_NEAR(acc.uidEnergyMj(kApp), acc.uidEnergyMj(kApp2), 5.0);
}

TEST_F(LocationManagerTest, DestroyCleansUp)
{
    TokenId t = lms.requestLocationUpdates(kApp, 10_s, &listener);
    lms.destroy(t);
    EXPECT_FALSE(lms.isActive(t));
    EXPECT_EQ(gps.state(), power::GpsModel::State::Off);
    EXPECT_EQ(lms.ownerOf(t), kInvalidUid);
}

TEST_F(LocationManagerTest, RequestCountTracksCalls)
{
    TokenId a = lms.requestLocationUpdates(kApp, 10_s, &listener);
    lms.removeUpdates(a);
    lms.requestLocationUpdates(kApp, 10_s, &listener);
    EXPECT_EQ(lms.requestCount(kApp), 2u);
}

} // namespace
} // namespace leaseos::os
