#ifndef LEASEOS_APP_APP_H
#define LEASEOS_APP_APP_H

/**
 * @file
 * Base class for app behaviour models.
 *
 * Each app in src/apps/ subclasses App and implements start(): registering
 * with the ActivityManager, acquiring resources, scheduling its behaviour
 * loop through the pause-aware AppProcess. Subclasses model a specific
 * real-world app's documented resource-usage pattern (buggy or normal).
 */

#include <string>

#include "app/app_context.h"
#include "app/app_process.h"

namespace leaseos::sim {
class CheckpointWriter;
class CheckpointReader;
} // namespace leaseos::sim

namespace leaseos::app {

/**
 * A simulated app: identity, process, and behaviour entry points.
 */
class App
{
  public:
    App(AppContext &ctx, Uid uid, std::string name)
        : ctx_(ctx), process_(ctx.sim, ctx.cpu, uid, name),
          name_(std::move(name))
    {
        ctx_.activityManager().registerApp(uid, name_);
    }

    virtual ~App() = default;
    App(const App &) = delete;
    App &operator=(const App &) = delete;

    /** Install the app's behaviour into the simulation. */
    virtual void start() = 0;

    /**
     * Graceful stop; default kills the process. Subclasses release their
     * resources first and call App::stop() last — in checked builds that
     * is where the teardown-balance invariant fires (an app must not exit
     * while it still holds wakelocks, GPS requests, or sensor listeners).
     */
    virtual void stop();

    Uid uid() const { return process_.uid(); }
    const std::string &name() const { return name_; }
    bool processAlive() const { return process_.alive(); }

    // ---- Checkpointing (DESIGN.md §11) ---------------------------------

    /**
     * Whether this app's behaviour state can round-trip through a
     * checkpoint blob. Defaults to false: most app models drive
     * themselves with scheduled closures that cannot be serialized, so
     * restore-from-blob is only offered by apps that keep their next
     * deadline as plain data (see apps/synthetic/snapshot_probe.h). The
     * sharded runner never needs this — it hands live devices between
     * workers instead of restoring.
     */
    virtual bool checkpointable() const { return false; }

    /**
     * Append behaviour state to the device's "apps" section. Only called
     * when checkpointable(); the default writes nothing.
     */
    virtual void saveState(sim::CheckpointWriter &w) const;

    /**
     * Restore behaviour state saved by saveState() and re-arm the app's
     * timer from its serialized deadline. Only called when
     * checkpointable().
     */
    virtual void restoreState(sim::CheckpointReader &r);

  protected:
    /** Note a severe exception the app raised (feeds generic utility). */
    void
    throwSevere()
    {
        ctx_.exceptions().noteException(uid(),
                                        os::ExceptionSeverity::Severe);
    }

    /** Note a UI refresh the app performed. */
    void uiUpdate() { ctx_.activityManager().noteUiUpdate(uid()); }

    AppContext &ctx_;
    AppProcess process_;

  private:
    std::string name_;
};

} // namespace leaseos::app

#endif // LEASEOS_APP_APP_H
