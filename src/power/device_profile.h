#ifndef LEASEOS_POWER_DEVICE_PROFILE_H
#define LEASEOS_POWER_DEVICE_PROFILE_H

/**
 * @file
 * Per-phone power/capacity profiles.
 *
 * The paper evaluates on five phones (Google Pixel XL, Nexus 6, Nexus 4,
 * Samsung Galaxy S4, Motorola Moto G) plus a Nexus 5X rigged to the Monsoon
 * monitor. Each profile carries component power draws (mW) in the style of
 * Android's power_profile.xml, battery capacity, a CPU performance factor
 * (work on a slow CPU takes longer, lengthening resource holds), and an
 * "ecosystem load" factor modelling how heavily used the phone is (heavily
 * used phones have more background interference, which §2.3 shows inflates
 * absolute holding times ~2x between phones).
 */

#include <string>
#include <vector>

namespace leaseos::power {

/**
 * Static description of one phone model's power characteristics.
 */
struct DeviceProfile {
    std::string name;

    // CPU
    double cpuSleepMw;        ///< deep sleep floor (system-attributed)
    double cpuIdleAwakeMw;    ///< awake-but-idle draw (wakelock waste)
    double cpuActivePerCoreMw;///< per-core draw at full load (top level)
    int cores;
    double perfFactor;        ///< relative speed; 1.0 = Pixel XL

    /**
     * DVFS operating point: relative frequency and the matching relative
     * per-core power (P ~ f * V^2, so power falls faster than frequency).
     */
    struct DvfsLevel {
        double freq;    ///< relative to the top level (1.0)
        double powerFactor; ///< relative per-core power at full load
    };

    /** Ascending operating points; the last entry is the top level. */
    std::vector<DvfsLevel> dvfsLevels;

    // Screen
    double screenBaseMw;      ///< panel on at minimum brightness
    double screenFullMw;      ///< additional draw at full brightness

    // GPS
    double gpsSearchMw;       ///< acquiring a lock (the expensive state)
    double gpsTrackMw;        ///< lock held, periodic fixes

    // Radios
    double wifiIdleMw;
    double wifiLockMw;        ///< high-perf lock held, no traffic
    double wifiActiveMw;      ///< during a transfer burst
    double wifiThroughputBps; ///< used to size transfer bursts
    double cellIdleMw;
    double cellActiveMw;

    // Sensors
    double accelerometerMw;
    double orientationMw;
    double gyroscopeMw;
    double lightMw;

    // Audio
    double audioMw;

    // Battery
    double batteryMah;
    double batteryVolts;

    /** How heavily loaded the phone's app ecosystem is (>= 0). */
    double ecosystemLoad;

    /** Usable battery energy in millijoules. */
    double
    batteryEnergyMj() const
    {
        return batteryMah * batteryVolts * 3.6 * 1000.0;
    }
};

/** The phones from the paper's experiment setups (§2.1, §7.1). */
namespace profiles {
DeviceProfile pixelXl();
DeviceProfile nexus6();
DeviceProfile nexus4();
DeviceProfile galaxyS4();
DeviceProfile motoG();
DeviceProfile nexus5x();
/** Look up by (case-insensitive) name; throws std::out_of_range. */
DeviceProfile byName(const std::string &name);
} // namespace profiles

} // namespace leaseos::power

#endif // LEASEOS_POWER_DEVICE_PROFILE_H
