/**
 * @file
 * metricsdiff tests: the CI perf-gate semantics. Identical documents
 * pass; drift within tolerance passes but is reported; drift beyond
 * tolerance gates; missing rows/metrics gate (baseline must be
 * refreshed by a human); report-only metrics never gate no matter how
 * far they move; and the verdict JSON is machine-readable.
 */

#include <gtest/gtest.h>

#include <string>

#include "metricsdiff/metricsdiff.h"
#include "support/minijson.h"

namespace leaseos::metricsdiff {
namespace {

minijson::Value
parse(const std::string &text)
{
    minijson::ParseResult parsed = minijson::parse(text);
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    return parsed.value;
}

const char *kBench =
    "{\"bench\":\"eventqueue\",\"caption\":\"x\",\"rows\":["
    "{\"workload\":\"steady\",\"ops\":2000000,\"ns_per_op\":41.0,"
    "\"allocs_per_op\":0},"
    "{\"workload\":\"burst\",\"ops\":2000000,\"ns_per_op\":55.0,"
    "\"allocs_per_op\":0}]}";

TEST(MetricsDiffTest, IdenticalDocumentsPass)
{
    minijson::Value doc = parse(kBench);
    DiffReport report = diffDocuments(doc, doc, Options{});
    ASSERT_TRUE(report.ok()) << report.error;
    EXPECT_TRUE(report.pass);
    EXPECT_EQ(report.rowsCompared, 2u);
    EXPECT_EQ(report.metricsCompared, 6u); // 3 numeric columns x 2 rows
    EXPECT_TRUE(report.findings.empty());
}

TEST(MetricsDiffTest, DriftWithinToleranceIsReportedNotGating)
{
    minijson::Value a = parse(kBench);
    minijson::Value b = parse(
        "{\"bench\":\"eventqueue\",\"caption\":\"x\",\"rows\":["
        "{\"workload\":\"steady\",\"ops\":2000000,\"ns_per_op\":43.0,"
        "\"allocs_per_op\":0},"
        "{\"workload\":\"burst\",\"ops\":2000000,\"ns_per_op\":55.0,"
        "\"allocs_per_op\":0}]}");
    Options options;
    options.relTol["ns_per_op"] = 0.10; // 43 vs 41: ~4.7 % drift
    DiffReport report = diffDocuments(a, b, options);
    EXPECT_TRUE(report.pass);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].kind, "drift");
    EXPECT_EQ(report.findings[0].row, "steady");
    EXPECT_EQ(report.findings[0].metric, "ns_per_op");
    EXPECT_FALSE(report.findings[0].gating);
    EXPECT_NEAR(report.findings[0].relErr, 2.0 / 43.0, 1e-12);
}

TEST(MetricsDiffTest, OutOfToleranceGates)
{
    minijson::Value a = parse("{\"allocs_per_op\":0,\"ns_per_op\":41.0}");
    minijson::Value b = parse("{\"allocs_per_op\":2,\"ns_per_op\":41.0}");
    DiffReport report = diffDocuments(a, b, Options{});
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(report.pass);
    ASSERT_GE(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].kind, "out-of-tolerance");
    EXPECT_EQ(report.findings[0].metric, "allocs_per_op");
    EXPECT_TRUE(report.findings[0].gating);
    EXPECT_DOUBLE_EQ(report.findings[0].relErr, 1.0); // 0 vs 2
}

TEST(MetricsDiffTest, ReportOnlyMetricsNeverGate)
{
    minijson::Value a = parse("{\"allocs_per_op\":0,\"ns_per_op\":41.0}");
    minijson::Value b = parse("{\"allocs_per_op\":0,\"ns_per_op\":400.0}");
    Options options;
    options.reportOnly.insert("ns_per_op");
    DiffReport report = diffDocuments(a, b, options);
    EXPECT_TRUE(report.pass);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].metric, "ns_per_op");
    EXPECT_FALSE(report.findings[0].gating);
}

TEST(MetricsDiffTest, MissingMetricAndRowGate)
{
    minijson::Value a = parse(kBench);
    // Row "burst" gone, and "steady" lost its allocs_per_op column.
    minijson::Value b = parse(
        "{\"bench\":\"eventqueue\",\"caption\":\"x\",\"rows\":["
        "{\"workload\":\"steady\",\"ops\":2000000,\"ns_per_op\":41.0}]}");
    DiffReport report = diffDocuments(a, b, Options{});
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(report.pass);
    bool sawMissingRow = false, sawMissingMetric = false;
    for (const Finding &f : report.findings) {
        if (f.kind == "missing-row" && f.row == "burst")
            sawMissingRow = true;
        if (f.kind == "missing-metric" && f.metric == "allocs_per_op")
            sawMissingMetric = true;
        EXPECT_TRUE(f.gating) << f.toString();
    }
    EXPECT_TRUE(sawMissingRow);
    EXPECT_TRUE(sawMissingMetric);
}

TEST(MetricsDiffTest, FlightRecordMetricsObjectIsOneRow)
{
    minijson::Value a = parse(
        "{\"flightrec\":1,\"metrics\":{\"proxy.grants\":7,"
        "\"lease.deferral_seconds.p50\":25.0}}");
    minijson::Value b = parse(
        "{\"flightrec\":1,\"metrics\":{\"proxy.grants\":7,"
        "\"lease.deferral_seconds.p50\":26.0}}");
    Options options;
    options.relTol["lease.deferral_seconds.p50"] = 0.10;
    DiffReport report = diffDocuments(a, b, options);
    ASSERT_TRUE(report.ok()) << report.error;
    EXPECT_TRUE(report.pass);
    EXPECT_EQ(report.rowsCompared, 1u);
    EXPECT_EQ(report.metricsCompared, 2u);
}

TEST(MetricsDiffTest, GatingFindingsSortFirst)
{
    minijson::Value a =
        parse("{\"aa_drift\":100.0,\"zz_gate\":1.0}");
    minijson::Value b =
        parse("{\"aa_drift\":101.0,\"zz_gate\":2.0}");
    Options options;
    options.relTol["aa_drift"] = 0.05;
    DiffReport report = diffDocuments(a, b, options);
    ASSERT_EQ(report.findings.size(), 2u);
    EXPECT_TRUE(report.findings[0].gating);
    EXPECT_EQ(report.findings[0].metric, "zz_gate");
    EXPECT_FALSE(report.findings[1].gating);
}

TEST(MetricsDiffTest, VerdictJsonIsMachineReadable)
{
    minijson::Value a = parse("{\"allocs_per_op\":0}");
    minijson::Value b = parse("{\"allocs_per_op\":3}");
    DiffReport report = diffDocuments(a, b, Options{});
    std::string verdict = renderVerdictJson(report, "a.json", "b.json");
    minijson::ParseResult parsed = minijson::parse(verdict);
    ASSERT_TRUE(parsed.ok()) << parsed.error << "\n" << verdict;
    const minijson::Value *outcome = parsed.value.find("verdict");
    ASSERT_NE(outcome, nullptr);
    EXPECT_EQ(outcome->asString(), "fail");
    EXPECT_EQ(parsed.value.find("a")->asString(), "a.json");
    const minijson::Value *findings = parsed.value.find("findings");
    ASSERT_NE(findings, nullptr);
    ASSERT_TRUE(findings->isArray());
    ASSERT_EQ(findings->array.size(), 1u);
    EXPECT_EQ(findings->array[0].find("metric")->asString(),
              "allocs_per_op");
    EXPECT_EQ(findings->array[0].find("kind")->asString(),
              "out-of-tolerance");
}

TEST(MetricsDiffTest, LoadErrorsSurfaceAsExitTwoShape)
{
    DiffReport report =
        diffFiles("/nonexistent/a.json", "/nonexistent/b.json", Options{});
    EXPECT_FALSE(report.ok());
    EXPECT_FALSE(report.error.empty());
}

} // namespace
} // namespace leaseos::metricsdiff
