# Empty dependencies file for bench_fig1_gps_ask.
# This may be replaced when dependencies are built.
