# Empty compiler generated dependencies file for test_bluetooth.
# This may be replaced when dependencies are built.
